#!/usr/bin/env python3
"""Line-coverage gate for the simulation core (src/netsim, src/exp).

Runs gcov over every .gcda the coverage-preset test run produced, unions the
per-line execution counts across translation units (a header inlined into
ten tests counts as covered if ANY of them executed the line), and compares
the per-directory line coverage against the checked-in floor in
scripts/coverage_baseline.json. CI fails when a gated directory drops below
its floor — i.e. when a PR adds simulation-core code without tests.

Usage:
  coverage_gate.py --build-dir build/coverage [--write-report cov.json]
  coverage_gate.py --build-dir build/coverage --print-only   # no gate

The baseline is a conservative floor, not the live number: raise it when a
PR meaningfully lifts coverage, so the ratchet only ever moves up.
"""

import argparse
import collections
import gzip
import json
import os
import subprocess
import sys
import tempfile

GATED_DIRS = ("src/netsim", "src/exp")
BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "coverage_baseline.json")


def find_gcda(build_dir):
    out = []
    for root, _dirs, files in os.walk(build_dir):
        out.extend(os.path.abspath(os.path.join(root, f))
                   for f in files if f.endswith(".gcda"))
    return out


def run_gcov(gcda_files, scratch):
    """Runs gcov --json-format in batches; yields parsed per-TU reports."""
    batch = 64
    for i in range(0, len(gcda_files), batch):
        subprocess.run(
            ["gcov", "--json-format", "--branch-probabilities"] + gcda_files[i:i + batch],
            cwd=scratch, check=True, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        for name in os.listdir(scratch):
            if not name.endswith(".gcov.json.gz"):
                continue
            path = os.path.join(scratch, name)
            with gzip.open(path, "rt") as f:
                yield json.load(f)
            os.unlink(path)


def collect(build_dir, repo_root):
    """Returns {relative source path: {line: max hit count}}."""
    gcda = find_gcda(build_dir)
    if not gcda:
        sys.exit(f"no .gcda files under {build_dir}; run the coverage-preset "
                 "tests first (cmake --preset coverage && cmake --build "
                 "--preset coverage && ctest --preset coverage)")
    hits = collections.defaultdict(dict)
    with tempfile.TemporaryDirectory() as scratch:
        for report in run_gcov(gcda, scratch):
            for fentry in report.get("files", []):
                src = os.path.normpath(
                    os.path.join(report.get("current_working_directory", ""),
                                 fentry["file"]))
                rel = os.path.relpath(src, repo_root)
                if rel.startswith(".."):
                    continue  # system / third-party header
                per_line = hits[rel]
                for line in fentry.get("lines", []):
                    n = line["line_number"]
                    per_line[n] = max(per_line.get(n, 0), line["count"])
    return hits


def summarize(hits):
    """Returns {gated dir: (covered, total, pct)}."""
    summary = {}
    for gated in GATED_DIRS:
        covered = total = 0
        for rel, per_line in hits.items():
            if not rel.startswith(gated + os.sep):
                continue
            total += len(per_line)
            covered += sum(1 for c in per_line.values() if c > 0)
        pct = 100.0 * covered / total if total else 0.0
        summary[gated] = (covered, total, pct)
    return summary


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build/coverage")
    ap.add_argument("--write-report", help="write the summary as JSON here")
    ap.add_argument("--print-only", action="store_true",
                    help="report coverage without gating")
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    summary = summarize(collect(args.build_dir, repo_root))

    baseline = {}
    if os.path.exists(BASELINE):
        baseline = json.load(open(BASELINE))

    failures = []
    print(f"{'directory':<14} {'lines':>8} {'covered':>8} {'pct':>7} {'floor':>7}")
    for gated, (covered, total, pct) in summary.items():
        floor = baseline.get(gated)
        floor_s = f"{floor:.1f}" if floor is not None else "-"
        print(f"{gated:<14} {total:>8} {covered:>8} {pct:>6.1f}% {floor_s:>6}%")
        if total == 0:
            failures.append(f"{gated}: no instrumented lines found")
        elif floor is not None and pct < floor:
            failures.append(
                f"{gated}: line coverage {pct:.1f}% fell below the "
                f"{floor:.1f}% floor in {os.path.basename(BASELINE)}")

    if args.write_report:
        json.dump({d: {"covered": c, "total": t, "pct": round(p, 2)}
                   for d, (c, t, p) in summary.items()},
                  open(args.write_report, "w"), indent=2)
        print(f"report written to {args.write_report}")

    if failures and not args.print_only:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print("coverage gate ok" if not args.print_only else "coverage reported")


if __name__ == "__main__":
    main()
