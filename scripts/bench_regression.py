#!/usr/bin/env python3
"""Bench-row regression gate for the CI bench-smoke artifact.

Diffs two directories of JSON Lines bench output (see bench/bench_json.h)
and fails when a throughput-like metric on a matching row drops by more than
the threshold (default 15%).

Row matching: rows are keyed by their "bench" and "name" tags plus every
string-valued field and every field in ID_FIELDS (configuration identity:
threads, shards, k, packet_bytes, ...). Metric fields (THROUGHPUT_FIELDS)
are higher-is-better rates; everything else is ignored. Rows present on only
one side are reported but do not fail the gate -- benches grow and retire
rows across PRs, and the gate's job is catching regressions on work that
still exists.

Usage:
  bench_regression.py --base DIR --current DIR [--threshold 0.15]
  bench_regression.py --self-test
"""

import argparse
import glob
import json
import os
import sys

# Higher-is-better rates worth gating. Figure-fidelity numbers (recovery
# rates, CDF points) are intentionally excluded: they are results, and result
# changes are what code review is for; this gate is about speed.
THROUGHPUT_FIELDS = (
    "mbps",
    "kpps",
    "mpps",
    "mev_per_sec",
    "events_per_sec",
    "mops_per_sec",
    "sessions_per_sec",
)

# Lower-is-better cost metrics. Gated on the RISE instead of the drop, with
# a small absolute floor so a base of (near-)zero -- the pooled steady state
# reports allocs_per_packet ~= 0 -- doesn't turn measurement noise into a
# division-blowup failure.
COST_FIELDS = ("allocs_per_packet",)
COST_ABS_FLOOR = 0.05

# Numeric fields that identify a row's configuration rather than measure it.
ID_FIELDS = (
    "threads",
    "shards",
    "k",
    "r",
    "packet_bytes",
    "payload",
    "paths",
    "packets",
    "live",
)


def load_rows(directory):
    rows = {}
    for path in sorted(glob.glob(os.path.join(directory, "*.jsonl"))):
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                key_parts = []
                for k in sorted(row):
                    v = row[k]
                    if isinstance(v, str) or k in ID_FIELDS:
                        key_parts.append((k, v))
                key = tuple(key_parts)
                rows[key] = row
    return rows


def diff(base_rows, current_rows, threshold):
    """Returns (regressions, checked, unmatched) over the two row maps."""
    regressions = []
    checked = 0
    unmatched = 0
    for key, base in sorted(base_rows.items()):
        current = current_rows.get(key)
        if current is None:
            unmatched += 1
            print(f"[unmatched] base-only row: {dict(key)}")
            continue
        for field in THROUGHPUT_FIELDS:
            if field not in base or field not in current:
                continue
            b, c = float(base[field]), float(current[field])
            if b <= 0:
                continue
            checked += 1
            drop = (b - c) / b
            if drop > threshold:
                regressions.append((dict(key), field, b, c, drop))
        for field in COST_FIELDS:
            if field not in base or field not in current:
                continue
            b, c = float(base[field]), float(current[field])
            checked += 1
            allowed = max(b * (1.0 + threshold), b + COST_ABS_FLOOR)
            if c > allowed:
                rise = (c - b) / b if b > 0 else float("inf")
                regressions.append((dict(key), field, b, c, rise))
    for key in sorted(current_rows):
        if key not in base_rows:
            unmatched += 1
            print(f"[unmatched] current-only row: {dict(key)}")
    return regressions, checked, unmatched


def run_gate(base_dir, current_dir, threshold):
    base_rows = load_rows(base_dir)
    current_rows = load_rows(current_dir)
    if not base_rows:
        print(f"No base rows under {base_dir}; nothing to gate.")
        return 0
    regressions, checked, unmatched = diff(base_rows, current_rows, threshold)
    print(
        f"{checked} metric(s) compared across {len(base_rows)} base row(s); "
        f"{unmatched} unmatched row(s)."
    )
    for key, field, b, c, drop in regressions:
        print(
            f"[REGRESSION] {key}: {field} {b:.4g} -> {c:.4g} "
            f"(-{drop * 100:.1f}% > {threshold * 100:.0f}% threshold)"
        )
    if regressions:
        print(f"FAIL: {len(regressions)} throughput regression(s).")
        return 1
    print("OK: no throughput regressions.")
    return 0


def self_test():
    """Exercises the matcher and the gate on embedded fixtures."""
    base = {
        ("a",): {"bench": "x", "name": "a", "mbps": 100.0},
        ("b",): {"bench": "x", "name": "b", "mbps": 100.0},
    }

    def rows(*items):
        out = {}
        for r in items:
            key = tuple(
                sorted(
                    (k, v)
                    for k, v in r.items()
                    if isinstance(v, str) or k in ID_FIELDS
                )
            )
            out[key] = r
        return out

    ok_base = rows({"bench": "x", "name": "a", "threads": 2, "mbps": 100.0})
    ok_cur = rows({"bench": "x", "name": "a", "threads": 2, "mbps": 90.0})
    regs, checked, _ = diff(ok_base, ok_cur, 0.15)
    assert checked == 1 and not regs, "10% drop must pass a 15% gate"

    bad_cur = rows({"bench": "x", "name": "a", "threads": 2, "mbps": 80.0})
    regs, _, _ = diff(ok_base, bad_cur, 0.15)
    assert len(regs) == 1, "20% drop must fail a 15% gate"

    # Different identity (threads) must not match -- no false comparisons.
    other = rows({"bench": "x", "name": "a", "threads": 4, "mbps": 10.0})
    regs, checked, unmatched = diff(ok_base, other, 0.15)
    assert checked == 0 and not regs and unmatched == 2, "identity mismatch must not compare"

    # Non-throughput fields are ignored even when they shrink.
    fid_base = rows({"bench": "x", "name": "overall", "overall_recovery": 0.9})
    fid_cur = rows({"bench": "x", "name": "overall", "overall_recovery": 0.5})
    regs, checked, _ = diff(fid_base, fid_cur, 0.15)
    assert checked == 0 and not regs, "fidelity fields are not gated"

    # Cost fields gate the RISE: a pooled steady state near zero must accept
    # noise inside the absolute floor but fail on a real pooling regression.
    cost_base = rows({"bench": "churn", "name": "a", "allocs_per_packet": 0.01})
    cost_noise = rows({"bench": "churn", "name": "a", "allocs_per_packet": 0.04})
    regs, checked, _ = diff(cost_base, cost_noise, 0.15)
    assert checked == 1 and not regs, "sub-floor cost noise must pass"

    cost_bad = rows({"bench": "churn", "name": "a", "allocs_per_packet": 2.0})
    regs, _, _ = diff(cost_base, cost_bad, 0.15)
    assert len(regs) == 1, "an allocs-per-packet blowup must fail the gate"

    # A cost field shrinking (pooling improved) never fails.
    cost_better = rows({"bench": "churn", "name": "a", "allocs_per_packet": 0.0})
    regs, _, _ = diff(cost_base, cost_better, 0.15)
    assert not regs, "cost improvements must pass"

    _ = base  # silence lint about the illustrative fixture
    print("self-test OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--base", help="directory of base-branch .jsonl rows")
    ap.add_argument("--current", help="directory of this build's .jsonl rows")
    ap.add_argument("--threshold", type=float, default=0.15)
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    if not args.base or not args.current:
        ap.error("--base and --current are required (or use --self-test)")
    return run_gate(args.base, args.current, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
