// Tests for service selection (Section 3.5): delay formulas, cost ordering,
// budget-driven selection, the adaptive upgrade loop, and the register()
// session API.
#include <gtest/gtest.h>

#include <cmath>

#include "endpoint/receiver.h"
#include "endpoint/sender.h"
#include "endpoint/service_selector.h"
#include "endpoint/session.h"
#include "netsim/network.h"

namespace jqos::endpoint {
namespace {

PathDelays typical_us_eu() {
  // Representative transatlantic path: y = 55 ms one way, small deltas.
  PathDelays d;
  d.y_ms = 55.0;
  d.delta_s_ms = 6.0;
  d.delta_r_ms = 8.0;
  d.x_ms = 45.0;
  d.delta_r_median_ms = 9.0;
  return d;
}

TEST(Selector, DelayFormulasMatchPaper) {
  const PathDelays d = typical_us_eu();
  // internet = y.
  EXPECT_DOUBLE_EQ(expected_delay_ms(ServiceType::kNone, d), 55.0);
  // forwarding = x + delta_S + delta_R.
  EXPECT_DOUBLE_EQ(expected_delay_ms(ServiceType::kForward, d), 45.0 + 6.0 + 8.0);
  // caching = y + 2 delta_R (+ wait; here the cloud copy arrives first:
  // delta_S + x = 51 < y + delta_R = 63, so no wait).
  EXPECT_DOUBLE_EQ(expected_delay_ms(ServiceType::kCache, d), 55.0 + 16.0);
  // coding adds the peer round trip 2 * delta_median.
  EXPECT_DOUBLE_EQ(expected_delay_ms(ServiceType::kCode, d), 55.0 + 16.0 + 18.0);
}

TEST(Selector, WaitTermWhenCloudCopySlower) {
  PathDelays d = typical_us_eu();
  d.x_ms = 80.0;  // delta_S + x = 86 > y + delta_R = 63: pulls wait 23 ms.
  EXPECT_DOUBLE_EQ(expected_delay_ms(ServiceType::kCache, d), 55.0 + 16.0 + 23.0);
}

TEST(Selector, CostOrdering) {
  const double coding_rate = 2.0 / 6.0;
  EXPECT_LT(relative_cost(ServiceType::kNone, coding_rate),
            relative_cost(ServiceType::kCode, coding_rate));
  EXPECT_LT(relative_cost(ServiceType::kCode, coding_rate),
            relative_cost(ServiceType::kCache, coding_rate));
  EXPECT_LT(relative_cost(ServiceType::kCache, coding_rate),
            relative_cost(ServiceType::kForward, coding_rate));
  EXPECT_DOUBLE_EQ(relative_cost(ServiceType::kForward, coding_rate), 2.0);
}

TEST(Selector, PicksCheapestMeetingBudget) {
  const PathDelays d = typical_us_eu();
  // Coding delivers in 89 ms; generous budget -> coding (cheapest).
  EXPECT_EQ(select_service(d, 150.0, 1.0 / 3.0).service, ServiceType::kCode);
  // 80 ms budget excludes coding (89) but caching fits (71).
  EXPECT_EQ(select_service(d, 80.0, 1.0 / 3.0).service, ServiceType::kCache);
  // 65 ms budget excludes caching; forwarding fits (59).
  EXPECT_EQ(select_service(d, 65.0, 1.0 / 3.0).service, ServiceType::kForward);
}

TEST(Selector, FallsBackToFastestWhenNothingFits) {
  const PathDelays d = typical_us_eu();
  const auto quote = select_service(d, 10.0, 1.0 / 3.0);
  EXPECT_EQ(quote.service, ServiceType::kForward);  // Lowest-delay recovery.
}

TEST(Selector, BudgetBoundaryIsInclusive) {
  // A budget exactly equal to a service's expected delay admits it: the
  // paper's constraint is delay <= budget, not strict.
  const PathDelays d = typical_us_eu();
  const double coding_delay = expected_delay_ms(ServiceType::kCode, d);  // 89 ms.
  EXPECT_EQ(select_service(d, coding_delay, 1.0 / 3.0).service, ServiceType::kCode);
  // One hair under the boundary excludes coding; caching is next-cheapest.
  EXPECT_EQ(select_service(d, std::nexttoward(coding_delay, 0.0), 1.0 / 3.0).service,
            ServiceType::kCache);
}

TEST(Selector, InternetQuoteIsThePlainDirectPath) {
  // What failover falls back to when the overlay is unreachable: service
  // kNone at the direct-path delay y, zero cloud egress. No re-selection
  // happens -- this is the only candidate left.
  const PathDelays d = typical_us_eu();
  const ServiceQuote q = internet_quote(d);
  EXPECT_EQ(q.service, ServiceType::kNone);
  EXPECT_DOUBLE_EQ(q.expected_delay_ms, expected_delay_ms(ServiceType::kNone, d));
  EXPECT_DOUBLE_EQ(q.expected_delay_ms, d.y_ms);
  EXPECT_DOUBLE_EQ(q.relative_cost, 0.0);
}

TEST(Selector, QuotesSortedByCost) {
  const auto quotes = service_quotes(typical_us_eu(), 1.0 / 3.0);
  ASSERT_EQ(quotes.size(), 4u);
  for (std::size_t i = 1; i < quotes.size(); ++i) {
    EXPECT_LE(quotes[i - 1].relative_cost, quotes[i].relative_cost);
  }
}

TEST(Selector, AdaptiveUpgradesOnViolations) {
  AdaptiveSelector sel(typical_us_eu(), 150.0, 1.0 / 3.0, /*violation_threshold=*/0.05,
                       /*window=*/100);
  ASSERT_EQ(sel.current(), ServiceType::kCode);
  // 10% of packets miss the budget: upgrade after the window closes.
  for (int i = 0; i < 100; ++i) sel.report(i % 10 == 0 ? 200.0 : 80.0, false);
  EXPECT_EQ(sel.current(), ServiceType::kCache);
  EXPECT_EQ(sel.upgrades(), 1u);
  // Still violating: next window upgrades to forwarding and stays there.
  for (int i = 0; i < 200; ++i) sel.report(i % 10 == 0 ? 200.0 : 80.0, false);
  EXPECT_EQ(sel.current(), ServiceType::kForward);
  for (int i = 0; i < 200; ++i) sel.report(200.0, true);
  EXPECT_EQ(sel.current(), ServiceType::kForward);  // Top tier.
}

TEST(Selector, AdaptiveStaysPutWhenHealthy) {
  AdaptiveSelector sel(typical_us_eu(), 150.0, 1.0 / 3.0, 0.05, 100);
  for (int i = 0; i < 1000; ++i) sel.report(90.0, false);
  EXPECT_EQ(sel.current(), ServiceType::kCode);
  EXPECT_EQ(sel.upgrades(), 0u);
}

// ------------------------------- session -----------------------------------

TEST(Session, RegisterWiresAllLayers) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  Sender sender(net);
  Receiver receiver(net, ReceiverConfig{});
  auto registry = std::make_shared<services::FlowRegistry>();
  SessionManager sessions(registry);

  RegisterRequest req;
  req.latency_budget_ms = 150.0;
  req.delays = typical_us_eu();
  req.dc1 = 100;
  req.dc2 = 200;
  const Session session = sessions.register_flow(sender, receiver, req);

  EXPECT_EQ(session.flow, 1u);
  EXPECT_EQ(session.quote.service, ServiceType::kCode);
  const services::FlowInfo* info = registry->find(session.flow);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->dc2, 200u);
  EXPECT_EQ(info->receiver, receiver.id());
  // The sender accepts sends on the registered flow.
  EXPECT_EQ(sender.next_seq(session.flow), 0u);
}

TEST(Session, ForceServiceOverridesBudget) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  Sender sender(net);
  Receiver receiver(net, ReceiverConfig{});
  SessionManager sessions(std::make_shared<services::FlowRegistry>());

  RegisterRequest req;
  req.latency_budget_ms = 150.0;
  req.delays = typical_us_eu();
  req.force_service = ServiceType::kForward;
  const Session session = sessions.register_flow(sender, receiver, req);
  EXPECT_EQ(session.quote.service, ServiceType::kForward);
  EXPECT_DOUBLE_EQ(session.quote.relative_cost, 2.0);
}

TEST(Session, FlowIdsMonotone) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  Sender sender(net);
  Receiver receiver(net, ReceiverConfig{});
  SessionManager sessions(std::make_shared<services::FlowRegistry>());
  RegisterRequest req;
  req.delays = typical_us_eu();
  EXPECT_EQ(sessions.register_flow(sender, receiver, req).flow, 1u);
  EXPECT_EQ(sessions.register_flow(sender, receiver, req).flow, 2u);
  EXPECT_EQ(sessions.register_flow(sender, receiver, req).flow, 3u);
}

}  // namespace
}  // namespace jqos::endpoint
