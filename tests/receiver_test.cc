// Tests for the J-QoS receiver: ordered delivery, gap detection and NACKs,
// duplicate suppression, cooperative responses, in-stream self-decode,
// tail-loss timers, and the give-up accounting.
#include <gtest/gtest.h>

#include <map>

#include "endpoint/receiver.h"
#include "fec/coded_batch.h"
#include "netsim/network.h"

namespace jqos::endpoint {
namespace {

// Captures everything the receiver sends toward DC2.
struct FakeDc final : netsim::Node {
  explicit FakeDc(netsim::Network& net) : id_(net.allocate_id()) { net.attach(*this); }
  NodeId id() const override { return id_; }
  void handle_packet(const PacketPtr& pkt) override { received.push_back(pkt); }

  std::vector<PacketPtr> of_type(PacketType t) const {
    std::vector<PacketPtr> out;
    for (const auto& p : received) {
      if (p->type == t) out.push_back(p);
    }
    return out;
  }

  NodeId id_;
  std::vector<PacketPtr> received;
};

struct Fixture {
  netsim::Simulator sim;
  netsim::Network net{sim};
  FakeDc dc{net};
  std::vector<DeliveryRecord> records;
  std::unique_ptr<Receiver> receiver;

  explicit Fixture(ReceiverConfig config = {}) {
    config.dc2 = dc.id();
    if (config.rtt_estimate == msec(100)) config.rtt_estimate = msec(100);
    receiver = std::make_unique<Receiver>(
        net, config,
        [this](const DeliveryRecord& rec, const PacketPtr&) { records.push_back(rec); });
    net.add_link(receiver->id(), dc.id(), netsim::make_fixed_latency(msec(5)),
                 netsim::make_no_loss());
    net.add_link(dc.id(), receiver->id(), netsim::make_fixed_latency(msec(5)),
                 netsim::make_no_loss());
    receiver->expect_flow(1);
  }

  void arrive(SeqNo seq, PacketType type = PacketType::kData) {
    auto p = std::make_shared<Packet>();
    p->type = type;
    p->flow = 1;
    p->seq = seq;
    p->sent_at = sim.now();
    p->payload.assign(32, static_cast<std::uint8_t>(seq));
    receiver->handle_packet(p);
  }
};

TEST(Receiver, InOrderDelivery) {
  Fixture f;
  for (SeqNo s = 0; s < 5; ++s) f.arrive(s);
  ASSERT_EQ(f.records.size(), 5u);
  for (SeqNo s = 0; s < 5; ++s) {
    EXPECT_EQ(f.records[s].seq, s);
    EXPECT_FALSE(f.records[s].recovered);
  }
  EXPECT_EQ(f.receiver->stats().delivered_direct, 5u);
  EXPECT_EQ(f.receiver->stats().nacks_sent, 0u);
}

TEST(Receiver, GapTriggersImmediateNack) {
  Fixture f;
  f.arrive(0);
  f.arrive(3);  // Seqs 1, 2 missing.
  f.sim.run_until(msec(20));
  auto nacks = f.dc.of_type(PacketType::kNack);
  ASSERT_EQ(nacks.size(), 1u);
  auto info = NackInfo::parse(nacks[0]->payload);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->missing, (std::vector<SeqNo>{1, 2}));
  EXPECT_FALSE(info->tail);
  EXPECT_EQ(f.receiver->stats().losses_detected, 2u);
}

TEST(Receiver, RecoveredPacketFillsHole) {
  Fixture f;
  // Start past t=0 so detection timestamps are distinguishable from the
  // "never detected" sentinel.
  f.sim.run_until(msec(1));
  f.arrive(0);
  f.arrive(2);
  f.sim.run_until(msec(10));
  f.arrive(1, PacketType::kRecovered);
  ASSERT_EQ(f.records.size(), 3u);
  const auto& rec = f.records.back();
  EXPECT_EQ(rec.seq, 1u);
  EXPECT_TRUE(rec.recovered);
  EXPECT_GT(rec.detected_missing_at, 0);
  EXPECT_EQ(f.receiver->stats().delivered_recovered, 1u);
  EXPECT_EQ(f.receiver->recovery_delay_ms().count(), 1u);
}

TEST(Receiver, LateDirectArrivalFillsHoleWithoutRecoveredFlag) {
  Fixture f;
  f.arrive(0);
  f.arrive(2);
  f.arrive(1, PacketType::kData);  // Straggler direct packet.
  EXPECT_EQ(f.receiver->stats().delivered_direct, 3u);
  EXPECT_EQ(f.receiver->stats().delivered_recovered, 0u);
}

TEST(Receiver, DuplicatesSuppressed) {
  Fixture f;
  f.arrive(0);
  f.arrive(0);
  f.arrive(1);
  f.arrive(2);
  f.arrive(1, PacketType::kRecovered);  // Recovery raced the direct copy.
  EXPECT_EQ(f.receiver->stats().duplicates, 2u);
  // Three real deliveries plus one late-direct notification for the
  // duplicate direct copy of seq 0.
  std::size_t real = 0, late = 0;
  for (const auto& r : f.records) (r.late_direct ? late : real) += 1;
  EXPECT_EQ(real, 3u);
  EXPECT_EQ(late, 1u);
}

TEST(Receiver, CoopRequestAnsweredFromBuffer) {
  Fixture f;
  f.arrive(0);
  f.arrive(1);
  auto req = std::make_shared<Packet>();
  req->type = PacketType::kCoopRequest;
  req->flow = 1;
  req->seq = 1;
  req->src = f.dc.id();
  CodedMeta m;
  m.batch_id = 77;
  req->meta = m;
  f.receiver->handle_packet(req);
  f.sim.run();
  auto resp = f.dc.of_type(PacketType::kCoopResponse);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0]->seq, 1u);
  ASSERT_TRUE(resp[0]->meta.has_value());
  EXPECT_EQ(resp[0]->meta->batch_id, 77u);
  EXPECT_EQ(resp[0]->payload.size(), 32u);
  EXPECT_EQ(f.receiver->stats().coop_responses_sent, 1u);
}

TEST(Receiver, CoopRequestForLostPacketIsMiss) {
  Fixture f;
  f.arrive(0);
  f.arrive(2);  // Seq 1 was lost on the direct path.
  auto req = std::make_shared<Packet>();
  req->type = PacketType::kCoopRequest;
  req->flow = 1;
  req->seq = 1;
  req->src = f.dc.id();
  f.receiver->handle_packet(req);
  f.sim.run_until(msec(10));
  EXPECT_TRUE(f.dc.of_type(PacketType::kCoopResponse).empty());
  EXPECT_EQ(f.receiver->stats().coop_misses, 1u);
}

TEST(Receiver, CoopRequestForFuturePacketDeferredUntilArrival) {
  // The requester's detection can race a slower direct path: a request for
  // a packet not seen yet is held and answered on arrival.
  Fixture f;
  f.arrive(0);
  auto req = std::make_shared<Packet>();
  req->type = PacketType::kCoopRequest;
  req->flow = 1;
  req->seq = 1;
  req->src = f.dc.id();
  f.receiver->handle_packet(req);
  f.sim.run_until(msec(10));
  EXPECT_TRUE(f.dc.of_type(PacketType::kCoopResponse).empty());
  EXPECT_EQ(f.receiver->stats().coop_misses, 0u);
  f.arrive(1);  // The packet lands: the deferred response goes out.
  f.sim.run_until(msec(30));
  ASSERT_EQ(f.dc.of_type(PacketType::kCoopResponse).size(), 1u);
  EXPECT_EQ(f.receiver->stats().coop_deferred, 1u);
}

TEST(Receiver, NackCheckConfirmedOnlyWhenMissing) {
  Fixture f;
  f.arrive(0);
  f.arrive(2);  // 1 missing.
  auto check = std::make_shared<Packet>();
  check->type = PacketType::kNackCheck;
  check->flow = 1;
  check->seq = 1;
  check->src = f.dc.id();
  f.receiver->handle_packet(check);
  f.sim.run();
  EXPECT_EQ(f.dc.of_type(PacketType::kNackConfirm).size(), 1u);

  // A check for a delivered seq stays silent.
  auto spurious = std::make_shared<Packet>(*check);
  spurious->seq = 0;
  f.receiver->handle_packet(spurious);
  f.sim.run();
  EXPECT_EQ(f.dc.of_type(PacketType::kNackConfirm).size(), 1u);
}

TEST(Receiver, SelfDecodesInStreamCodedPacket) {
  Fixture f;
  // Build the in-stream batch the encoder would have made for seqs 0-4.
  std::vector<PacketPtr> data;
  for (SeqNo s = 0; s < 5; ++s) {
    auto p = std::make_shared<Packet>();
    p->flow = 1;
    p->seq = s;
    p->payload.assign(32, static_cast<std::uint8_t>(s * 3));
    data.push_back(p);
  }
  auto coded = fec::encode_batch(data, 1, PacketType::kInCoded, 900, 99, 0, 0);

  // Receiver got all but seq 2, then the coded packet from DC2.
  for (SeqNo s = 0; s < 5; ++s) {
    if (s == 2) continue;
    auto p = std::make_shared<Packet>(*data[s]);
    p->type = PacketType::kData;
    f.receiver->handle_packet(p);
  }
  f.receiver->handle_packet(coded[0]);
  f.sim.run_until(msec(50));

  EXPECT_EQ(f.receiver->stats().self_decoded, 1u);
  bool seq2_delivered = false;
  for (const auto& r : f.records) {
    if (r.seq == 2 && r.recovered) {
      seq2_delivered = true;
    }
  }
  EXPECT_TRUE(seq2_delivered);
}

TEST(Receiver, TailLossDetectedByShortTimer) {
  ReceiverConfig config;
  config.rtt_estimate = msec(100);
  config.markov.adaptive = false;
  config.markov.small_timeout = msec(25);
  Fixture f(config);
  // A burst, then silence: the short timer must fire a tail NACK.
  f.arrive(0);
  f.sim.run_until(msec(10));
  f.arrive(1);
  f.sim.run_until(msec(20));
  f.arrive(2);
  f.sim.run_until(msec(500));
  auto nacks = f.dc.of_type(PacketType::kNack);
  ASSERT_GE(nacks.size(), 1u);
  auto info = NackInfo::parse(nacks[0]->payload);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->tail);
  EXPECT_EQ(info->expected, 3u);
  EXPECT_GE(f.receiver->stats().tail_nacks_sent, 1u);
}

TEST(Receiver, GiveUpDeclaresLossAfterWindow) {
  ReceiverConfig config;
  config.rtt_estimate = msec(100);
  config.recovery_give_up = msec(200);
  Fixture f(config);
  f.arrive(0);
  f.sim.run_until(msec(5));
  f.arrive(5);  // 1-4 missing; no recovery will come.
  f.sim.run_until(sec(3));
  EXPECT_EQ(f.receiver->stats().losses_given_up, 4u);
  int lost_records = 0;
  for (const auto& r : f.records) lost_records += r.lost ? 1 : 0;
  EXPECT_EQ(lost_records, 4);
}

TEST(Receiver, ReNacksWhileHolePersists) {
  ReceiverConfig config;
  config.rtt_estimate = msec(100);
  config.renack_interval = msec(50);
  config.recovery_give_up = msec(400);
  Fixture f(config);
  f.arrive(0);
  f.sim.run_until(msec(5));
  f.arrive(3);
  f.sim.run_until(msec(350));
  // Initial NACK plus at least one retry.
  EXPECT_GE(f.dc.of_type(PacketType::kNack).size(), 2u);
}

TEST(Receiver, SingleTimeoutModeSendsMoreNacks) {
  // Ablation D3: the fixed small timeout fires spurious tail NACKs at every
  // inter-burst gap, which the two-state model avoids (Section 6.4: 5x).
  auto count_nacks = [](bool use_markov) {
    ReceiverConfig config;
    config.use_markov = use_markov;
    config.single_timeout = msec(25);
    config.rtt_estimate = msec(200);
    config.markov.adaptive = false;
    Fixture f(config);
    SeqNo seq = 0;
    // 20 bursts of 5 packets (5 ms spacing), 300 ms apart.
    SimTime t = 0;
    for (int burst = 0; burst < 20; ++burst) {
      for (int i = 0; i < 5; ++i) {
        f.sim.run_until(t);
        f.arrive(seq++);
        t += msec(5);
      }
      t += msec(300);
    }
    f.sim.run_until(t + sec(1));
    return f.dc.of_type(PacketType::kNack).size();
  };
  const std::size_t with_markov = count_nacks(true);
  const std::size_t without = count_nacks(false);
  // The bench (`bench_tcp_markov`) quantifies the paper's 5x claim; here we
  // assert the direction with margin.
  EXPECT_GT(without, with_markov + with_markov / 2);
}

TEST(Receiver, UnknownFlowIgnored) {
  Fixture f;
  auto p = std::make_shared<Packet>();
  p->type = PacketType::kData;
  p->flow = 99;
  p->seq = 0;
  f.receiver->handle_packet(p);
  EXPECT_TRUE(f.records.empty());
}

}  // namespace
}  // namespace jqos::endpoint
