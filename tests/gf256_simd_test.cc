// Differential tests for the SIMD GF(256) buffer kernels.
//
// A wrong SIMD kernel corrupts every decoded packet silently, so correctness
// is established differentially: every available backend is forced in turn
// and checked byte-for-byte against an independent schoolbook carry-less
// multiplication reference (shared no code with the tables or the kernels)
// across
//   - all 256 coefficients,
//   - every buffer length 0..67 (covers empty, sub-vector, exactly one
//     16/32-byte vector, vector+tail, and multi-vector+tail splits),
//   - several source/destination misalignments (SIMD paths use unaligned
//     loads; this pins that no aligned-load assumption creeps in),
//   - large randomized buffers,
// with guard bytes around the destination to catch out-of-bounds writes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "fec/gf256.h"
#include "fec/gf256_simd.h"
#include "test_guards.h"

namespace jqos::fec {
namespace {

// Independent reference: schoolbook carry-less multiplication modulo 0x11d.
Gf schoolbook_mul(Gf a, Gf b) {
  unsigned acc = 0;
  unsigned aa = a;
  for (unsigned bb = b; bb != 0; bb >>= 1) {
    if (bb & 1) acc ^= aa;
    aa <<= 1;
    if (aa & 0x100) aa ^= 0x11d;
  }
  return static_cast<Gf>(acc);
}

// Restores the backend that was active on entry when a test finishes, so
// backend forcing cannot leak across test cases (`ctest --schedule-random`).
using BackendGuard = jqos::testing::GfBackendGuard;

constexpr std::size_t kGuard = 32;       // Guard bytes on each side of dst.
constexpr std::uint8_t kCanary = 0xa5;

// Checks gf_addmul and gf_mul_buf against the reference for one
// (coefficient, length, alignment) point under the currently forced backend.
void check_point(Gf c, std::size_t n, std::size_t src_align, std::size_t dst_align,
                 Rng& rng) {
  // Over-allocate so the kernel start pointer can be pushed off alignment.
  std::vector<std::uint8_t> src_buf(n + src_align + kGuard);
  std::vector<std::uint8_t> dst_buf(n + dst_align + 2 * kGuard, kCanary);
  std::uint8_t* src = src_buf.data() + src_align;
  std::uint8_t* dst = dst_buf.data() + kGuard + dst_align;
  for (std::size_t i = 0; i < n; ++i) {
    src[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    dst[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const std::vector<std::uint8_t> dst0(dst, dst + n);

  gf_addmul(dst, src, c, n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(dst[i], dst0[i] ^ schoolbook_mul(c, src[i]))
        << "addmul backend=" << gf_backend_name() << " c=" << int(c) << " n=" << n
        << " i=" << i << " src_align=" << src_align << " dst_align=" << dst_align;
  }

  gf_mul_buf(dst, src, c, n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(dst[i], schoolbook_mul(c, src[i]))
        << "mul_buf backend=" << gf_backend_name() << " c=" << int(c) << " n=" << n
        << " i=" << i;
  }

  // Guard bytes before and after dst must be untouched.
  for (std::size_t i = 0; i < kGuard + dst_align; ++i) {
    ASSERT_EQ(dst_buf[i], kCanary) << "pre-guard clobbered at " << i;
  }
  for (std::size_t i = kGuard + dst_align + n; i < dst_buf.size(); ++i) {
    ASSERT_EQ(dst_buf[i], kCanary) << "post-guard clobbered at " << i;
  }
}

TEST(Gf256Simd, ScalarBackendAlwaysAvailable) {
  EXPECT_TRUE(gf_backend_available(GfBackend::kScalar));
  EXPECT_FALSE(gf_available_backends().empty());
}

TEST(Gf256Simd, BackendNamesAndForcing) {
  BackendGuard guard;
  EXPECT_STREQ(gf_backend_name(GfBackend::kScalar), "scalar");
  EXPECT_STREQ(gf_backend_name(GfBackend::kSsse3), "ssse3");
  EXPECT_STREQ(gf_backend_name(GfBackend::kAvx2), "avx2");
  for (GfBackend b : gf_available_backends()) {
    ASSERT_TRUE(gf_set_backend(b));
    EXPECT_EQ(gf_backend(), b);
    EXPECT_STREQ(gf_backend_name(), gf_backend_name(b));
  }
  for (GfBackend b : {GfBackend::kSsse3, GfBackend::kAvx2}) {
    if (gf_backend_available(b)) continue;
    const GfBackend before = gf_backend();
    EXPECT_FALSE(gf_set_backend(b));
    EXPECT_EQ(gf_backend(), before) << "failed set must not change the backend";
  }
}

TEST(Gf256Simd, AllCoefficientsAllSmallLengths) {
  BackendGuard guard;
  for (GfBackend b : gf_available_backends()) {
    ASSERT_TRUE(gf_set_backend(b));
    Rng rng(0x5eed0000u + static_cast<std::uint64_t>(b));
    for (int c = 0; c < 256; ++c) {
      for (std::size_t n = 0; n <= 67; ++n) {
        check_point(static_cast<Gf>(c), n, 0, 0, rng);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(Gf256Simd, MisalignedHeadsAndTails) {
  BackendGuard guard;
  for (GfBackend b : gf_available_backends()) {
    ASSERT_TRUE(gf_set_backend(b));
    Rng rng(0xa119u + static_cast<std::uint64_t>(b));
    for (std::size_t src_align : {1u, 3u, 7u, 15u}) {
      for (std::size_t dst_align : {1u, 5u, 13u}) {
        for (std::size_t n : {1u, 15u, 16u, 17u, 31u, 32u, 33u, 63u, 64u, 65u, 200u}) {
          for (Gf c : {2, 29, 107, 255}) {
            check_point(c, n, src_align, dst_align, rng);
            if (::testing::Test::HasFatalFailure()) return;
          }
        }
      }
    }
  }
}

TEST(Gf256Simd, LargeRandomBuffersMatchScalar) {
  BackendGuard guard;
  Rng rng(0xb16b00b5);
  for (GfBackend b : gf_available_backends()) {
    ASSERT_TRUE(gf_set_backend(b));
    for (int iter = 0; iter < 20; ++iter) {
      const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1024, 9000));
      const Gf c = static_cast<Gf>(rng.uniform_int(0, 255));
      check_point(c, n, static_cast<std::size_t>(rng.uniform_int(0, 31)),
                  static_cast<std::size_t>(rng.uniform_int(0, 31)), rng);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(Gf256Simd, MulBufInPlaceAliasing) {
  // The documented aliasing contract: exact dst == src scales in place.
  BackendGuard guard;
  for (GfBackend b : gf_available_backends()) {
    ASSERT_TRUE(gf_set_backend(b));
    Rng rng(0x417a5 + static_cast<std::uint64_t>(b));
    for (std::size_t n : {0u, 1u, 16u, 33u, 67u, 1024u}) {
      std::vector<std::uint8_t> buf(n);
      for (auto& v : buf) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      const std::vector<std::uint8_t> orig = buf;
      const Gf c = 71;
      gf_mul_buf(buf.data(), buf.data(), c, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(buf[i], schoolbook_mul(c, orig[i]))
            << "backend=" << gf_backend_name() << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(Gf256Simd, FastPathsZeroAndOne) {
  BackendGuard guard;
  for (GfBackend b : gf_available_backends()) {
    ASSERT_TRUE(gf_set_backend(b));
    std::vector<std::uint8_t> src(100), dst(100);
    for (std::size_t i = 0; i < src.size(); ++i) {
      src[i] = static_cast<std::uint8_t>(i * 7 + 3);
      dst[i] = static_cast<std::uint8_t>(i * 13 + 1);
    }
    const std::vector<std::uint8_t> dst0 = dst;
    gf_addmul(dst.data(), src.data(), 0, dst.size());
    EXPECT_EQ(dst, dst0) << "c=0 addmul must be a no-op";
    gf_addmul(dst.data(), src.data(), 1, dst.size());
    for (std::size_t i = 0; i < dst.size(); ++i) {
      ASSERT_EQ(dst[i], static_cast<std::uint8_t>(dst0[i] ^ src[i]));
    }
    gf_mul_buf(dst.data(), src.data(), 1, dst.size());
    EXPECT_EQ(dst, src) << "c=1 mul_buf must copy";
    gf_mul_buf(dst.data(), src.data(), 0, dst.size());
    EXPECT_EQ(dst, std::vector<std::uint8_t>(dst.size(), 0)) << "c=0 mul_buf must zero";
  }
}

}  // namespace
}  // namespace jqos::fec
