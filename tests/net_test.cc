// Tests for the live runtime: event loop, UDP/TCP wrappers, impairment, and
// the loopback caching-recovery deployment exchanging real datagrams.
#include <gtest/gtest.h>

#include <sys/epoll.h>

#include <chrono>
#include <set>

#include "net/event_loop.h"
#include "net/impairment.h"
#include "net/live_node.h"
#include "net/tcp_socket.h"
#include "net/udp_socket.h"

namespace jqos::net {
namespace {

using namespace std::chrono_literals;

void pump(EventLoop& loop, std::chrono::milliseconds total) {
  const auto deadline = Clock::now() + total;
  while (Clock::now() < deadline) {
    loop.run_once(5ms);
  }
}

TEST(EventLoop, TimerFires) {
  EventLoop loop;
  bool fired = false;
  loop.add_timer(10ms, [&] { fired = true; });
  pump(loop, 80ms);
  EXPECT_TRUE(fired);
}

TEST(EventLoop, CancelledTimerDoesNotFire) {
  EventLoop loop;
  bool fired = false;
  const TimerId id = loop.add_timer(10ms, [&] { fired = true; });
  loop.cancel_timer(id);
  pump(loop, 50ms);
  EXPECT_FALSE(fired);
}

TEST(EventLoop, TimersFireInOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.add_timer(30ms, [&] { order.push_back(2); });
  loop.add_timer(10ms, [&] { order.push_back(1); });
  pump(loop, 100ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(UdpSocket, LoopbackDatagramRoundTrip) {
  UdpSocket a, b;
  ASSERT_NE(a.local_endpoint().port, 0);
  std::vector<std::uint8_t> msg = {1, 2, 3, 4};
  ASSERT_GT(a.send_to(msg, b.local_endpoint()), 0);
  // Loopback delivery is immediate but give the stack a moment.
  std::optional<UdpSocket::Datagram> got;
  for (int i = 0; i < 100 && !got; ++i) got = b.recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data, msg);
  EXPECT_EQ(got->from.port, a.local_endpoint().port);
}

TEST(UdpSocket, EventLoopReadable) {
  EventLoop loop;
  UdpSocket a, b;
  std::vector<std::uint8_t> received;
  loop.add_fd(b.fd(), EPOLLIN, [&](std::uint32_t) {
    while (auto d = b.recv()) received = d->data;
  });
  std::vector<std::uint8_t> msg = {9, 9, 9};
  a.send_to(msg, b.local_endpoint());
  pump(loop, 100ms);
  EXPECT_EQ(received, msg);
}

TEST(TcpSocket, FramedControlChannel) {
  EventLoop loop;
  TcpListener listener(0);
  auto client = TcpConnection::connect_local(listener.port());
  ASSERT_TRUE(client.has_value());
  std::optional<TcpConnection> server;
  for (int i = 0; i < 100 && !server; ++i) {
    if (auto accepted = listener.accept()) server.emplace(std::move(*accepted));
  }
  ASSERT_TRUE(server.has_value());

  std::vector<std::uint8_t> frame1 = {1, 2, 3};
  std::vector<std::uint8_t> frame2(5000, 0xab);
  ASSERT_TRUE(client->send_frame(frame1));
  ASSERT_TRUE(client->send_frame(frame2));

  std::vector<std::vector<std::uint8_t>> got;
  for (int i = 0; i < 200 && got.size() < 2; ++i) {
    auto frames = server->read_frames();
    got.insert(got.end(), frames.begin(), frames.end());
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], frame1);
  EXPECT_EQ(got[1], frame2);
}

TEST(Impairment, DropsAtConfiguredRate) {
  EventLoop loop;
  UdpSocket tx, rx;
  ImpairmentParams params;
  params.drop_probability = 0.5;
  ImpairedLink link(loop, tx, params, Rng(1));
  for (int i = 0; i < 1000; ++i) link.send({1}, rx.local_endpoint());
  EXPECT_EQ(link.stats().offered, 1000u);
  EXPECT_NEAR(static_cast<double>(link.stats().dropped), 500.0, 80.0);
}

TEST(Impairment, DelayDefersDelivery) {
  EventLoop loop;
  UdpSocket tx, rx;
  ImpairmentParams params;
  params.delay = 30ms;
  ImpairedLink link(loop, tx, params, Rng(2));
  link.send({7}, rx.local_endpoint());
  EXPECT_FALSE(rx.recv().has_value());  // Not yet on the wire.
  pump(loop, 100ms);
  EXPECT_TRUE(rx.recv().has_value());
}

TEST(LiveLoopback, CachingRecoveryOverRealSockets) {
  // Full live path: sender duplicates to the DC cache; the direct leg
  // drops 30% of datagrams; the receiver detects gaps and pulls the
  // missing packets from the DC. Everything must arrive.
  EventLoop loop;
  LiveCachingDc dc(loop);

  std::set<SeqNo> delivered;
  std::uint64_t recovered_count = 0;
  LiveReceiver receiver(
      loop, /*flow=*/1, dc.endpoint(),
      [&](const Packet& pkt, bool recovered) {
        delivered.insert(pkt.seq);
        if (recovered) ++recovered_count;
      });

  ImpairmentParams impair;
  impair.drop_probability = 0.3;
  impair.delay = 2ms;
  LiveSender sender(loop, 1, receiver.endpoint(), dc.endpoint(), impair, Rng(3));

  const int kPackets = 200;
  for (int i = 0; i < kPackets; ++i) {
    sender.send(std::vector<std::uint8_t>(64, static_cast<std::uint8_t>(i)));
    loop.run_once(1ms);
  }
  // Send a tail marker so the last gap is detectable, then drain.
  for (int i = 0; i < 10; ++i) {
    sender.send(std::vector<std::uint8_t>(8, 0xff));
    pump(loop, 20ms);
  }
  pump(loop, 500ms);

  // Every data packet 0..kPackets-1 must have been delivered eventually.
  std::size_t have = 0;
  for (SeqNo s = 0; s < kPackets; ++s) have += delivered.count(s);
  EXPECT_EQ(have, static_cast<std::size_t>(kPackets));
  EXPECT_GT(recovered_count, 10u);  // ~30% were pulled from the cache.
  EXPECT_GT(dc.served(), 10u);
  EXPECT_GT(sender.direct_stats().dropped, 10u);
}

}  // namespace
}  // namespace jqos::net
