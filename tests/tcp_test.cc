// Tests for the TCP model: segment wire format, clean-path transfers,
// loss recovery via retransmission, and the J-QoS interception benefit
// (Section 6.4 in miniature).
#include <gtest/gtest.h>

#include "app/web.h"
#include "netsim/network.h"
#include "overlay/datacenter.h"
#include "services/caching/caching_service.h"
#include "services/coding/encoder_dc.h"
#include "services/coding/recovery_dc.h"
#include "services/forwarding/forwarding_service.h"
#include "transport/tcp_model.h"

namespace jqos::transport {
namespace {

TEST(TcpSegment, SerializeParseRoundTrip) {
  TcpSegment seg;
  seg.conn_id = 7;
  seg.flags = TcpSegment::kData | TcpSegment::kAck;
  seg.seq = 12;
  seg.ack = 10;
  seg.total_segments = 36;
  seg.sacks = {{14, 16}, {20, 21}};
  auto parsed = TcpSegment::parse(seg.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->conn_id, seg.conn_id);
  EXPECT_EQ(parsed->flags, seg.flags);
  EXPECT_EQ(parsed->seq, seg.seq);
  EXPECT_EQ(parsed->ack, seg.ack);
  EXPECT_EQ(parsed->total_segments, seg.total_segments);
  EXPECT_EQ(parsed->sacks, seg.sacks);
}

TEST(TcpSegment, PaddingPreservesHeader) {
  TcpSegment seg;
  seg.conn_id = 1;
  seg.flags = TcpSegment::kData;
  auto bytes = seg.serialize(1400);
  EXPECT_EQ(bytes.size(), 1400u);
  auto parsed = TcpSegment::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->conn_id, 1u);
}

TEST(TcpSegment, ParseRejectsTruncated) {
  TcpSegment seg;
  auto bytes = seg.serialize();
  bytes.resize(5);
  EXPECT_FALSE(TcpSegment::parse(bytes).has_value());
}

// A miniature client/server topology. Optionally adds a J-QoS overlay
// (DC near server and DC near client) used when the session template asks
// for a service.
struct TcpFixture {
  netsim::Simulator sim;
  netsim::Network net{sim};
  endpoint::Sender server{net};
  std::unique_ptr<endpoint::Receiver> client;
  std::unique_ptr<overlay::DataCenter> dc1, dc2;
  services::FlowRegistryPtr registry = std::make_shared<services::FlowRegistry>();
  std::unique_ptr<endpoint::SessionManager> sessions;

  // p_first/p_subsequent: Google-study burst loss on the server->client
  // direction (the data direction).
  TcpFixture(double p_first, double p_subsequent, bool with_jqos) {
    if (with_jqos) {
      dc1 = std::make_unique<overlay::DataCenter>(net, 0, "dc1");
      dc2 = std::make_unique<overlay::DataCenter>(net, 1, "dc2");
      dc1->install(std::make_shared<services::ForwardingService>());
      dc2->install(std::make_shared<services::ForwardingService>());
      services::CodingParams cp;
      cp.k = 4;
      cp.in_block = 16;
      cp.queue_timeout = msec(10);
      dc1->install(std::make_shared<services::CodingEncoderService>(*dc1, cp, registry));
      dc2->install(
          std::make_shared<services::RecoveryService>(*dc2, services::RecoveryParams{},
                                                      registry));
    }

    endpoint::ReceiverConfig rc;
    rc.rtt_estimate = msec(200);
    rc.recovery_give_up = msec(200);
    if (with_jqos) rc.dc2 = dc2->id();
    client = std::make_unique<endpoint::Receiver>(net, rc);

    // Direct path: 100 ms one way => 200 ms RTT (the paper's setup).
    net.add_link(server.id(), client->id(), netsim::make_fixed_latency(msec(100)),
                 netsim::make_google_burst(p_first, p_subsequent, Rng(1)));
    net.add_link(client->id(), server.id(), netsim::make_fixed_latency(msec(100)),
                 netsim::make_bernoulli_loss(p_first, Rng(2)));

    if (with_jqos) {
      // 30 ms access links, 100 ms inter-DC (Section 6.4's topology).
      for (auto [a, b, lat] : {std::tuple{server.id(), dc1->id(), msec(30)},
                               std::tuple{dc1->id(), dc2->id(), msec(100)},
                               std::tuple{dc2->id(), client->id(), msec(30)},
                               std::tuple{client->id(), dc2->id(), msec(30)}}) {
        net.add_link(a, b, netsim::make_fixed_latency(lat), netsim::make_no_loss());
      }
    }
    sessions = std::make_unique<endpoint::SessionManager>(registry);
  }

  endpoint::RegisterRequest session_template(bool with_jqos) {
    endpoint::RegisterRequest req;
    req.delays.y_ms = 100.0;
    req.delays.delta_s_ms = 30.0;
    req.delays.delta_r_ms = 30.0;
    req.delays.x_ms = 100.0;
    if (with_jqos) {
      req.force_service = ServiceType::kCode;
      req.dc1 = dc1->id();
      req.dc2 = dc2->id();
    } else {
      req.force_service = ServiceType::kNone;
    }
    return req;
  }
};

TEST(TcpModel, CleanPathTransferCompletes) {
  TcpFixture f(0.0, 0.0, /*with_jqos=*/false);
  TcpWorkload workload(f.net, f.server, *f.client, *f.sessions,
                       f.session_template(false), TcpParams{});
  bool done = false;
  workload.run(3, 50 * 1000, 12, [&done] { done = true; });
  f.sim.run_until(minutes(5));
  EXPECT_TRUE(done);
  EXPECT_EQ(workload.completed(), 3u);
  ASSERT_EQ(workload.fct_ms().count(), 3u);
  // 50 KB at 200 ms RTT with IW10: handshake + request + ~2 windows of
  // data: roughly 3-4 RTTs, well under 2 s.
  EXPECT_LT(workload.fct_ms().max(), 2000.0);
  EXPECT_GT(workload.fct_ms().min(), 400.0);  // At least 2 RTTs.
  EXPECT_EQ(workload.server_stats().timeouts, 0u);
}

TEST(TcpModel, RecoversFromLossesWithoutJqos) {
  TcpFixture f(0.02, 0.5, /*with_jqos=*/false);
  TcpWorkload workload(f.net, f.server, *f.client, *f.sessions,
                       f.session_template(false), TcpParams{});
  bool done = false;
  workload.run(30, 50 * 1000, 12, [&done] { done = true; });
  f.sim.run_until(minutes(60));
  EXPECT_TRUE(done);
  EXPECT_EQ(workload.completed(), 30u);
  // Losses occurred and were repaired by TCP itself.
  EXPECT_GT(workload.server_stats().retransmits + workload.server_stats().timeouts, 0u);
}

TEST(TcpModel, JqosReducesTailLatency) {
  // The Section 6.4 effect, miniaturized: with bursty loss, plain TCP's
  // FCT tail stretches to multi-second RTO territory; with J-QoS recovery
  // feeding early ACKs, the tail shrinks.
  auto run_case = [](bool with_jqos) {
    TcpFixture f(0.03, 0.6, with_jqos);
    TcpWorkload workload(f.net, f.server, *f.client, *f.sessions,
                         f.session_template(with_jqos), TcpParams{});
    bool done = false;
    workload.run(80, 50 * 1000, 12, [&done] { done = true; });
    f.sim.run_until(minutes(200));
    EXPECT_TRUE(done);
    return workload.fct_ms().percentile(95);
  };
  const double tail_plain = run_case(false);
  const double tail_jqos = run_case(true);
  EXPECT_LT(tail_jqos, tail_plain);
}

TEST(TcpModel, HandshakeLossHandledByRetransmission) {
  // Drop everything for the first second: SYN retransmission with backoff
  // must eventually connect and finish.
  TcpFixture f(0.0, 0.0, /*with_jqos=*/false);
  // Replace the forward link with a scheduled outage at the start.
  f.net.add_link(f.server.id(), f.client->id(), netsim::make_fixed_latency(msec(100)),
                 netsim::make_scheduled_outages(netsim::make_no_loss(),
                                                {{0, sec(1)}}));
  f.net.add_link(f.client->id(), f.server.id(), netsim::make_fixed_latency(msec(100)),
                 netsim::make_scheduled_outages(netsim::make_no_loss(),
                                                {{0, sec(1)}}));
  TcpWorkload workload(f.net, f.server, *f.client, *f.sessions,
                       f.session_template(false), TcpParams{});
  bool done = false;
  workload.run(1, 20 * 1000, 12, [&done] { done = true; });
  f.sim.run_until(minutes(5));
  EXPECT_TRUE(done);
  // The handshake stall shows up as a >1 s completion.
  EXPECT_GT(workload.fct_ms().max(), 1000.0);
}

TEST(WebWorkload, WrapperRunsToCompletion) {
  TcpFixture f(0.01, 0.5, /*with_jqos=*/false);
  app::WebWorkloadParams params;
  params.requests = 10;
  params.response_bytes = 20 * 1000;
  auto result = app::run_web_workload(f.net, f.server, *f.client, *f.sessions,
                                      f.session_template(false), params);
  EXPECT_EQ(result.completed, 10u);
  EXPECT_EQ(result.fct_ms.count(), 10u);
  EXPECT_GT(result.acks, 0u);
}

}  // namespace
}  // namespace jqos::transport
