// Tests for the caching service: the TTL/LRU store, pull and NACK-based
// recovery, the hybrid-multicast and mobility (DTN rendezvous) use cases.
#include <gtest/gtest.h>

#include <memory>

#include "netsim/network.h"
#include "overlay/datacenter.h"
#include "services/caching/caching_service.h"

namespace jqos::services {
namespace {

PacketPtr cached_data(FlowId flow, SeqNo seq, std::size_t bytes = 64) {
  auto p = std::make_shared<Packet>();
  p->type = PacketType::kData;
  p->service = ServiceType::kCache;
  p->flow = flow;
  p->seq = seq;
  p->payload.assign(bytes, static_cast<std::uint8_t>(seq));
  return p;
}

// ------------------------------ CacheStore --------------------------------

TEST(CacheStore, PutGetRoundTrip) {
  CacheStore store;
  store.put(cached_data(1, 5), 0, sec(10));
  auto got = store.get(PacketKey{1, 5}, sec(1));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->seq, 5u);
  EXPECT_EQ(store.stats().hits, 1u);
}

TEST(CacheStore, ExpiryByTtl) {
  CacheStore store;
  store.put(cached_data(1, 1), 0, sec(10));
  EXPECT_NE(store.get(PacketKey{1, 1}, sec(9)), nullptr);
  EXPECT_EQ(store.get(PacketKey{1, 1}, sec(10)), nullptr);
  EXPECT_EQ(store.stats().expirations, 1u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(CacheStore, SweepReclaimsExpired) {
  CacheStore store;
  for (SeqNo s = 0; s < 10; ++s) store.put(cached_data(1, s), 0, sec(1));
  for (SeqNo s = 10; s < 15; ++s) store.put(cached_data(1, s), 0, sec(100));
  EXPECT_EQ(store.sweep(sec(2)), 10u);
  EXPECT_EQ(store.size(), 5u);
}

TEST(CacheStore, RefreshExtendsTtlAndUpdatesBytes) {
  CacheStore store;
  store.put(cached_data(1, 1, 64), 0, sec(5));
  store.put(cached_data(1, 1, 128), sec(4), sec(5));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_NE(store.get(PacketKey{1, 1}, sec(8)), nullptr);  // Refreshed TTL.
  auto got = store.get(PacketKey{1, 1}, sec(8));
  EXPECT_EQ(got->payload.size(), 128u);
}

TEST(CacheStore, LruEvictionUnderCapacity) {
  // Capacity for roughly three 64-byte-payload packets.
  CacheStore store(3 * (64 + packet_header_bytes() + 4));
  store.put(cached_data(1, 0), 0, sec(100));
  store.put(cached_data(1, 1), 0, sec(100));
  store.put(cached_data(1, 2), 0, sec(100));
  // Touch 0 so 1 becomes the LRU victim.
  EXPECT_NE(store.get(PacketKey{1, 0}, 1), nullptr);
  store.put(cached_data(1, 3), 0, sec(100));
  EXPECT_GT(store.stats().capacity_evictions, 0u);
  EXPECT_NE(store.get(PacketKey{1, 0}, 1), nullptr);
  EXPECT_EQ(store.get(PacketKey{1, 1}, 1), nullptr);  // Evicted.
}

TEST(CacheStore, MissCounted) {
  CacheStore store;
  EXPECT_EQ(store.get(PacketKey{9, 9}, 0), nullptr);
  EXPECT_EQ(store.stats().misses, 1u);
}

// ---------------------------- CachingService ------------------------------

struct Fixture {
  netsim::Simulator sim;
  netsim::Network net{sim};
  overlay::DataCenter dc{net, 0, "dc2"};
  std::shared_ptr<CachingService> cache = std::make_shared<CachingService>(sec(30));

  struct Sink final : netsim::Node {
    explicit Sink(netsim::Network& n) : id_(n.allocate_id()) { n.attach(*this); }
    NodeId id() const override { return id_; }
    void handle_packet(const PacketPtr& pkt) override { received.push_back(pkt); }
    NodeId id_;
    std::vector<PacketPtr> received;
  };

  Fixture() { dc.install(cache); }

  std::unique_ptr<Sink> add_receiver() {
    auto s = std::make_unique<Sink>(net);
    net.add_link(dc.id(), s->id(), netsim::make_fixed_latency(msec(5)),
                 netsim::make_no_loss());
    return s;
  }
};

TEST(CachingService, CachesTaggedDataOnly) {
  Fixture f;
  auto tagged = cached_data(1, 0);
  EXPECT_TRUE(f.cache->handle(f.dc, tagged));
  auto untagged = std::make_shared<Packet>();
  untagged->type = PacketType::kData;
  untagged->service = ServiceType::kCode;
  EXPECT_FALSE(f.cache->handle(f.dc, untagged));
  EXPECT_EQ(f.cache->stats().cached, 1u);
}

TEST(CachingService, PullReturnsRecoveredCopy) {
  Fixture f;
  auto receiver = f.add_receiver();
  f.cache->handle(f.dc, cached_data(1, 7));

  auto pull = std::make_shared<Packet>();
  pull->type = PacketType::kPull;
  pull->service = ServiceType::kCache;
  pull->flow = 1;
  pull->seq = 7;
  pull->src = receiver->id();
  pull->dst = f.dc.id();
  f.dc.handle_packet(pull);
  f.sim.run();

  ASSERT_EQ(receiver->received.size(), 1u);
  EXPECT_EQ(receiver->received[0]->type, PacketType::kRecovered);
  EXPECT_EQ(receiver->received[0]->seq, 7u);
  EXPECT_EQ(f.cache->stats().pull_hits, 1u);
}

TEST(CachingService, PullMissFailsSilently) {
  Fixture f;
  auto receiver = f.add_receiver();
  auto pull = std::make_shared<Packet>();
  pull->type = PacketType::kPull;
  pull->service = ServiceType::kCache;
  pull->flow = 1;
  pull->seq = 99;
  pull->src = receiver->id();
  pull->dst = f.dc.id();
  f.dc.handle_packet(pull);
  f.sim.run();
  EXPECT_TRUE(receiver->received.empty());
  EXPECT_EQ(f.cache->stats().pull_misses, 1u);
}

TEST(CachingService, NackServesExplicitMissingList) {
  Fixture f;
  auto receiver = f.add_receiver();
  for (SeqNo s = 0; s < 5; ++s) f.cache->handle(f.dc, cached_data(2, s));

  NackInfo info;
  info.missing = {1, 3};
  auto nack = std::make_shared<Packet>();
  nack->type = PacketType::kNack;
  nack->service = ServiceType::kCache;
  nack->flow = 2;
  nack->src = receiver->id();
  nack->dst = f.dc.id();
  nack->payload = info.serialize();
  f.dc.handle_packet(nack);
  f.sim.run();

  ASSERT_EQ(receiver->received.size(), 2u);
  EXPECT_EQ(receiver->received[0]->seq, 1u);
  EXPECT_EQ(receiver->received[1]->seq, 3u);
}

TEST(CachingService, TailNackServesContiguousRun) {
  // The mobility use case (Fig 3(e)): the receiver comes online and pulls
  // everything cached from its last-known sequence number onward.
  Fixture f;
  auto receiver = f.add_receiver();
  for (SeqNo s = 10; s < 20; ++s) f.cache->handle(f.dc, cached_data(3, s));

  NackInfo info;
  info.tail = true;
  info.expected = 10;
  auto nack = std::make_shared<Packet>();
  nack->type = PacketType::kNack;
  nack->service = ServiceType::kCache;
  nack->flow = 3;
  nack->src = receiver->id();
  nack->dst = f.dc.id();
  nack->payload = info.serialize();
  f.dc.handle_packet(nack);
  f.sim.run();

  ASSERT_EQ(receiver->received.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(receiver->received[i]->seq, 10 + i);
  }
}

TEST(CachingService, HybridMulticastServesManyReceivers) {
  // One cached copy, several receivers pulling the same packet (Fig 3(d)).
  Fixture f;
  auto r1 = f.add_receiver();
  auto r2 = f.add_receiver();
  f.cache->handle(f.dc, cached_data(4, 0));
  for (auto* r : {r1.get(), r2.get()}) {
    auto pull = std::make_shared<Packet>();
    pull->type = PacketType::kPull;
    pull->service = ServiceType::kCache;
    pull->flow = 4;
    pull->seq = 0;
    pull->src = r->id();
    pull->dst = f.dc.id();
    f.dc.handle_packet(pull);
  }
  f.sim.run();
  EXPECT_EQ(r1->received.size(), 1u);
  EXPECT_EQ(r2->received.size(), 1u);
}

TEST(CachingService, IgnoresForeignNacks) {
  Fixture f;
  auto nack = std::make_shared<Packet>();
  nack->type = PacketType::kNack;
  nack->service = ServiceType::kCode;  // Belongs to the coding service.
  EXPECT_FALSE(f.cache->handle(f.dc, nack));
}

}  // namespace
}  // namespace jqos::services
