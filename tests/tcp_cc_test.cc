// Differential + behavioral tests for the pluggable congestion-control
// layer (transport/congestion.h).
//
// The Reno golden tests pin the refactor: the FCT samples and server stats
// below were captured from the pre-refactor TcpWorkload (hard-coded Reno)
// on the exact scenario reproduced here. RenoCc must stay byte-identical —
// any drift in these arrays means the transport split changed behavior.
// The scenario sets `tcp.cc` explicitly, so the pins are immune to the
// JQOS_TCP_CC environment override.
#include <gtest/gtest.h>

#include <cstdlib>

#include "app/web.h"
#include "netsim/network.h"
#include "overlay/datacenter.h"
#include "services/coding/encoder_dc.h"
#include "services/coding/recovery_dc.h"
#include "services/forwarding/forwarding_service.h"
#include "transport/tcp_model.h"

namespace jqos::transport {
namespace {

// Mirrors the pre-refactor capture harness: 40 short web transfers under
// Google-study burst loss (p_first = 0.02, p_subsequent = 0.5), 200 ms RTT,
// optionally through the J-QoS CR-WAN coding overlay.
app::WebResult run_golden_scenario(bool with_jqos, const TcpParams& tcp) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  Rng rng(42);

  auto registry = std::make_shared<services::FlowRegistry>();
  endpoint::Sender server(net);
  std::unique_ptr<overlay::DataCenter> dc1, dc2;
  std::shared_ptr<services::ForwardingService> fwd1;
  if (with_jqos) {
    dc1 = std::make_unique<overlay::DataCenter>(net, 0, "dc1");
    dc2 = std::make_unique<overlay::DataCenter>(net, 1, "dc2");
    fwd1 = std::make_shared<services::ForwardingService>();
    dc1->install(fwd1);
    dc2->install(std::make_shared<services::ForwardingService>());
    services::CodingParams cp;
    cp.k = 6;
    cp.cross_coded = 2;
    cp.in_block = 16;
    cp.in_coded = 1;
    cp.queue_timeout = msec(10);
    dc1->install(std::make_shared<services::CodingEncoderService>(*dc1, cp, registry));
    services::RecoveryParams rp;
    rp.coop_deadline = msec(150);
    dc2->install(std::make_shared<services::RecoveryService>(*dc2, rp, registry));
  }

  endpoint::ReceiverConfig rc;
  rc.rtt_estimate = msec(200);
  rc.recovery_give_up = msec(250);
  if (dc2) rc.dc2 = dc2->id();
  endpoint::Receiver client(net, rc);

  net.add_link(server.id(), client.id(), netsim::make_fixed_latency(msec(100)),
               netsim::make_google_burst(0.02, 0.5, rng.fork("fwd-loss")));
  net.add_link(client.id(), server.id(), netsim::make_fixed_latency(msec(100)),
               netsim::make_bernoulli_loss(0.002, rng.fork("rev-loss")));
  if (dc1) {
    fwd1->set_next_hop(client.id(), dc2->id());
    for (auto [a, b, lat] : {std::tuple{server.id(), dc1->id(), msec(15)},
                             std::tuple{dc1->id(), dc2->id(), msec(100)},
                             std::tuple{dc2->id(), client.id(), msec(15)},
                             std::tuple{client.id(), dc2->id(), msec(15)}}) {
      net.add_link(a, b, netsim::make_fixed_latency(lat), netsim::make_no_loss());
    }
  }

  endpoint::SessionManager sessions(registry);
  endpoint::RegisterRequest req;
  req.delays.y_ms = 100.0;
  req.delays.delta_s_ms = 15.0;
  req.delays.delta_r_ms = 15.0;
  req.delays.x_ms = 100.0;
  if (with_jqos) {
    req.force_service = ServiceType::kCode;
    req.dc1 = dc1->id();
    req.dc2 = dc2->id();
  } else {
    req.force_service = ServiceType::kNone;
  }

  app::WebWorkloadParams params;
  params.requests = 40;
  params.response_bytes = 50 * 1000;
  params.request_bytes = 12;
  params.tcp = tcp;
  return app::run_web_workload(net, server, client, sessions, req, params);
}

void expect_fct_trace(const Samples& got, const std::vector<double>& want) {
  ASSERT_EQ(got.values().size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got.values()[i], want[i], 1e-6) << "FCT sample " << i << " drifted";
  }
}

TEST(CongestionControl, RenoGoldenPlainTcp) {
  TcpParams tcp;
  tcp.cc = CcKind::kReno;  // Pin explicitly: the test must ignore JQOS_TCP_CC.
  const app::WebResult r = run_golden_scenario(/*with_jqos=*/false, tcp);

  EXPECT_EQ(r.completed, 40u);
  EXPECT_EQ(r.server.retransmits, 57u);
  EXPECT_EQ(r.server.timeouts, 3u);
  EXPECT_EQ(r.server.fast_retransmits, 36u);
  EXPECT_EQ(r.acks, 1440u);
  EXPECT_EQ(r.server.ecn_echoes, 0u);  // Nothing marks on a latency-only path.
  expect_fct_trace(
      r.fct_ms,
      {800,      800, 800,  800,  800,  800, 800, 2028.506, 800, 1800,
       800,      800, 800,  800,  1800, 800, 800, 800,      800, 800,
       800,      800, 800,  1000, 800,  800, 800, 800,      1000, 800,
       800, 1432.127, 800, 1000, 1000, 1000, 800, 800,      800, 800});
}

TEST(CongestionControl, RenoGoldenOverCrwan) {
  TcpParams tcp;
  tcp.cc = CcKind::kReno;
  const app::WebResult r = run_golden_scenario(/*with_jqos=*/true, tcp);

  EXPECT_EQ(r.completed, 40u);
  EXPECT_EQ(r.server.retransmits, 45u);
  EXPECT_EQ(r.server.timeouts, 5u);
  EXPECT_EQ(r.server.fast_retransmits, 26u);
  EXPECT_EQ(r.acks, 1450u);
  expect_fct_trace(
      r.fct_ms,
      {800,      800, 800, 800,      800, 800,  800,      1439.502, 800, 1800,
       800,      800, 800, 800,      1400, 800, 800,      800,      800, 800,
       800,      800, 800, 1032,     800, 800,  800,      800,      860, 800,
       800, 1598.143, 800, 860, 2430.210, 860,  1260,     860,      800, 800});
}

// The other controllers need not (and do not) match Reno's trace; they must
// still complete every transfer under the same bursty loss. Bounds are kept
// loose so this stays a liveness test, not an accidental pin.
TEST(CongestionControl, RackCompletesUnderBurstLoss) {
  TcpParams tcp;
  tcp.cc = CcKind::kRack;
  const app::WebResult r = run_golden_scenario(/*with_jqos=*/false, tcp);
  EXPECT_EQ(r.completed, 40u);
  EXPECT_GT(r.server.retransmits, 0u);
  for (double v : r.fct_ms.values()) {
    EXPECT_GE(v, 800.0);  // 4 RTTs minimum: SYN, request, 2+ data windows.
    EXPECT_LT(v, 60e3);
  }
}

TEST(CongestionControl, BbrLiteCompletesUnderBurstLoss) {
  TcpParams tcp;
  tcp.cc = CcKind::kBbrLite;
  const app::WebResult r = run_golden_scenario(/*with_jqos=*/false, tcp);
  EXPECT_EQ(r.completed, 40u);
  for (double v : r.fct_ms.values()) {
    EXPECT_GE(v, 800.0);
    EXPECT_LT(v, 60e3);
  }
}

// BBR paces: after a transfer with measurable delivery rate it must report
// a nonzero pacing rate, while Reno stays ack-clocked (rate 0). Uses a
// clean path so the rate estimate is deterministic in sign.
TEST(CongestionControl, BbrReportsPacingRateRenoDoesNot) {
  for (const CcKind kind : {CcKind::kReno, CcKind::kBbrLite}) {
    netsim::Simulator sim;
    netsim::Network net(sim);
    auto registry = std::make_shared<services::FlowRegistry>();
    endpoint::Sender server(net);
    endpoint::ReceiverConfig rc;
    rc.rtt_estimate = msec(200);
    endpoint::Receiver client(net, rc);
    net.add_link(server.id(), client.id(), netsim::make_fixed_latency(msec(100)),
                 netsim::make_no_loss());
    net.add_link(client.id(), server.id(), netsim::make_fixed_latency(msec(100)),
                 netsim::make_no_loss());
    endpoint::SessionManager sessions(registry);
    endpoint::RegisterRequest req;
    req.force_service = ServiceType::kNone;

    TcpParams tcp;
    tcp.cc = kind;
    TcpWorkload workload(net, server, client, sessions, req, tcp);
    workload.run(2, 50 * 1000);
    sim.run();

    EXPECT_EQ(workload.completed(), 2u);
    if (kind == CcKind::kBbrLite) {
      EXPECT_GT(workload.cc().pacing_rate_bps(), 0.0) << workload.cc().name();
    } else {
      EXPECT_EQ(workload.cc().pacing_rate_bps(), 0.0) << workload.cc().name();
    }
  }
}

TEST(CongestionControl, KindNamesRoundTrip) {
  for (const CcKind k : {CcKind::kReno, CcKind::kRack, CcKind::kBbrLite}) {
    const auto parsed = parse_cc_kind(cc_kind_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
    EXPECT_STREQ(make_congestion_controller(k)->name(), cc_kind_name(k));
  }
  EXPECT_EQ(parse_cc_kind("bbr"), CcKind::kBbrLite);  // CLI/env spelling.
  EXPECT_FALSE(parse_cc_kind("cubic").has_value());
}

TEST(CongestionControl, ResolutionPrefersFactoryThenKind) {
  TcpParams p;
  p.cc = CcKind::kRack;
  EXPECT_EQ(p.resolved_cc(), CcKind::kRack);
  EXPECT_STREQ(make_congestion_controller(p)->name(), "rack");

  p.cc_factory = make_bbr_lite_cc;  // Factory outranks the explicit kind.
  EXPECT_STREQ(make_congestion_controller(p)->name(), "bbr");
}

}  // namespace
}  // namespace jqos::transport
