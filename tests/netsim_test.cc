// Tests for the discrete-event simulator: event ordering and cancellation,
// clock semantics, loss processes (empirical rates and burst structure),
// latency models, link behaviour, and the network fabric.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "netsim/latency_model.h"
#include "netsim/link.h"
#include "netsim/loss_model.h"
#include "netsim/network.h"
#include "netsim/simulator.h"

namespace jqos::netsim {
namespace {

constexpr EvqBackend kBackends[] = {EvqBackend::kHeap, EvqBackend::kLadder};

TEST(EventQueue, FifoWithinSameTimestamp) {
  for (EvqBackend b : kBackends) {
    EventQueue q(b);
    std::vector<int> order;
    q.push(100, [&] { order.push_back(1); });
    q.push(100, [&] { order.push_back(2); });
    q.push(50, [&] { order.push_back(0); });
    while (!q.empty()) q.pop().fn();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2})) << evq_backend_name(b);
  }
}

TEST(EventQueue, CancelIsLazyAndSafe) {
  for (EvqBackend b : kBackends) {
    EventQueue q(b);
    int fired = 0;
    const EventId a = q.push(10, [&] { ++fired; });
    q.push(20, [&] { ++fired; });
    q.cancel(a);
    q.cancel(a);      // Double cancel: no-op.
    q.cancel(12345);  // Unknown id: no-op.
    EXPECT_EQ(q.size(), 1u) << evq_backend_name(b);
    while (!q.empty()) q.pop().fn();
    EXPECT_EQ(fired, 1) << evq_backend_name(b);
  }
}

TEST(EventQueue, CancelOfFiredIdIsNoOpEvenAfterSlotReuse) {
  for (EvqBackend b : kBackends) {
    EventQueue q(b);
    int first = 0, second = 0;
    const EventId a = q.push(10, [&] { ++first; });
    q.pop().fn();
    // The slot is recycled for a new event; the stale id must not touch it.
    q.push(20, [&] { ++second; });
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u) << evq_backend_name(b);
    while (!q.empty()) q.pop().fn();
    EXPECT_EQ(first, 1) << evq_backend_name(b);
    EXPECT_EQ(second, 1) << evq_backend_name(b);
  }
}

TEST(EventQueue, PopReadyBatchesByHorizon) {
  for (EvqBackend b : kBackends) {
    EventQueue q(b);
    std::vector<int> order;
    q.push(30, [&] { order.push_back(3); });
    q.push(10, [&] { order.push_back(0); });
    q.push(20, [&] { order.push_back(2); });
    q.push(10, [&] { order.push_back(1); });
    std::vector<EventQueue::Fired> batch;
    EXPECT_EQ(q.pop_ready(20, batch), 3u) << evq_backend_name(b);
    for (auto& f : batch) f.fn();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2})) << evq_backend_name(b);
    EXPECT_EQ(q.size(), 1u) << evq_backend_name(b);
    EXPECT_EQ(q.next_time(), 30) << evq_backend_name(b);
  }
}

TEST(EventQueue, DrainPicksUpEventsPushedAndCancelledMidBatch) {
  for (EvqBackend b : kBackends) {
    EventQueue q(b);
    std::vector<int> order;
    // Event 0 (t=10) pushes a same-time event and one past the horizon, and
    // cancels event 2 (t=10, already queued behind it).
    EventId doomed = 0;
    q.push(10, [&] {
      order.push_back(0);
      q.push(10, [&] { order.push_back(9); });  // Fires within this drain.
      q.push(99, [&] { order.push_back(4); });  // Beyond the horizon.
      q.cancel(doomed);
    });
    q.push(10, [&] { order.push_back(1); });
    doomed = q.push(10, [&] { order.push_back(2); });
    const std::size_t fired = q.drain(50, [](SimTime, EventFn&& fn) { fn(); });
    EXPECT_EQ(fired, 3u) << evq_backend_name(b);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 9})) << evq_backend_name(b);
    EXPECT_EQ(q.size(), 1u) << evq_backend_name(b);
  }
}

TEST(EventQueue, SlabIsBoundedByLiveEventsNotTotalPushed) {
  for (EvqBackend b : kBackends) {
    EventQueue q(b);
    Rng rng(7);
    constexpr std::size_t kLive = 256;
    SimTime now = 0;
    for (std::size_t i = 0; i < kLive; ++i) q.push(rng.uniform_int(0, 10000), [] {});
    // 100k fired events through a slab that should never outgrow ~kLive.
    for (int i = 0; i < 100000; ++i) {
      auto fired = q.pop();
      now = fired.at;
      q.push(now + rng.uniform_int(0, 10000), [] {});
    }
    EXPECT_EQ(q.size(), kLive) << evq_backend_name(b);
    EXPECT_LE(q.slab_slots(), 2 * kLive) << evq_backend_name(b);
  }
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<SimTime> stamps;
  sim.at(100, [&] { stamps.push_back(sim.now()); });
  sim.after(50, [&] { stamps.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(stamps, (std::vector<SimTime>{50, 100}));
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.at(100, [] {});
  sim.run();
  EXPECT_THROW(sim.at(50, [] {}), std::invalid_argument);
  sim.after(-10, [] {});  // Negative delays clamp to now.
  EXPECT_FALSE(sim.idle());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.at(100, [&] { ++fired; });
  sim.at(200, [&] { ++fired; });
  sim.run_until(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 150);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.after(10, recurse);
  };
  sim.after(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 90);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto trace = [] {
    Simulator sim;
    Rng rng(11);
    std::vector<SimTime> out;
    for (int i = 0; i < 100; ++i) {
      sim.after(rng.uniform_int(0, 1000), [&out, &sim] { out.push_back(sim.now()); });
    }
    sim.run();
    return out;
  };
  EXPECT_EQ(trace(), trace());
}

// ------------------------------ loss models -------------------------------

TEST(LossModel, BernoulliEmpiricalRate) {
  auto m = make_bernoulli_loss(0.05, Rng(1));
  int drops = 0;
  for (int i = 0; i < 100000; ++i) drops += m->should_drop(i) ? 1 : 0;
  EXPECT_NEAR(drops / 100000.0, 0.05, 0.005);
}

TEST(LossModel, NoLossNeverDrops) {
  auto m = make_no_loss();
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(m->should_drop(i));
}

TEST(LossModel, GilbertElliottProducesBursts) {
  GilbertElliottParams p;
  p.p_good_to_bad = 0.01;
  p.p_bad_to_good = 0.2;
  p.loss_in_good = 0.0;
  p.loss_in_bad = 0.9;
  auto m = make_gilbert_elliott(p, Rng(2));
  int drops = 0, bursts = 0;
  bool in_burst = false;
  std::size_t longest = 0, current = 0;
  for (int i = 0; i < 200000; ++i) {
    const bool d = m->should_drop(i);
    drops += d ? 1 : 0;
    if (d) {
      if (!in_burst) ++bursts;
      in_burst = true;
      ++current;
      longest = std::max(longest, current);
    } else {
      in_burst = false;
      current = 0;
    }
  }
  ASSERT_GT(bursts, 0);
  const double mean_burst = static_cast<double>(drops) / bursts;
  EXPECT_GT(mean_burst, 1.5);  // Losses cluster.
  EXPECT_GE(longest, 4u);
}

TEST(LossModel, GoogleBurstMatchesParameters) {
  auto m = make_google_burst(0.01, 0.5, Rng(3));
  int first_losses = 0, opportunities = 0, continuations = 0, continuation_hits = 0;
  bool prev_lost = false;
  for (int i = 0; i < 500000; ++i) {
    const bool d = m->should_drop(i);
    if (prev_lost) {
      ++continuations;
      continuation_hits += d ? 1 : 0;
    } else {
      ++opportunities;
      first_losses += d ? 1 : 0;
    }
    prev_lost = d;
  }
  EXPECT_NEAR(static_cast<double>(first_losses) / opportunities, 0.01, 0.002);
  EXPECT_NEAR(static_cast<double>(continuation_hits) / continuations, 0.5, 0.03);
}

TEST(LossModel, OutagesDropEverythingInWindow) {
  OutageParams p;
  p.mean_interval = sec(10);
  p.min_len = sec(1);
  p.max_len = sec(1);
  auto m = make_outage_over(make_no_loss(), p, Rng(4));
  // Scan one packet per millisecond for 200 simulated seconds.
  int drops = 0;
  std::size_t longest_run = 0, run = 0;
  for (SimTime t = 0; t < sec(200); t += msec(1)) {
    if (m->should_drop(t)) {
      ++drops;
      ++run;
      longest_run = std::max(longest_run, run);
    } else {
      run = 0;
    }
  }
  EXPECT_GT(drops, 0);
  // A 1 s outage at 1 packet/ms is ~1000 consecutive drops.
  EXPECT_GE(longest_run, 500u);
}

TEST(LossModel, ScheduledOutageWindows) {
  std::vector<OutageWindow> w = {{sec(1), sec(2)}, {sec(5), sec(6)}};
  auto m = make_scheduled_outages(make_no_loss(), std::move(w));
  EXPECT_FALSE(m->should_drop(msec(500)));
  EXPECT_TRUE(m->should_drop(msec(1500)));
  EXPECT_FALSE(m->should_drop(msec(3000)));
  EXPECT_TRUE(m->should_drop(msec(5500)));
  EXPECT_FALSE(m->should_drop(msec(7000)));
}

// ----------------------------- latency models -----------------------------

TEST(LatencyModel, FixedIsConstant) {
  auto m = make_fixed_latency(msec(42));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(m->sample(i), msec(42));
  EXPECT_EQ(m->base(), msec(42));
}

TEST(LatencyModel, JitterAboveBaseAndSpiky) {
  JitterParams p;
  p.base = msec(40);
  p.jitter_scale_ms = 2.0;
  p.jitter_sigma = 0.5;
  p.spike_prob = 0.05;
  p.spike_scale_ms = 30.0;
  auto m = make_jitter_latency(p, Rng(5));
  int spikes = 0;
  for (int i = 0; i < 20000; ++i) {
    const SimDuration d = m->sample(i);
    ASSERT_GT(d, msec(40));
    if (d > msec(70)) ++spikes;
  }
  EXPECT_GT(spikes, 100);  // The tail exists.
  EXPECT_LT(spikes, 4000); // But it is a tail.
}

// --------------------------------- link -----------------------------------

struct SinkNode final : Node {
  explicit SinkNode(NodeId id) : id_(id) {}
  NodeId id() const override { return id_; }
  void handle_packet(const PacketPtr& pkt) override { received.push_back(pkt); }
  NodeId id_;
  std::vector<PacketPtr> received;
};

TEST(Link, DeliversWithLatency) {
  Simulator sim;
  Link link(sim, 1, 2, make_fixed_latency(msec(10)), make_no_loss());
  SimTime delivered_at = -1;
  link.send(make_data_packet(1, 0, 1, 2, sim.now(), 100),
            [&](const PacketPtr&) { delivered_at = sim.now(); });
  sim.run();
  EXPECT_EQ(delivered_at, msec(10));
  EXPECT_EQ(link.stats().delivered_packets, 1u);
}

TEST(Link, LossCountsAndSuppressesDelivery) {
  Simulator sim;
  Link link(sim, 1, 2, make_fixed_latency(msec(1)), make_bernoulli_loss(1.0, Rng(1)));
  int delivered = 0;
  link.send(make_data_packet(1, 0, 1, 2, 0, 10), [&](const PacketPtr&) { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.stats().dropped_packets, 1u);
  EXPECT_DOUBLE_EQ(link.stats().loss_rate(), 1.0);
}

TEST(Link, BandwidthSerializesFifo) {
  Simulator sim;
  // 8 kbit/s: a 100-byte packet (800 bits) takes 100 ms to serialize.
  Link link(sim, 1, 2, make_fixed_latency(0), make_no_loss(), 8000.0);
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 3; ++i) {
    auto p = std::make_shared<Packet>();
    p->dst = 2;
    p->payload.assign(100 - packet_header_bytes(), 0);
    link.send(p, [&](const PacketPtr&) { arrivals.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], msec(100));
  EXPECT_EQ(arrivals[1], msec(200));
  EXPECT_EQ(arrivals[2], msec(300));
}

TEST(Link, PreserveOrderPreventsReordering) {
  Simulator sim;
  JitterParams p;
  p.base = msec(10);
  p.jitter_scale_ms = 5.0;
  p.jitter_sigma = 1.2;
  Link link(sim, 1, 2, make_jitter_latency(p, Rng(6)), make_no_loss());
  std::vector<SeqNo> arrivals;
  for (SeqNo s = 0; s < 200; ++s) {
    link.send(make_data_packet(1, s, 1, 2, sim.now(), 10),
              [&arrivals](const PacketPtr& pkt) { arrivals.push_back(pkt->seq); });
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 200u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
}

// -------------------------------- network ---------------------------------

TEST(Network, RoutesBetweenNodes) {
  Simulator sim;
  Network net(sim);
  SinkNode a(net.allocate_id()), b(net.allocate_id());
  net.attach(a);
  net.attach(b);
  net.add_link(a.id(), b.id(), make_fixed_latency(msec(5)), make_no_loss());
  net.send(a.id(), make_data_packet(1, 0, a.id(), b.id(), 0, 10));
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0]->seq, 0u);
}

TEST(Network, MissingLinkCountsRoutingFailure) {
  Simulator sim;
  Network net(sim);
  SinkNode a(net.allocate_id()), b(net.allocate_id());
  net.attach(a);
  net.attach(b);
  net.send(a.id(), make_data_packet(1, 0, a.id(), b.id(), 0, 10));
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.routing_failures(), 1u);
}

TEST(Network, LinkLookup) {
  Simulator sim;
  Network net(sim);
  SinkNode a(net.allocate_id()), b(net.allocate_id());
  net.attach(a);
  net.attach(b);
  net.add_link(a.id(), b.id(), make_fixed_latency(1), make_no_loss());
  EXPECT_NE(net.link(a.id(), b.id()), nullptr);
  EXPECT_EQ(net.link(b.id(), a.id()), nullptr);
}

}  // namespace
}  // namespace jqos::netsim
