// Tests for the forwarding service: unicast relay, next-hop pinning,
// multicast expansion, and the Figure 3 use cases.
#include <gtest/gtest.h>

#include "netsim/network.h"
#include "overlay/datacenter.h"
#include "services/forwarding/forwarding_service.h"

namespace jqos::services {
namespace {

struct Fixture {
  netsim::Simulator sim;
  netsim::Network net{sim};
  overlay::DataCenter dc1{net, 0, "dc1"};
  overlay::DataCenter dc2{net, 1, "dc2"};
  std::shared_ptr<ForwardingService> fwd1 = std::make_shared<ForwardingService>();
  std::shared_ptr<ForwardingService> fwd2 = std::make_shared<ForwardingService>();

  struct Sink final : netsim::Node {
    explicit Sink(netsim::Network& net) : id_(net.allocate_id()) { net.attach(*this); }
    NodeId id() const override { return id_; }
    void handle_packet(const PacketPtr& pkt) override { received.push_back(pkt); }
    NodeId id_;
    std::vector<PacketPtr> received;
  };

  Fixture() {
    dc1.install(fwd1);
    dc2.install(fwd2);
    net.add_link(dc1.id(), dc2.id(), netsim::make_fixed_latency(msec(30)),
                 netsim::make_no_loss());
  }

  std::unique_ptr<Sink> make_sink_with_links_from(overlay::DataCenter& dc) {
    auto sink = std::make_unique<Sink>(net);
    net.add_link(dc.id(), sink->id(), netsim::make_fixed_latency(msec(5)),
                 netsim::make_no_loss());
    return sink;
  }
};

TEST(Forwarding, RelaysTowardFinalDestination) {
  Fixture f;
  auto receiver = f.make_sink_with_links_from(f.dc2);

  // Full overlay: packet enters DC1 with final_dst = receiver; DC1 must
  // route via DC2 (pinned next hop), DC2 delivers to the receiver.
  f.fwd1->set_next_hop(receiver->id(), f.dc2.id());

  auto pkt = std::make_shared<Packet>();
  pkt->type = PacketType::kData;
  pkt->service = ServiceType::kForward;
  pkt->flow = 1;
  pkt->dst = f.dc1.id();
  pkt->final_dst = receiver->id();
  f.dc1.handle_packet(pkt);
  f.sim.run();

  ASSERT_EQ(receiver->received.size(), 1u);
  EXPECT_EQ(f.fwd1->stats().forwarded, 1u);
  EXPECT_EQ(f.fwd2->stats().forwarded, 1u);
  // Latency accumulated both hops: 30 ms + 5 ms.
  EXPECT_EQ(f.sim.now(), msec(35));
}

TEST(Forwarding, DirectWhenNoRoutePinned) {
  Fixture f;
  auto receiver = f.make_sink_with_links_from(f.dc1);
  auto pkt = std::make_shared<Packet>();
  pkt->service = ServiceType::kForward;
  pkt->dst = f.dc1.id();
  pkt->final_dst = receiver->id();
  f.dc1.handle_packet(pkt);
  f.sim.run();
  ASSERT_EQ(receiver->received.size(), 1u);  // Partial overlay (Fig 3(b)).
}

TEST(Forwarding, IgnoresPacketsTerminatingHere) {
  Fixture f;
  auto pkt = std::make_shared<Packet>();
  pkt->dst = f.dc1.id();
  pkt->final_dst = f.dc1.id();
  EXPECT_FALSE(f.fwd1->handle(f.dc1, pkt));
  auto local = std::make_shared<Packet>();
  local->dst = f.dc1.id();
  local->final_dst = kInvalidNode;
  EXPECT_FALSE(f.fwd1->handle(f.dc1, local));
}

TEST(Forwarding, MulticastFansOutToAllMembers) {
  Fixture f;
  auto r1 = f.make_sink_with_links_from(f.dc1);
  auto r2 = f.make_sink_with_links_from(f.dc1);
  auto r3 = f.make_sink_with_links_from(f.dc1);
  const NodeId group = kMulticastBase + 1;
  f.fwd1->set_multicast_group(group, {r1->id(), r2->id(), r3->id()});

  auto pkt = std::make_shared<Packet>();
  pkt->service = ServiceType::kForward;
  pkt->dst = f.dc1.id();
  pkt->final_dst = group;
  f.dc1.handle_packet(pkt);
  f.sim.run();

  EXPECT_EQ(r1->received.size(), 1u);
  EXPECT_EQ(r2->received.size(), 1u);
  EXPECT_EQ(r3->received.size(), 1u);
  EXPECT_EQ(f.fwd1->stats().multicast_copies, 3u);
  // Each copy is readdressed to its member.
  EXPECT_EQ(r1->received[0]->dst, r1->id());
  EXPECT_EQ(r1->received[0]->final_dst, r1->id());
}

TEST(Forwarding, UnknownMulticastGroupCounted) {
  Fixture f;
  auto pkt = std::make_shared<Packet>();
  pkt->dst = f.dc1.id();
  pkt->final_dst = kMulticastBase + 99;
  EXPECT_TRUE(f.fwd1->handle(f.dc1, pkt));
  EXPECT_EQ(f.fwd1->stats().no_route, 1u);
}

TEST(Forwarding, EgressChargedTwiceOnFullOverlay) {
  // The 2c cost of the forwarding use case (Fig 2(b)): both DCs egress.
  Fixture f;
  auto receiver = f.make_sink_with_links_from(f.dc2);
  f.fwd1->set_next_hop(receiver->id(), f.dc2.id());
  auto pkt = std::make_shared<Packet>();
  pkt->service = ServiceType::kForward;
  pkt->dst = f.dc1.id();
  pkt->final_dst = receiver->id();
  pkt->payload.assign(1000, 0);
  f.dc1.handle_packet(pkt);
  f.sim.run();
  EXPECT_GT(f.dc1.egress_bytes(), 1000u);
  EXPECT_GT(f.dc2.egress_bytes(), 1000u);
}

TEST(Forwarding, MulticastIdPredicate) {
  EXPECT_TRUE(is_multicast(kMulticastBase));
  EXPECT_TRUE(is_multicast(kMulticastBase + 1000));
  EXPECT_FALSE(is_multicast(1));
  EXPECT_FALSE(is_multicast(kMulticastBase - 1));
}

}  // namespace
}  // namespace jqos::services
