// Tests for the J-QoS sender: duplication policies, selective duplication,
// path switching, and per-flow sequence numbering.
#include <gtest/gtest.h>

#include "endpoint/sender.h"
#include "netsim/network.h"

namespace jqos::endpoint {
namespace {

struct Sink final : netsim::Node {
  explicit Sink(netsim::Network& net) : id_(net.allocate_id()) { net.attach(*this); }
  NodeId id() const override { return id_; }
  void handle_packet(const PacketPtr& pkt) override { received.push_back(pkt); }
  NodeId id_;
  std::vector<PacketPtr> received;
};

struct Fixture {
  netsim::Simulator sim;
  netsim::Network net{sim};
  Sink receiver{net};
  Sink dc1{net};
  Sender sender{net};

  Fixture() {
    net.add_link(sender.id(), receiver.id(), netsim::make_fixed_latency(msec(50)),
                 netsim::make_no_loss());
    net.add_link(sender.id(), dc1.id(), netsim::make_fixed_latency(msec(5)),
                 netsim::make_no_loss());
  }

  SenderPolicy base_policy(ServiceType service) {
    SenderPolicy p;
    p.service = service;
    p.dc1 = dc1.id();
    p.receiver = receiver.id();
    return p;
  }
};

TEST(Sender, DuplicatesToBothPaths) {
  Fixture f;
  f.sender.register_flow(1, f.base_policy(ServiceType::kCode));
  const SeqNo s = f.sender.send(1, 100);
  f.sim.run();
  EXPECT_EQ(s, 0u);
  ASSERT_EQ(f.receiver.received.size(), 1u);
  ASSERT_EQ(f.dc1.received.size(), 1u);
  // Direct copy is plain Internet; cloud copy carries the service tag.
  EXPECT_EQ(f.receiver.received[0]->service, ServiceType::kNone);
  EXPECT_EQ(f.dc1.received[0]->service, ServiceType::kCode);
  // The coding service's cloud copy terminates at DC1.
  EXPECT_EQ(f.dc1.received[0]->final_dst, f.dc1.id());
  EXPECT_EQ(f.sender.stats().direct_sent, 1u);
  EXPECT_EQ(f.sender.stats().cloud_sent, 1u);
}

TEST(Sender, ForwardingCopyTargetsReceiver) {
  Fixture f;
  f.sender.register_flow(1, f.base_policy(ServiceType::kForward));
  f.sender.send(1, 100);
  f.sim.run();
  ASSERT_EQ(f.dc1.received.size(), 1u);
  EXPECT_EQ(f.dc1.received[0]->final_dst, f.receiver.id());
}

TEST(Sender, PathSwitchingSkipsDirectPath) {
  Fixture f;
  SenderPolicy p = f.base_policy(ServiceType::kForward);
  p.send_direct = false;  // Fig 2(b): cloud-only delivery.
  f.sender.register_flow(1, p);
  f.sender.send(1, 100);
  f.sim.run();
  EXPECT_TRUE(f.receiver.received.empty());
  EXPECT_EQ(f.dc1.received.size(), 1u);
}

TEST(Sender, InternetOnlySkipsCloud) {
  Fixture f;
  SenderPolicy p = f.base_policy(ServiceType::kNone);
  p.duplicate_to_cloud = false;
  f.sender.register_flow(1, p);
  f.sender.send(1, 100);
  f.sim.run();
  EXPECT_EQ(f.receiver.received.size(), 1u);
  EXPECT_TRUE(f.dc1.received.empty());
}

TEST(Sender, SelectiveDuplicationFilter) {
  // Section 6.4: duplicate only selected packets (e.g. SYN-ACKs). Here:
  // every fourth packet.
  Fixture f;
  SenderPolicy p = f.base_policy(ServiceType::kCache);
  p.duplicate_filter = [](const Packet& pkt) { return pkt.seq % 4 == 0; };
  f.sender.register_flow(1, p);
  for (int i = 0; i < 8; ++i) f.sender.send(1, 64);
  f.sim.run();
  EXPECT_EQ(f.receiver.received.size(), 8u);
  EXPECT_EQ(f.dc1.received.size(), 2u);  // Seqs 0 and 4.
  EXPECT_EQ(f.sender.stats().filtered, 6u);
}

TEST(Sender, SequenceNumbersPerFlow) {
  Fixture f;
  f.sender.register_flow(1, f.base_policy(ServiceType::kCode));
  f.sender.register_flow(2, f.base_policy(ServiceType::kCode));
  EXPECT_EQ(f.sender.send(1, 10), 0u);
  EXPECT_EQ(f.sender.send(1, 10), 1u);
  EXPECT_EQ(f.sender.send(2, 10), 0u);
  EXPECT_EQ(f.sender.next_seq(1), 2u);
  EXPECT_EQ(f.sender.next_seq(2), 1u);
  EXPECT_EQ(f.sender.next_seq(3), 0u);  // Unregistered.
}

TEST(Sender, PayloadContentsPreserved) {
  Fixture f;
  f.sender.register_flow(1, f.base_policy(ServiceType::kCode));
  std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  f.sender.send_payload(1, payload);
  f.sim.run();
  ASSERT_EQ(f.receiver.received.size(), 1u);
  EXPECT_EQ(f.receiver.received[0]->payload, payload);
  ASSERT_EQ(f.dc1.received.size(), 1u);
  EXPECT_EQ(f.dc1.received[0]->payload, payload);
}

TEST(Sender, UnregisteredFlowThrows) {
  Fixture f;
  EXPECT_THROW(f.sender.send(42, 10), std::invalid_argument);
}

TEST(Sender, ReceiveHandlerGetsInboundPackets) {
  Fixture f;
  std::vector<PacketPtr> inbound;
  f.sender.set_receive_handler([&inbound](const PacketPtr& p) { inbound.push_back(p); });
  f.net.add_link(f.receiver.id(), f.sender.id(), netsim::make_fixed_latency(msec(1)),
                 netsim::make_no_loss());
  auto ack = make_data_packet(1, 0, f.receiver.id(), f.sender.id(), 0, 8);
  f.net.send(f.receiver.id(), ack);
  f.sim.run();
  ASSERT_EQ(inbound.size(), 1u);
}

}  // namespace
}  // namespace jqos::endpoint
