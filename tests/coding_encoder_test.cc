// Tests for the CR-WAN encoder at DC1 (Algorithm 1): in-stream and
// cross-stream queueing, the no-same-flow-in-a-batch invariant, round-robin
// placement, queue timers, and the coding-rate accounting.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "netsim/network.h"
#include "overlay/datacenter.h"
#include "services/coding/encoder_dc.h"

namespace jqos::services {
namespace {

struct Fixture {
  netsim::Simulator sim;
  netsim::Network net{sim};
  overlay::DataCenter dc1{net, 1, "dc1"};
  overlay::DataCenter dc2{net, 2, "dc2"};
  FlowRegistryPtr registry = std::make_shared<FlowRegistry>();

  struct CollectorService final : overlay::DcService {
    const char* name() const override { return "collector"; }
    bool handle(overlay::DataCenter&, const PacketPtr& pkt) override {
      if (pkt->is_coded()) {
        coded.push_back(pkt);
        return true;
      }
      return false;
    }
    std::vector<PacketPtr> coded;
  };
  std::shared_ptr<CollectorService> collector = std::make_shared<CollectorService>();

  explicit Fixture(const CodingParams& params) {
    net.add_link(dc1.id(), dc2.id(), netsim::make_fixed_latency(msec(30)),
                 netsim::make_no_loss());
    encoder = std::make_shared<CodingEncoderService>(dc1, params, registry);
    dc1.install(encoder);
    dc2.install(collector);
  }

  void register_flows(std::size_t n) {
    for (FlowId f = 1; f <= n; ++f) {
      registry->register_flow(f, FlowInfo{dc2.id(), 1000 + f});
    }
  }

  void offer(FlowId flow, SeqNo seq) {
    auto p = std::make_shared<Packet>();
    p->type = PacketType::kData;
    p->service = ServiceType::kCode;
    p->flow = flow;
    p->seq = seq;
    p->dst = dc1.id();
    p->final_dst = dc1.id();
    p->payload.assign(64, static_cast<std::uint8_t>(seq));
    dc1.handle_packet(p);
  }

  std::shared_ptr<CodingEncoderService> encoder;
};

CodingParams small_params() {
  CodingParams p;
  p.k = 4;
  p.cross_coded = 2;
  p.in_block = 5;
  p.in_coded = 1;
  p.queue_timeout = msec(30);
  p.queues_per_group = 2;
  return p;
}

TEST(Encoder, InStreamBatchEmittedWhenBlockFills) {
  Fixture f(small_params());
  f.register_flows(1);
  for (SeqNo s = 0; s < 5; ++s) f.offer(1, s);
  f.sim.run_until(msec(100));

  // One in-stream coded packet for the full block of 5.
  int in_coded = 0;
  for (const auto& c : f.collector->coded) {
    if (c->type == PacketType::kInCoded) {
      ++in_coded;
      ASSERT_TRUE(c->meta.has_value());
      EXPECT_EQ(c->meta->k, 5);
      EXPECT_EQ(c->meta->r, 1);
      for (const auto& key : c->meta->covered) EXPECT_EQ(key.flow, 1u);
    }
  }
  EXPECT_EQ(in_coded, 1);
  EXPECT_EQ(f.encoder->stats().in_batches, 1u);
}

TEST(Encoder, CrossStreamBatchFromKDistinctFlows) {
  Fixture f(small_params());
  f.register_flows(4);
  // Round 0 teaches the encoder the group population (batches close at the
  // adaptive effective k while flows are being discovered); by round 1 the
  // group is known to hold 4 flows, so full k=4 batches form.
  for (SeqNo s = 0; s < 3; ++s) {
    for (FlowId flow = 1; flow <= 4; ++flow) f.offer(flow, s);
  }
  f.sim.run_until(msec(200));

  int full_batches = 0;
  for (const auto& c : f.collector->coded) {
    if (c->type == PacketType::kCrossCoded) {
      ASSERT_TRUE(c->meta.has_value());
      EXPECT_EQ(c->meta->r, 2);
      EXPECT_LE(c->meta->k, 4);
      if (c->meta->k == 4) ++full_batches;
      // Invariant D4: no two packets of the same flow in a batch.
      std::set<FlowId> flows;
      for (const auto& key : c->meta->covered) {
        EXPECT_TRUE(flows.insert(key.flow).second)
            << "duplicate flow " << key.flow << " in cross batch";
      }
    }
  }
  // Steady state produced at least one full k=4 batch (2 coded packets
  // each, so divide by r when counting batches).
  EXPECT_GE(full_batches, 2);  // >= 1 batch x 2 coded packets.
}

TEST(Encoder, NoSameFlowInAnyBatchUnderPressure) {
  // A single flow hammering the encoder plus sparse peers: every emitted
  // cross batch must still be duplicate-free (Algorithm 1 lines 9-19).
  Fixture f(small_params());
  f.register_flows(4);
  for (SeqNo s = 0; s < 50; ++s) {
    f.offer(1, s);
    if (s % 5 == 0) f.offer(2, s / 5);
    if (s % 10 == 0) f.offer(3, s / 10);
  }
  f.encoder->flush_all();
  f.sim.run_until(sec(1));
  for (const auto& c : f.collector->coded) {
    if (c->type != PacketType::kCrossCoded) continue;
    std::set<FlowId> flows;
    for (const auto& key : c->meta->covered) {
      EXPECT_TRUE(flows.insert(key.flow).second);
    }
  }
  EXPECT_GT(f.encoder->stats().cross_batches, 0u);
}

TEST(Encoder, TimerFlushesPartialBatches) {
  Fixture f(small_params());
  f.register_flows(2);
  f.offer(1, 0);
  f.offer(2, 0);
  // No further packets: only the 30 ms queue timer can emit the batch.
  f.sim.run_until(msec(200));
  EXPECT_GT(f.encoder->stats().timer_flushes, 0u);
  bool found_partial_cross = false;
  for (const auto& c : f.collector->coded) {
    if (c->type == PacketType::kCrossCoded && c->meta->k == 2) found_partial_cross = true;
  }
  EXPECT_TRUE(found_partial_cross);
}

TEST(Encoder, UnregisteredFlowCountedAndConsumed) {
  Fixture f(small_params());
  f.offer(42, 0);  // Never registered.
  EXPECT_EQ(f.encoder->stats().unknown_flow, 1u);
  EXPECT_EQ(f.encoder->stats().data_packets, 0u);
}

TEST(Encoder, IgnoresNonCodingPackets) {
  Fixture f(small_params());
  f.register_flows(1);
  auto p = std::make_shared<Packet>();
  p->type = PacketType::kData;
  p->service = ServiceType::kCache;
  p->flow = 1;
  p->dst = f.dc1.id();
  EXPECT_FALSE(f.encoder->handle(f.dc1, p));
}

TEST(Encoder, InStreamDisabledBySettingZero) {
  CodingParams p = small_params();
  p.in_coded = 0;  // The Skype configuration (s = 0, Section 6.3).
  Fixture f(p);
  f.register_flows(1);
  for (SeqNo s = 0; s < 20; ++s) f.offer(1, s);
  f.encoder->flush_all();
  f.sim.run_until(sec(1));
  for (const auto& c : f.collector->coded) {
    EXPECT_NE(c->type, PacketType::kInCoded);
  }
  EXPECT_EQ(f.encoder->stats().in_batches, 0u);
}

TEST(Encoder, CodingOverheadMatchesConfiguredRates) {
  // r = 2/4 cross + 1/5 in-stream: for N data packets expect about
  // N*(2/4) + N*(1/5) coded packets (within timer-flush slack).
  Fixture f(small_params());
  f.register_flows(4);
  const std::size_t rounds = 50;
  for (SeqNo s = 0; s < rounds; ++s) {
    for (FlowId flow = 1; flow <= 4; ++flow) f.offer(flow, s);
  }
  f.encoder->flush_all();
  f.sim.run_until(sec(1));
  const double data = static_cast<double>(4 * rounds);
  const double coded = static_cast<double>(f.encoder->stats().coded_sent);
  const double expected_rate = 2.0 / 4.0 + 1.0 / 5.0;
  EXPECT_NEAR(coded / data, expected_rate, 0.1);
}

TEST(Encoder, BatchIdsUniqueAndNamespaced) {
  Fixture f(small_params());
  f.register_flows(4);
  for (SeqNo s = 0; s < 25; ++s) {
    for (FlowId flow = 1; flow <= 4; ++flow) f.offer(flow, s);
  }
  f.encoder->flush_all();
  f.sim.run_until(sec(1));
  std::map<std::uint32_t, PacketType> batch_types;
  for (const auto& c : f.collector->coded) {
    auto [it, inserted] = batch_types.emplace(c->meta->batch_id, c->type);
    if (!inserted) {
      // Same batch id must mean the same batch (same type, same k).
      EXPECT_EQ(it->second, c->type);
    }
    // Namespaced by the encoder's DcId (1 << 20).
    EXPECT_GE(c->meta->batch_id, 1u << 20);
  }
}

TEST(Encoder, FlushAllEmitsEverythingPending) {
  Fixture f(small_params());
  f.register_flows(3);
  f.offer(1, 0);
  f.offer(2, 0);
  f.offer(3, 0);
  const auto before = f.collector->coded.size();
  f.encoder->flush_all();
  f.sim.run_until(sec(1));
  EXPECT_GT(f.collector->coded.size(), before);
}

}  // namespace
}  // namespace jqos::services
