// Regression tests for GF(256) edge cases and singular-matrix handling.
//
// Background: gf_div(a, 0) used to fall through to the log_[0] = -1 sentinel
// and return a wrong non-zero value, and gf_inv(0) read one past the defined
// log range. Both now throw std::domain_error. These tests pin that down and
// cross-check the full 256x256 multiplication table against the log/exp
// tables and an independent schoolbook carry-less multiply.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "fec/gf256.h"
#include "fec/matrix.h"

namespace jqos::fec {
namespace {

// Independent reference: schoolbook carry-less multiplication modulo the
// field polynomial 0x11d, sharing no code with the table construction.
Gf schoolbook_mul(Gf a, Gf b) {
  unsigned acc = 0;
  unsigned aa = a;
  for (unsigned bb = b; bb != 0; bb >>= 1) {
    if (bb & 1) acc ^= aa;
    aa <<= 1;
    if (aa & 0x100) aa ^= 0x11d;
  }
  return static_cast<Gf>(acc);
}

// ---------------------------- division by zero -----------------------------

TEST(Gf256Edge, DivByZeroThrows) {
  EXPECT_THROW(gf_div(1, 0), std::domain_error);
  EXPECT_THROW(gf_div(0, 0), std::domain_error);
  EXPECT_THROW(gf_div(255, 0), std::domain_error);
}

TEST(Gf256Edge, InvOfZeroThrows) { EXPECT_THROW(gf_inv(0), std::domain_error); }

TEST(Gf256Edge, DivZeroNumeratorIsZero) {
  for (int b = 1; b < 256; ++b) EXPECT_EQ(gf_div(0, static_cast<Gf>(b)), 0);
}

TEST(Gf256Edge, DivIsInverseOfMul) {
  // For every a and non-zero b: (a / b) * b == a. Full sweep is cheap.
  for (int a = 0; a < 256; ++a) {
    for (int b = 1; b < 256; ++b) {
      const Gf q = gf_div(static_cast<Gf>(a), static_cast<Gf>(b));
      ASSERT_EQ(gf_mul(q, static_cast<Gf>(b)), a) << "a=" << a << " b=" << b;
    }
  }
}

// ------------------------ full-table cross-checks --------------------------

TEST(Gf256Edge, MulTableMatchesSchoolbookAllPairs) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(gf_mul(static_cast<Gf>(a), static_cast<Gf>(b)),
                schoolbook_mul(static_cast<Gf>(a), static_cast<Gf>(b)))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Gf256Edge, MulTableMatchesLogExpAllPairs) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      Gf expected = 0;
      if (a != 0 && b != 0) {
        const unsigned l = static_cast<unsigned>(gf_log_table(static_cast<Gf>(a)) +
                                                 gf_log_table(static_cast<Gf>(b)));
        expected = gf_exp_table(l);  // exp_ is doubled, so no mod-255 needed
      }
      ASSERT_EQ(gf_mul(static_cast<Gf>(a), static_cast<Gf>(b)), expected)
          << "a=" << a << " b=" << b;
    }
  }
}

// ------------------------- singular-matrix handling ------------------------

TEST(Gf256Edge, ZeroMatrixInversionFails) {
  for (std::size_t n : {1u, 2u, 5u}) {
    Matrix z(n, n);
    EXPECT_FALSE(z.inverted().has_value()) << "n=" << n;
  }
}

TEST(Gf256Edge, DuplicateRowMatrixInversionFails) {
  Matrix m(3, 3);
  const Gf row[3] = {7, 11, 13};
  for (std::size_t j = 0; j < 3; ++j) {
    m.at(0, j) = row[j];
    m.at(1, j) = row[j];  // identical to row 0 -> rank <= 2
    m.at(2, j) = static_cast<Gf>(j + 1);
  }
  EXPECT_FALSE(m.inverted().has_value());
}

TEST(Gf256Edge, LinearlyDependentRowInversionFails) {
  // Row 2 = 3 * row 0 + row 1 over GF(256); dependence only becomes visible
  // after elimination, exercising the mid-elimination singularity path.
  Matrix m(3, 3);
  const Gf r0[3] = {1, 2, 3};
  const Gf r1[3] = {4, 5, 6};
  for (std::size_t j = 0; j < 3; ++j) {
    m.at(0, j) = r0[j];
    m.at(1, j) = r1[j];
    m.at(2, j) = gf_add(gf_mul(3, r0[j]), r1[j]);
  }
  EXPECT_FALSE(m.inverted().has_value());
}

TEST(Gf256Edge, NonSingularAfterRowSwapInverts) {
  // Leading zero forces the pivot-search row swap; the matrix is invertible.
  Matrix m(2, 2);
  m.at(0, 0) = 0;
  m.at(0, 1) = 5;
  m.at(1, 0) = 9;
  m.at(1, 1) = 2;
  auto inv = m.inverted();
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(m.mul(*inv), Matrix::identity(2));
}

}  // namespace
}  // namespace jqos::fec
