// Workload layer: CDF flow sizes, mean-matched arrival processes, and the
// churn runner's two contracts -- leak-free teardown and bit-identical
// results across thread counts and event-queue backends at fixed sharding.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/stats.h"
#include "netsim/event_queue.h"
#include "workload/arrivals.h"
#include "workload/churn.h"
#include "workload/flow_size.h"
#include "test_guards.h"

namespace jqos::workload {
namespace {

// ---------------------------------------------------------------- flow sizes

TEST(FlowSizeDist, RejectsMalformedCdfs) {
  EXPECT_THROW(FlowSizeDist::from_points({}), std::invalid_argument);
  EXPECT_THROW(FlowSizeDist::from_points({{100.0, 1.0}}), std::invalid_argument);
  // Bytes must strictly increase.
  EXPECT_THROW(FlowSizeDist::from_points({{100.0, 0.0}, {100.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(FlowSizeDist::from_points({{200.0, 0.0}, {100.0, 1.0}}),
               std::invalid_argument);
  // Cumulative probability must be non-decreasing and reach 1.
  EXPECT_THROW(FlowSizeDist::from_points({{100.0, 0.5}, {200.0, 0.2}}),
               std::invalid_argument);
  EXPECT_THROW(FlowSizeDist::from_points({{100.0, 0.0}, {200.0, 0.9}}),
               std::invalid_argument);
}

TEST(FlowSizeDist, NormalizesFinalKnotToExactlyOne) {
  // Within the 1e-6 tolerance the last knot snaps to 1.0 so sampling can
  // never fall off the end of the CDF.
  const FlowSizeDist d =
      FlowSizeDist::from_points({{100.0, 0.0}, {200.0, 1.0 - 5e-7}});
  EXPECT_DOUBLE_EQ(d.points().back().cum, 1.0);
}

TEST(FlowSizeDist, MeanBytesIsExactForPiecewiseLinearCdf) {
  // Uniform on [0, 100]: mean 50.
  const FlowSizeDist uniform = FlowSizeDist::from_points({{0.0, 0.0}, {100.0, 1.0}});
  EXPECT_NEAR(uniform.mean_bytes(), 50.0, 1e-9);
  // Half the mass uniform on [100, 200] (mean 150), half on [200, 400]
  // (mean 300): total mean 225.
  const FlowSizeDist mixed =
      FlowSizeDist::from_points({{100.0, 0.0}, {200.0, 0.5}, {400.0, 1.0}});
  EXPECT_NEAR(mixed.mean_bytes(), 225.0, 1e-9);
}

TEST(FlowSizeDist, SamplesStayInsideSupportAndMatchMean) {
  for (AppMix mix : {AppMix::kVideoCall, AppMix::kWebTransfer, AppMix::kBulkTcp}) {
    const FlowSizeDist d = FlowSizeDist::app_mix(mix);
    const double lo = d.points().front().bytes;
    const double hi = d.points().back().bytes;
    Rng rng(7);
    double sum = 0.0;
    constexpr int kDraws = 200'000;
    for (int i = 0; i < kDraws; ++i) {
      const double s = d.sample(rng);
      ASSERT_GE(s, lo);
      ASSERT_LE(s, hi);
      sum += s;
    }
    // Inverse-transform sampling of the same piecewise-linear CDF the exact
    // mean integrates: 2% tolerance covers sampling noise at 200k draws.
    EXPECT_NEAR(sum / kDraws, d.mean_bytes(), 0.02 * d.mean_bytes());
  }
}

TEST(FlowSizeDist, LoadsClassicPercentFileFormat) {
  const auto path =
      std::filesystem::temp_directory_path() / "jqos_workload_cdf_test.txt";
  {
    std::ofstream out(path);
    out << "# web-ish example CDF\n"
        << "500 0\n"
        << "\n"
        << "2000 30\n"
        << "100000 90\n"
        << "1000000 100\n";
  }
  const FlowSizeDist d = FlowSizeDist::from_file(path.string());
  ASSERT_EQ(d.points().size(), 4u);
  EXPECT_DOUBLE_EQ(d.points()[1].bytes, 2000.0);
  EXPECT_DOUBLE_EQ(d.points()[1].cum, 0.30);
  EXPECT_DOUBLE_EQ(d.points().back().cum, 1.0);
  std::filesystem::remove(path);

  EXPECT_THROW(FlowSizeDist::from_file("/nonexistent/cdf/file.txt"),
               std::runtime_error);
  {
    std::ofstream out(path);
    out << "500 not-a-number\n";
  }
  EXPECT_THROW(FlowSizeDist::from_file(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

// ------------------------------------------------------------------ arrivals

TEST(ArrivalProcess, RejectsInvalidParameters) {
  ArrivalParams p;
  EXPECT_THROW(ArrivalProcess(p, 0.0, Rng(1)), std::invalid_argument);
  EXPECT_THROW(ArrivalProcess(p, -5.0, Rng(1)), std::invalid_argument);
  p.kind = ArrivalKind::kPareto;
  p.pareto_alpha = 1.0;  // Mean does not exist at alpha <= 1.
  EXPECT_THROW(ArrivalProcess(p, 10.0, Rng(1)), std::invalid_argument);
}

TEST(ArrivalProcess, EveryKindMatchesTheSameMeanRate) {
  // The whole point of the parameterization: swapping the arrival kind
  // changes burstiness, never offered load. E[gap] == 1/rate for all three.
  constexpr double kRate = 50.0;
  constexpr int kDraws = 400'000;
  for (ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kPareto, ArrivalKind::kLognormal}) {
    ArrivalParams p;
    p.kind = kind;
    ArrivalProcess proc(p, kRate, Rng(1234));
    double sum = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      const double gap = proc.next_gap();
      ASSERT_GT(gap, 0.0);
      sum += gap;
    }
    // Pareto at alpha=1.5 has infinite variance, so its sample mean
    // converges slowly; 10% at 400k draws accommodates it (the lighter
    // tails land well inside).
    EXPECT_NEAR(sum / kDraws, 1.0 / kRate, 0.10 / kRate)
        << "kind=" << static_cast<int>(kind);
  }
}

// --------------------------------------------------------------- churn runner

ChurnConfig small_churn() {
  ChurnConfig cfg;
  cfg.num_pairs = 4;
  cfg.duration = sec(5);
  cfg.arrivals.kind = ArrivalKind::kPoisson;
  cfg.arrivals.sessions_per_sec = 40.0;
  cfg.mix = AppMix::kWebTransfer;
  cfg.packets_per_second = 100.0;
  cfg.payload_bytes = 1472;
  cfg.max_session_packets = 120;
  cfg.scenario.seed = 77;
  cfg.num_shards = 2;  // FIXED: sketch merge order depends on it.
  cfg.num_threads = 1;
  return cfg;
}

TEST(Churn, DrainsLeakFreeAndClassifiesEveryPacket) {
  const ChurnResult r = run_churn(small_churn());
  EXPECT_GT(r.totals.sessions_opened, 100u);
  EXPECT_EQ(r.totals.sessions_opened, r.totals.sessions_completed);
  EXPECT_EQ(r.totals.leaked_flows, 0u);
  // After the drain every sent packet has a final classification.
  EXPECT_EQ(r.totals.delivered_direct + r.totals.recovered + r.totals.lost,
            r.totals.packets_sent);
  EXPECT_EQ(r.completion_ms.count(), r.totals.sessions_completed);
  EXPECT_EQ(r.delivered_pct.count(), r.totals.sessions_completed);
}

TEST(Churn, FingerprintBitIdenticalAcrossThreadCounts) {
  // The ISSUE's determinism contract: at fixed num_shards the merged result
  // is a pure function of the config -- thread count (1, 3, or
  // JQOS_SIM_THREADS/hardware default) must not show through.
  ChurnConfig cfg = small_churn();
  cfg.num_threads = 1;
  const std::uint64_t fp1 = run_churn(cfg).fingerprint();
  cfg.num_threads = 3;
  const std::uint64_t fp3 = run_churn(cfg).fingerprint();
  cfg.num_threads = 0;
  const std::uint64_t fp_auto = run_churn(cfg).fingerprint();
  EXPECT_EQ(fp1, fp3);
  EXPECT_EQ(fp1, fp_auto);
}

TEST(Churn, FingerprintBitIdenticalAcrossEventQueueBackends) {
  std::uint64_t fp_ladder = 0, fp_heap = 0;
  {
    const jqos::testing::EvqBackendGuard guard(netsim::EvqBackend::kLadder);
    fp_ladder = run_churn(small_churn()).fingerprint();
  }
  {
    const jqos::testing::EvqBackendGuard guard(netsim::EvqBackend::kHeap);
    fp_heap = run_churn(small_churn()).fingerprint();
  }
  EXPECT_EQ(fp_ladder, fp_heap);
}

TEST(Churn, FingerprintBitIdenticalAcrossLaneAndThreadCounts) {
  // Intra-shard lanes under churn: dynamic session open/close, per-path
  // lane->serial finalize channels, and per-path recovery sketches. At fixed
  // (num_shards, lanes >= 1) the fingerprint is invariant across lane counts
  // and lane thread counts. (lanes=0 resolves same-microsecond ties
  // differently and keeps its own pinned fingerprints above.)
  ChurnConfig cfg = small_churn();
  cfg.scenario.lanes = 1;
  cfg.scenario.lane_threads = 1;
  const std::uint64_t fp_l1 = run_churn(cfg).fingerprint();
  cfg.scenario.lanes = 3;
  const std::uint64_t fp_l3 = run_churn(cfg).fingerprint();
  cfg.scenario.lanes = 8;  // More lanes than the 4 paths: clamps.
  cfg.scenario.lane_threads = 2;
  const std::uint64_t fp_l8t2 = run_churn(cfg).fingerprint();
  cfg.scenario.lanes = 3;
  cfg.scenario.lane_threads = 0;  // Auto thread resolution.
  const std::uint64_t fp_auto = run_churn(cfg).fingerprint();
  EXPECT_EQ(fp_l1, fp_l3);
  EXPECT_EQ(fp_l1, fp_l8t2);
  EXPECT_EQ(fp_l1, fp_auto);

  // Session accounting stays exact under lanes: leak-free drain, every
  // packet classified.
  const ChurnResult r = run_churn(cfg);
  EXPECT_GT(r.totals.sessions_opened, 100u);
  EXPECT_EQ(r.totals.sessions_opened, r.totals.sessions_completed);
  EXPECT_EQ(r.totals.leaked_flows, 0u);
  EXPECT_EQ(r.totals.delivered_direct + r.totals.recovered + r.totals.lost,
            r.totals.packets_sent);
}

TEST(Churn, SketchRankErrorWithinOnePercentAtReportedQuantiles) {
  // The sketch configuration the churn runner uses (k=1024) must hold rank
  // error <= 1% at every quantile bench_churn reports. Feeding 0..n-1 makes
  // rank error directly readable from the returned value.
  constexpr std::size_t kN = 100'000;
  QuantileSketch sketch(1024);
  Rng rng(5);
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) values[i] = static_cast<double>(i);
  // Shuffle: sorted input is the sketch's easiest case, not a fair test.
  for (std::size_t i = kN - 1; i > 0; --i) {
    std::swap(values[i], values[rng.uniform_int(0, static_cast<int>(i))]);
  }
  for (double v : values) sketch.add(v);
  for (double q : {0.5, 0.99, 0.999}) {
    const double got = sketch.quantile(q);
    EXPECT_NEAR(got, q * (kN - 1), 0.01 * kN) << "q=" << q;
  }
}

}  // namespace
}  // namespace jqos::workload
