// Tests for the application models: video source layout, the PSNR/QoE
// scorer, and the mobile feasibility model.
#include <gtest/gtest.h>

#include "app/mobile.h"
#include "app/psnr.h"
#include "app/video.h"
#include "endpoint/sender.h"
#include "netsim/network.h"

namespace jqos::app {
namespace {

struct Sink final : netsim::Node {
  explicit Sink(netsim::Network& net) : id_(net.allocate_id()) { net.attach(*this); }
  NodeId id() const override { return id_; }
  void handle_packet(const PacketPtr& pkt) override { received.push_back(pkt); }
  NodeId id_;
  std::vector<PacketPtr> received;
};

TEST(VideoSource, LayoutMatchesEmission) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  Sink receiver(net);
  endpoint::Sender sender(net);
  net.add_link(sender.id(), receiver.id(), netsim::make_fixed_latency(msec(10)),
               netsim::make_no_loss());
  endpoint::SenderPolicy policy;
  policy.service = ServiceType::kNone;
  policy.duplicate_to_cloud = false;
  policy.receiver = receiver.id();
  sender.register_flow(1, policy);

  VideoParams params;
  params.fps = 10.0;
  VideoSource source(sim, sender, 1, params, Rng(1));
  source.start(sec(5));
  sim.run_until(sec(6));

  const FrameLayout& layout = source.layout();
  // ~50 frames in 5 s at 10 fps.
  EXPECT_NEAR(static_cast<double>(layout.frames.size()), 50.0, 2.0);
  // Layout must tile the sequence space exactly.
  SeqNo expect_seq = 0;
  std::size_t total_pkts = 0;
  for (const auto& frame : layout.frames) {
    EXPECT_EQ(frame.first_seq, expect_seq);
    EXPECT_GE(frame.packets, params.min_packets_per_frame);
    EXPECT_LE(frame.packets, params.max_packets_per_frame);
    expect_seq += static_cast<SeqNo>(frame.packets);
    total_pkts += frame.packets;
  }
  EXPECT_EQ(total_pkts, source.packets_sent());
  EXPECT_EQ(receiver.received.size(), total_pkts);
}

TEST(VideoSource, BitrateApproximatesTarget) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  Sink receiver(net);
  endpoint::Sender sender(net);
  net.add_link(sender.id(), receiver.id(), netsim::make_fixed_latency(0),
               netsim::make_no_loss());
  endpoint::SenderPolicy policy;
  policy.duplicate_to_cloud = false;
  policy.receiver = receiver.id();
  sender.register_flow(1, policy);

  VideoParams params;  // 1.5 Mbps.
  VideoSource source(sim, sender, 1, params, Rng(2));
  source.start(sec(10));
  sim.run_until(sec(11));
  std::uint64_t payload_bytes = 0;
  for (const auto& p : receiver.received) payload_bytes += p->payload.size();
  const double bps = static_cast<double>(payload_bytes) * 8.0 / 10.0;
  EXPECT_NEAR(bps, 1.5e6, 0.25e6);
}

// Helper: outcomes where every packet is delivered instantly.
std::unordered_map<SeqNo, PacketOutcome> all_delivered(const FrameLayout& layout) {
  std::unordered_map<SeqNo, PacketOutcome> out;
  for (const auto& f : layout.frames) {
    for (std::size_t i = 0; i < f.packets; ++i) {
      out[f.first_seq + static_cast<SeqNo>(i)] = PacketOutcome{true, f.sent_at + msec(50)};
    }
  }
  return out;
}

FrameLayout tiny_layout(std::size_t frames, std::size_t packets_per_frame) {
  FrameLayout layout;
  SeqNo seq = 0;
  for (std::size_t i = 0; i < frames; ++i) {
    FrameLayout::Frame f;
    f.first_seq = seq;
    f.packets = packets_per_frame;
    f.sent_at = static_cast<SimTime>(i) * msec(100);
    layout.frames.push_back(f);
    seq += static_cast<SeqNo>(packets_per_frame);
  }
  return layout;
}

TEST(Psnr, PerfectDeliveryScoresHigh) {
  auto layout = tiny_layout(100, 3);
  VideoParams video;
  Rng rng(3);
  auto psnr = score_video(layout, video, all_delivered(layout), PsnrParams{}, rng);
  ASSERT_EQ(psnr.count(), 100u);
  EXPECT_GT(psnr.percentile(10), 35.0);
}

TEST(Psnr, OutageCreatesLowScoreMass) {
  auto layout = tiny_layout(100, 3);
  VideoParams video;
  auto outcomes = all_delivered(layout);
  // Frames 40-70 fully lost (a 3-second outage at 10 fps).
  for (std::size_t fi = 40; fi < 70; ++fi) {
    const auto& f = layout.frames[fi];
    for (std::size_t i = 0; i < f.packets; ++i) {
      outcomes[f.first_seq + static_cast<SeqNo>(i)].delivered = false;
    }
  }
  Rng rng(4);
  auto psnr = score_video(layout, video, outcomes, PsnrParams{}, rng);
  // ~30% of frames score at freeze levels.
  EXPECT_LT(psnr.percentile(25), 30.0);
  EXPECT_GT(psnr.percentile(75), 35.0);
}

TEST(Psnr, AppFecConcealsSingleLossPerFrame) {
  auto layout = tiny_layout(50, 4);
  VideoParams video;
  video.app_fec_per_frame = 1;
  auto outcomes = all_delivered(layout);
  // One packet lost in every frame: Skype's FEC conceals them all.
  for (const auto& f : layout.frames) {
    outcomes[f.first_seq].delivered = false;
  }
  Rng rng(5);
  auto psnr = score_video(layout, video, outcomes, PsnrParams{}, rng);
  EXPECT_GT(psnr.percentile(10), 33.0);

  // Without app FEC the same pattern damages every frame.
  video.app_fec_per_frame = 0;
  Rng rng2(5);
  auto psnr2 = score_video(layout, video, outcomes, PsnrParams{}, rng2);
  EXPECT_LT(psnr2.percentile(50), psnr.percentile(50));
}

TEST(Psnr, LateDeliveryMissesPlayoutDeadline) {
  auto layout = tiny_layout(20, 2);
  VideoParams video;
  video.app_fec_per_frame = 0;
  auto outcomes = all_delivered(layout);
  PsnrParams params;
  // Frame 5's packets arrive a full second late: useless for playout.
  const auto& f5 = layout.frames[5];
  for (std::size_t i = 0; i < f5.packets; ++i) {
    outcomes[f5.first_seq + static_cast<SeqNo>(i)].delivered_at = f5.sent_at + sec(1);
  }
  Rng rng(6);
  auto psnr = score_video(layout, video, outcomes, params, rng);
  EXPECT_LT(psnr.min(), 30.0);
}

TEST(Psnr, FreezeDecaysOverConsecutiveLostFrames) {
  auto layout = tiny_layout(30, 2);
  VideoParams video;
  auto outcomes = all_delivered(layout);
  for (std::size_t fi = 10; fi < 25; ++fi) {
    const auto& f = layout.frames[fi];
    for (std::size_t i = 0; i < f.packets; ++i) {
      outcomes[f.first_seq + static_cast<SeqNo>(i)].delivered = false;
    }
  }
  PsnrParams params;
  params.good_stddev_db = 0.0;
  Rng rng(7);
  auto psnr = score_video(layout, video, outcomes, params, rng);
  const auto& vals = psnr.values();
  // Scores inside the freeze trend downward toward the floor.
  EXPECT_GT(vals[10], vals[20]);
  EXPECT_GE(vals[24], params.freeze_floor_db - 3.5);
}

// ------------------------------- mobile ------------------------------------

TEST(Mobile, Section65Findings) {
  MobileParams params;
  Rng rng(8);
  const MobileFeasibility f = evaluate_mobile(params, rng);
  // Duplicated Skype = 3.0 Mbps: above the 2 Mbps floor, below the 5 Mbps
  // good-uplink case -- exactly the paper's "could reach capacity in some
  // networks" finding.
  EXPECT_NEAR(f.dup_bitrate_mbps, 3.0, 1e-9);
  EXPECT_FALSE(f.dup_fits_typical_uplink);
  EXPECT_TRUE(f.dup_fits_good_uplink);
  // Battery overhead within measurement noise (~3%).
  EXPECT_LT(f.battery_overhead_percent, 5.0);
  // RTTs: median 50-60 ms, p90 under ~110 ms.
  EXPECT_GT(f.rtt_p50_ms, 45.0);
  EXPECT_LT(f.rtt_p50_ms, 65.0);
  EXPECT_LT(f.rtt_p90_ms, 120.0);
  EXPECT_TRUE(f.recovery_feasible_interactive);
}

TEST(Mobile, RttSamplesSpreadMatchesBand) {
  MobileParams params;
  Rng rng(9);
  auto rtts = mobile_rtt_samples(params, rng, 5000);
  EXPECT_GT(rtts.percentile(90), rtts.percentile(50));
  EXPECT_GT(rtts.percentile(50), 40.0);
  EXPECT_LT(rtts.percentile(90), 130.0);
}

}  // namespace
}  // namespace jqos::app
