// The enforcement arm of the object-pool subsystem: with pools enabled, the
// steady-state packet path must touch the global allocator ZERO times per
// packet. This binary links jqos_alloc_probe, which replaces global operator
// new/delete with counting wrappers; after a warmup that fills every pool
// and amortized buffer, a measured window asserts the allocation delta is
// exactly zero. Under ASan/TSan the probe is stubbed out (the sanitizer owns
// the heap) and these tests skip -- the Release leg of CI is the guard.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/alloc_probe.h"
#include "common/packet.h"
#include "common/packet_pool.h"
#include "endpoint/receiver.h"
#include "endpoint/sender.h"
#include "netsim/latency_model.h"
#include "netsim/loss_model.h"
#include "netsim/network.h"
#include "test_guards.h"

namespace jqos {
namespace {

// The ladder event-queue backend spreads rungs into buckets on an amortized
// schedule, so even in steady state it allocates O(1) per drain; that churn
// is bounded and pinned by its own memory-regression test. Pin the heap
// backend here so this suite measures the PACKET path alone.
using jqos::testing::EvqBackendGuard;

struct Sink final : netsim::Node {
  explicit Sink(netsim::Network& net) : id_(net.allocate_id()) { net.attach(*this); }
  NodeId id() const override { return id_; }
  void handle_packet(const PacketPtr& pkt) override { received.push_back(pkt); }
  NodeId id_;
  std::vector<PacketPtr> received;
};

TEST(SteadyStateAlloc, SenderDuplicationPathIsAllocationFree) {
  if (!alloc_probe::active()) {
    GTEST_SKIP() << "alloc probe inactive (sanitizer build owns the heap)";
  }

  const EvqBackendGuard evq(netsim::EvqBackend::kHeap);
  netsim::Simulator sim;
  netsim::Network net(sim);
  Sink receiver(net);
  Sink dc1(net);
  endpoint::Sender sender(net);
  net.add_link(sender.id(), receiver.id(), netsim::make_fixed_latency(msec(20)),
               netsim::make_no_loss());
  net.add_link(sender.id(), dc1.id(), netsim::make_fixed_latency(msec(5)),
               netsim::make_no_loss());

  PacketPool pool(/*enabled=*/true);
  sender.set_pool(&pool);

  endpoint::SenderPolicy policy;
  policy.service = ServiceType::kCode;
  policy.dc1 = dc1.id();
  policy.receiver = receiver.id();
  sender.register_flow(1, policy);

  constexpr int kBurst = 32;
  auto pump = [&] {
    receiver.received.clear();
    dc1.received.clear();
    for (int i = 0; i < kBurst; ++i) sender.send(1, 256);
    sim.run();
  };

  // Warmup: fill the packet/control-block freelists, the sinks' vectors,
  // and the event-queue backing store to their steady footprint.
  for (int round = 0; round < 16; ++round) pump();

  alloc_probe::reset();
  constexpr int kRounds = 16;
  for (int round = 0; round < kRounds; ++round) pump();
  const std::uint64_t allocs = alloc_probe::allocations();

  EXPECT_EQ(allocs, 0u) << "sender duplication path hit the global allocator "
                        << allocs << " times over "
                        << (kRounds * kBurst * 2) << " packets";
  EXPECT_GT(pool.reused(), 0u);
}

TEST(SteadyStateAlloc, ReceiverInOrderPathIsAllocationFree) {
  if (!alloc_probe::active()) {
    GTEST_SKIP() << "alloc probe inactive (sanitizer build owns the heap)";
  }

  netsim::Simulator sim;
  netsim::Network net(sim);
  endpoint::ReceiverConfig rc;
  rc.record_delay_samples = false;  // Per-packet Samples grow unboundedly.
  endpoint::Receiver receiver(net, rc);
  receiver.expect_flow(1);

  PacketPool pool(/*enabled=*/true);
  receiver.set_pool(&pool);

  SeqNo seq = 0;
  auto feed = [&](int n) {
    for (int i = 0; i < n; ++i) {
      receiver.handle_packet(
          make_data_packet(1, seq++, /*src=*/1, /*dst=*/receiver.id(),
                           /*now=*/0, /*payload_bytes=*/256, &pool));
    }
  };

  // Warmup must exceed buffer_packets (1024): the reorder buffer recycles
  // its map nodes only once it reaches capacity and starts evicting.
  feed(2048);

  alloc_probe::reset();
  constexpr int kPackets = 1024;
  feed(kPackets);
  const std::uint64_t allocs = alloc_probe::allocations();

  EXPECT_EQ(allocs, 0u) << "receiver in-order path hit the global allocator "
                        << allocs << " times over " << kPackets << " packets";
  EXPECT_GT(pool.reused(), 0u);
}

}  // namespace
}  // namespace jqos
