// Simulator lane-mode edge coverage: the horizon protocol at its boundary
// conditions, the conservative-lookahead guard rails, cross-lane cancel
// semantics, slab reuse under lane churn, and the parallelism knobs'
// rejection of invalid settings (JQOS_SIM_THREADS / JQOS_SIM_LANES /
// configure_lanes). The scenario-level determinism suites prove lanes give
// identical RESULTS; this file pins the engine-level contract those suites
// stand on.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "netsim/simulator.h"
#include "test_guards.h"

namespace jqos::netsim {
namespace {

using jqos::testing::EnvVarGuard;

// One (time, label) observation; per-lane traces avoid cross-lane writes.
struct Obs {
  SimTime at = 0;
  std::string label;
  bool operator==(const Obs&) const = default;
};

// ------------------------------------------------------------ horizon edges

TEST(LaneSim, EventExactlyAtHorizonBoundaryFires) {
  // The tightest legal channel push lands exactly at sender_time + min_delay
  // == the receiving window's end (windows drain to E-1 inclusive). The
  // event must fire in the NEXT window, at its exact timestamp, after every
  // strictly-earlier event -- and the whole schedule must be thread-count
  // invariant.
  std::vector<std::vector<Obs>> traces[2];
  for (unsigned threads : {1u, 2u}) {
    Simulator sim;
    sim.configure_lanes(2, threads);
    auto& ch = sim.make_channel(/*key=*/1, /*target_lane=*/1, /*min_delay=*/10);
    auto& traceset = traces[threads - 1];
    traceset.assign(2, {});
    {
      const Simulator::LaneScope lane1(sim, 1);
      // Local lane-1 work before, at, and after the boundary time 110.
      sim.at(105, [&] { traceset[1].push_back({sim.now(), "local-105"}); });
      sim.at(110, [&] { traceset[1].push_back({sim.now(), "local-110"}); });
      sim.at(115, [&] { traceset[1].push_back({sim.now(), "local-115"}); });
    }
    {
      const Simulator::LaneScope lane0(sim, 0);
      sim.at(100, [&] {
        traceset[0].push_back({sim.now(), "send"});
        // Exactly now + min_delay: the earliest a cross-lane event may land.
        ch.schedule(sim.now() + 10, [&] { traceset[1].push_back({sim.now(), "cross-110"}); });
      });
    }
    sim.run();
    EXPECT_EQ(sim.now(), 115);
    ASSERT_EQ(traceset[0].size(), 1u);
    ASSERT_EQ(traceset[1].size(), 4u);
    EXPECT_EQ(traceset[1][0], (Obs{105, "local-105"}));
    // Tie at 110: the build-time local push precedes the barrier-injected
    // cross-lane event -- the canonical order, identical at every thread
    // count because injection happens between windows in sorted outbox order.
    EXPECT_EQ(traceset[1][1], (Obs{110, "local-110"}));
    EXPECT_EQ(traceset[1][2], (Obs{110, "cross-110"}));
    EXPECT_EQ(traceset[1][3], (Obs{115, "local-115"}));
  }
  EXPECT_EQ(traces[0][1], traces[1][1]) << "thread count changed the lane-1 schedule";
}

TEST(LaneSim, SerialLaneFiresBeforeEqualTimeLaneEvents) {
  // next_serial <= window start means the serial event runs first: serial
  // bookkeeping at time T observes the world before any lane work at T.
  Simulator sim;
  sim.configure_lanes(1, 1);
  sim.make_channel(1, 0, 10);  // Gives the lane loop a finite lookahead.
  std::vector<std::string> order;  // threads=1: single-threaded, safe.
  {
    const Simulator::LaneScope serial(sim, Simulator::kSerialLane);
    sim.at(50, [&] { order.push_back("serial@50"); });
  }
  {
    const Simulator::LaneScope lane0(sim, 0);
    sim.at(50, [&] { order.push_back("lane@50"); });
    sim.at(49, [&] { order.push_back("lane@49"); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "lane@49");
  EXPECT_EQ(order[1], "serial@50");
  EXPECT_EQ(order[2], "lane@50");
}

TEST(LaneSim, PingPongAcrossLanesKeepsExactTimestamps) {
  // Sustained cross-lane traffic in both directions: every hop lands at
  // exactly the previous time + delay, across many windows, any threads.
  for (unsigned threads : {1u, 2u}) {
    Simulator sim;
    sim.configure_lanes(2, threads);
    auto& to1 = sim.make_channel(1, 1, 7);
    auto& to0 = sim.make_channel(2, 0, 3);
    std::vector<Obs> trace0, trace1;  // Written only by their own lane.
    int remaining = 50;
    std::function<void()> hop1;
    std::function<void()> hop0 = [&] {
      trace0.push_back({sim.now(), "at0"});
      if (--remaining > 0) to1.schedule(sim.now() + 7, [&] { hop1(); });
    };
    hop1 = [&] {
      trace1.push_back({sim.now(), "at1"});
      if (--remaining > 0) to0.schedule(sim.now() + 3, [&] { hop0(); });
    };
    {
      const Simulator::LaneScope lane0(sim, 0);
      sim.at(kSimStart + 1, hop0);
    }
    sim.run();
    ASSERT_EQ(trace0.size() + trace1.size(), 50u);
    for (std::size_t i = 1; i < trace0.size(); ++i) {
      EXPECT_EQ(trace0[i].at, trace0[i - 1].at + 10);  // Full round trip.
    }
    for (std::size_t i = 0; i < trace1.size(); ++i) {
      EXPECT_EQ(trace1[i].at, trace0[i].at + 7);
    }
    EXPECT_EQ(sim.events_processed(), 50u);
  }
}

// ---------------------------------------------------- conservative guards

TEST(LaneSim, ZeroLookaheadChannelRejected) {
  Simulator sim;
  sim.configure_lanes(2, 1);
  try {
    sim.make_channel(9, 1, 0);
    FAIL() << "zero-lookahead channel accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("zero lookahead"), std::string::npos) << e.what();
  }
  EXPECT_THROW(sim.make_channel(9, 1, -5), std::invalid_argument);
  // Serial-target channels carry no lookahead obligation: 0 is fine there,
  // and the global lookahead must remain untouched by them.
  sim.make_channel(10, Simulator::kSerialLane, 0);
  sim.make_channel(11, 1, 25);
  EXPECT_EQ(sim.lookahead(), 25);
}

TEST(LaneSim, ConservativeViolationInsideWindowThrows) {
  // A channel push into the executing window is a causality bug the engine
  // must refuse loudly, naming the channel and its declared floor.
  Simulator sim;
  sim.configure_lanes(2, 1);
  auto& ch = sim.make_channel(3, 1, 100);
  {
    const Simulator::LaneScope lane0(sim, 0);
    sim.at(10, [&] { ch.schedule(sim.now() + 1, [] {}); });
  }
  try {
    sim.run();
    FAIL() << "undershooting min_delay mid-window did not throw";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("conservative lookahead violated"), std::string::npos) << msg;
    EXPECT_NE(msg.find("min_delay"), std::string::npos) << msg;
  }
}

TEST(LaneSim, DuplicateChannelKeyAndUnknownLaneRejected) {
  Simulator sim;
  sim.configure_lanes(2, 1);
  sim.make_channel(5, 1, 10);
  EXPECT_THROW(sim.make_channel(5, 0, 10), std::invalid_argument);
  EXPECT_THROW(sim.make_channel(6, 7, 10), std::invalid_argument);
}

// ------------------------------------------------------------------ cancel

TEST(LaneSim, CancelSemanticsAcrossLanes) {
  Simulator sim;
  sim.configure_lanes(2, 1);
  sim.make_channel(1, 1, 1000);  // Long lookahead: one big window.
  bool own_fired = false, foreign_fired = false;
  EventId own_id = 0, foreign_id = 0;
  {
    const Simulator::LaneScope lane1(sim, 1);
    foreign_id = sim.at(50, [&] { foreign_fired = true; });
  }
  {
    const Simulator::LaneScope lane0(sim, 0);
    own_id = sim.at(60, [&] { own_fired = true; });
    sim.at(10, [&] {
      // Mid-window, a lane may cancel its OWN pending events...
      sim.cancel(own_id);
      // ...while a foreign lane's id is an O(1) no-op, not a race and not
      // an error: that event still fires.
      sim.cancel(foreign_id);
    });
  }
  sim.run();
  EXPECT_FALSE(own_fired);
  EXPECT_TRUE(foreign_fired);
  // Stale cancels (id already fired) stay harmless, in and out of windows.
  sim.cancel(foreign_id);
  EXPECT_EQ(sim.events_processed(), 2u);  // The canceller and the foreign event.
}

TEST(LaneSim, OutsideWindowCancelReachesAnyLane) {
  // Between runs (no window executing) a cancel routes to the owning lane's
  // queue whatever lane it targets.
  Simulator sim;
  sim.configure_lanes(3, 1);
  bool fired = false;
  EventId id = 0;
  {
    const Simulator::LaneScope lane2(sim, 2);
    id = sim.at(40, [&] { fired = true; });
  }
  sim.cancel(id);  // Ambient context, different (default) lane.
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

// ------------------------------------------------------------------- slab

TEST(LaneSim, SlabHighWaterBoundedUnderLaneChurn) {
  // Thousands of schedule/fire cycles across lanes + serial must reuse
  // slots: the slab high-water tracks peak outstanding events per lane, not
  // cumulative history.
  Simulator sim;
  sim.configure_lanes(2, 2);
  sim.make_channel(1, 1, 50);
  std::uint64_t fired = 0;  // Serial-lane counter (single-threaded).
  // One serial-target channel per source lane: a channel's sequence counter
  // is deliberately unsynchronized (cross-thread increment order would break
  // the canonical merge), so only one lane may send on a given channel
  // within a window.
  Simulator::Channel* serial_ch[2] = {&sim.make_channel(2, Simulator::kSerialLane, 0),
                                      &sim.make_channel(3, Simulator::kSerialLane, 0)};
  for (int round = 0; round < 200; ++round) {
    const SimTime base = kSimStart + 1 + round * 100;
    for (std::size_t lane = 0; lane < 2; ++lane) {
      const Simulator::LaneScope scope(sim, lane);
      for (int k = 0; k < 8; ++k) {
        sim.at(base + k, [&, lane] {
          serial_ch[lane]->schedule(sim.now() + 60, [&] { ++fired; });
        });
      }
    }
    sim.run();
  }
  EXPECT_EQ(fired, 200u * 2 * 8);
  // 16 events/round/lane outstanding at peak; 3200 pushed per queue overall.
  EXPECT_LE(sim.lane_queue(0).slab_slots(), 64u);
  EXPECT_LE(sim.lane_queue(1).slab_slots(), 64u);
  EXPECT_LE(sim.lane_queue(Simulator::kSerialLane).slab_slots(), 64u);
}

// ------------------------------------------------------------------- knobs

TEST(SimKnobs, ResolveSimThreadsRejectsBogusEnv) {
  for (const char* bad : {"0", "-3", "", "12abc", "garbage", "+"}) {
    EnvVarGuard env("JQOS_SIM_THREADS", std::string(bad));
    try {
      (void)resolve_sim_threads();
      FAIL() << "JQOS_SIM_THREADS='" << bad << "' accepted";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      // Actionable: names the knob, shows the value, says how to clear it.
      EXPECT_NE(msg.find("JQOS_SIM_THREADS"), std::string::npos) << msg;
      EXPECT_NE(msg.find(bad), std::string::npos) << msg;
      EXPECT_NE(msg.find("Unset"), std::string::npos) << msg;
    }
    // An explicit request bypasses the env entirely -- a caller-provided
    // count must not fail because the environment is broken.
    EXPECT_EQ(resolve_sim_threads(3), 3u);
  }
  {
    EnvVarGuard env("JQOS_SIM_THREADS", "4");
    EXPECT_EQ(resolve_sim_threads(), 4u);
  }
  {
    EnvVarGuard env("JQOS_SIM_THREADS", std::nullopt);
    EXPECT_GE(resolve_sim_threads(), 1u);
  }
}

TEST(SimKnobs, ResolveSimLanesRejectsBogusEnv) {
  for (const char* bad : {"-1", "x", "", "3.5", "07h"}) {
    EnvVarGuard env("JQOS_SIM_LANES", std::string(bad));
    try {
      (void)resolve_sim_lanes();
      FAIL() << "JQOS_SIM_LANES='" << bad << "' accepted";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("JQOS_SIM_LANES"), std::string::npos) << msg;
      EXPECT_NE(msg.find("Unset"), std::string::npos) << msg;
    }
  }
  {
    EnvVarGuard env("JQOS_SIM_LANES", "0");  // "0" is a valid OFF setting.
    EXPECT_EQ(resolve_sim_lanes(), 0u);
  }
  {
    EnvVarGuard env("JQOS_SIM_LANES", "6");
    EXPECT_EQ(resolve_sim_lanes(), 6u);
    EXPECT_EQ(resolve_sim_lanes(2), 2u);  // Explicit request wins.
  }
  {
    EnvVarGuard env("JQOS_SIM_LANES", std::nullopt);
    EXPECT_EQ(resolve_sim_lanes(), 0u);
  }
}

TEST(SimKnobs, ConfigureLanesRejectsInvalidCounts) {
  for (std::size_t bad : {std::size_t{0}, Simulator::kMaxLanes + 1, std::size_t{1000}}) {
    Simulator sim;
    try {
      sim.configure_lanes(bad);
      FAIL() << "lane count " << bad << " accepted";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(std::to_string(bad)), std::string::npos) << msg;
      EXPECT_NE(msg.find("disable lanes"), std::string::npos) << msg;
    }
    EXPECT_FALSE(sim.lanes_enabled()) << "failed configure must leave plain mode intact";
  }
  Simulator sim;
  sim.configure_lanes(2, 1);
  EXPECT_THROW(sim.configure_lanes(2, 1), std::logic_error);  // Once only.
  EXPECT_THROW(sim.step(), std::logic_error);  // step() is plain-mode only.
}

TEST(SimKnobs, LaneScopeValidatesLane) {
  Simulator laned;
  laned.configure_lanes(2, 1);
  EXPECT_THROW(Simulator::LaneScope(laned, 5), std::invalid_argument);
  { const Simulator::LaneScope ok(laned, 1); }
  { const Simulator::LaneScope serial(laned, Simulator::kSerialLane); }
  // On a plain simulator the scope is an inert shell (scenario code uses it
  // unconditionally): any lane value is tolerated and nothing changes.
  Simulator plain;
  { const Simulator::LaneScope noop(plain, 7); }
  EXPECT_FALSE(plain.lanes_enabled());
}

}  // namespace
}  // namespace jqos::netsim
