// Tests for the erasure-coding substrate: GF(256) field axioms, matrix
// inversion, Reed-Solomon any-k-of-n recovery (parameterized sweeps), and
// the packet-batch framing used by CR-WAN.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "fec/coded_batch.h"
#include "fec/gf256.h"
#include "fec/matrix.h"
#include "fec/reed_solomon.h"

namespace jqos::fec {
namespace {

// ------------------------------- GF(256) ----------------------------------

// Schoolbook carry-less multiply mod 0x11d for cross-checking the tables.
Gf slow_mul(Gf a, Gf b) {
  unsigned r = 0;
  unsigned aa = a;
  for (unsigned bb = b; bb != 0; bb >>= 1) {
    if (bb & 1) r ^= aa;
    aa <<= 1;
    if (aa & 0x100) aa ^= 0x11d;
  }
  return static_cast<Gf>(r);
}

TEST(Gf256, MatchesSchoolbookMultiplication) {
  for (unsigned a = 0; a < 256; a += 7) {
    for (unsigned b = 0; b < 256; ++b) {
      ASSERT_EQ(gf_mul(static_cast<Gf>(a), static_cast<Gf>(b)),
                slow_mul(static_cast<Gf>(a), static_cast<Gf>(b)));
    }
  }
}

TEST(Gf256, FieldAxioms) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const Gf a = static_cast<Gf>(rng.uniform_int(0, 255));
    const Gf b = static_cast<Gf>(rng.uniform_int(0, 255));
    const Gf c = static_cast<Gf>(rng.uniform_int(0, 255));
    EXPECT_EQ(gf_mul(a, b), gf_mul(b, a));
    EXPECT_EQ(gf_mul(a, gf_mul(b, c)), gf_mul(gf_mul(a, b), c));
    // Distributivity over XOR-addition.
    EXPECT_EQ(gf_mul(a, gf_add(b, c)), gf_add(gf_mul(a, b), gf_mul(a, c)));
    EXPECT_EQ(gf_mul(a, 1), a);
    EXPECT_EQ(gf_mul(a, 0), 0);
  }
}

TEST(Gf256, InverseAndDivision) {
  for (unsigned a = 1; a < 256; ++a) {
    const Gf inv = gf_inv(static_cast<Gf>(a));
    EXPECT_EQ(gf_mul(static_cast<Gf>(a), inv), 1);
    EXPECT_EQ(gf_div(static_cast<Gf>(a), static_cast<Gf>(a)), 1);
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (unsigned a : {2u, 3u, 29u, 255u}) {
    Gf acc = 1;
    for (unsigned e = 0; e < 20; ++e) {
      EXPECT_EQ(gf_pow(static_cast<Gf>(a), e), acc);
      acc = gf_mul(acc, static_cast<Gf>(a));
    }
  }
}

TEST(Gf256, AddmulKernel) {
  std::vector<std::uint8_t> dst(64, 0), src(64);
  std::iota(src.begin(), src.end(), 1);
  gf_addmul(dst.data(), src.data(), 3, src.size());
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_EQ(dst[i], gf_mul(src[i], 3));
  // Accumulating the same contribution cancels (characteristic 2).
  gf_addmul(dst.data(), src.data(), 3, src.size());
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_EQ(dst[i], 0);
}

// -------------------------------- matrix ----------------------------------

TEST(Matrix, IdentityInvertsToItself) {
  const Matrix id = Matrix::identity(8);
  auto inv = id.inverted();
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(*inv, id);
}

TEST(Matrix, InverseIsTwoSided) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix m(6, 6);
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = 0; j < 6; ++j) {
        m.at(i, j) = static_cast<Gf>(rng.uniform_int(0, 255));
      }
    }
    auto inv = m.inverted();
    if (!inv) continue;  // Random singular matrices are skipped.
    EXPECT_EQ(m.mul(*inv), Matrix::identity(6));
    EXPECT_EQ(inv->mul(m), Matrix::identity(6));
  }
}

TEST(Matrix, SingularDetected) {
  Matrix m(3, 3);  // All zeros.
  EXPECT_FALSE(m.inverted().has_value());
  // Duplicate rows.
  Matrix d(2, 2);
  d.at(0, 0) = 5;
  d.at(0, 1) = 7;
  d.at(1, 0) = 5;
  d.at(1, 1) = 7;
  EXPECT_FALSE(d.inverted().has_value());
}

TEST(Matrix, VandermondeSubmatricesInvertible) {
  const Matrix v = Matrix::vandermonde(12, 5);
  // Any 5 distinct rows must be invertible -- the erasure-code property.
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::size_t> rows(12);
    std::iota(rows.begin(), rows.end(), 0);
    for (std::size_t i = 0; i < 5; ++i) {
      std::swap(rows[i], rows[static_cast<std::size_t>(rng.uniform_int(
                             static_cast<std::int64_t>(i), 11))]);
    }
    rows.resize(5);
    EXPECT_TRUE(v.select_rows(rows).inverted().has_value());
  }
}

// ---------------------------- Reed-Solomon --------------------------------

struct RsParam {
  std::size_t k;
  std::size_t r;
};

class ReedSolomonSweep : public ::testing::TestWithParam<RsParam> {};

TEST_P(ReedSolomonSweep, AnyKofNRecovers) {
  const auto [k, r] = GetParam();
  const std::size_t len = 64;
  Rng rng(1000 + k * 17 + r);

  std::vector<std::vector<std::uint8_t>> data(k, std::vector<std::uint8_t>(len));
  for (auto& shard : data) {
    for (auto& byte : shard) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  std::vector<std::span<const std::uint8_t>> spans(data.begin(), data.end());

  const ReedSolomon rs(k, r);
  auto parity = rs.encode(spans);
  ASSERT_EQ(parity.size(), r);

  // All shards in codeword order.
  std::vector<std::vector<std::uint8_t>> all = data;
  for (auto& p : parity) all.push_back(p);

  // Try multiple random subsets of exactly k shards.
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<std::size_t> idx(k + r);
    std::iota(idx.begin(), idx.end(), 0);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      std::swap(idx[i], idx[static_cast<std::size_t>(rng.uniform_int(
                            static_cast<std::int64_t>(i),
                            static_cast<std::int64_t>(idx.size()) - 1))]);
    }
    idx.resize(k);
    std::vector<std::pair<std::size_t, std::span<const std::uint8_t>>> input;
    for (std::size_t i : idx) input.emplace_back(i, std::span<const std::uint8_t>(all[i]));
    auto decoded = rs.decode(input);
    ASSERT_TRUE(decoded.has_value());
    for (std::size_t i = 0; i < k; ++i) EXPECT_EQ((*decoded)[i], data[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KRSweep, ReedSolomonSweep,
    ::testing::Values(RsParam{1, 1}, RsParam{2, 1}, RsParam{4, 2}, RsParam{5, 1},
                      RsParam{6, 2}, RsParam{8, 3}, RsParam{10, 2}, RsParam{16, 4},
                      RsParam{20, 2}, RsParam{32, 8}, RsParam{50, 5}));

TEST(ReedSolomon, SystematicParityIndependentOfDataCopy) {
  // The top k rows of the encode matrix must be identity (systematic code).
  const ReedSolomon rs(6, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    const auto row = rs.encode_row(i);
    for (std::size_t j = 0; j < 6; ++j) EXPECT_EQ(row[j], i == j ? 1 : 0);
  }
}

TEST(ReedSolomon, FewerThanKShardsFails) {
  const ReedSolomon rs(4, 2);
  std::vector<std::uint8_t> shard(16, 1);
  std::vector<std::pair<std::size_t, std::span<const std::uint8_t>>> input = {
      {0, shard}, {1, shard}, {2, shard}};
  EXPECT_FALSE(rs.decode(input).has_value());
}

TEST(ReedSolomon, RejectsInvalidConstruction) {
  EXPECT_THROW(ReedSolomon(0, 2), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 100), std::invalid_argument);
}

TEST(ReedSolomon, RejectsMalformedDecodeInput) {
  const ReedSolomon rs(2, 2);
  std::vector<std::uint8_t> shard(8, 1);
  std::vector<std::pair<std::size_t, std::span<const std::uint8_t>>> dup = {{0, shard},
                                                                            {0, shard}};
  EXPECT_THROW(rs.decode(dup), std::invalid_argument);
  std::vector<std::pair<std::size_t, std::span<const std::uint8_t>>> oob = {{0, shard},
                                                                            {9, shard}};
  EXPECT_THROW(rs.decode(oob), std::out_of_range);
}

TEST(ReedSolomon, EncodeIntoMatchesEncode) {
  const ReedSolomon rs(4, 2);
  const std::size_t len = 32;
  Rng rng(77);
  std::vector<std::vector<std::uint8_t>> data(4, std::vector<std::uint8_t>(len));
  for (auto& s : data) {
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  std::vector<std::span<const std::uint8_t>> spans(data.begin(), data.end());
  auto expected = rs.encode(spans);

  std::vector<std::vector<std::uint8_t>> parity(2, std::vector<std::uint8_t>(len));
  std::vector<const std::uint8_t*> dp;
  std::vector<std::uint8_t*> pp;
  for (auto& s : data) dp.push_back(s.data());
  for (auto& s : parity) pp.push_back(s.data());
  rs.encode_into(dp.data(), len, pp.data());
  EXPECT_EQ(parity, expected);
}

// ----------------------------- coded batch --------------------------------

std::vector<PacketPtr> make_batch(std::size_t k, std::size_t base_size, Rng& rng) {
  std::vector<PacketPtr> pkts;
  for (std::size_t i = 0; i < k; ++i) {
    auto p = std::make_shared<Packet>();
    p->flow = static_cast<FlowId>(i + 1);
    p->seq = static_cast<SeqNo>(100 + i);
    // Different sizes per packet: the batch must pad correctly.
    p->payload.resize(base_size + i * 13);
    for (auto& b : p->payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    pkts.push_back(std::move(p));
  }
  return pkts;
}

TEST(CodedBatch, EncodeProducesMetadata) {
  Rng rng(4);
  auto pkts = make_batch(6, 50, rng);
  auto coded = encode_batch(pkts, 2, PacketType::kCrossCoded, 42, 1, 2, 1000);
  ASSERT_EQ(coded.size(), 2u);
  for (std::size_t i = 0; i < coded.size(); ++i) {
    ASSERT_TRUE(coded[i]->meta.has_value());
    EXPECT_EQ(coded[i]->meta->batch_id, 42u);
    EXPECT_EQ(coded[i]->meta->k, 6);
    EXPECT_EQ(coded[i]->meta->r, 2);
    EXPECT_EQ(coded[i]->meta->index, 6 + i);
    EXPECT_EQ(coded[i]->meta->covered.size(), 6u);
    EXPECT_EQ(coded[i]->type, PacketType::kCrossCoded);
  }
}

TEST(CodedBatch, RecoverSingleMissing) {
  Rng rng(5);
  auto pkts = make_batch(6, 40, rng);
  auto coded = encode_batch(pkts, 2, PacketType::kCrossCoded, 1, 1, 2, 0);
  const CodedMeta& meta = *coded[0]->meta;

  // Position 3 is missing; all other data packets present.
  std::vector<std::pair<std::size_t, std::span<const std::uint8_t>>> present;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    if (i == 3) continue;
    present.emplace_back(i, std::span<const std::uint8_t>(pkts[i]->payload));
  }
  auto rec = decode_batch(meta, present, std::vector<PacketPtr>{coded[0]});
  ASSERT_TRUE(rec.has_value());
  ASSERT_EQ(rec->size(), 1u);
  EXPECT_EQ((*rec)[0].position, 3u);
  EXPECT_EQ((*rec)[0].key, pkts[3]->key());
  EXPECT_EQ((*rec)[0].payload, pkts[3]->payload);
}

TEST(CodedBatch, RecoverTwoMissingNeedsBothCodedPackets) {
  Rng rng(6);
  auto pkts = make_batch(5, 30, rng);
  auto coded = encode_batch(pkts, 2, PacketType::kCrossCoded, 2, 1, 2, 0);
  const CodedMeta& meta = *coded[0]->meta;

  std::vector<std::pair<std::size_t, std::span<const std::uint8_t>>> present;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    if (i == 1 || i == 4) continue;
    present.emplace_back(i, std::span<const std::uint8_t>(pkts[i]->payload));
  }
  // One coded packet is not enough for two losses.
  EXPECT_FALSE(
      decode_batch(meta, present, std::vector<PacketPtr>{coded[0]}).has_value());
  // Both coded packets recover both losses, exactly.
  auto rec = decode_batch(meta, present, coded);
  ASSERT_TRUE(rec.has_value());
  ASSERT_EQ(rec->size(), 2u);
  EXPECT_EQ((*rec)[0].payload, pkts[1]->payload);
  EXPECT_EQ((*rec)[1].payload, pkts[4]->payload);
}

TEST(CodedBatch, StragglerTolerance) {
  // k=6 with r=2: recovery of one loss succeeds with one peer missing
  // (straggler) because the second coded packet replaces it.
  Rng rng(7);
  auto pkts = make_batch(6, 20, rng);
  auto coded = encode_batch(pkts, 2, PacketType::kCrossCoded, 3, 1, 2, 0);
  std::vector<std::pair<std::size_t, std::span<const std::uint8_t>>> present;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    if (i == 0 || i == 5) continue;  // 0 lost; 5 is a straggler.
    present.emplace_back(i, std::span<const std::uint8_t>(pkts[i]->payload));
  }
  auto rec = decode_batch(*coded[0]->meta, present, coded);
  ASSERT_TRUE(rec.has_value());
  // Both absent positions are reconstructed; the requester cares about 0.
  ASSERT_EQ(rec->size(), 2u);
  EXPECT_EQ((*rec)[0].key, pkts[0]->key());
  EXPECT_EQ((*rec)[0].payload, pkts[0]->payload);
}

TEST(CodedBatch, SinglePacketBatchActsAsDuplication) {
  Rng rng(8);
  auto pkts = make_batch(1, 25, rng);
  auto coded = encode_batch(pkts, 1, PacketType::kInCoded, 9, 1, 2, 0);
  auto rec = decode_batch(*coded[0]->meta, {}, coded);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ((*rec)[0].payload, pkts[0]->payload);
}

TEST(CodedBatch, DuplicateCodedPacketsIgnored) {
  Rng rng(9);
  auto pkts = make_batch(4, 30, rng);
  auto coded = encode_batch(pkts, 1, PacketType::kCrossCoded, 10, 1, 2, 0);
  std::vector<PacketPtr> dup = {coded[0], coded[0], coded[0]};
  std::vector<std::pair<std::size_t, std::span<const std::uint8_t>>> present;
  present.emplace_back(0, std::span<const std::uint8_t>(pkts[0]->payload));
  present.emplace_back(1, std::span<const std::uint8_t>(pkts[1]->payload));
  // Two missing, one distinct coded symbol: must fail, not crash.
  EXPECT_FALSE(decode_batch(*coded[0]->meta, present, dup).has_value());
}

TEST(CodedBatch, RejectsOversizedBatch) {
  Rng rng(10);
  auto pkts = make_batch(254, 4, rng);
  EXPECT_THROW(encode_batch(pkts, 2, PacketType::kCrossCoded, 1, 1, 2, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace jqos::fec
