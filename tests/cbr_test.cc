// Tests for the ON/OFF CBR probe application, including the synchronized
// schedule mode the deployment uses.
#include <gtest/gtest.h>

#include "netsim/network.h"
#include "transport/cbr_app.h"

namespace jqos::transport {
namespace {

struct Sink final : netsim::Node {
  explicit Sink(netsim::Network& net) : id_(net.allocate_id()) { net.attach(*this); }
  NodeId id() const override { return id_; }
  void handle_packet(const PacketPtr& pkt) override { arrivals.push_back(pkt->sent_at); }
  NodeId id_;
  std::vector<SimTime> arrivals;
};

struct Fixture {
  netsim::Simulator sim;
  netsim::Network net{sim};
  Sink receiver{net};
  endpoint::Sender sender{net};

  Fixture() {
    net.add_link(sender.id(), receiver.id(), netsim::make_fixed_latency(0),
                 netsim::make_no_loss());
    endpoint::SenderPolicy policy;
    policy.duplicate_to_cloud = false;
    policy.receiver = receiver.id();
    sender.register_flow(1, policy);
  }
};

TEST(CbrApp, PacketRateWithinOnInterval) {
  Fixture f;
  CbrParams params;
  params.on_duration = sec(10);
  params.mean_off = minutes(60);  // Effectively a single ON interval.
  params.packets_per_second = 25.0;
  CbrApp app(f.sim, f.sender, 1, params, Rng(1));
  app.start(sec(10));
  f.sim.run_until(sec(11));
  EXPECT_NEAR(static_cast<double>(app.stats().packets_sent), 250.0, 3.0);
  EXPECT_EQ(app.stats().on_intervals, 1u);
  // Inter-arrival spacing is constant (40 ms).
  for (std::size_t i = 1; i < f.receiver.arrivals.size(); ++i) {
    EXPECT_EQ(f.receiver.arrivals[i] - f.receiver.arrivals[i - 1], msec(40));
  }
}

TEST(CbrApp, OnOffAlternation) {
  Fixture f;
  CbrParams params;
  params.on_duration = sec(5);
  params.mean_off = sec(5);
  params.packets_per_second = 10.0;
  CbrApp app(f.sim, f.sender, 1, params, Rng(2));
  app.start(minutes(5));
  f.sim.run_until(minutes(5) + sec(10));
  // ~30 cycles of mean 10 s each in 300 s; allow broad slack (Poisson OFF).
  EXPECT_GT(app.stats().on_intervals, 10u);
  EXPECT_LT(app.stats().on_intervals, 60u);
  // Duty cycle ~50% => ~1500 packets +/- slack.
  EXPECT_GT(app.stats().packets_sent, 800u);
  EXPECT_LT(app.stats().packets_sent, 2300u);
}

TEST(CbrApp, MakeScheduleCoversSpan) {
  CbrParams params;
  params.on_duration = minutes(2);
  params.mean_off = minutes(3);
  Rng rng(3);
  const auto schedule = CbrApp::make_schedule(0, minutes(40), params, rng);
  ASSERT_FALSE(schedule.empty());
  EXPECT_EQ(schedule.front(), 0);
  EXPECT_LT(schedule.back(), minutes(40));
  // Starts are strictly increasing and separated by at least on_duration.
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i] - schedule[i - 1], params.on_duration);
  }
  // Mean cycle ~5 min => ~8 intervals in 40 min.
  EXPECT_GT(schedule.size(), 4u);
  EXPECT_LT(schedule.size(), 16u);
}

TEST(CbrApp, ScheduledModeFollowsAnnouncedStarts) {
  Fixture f;
  CbrParams params;
  params.on_duration = sec(2);
  params.packets_per_second = 10.0;
  params.initial_skew = msec(100);
  CbrApp app(f.sim, f.sender, 1, params, Rng(4));
  app.start_with_schedule({sec(1), sec(10), sec(20)}, sec(30));
  f.sim.run_until(sec(31));
  EXPECT_EQ(app.stats().on_intervals, 3u);
  // 3 intervals x 2 s x 10 pps.
  EXPECT_NEAR(static_cast<double>(app.stats().packets_sent), 60.0, 4.0);
  // First packet at schedule start + skew.
  ASSERT_FALSE(f.receiver.arrivals.empty());
  EXPECT_EQ(f.receiver.arrivals.front(), sec(1) + msec(100));
  // Nothing sent during the announced OFF span.
  for (SimTime t : f.receiver.arrivals) {
    const bool in_1 = t >= sec(1) && t <= sec(3) + msec(200);
    const bool in_2 = t >= sec(10) && t <= sec(12) + msec(200);
    const bool in_3 = t >= sec(20) && t <= sec(22) + msec(200);
    EXPECT_TRUE(in_1 || in_2 || in_3) << "packet at " << format_duration(t);
  }
}

TEST(CbrApp, SynchronizedAppsOverlap) {
  // Two apps sharing a schedule must be ON together (the property the
  // encoder's cross-stream batches rely on).
  netsim::Simulator sim;
  netsim::Network net(sim);
  Sink r1(net), r2(net);
  endpoint::Sender sender(net);
  net.add_link(sender.id(), r1.id(), netsim::make_fixed_latency(0), netsim::make_no_loss());
  net.add_link(sender.id(), r2.id(), netsim::make_fixed_latency(0), netsim::make_no_loss());
  endpoint::SenderPolicy p1, p2;
  p1.duplicate_to_cloud = p2.duplicate_to_cloud = false;
  p1.receiver = r1.id();
  p2.receiver = r2.id();
  sender.register_flow(1, p1);
  sender.register_flow(2, p2);

  CbrParams params;
  params.on_duration = sec(3);
  params.packets_per_second = 20.0;
  CbrParams skewed = params;
  skewed.initial_skew = msec(200);
  CbrApp a(sim, sender, 1, params, Rng(5));
  CbrApp b(sim, sender, 2, skewed, Rng(6));
  const std::vector<SimTime> schedule = {sec(1), sec(30)};
  a.start_with_schedule(schedule, sec(40));
  b.start_with_schedule(schedule, sec(40));
  sim.run_until(sec(41));

  // Every packet of app B lands within app A's ON spans (plus skew).
  for (SimTime t : r2.arrivals) {
    const bool overlap_1 = t >= sec(1) && t <= sec(4) + msec(400);
    const bool overlap_2 = t >= sec(30) && t <= sec(33) + msec(400);
    EXPECT_TRUE(overlap_1 || overlap_2);
  }
  EXPECT_NEAR(static_cast<double>(r1.arrivals.size()),
              static_cast<double>(r2.arrivals.size()), 4.0);
}

TEST(CbrApp, StopsAtUntil) {
  Fixture f;
  CbrParams params;
  params.on_duration = minutes(10);
  params.packets_per_second = 10.0;
  CbrApp app(f.sim, f.sender, 1, params, Rng(7));
  app.start(sec(5));  // Until cuts the ON interval short.
  f.sim.run();
  EXPECT_LE(app.stats().packets_sent, 51u);
  EXPECT_TRUE(f.sim.idle());
}

}  // namespace
}  // namespace jqos::transport
