// End-to-end integration tests: the full simulated deployment (senders,
// DCs with all services installed, receivers) recovering real losses via
// each of the three services, plus determinism of the whole stack.
#include <gtest/gtest.h>

#include "exp/planetlab.h"
#include "exp/scenario.h"

namespace jqos::exp {
namespace {

WanScenarioParams fast_params(ServiceType service, std::uint64_t seed = 7) {
  WanScenarioParams p;
  p.service = service;
  p.seed = seed;
  p.coding.k = 6;
  p.coding.cross_coded = 2;
  p.coding.in_block = 5;
  p.coding.in_coded = 1;
  // CBR inter-arrivals are 40 ms; the queue timer must leave room for
  // batches to actually fill (the per-application tuning of Section 5).
  p.coding.queue_timeout = msec(300);
  p.cbr.on_duration = sec(30);
  p.cbr.mean_off = sec(20);
  p.cbr.packets_per_second = 25.0;
  p.cbr.payload_bytes = 256;
  p.direct.bernoulli_loss = 0.004;
  p.direct.gilbert.p_good_to_bad = 0.001;
  p.direct.gilbert.p_bad_to_good = 0.3;
  p.direct.gilbert.loss_in_bad = 0.85;
  p.direct.outage_path_fraction = 0.5;
  p.direct.outage.mean_interval = sec(60);
  p.direct.outage.min_len = sec(1);
  p.direct.outage.max_len = sec(2);
  return p;
}

std::vector<geo::PathSample> test_paths(std::size_t n, std::uint64_t seed = 3) {
  Rng rng(seed);
  return geo::planetlab_paths(n, rng);
}

TEST(Integration, CodingServiceRecoversLosses) {
  WanScenario scenario(test_paths(12), fast_params(ServiceType::kCode));
  scenario.run(minutes(3));

  std::uint64_t delivered = 0, recovered = 0, lost = 0;
  for (std::size_t i = 0; i < scenario.path_count(); ++i) {
    const PathRuntime& rt = scenario.path(i);
    delivered += rt.delivered_direct;
    recovered += rt.recovered;
    lost += rt.lost;
  }
  ASSERT_GT(delivered, 10000u);  // The workload actually ran.
  ASSERT_GT(recovered + lost, 50u);  // Losses actually happened.
  // The coding service recovers a solid majority of direct-path losses.
  const double rate = static_cast<double>(recovered) / static_cast<double>(recovered + lost);
  EXPECT_GT(rate, 0.5);

  const auto enc = scenario.encoder_totals();
  EXPECT_GT(enc.cross_batches, 0u);
  EXPECT_GT(enc.in_batches, 0u);
  const auto rec = scenario.recovery_totals();
  EXPECT_GT(rec.coop_success + rec.in_stream_served, 0u);
}

TEST(Integration, CachingServiceRecoversLosses) {
  WanScenario scenario(test_paths(8), fast_params(ServiceType::kCache));
  scenario.run(minutes(3));
  std::uint64_t recovered = 0, lost = 0;
  for (std::size_t i = 0; i < scenario.path_count(); ++i) {
    recovered += scenario.path(i).recovered;
    lost += scenario.path(i).lost;
  }
  ASSERT_GT(recovered + lost, 30u);
  const double rate = static_cast<double>(recovered) / static_cast<double>(recovered + lost);
  // Caching stores every packet at DC2, so recovery should be very high.
  EXPECT_GT(rate, 0.7);
}

TEST(Integration, RecoveryLatencyMostlyUnderHalfRtt) {
  WanScenario scenario(test_paths(10), fast_params(ServiceType::kCode, 11));
  scenario.run(minutes(3));
  Samples all;
  for (std::size_t i = 0; i < scenario.path_count(); ++i) {
    for (double v : scenario.path(i).recovery_over_rtt.values()) all.add(v);
  }
  ASSERT_GT(all.count(), 30u);
  // Figure 8(d): recoveries complete well under the direct-path RTT; the
  // bulk within ~0.5x.
  EXPECT_GT(all.cdf_at(0.75), 0.7);
}

TEST(Integration, CodingCheaperThanCachingCheaperThanForwarding) {
  // Inter-DC egress bytes ordering — the economic core of the paper.
  auto inter_dc_bytes = [](ServiceType service) {
    WanScenario scenario(test_paths(6, 5), fast_params(service, 13));
    scenario.run(minutes(2));
    std::uint64_t egress = 0;
    auto& overlay = scenario.overlay();
    for (std::size_t i = 0; i < overlay.dc_count(); ++i) {
      egress += overlay.dc(i).egress_bytes();
    }
    return egress;
  };
  const std::uint64_t code = inter_dc_bytes(ServiceType::kCode);
  const std::uint64_t cache = inter_dc_bytes(ServiceType::kCache);
  const std::uint64_t fwd = inter_dc_bytes(ServiceType::kForward);
  EXPECT_LT(code, cache);
  EXPECT_LT(cache, fwd);
}

TEST(Integration, DeterministicForFixedSeed) {
  auto fingerprint = [] {
    WanScenario scenario(test_paths(5, 9), fast_params(ServiceType::kCode, 21));
    scenario.run(minutes(1));
    std::uint64_t fp = 0;
    for (std::size_t i = 0; i < scenario.path_count(); ++i) {
      const PathRuntime& rt = scenario.path(i);
      fp = fp * 1000003 + rt.delivered_direct;
      fp = fp * 1000003 + rt.recovered;
      fp = fp * 1000003 + rt.lost;
    }
    return fp;
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

TEST(Integration, PlanetlabHarnessEndToEnd) {
  PlanetlabConfig config;
  config.num_paths = 10;
  config.duration = minutes(4);
  config.cbr.on_duration = sec(40);
  config.cbr.mean_off = sec(30);
  config.cbr.packets_per_second = 20.0;
  config.direct.outage.mean_interval = sec(90);
  const PlanetlabResult result = run_planetlab(config);
  ASSERT_EQ(result.paths.size(), 10u);
  EXPECT_GT(result.overall_recovery, 0.4);
  EXPECT_GT(result.overall_loss_rate, 0.0);
  EXPECT_EQ(result.per_path_recovery.count(), 10u);
  // Region grouping produced at least one series with data.
  EXPECT_FALSE(result.recovery_over_rtt_by_region.empty());
  // Traces exist for the FEC what-if.
  for (const auto& p : result.paths) EXPECT_FALSE(p.trace.empty());
}

TEST(Integration, StragglerProtectionAblationRuns) {
  PlanetlabConfig config;
  config.num_paths = 8;
  config.duration = minutes(2);
  config.cbr.on_duration = sec(30);
  config.cbr.mean_off = sec(20);
  const Samples increase = run_straggler_ablation(config);
  EXPECT_EQ(increase.count(), 8u);
  // Improvements are non-negative by construction.
  EXPECT_GE(increase.min(), 0.0);
}

}  // namespace
}  // namespace jqos::exp
