// The sharded runner's merge-determinism contract (sharded_runner.h):
//
//  * Thread count is pure mechanism: JQOS_SIM_THREADS / num_threads may only
//    change wall-clock time, never a single byte of the merged results.
//  * Shard count is also invariant: packing the (DC1, DC2) interaction
//    groups into 1 shard, one shard per group, or anything between yields
//    identical per-path outcomes and identical summed service totals,
//    because every random stream is derived from stable identities and no
//    causal interaction crosses a group boundary.
//  * The WanScenario facade (the whole scenario in ONE shard) is the N=1
//    reference the merged N-shard result must match bit-for-bit.
//  * All of the above holds under either event-queue backend.
//
// These properties are what make "run the 45-path sweep on every core" a
// safe default for the figure drivers rather than a fidelity trade-off.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "exp/sharded_runner.h"
#include "test_guards.h"

namespace jqos::exp {
namespace {

WanScenarioParams fast_params(std::uint64_t seed) {
  WanScenarioParams p;
  p.service = ServiceType::kCode;
  p.seed = seed;
  p.coding.k = 5;
  p.coding.cross_coded = 2;
  p.coding.in_block = 5;
  p.coding.in_coded = 1;
  p.coding.queue_timeout = msec(300);
  p.cbr.on_duration = sec(20);
  p.cbr.mean_off = sec(10);
  p.cbr.packets_per_second = 25.0;
  p.cbr.payload_bytes = 256;
  p.direct.bernoulli_loss = 0.004;
  p.direct.gilbert.p_good_to_bad = 0.001;
  p.direct.outage_path_fraction = 0.5;
  p.direct.outage.mean_interval = sec(45);
  p.direct.outage.min_len = sec(1);
  p.direct.outage.max_len = sec(2);
  return p;
}

std::vector<geo::PathSample> test_paths(std::size_t n, std::uint64_t seed = 3) {
  Rng rng(seed);
  return geo::planetlab_paths(n, rng);
}

// Everything observable from a run: per-path delivery traces and counters,
// plus the merged encoder/recovery totals. Byte-for-byte comparable.
struct Fingerprint {
  std::vector<std::vector<Outcome>> outcomes;
  std::vector<std::vector<double>> recovery_ms;
  std::vector<std::uint64_t> delivered, recovered, lost;
  std::uint64_t enc_data = 0, enc_cross = 0, enc_in = 0, enc_coded = 0, enc_timer = 0;
  std::uint64_t rec_nacks = 0, rec_keys = 0, rec_in_stream = 0, rec_coop_ops = 0;
  std::uint64_t rec_coop_success = 0, rec_sent = 0, rec_stored = 0, rec_expired = 0;

  // NOTE: simulator event counts are deliberately absent. Splitting groups
  // that share a DC site across shards duplicates that site's housekeeping
  // timers (one per shard), so raw event totals are an execution detail,
  // not a result. They ARE invariant for a fixed partition; the thread-
  // count test checks that separately.
  bool operator==(const Fingerprint&) const = default;
};

template <typename Runner>
Fingerprint fingerprint_of(const Runner& runner, std::size_t n) {
  Fingerprint fp;
  for (std::size_t i = 0; i < n; ++i) {
    const PathRuntime& rt = runner.path(i);
    fp.outcomes.push_back(rt.outcome);
    fp.recovery_ms.push_back(rt.recovery_ms.values());
    fp.delivered.push_back(rt.delivered_direct);
    fp.recovered.push_back(rt.recovered);
    fp.lost.push_back(rt.lost);
  }
  const auto enc = runner.encoder_totals();
  fp.enc_data = enc.data_packets;
  fp.enc_cross = enc.cross_batches;
  fp.enc_in = enc.in_batches;
  fp.enc_coded = enc.coded_sent;
  fp.enc_timer = enc.timer_flushes;
  const auto rec = runner.recovery_totals();
  fp.rec_nacks = rec.nacks;
  fp.rec_keys = rec.nack_keys;
  fp.rec_in_stream = rec.in_stream_served;
  fp.rec_coop_ops = rec.coop_ops;
  fp.rec_coop_success = rec.coop_success;
  fp.rec_sent = rec.recovered_sent;
  fp.rec_stored = rec.batches_stored;
  fp.rec_expired = rec.batches_expired;
  return fp;
}

struct RunResult {
  Fingerprint fp;
  std::uint64_t events = 0;
};

RunResult run_sharded(std::size_t paths, std::uint64_t seed, std::size_t num_shards,
                      unsigned num_threads) {
  ShardedRunParams rp;
  rp.num_shards = num_shards;
  rp.num_threads = num_threads;
  ShardedRunner runner(test_paths(paths), fast_params(seed), rp);
  runner.run(minutes(1));
  return {fingerprint_of(runner, runner.path_count()), runner.total_events()};
}

void expect_same(const Fingerprint& a, const Fingerprint& b, const std::string& what) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << what;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i], b.outcomes[i]) << what << ": outcome trace of path " << i;
    EXPECT_EQ(a.recovery_ms[i], b.recovery_ms[i]) << what << ": recovery_ms of path " << i;
  }
  EXPECT_TRUE(a == b) << what << ": fingerprints diverge";
}

TEST(ShardedScenario, ThreadCountNeverChangesMergedResults) {
  // The acceptance criterion: JQOS_SIM_THREADS=1 vs >1 bit-identical. The
  // explicit num_threads knob is the same code path the env override feeds.
  const RunResult t1 = run_sharded(10, 77, 0, 1);
  ASSERT_GT(t1.fp.enc_data, 1000u) << "scenario too small to be a meaningful guard";
  for (unsigned threads : {2u, 4u}) {
    const RunResult tn = run_sharded(10, 77, 0, threads);
    expect_same(t1.fp, tn.fp, "threads=" + std::to_string(threads));
    // For a FIXED partition the raw event totals are invariant too.
    EXPECT_EQ(t1.events, tn.events) << "threads=" << threads;
  }
}

TEST(ShardedScenario, ShardCountNeverChangesMergedResults) {
  // Stronger: the decomposition itself is invariant. 1 shard (monolithic),
  // one shard per group (0), and partial packings all merge identically.
  const RunResult mono = run_sharded(10, 91, 1, 2);
  for (std::size_t shards : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    const RunResult r = run_sharded(10, 91, shards, 2);
    expect_same(mono.fp, r.fp, "num_shards=" + std::to_string(shards));
  }
}

TEST(ShardedScenario, MatchesWanScenarioFacade) {
  // The N=1 facade and the fully sharded multi-threaded run agree exactly.
  const std::uint64_t seed = 2026;
  WanScenario mono(test_paths(8, 5), fast_params(seed));
  mono.run(minutes(1));
  Fingerprint mono_fp = fingerprint_of(mono, mono.path_count());

  ShardedRunParams rp;
  rp.num_threads = 4;
  ShardedRunner sharded(test_paths(8, 5), fast_params(seed), rp);
  sharded.run(minutes(1));
  ASSERT_GT(sharded.shard_count(), 1u) << "paths collapsed into one group; test is vacuous";
  const Fingerprint sharded_fp = fingerprint_of(sharded, sharded.path_count());
  expect_same(mono_fp, sharded_fp, "facade-vs-sharded");
}

TEST(ShardedScenario, InvariantAcrossEventQueueBackends) {
  for (netsim::EvqBackend backend :
       {netsim::EvqBackend::kHeap, netsim::EvqBackend::kLadder}) {
    const jqos::testing::EvqBackendGuard guard(backend);
    const RunResult a = run_sharded(8, 13, 0, 1);
    const RunResult b = run_sharded(8, 13, 0, 4);
    expect_same(a.fp, b.fp, std::string("backend=") + netsim::evq_backend_name(backend));
  }
  // And the two backends agree with each other under sharding, as the
  // monolithic determinism suite already guarantees for one Simulator.
  RunResult heap, ladder;
  {
    const jqos::testing::EvqBackendGuard guard(netsim::EvqBackend::kHeap);
    heap = run_sharded(8, 13, 0, 4);
  }
  {
    const jqos::testing::EvqBackendGuard guard(netsim::EvqBackend::kLadder);
    ladder = run_sharded(8, 13, 0, 4);
  }
  expect_same(heap.fp, ladder.fp, "heap-vs-ladder sharded");
}

// --- intra-shard lane determinism ---
// The conservative-lane contract (docs/DETERMINISM.md): at a FIXED shard
// partition, the lane count and the lane thread count are pure mechanism.
// Every lanes >= 1 configuration must produce bit-identical results under
// any thread count and either event-queue backend. (lanes == 0, the classic
// single loop, resolves same-microsecond ties differently and is NOT
// asserted equal; shard count changes barrier placement and is fixed here.)

RunResult run_laned(std::size_t paths, std::uint64_t seed, std::size_t lanes,
                    unsigned lane_threads, std::size_t num_shards = 1) {
  WanScenarioParams p = fast_params(seed);
  p.lanes = lanes;
  p.lane_threads = lane_threads;
  ShardedRunParams rp;
  rp.num_shards = num_shards;
  rp.num_threads = 1;
  ShardedRunner runner(test_paths(paths), p, rp);
  runner.run(minutes(1));
  return {fingerprint_of(runner, runner.path_count()), runner.total_events()};
}

TEST(LanedScenario, LaneCountNeverChangesResults) {
  const RunResult one = run_laned(8, 77, 1, 1);
  ASSERT_GT(one.fp.enc_data, 1000u) << "scenario too small to be a meaningful guard";
  // 9 asks for more lanes than paths and must clamp, not misbehave.
  for (std::size_t lanes : {std::size_t{2}, std::size_t{3}, std::size_t{9}}) {
    const RunResult n = run_laned(8, 77, lanes, 1);
    expect_same(one.fp, n.fp, "lanes=" + std::to_string(lanes));
    EXPECT_EQ(one.events, n.events) << "lanes=" << lanes;
  }
}

TEST(LanedScenario, LaneThreadCountNeverChangesResults) {
  const RunResult t1 = run_laned(8, 91, 3, 1);
  // 0 = auto (JQOS_SIM_THREADS / hardware concurrency), the production mode.
  for (unsigned threads : {2u, 3u, 0u}) {
    const RunResult tn = run_laned(8, 91, 3, threads);
    expect_same(t1.fp, tn.fp, "lane_threads=" + std::to_string(threads));
    EXPECT_EQ(t1.events, tn.events) << "lane_threads=" << threads;
  }
}

TEST(LanedScenario, InvariantAcrossEventQueueBackends) {
  RunResult results[2];
  std::size_t i = 0;
  for (netsim::EvqBackend backend :
       {netsim::EvqBackend::kHeap, netsim::EvqBackend::kLadder}) {
    const jqos::testing::EvqBackendGuard guard(backend);
    results[i++] = run_laned(6, 13, 2, 2);
  }
  expect_same(results[0].fp, results[1].fp, "laned heap-vs-ladder");
  EXPECT_EQ(results[0].events, results[1].events);
}

TEST(LanedScenario, ComposesWithShardedRunner) {
  // Lanes inside shards, several shards, several lane threads: still equal
  // to the single-threaded run at the same partition.
  const RunResult a = run_laned(10, 55, 2, 1, /*num_shards=*/0);
  const RunResult b = run_laned(10, 55, 4, 3, /*num_shards=*/0);
  expect_same(a.fp, b.fp, "sharded+laned");
}

TEST(LanedScenario, FaultsAndFailoverStayDeterministic) {
  // Faults mutate lane-owned state (direct links) and hub state (DCs) on a
  // schedule; failover adds receiver->sender control traffic. All of it must
  // stay invariant across lane and thread counts.
  auto make = [](std::size_t lanes, unsigned threads) {
    WanScenarioParams p = fast_params(31);
    p.failover.enabled = true;
    p.faults.link_down("direct:2", sec(10), sec(4));
    p.faults.node_crash("dc:" + test_paths(6, 3)[0].dc2.name, sec(20), sec(6));
    p.lanes = lanes;
    p.lane_threads = threads;
    WanScenario sc(test_paths(6, 3), p);
    sc.run(minutes(1));
    Fingerprint fp = fingerprint_of(sc, sc.path_count());
    const FaultSummary fs = sc.fault_summary();
    // Fold the fault counters in through unused fingerprint slots.
    fp.rec_expired += fs.link_fault_drops * 1000003 + fs.dc_fault_dropped * 997 +
                      fs.failovers * 31 + fs.reengages;
    return fp;
  };
  const Fingerprint base = make(1, 1);
  expect_same(base, make(3, 1), "faults lanes=3");
  expect_same(base, make(3, 2), "faults lanes=3 threads=2");
}

TEST(ShardedScenario, PartitionRespectsInteractionGroups) {
  // Paths sharing a (DC1, DC2) pair must land in one shard: force all paths
  // onto one DC pair and check the runner collapses to a single shard.
  auto paths = test_paths(6, 21);
  for (auto& p : paths) {
    p.dc1 = paths[0].dc1;
    p.dc2 = paths[0].dc2;
  }
  ShardedRunner runner(std::move(paths), fast_params(1), {});
  EXPECT_EQ(runner.shard_count(), 1u);
}

}  // namespace
}  // namespace jqos::exp
