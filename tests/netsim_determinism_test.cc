// Determinism regression for the discrete-event simulator: two runs with the
// same seed must produce byte-identical event traces and stats. This is the
// contract every experiment in exp/ relies on for reproducible figures, and
// it is the property most at risk from the event-queue ladder/batching work:
// any reordering of equal-timestamp events or seed-dependent divergence
// shows up here before it corrupts a figure.
//
// Beyond same-seed/same-backend stability, the suite pins the stronger
// cross-backend contract: the ladder queue and the reference binary heap
// must produce bit-identical traces for the same seed — both for a raw
// event cascade and for a full fig9-style scenario through the J-QoS
// service stack (coding encoder/recovery DCs, receiver NACK timers, CBR
// apps over lossy jittered links).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exp/scenario.h"
#include "netsim/simulator.h"
#include "test_guards.h"

namespace jqos::netsim {
namespace {

constexpr EvqBackend kBackends[] = {EvqBackend::kHeap, EvqBackend::kLadder};

struct TraceEntry {
  SimTime at;
  std::uint64_t label;

  bool operator==(const TraceEntry&) const = default;
};

// A randomized self-expanding workload: each event may spawn children at
// random future offsets and may cancel a previously scheduled event. This
// exercises scheduling, equal-timestamp ties (delays are coarsely quantized
// so collisions are common), and lazy cancellation — the full EventQueue
// surface — while every random draw flows from one seed.
struct CascadeRun {
  std::vector<TraceEntry> trace;
  std::uint64_t events_processed = 0;
  SimTime end_time = 0;
};

CascadeRun run_cascade(std::uint64_t seed, EvqBackend backend) {
  Simulator sim(backend);
  Rng rng(seed);
  std::uint64_t next_label = 0;
  std::vector<EventId> cancellable;
  CascadeRun out;

  // The recursive spawner. Capturing structured state by reference is safe:
  // everything outlives sim.run().
  struct Spawner {
    Simulator& sim;
    Rng& rng;
    std::uint64_t& next_label;
    std::vector<EventId>& cancellable;
    CascadeRun& out;
    int budget;  // Remaining spawns; bounds the cascade.

    void spawn(int depth) {
      if (budget <= 0) return;
      --budget;
      const std::uint64_t label = next_label++;
      // Coarse 100us grid => frequent equal-timestamp ties.
      const SimDuration delay = usec(100 * rng.uniform_int(0, 50));
      const EventId id = sim.after(delay, [this, label, depth] {
        out.trace.push_back({sim.now(), label});
        // Supercritical branching (mean 1.5 children) so the cascade runs
        // until the spawn budget is consumed rather than dying out early.
        const std::int64_t children = depth < 400 ? rng.uniform_int(1, 2) : 0;
        for (std::int64_t c = 0; c < children; ++c) spawn(depth + 1);
        if (!cancellable.empty() && rng.bernoulli(0.3)) {
          const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(cancellable.size()) - 1));
          sim.cancel(cancellable[pick]);
          cancellable.erase(cancellable.begin() + static_cast<std::ptrdiff_t>(pick));
        }
      });
      if (rng.bernoulli(0.2)) cancellable.push_back(id);
    }
  };

  Spawner spawner{sim, rng, next_label, cancellable, out, 2000};
  for (int i = 0; i < 16; ++i) spawner.spawn(0);
  sim.run();

  out.events_processed = sim.events_processed();
  out.end_time = sim.now();
  return out;
}

void expect_same_cascade(const CascadeRun& a, const CascadeRun& b, const std::string& what) {
  EXPECT_EQ(a.events_processed, b.events_processed) << what;
  EXPECT_EQ(a.end_time, b.end_time) << what;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << what;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_EQ(a.trace[i], b.trace[i])
        << what << ": traces diverge at event " << i << " (t=" << a.trace[i].at
        << " label=" << a.trace[i].label << " vs t=" << b.trace[i].at << " label="
        << b.trace[i].label << ")";
  }
}

TEST(NetsimDeterminism, SameSeedSameTraceAndStats) {
  for (EvqBackend backend : kBackends) {
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
      const CascadeRun a = run_cascade(seed, backend);
      const CascadeRun b = run_cascade(seed, backend);
      ASSERT_GT(a.trace.size(), 100u) << "cascade too small to be a meaningful guard";
      expect_same_cascade(a, b,
                          std::string(evq_backend_name(backend)) + " seed=" +
                              std::to_string(seed));
    }
  }
}

TEST(NetsimDeterminism, HeapAndLadderBackendsProduceIdenticalTraces) {
  // The cross-backend contract: both backends order by (time, insertion
  // sequence), so for any same-seed workload their traces must be
  // bit-identical — the property the differential stress test fuzzes and
  // every figure bench relies on when sweeping backends.
  for (std::uint64_t seed : {1ull, 42ull, 7777ull, 0xdeadbeefull}) {
    const CascadeRun heap = run_cascade(seed, EvqBackend::kHeap);
    const CascadeRun ladder = run_cascade(seed, EvqBackend::kLadder);
    ASSERT_GT(heap.trace.size(), 100u);
    expect_same_cascade(heap, ladder, "heap-vs-ladder seed=" + std::to_string(seed));
  }
}

TEST(NetsimDeterminism, EqualTimestampEventsFireInInsertionOrder) {
  // The documented tie-break: equal timestamps deliver in insertion order.
  // Batching work must preserve this, or every seeded experiment shifts.
  for (EvqBackend backend : kBackends) {
    Simulator sim(backend);
    std::vector<int> fired;
    for (int i = 0; i < 100; ++i) {
      sim.at(msec(5), [&fired, i] { fired.push_back(i); });
    }
    sim.run();
    ASSERT_EQ(fired.size(), 100u) << evq_backend_name(backend);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
  }
}

// ---------------------- full service-stack scenario -----------------------

// Everything observable from one fig9-style run: per-path per-sequence
// outcome codes (a delivery trace), recovery latency samples, and the
// simulator's own counters. Any backend-dependent reordering inside the
// encoder queues, recovery NACK path, or receiver timers lands here.
struct ScenarioFingerprint {
  std::vector<std::vector<exp::Outcome>> outcomes;
  std::vector<std::vector<double>> recovery_ms;
  std::vector<std::uint64_t> recovered, lost, delivered;
  std::uint64_t events_processed = 0;
  SimTime end_time = 0;

  bool operator==(const ScenarioFingerprint&) const = default;
};

ScenarioFingerprint run_fig9_style(EvqBackend backend, std::uint64_t seed) {
  const jqos::testing::EvqBackendGuard guard(backend);
  Rng prng(seed);
  auto paths = geo::planetlab_paths(6, prng);
  // One DC pair so coding groups reach full k, as the figure benches do.
  for (auto& p : paths) {
    p.dc1 = paths[0].dc1;
    p.dc2 = paths[0].dc2;
  }

  exp::WanScenarioParams params;
  params.service = ServiceType::kCode;
  params.seed = seed;
  params.coding.k = 4;
  params.coding.cross_coded = 1;
  params.coding.queue_timeout = msec(60);
  params.direct.outage_path_fraction = 0.5;
  params.direct.outage.mean_interval = sec(20);
  params.cbr.on_duration = sec(10);
  params.cbr.mean_off = sec(2);
  params.cbr.packets_per_second = 30.0;

  exp::WanScenario scenario(std::move(paths), params);
  scenario.run(sec(30));
  evq_clear_default_backend();

  ScenarioFingerprint fp;
  for (std::size_t i = 0; i < scenario.path_count(); ++i) {
    const auto& p = scenario.path(i);
    fp.outcomes.push_back(p.outcome);
    fp.recovery_ms.push_back(p.recovery_ms.values());
    fp.recovered.push_back(p.recovered);
    fp.lost.push_back(p.lost);
    fp.delivered.push_back(p.delivered_direct);
  }
  fp.events_processed = scenario.sim().events_processed();
  fp.end_time = scenario.sim().now();
  return fp;
}

TEST(NetsimDeterminism, Fig9StyleScenarioIdenticalAcrossBackends) {
  const ScenarioFingerprint heap = run_fig9_style(EvqBackend::kHeap, 2020);
  const ScenarioFingerprint ladder = run_fig9_style(EvqBackend::kLadder, 2020);
  ASSERT_GT(heap.events_processed, 10000u)
      << "scenario too small to be a meaningful guard";
  EXPECT_EQ(heap.events_processed, ladder.events_processed);
  EXPECT_EQ(heap.end_time, ladder.end_time);
  EXPECT_TRUE(heap == ladder) << "fig9-style trace diverges between backends";
  // And the same backend twice is stable, as the figures assume.
  const ScenarioFingerprint ladder2 = run_fig9_style(EvqBackend::kLadder, 2020);
  EXPECT_TRUE(ladder == ladder2) << "same-seed ladder scenario not reproducible";
}

}  // namespace
}  // namespace jqos::netsim
