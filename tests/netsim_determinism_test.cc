// Determinism regression for the discrete-event simulator: two runs with the
// same seed must produce byte-identical event traces and stats. This is the
// contract every experiment in exp/ relies on for reproducible figures, and
// it is the property most at risk from the planned event-queue batching /
// calendar-queue work (ROADMAP): any reordering of equal-timestamp events or
// seed-dependent divergence shows up here before it corrupts a figure.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "netsim/simulator.h"

namespace jqos::netsim {
namespace {

struct TraceEntry {
  SimTime at;
  std::uint64_t label;

  bool operator==(const TraceEntry&) const = default;
};

// A randomized self-expanding workload: each event may spawn children at
// random future offsets and may cancel a previously scheduled event. This
// exercises scheduling, equal-timestamp ties (delays are coarsely quantized
// so collisions are common), and lazy cancellation — the full EventQueue
// surface — while every random draw flows from one seed.
struct CascadeRun {
  std::vector<TraceEntry> trace;
  std::uint64_t events_processed = 0;
  SimTime end_time = 0;
};

CascadeRun run_cascade(std::uint64_t seed) {
  Simulator sim;
  Rng rng(seed);
  std::uint64_t next_label = 0;
  std::vector<EventId> cancellable;
  CascadeRun out;

  // The recursive spawner. Capturing structured state by reference is safe:
  // everything outlives sim.run().
  struct Spawner {
    Simulator& sim;
    Rng& rng;
    std::uint64_t& next_label;
    std::vector<EventId>& cancellable;
    CascadeRun& out;
    int budget;  // Remaining spawns; bounds the cascade.

    void spawn(int depth) {
      if (budget <= 0) return;
      --budget;
      const std::uint64_t label = next_label++;
      // Coarse 100us grid => frequent equal-timestamp ties.
      const SimDuration delay = usec(100 * rng.uniform_int(0, 50));
      const EventId id = sim.after(delay, [this, label, depth] {
        out.trace.push_back({sim.now(), label});
        // Supercritical branching (mean 1.5 children) so the cascade runs
        // until the spawn budget is consumed rather than dying out early.
        const std::int64_t children = depth < 400 ? rng.uniform_int(1, 2) : 0;
        for (std::int64_t c = 0; c < children; ++c) spawn(depth + 1);
        if (!cancellable.empty() && rng.bernoulli(0.3)) {
          const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(cancellable.size()) - 1));
          sim.cancel(cancellable[pick]);
          cancellable.erase(cancellable.begin() + static_cast<std::ptrdiff_t>(pick));
        }
      });
      if (rng.bernoulli(0.2)) cancellable.push_back(id);
    }
  };

  Spawner spawner{sim, rng, next_label, cancellable, out, 2000};
  for (int i = 0; i < 16; ++i) spawner.spawn(0);
  sim.run();

  out.events_processed = sim.events_processed();
  out.end_time = sim.now();
  return out;
}

TEST(NetsimDeterminism, SameSeedSameTraceAndStats) {
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    const CascadeRun a = run_cascade(seed);
    const CascadeRun b = run_cascade(seed);
    ASSERT_GT(a.trace.size(), 100u) << "cascade too small to be a meaningful guard";
    EXPECT_EQ(a.events_processed, b.events_processed) << "seed=" << seed;
    EXPECT_EQ(a.end_time, b.end_time) << "seed=" << seed;
    ASSERT_EQ(a.trace.size(), b.trace.size()) << "seed=" << seed;
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
      ASSERT_EQ(a.trace[i], b.trace[i])
          << "seed=" << seed << ": traces diverge at event " << i << " (t=" << a.trace[i].at
          << " label=" << a.trace[i].label << " vs t=" << b.trace[i].at << " label="
          << b.trace[i].label << ")";
    }
  }
}

TEST(NetsimDeterminism, EqualTimestampEventsFireInInsertionOrder) {
  // The documented tie-break: equal timestamps deliver in insertion order.
  // Batching work must preserve this, or every seeded experiment shifts.
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 100; ++i) {
    sim.at(msec(5), [&fired, i] { fired.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace jqos::netsim
