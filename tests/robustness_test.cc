// Robustness and property tests across modules: wire-format fuzzing (the
// live runtime parses datagrams from the network), parameterized sweeps of
// the coding pipeline, loss-model determinism, and protocol-level
// invariants under randomized traffic.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "endpoint/receiver.h"
#include "fec/coded_batch.h"
#include "netsim/loss_model.h"
#include "netsim/network.h"
#include "overlay/datacenter.h"
#include "services/coding/encoder_dc.h"
#include "services/coding/recovery_dc.h"
#include "transport/tcp_model.h"

namespace jqos {
namespace {

// ------------------------- wire-format fuzzing -----------------------------

TEST(Fuzz, PacketParseNeverCrashesOnRandomBytes) {
  Rng rng(0xfeed);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, 256));
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    auto parsed = Packet::parse(bytes);  // Must not crash or throw.
    if (parsed) {
      // Anything that parses must re-serialize to a consistent size.
      EXPECT_EQ(parsed->serialize().size(), parsed->wire_size());
    }
  }
}

TEST(Fuzz, PacketParseNeverCrashesOnMutatedValidPackets) {
  Rng rng(0xbeef);
  Packet p;
  p.type = PacketType::kCrossCoded;
  p.flow = 3;
  p.seq = 99;
  CodedMeta m;
  m.batch_id = 5;
  m.k = 4;
  m.r = 2;
  m.index = 4;
  m.covered = {{1, 1}, {2, 1}, {3, 1}, {4, 1}};
  p.meta = m;
  p.payload.assign(64, 7);
  const auto valid = p.serialize();
  for (int trial = 0; trial < 20000; ++trial) {
    auto mutated = valid;
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < flips; ++i) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    (void)Packet::parse(mutated);  // Must not crash.
  }
}

TEST(Fuzz, NackInfoParseNeverCrashes) {
  Rng rng(0xdead);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, 64));
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    (void)NackInfo::parse(bytes);
  }
}

TEST(Fuzz, TcpSegmentParseNeverCrashes) {
  Rng rng(0xabcd);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, 96));
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    (void)transport::TcpSegment::parse(bytes);
  }
}

// --------------------- coded batch property sweeps -------------------------

struct BatchParam {
  std::size_t k;
  std::size_t r;
  std::size_t losses;
};

class CodedBatchSweep : public ::testing::TestWithParam<BatchParam> {};

TEST_P(CodedBatchSweep, RecoversIffEnoughSymbolsSurvive) {
  const auto [k, r, losses] = GetParam();
  Rng rng(1000 + k * 31 + r * 7 + losses);
  std::vector<PacketPtr> pkts;
  for (std::size_t i = 0; i < k; ++i) {
    auto p = std::make_shared<Packet>();
    p->flow = static_cast<FlowId>(i + 1);
    p->seq = 7;
    p->payload.resize(16 + (i * 29) % 64);
    for (auto& b : p->payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    pkts.push_back(std::move(p));
  }
  auto coded = fec::encode_batch(pkts, r, PacketType::kCrossCoded, 1, 1, 2, 0);

  // Drop `losses` random data packets.
  std::set<std::size_t> missing;
  while (missing.size() < losses) {
    missing.insert(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(k) - 1)));
  }
  std::vector<std::pair<std::size_t, std::span<const std::uint8_t>>> present;
  for (std::size_t i = 0; i < k; ++i) {
    if (missing.count(i)) continue;
    present.emplace_back(i, std::span<const std::uint8_t>(pkts[i]->payload));
  }
  auto rec = fec::decode_batch(*coded[0]->meta, present, coded);
  if (losses <= r) {
    ASSERT_TRUE(rec.has_value());
    ASSERT_EQ(rec->size(), losses);
    for (const auto& rp : *rec) {
      EXPECT_EQ(rp.payload, pkts[rp.position]->payload);
    }
  } else {
    EXPECT_FALSE(rec.has_value());  // Fails loudly, never mis-decodes.
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, CodedBatchSweep,
    ::testing::Values(BatchParam{2, 1, 1}, BatchParam{4, 1, 1}, BatchParam{4, 2, 2},
                      BatchParam{4, 2, 3}, BatchParam{6, 2, 1}, BatchParam{6, 2, 2},
                      BatchParam{6, 2, 3}, BatchParam{10, 2, 2}, BatchParam{10, 3, 3},
                      BatchParam{20, 2, 2}, BatchParam{20, 2, 3}, BatchParam{20, 4, 4}));

// ------------------------- loss-model determinism --------------------------

class LossDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(LossDeterminism, SameSeedSameTrace) {
  const int which = GetParam();
  auto build = [which](std::uint64_t seed) -> netsim::LossModelPtr {
    switch (which) {
      case 0: return netsim::make_bernoulli_loss(0.05, Rng(seed));
      case 1: return netsim::make_gilbert_elliott({}, Rng(seed));
      case 2: return netsim::make_google_burst(0.02, 0.5, Rng(seed));
      default:
        return netsim::make_outage_over(netsim::make_bernoulli_loss(0.01, Rng(seed)),
                                        {}, Rng(seed + 1));
    }
  };
  auto trace = [&](std::uint64_t seed) {
    auto m = build(seed);
    std::vector<bool> out;
    for (int i = 0; i < 5000; ++i) out.push_back(m->should_drop(msec(i)));
    return out;
  };
  EXPECT_EQ(trace(42), trace(42));
  EXPECT_NE(trace(42), trace(43));  // Different seeds differ somewhere.
}

INSTANTIATE_TEST_SUITE_P(AllModels, LossDeterminism, ::testing::Values(0, 1, 2, 3));

// --------------------- end-to-end coding pipeline sweep --------------------

struct PipelineParam {
  std::size_t flows;
  std::size_t k;
  double loss;
};

class CodingPipelineSweep : public ::testing::TestWithParam<PipelineParam> {};

// Randomized end-to-end run of encoder + recovery + receivers under
// Bernoulli loss: the invariant is that recovery never delivers a corrupted
// payload and the receiver never double-delivers a sequence number.
TEST_P(CodingPipelineSweep, NoCorruptionNoDoubleDelivery) {
  const auto [flows, k, loss] = GetParam();
  netsim::Simulator sim;
  netsim::Network net(sim);
  Rng rng(99 + flows * 13 + k);

  overlay::DataCenter dc1(net, 0, "dc1");
  overlay::DataCenter dc2(net, 1, "dc2");
  auto registry = std::make_shared<services::FlowRegistry>();
  services::CodingParams cp;
  cp.k = k;
  cp.queue_timeout = msec(100);
  auto encoder = std::make_shared<services::CodingEncoderService>(dc1, cp, registry);
  dc1.install(encoder);
  dc2.install(std::make_shared<services::RecoveryService>(dc2, services::RecoveryParams{}, registry));
  net.add_link(dc1.id(), dc2.id(), netsim::make_fixed_latency(msec(30)),
               netsim::make_no_loss());

  endpoint::Sender sender(net);
  net.add_link(sender.id(), dc1.id(), netsim::make_fixed_latency(msec(5)),
               netsim::make_no_loss());

  struct PerFlow {
    std::unique_ptr<endpoint::Receiver> receiver;
    std::map<SeqNo, std::vector<std::uint8_t>> sent;
    std::set<SeqNo> delivered;
    bool corruption = false;
    bool double_delivery = false;
  };
  std::vector<PerFlow> per_flow(flows);

  for (std::size_t i = 0; i < flows; ++i) {
    PerFlow& pf = per_flow[i];
    endpoint::ReceiverConfig rc;
    rc.dc2 = dc2.id();
    rc.rtt_estimate = msec(120);
    rc.recovery_give_up = msec(500);
    pf.receiver = std::make_unique<endpoint::Receiver>(
        net, rc, [&pf](const endpoint::DeliveryRecord& rec, const PacketPtr& pkt) {
          if (rec.lost || rec.late_direct || pkt == nullptr) return;
          if (!pf.delivered.insert(rec.seq).second) pf.double_delivery = true;
          auto it = pf.sent.find(rec.seq);
          if (it != pf.sent.end() && it->second != pkt->payload) pf.corruption = true;
        });
    const FlowId flow = static_cast<FlowId>(i + 1);
    pf.receiver->expect_flow(flow);
    registry->register_flow(flow, services::FlowInfo{dc2.id(), pf.receiver->id()});
    net.add_link(sender.id(), pf.receiver->id(), netsim::make_fixed_latency(msec(55)),
                 netsim::make_bernoulli_loss(loss, rng.fork("loss")));
    net.add_link(dc2.id(), pf.receiver->id(), netsim::make_fixed_latency(msec(6)),
                 netsim::make_no_loss());
    net.add_link(pf.receiver->id(), dc2.id(), netsim::make_fixed_latency(msec(6)),
                 netsim::make_no_loss());
    endpoint::SenderPolicy policy;
    policy.service = ServiceType::kCode;
    policy.dc1 = dc1.id();
    policy.receiver = pf.receiver->id();
    sender.register_flow(flow, policy);
  }

  // 400 packets per flow at 25 pps, unique payload contents per packet.
  for (int n = 0; n < 400; ++n) {
    sim.at(msec(40) * n, [&, n] {
      for (std::size_t i = 0; i < flows; ++i) {
        std::vector<std::uint8_t> payload(48);
        for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        per_flow[i].sent[static_cast<SeqNo>(n)] = payload;
        sender.send_payload(static_cast<FlowId>(i + 1), payload);
      }
    });
  }
  sim.run_until(sec(25));
  encoder->flush_all();
  sim.run_until(sec(30));

  for (std::size_t i = 0; i < flows; ++i) {
    EXPECT_FALSE(per_flow[i].corruption) << "flow " << i + 1;
    EXPECT_FALSE(per_flow[i].double_delivery) << "flow " << i + 1;
    // The vast majority of packets must have been delivered one way or
    // another (direct or recovered).
    EXPECT_GT(per_flow[i].delivered.size(), 380u) << "flow " << i + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Pipelines, CodingPipelineSweep,
                         ::testing::Values(PipelineParam{2, 4, 0.01},
                                           PipelineParam{4, 4, 0.02},
                                           PipelineParam{6, 6, 0.01},
                                           PipelineParam{8, 6, 0.03},
                                           PipelineParam{10, 10, 0.02}));

}  // namespace
}  // namespace jqos
