// Tests for the overlay layer: DC service dispatch and byte accounting, the
// overlay mesh construction, and the Section 6.6 cost arithmetic.
#include <gtest/gtest.h>

#include "geo/regions.h"
#include "netsim/network.h"
#include "overlay/cost_model.h"
#include "overlay/datacenter.h"
#include "overlay/overlay_network.h"

namespace jqos::overlay {
namespace {

struct CountingService final : DcService {
  const char* name() const override { return "counting"; }
  bool handle(DataCenter&, const PacketPtr& pkt) override {
    ++seen;
    return pkt->type == consumed_type;
  }
  PacketType consumed_type = PacketType::kData;
  int seen = 0;
};

TEST(DataCenter, DispatchStopsAtConsumingService) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  DataCenter dc(net, 0, "dc-test");
  auto first = std::make_shared<CountingService>();
  first->consumed_type = PacketType::kNack;  // Will not consume kData.
  auto second = std::make_shared<CountingService>();
  second->consumed_type = PacketType::kData;
  auto third = std::make_shared<CountingService>();
  dc.install(first);
  dc.install(second);
  dc.install(third);

  auto pkt = make_data_packet(1, 0, 99, dc.id(), 0, 32);
  dc.handle_packet(pkt);
  EXPECT_EQ(first->seen, 1);
  EXPECT_EQ(second->seen, 1);
  EXPECT_EQ(third->seen, 0);
  EXPECT_EQ(dc.unhandled_packets(), 0u);
}

TEST(DataCenter, UnhandledPacketsCounted) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  DataCenter dc(net, 0, "dc-test");
  dc.handle_packet(make_data_packet(1, 0, 99, dc.id(), 0, 32));
  EXPECT_EQ(dc.unhandled_packets(), 1u);
}

TEST(DataCenter, IngressEgressAccounting) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  DataCenter dc(net, 0, "dc-a");
  DataCenter dst(net, 1, "dc-b");
  net.add_link(dc.id(), dst.id(), netsim::make_fixed_latency(msec(1)),
               netsim::make_no_loss());

  auto in = make_data_packet(1, 0, 99, dc.id(), 0, 100);
  dc.handle_packet(in);
  EXPECT_EQ(dc.ingress_bytes(), in->wire_size());

  auto out = make_data_packet(1, 1, dc.id(), dst.id(), 0, 200);
  dc.send(out);
  EXPECT_EQ(dc.egress_bytes(), out->wire_size());
  EXPECT_EQ(dc.egress_packets(), 1u);
}

TEST(OverlayNetwork, BuildsFullMeshAndNearestDc) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  Rng rng(1);
  auto sites = geo::cloud_sites_as_of(2019);
  OverlayNetwork overlay(net, sites, OverlayParams{}, rng);
  EXPECT_EQ(overlay.dc_count(), sites.size());
  // Every ordered DC pair has a link.
  for (std::size_t i = 0; i < overlay.dc_count(); ++i) {
    for (std::size_t j = 0; j < overlay.dc_count(); ++j) {
      if (i == j) continue;
      EXPECT_NE(net.link(overlay.dc(i).id(), overlay.dc(j).id()), nullptr);
    }
  }
  // Nearest DC to central Stockholm is the Stockholm site.
  DataCenter& dc = overlay.nearest_dc(geo::GeoPoint{59.3, 18.1});
  EXPECT_EQ(dc.name(), "eu-north-stockholm");
}

TEST(OverlayNetwork, InterDcLatencyTracksGeography) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  Rng rng(2);
  auto sites = geo::cloud_sites_as_of(2019);
  OverlayNetwork overlay(net, sites, OverlayParams{}, rng);
  DataCenter* virginia = overlay.dc_by_site("us-east-virginia");
  DataCenter* ireland = overlay.dc_by_site("eu-west-ireland");
  DataCenter* london = overlay.dc_by_site("eu-west-london");
  ASSERT_NE(virginia, nullptr);
  ASSERT_NE(ireland, nullptr);
  ASSERT_NE(london, nullptr);
  const auto transatlantic = net.link(virginia->id(), ireland->id())->base_latency();
  const auto intra_eu = net.link(ireland->id(), london->id())->base_latency();
  EXPECT_GT(transatlantic, intra_eu * 4);
}

TEST(OverlayNetwork, AttachHostCreatesBidirectionalLinks) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  Rng rng(3);
  auto sites = geo::cloud_sites_as_of(2019);
  OverlayNetwork overlay(net, sites, OverlayParams{}, rng);
  const NodeId host = net.allocate_id();
  overlay.attach_host(host, overlay.dc(0), msec(7));
  ASSERT_NE(net.link(host, overlay.dc(0).id()), nullptr);
  ASSERT_NE(net.link(overlay.dc(0).id(), host), nullptr);
  EXPECT_EQ(net.link(host, overlay.dc(0).id())->base_latency(), msec(7));
}

// ------------------------------ cost model --------------------------------

TEST(CostModel, Section66ForwardingCost) {
  // 150 Skype calls at 0.675 GB/user/hour => ~101 GB/h; a 2-DC forwarding
  // overlay egresses it twice: "$17.60/hour for bandwidth and $0.13/hour
  // for single thread ... compute".
  const CostModel model;
  const SkypeLoad load;
  const double gb_per_hour = load.gb_per_user_hour * load.calls_per_thread;
  EXPECT_NEAR(gb_per_hour, 101.25, 0.01);
  const double bandwidth_only = 2.0 * gb_per_hour * model.pricing().egress_usd_per_gb;
  EXPECT_NEAR(bandwidth_only, 17.60, 0.1);
  EXPECT_NEAR(model.forwarding_hourly_usd(gb_per_hour), 17.60 + 0.13, 0.1);
}

TEST(CostModel, Section66CodingCost) {
  // "for a coding rate of r = 1/16, the maximum cost of bandwidth for 150
  // calls will only be $1.10/hour, which is 16x less than ... forwarding."
  const CostModel model;
  const SkypeLoad load;
  const double gb_per_hour = load.gb_per_user_hour * load.calls_per_thread;
  const double coding_bw =
      2.0 * gb_per_hour * (1.0 / 16.0) * model.pricing().egress_usd_per_gb;
  EXPECT_NEAR(coding_bw, 1.10, 0.05);
  const double fwd_bw = 2.0 * gb_per_hour * model.pricing().egress_usd_per_gb;
  EXPECT_NEAR(fwd_bw / coding_bw, 16.0, 0.1);
}

TEST(CostModel, CachingBetweenCodingAndForwarding) {
  const CostModel model;
  const double gb = 100.0;
  const double fwd = model.forwarding_hourly_usd(gb);
  const double cache = model.caching_hourly_usd(gb, 0.01);
  const double code = model.coding_hourly_usd(gb, 2.0 / 6.0);
  EXPECT_LT(code, cache);
  EXPECT_LT(cache, fwd);
}

TEST(CostModel, EgressFromBytes) {
  const CostModel model;
  EXPECT_NEAR(model.egress_cost_from_bytes(1'000'000'000ull),
              model.pricing().egress_usd_per_gb, 1e-9);
  EXPECT_DOUBLE_EQ(model.egress_cost_usd(0.0), 0.0);
}

}  // namespace
}  // namespace jqos::overlay
