// Tests for the experiment harness: the Fig. 7 feasibility computation,
// loss-episode classification, and the FEC what-if replay.
#include <gtest/gtest.h>

#include "exp/fec_whatif.h"
#include "exp/feasibility.h"
#include "exp/planetlab.h"

namespace jqos::exp {
namespace {

TEST(Feasibility, ServiceDelayOrderingHolds) {
  FeasibilityParams params;
  params.num_paths = 500;
  params.num_eu_hosts = 200;
  params.num_north_eu_hosts = 100;
  const FeasibilityResult r = run_feasibility(params);
  ASSERT_EQ(r.internet_ms.count(), 500u);
  // Median ordering: internet < caching < coding; forwarding ~ internet.
  EXPECT_LT(r.internet_ms.median(), r.caching_ms.median());
  EXPECT_LT(r.caching_ms.median(), r.coding_ms.median());
  EXPECT_NEAR(r.forwarding_ms.median(), r.internet_ms.median(),
              r.internet_ms.median() * 0.35);
}

TEST(Feasibility, InternetTailLongerThanForwarding) {
  FeasibilityParams params;
  params.num_paths = 2000;
  const FeasibilityResult r = run_feasibility(params);
  // Fig 7(a): Internet delivery has a long tail; the cloud path does not.
  const double internet_spread = r.internet_ms.percentile(99) - r.internet_ms.median();
  const double fwd_spread = r.forwarding_ms.percentile(99) - r.forwarding_ms.median();
  EXPECT_GT(internet_spread, fwd_spread);
}

TEST(Feasibility, MostPathsDeliverUnder150ms) {
  // Fig 7(a): "for 95% of the paths, end-to-end packet delivery using
  // coding and caching takes up to 150ms".
  FeasibilityParams params;
  params.num_paths = 2000;
  const FeasibilityResult r = run_feasibility(params);
  EXPECT_GT(r.caching_ms.cdf_at(150.0), 0.85);
  EXPECT_GT(r.coding_ms.cdf_at(150.0), 0.80);
}

TEST(Feasibility, RecoveryWithinHalfRtt) {
  // Fig 7(b): 95% of recoveries within 0.5 RTT; caching recovers earlier
  // than coding.
  FeasibilityParams params;
  params.num_paths = 2000;
  const FeasibilityResult r = run_feasibility(params);
  EXPECT_GT(r.caching_recovery_over_rtt.cdf_at(0.5), 0.9);
  EXPECT_GT(r.coding_recovery_over_rtt.cdf_at(0.5), 0.75);
  EXPECT_LT(r.caching_recovery_over_rtt.median(), r.coding_recovery_over_rtt.median());
}

TEST(Feasibility, DeltaShrinksAcrossDcGenerations) {
  // Fig 7(d): Ireland (2007) -> Frankfurt (2014) -> Stockholm (now).
  FeasibilityParams params;
  params.num_paths = 100;
  params.num_north_eu_hosts = 300;
  const FeasibilityResult r = run_feasibility(params);
  EXPECT_LT(r.delta_neu_now_ms.median(), r.delta_neu_2014_ms.median());
  EXPECT_LT(r.delta_neu_2014_ms.median(), r.delta_neu_2007_ms.median());
}

// --------------------------- episode classifier ---------------------------

std::vector<Outcome> outcomes_from_string(const std::string& s) {
  // 'd' = direct, 'r' = recovered, 'l' = lost, '.' = pending.
  std::vector<Outcome> out;
  for (char c : s) {
    switch (c) {
      case 'd': out.push_back(Outcome::kDirect); break;
      case 'r': out.push_back(Outcome::kRecovered); break;
      case 'l': out.push_back(Outcome::kLost); break;
      default: out.push_back(Outcome::kPending); break;
    }
  }
  return out;
}

TEST(Episodes, ClassifiesByBurstLength) {
  // One random loss, one 3-packet burst, one 20-packet outage.
  std::string s = "dddrdd";
  s += "dd";
  s += "rrr";
  s += "dddd";
  s += std::string(20, 'l');
  s += "dd";
  const EpisodeMix mix = classify_episodes(outcomes_from_string(s));
  EXPECT_EQ(mix.random_episodes, 1u);
  EXPECT_EQ(mix.multi_episodes, 1u);
  EXPECT_EQ(mix.outage_episodes, 1u);
  EXPECT_EQ(mix.random_packets, 1u);
  EXPECT_EQ(mix.multi_packets, 3u);
  EXPECT_EQ(mix.outage_packets, 20u);
  EXPECT_NEAR(mix.outage_fraction(), 20.0 / 24.0, 1e-9);
}

TEST(Episodes, BoundaryLengths) {
  // 14 packets is still "multi"; 15 becomes an outage.
  EXPECT_EQ(classify_episodes(outcomes_from_string(std::string(14, 'r'))).multi_episodes,
            1u);
  EXPECT_EQ(classify_episodes(outcomes_from_string(std::string(15, 'r'))).outage_episodes,
            1u);
}

TEST(Episodes, PendingEntriesSkipped) {
  const EpisodeMix mix = classify_episodes(outcomes_from_string("d..r..d"));
  EXPECT_EQ(mix.random_episodes, 1u);
}

TEST(Episodes, TrailingRunClosed) {
  const EpisodeMix mix = classify_episodes(outcomes_from_string("ddrr"));
  EXPECT_EQ(mix.multi_episodes, 1u);
}

// ------------------------------ FEC what-if --------------------------------

TEST(FecWhatif, LossTraceFiltersPending) {
  auto trace = loss_trace(outcomes_from_string("dr.l"));
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_FALSE(trace[0]);
  EXPECT_TRUE(trace[1]);
  EXPECT_TRUE(trace[2]);
}

TEST(FecWhatif, SingleLossRecoveredAt20Percent) {
  // One loss in a 5-packet block with 1 surviving FEC packet: recovered.
  std::vector<bool> trace = {false, true, false, false, false, false};
  EXPECT_DOUBLE_EQ(fec_recovery_rate(trace, 5, 1), 1.0);
}

TEST(FecWhatif, BurstDefeatsLowOverheadFec) {
  // Three consecutive losses in one block: 1 FEC packet cannot recover;
  // 3 can (40% has 2 -> no, 100% has 5 -> yes).
  std::vector<bool> trace(10, false);
  trace[1] = trace[2] = trace[3] = true;
  EXPECT_DOUBLE_EQ(fec_recovery_rate(trace, 5, 1), 0.0);
  EXPECT_DOUBLE_EQ(fec_recovery_rate(trace, 5, 2), 0.0);
  EXPECT_DOUBLE_EQ(fec_recovery_rate(trace, 5, 3), 1.0);
  EXPECT_TRUE(has_fec_unrecoverable_episode(trace, 5, 2));
  EXPECT_FALSE(has_fec_unrecoverable_episode(trace, 5, 3));
}

TEST(FecWhatif, OutageDefeatsFullDuplication) {
  // An outage spanning a whole block *and* its trailing FEC packets kills
  // even 100% overhead -- CR-WAN's cross-path advantage (Fig 8(c)).
  std::vector<bool> trace(30, false);
  for (std::size_t i = 5; i < 20; ++i) trace[i] = true;
  EXPECT_LT(fec_recovery_rate(trace, 5, 5), 1.0);
  EXPECT_TRUE(has_fec_unrecoverable_episode(trace, 5, 5));
}

TEST(FecWhatif, PercentIncreaseSemantics) {
  EXPECT_DOUBLE_EQ(percent_increase(0.9, 0.45), 100.0);
  EXPECT_DOUBLE_EQ(percent_increase(0.5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percent_increase(0.4, 0.5), 0.0);  // Clamped at zero.
  EXPECT_DOUBLE_EQ(percent_increase(0.9, 0.0), 1e4);  // Log-axis cap.
  EXPECT_DOUBLE_EQ(percent_increase(0.0, 0.0), 0.0);
}

TEST(FecWhatif, NoLossesMeansPerfectRate) {
  std::vector<bool> trace(20, false);
  EXPECT_DOUBLE_EQ(fec_recovery_rate(trace, 5, 1), 1.0);
}

}  // namespace
}  // namespace jqos::exp
