// Randomized stress / property tests for the event-queue backends.
//
// The ladder queue earns its keep only if it is indistinguishable from the
// reference binary heap — and from a naive stable-sorted model — under
// arbitrary interleavings of push / cancel / pop with heavy equal-timestamp
// ties. These tests fuzz exactly that, seeded so failures reproduce, and
// CI runs them under ASan with each backend forced via JQOS_EVQ_BACKEND.
//
// Also pins the slab memory contract: resident slots track PEAK LIVE
// events, not total events ever pushed (the pre-ladder EventQueue grew its
// handler table forever — a long sweep leaked O(total events)).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "netsim/event_queue.h"

namespace jqos::netsim {
namespace {

// A naive but obviously-correct model: pending events in push order; pop
// takes the stable minimum by (time, push order).
class NaiveModel {
 public:
  std::uint64_t push(SimTime at, int label) {
    events_.push_back({at, next_id_, label, true});
    return next_id_++;
  }
  void cancel(std::uint64_t id) {
    for (auto& e : events_) {
      if (e.id == id) e.live = false;
    }
  }
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& e : events_) n += e.live ? 1 : 0;
    return n;
  }
  bool empty() const { return size() == 0; }
  // Returns (at, label) of the earliest live event and removes it.
  std::pair<SimTime, int> pop() {
    std::size_t best = events_.size();
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (!events_[i].live) continue;
      if (best == events_.size() || events_[i].at < events_[best].at) best = i;
      // Ties resolve to the earliest push, which is the first hit.
    }
    const auto out = std::make_pair(events_[best].at, events_[best].label);
    events_.erase(events_.begin() + static_cast<std::ptrdiff_t>(best));
    return out;
  }

 private:
  struct Ev {
    SimTime at;
    std::uint64_t id;
    int label;
    bool live;
  };
  std::vector<Ev> events_;
  std::uint64_t next_id_ = 0;
};

// One random op script executed against the naive model and both real
// backends in lockstep; every divergence is caught at the op that causes it.
struct TimeMix {
  SimDuration quantum;   // Delays snap to this grid (ties when coarse).
  SimDuration max_delay; // Horizon of scheduled delays.
};

void run_script(std::uint64_t seed, const TimeMix& mix) {
  const std::string what = "seed=" + std::to_string(seed) +
                           " quantum=" + std::to_string(mix.quantum) +
                           " max_delay=" + std::to_string(mix.max_delay);
  Rng rng(seed);
  NaiveModel model;
  EventQueue heap(EvqBackend::kHeap);
  EventQueue ladder(EvqBackend::kLadder);

  // Live labels and their per-structure ids, for cancel targeting.
  struct LiveEvent {
    std::uint64_t model_id;
    EventId heap_id;
    EventId ladder_id;
    int label;
  };
  std::vector<LiveEvent> live;
  std::vector<int> fired_heap, fired_ladder;
  int next_label = 0;
  SimTime now = 0;

  const auto push_all = [&](SimTime at) {
    const int label = next_label++;
    LiveEvent ev;
    ev.label = label;
    ev.model_id = model.push(at, label);
    ev.heap_id = heap.push(at, [&fired_heap, label] { fired_heap.push_back(label); });
    ev.ladder_id =
        ladder.push(at, [&fired_ladder, label] { fired_ladder.push_back(label); });
    live.push_back(ev);
  };

  for (int op = 0; op < 6000; ++op) {
    const std::int64_t dice = rng.uniform_int(0, 99);
    if (dice < 45 || model.empty()) {
      const SimDuration delay =
          mix.quantum * (rng.uniform_int(0, mix.max_delay / mix.quantum));
      push_all(now + delay);
    } else if (dice < 55) {
      // Cancel a random still-pending event everywhere.
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      model.cancel(live[pick].model_id);
      heap.cancel(live[pick].heap_id);
      ladder.cancel(live[pick].ladder_id);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      ASSERT_FALSE(heap.empty()) << what;
      ASSERT_FALSE(ladder.empty()) << what;
      const auto [at, label] = model.pop();
      EXPECT_EQ(heap.next_time(), at) << what;
      EXPECT_EQ(ladder.next_time(), at) << what;
      auto hf = heap.pop();
      auto lf = ladder.pop();
      EXPECT_EQ(hf.at, at) << what;
      EXPECT_EQ(lf.at, at) << what;
      hf.fn();
      lf.fn();
      ASSERT_FALSE(fired_heap.empty());
      ASSERT_FALSE(fired_ladder.empty());
      ASSERT_EQ(fired_heap.back(), label) << what << " op=" << op;
      ASSERT_EQ(fired_ladder.back(), label) << what << " op=" << op;
      now = at;  // Sim-contract monotonic clock: future pushes are >= now.
      std::erase_if(live, [&](const LiveEvent& e) { return e.label == label; });
    }
    ASSERT_EQ(heap.size(), model.size()) << what << " op=" << op;
    ASSERT_EQ(ladder.size(), model.size()) << what << " op=" << op;
  }

  // Drain the remainder and compare the full tails.
  while (!model.empty()) {
    const auto [at, label] = model.pop();
    auto hf = heap.pop();
    auto lf = ladder.pop();
    ASSERT_EQ(hf.at, at) << what;
    ASSERT_EQ(lf.at, at) << what;
    hf.fn();
    lf.fn();
    ASSERT_EQ(fired_heap.back(), label) << what;
    ASSERT_EQ(fired_ladder.back(), label) << what;
  }
  EXPECT_TRUE(heap.empty()) << what;
  EXPECT_TRUE(ladder.empty()) << what;
  EXPECT_EQ(fired_heap, fired_ladder) << what;
}

TEST(EvqStress, DifferentialAgainstHeapAndNaiveModel) {
  // Tie-heavy (coarse quantum), mixed, and wide-horizon time distributions.
  const TimeMix mixes[] = {
      {msec(1), msec(5)},     // ~5 distinct delays: massive tie pileups.
      {usec(100), msec(50)},  // The figure benches' coarse-grid profile.
      {usec(1), sec(100)},    // Sparse far-future spread (deep rungs).
  };
  for (const TimeMix& mix : mixes) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 99ull}) run_script(seed, mix);
  }
}

TEST(EvqStress, PopReadyMatchesSequentialPops) {
  for (std::uint64_t seed : {5ull, 6ull}) {
    Rng rng(seed);
    EventQueue batched(EvqBackend::kLadder);
    EventQueue serial(EvqBackend::kHeap);
    std::vector<int> got_batched, got_serial;
    for (int i = 0; i < 3000; ++i) {
      const SimTime at = msec(rng.uniform_int(0, 200));
      batched.push(at, [&got_batched, i] { got_batched.push_back(i); });
      serial.push(at, [&got_serial, i] { got_serial.push_back(i); });
    }
    // Drain in horizon steps on one queue, one event at a time on the other.
    for (SimTime h = msec(20); !batched.empty(); h += msec(20)) {
      std::vector<EventQueue::Fired> batch;
      batched.pop_ready(h, batch);
      for (auto& f : batch) {
        ASSERT_LE(f.at, h);
        f.fn();
      }
      while (!serial.empty() && serial.next_time() <= h) serial.pop().fn();
    }
    EXPECT_EQ(got_batched, got_serial) << "seed=" << seed;
  }
}

TEST(EvqStress, SlabHighWaterTracksPeakLiveNotTotalPushed) {
  // The regression the ladder rework fixes: push/fire 1M events through a
  // bounded in-flight window and assert resident slots stay near peak-live.
  for (EvqBackend b : {EvqBackend::kHeap, EvqBackend::kLadder}) {
    EventQueue q(b);
    Rng rng(11);
    constexpr std::size_t kPeakLive = 1024;
    constexpr std::uint64_t kTotal = 1'000'000;
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < kPeakLive; ++i) q.push(rng.uniform_int(0, 100000), [] {});
    SimTime now = 0;
    while (fired < kTotal) {
      auto f = q.pop();
      now = f.at;
      ++fired;
      // Occasional cancels keep the freelist churning.
      EventId id = q.push(now + rng.uniform_int(1, 100000), [] {});
      if (rng.bernoulli(0.05)) {
        q.cancel(id);
        q.push(now + rng.uniform_int(1, 100000), [] {});
      }
    }
    EXPECT_EQ(q.size(), kPeakLive) << evq_backend_name(b);
    // Near peak-live: a factor-2 allowance for freelist slack, vs the ~1M
    // slots the pre-slab implementation would have accumulated.
    EXPECT_LE(q.slab_slots(), 2 * kPeakLive) << evq_backend_name(b);
  }
}

TEST(EvqStress, BucketPoolCapacityStaysBoundedUnderSteadyChurn) {
  // Regression for the ladder bucket-pool ratchet: a consumed bucket feeds
  // the recycle pool every few events, but rung spawns (the only drain)
  // happen orders of magnitude less often, so a pool capped by vector COUNT
  // alone accumulates capacity linearly for the whole run. The churn-shaped
  // workload below -- a recurring far-future event that forces wide rungs,
  // plus a steady stream of near-future timers that are often cancelled and
  // re-armed -- must leave total pooled capacity O(peak live events), not
  // O(events ever pushed).
  EventQueue q(EvqBackend::kLadder);
  Rng rng(23);
  constexpr std::uint64_t kTotal = 2'000'000;
  SimTime now = 0;
  EventId sweep = q.push(sec(10), [] {});
  std::uint64_t fired = 0;
  for (std::size_t i = 0; i < 512; ++i) q.push(rng.uniform_int(1, 50000), [] {});
  while (fired < kTotal) {
    auto f = q.pop();
    now = f.at;
    ++fired;
    // Timer-like behaviour: frequently cancel and re-arm, parking dead
    // entries in future buckets; keep one event ~10 s out at all times so
    // every spread covers a wide span (many buckets).
    EventId id = q.push(now + rng.uniform_int(1, 50000), [] {});
    if (rng.bernoulli(0.25)) {
      q.cancel(id);
      q.push(now + rng.uniform_int(1, 50000), [] {});
    }
    if (q.size() < 2) {
      q.cancel(sweep);
      sweep = q.push(now + sec(10), [] {});
    }
  }
  // Mirrors recycle_bucket's bound: max(fixed floor, small multiple of the
  // slab high-water mark). Pre-fix this reached millions of pooled entries.
  const std::size_t limit =
      std::max<std::size_t>(std::size_t{1} << 12, 8 * q.slab_slots());
  EXPECT_LE(q.pooled_bucket_entries(), limit);
}

}  // namespace
}  // namespace jqos::netsim
