// Regression tests for the fan-in/incast scenario (exp/incast.h): results
// must be bit-identical under both event-queue backends (the determinism
// contract every scenario carries), and the queue disciplines must show
// their signature behavior at the bottleneck — tail-drop overflows, AQM
// with ECN marks instead of dropping.
#include <gtest/gtest.h>

#include "exp/incast.h"

namespace jqos::exp {
namespace {

void expect_identical(const IncastResult& a, const IncastResult& b) {
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.ce_marked, b.ce_marked);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.bottleneck.offered_packets, b.bottleneck.offered_packets);
  EXPECT_EQ(a.bottleneck.dropped_packets, b.bottleneck.dropped_packets);
  EXPECT_EQ(a.bottleneck.queue_drops, b.bottleneck.queue_drops);
  EXPECT_EQ(a.bottleneck.ecn_marked, b.bottleneck.ecn_marked);
  EXPECT_EQ(a.bottleneck.delivered_packets, b.bottleneck.delivered_packets);
  EXPECT_EQ(a.bottleneck.max_queue_bytes, b.bottleneck.max_queue_bytes);
  EXPECT_EQ(a.bottleneck.max_queue_packets, b.bottleneck.max_queue_packets);
  ASSERT_EQ(a.epoch_drain_ms.size(), b.epoch_drain_ms.size());
  for (std::size_t i = 0; i < a.epoch_drain_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.epoch_drain_ms[i], b.epoch_drain_ms[i]) << "epoch " << i;
  }
}

IncastResult run_with(const IncastParams& p, netsim::EvqBackend backend) {
  IncastScenario scenario(p, backend);
  return scenario.run();
}

TEST(Incast, BitIdenticalAcrossEvqBackendsTailDrop) {
  IncastParams p;
  p.qdisc.kind = netsim::QdiscKind::kTailDrop;  // Pin against JQOS_QDISC.
  p.qdisc.limit_bytes = 256 * 1024;
  const IncastResult heap = run_with(p, netsim::EvqBackend::kHeap);
  const IncastResult ladder = run_with(p, netsim::EvqBackend::kLadder);
  expect_identical(heap, ladder);
  EXPECT_EQ(heap.sent, 16u * 64u * 4u);
}

TEST(Incast, BitIdenticalAcrossEvqBackendsCoDel) {
  IncastParams p;
  p.qdisc.kind = netsim::QdiscKind::kCoDel;
  p.qdisc.limit_bytes = 8 << 20;
  const IncastResult heap = run_with(p, netsim::EvqBackend::kHeap);
  const IncastResult ladder = run_with(p, netsim::EvqBackend::kLadder);
  expect_identical(heap, ladder);
}

TEST(Incast, BitIdenticalAcrossEvqBackendsRed) {
  IncastParams p;
  p.qdisc.kind = netsim::QdiscKind::kRed;
  p.qdisc.limit_bytes = 8 << 20;
  p.qdisc.red_min_bytes = 32 * 1024;
  p.qdisc.red_max_bytes = 128 * 1024;
  p.qdisc.red_wq = 0.01;
  const IncastResult heap = run_with(p, netsim::EvqBackend::kHeap);
  const IncastResult ladder = run_with(p, netsim::EvqBackend::kLadder);
  expect_identical(heap, ladder);
}

TEST(Incast, TailDropOverflowsUnderFanIn) {
  IncastParams p;
  p.qdisc.kind = netsim::QdiscKind::kTailDrop;
  p.qdisc.limit_bytes = 128 * 1024;  // Far below one epoch's aggregate burst.
  const IncastResult r = run_with(p, netsim::evq_default_backend());
  EXPECT_GT(r.bottleneck.queue_drops, 0u);
  EXPECT_EQ(r.bottleneck.ecn_marked, 0u);   // Tail drop never marks...
  EXPECT_EQ(r.ce_marked, 0u);               // ...even though senders set ECT.
  EXPECT_EQ(r.bottleneck.dropped_packets, 0u);  // Lossless wire.
  EXPECT_EQ(r.delivered + r.bottleneck.queue_drops, r.sent);
}

TEST(Incast, CoDelMarksEctInsteadOfDropping) {
  IncastParams p;
  p.qdisc.kind = netsim::QdiscKind::kCoDel;
  p.qdisc.limit_bytes = 8 << 20;  // Cap out of the way: isolate the AQM.
  const IncastResult r = run_with(p, netsim::evq_default_backend());
  EXPECT_GT(r.ce_marked, 0u);
  EXPECT_EQ(r.ce_marked, r.bottleneck.ecn_marked);
  EXPECT_EQ(r.bottleneck.queue_drops, 0u);
  EXPECT_EQ(r.delivered, r.sent);  // Marking keeps the goodput intact.
}

TEST(Incast, CoDelDropsWhenSendersAreNotEct) {
  IncastParams p;
  p.ecn = false;  // No ECT: the same control law must drop instead.
  p.qdisc.kind = netsim::QdiscKind::kCoDel;
  p.qdisc.limit_bytes = 8 << 20;
  const IncastResult r = run_with(p, netsim::evq_default_backend());
  EXPECT_GT(r.bottleneck.queue_drops, 0u);
  EXPECT_EQ(r.bottleneck.ecn_marked, 0u);
  EXPECT_EQ(r.ce_marked, 0u);
}

TEST(Incast, RedMarksEarlyUnderSustainedBacklog) {
  IncastParams p;
  p.qdisc.kind = netsim::QdiscKind::kRed;
  p.qdisc.limit_bytes = 8 << 20;
  p.qdisc.red_min_bytes = 32 * 1024;
  p.qdisc.red_max_bytes = 128 * 1024;
  p.qdisc.red_wq = 0.01;
  const IncastResult r = run_with(p, netsim::evq_default_backend());
  EXPECT_GT(r.ce_marked, 0u);
  EXPECT_EQ(r.ce_marked, r.bottleneck.ecn_marked);
  EXPECT_EQ(r.delivered, r.sent);  // Early action is all marks here.
}

TEST(Incast, EpochDrainTimesRecorded) {
  IncastParams p;
  p.qdisc.kind = netsim::QdiscKind::kTailDrop;
  const IncastResult r = run_with(p, netsim::evq_default_backend());
  ASSERT_EQ(r.epoch_drain_ms.size(), p.epochs);
  for (double drain : r.epoch_drain_ms) EXPECT_GT(drain, 0.0);
  EXPECT_GT(r.events_processed, 0u);
}

}  // namespace
}  // namespace jqos::exp
