// Tests for the two-state Markov timeout model (Section 3.4).
#include <gtest/gtest.h>

#include "endpoint/markov_detector.h"

namespace jqos::endpoint {
namespace {

MarkovParams fixed_params() {
  MarkovParams p;
  p.adaptive = false;
  p.small_timeout = msec(25);
  p.long_rtt_multiplier = 1.0;
  p.min_long_timeout = msec(50);
  return p;
}

TEST(Markov, StartsInLongState) {
  MarkovDetector d(fixed_params(), msec(200));
  EXPECT_EQ(d.state(), MarkovDetector::State::kLong);
  EXPECT_EQ(d.current_timeout(), msec(200));
}

TEST(Markov, FirstArrivalKeepsLongState) {
  MarkovDetector d(fixed_params(), msec(200));
  EXPECT_EQ(d.on_arrival(msec(10)), msec(200));
  EXPECT_EQ(d.state(), MarkovDetector::State::kLong);
}

TEST(Markov, BurstArrivalsSwitchToShort) {
  MarkovDetector d(fixed_params(), msec(200));
  d.on_arrival(msec(0));
  const SimDuration t = d.on_arrival(msec(10));  // 10 ms gap <= 25 ms.
  EXPECT_EQ(d.state(), MarkovDetector::State::kShort);
  EXPECT_EQ(t, msec(25));
}

TEST(Markov, LargeGapFallsBackToLong) {
  MarkovDetector d(fixed_params(), msec(200));
  d.on_arrival(msec(0));
  d.on_arrival(msec(10));
  EXPECT_EQ(d.state(), MarkovDetector::State::kShort);
  d.on_arrival(msec(500));  // Cross-burst gap.
  EXPECT_EQ(d.state(), MarkovDetector::State::kLong);
}

TEST(Markov, TimeoutSwitchesShortToLongImmediately) {
  // "...switches immediately to the long timeout value after sending a
  // NACK."
  MarkovDetector d(fixed_params(), msec(200));
  d.on_arrival(msec(0));
  d.on_arrival(msec(10));
  ASSERT_EQ(d.state(), MarkovDetector::State::kShort);
  const SimDuration next = d.on_timeout();
  EXPECT_EQ(d.state(), MarkovDetector::State::kLong);
  EXPECT_EQ(next, msec(200));
}

TEST(Markov, LongTimeoutTracksRtt) {
  MarkovDetector d(fixed_params(), msec(200));
  EXPECT_EQ(d.long_timeout(), msec(200));
  d.update_rtt(msec(300));
  EXPECT_EQ(d.long_timeout(), msec(300));
  // Floors at min_long_timeout for tiny RTTs.
  d.update_rtt(msec(10));
  EXPECT_EQ(d.long_timeout(), msec(50));
}

TEST(Markov, AdaptiveSmallTimeoutLearnsInterArrival) {
  MarkovParams p;
  p.adaptive = true;
  p.small_timeout = msec(25);
  p.min_small_timeout = msec(2);
  p.ewma_multiplier = 3.0;
  MarkovDetector d(p, msec(200));
  // Steady 4 ms inter-arrivals: learned small timeout ~ 12 ms < 25 ms.
  SimTime t = 0;
  for (int i = 0; i < 50; ++i) {
    d.on_arrival(t);
    t += msec(4);
  }
  EXPECT_EQ(d.state(), MarkovDetector::State::kShort);
  EXPECT_LT(d.small_timeout(), msec(25));
  EXPECT_GE(d.small_timeout(), msec(2));
  EXPECT_NEAR(static_cast<double>(d.small_timeout()), static_cast<double>(msec(12)),
              static_cast<double>(msec(3)));
}

TEST(Markov, AdaptiveClampsToBounds) {
  MarkovParams p;
  p.adaptive = true;
  p.small_timeout = msec(25);
  p.min_small_timeout = msec(2);
  MarkovDetector d(p, msec(200));
  // Sub-0.1 ms gaps: clamp at the floor.
  SimTime t = 0;
  for (int i = 0; i < 50; ++i) {
    d.on_arrival(t);
    t += usec(100);
  }
  EXPECT_EQ(d.small_timeout(), msec(2));
}

TEST(Markov, ShortStateSurvivesTimeoutsOnlyViaArrivals) {
  // After a timeout (LONG), a single in-burst arrival flips back to SHORT.
  MarkovDetector d(fixed_params(), msec(200));
  d.on_arrival(msec(0));
  d.on_arrival(msec(5));
  d.on_timeout();
  ASSERT_EQ(d.state(), MarkovDetector::State::kLong);
  d.on_arrival(msec(40));  // 35 ms after the last arrival: cross-burst.
  EXPECT_EQ(d.state(), MarkovDetector::State::kLong);
  d.on_arrival(msec(45));  // 5 ms gap: in-burst again.
  EXPECT_EQ(d.state(), MarkovDetector::State::kShort);
}

}  // namespace
}  // namespace jqos::endpoint
