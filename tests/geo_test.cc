// Tests for the geographic substrate: distance math, the cloud-site
// catalog, host synthesis, and the path dataset's calibration against the
// distributions the paper reports.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "geo/coords.h"
#include "geo/host_synth.h"
#include "geo/path_dataset.h"
#include "geo/regions.h"

namespace jqos::geo {
namespace {

TEST(Coords, HaversineKnownDistances) {
  const GeoPoint boston{42.36, -71.06};
  const GeoPoint london{51.51, -0.13};
  const GeoPoint paris{48.86, 2.35};
  // Boston <-> London is ~5,270 km; London <-> Paris ~340 km.
  EXPECT_NEAR(haversine_km(boston, london), 5270.0, 100.0);
  EXPECT_NEAR(haversine_km(london, paris), 340.0, 25.0);
  EXPECT_DOUBLE_EQ(haversine_km(boston, boston), 0.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(haversine_km(boston, london), haversine_km(london, boston));
}

TEST(Coords, PropagationDelayScale) {
  // 200 km of fiber at inflation 1.0 is ~1 ms one way.
  EXPECT_NEAR(propagation_ms(200.0, 1.0), 1.0, 1e-9);
  // Boston -> London direct Internet: ~5270 km * 1.9 / 200 ~ 50 ms one way,
  // i.e. the familiar ~100 ms transatlantic RTT.
  const double one_way = propagation_ms(5270.0, kInternetInflation);
  EXPECT_NEAR(2.0 * one_way, 100.0, 15.0);
}

TEST(Regions, CatalogYearsFilter) {
  const auto all = cloud_sites();
  ASSERT_GT(all.size(), 10u);
  const auto y2007 = cloud_sites_as_of(2007);
  const auto y2014 = cloud_sites_as_of(2014);
  const auto y2019 = cloud_sites_as_of(2019);
  EXPECT_LT(y2007.size(), y2014.size());
  EXPECT_LT(y2014.size(), y2019.size());
  // The Fig. 7(d) milestones exist with the right years.
  auto has = [](const std::vector<CloudSite>& sites, const std::string& name) {
    for (const auto& s : sites) {
      if (s.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(y2007, "eu-west-ireland"));
  EXPECT_FALSE(has(y2007, "eu-central-frankfurt"));
  EXPECT_TRUE(has(y2014, "eu-central-frankfurt"));
  EXPECT_FALSE(has(y2014, "eu-north-stockholm"));
  EXPECT_TRUE(has(y2019, "eu-north-stockholm"));
}

TEST(Regions, NearestSiteForStockholmChangesWithYear) {
  const GeoPoint stockholm{59.33, 18.07};
  EXPECT_EQ(nearest_site(cloud_sites_as_of(2007), stockholm).name, "eu-west-ireland");
  EXPECT_EQ(nearest_site(cloud_sites_as_of(2014), stockholm).name, "eu-central-frankfurt");
  EXPECT_EQ(nearest_site(cloud_sites_as_of(2019), stockholm).name, "eu-north-stockholm");
}

TEST(Regions, NearestSiteThrowsOnEmpty) {
  EXPECT_THROW(nearest_site({}, GeoPoint{0, 0}), std::invalid_argument);
}

TEST(HostSynth, HostsClusterNearAnchors) {
  Rng rng(1);
  auto hosts = synthesize_hosts(WorldRegion::kEurope, 200, rng);
  ASSERT_EQ(hosts.size(), 200u);
  const auto& anchors = metro_anchors(WorldRegion::kEurope);
  for (const auto& h : hosts) {
    double min_km = 1e9;
    for (const auto& a : anchors) min_km = std::min(min_km, haversine_km(h.location, a));
    EXPECT_LT(min_km, 400.0);  // Within the metro scatter.
    EXPECT_GT(h.last_mile_ms, 0.0);
  }
}

TEST(HostSynth, LastMileDistributionReasonable) {
  Rng rng(2);
  auto hosts = synthesize_hosts(WorldRegion::kUsEast, 1000, rng);
  Samples lm;
  for (const auto& h : hosts) lm.add(h.last_mile_ms);
  EXPECT_NEAR(lm.median(), 3.0, 1.5);
  EXPECT_LT(lm.percentile(95), 30.0);
}

TEST(PathDataset, SegmentsAreConsistent) {
  Rng rng(3);
  PathDatasetParams p;
  p.num_paths = 200;
  auto paths = synthesize_paths(p, rng);
  ASSERT_EQ(paths.size(), 200u);
  for (const auto& path : paths) {
    EXPECT_GT(path.y_ms, 0.0);
    EXPECT_GT(path.x_ms, 0.0);
    EXPECT_GE(path.delta_s_ms, 0.0);
    EXPECT_GE(path.delta_r_ms, 0.0);
    // Host->DC delays are small relative to the transatlantic leg.
    EXPECT_LT(path.delta_s_ms, path.y_ms);
    EXPECT_LT(path.delta_r_ms, path.y_ms);
    // DC1 serves the sender region; DC2 the receiver region.
    EXPECT_EQ(path.dc1.region, WorldRegion::kUsEast);
  }
}

TEST(PathDataset, UsEuRttMatchesPaper) {
  // Section 6.2.2: "low RTT paths between the US and EU (110-130 ms)".
  Rng rng(4);
  PathDatasetParams p;
  p.num_paths = 500;
  p.bad_path_fraction = 0.0;
  auto paths = synthesize_paths(p, rng);
  Samples rtt;
  for (const auto& path : paths) rtt.add(path.direct_rtt_ms());
  EXPECT_GT(rtt.median(), 90.0);
  EXPECT_LT(rtt.median(), 160.0);
}

TEST(PathDataset, DeltaDistributionMatchesFig7c) {
  // Fig 7(c): 55% of EU receivers have delta < 10 ms; 15% above 20 ms.
  Rng rng(5);
  PathDatasetParams p;
  p.num_paths = 2000;
  auto paths = synthesize_paths(p, rng);
  Samples delta;
  for (const auto& path : paths) delta.add(path.delta_r_ms);
  const double under10 = delta.cdf_at(10.0);
  const double over20 = 1.0 - delta.cdf_at(20.0);
  EXPECT_GT(under10, 0.35);
  EXPECT_LT(under10, 0.85);
  EXPECT_LT(over20, 0.35);
}

TEST(PathDataset, BadPathsCreateLongTail) {
  Rng rng(6);
  PathDatasetParams with_bad;
  with_bad.num_paths = 1000;
  with_bad.bad_path_fraction = 0.10;
  PathDatasetParams without = with_bad;
  without.bad_path_fraction = 0.0;
  Rng rng2(6);
  auto bad_paths = synthesize_paths(with_bad, rng);
  auto clean_paths = synthesize_paths(without, rng2);
  Samples bad, clean;
  for (const auto& p : bad_paths) bad.add(p.y_ms);
  for (const auto& p : clean_paths) clean.add(p.y_ms);
  EXPECT_GT(bad.percentile(99), clean.percentile(99) + 20.0);
}

TEST(PathDataset, PlanetlabPathsSpanRegions) {
  Rng rng(7);
  auto paths = planetlab_paths(45, rng);
  ASSERT_EQ(paths.size(), 45u);
  std::set<std::string> labels;
  for (const auto& p : paths) labels.insert(region_pair_label(p));
  EXPECT_GE(labels.size(), 4u);  // US-EU, US-AS, US-OC, EU-OC, EU-AS, US-US...
}

TEST(PathDataset, RegionPairLabelCanonical) {
  Rng rng(8);
  auto paths = planetlab_paths(12, rng);
  for (const auto& p : paths) {
    const std::string label = region_pair_label(p);
    EXPECT_EQ(label.size(), 5u);
    EXPECT_EQ(label[2], '-');
  }
}

}  // namespace
}  // namespace jqos::geo
