// Randomized determinism torture test: ~50 seeded mini-scenarios sweeping
// the configuration space -- path counts, service selection, direct-send vs
// path switching, faults, failover, session churn, AQM disciplines, and
// congestion-control kinds -- each run under several (lanes, lane_threads,
// event-queue backend) configurations that MUST all produce bit-identical
// fingerprints. The point is breadth: the targeted determinism suites pin
// specific mechanisms; this one hunts for interactions nobody thought to
// pin. Every scenario is derived from a fixed master seed, so a failure
// reproduces exactly from the printed scenario index.
//
// Deliberately NOT asserted: lanes=0 vs lanes>=1 (the classic loop resolves
// same-microsecond ties by global scheduling order, lanes resolve them
// canonically), and different shard counts (barriers depend on the shard's
// local event floor). docs/DETERMINISM.md states both caveats.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "app/web.h"
#include "common/rng.h"
#include "exp/incast.h"
#include "exp/scenario.h"
#include "geo/path_dataset.h"
#include "netsim/latency_model.h"
#include "test_guards.h"
#include "workload/churn.h"

namespace jqos {
namespace {

using jqos::testing::EvqBackendGuard;

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
}

void fnv_d(std::uint64_t& h, double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  fnv(h, u);
}

// Everything observable from one WAN scenario run, order-sensitively hashed:
// per-packet outcome traces, recovery samples, service totals, fault and
// failover counters, and the simulator's event count.
std::uint64_t wan_fingerprint(exp::WanScenario& sc) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < sc.path_count(); ++i) {
    const exp::PathRuntime& rt = sc.path(i);
    fnv(h, rt.outcome.size());
    for (exp::Outcome o : rt.outcome) fnv(h, static_cast<std::uint64_t>(o));
    for (double v : rt.recovery_ms.values()) fnv_d(h, v);
    fnv(h, rt.delivered_direct);
    fnv(h, rt.recovered);
    fnv(h, rt.lost);
    fnv(h, rt.failover_events.size());
    for (const exp::FailoverEvent& ev : rt.failover_events) {
      fnv(h, static_cast<std::uint64_t>(ev.at));
      fnv(h, ev.up ? 1 : 0);
    }
  }
  const auto enc = sc.encoder_totals();
  for (std::uint64_t v : {enc.data_packets, enc.cross_batches, enc.in_batches,
                          enc.coded_sent, enc.timer_flushes}) {
    fnv(h, v);
  }
  const auto rec = sc.recovery_totals();
  for (std::uint64_t v : {rec.nacks, rec.nack_keys, rec.in_stream_served, rec.coop_ops,
                          rec.coop_success, rec.recovered_sent, rec.batches_stored}) {
    fnv(h, v);
  }
  const exp::FaultSummary fs = sc.fault_summary();
  for (std::uint64_t v : {fs.link_fault_drops, fs.dc_fault_dropped, fs.total_dc_crashes(),
                          fs.failovers, fs.reengages, fs.probes_sent,
                          fs.failover_direct_sent, fs.cloud_suppressed}) {
    fnv(h, v);
  }
  fnv(h, sc.sim().events_processed());
  return h;
}

// One randomized WAN mini-scenario drawn from the master stream.
struct WanCase {
  std::vector<geo::PathSample> paths;
  exp::WanScenarioParams params;
  SimDuration duration = sec(2);
};

WanCase draw_wan_case(std::uint64_t master, std::uint64_t index) {
  Rng rng(Rng::derive(Rng::derive(master, "wan-case"), index));
  WanCase c;
  const std::size_t n_paths = static_cast<std::size_t>(rng.uniform_int(2, 4));
  Rng geo_rng(rng.next_u64());
  c.paths = geo::planetlab_paths(n_paths, geo_rng);

  exp::WanScenarioParams& p = c.params;
  p.seed = rng.next_u64();
  p.service = rng.bernoulli(0.25) ? ServiceType::kCache : ServiceType::kCode;
  p.send_direct = !rng.bernoulli(0.15);  // 15% path switching.
  p.use_markov = rng.bernoulli(0.7);
  p.cbr.packets_per_second = rng.uniform(20.0, 80.0);
  p.cbr.payload_bytes = rng.bernoulli(0.5) ? 256 : 1024;
  p.cbr.on_duration = sec(1);
  p.cbr.mean_off = msec(500);
  p.coding.k = static_cast<std::size_t>(rng.uniform_int(3, 6));
  p.coding.cross_coded = static_cast<std::size_t>(rng.uniform_int(1, 2));
  p.coding.queue_timeout = msec(static_cast<std::int64_t>(rng.uniform_int(150, 400)));
  p.direct.bernoulli_loss = rng.uniform(0.001, 0.011);
  p.direct.gilbert.p_good_to_bad = rng.uniform(0.0005, 0.0025);
  p.direct.outage_path_fraction = rng.uniform(0.0, 1.0);
  p.direct.outage.mean_interval = sec(20);
  p.direct.outage.min_len = msec(300);
  p.direct.outage.max_len = sec(1);
  if (rng.bernoulli(0.3)) p.failover.enabled = true;
  if (rng.bernoulli(0.4)) {
    // A random fault inside the run window, aimed at a valid target.
    const SimTime start = sec(static_cast<std::int64_t>(rng.uniform_int(0, 1))) +
                          msec(static_cast<std::int64_t>(rng.uniform_int(1, 900)));
    switch (rng.uniform_int(0, 2)) {
      case 0:
        p.faults.link_down(
            "direct:" + std::to_string(rng.uniform_int(
                            0, static_cast<std::int64_t>(n_paths) - 1)),
            start, msec(400));
        break;
      case 1:
        p.faults.node_crash("dc:" + c.paths[0].dc2.name, start, msec(600));
        break;
      default:
        p.faults.link_brownout(
            "direct:" + std::to_string(rng.uniform_int(
                            0, static_cast<std::int64_t>(n_paths) - 1)),
            start, msec(500), {});
        break;
    }
  }
  return c;
}

std::uint64_t run_wan_case(const WanCase& c, std::size_t lanes, unsigned lane_threads,
                           netsim::EvqBackend backend) {
  const EvqBackendGuard evq(backend);
  exp::WanScenarioParams p = c.params;
  p.lanes = lanes;
  p.lane_threads = lane_threads;
  exp::WanScenario sc(c.paths, p);
  sc.run(c.duration);
  return wan_fingerprint(sc);
}

TEST(DeterminismFuzz, WanScenariosInvariantAcrossLanesThreadsBackends) {
  constexpr std::uint64_t kMaster = 0x4a514f53'46555a5aULL;  // "JQOSFUZZ"
  constexpr int kCases = 30;
  for (int i = 0; i < kCases; ++i) {
    SCOPED_TRACE("wan case " + std::to_string(i));
    const WanCase c = draw_wan_case(kMaster, static_cast<std::uint64_t>(i));
    const std::uint64_t ref =
        run_wan_case(c, 1, 1, netsim::EvqBackend::kHeap);
    // A rotating sub-matrix keeps runtime bounded while covering, over the
    // 30 cases, every (lanes, threads, backend) axis pairing.
    const std::size_t lanes2 = 2 + static_cast<std::size_t>(i % 3);  // 2..4
    EXPECT_EQ(ref, run_wan_case(c, lanes2, 2, netsim::EvqBackend::kHeap))
        << "lanes=" << lanes2 << " threads=2 heap";
    EXPECT_EQ(ref, run_wan_case(c, 3, 1, netsim::EvqBackend::kLadder))
        << "lanes=3 threads=1 ladder";
    EXPECT_EQ(ref, run_wan_case(c, 2, 0, netsim::EvqBackend::kLadder))
        << "lanes=2 threads=auto ladder";
  }
}

TEST(DeterminismFuzz, ChurnInvariantAcrossLanesThreadsBackends) {
  constexpr std::uint64_t kMaster = 0x434855524e'5aULL;
  for (int i = 0; i < 10; ++i) {
    SCOPED_TRACE("churn case " + std::to_string(i));
    Rng rng(Rng::derive(Rng::derive(kMaster, "churn-case"), static_cast<std::uint64_t>(i)));
    workload::ChurnConfig cfg;
    cfg.num_pairs = static_cast<std::size_t>(rng.uniform_int(2, 4));
    cfg.duration = sec(2);
    cfg.arrivals.kind = rng.bernoulli(0.5) ? workload::ArrivalKind::kPoisson
                                           : workload::ArrivalKind::kPareto;
    cfg.arrivals.sessions_per_sec = rng.uniform(10.0, 30.0);
    cfg.packets_per_second = rng.uniform(50.0, 100.0);
    cfg.max_session_packets = 60;
    cfg.scenario.seed = rng.next_u64();
    cfg.num_shards = 1;  // FIXED: sketch merge order depends on it.
    cfg.num_threads = 1;
    if (rng.bernoulli(0.3)) cfg.scenario.failover.enabled = true;
    if (rng.bernoulli(0.3)) {
      cfg.scenario.faults.link_down("direct:0", msec(700), msec(500));
    }

    auto run = [&](std::size_t lanes, unsigned threads, netsim::EvqBackend backend) {
      const EvqBackendGuard evq(backend);
      workload::ChurnConfig c = cfg;
      c.scenario.lanes = lanes;
      c.scenario.lane_threads = threads;
      return workload::run_churn(c).fingerprint();
    };
    const std::uint64_t ref = run(1, 1, netsim::EvqBackend::kHeap);
    EXPECT_EQ(ref, run(2 + static_cast<std::size_t>(i % 2), 2, netsim::EvqBackend::kHeap));
    EXPECT_EQ(ref, run(3, 0, netsim::EvqBackend::kLadder));
  }
}

TEST(DeterminismFuzz, IncastAqmInvariantAcrossBackends) {
  // AQM sweep: every queue discipline (with and without ECN) must drain the
  // fan-in identically under both event-queue backends.
  constexpr std::uint64_t kMaster = 0x494e43415354ULL;
  for (int i = 0; i < 6; ++i) {
    SCOPED_TRACE("incast case " + std::to_string(i));
    Rng rng(Rng::derive(kMaster, static_cast<std::uint64_t>(i)));
    exp::IncastParams p;
    p.senders = static_cast<std::size_t>(rng.uniform_int(4, 12));
    p.packets_per_sender = static_cast<std::size_t>(rng.uniform_int(16, 48));
    p.epochs = 2;
    p.ecn = rng.bernoulli(0.5);
    p.seed = rng.next_u64();
    switch (i % 3) {
      case 0: p.qdisc.kind = netsim::QdiscKind::kTailDrop; break;
      case 1: p.qdisc.kind = netsim::QdiscKind::kRed; break;
      default: p.qdisc.kind = netsim::QdiscKind::kCoDel; break;
    }

    auto fp = [&](netsim::EvqBackend backend) {
      exp::IncastScenario sc(p, backend);
      const exp::IncastResult r = sc.run();
      std::uint64_t h = 14695981039346656037ULL;
      for (std::uint64_t v : {r.sent, r.delivered, r.ce_marked,
                              r.bottleneck.delivered_packets, r.bottleneck.queue_drops,
                              r.bottleneck.ecn_marked, r.events_processed,
                              static_cast<std::uint64_t>(r.end_time)}) {
        fnv(h, v);
      }
      for (double d : r.epoch_drain_ms) fnv_d(h, d);
      return h;
    };
    EXPECT_EQ(fp(netsim::EvqBackend::kHeap), fp(netsim::EvqBackend::kLadder));
  }
}

TEST(DeterminismFuzz, TcpCcWorkloadsInvariantAcrossBackends) {
  // Congestion-control sweep: each CC kind's full FCT trace over a lossy
  // path must be bit-identical under both backends.
  for (int i = 0; i < 4; ++i) {
    SCOPED_TRACE("cc case " + std::to_string(i));
    Rng rng(Rng::derive(0x54435043ULL, static_cast<std::uint64_t>(i)));
    transport::TcpParams tcp;
    tcp.cc = static_cast<transport::CcKind>(i % 3);
    const std::uint64_t seed = rng.next_u64();

    auto fp = [&](netsim::EvqBackend backend) {
      const EvqBackendGuard evq(backend);
      netsim::Simulator sim;
      netsim::Network net(sim);
      Rng loss_rng(seed);
      endpoint::Sender server(net);
      endpoint::ReceiverConfig rc;
      rc.rtt_estimate = msec(80);
      rc.recovery_give_up = msec(100);
      endpoint::Receiver client(net, rc);
      net.add_link(server.id(), client.id(), netsim::make_fixed_latency(msec(40)),
                   netsim::make_bernoulli_loss(0.01, loss_rng.fork("fwd")));
      net.add_link(client.id(), server.id(), netsim::make_fixed_latency(msec(40)),
                   netsim::make_bernoulli_loss(0.002, loss_rng.fork("rev")));
      endpoint::SessionManager sessions(std::make_shared<services::FlowRegistry>());
      endpoint::RegisterRequest req;
      req.force_service = ServiceType::kNone;
      req.delays.y_ms = 40.0;
      app::WebWorkloadParams wp;
      wp.requests = 8;
      wp.response_bytes = 20 * 1000;
      wp.tcp = tcp;
      const app::WebResult r = app::run_web_workload(net, server, client, sessions, req, wp);
      std::uint64_t h = 14695981039346656037ULL;
      fnv(h, r.completed);
      fnv(h, r.acks);
      fnv(h, r.server.retransmits);
      fnv(h, r.server.timeouts);
      fnv(h, r.server.fast_retransmits);
      for (double d : r.fct_ms.values()) fnv_d(h, d);
      return h;
    };
    EXPECT_EQ(fp(netsim::EvqBackend::kHeap), fp(netsim::EvqBackend::kLadder));
  }
}

}  // namespace
}  // namespace jqos
