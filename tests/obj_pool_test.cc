// Object-pool subsystem tests: ObjPool checkout/return RAII semantics,
// byte-bounded trim limits, high-water accounting, cross-thread (cross-lane)
// return safety (ASan/TSan validate the Core lifetime rules), PacketPool
// recycling behind the packet.h factories, the JQOS_OBJ_POOL env gate, and
// the load-bearing determinism property: WAN-scenario and churn fingerprints
// are bit-identical with pools on vs off, across event-queue backends and
// lane counts. Pool state must never feed a simulation value.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/obj_pool.h"
#include "common/packet.h"
#include "common/packet_pool.h"
#include "common/rng.h"
#include "exp/scenario.h"
#include "geo/path_dataset.h"
#include "netsim/event_queue.h"
#include "test_guards.h"
#include "workload/churn.h"

namespace jqos {
namespace {

using common::ObjPool;
using jqos::testing::EnvVarGuard;
using jqos::testing::EvqBackendGuard;

using BytePool = ObjPool<std::vector<std::uint8_t>>;

// --- ObjPool<T> semantics ------------------------------------------------

TEST(ObjPoolTest, RoundTripReusesStorage) {
  BytePool pool;
  std::uint8_t* buf = nullptr;
  {
    auto h = pool.acquire();
    ASSERT_TRUE(h);
    h->assign(100, 0xab);
    buf = h->data();
  }
  EXPECT_EQ(pool.pooled_count(), 1u);
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.fresh(), 1u);
  EXPECT_EQ(pool.reused(), 0u);

  auto h2 = pool.acquire();
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_EQ(pool.fresh(), 1u);
  // The object comes back scrubbed (empty) but with its buffer retained.
  EXPECT_TRUE(h2->empty());
  EXPECT_GE(h2->capacity(), 100u);
  EXPECT_EQ(h2->data(), buf);
}

TEST(ObjPoolTest, HandleMoveAndExplicitRelease) {
  BytePool pool;
  auto a = pool.acquire();
  auto b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty.
  EXPECT_TRUE(b);
  EXPECT_EQ(pool.outstanding(), 1u);

  BytePool::Handle c;
  c = std::move(b);
  EXPECT_TRUE(c);
  EXPECT_EQ(pool.outstanding(), 1u);

  c.release();
  EXPECT_FALSE(c);
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.pooled_count(), 1u);
  c.release();  // Idempotent.
  EXPECT_EQ(pool.pooled_count(), 1u);
}

TEST(ObjPoolTest, HighWaterTracksMaxSimultaneousCheckouts) {
  BytePool pool;
  {
    std::vector<BytePool::Handle> held;
    for (int i = 0; i < 3; ++i) held.push_back(pool.acquire());
    EXPECT_EQ(pool.outstanding(), 3u);
    EXPECT_EQ(pool.high_water(), 3u);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
  // High water is a ratchet: it survives the returns.
  EXPECT_EQ(pool.high_water(), 3u);
  { auto h = pool.acquire(); }
  EXPECT_EQ(pool.high_water(), 3u);
}

TEST(ObjPoolTest, OversizedObjectsAreFreedNotPooled) {
  BytePool::Limits limits;
  limits.max_retained_bytes = 1u << 20;
  limits.max_object_bytes = 512;
  BytePool pool(limits);
  {
    auto h = pool.acquire();
    h->reserve(4096);  // Outgrows max_object_bytes: must not fatten the pool.
  }
  EXPECT_EQ(pool.pooled_count(), 0u);
  EXPECT_EQ(pool.pooled_bytes(), 0u);
  {
    auto h = pool.acquire();
    h->reserve(64);  // Small buffers still pool.
  }
  EXPECT_EQ(pool.pooled_count(), 1u);
}

TEST(ObjPoolTest, RetainedBytesBoundedByTotalBudgetNotCount) {
  BytePool::Limits limits;
  limits.max_retained_bytes = 2048;
  limits.max_object_bytes = 2048;
  BytePool pool(limits);
  {
    std::vector<BytePool::Handle> held;
    for (int i = 0; i < 4; ++i) {
      held.push_back(pool.acquire());
      held.back()->reserve(700);
    }
  }
  // Each return retains ~700 bytes of capacity; the byte budget admits two
  // of the four, and the rest are freed (a count bound would keep all 4).
  EXPECT_LT(pool.pooled_count(), 4u);
  EXPECT_LE(pool.pooled_bytes(), 2048u);
  EXPECT_GT(pool.pooled_bytes(), 0u);
}

TEST(ObjPoolTest, TrimFreesEverythingPooled) {
  BytePool pool;
  for (int i = 0; i < 5; ++i) {
    auto h = pool.acquire();
    h->reserve(256);
    // Cycle one at a time so each return lands on the freelist.
  }
  EXPECT_GT(pool.pooled_bytes(), 0u);
  pool.trim();
  EXPECT_EQ(pool.pooled_count(), 0u);
  EXPECT_EQ(pool.pooled_bytes(), 0u);
  // The pool keeps working after a trim.
  auto h = pool.acquire();
  EXPECT_TRUE(h);
}

TEST(ObjPoolTest, CrossThreadReleaseIsSafe) {
  // A lane may hand a pooled object to another lane; the return must take
  // the OWNER's freelist lock from the releasing thread. ASan/TSan validate.
  BytePool pool;
  std::vector<BytePool::Handle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(pool.acquire());
    handles.back()->assign(64, static_cast<std::uint8_t>(i));
  }
  std::vector<std::thread> threads;
  for (auto& h : handles) {
    threads.emplace_back([moved = std::move(h)]() mutable { moved.release(); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.high_water(), 8u);
}

TEST(ObjPoolTest, HandleOutlivesPoolFacade) {
  // The freelist Core is refcounted: a handle released after the pool facade
  // is gone frees cleanly instead of dangling (the churn engine erases
  // sessions whose outcome buffers may still be in flight).
  BytePool::Handle survivor;
  {
    BytePool pool;
    survivor = pool.acquire();
    survivor->assign(32, 0xcd);
  }
  EXPECT_TRUE(survivor);
  survivor.release();  // Must not crash; ASan validates the free.
}

// --- PacketPool ----------------------------------------------------------

TEST(PacketPoolTest, EnvGateReadAtConstruction) {
  {
    const EnvVarGuard off("JQOS_OBJ_POOL", std::string("0"));
    EXPECT_FALSE(PacketPool::env_enabled());
    PacketPool pool;
    EXPECT_FALSE(pool.enabled());
    // Disabled pool is a passthrough: acquire still yields usable packets.
    auto p = pool.acquire();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->type, PacketType::kData);
  }
  {
    const EnvVarGuard on("JQOS_OBJ_POOL", std::string("1"));
    EXPECT_TRUE(PacketPool(PacketPool::env_enabled()).enabled());
  }
  {
    const EnvVarGuard unset("JQOS_OBJ_POOL", std::nullopt);
    EXPECT_TRUE(PacketPool::env_enabled());  // Pools default ON.
  }
}

TEST(PacketPoolTest, AcquireRecyclesStorageAndControlBlock) {
  PacketPool pool(/*enabled=*/true);
  {
    auto p = pool.acquire();
    p->payload.assign(512, 0xee);
    pool.engage_meta(*p).covered.push_back(PacketKey{7, 9});
  }
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.fresh(), 1u);

  auto p2 = pool.acquire();
  EXPECT_EQ(pool.reused(), 1u);
  // Scrubbed: default header, empty payload, meta disengaged -- but with
  // capacity retained so refilling allocates nothing.
  EXPECT_EQ(p2->type, PacketType::kData);
  EXPECT_EQ(p2->flow, 0u);
  EXPECT_FALSE(p2->meta.has_value());
  EXPECT_TRUE(p2->payload.empty());
  EXPECT_GE(p2->payload.capacity(), 512u);
  // engage_meta hands back salvaged covered-key capacity.
  CodedMeta& m = pool.engage_meta(*p2);
  EXPECT_TRUE(m.covered.empty());
  EXPECT_GE(m.covered.capacity(), 1u);
}

TEST(PacketPoolTest, AcquireCopyIsDeep) {
  PacketPool pool(/*enabled=*/true);
  Packet src;
  src.type = PacketType::kCrossCoded;
  src.service = ServiceType::kCode;
  src.flow = 42;
  src.seq = 1000;
  src.src = 3;
  src.dst = 4;
  src.final_dst = 5;
  src.sent_at = 123456;
  src.ecn_capable = true;
  src.payload = {1, 2, 3, 4, 5};
  src.meta.emplace();
  src.meta->batch_id = 77;
  src.meta->k = 4;
  src.meta->r = 2;
  src.meta->covered = {PacketKey{42, 998}, PacketKey{42, 999}};

  auto copy = pool.acquire_copy(src);
  EXPECT_EQ(copy->type, src.type);
  EXPECT_EQ(copy->service, src.service);
  EXPECT_EQ(copy->flow, src.flow);
  EXPECT_EQ(copy->seq, src.seq);
  EXPECT_EQ(copy->src, src.src);
  EXPECT_EQ(copy->dst, src.dst);
  EXPECT_EQ(copy->final_dst, src.final_dst);
  EXPECT_EQ(copy->sent_at, src.sent_at);
  EXPECT_EQ(copy->ecn_capable, src.ecn_capable);
  EXPECT_EQ(copy->payload, src.payload);
  ASSERT_TRUE(copy->meta.has_value());
  EXPECT_EQ(*copy->meta, *src.meta);
  // Deep: mutating the copy leaves the source alone.
  copy->payload[0] = 99;
  EXPECT_EQ(src.payload[0], 1);
}

TEST(PacketPoolTest, PacketsOutliveThePool) {
  // The deleter and control-block allocator hold the Core alive, so a packet
  // that outlives its pool (shard teardown with in-flight packets) recycles
  // into a still-live freelist and the storage dies with the last reference.
  PacketPtr survivor;
  {
    PacketPool pool(/*enabled=*/true);
    auto p = pool.acquire();
    p->payload.assign(64, 0x5a);
    survivor = std::move(p);
  }
  EXPECT_EQ(survivor->payload.size(), 64u);
  survivor.reset();  // Must not crash; ASan validates.
}

TEST(PacketPoolTest, FactoriesProduceIdenticalPacketsPooledOrNot) {
  PacketPool pool(/*enabled=*/true);
  const PacketPtr pooled = make_data_packet(9, 55, 1, 2, 777, 300, &pool);
  const PacketPtr plain = make_data_packet(9, 55, 1, 2, 777, 300, nullptr);
  EXPECT_EQ(pooled->serialize(), plain->serialize());
  EXPECT_EQ(pooled->wire_size(), plain->wire_size());
}

// --- Determinism: pools must never perturb simulation values -------------

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
}

void fnv_d(std::uint64_t& h, double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  fnv(h, u);
}

std::uint64_t wan_fingerprint(exp::WanScenario& sc) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < sc.path_count(); ++i) {
    const exp::PathRuntime& rt = sc.path(i);
    fnv(h, rt.outcome.size());
    for (exp::Outcome o : rt.outcome) fnv(h, static_cast<std::uint64_t>(o));
    for (double v : rt.recovery_ms.values()) fnv_d(h, v);
    fnv(h, rt.delivered_direct);
    fnv(h, rt.recovered);
    fnv(h, rt.lost);
  }
  const auto enc = sc.encoder_totals();
  for (std::uint64_t v : {enc.data_packets, enc.cross_batches, enc.in_batches,
                          enc.coded_sent, enc.timer_flushes}) {
    fnv(h, v);
  }
  const auto rec = sc.recovery_totals();
  for (std::uint64_t v : {rec.nacks, rec.nack_keys, rec.in_stream_served,
                          rec.coop_ops, rec.coop_success, rec.recovered_sent,
                          rec.batches_stored}) {
    fnv(h, v);
  }
  fnv(h, sc.sim().events_processed());
  return h;
}

// One lossy coded-path scenario; the pool env guard wraps CONSTRUCTION
// because every PacketPool reads JQOS_OBJ_POOL when it is built.
std::uint64_t wan_fp(bool pooled, std::size_t lanes, netsim::EvqBackend backend) {
  const EvqBackendGuard evq(backend);
  const EnvVarGuard pool_env("JQOS_OBJ_POOL", std::string(pooled ? "1" : "0"));
  Rng geo_rng(0x706f6f6cULL);
  const auto paths = geo::planetlab_paths(3, geo_rng);
  exp::WanScenarioParams p;
  p.seed = 0xdecafbadULL;
  p.lanes = lanes;
  p.direct.bernoulli_loss = 0.02;  // Enough loss to exercise NACK/recovery.
  p.cbr.packets_per_second = 60.0;
  exp::WanScenario sc(paths, p);
  sc.run(sec(2));
  return wan_fingerprint(sc);
}

TEST(ObjPoolDeterminism, WanFingerprintIdenticalPoolsOnOff) {
  for (const auto backend : {netsim::EvqBackend::kHeap, netsim::EvqBackend::kLadder}) {
    for (const std::size_t lanes : {std::size_t{0}, std::size_t{2}}) {
      SCOPED_TRACE(std::string("backend=") + netsim::evq_backend_name(backend) +
                   " lanes=" + std::to_string(lanes));
      EXPECT_EQ(wan_fp(/*pooled=*/true, lanes, backend),
                wan_fp(/*pooled=*/false, lanes, backend));
    }
  }
}

std::uint64_t churn_fp(bool pooled, std::size_t lanes, netsim::EvqBackend backend) {
  const EvqBackendGuard evq(backend);
  const EnvVarGuard pool_env("JQOS_OBJ_POOL", std::string(pooled ? "1" : "0"));
  workload::ChurnConfig cfg;
  cfg.num_pairs = 3;
  cfg.duration = sec(2);
  cfg.arrivals.sessions_per_sec = 20.0;
  cfg.packets_per_second = 80.0;
  cfg.max_session_packets = 50;
  cfg.scenario.seed = 0xc0ffeeULL;
  cfg.scenario.lanes = lanes;
  cfg.num_shards = 1;
  cfg.num_threads = 1;
  return workload::run_churn(cfg).fingerprint();
}

TEST(ObjPoolDeterminism, ChurnFingerprintIdenticalPoolsOnOff) {
  for (const auto backend : {netsim::EvqBackend::kHeap, netsim::EvqBackend::kLadder}) {
    for (const std::size_t lanes : {std::size_t{0}, std::size_t{2}}) {
      SCOPED_TRACE(std::string("backend=") + netsim::evq_backend_name(backend) +
                   " lanes=" + std::to_string(lanes));
      EXPECT_EQ(churn_fp(/*pooled=*/true, lanes, backend),
                churn_fp(/*pooled=*/false, lanes, backend));
    }
  }
}

}  // namespace
}  // namespace jqos
