// Fault-injection layer and graceful degradation: FaultPlan scheduling,
// FaultInjector link/node faults, plan validation at shard boundaries,
// crash-epoch guards on recovery timers, loss-episode classification
// (Figure 8(b)), and the churn-level acceptance contract -- a DC2 crash
// covering the whole run completes >= 90% of sessions via direct-path
// failover where the same workload without failover logic completes almost
// none, bit-identically across thread counts and event-queue backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "exp/scenario.h"
#include "fec/coded_batch.h"
#include "geo/path_dataset.h"
#include "netsim/event_queue.h"
#include "netsim/faults.h"
#include "netsim/loss_model.h"
#include "netsim/network.h"
#include "overlay/datacenter.h"
#include "services/coding/recovery_dc.h"
#include "workload/churn.h"
#include "test_guards.h"

namespace jqos {
namespace {

// ------------------------------------------------------------- plan windows

TEST(FaultPlan, LinkFlapsMaterializeTheOutageProcess) {
  // link_flaps must schedule exactly the windows outage_windows() derives
  // for the same (seed, target) stream -- the bridge that lets a wall-clock
  // outage process and a fault-layer flap schedule agree packet-for-packet.
  netsim::OutageParams params;
  params.mean_interval = sec(20);
  params.min_len = msec(500);
  params.max_len = sec(2);
  const SimTime horizon = sec(120);

  netsim::FaultPlan plan(42);
  plan.link_flaps("direct:0", params, horizon);
  const auto from_plan = plan.windows_for("direct:0");
  const auto expected =
      netsim::outage_windows(params, Rng(Rng::derive(42, "direct:0")), horizon);

  ASSERT_EQ(from_plan.size(), expected.size());
  ASSERT_GT(from_plan.size(), 2u);  // The horizon spans several outages.
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(from_plan[i].start, expected[i].start);
    EXPECT_EQ(from_plan[i].end, expected[i].end);
  }
}

TEST(FaultPlan, OutageWindowsMatchRealizedDrops) {
  // outage_windows(params, rng) must predict make_outage_over(params, rng)
  // exactly: probing the live model on a fine grid drops precisely inside
  // the precomputed windows.
  netsim::OutageParams params;
  params.mean_interval = sec(15);
  params.min_len = msec(400);
  params.max_len = sec(1);
  const SimTime horizon = sec(90);

  const auto windows = netsim::outage_windows(params, Rng(99), horizon);
  ASSERT_GT(windows.size(), 1u);
  auto model = netsim::make_outage_over(netsim::make_no_loss(), params, Rng(99));

  std::size_t drops = 0;
  for (SimTime t = 0; t < horizon; t += msec(1)) {
    const bool in_window = std::any_of(
        windows.begin(), windows.end(),
        [t](const netsim::OutageWindow& w) { return t >= w.start && t < w.end; });
    EXPECT_EQ(model->should_drop(t), in_window) << "at t=" << t;
    drops += in_window;
  }
  EXPECT_GT(drops, 0u);
}

// --------------------------------------------------------- injector + links

// Minimal sink recording arrival times.
struct Sink final : netsim::Node {
  explicit Sink(netsim::Network& net) : id_(net.allocate_id()) { net.attach(*this); }
  NodeId id() const override { return id_; }
  void handle_packet(const PacketPtr&) override { arrivals.push_back(now_fn()); }
  NodeId id_;
  std::function<SimTime()> now_fn;
  std::vector<SimTime> arrivals;
};

struct LinkFaultFixture {
  netsim::Simulator sim;
  netsim::Network net{sim};
  Sink src{net};
  Sink dst{net};
  netsim::Link* link = nullptr;
  netsim::FaultInjector injector{sim};

  explicit LinkFaultFixture(SimDuration latency = msec(10)) {
    dst.now_fn = [this] { return sim.now(); };
    link = &net.add_link(src.id(), dst.id(), netsim::make_fixed_latency(latency),
                         netsim::make_no_loss());
    injector.bind_link("direct:0", link);
  }

  void send_at(SimTime t) {
    sim.after(t, [this] {
      auto pkt = std::make_shared<Packet>();
      pkt->src = src.id();
      pkt->dst = dst.id();
      pkt->payload.assign(100, 1);
      net.send(src.id(), pkt);
    });
  }
};

TEST(FaultInjector, LinkDownDropsAreCountedSeparately) {
  LinkFaultFixture f;
  netsim::FaultPlan plan;
  plan.link_down("direct:0", sec(1), sec(1));  // Down over [1s, 2s).
  f.injector.arm(plan);
  f.send_at(msec(500));
  f.send_at(msec(1500));
  f.send_at(msec(2500));
  f.sim.run();

  EXPECT_EQ(f.dst.arrivals.size(), 2u);
  const auto& st = f.link->stats();
  EXPECT_EQ(st.fault_drops, 1u);
  EXPECT_EQ(st.dropped_packets, 0u);  // Not conflated with loss-model drops.
  EXPECT_EQ(st.delivered_packets, 2u);
  EXPECT_EQ(f.injector.stats().link_downs, 1u);
}

TEST(FaultInjector, BrownoutAddsLatencyThenClears) {
  LinkFaultFixture f(msec(10));
  netsim::FaultPlan plan;
  plan.link_brownout("direct:0", sec(1), sec(1),
                     netsim::BrownoutProfile{0.0, msec(40)});
  f.injector.arm(plan);
  f.send_at(msec(500));   // Before: plain 10 ms.
  f.send_at(msec(1500));  // During: 10 + 40 ms.
  f.send_at(msec(2500));  // After: back to 10 ms.
  f.sim.run();

  ASSERT_EQ(f.dst.arrivals.size(), 3u);
  EXPECT_EQ(f.dst.arrivals[0], msec(510));
  EXPECT_EQ(f.dst.arrivals[1], msec(1550));
  EXPECT_EQ(f.dst.arrivals[2], msec(2510));
  EXPECT_EQ(f.link->stats().fault_drops, 0u);
  EXPECT_EQ(f.injector.stats().brownouts, 1u);
}

TEST(FaultInjector, BrownoutLossIsCountedAsFaultDrops) {
  LinkFaultFixture f;
  netsim::FaultPlan plan;
  plan.link_brownout("direct:0", sec(1), sec(1),
                     netsim::BrownoutProfile{1.0, 0});  // Certain drop.
  f.injector.arm(plan);
  f.send_at(msec(500));
  f.send_at(msec(1500));
  f.sim.run();

  EXPECT_EQ(f.dst.arrivals.size(), 1u);
  EXPECT_EQ(f.link->stats().fault_drops, 1u);
  EXPECT_EQ(f.link->stats().dropped_packets, 0u);
}

TEST(FaultInjector, SkipsUnboundTargetsAndCountsThem) {
  // Shard safety: arming a plan whose targets live in another shard is a
  // counted no-op, so every shard can arm the full plan.
  netsim::Simulator sim;
  netsim::FaultInjector injector(sim);
  netsim::FaultPlan plan;
  plan.link_down("direct:7", sec(1), sec(1));
  plan.node_crash("dc:ELSEWHERE", sec(1), sec(1));
  injector.arm(plan);
  EXPECT_EQ(injector.stats().skipped_unbound, 2u);
  EXPECT_EQ(injector.stats().link_downs, 0u);
  EXPECT_EQ(injector.stats().node_crashes, 0u);
  sim.run();  // Nothing scheduled.
}

// ---------------------------------------------------------------- DC crash

TEST(FaultInjector, NodeCrashBlackholesThenRestartsCold) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  overlay::DataCenter dc(net, 1, "FRA");
  netsim::FaultInjector injector(sim);
  injector.bind_node("dc:FRA", &dc);
  netsim::FaultPlan plan;
  plan.node_crash("dc:FRA", sec(1), sec(1));
  injector.arm(plan);

  std::vector<std::pair<SimTime, bool>> observed;  // (time, down) samples.
  auto probe = [&](SimTime t) {
    sim.after(t, [&] {
      if (dc.down()) {
        auto pkt = std::make_shared<Packet>();
        pkt->dst = dc.id();
        dc.handle_packet(pkt);  // Black-holed, counted.
      }
      observed.emplace_back(sim.now(), dc.down());
    });
  };
  probe(msec(500));
  probe(msec(1500));
  probe(msec(2500));
  sim.run();

  ASSERT_EQ(observed.size(), 3u);
  EXPECT_FALSE(observed[0].second);
  EXPECT_TRUE(observed[1].second);
  EXPECT_FALSE(observed[2].second);
  EXPECT_EQ(dc.crashes(), 1u);
  EXPECT_EQ(dc.fault_dropped_packets(), 1u);
  EXPECT_EQ(injector.stats().node_crashes, 1u);
}

// ---------------------------------------------------------- plan validation

TEST(FaultPlanValidation, AcceptsInGroupTargetsRejectsEverythingElse) {
  Rng rng(3);
  const auto paths = geo::planetlab_paths(4, rng);

  netsim::FaultPlan good;
  good.node_crash("dc:" + paths[0].dc2.name, sec(1), sec(1));
  good.link_down("link:" + paths[0].dc1.name + ">" + paths[0].dc2.name, sec(1), sec(1));
  good.link_down("direct:3", sec(1), sec(1));
  EXPECT_NO_THROW(exp::validate_fault_plan(good, paths));

  auto rejects = [&paths](const std::string& target) {
    netsim::FaultPlan p;
    p.link_down(target, sec(1), sec(1));
    EXPECT_THROW(exp::validate_fault_plan(p, paths), std::invalid_argument)
        << "target not rejected: " << target;
  };
  rejects("dc:NO_SUCH_SITE");
  rejects("direct:99");      // Out of range.
  rejects("direct:zero");    // Malformed index.
  rejects("bogus:thing");    // Unknown namespace.
  rejects("link:" + paths[0].dc1.name);  // Malformed: no '>'.

  // A link between sites of different interaction groups crosses a shard
  // boundary; find a cross pairing that is not itself a group and reject it.
  std::set<std::pair<std::string, std::string>> groups;
  for (const auto& p : paths) {
    groups.insert(std::minmax(p.dc1.name, p.dc2.name));
  }
  for (const auto& a : paths) {
    for (const auto& b : paths) {
      if (groups.count(std::minmax(a.dc1.name, b.dc2.name))) continue;
      rejects("link:" + a.dc1.name + ">" + b.dc2.name);
      return;
    }
  }
  GTEST_SKIP() << "every site pairing is a group; no cross-group link exists";
}

// ---------------------------------------------- recovery epoch guard (ASan)

struct RecoveryCrashFixture {
  netsim::Simulator sim;
  netsim::Network net{sim};
  overlay::DataCenter dc2{net, 2, "dc2"};
  services::FlowRegistryPtr registry = std::make_shared<services::FlowRegistry>();
  std::shared_ptr<services::RecoveryService> recovery;
  std::vector<std::unique_ptr<Sink>> peers;

  RecoveryCrashFixture() {
    services::RecoveryParams params;
    params.coop_deadline = msec(50);
    recovery = std::make_shared<services::RecoveryService>(dc2, params, registry);
    dc2.install(recovery);
  }

  // One stored cross-coded batch over k flows, one peer receiver each.
  void make_batch(std::size_t k, std::uint32_t batch_id) {
    std::vector<PacketPtr> data_pkts;
    for (FlowId f = 1; f <= k; ++f) {
      auto peer = std::make_unique<Sink>(net);
      peer->now_fn = [this] { return sim.now(); };
      net.add_link(dc2.id(), peer->id(), netsim::make_fixed_latency(msec(5)),
                   netsim::make_no_loss());
      net.add_link(peer->id(), dc2.id(), netsim::make_fixed_latency(msec(5)),
                   netsim::make_no_loss());
      auto p = std::make_shared<Packet>();
      p->flow = f;
      p->seq = 1;
      p->payload.assign(48, static_cast<std::uint8_t>(f));
      registry->register_flow(f, services::FlowInfo{dc2.id(), peer->id()});
      peers.push_back(std::move(peer));
      data_pkts.push_back(std::move(p));
    }
    for (const auto& c : fec::encode_batch(data_pkts, 1, PacketType::kCrossCoded,
                                           batch_id, 1, dc2.id(), 0)) {
      auto copy = std::make_shared<Packet>(*c);
      copy->service = ServiceType::kCode;
      dc2.handle_packet(copy);
    }
  }

  void nack(FlowId flow) {
    NackInfo info;
    info.missing = {1};
    auto pkt = std::make_shared<Packet>();
    pkt->type = PacketType::kNack;
    pkt->service = ServiceType::kCode;
    pkt->flow = flow;
    pkt->seq = 1;
    pkt->src = peers[flow - 1]->id();
    pkt->dst = dc2.id();
    pkt->payload = info.serialize();
    dc2.handle_packet(pkt);
  }
};

TEST(RecoveryFault, CrashMidCoopOpLeavesNoDanglingTimer) {
  // The ASan regression: a cooperative-recovery deadline armed before the
  // crash must not touch wiped state when the wipe happens mid-op. The run
  // itself is the assertion -- under ASan a use-after-free aborts.
  RecoveryCrashFixture f;
  f.make_batch(3, 100);
  f.sim.after(msec(10), [&f] { f.nack(1); });  // Opens a coop op, deadline 60 ms.
  f.sim.after(msec(30), [&f] { f.dc2.fault_crash(); });
  f.sim.after(msec(200), [&f] { f.dc2.fault_restart(); });
  f.sim.run();

  EXPECT_EQ(f.recovery->stats().crash_wipes, 1u);
  EXPECT_EQ(f.recovery->epoch(), 1u);
}

TEST(RecoveryFault, StaleEpochTimerIsCountedNoOp) {
  // Belt (cancel) and suspenders (epoch guard): even a deadline that
  // somehow survives cancellation must see the epoch mismatch and bail.
  RecoveryCrashFixture f;
  f.make_batch(3, 100);
  f.sim.after(msec(10), [&f] { f.nack(1); });
  f.sim.after(msec(30), [&f] { f.dc2.fault_crash(); });
  f.sim.run();

  const std::uint64_t before = f.recovery->stats().stale_timers;
  f.recovery->debug_fire_deadline(100, 0);  // Pre-crash epoch.
  EXPECT_EQ(f.recovery->stats().stale_timers, before + 1);
  f.recovery->debug_fire_deadline(100, f.recovery->epoch());  // Fresh epoch,
  EXPECT_EQ(f.recovery->stats().stale_timers, before + 1);    // unknown batch: safe.
}

// ------------------------------------------- loss episodes vs Figure 8(b)

TEST(LossEpisodes, GilbertElliottPlusOutagesMatchFigureClasses) {
  // Figure 8(b) classifies loss episodes into Random (1 packet),
  // Multi-Packet (2-14) and Outage (> 14, lasting 1-3 s). Layering the
  // outage process over Gilbert-Elliott must reproduce all three classes
  // with the right shape: singles dominate, bursts decay within the
  // multi-packet band, and >14 episodes come only from outage windows
  // (hundreds of packets at 1 ms spacing), never from GE bursts.
  netsim::GilbertElliottParams ge;  // Paper-ish defaults.
  netsim::OutageParams outages;
  outages.mean_interval = sec(60);
  outages.min_len = sec(1);
  outages.max_len = sec(3);
  auto model = netsim::make_outage_over(
      netsim::make_gilbert_elliott(ge, Rng(11)), outages, Rng(12));

  std::size_t random = 0, multi = 0, outage = 0, run = 0;
  std::size_t short_multi = 0, long_multi = 0;  // Lengths 2-4 vs 10-14.
  std::vector<std::size_t> outage_lens;
  auto close_run = [&] {
    if (run == 0) return;
    if (run == 1) {
      ++random;
    } else if (run <= 14) {
      ++multi;
      if (run <= 4) ++short_multi;
      if (run >= 10) ++long_multi;
    } else {
      ++outage;
      outage_lens.push_back(run);
    }
    run = 0;
  };
  for (SimTime t = 0; t < sec(600); t += msec(1)) {
    if (model->should_drop(t)) {
      ++run;
    } else {
      close_run();
    }
  }
  close_run();

  EXPECT_GT(random, 50u);
  EXPECT_GT(multi, 50u);
  EXPECT_GT(short_multi, long_multi);  // Burst lengths decay geometrically.
  // ~10 outages expected (600 s / 60 s mean); allow a wide Poisson band.
  EXPECT_GE(outage, 3u);
  EXPECT_LE(outage, 25u);
  for (const std::size_t len : outage_lens) {
    EXPECT_GE(len, 500u) << "an >14 episode short of an outage window";
    EXPECT_LE(len, 7000u);  // A couple of overlapping 3 s outages at most.
  }
}

// ----------------------------------------------------- churn acceptance

// The DC2-crash acceptance workload: path-switched sessions (kForward, no
// direct copies) with every recovery DC crashed from 200 ms to far beyond
// the end of the run.
workload::ChurnConfig crashed_churn(bool failover) {
  workload::ChurnConfig cfg;
  cfg.num_pairs = 4;
  cfg.duration = sec(12);
  cfg.arrivals.kind = workload::ArrivalKind::kPoisson;
  cfg.arrivals.sessions_per_sec = 40.0;
  cfg.mix = workload::AppMix::kWebTransfer;
  cfg.packets_per_second = 100.0;
  cfg.payload_bytes = 1472;
  cfg.max_session_packets = 120;
  cfg.scenario.seed = 77;
  cfg.num_shards = 2;  // FIXED: sketch merge order depends on it.
  cfg.num_threads = 1;
  cfg.scenario.service = ServiceType::kForward;
  cfg.scenario.send_direct = false;
  cfg.scenario.failover.enabled = failover;
  cfg.scenario.failover.data_silence = msec(300);

  // The churn geography is a pure function of the seed; derive it the same
  // way to learn the DC2 site names the plan must crash.
  Rng geo_rng(Rng::derive(cfg.scenario.seed, "churn-paths"));
  std::set<std::string> sites;
  for (const auto& p : geo::planetlab_paths(cfg.num_pairs, geo_rng)) {
    sites.insert(p.dc2.name);
  }
  netsim::FaultPlan plan(cfg.scenario.seed);
  for (const std::string& s : sites) plan.node_crash("dc:" + s, msec(200), sec(600));
  // A flapping direct link exercises the link-fault path in the same run.
  netsim::OutageParams flaps;
  flaps.mean_interval = sec(6);
  flaps.min_len = msec(200);
  flaps.max_len = msec(800);
  plan.link_flaps("direct:0", flaps, cfg.duration);
  cfg.scenario.faults = plan;
  return cfg;
}

TEST(FaultChurn, Dc2CrashFailsOverToDirectAndSucceeds) {
  // The ISSUE's acceptance criterion: with every DC2 down for essentially
  // the whole run, >= 90% of sessions still deliver >= 90% of their packets
  // -- purely via overlay-death detection and direct-path failover --
  // where the identical workload without failover logic completes almost
  // nothing.
  const workload::ChurnResult with = workload::run_churn(crashed_churn(true));
  ASSERT_GT(with.totals.sessions_completed, 300u);
  EXPECT_EQ(with.totals.leaked_flows, 0u);
  EXPECT_GE(static_cast<double>(with.totals.sessions_succeeded),
            0.90 * static_cast<double>(with.totals.sessions_completed));
  EXPECT_GE(with.faults.failovers, 4u);  // Every path declared death.
  EXPECT_GT(with.faults.failover_direct_sent, 0u);
  EXPECT_GT(with.faults.probes_sent, 0u);
  EXPECT_GT(with.faults.link_fault_drops, 0u);  // The flapping direct link.
  // One crash per distinct DC2 site (sites may be shared across paths).
  Rng geo_rng(Rng::derive(77, "churn-paths"));
  std::set<std::string> sites;
  for (const auto& p : geo::planetlab_paths(4, geo_rng)) sites.insert(p.dc2.name);
  EXPECT_EQ(with.faults.total_dc_crashes(), sites.size());
  // Every path's first transition is DOWN, within ~1.5 s of the crash.
  std::set<std::size_t> seen;
  for (const auto& ev : with.failover_events) {
    if (!seen.insert(ev.path).second) continue;
    EXPECT_FALSE(ev.up);
    EXPECT_LE(ev.at, msec(1700));
  }
  EXPECT_EQ(seen.size(), 4u);

  const workload::ChurnResult without = workload::run_churn(crashed_churn(false));
  EXPECT_EQ(without.totals.sessions_completed, with.totals.sessions_completed);
  EXPECT_LE(static_cast<double>(without.totals.sessions_succeeded),
            0.05 * static_cast<double>(without.totals.sessions_completed));
  EXPECT_EQ(without.faults.failovers, 0u);
}

TEST(FaultChurn, FingerprintBitIdenticalAcrossThreadCounts) {
  // The determinism pin from the ISSUE: an identical FaultPlan + seed is
  // bit-identical across JQOS_SIM_THREADS in {1, 3, auto} at fixed
  // num_shards -- fault events, failover transitions and all.
  workload::ChurnConfig cfg = crashed_churn(true);
  cfg.num_threads = 1;
  const std::uint64_t fp1 = workload::run_churn(cfg).fingerprint();
  cfg.num_threads = 3;
  const std::uint64_t fp3 = workload::run_churn(cfg).fingerprint();
  cfg.num_threads = 0;  // JQOS_SIM_THREADS / hardware default.
  const std::uint64_t fp_auto = workload::run_churn(cfg).fingerprint();
  EXPECT_EQ(fp1, fp3);
  EXPECT_EQ(fp1, fp_auto);
}

TEST(FaultChurn, FingerprintBitIdenticalAcrossEventQueueBackends) {
  std::uint64_t fp_ladder = 0, fp_heap = 0;
  {
    const jqos::testing::EvqBackendGuard guard(netsim::EvqBackend::kLadder);
    fp_ladder = workload::run_churn(crashed_churn(true)).fingerprint();
  }
  {
    const jqos::testing::EvqBackendGuard guard(netsim::EvqBackend::kHeap);
    fp_heap = workload::run_churn(crashed_churn(true)).fingerprint();
  }
  EXPECT_EQ(fp_ladder, fp_heap);
}

}  // namespace
}  // namespace jqos
