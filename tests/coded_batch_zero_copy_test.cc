// Differential coverage for the zero-copy coding pipeline (fec::BatchEncoder
// / ShardArena / the arena decode_batch overload): the legacy
// allocation-per-shard encode_batch is the behavioral reference, and every
// test here proves the zero-copy path byte-identical to it — payloads,
// metadata, and field conventions alike. The arena-reuse tests run the same
// encoder across growing/shrinking batch shapes so the ASan CI job exercises
// recycled-arena framing for stale-byte and out-of-bounds bugs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fec/coded_batch.h"
#include "fec/gf256_simd.h"
#include "fec/reed_solomon.h"
#include "test_guards.h"

namespace jqos::fec {
namespace {

PacketPtr make_pkt(FlowId flow, SeqNo seq, std::vector<std::uint8_t> payload) {
  auto p = std::make_shared<Packet>();
  p->flow = flow;
  p->seq = seq;
  p->payload = std::move(payload);
  return p;
}

std::vector<PacketPtr> random_batch(std::size_t k, std::size_t min_payload,
                                    std::size_t max_payload, Rng& rng) {
  std::vector<PacketPtr> pkts;
  pkts.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t len = static_cast<std::size_t>(
        rng.uniform_int(static_cast<int>(min_payload), static_cast<int>(max_payload)));
    std::vector<std::uint8_t> payload(len);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    pkts.push_back(make_pkt(static_cast<FlowId>(i + 1), static_cast<SeqNo>(1000 + i),
                            std::move(payload)));
  }
  return pkts;
}

void expect_identical(const std::vector<PacketPtr>& legacy,
                      const std::vector<PacketPtr>& zero_copy) {
  ASSERT_EQ(legacy.size(), zero_copy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    const Packet& a = *legacy[i];
    const Packet& b = *zero_copy[i];
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.flow, b.flow);
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.sent_at, b.sent_at);
    ASSERT_TRUE(a.meta.has_value());
    ASSERT_TRUE(b.meta.has_value());
    EXPECT_EQ(*a.meta, *b.meta);
    EXPECT_EQ(a.payload, b.payload) << "coded payload differs at index " << i;
  }
}

TEST(BatchEncoderDifferential, RandomShapesMatchLegacyByteForByte) {
  Rng rng(0x5eed);
  BatchEncoder enc;
  std::vector<PacketPtr> out;
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 30));
    const std::size_t r = static_cast<std::size_t>(rng.uniform_int(0, 5));
    auto pkts = random_batch(k, 0, 700, rng);
    const auto batch_id = static_cast<std::uint32_t>(iter);
    auto legacy = encode_batch(pkts, r, PacketType::kCrossCoded, batch_id, 7, 9,
                               static_cast<SimTime>(iter) * 10);
    out.clear();
    enc.encode_into(pkts, r, PacketType::kCrossCoded, batch_id, 7, 9,
                    static_cast<SimTime>(iter) * 10, out);
    expect_identical(legacy, out);
  }
}

TEST(BatchEncoderDifferential, SingleBytePayloadEdge) {
  Rng rng(11);
  BatchEncoder enc;
  // Every payload exactly one byte (shard = prefix + 1), plus a mix with an
  // empty payload — the smallest frames the pipeline can see.
  auto tiny = random_batch(5, 1, 1, rng);
  auto legacy = encode_batch(tiny, 2, PacketType::kInCoded, 1, 1, 2, 0);
  std::vector<PacketPtr> out;
  enc.encode_into(tiny, 2, PacketType::kInCoded, 1, 1, 2, 0, out);
  expect_identical(legacy, out);

  auto mixed = random_batch(4, 0, 1, rng);
  legacy = encode_batch(mixed, 1, PacketType::kCrossCoded, 2, 1, 2, 0);
  out.clear();
  enc.encode_into(mixed, 1, PacketType::kCrossCoded, 2, 1, 2, 0, out);
  expect_identical(legacy, out);
}

TEST(BatchEncoderDifferential, MaxSizePacketEdge) {
  // The u16 length prefix caps payloads at 65535 bytes; the zero-copy path
  // must frame that exactly, including the pad of the smaller members.
  Rng rng(12);
  std::vector<PacketPtr> pkts;
  std::vector<std::uint8_t> big(65535);
  for (auto& b : big) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  pkts.push_back(make_pkt(1, 1, std::move(big)));
  pkts.push_back(make_pkt(2, 2, {0xaa, 0xbb}));
  pkts.push_back(make_pkt(3, 3, {}));
  auto legacy = encode_batch(pkts, 2, PacketType::kCrossCoded, 77, 3, 4, 5);
  BatchEncoder enc;
  std::vector<PacketPtr> out;
  enc.encode_into(pkts, 2, PacketType::kCrossCoded, 77, 3, 4, 5, out);
  expect_identical(legacy, out);
}

TEST(BatchEncoder, ArenaIsRecycledAcrossShapes) {
  Rng rng(13);
  BatchEncoder enc;
  std::vector<PacketPtr> out;
  // Grow to the high-water shape first.
  auto big = random_batch(20, 1400, 1500, rng);
  out.clear();
  enc.encode_into(big, 3, PacketType::kCrossCoded, 1, 1, 2, 0, out);
  const std::size_t high_water = enc.arena().capacity_bytes();
  EXPECT_GT(high_water, 0u);

  // Smaller and equal shapes must reuse the allocation (capacity pinned),
  // and recycled shards must still pad with zeros, not the previous batch's
  // bytes — checked by the differential comparison.
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 20));
    auto pkts = random_batch(k, 0, 1500, rng);
    auto legacy = encode_batch(pkts, 2, PacketType::kCrossCoded,
                               static_cast<std::uint32_t>(100 + iter), 1, 2, 0);
    out.clear();
    enc.encode_into(pkts, 2, PacketType::kCrossCoded,
                    static_cast<std::uint32_t>(100 + iter), 1, 2, 0, out);
    expect_identical(legacy, out);
    EXPECT_EQ(enc.arena().capacity_bytes(), high_water)
        << "arena reallocated for a batch no larger than the high-water shape";
  }
}

TEST(BatchEncoder, AppendsWithoutClearingOut) {
  Rng rng(14);
  BatchEncoder enc;
  auto pkts = random_batch(3, 10, 20, rng);
  std::vector<PacketPtr> out;
  enc.encode_into(pkts, 2, PacketType::kCrossCoded, 1, 1, 2, 0, out);
  ASSERT_EQ(out.size(), 2u);
  enc.encode_into(pkts, 1, PacketType::kCrossCoded, 2, 1, 2, 0, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2]->meta->batch_id, 2u);
}

TEST(BatchEncoder, RejectsSameShapesAsLegacy) {
  BatchEncoder enc;
  std::vector<PacketPtr> out;
  EXPECT_THROW(enc.encode_into({}, 2, PacketType::kCrossCoded, 1, 1, 2, 0, out),
               std::invalid_argument);
  Rng rng(15);
  auto too_big = random_batch(254, 1, 4, rng);
  EXPECT_THROW(enc.encode_into(too_big, 2, PacketType::kCrossCoded, 1, 1, 2, 0, out),
               std::invalid_argument);

  // A payload past the u16 length prefix must be refused, not silently
  // truncated into a corrupt frame — on both paths.
  std::vector<PacketPtr> oversized = {make_pkt(1, 1, std::vector<std::uint8_t>(65536))};
  EXPECT_THROW(encode_batch(oversized, 1, PacketType::kCrossCoded, 1, 1, 2, 0),
               std::invalid_argument);
  EXPECT_THROW(enc.encode_into(oversized, 1, PacketType::kCrossCoded, 1, 1, 2, 0, out),
               std::invalid_argument);
}

TEST(ShardArena, ShardsAreAlignedAndStrided) {
  ShardArena arena;
  arena.layout(7, 514);
  EXPECT_EQ(arena.shard_len(), 514u);
  EXPECT_EQ(arena.stride() % ShardArena::kAlignment, 0u);
  EXPECT_GE(arena.stride(), arena.shard_len());
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arena.shard(i)) % ShardArena::kAlignment,
              0u);
    EXPECT_EQ(arena.shard(i), arena.data() + i * arena.stride());
  }
}

// ----------------------------- decode side --------------------------------

TEST(DecodeBatchArena, MatchesTransientOverloadUnderRandomErasures) {
  Rng rng(0xdec0);
  BatchEncoder enc;
  ShardArena decode_arena;
  std::vector<PacketPtr> coded;
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(2, 12));
    const std::size_t r = static_cast<std::size_t>(rng.uniform_int(1, 3));
    auto pkts = random_batch(k, 0, 300, rng);
    coded.clear();
    enc.encode_into(pkts, r, PacketType::kCrossCoded, static_cast<std::uint32_t>(iter),
                    1, 2, 0, coded);
    const CodedMeta& meta = *coded[0]->meta;

    // Drop up to r data packets at random positions.
    const std::size_t losses =
        static_cast<std::size_t>(rng.uniform_int(1, static_cast<int>(std::min(r, k))));
    std::vector<bool> lost(k, false);
    for (std::size_t dropped = 0; dropped < losses;) {
      const auto pos = static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(k) - 1));
      if (lost[pos]) continue;
      lost[pos] = true;
      ++dropped;
    }
    std::vector<std::pair<std::size_t, std::span<const std::uint8_t>>> present;
    for (std::size_t i = 0; i < k; ++i) {
      if (!lost[i]) present.emplace_back(i, std::span<const std::uint8_t>(pkts[i]->payload));
    }

    auto legacy = decode_batch(meta, present, coded);
    auto arena_rec = decode_batch(decode_arena, meta, present, coded);
    ASSERT_TRUE(legacy.has_value());
    ASSERT_TRUE(arena_rec.has_value());
    ASSERT_EQ(legacy->size(), arena_rec->size());
    for (std::size_t i = 0; i < legacy->size(); ++i) {
      EXPECT_EQ((*legacy)[i].position, (*arena_rec)[i].position);
      EXPECT_EQ((*legacy)[i].key, (*arena_rec)[i].key);
      EXPECT_EQ((*legacy)[i].payload, (*arena_rec)[i].payload);
      EXPECT_EQ((*arena_rec)[i].payload, pkts[(*arena_rec)[i].position]->payload);
    }
  }
}

TEST(DecodeBatchArena, FailsExactlyLikeTransientOverload) {
  Rng rng(16);
  BatchEncoder enc;
  ShardArena decode_arena;
  auto pkts = random_batch(6, 10, 50, rng);
  std::vector<PacketPtr> coded;
  enc.encode_into(pkts, 1, PacketType::kCrossCoded, 9, 1, 2, 0, coded);
  const CodedMeta& meta = *coded[0]->meta;
  // Two missing, one coded symbol: both overloads must refuse.
  std::vector<std::pair<std::size_t, std::span<const std::uint8_t>>> present;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    if (i == 0 || i == 3) continue;
    present.emplace_back(i, std::span<const std::uint8_t>(pkts[i]->payload));
  }
  EXPECT_FALSE(decode_batch(meta, present, coded).has_value());
  EXPECT_FALSE(decode_batch(decode_arena, meta, present, coded).has_value());
}

// ------------------------- ReedSolomon zero-copy --------------------------

TEST(ReedSolomonStrided, StridedEncodeMatchesPointerArray) {
  Rng rng(17);
  for (const std::size_t stride_pad : {0u, 13u, 64u}) {
    const std::size_t k = 5, r = 3, len = 129;
    const std::size_t stride = len + stride_pad;
    const ReedSolomon rs(k, r);
    std::vector<std::uint8_t> arena(k * stride);
    for (auto& b : arena) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));

    std::vector<const std::uint8_t*> ptrs;
    for (std::size_t i = 0; i < k; ++i) ptrs.push_back(arena.data() + i * stride);
    std::vector<std::vector<std::uint8_t>> expected(r, std::vector<std::uint8_t>(len));
    std::vector<std::uint8_t*> expected_ptrs;
    for (auto& p : expected) expected_ptrs.push_back(p.data());
    rs.encode_into(ptrs.data(), len, expected_ptrs.data());

    std::vector<std::vector<std::uint8_t>> got(r, std::vector<std::uint8_t>(len));
    std::vector<std::uint8_t*> got_ptrs;
    for (auto& p : got) got_ptrs.push_back(p.data());
    rs.encode_into(arena.data(), stride, len, got_ptrs.data());
    EXPECT_EQ(got, expected);
  }
  const ReedSolomon rs(2, 1);
  std::uint8_t buf[8] = {};
  std::uint8_t* parity[1] = {buf};
  EXPECT_THROW(rs.encode_into(buf, 2, 4, parity), std::invalid_argument);
}

// The fused row kernel (gf_rs_row) vs the per-source gf_mul_buf/gf_addmul
// composition, on every backend available on this machine: random
// coefficient vectors salted with 0s and 1s, lengths that exercise the
// 32/16-byte SIMD steps and the scalar tail, misaligned sources, and guard
// bytes after dst to catch overwrites.
TEST(GfRsRow, MatchesPerSourceCompositionOnEveryBackend) {
  const jqos::testing::GfBackendGuard guard;
  Rng rng(0xf00d);
  for (fec::GfBackend backend : gf_available_backends()) {
    ASSERT_TRUE(gf_set_backend(backend));
    for (int iter = 0; iter < 60; ++iter) {
      const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 12));
      const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 200));
      const std::size_t misalign = static_cast<std::size_t>(rng.uniform_int(0, 3));
      std::vector<std::vector<std::uint8_t>> srcs(
          k, std::vector<std::uint8_t>(n + misalign));
      std::vector<const std::uint8_t*> ptrs;
      std::vector<Gf> coeffs;
      for (auto& s : srcs) {
        for (auto& b : s) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        ptrs.push_back(s.data() + misalign);
        // Bias toward the 0 / 1 special values the wrapper and tables must
        // both get right.
        const int roll = rng.uniform_int(0, 9);
        coeffs.push_back(roll == 0 ? 0
                         : roll == 1 ? 1
                                     : static_cast<Gf>(rng.uniform_int(0, 255)));
      }

      std::vector<std::uint8_t> expected(n + 8, 0xcd);  // Guard tail.
      for (std::size_t j = 0; j < k; ++j) {
        if (j == 0) {
          gf_mul_buf(expected.data(), ptrs[0], coeffs[0], n);
        } else {
          gf_addmul(expected.data(), ptrs[j], coeffs[j], n);
        }
      }
      std::vector<std::uint8_t> got(n + 8, 0xcd);
      gf_rs_row(got.data(), ptrs.data(), coeffs.data(), k, n);
      EXPECT_EQ(got, expected) << "backend=" << gf_backend_name(backend) << " k=" << k
                               << " n=" << n << " misalign=" << misalign;
    }
  }
}

// The strided overload must agree with the pointer-array overload when the
// pointers describe the same strided layout.
TEST(GfRsRow, StridedOverloadMatchesPointerOverload) {
  Rng rng(0xf00e);
  const std::size_t k = 7, n = 97, stride = 128;
  std::vector<std::uint8_t> arena(k * stride);
  for (auto& b : arena) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  std::vector<const std::uint8_t*> ptrs;
  std::vector<Gf> coeffs;
  for (std::size_t j = 0; j < k; ++j) {
    ptrs.push_back(arena.data() + j * stride);
    coeffs.push_back(static_cast<Gf>(rng.uniform_int(0, 255)));
  }
  std::vector<std::uint8_t> a(n), b(n);
  gf_rs_row(a.data(), ptrs.data(), coeffs.data(), k, n);
  gf_rs_row(b.data(), arena.data(), stride, coeffs.data(), k, n);
  EXPECT_EQ(a, b);

  // All-zero coefficients must zero dst (m == 0 path).
  std::vector<Gf> zeros(k, 0);
  std::vector<std::uint8_t> z(n, 0xff);
  gf_rs_row(z.data(), ptrs.data(), zeros.data(), k, n);
  EXPECT_EQ(z, std::vector<std::uint8_t>(n, 0));
}

TEST(ReedSolomonDecodeInto, TargetedRowsMatchFullDecode) {
  Rng rng(18);
  const std::size_t k = 6, r = 3, len = 200;
  const ReedSolomon rs(k, r);
  std::vector<std::vector<std::uint8_t>> data(k, std::vector<std::uint8_t>(len));
  for (auto& s : data) {
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  std::vector<std::span<const std::uint8_t>> spans(data.begin(), data.end());
  auto parity = rs.encode(spans);

  // Survivors: data 0, 2, 5 + all three parity shards. Missing: 1, 3, 4.
  std::vector<std::pair<std::size_t, const std::uint8_t*>> shards = {
      {0, data[0].data()}, {2, data[2].data()},   {5, data[5].data()},
      {6, parity[0].data()}, {7, parity[1].data()}, {8, parity[2].data()}};
  const std::vector<std::size_t> targets = {1, 3, 4, 0};  // Incl. one direct row.
  std::vector<std::vector<std::uint8_t>> out(targets.size(),
                                             std::vector<std::uint8_t>(len));
  std::vector<std::uint8_t*> out_ptrs;
  for (auto& o : out) out_ptrs.push_back(o.data());
  ASSERT_TRUE(rs.decode_into(shards, len, targets, out_ptrs.data()));
  for (std::size_t t = 0; t < targets.size(); ++t) {
    EXPECT_EQ(out[t], data[targets[t]]) << "target " << targets[t];
  }

  // Fewer than k shards: refuse, like decode().
  std::vector<std::pair<std::size_t, const std::uint8_t*>> few(shards.begin(),
                                                               shards.begin() + 3);
  EXPECT_FALSE(rs.decode_into(few, len, targets, out_ptrs.data()));
}

}  // namespace
}  // namespace jqos::fec
