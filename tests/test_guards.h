// RAII guards for the process-global knobs tests are allowed to touch.
//
// The test binaries run under `ctest --schedule-random -j`: any test that
// flips a process-global default -- the event-queue backend override, the
// GF(256) kernel backend, or an environment variable a resolver reads --
// MUST restore it on every exit path, or an unrelated test scheduled after
// it inherits the setting and fails (or worse, silently tests the wrong
// configuration). These guards make the save/restore automatic; tests
// should never call the raw setters directly.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>

#include "fec/gf256_simd.h"
#include "netsim/event_queue.h"

namespace jqos::testing {

// Forces the process-default EventQueue backend for the guard's lifetime,
// then clears the override so later constructions resolve JQOS_EVQ_BACKEND
// (the CI forced-backend matrices) or the built-in default again.
class EvqBackendGuard {
 public:
  explicit EvqBackendGuard(netsim::EvqBackend backend) {
    netsim::evq_set_default_backend(backend);
  }
  ~EvqBackendGuard() { netsim::evq_clear_default_backend(); }
  EvqBackendGuard(const EvqBackendGuard&) = delete;
  EvqBackendGuard& operator=(const EvqBackendGuard&) = delete;
};

// Pins the GF(256) kernel backend, restoring whatever backend was active
// before (the SIMD tests iterate backends; a mid-test failure must not leave
// the scalar kernel installed for the throughput-sensitive tests after it).
class GfBackendGuard {
 public:
  GfBackendGuard() : saved_(fec::gf_backend()) {}
  explicit GfBackendGuard(fec::GfBackend backend) : saved_(fec::gf_backend()) {
    fec::gf_set_backend(backend);
  }
  ~GfBackendGuard() { fec::gf_set_backend(saved_); }
  GfBackendGuard(const GfBackendGuard&) = delete;
  GfBackendGuard& operator=(const GfBackendGuard&) = delete;

 private:
  fec::GfBackend saved_;
};

// Sets (or unsets, via nullopt) one environment variable, restoring the
// prior value on destruction. Used by the knob-hardening tests to exercise
// JQOS_SIM_THREADS / JQOS_SIM_LANES / JQOS_EVQ_BACKEND parsing without
// leaking the value into tests scheduled after them.
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, std::optional<std::string> value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    apply(value);
  }
  ~EnvVarGuard() { apply(saved_); }
  EnvVarGuard(const EnvVarGuard&) = delete;
  EnvVarGuard& operator=(const EnvVarGuard&) = delete;

 private:
  void apply(const std::optional<std::string>& v) {
    if (v) {
      ::setenv(name_.c_str(), v->c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

  std::string name_;
  std::optional<std::string> saved_;
};

}  // namespace jqos::testing
