// Tests for the DC2 recovery engine: in-stream serving, cooperative
// recovery (success, stragglers, deadline failure), NACK-before-coded
// checking, tail NACKs, and batch TTL sweeping.
#include <gtest/gtest.h>

#include <map>

#include "fec/coded_batch.h"
#include "netsim/network.h"
#include "overlay/datacenter.h"
#include "services/coding/recovery_dc.h"

namespace jqos::services {
namespace {

// A scripted peer receiver: stores its own packets and answers cooperative
// requests unless told to act as a straggler.
struct Peer final : netsim::Node {
  Peer(netsim::Network& net, overlay::DataCenter& dc) : net_(net), id_(net.allocate_id()) {
    net.attach(*this);
    net.add_link(dc.id(), id_, netsim::make_fixed_latency(msec(5)),
                 netsim::make_no_loss());
    net.add_link(id_, dc.id(), netsim::make_fixed_latency(msec(5)),
                 netsim::make_no_loss());
  }

  NodeId id() const override { return id_; }

  void handle_packet(const PacketPtr& pkt) override {
    received.push_back(pkt);
    if (pkt->type == PacketType::kCoopRequest && !straggler) {
      auto it = data.find(pkt->seq);
      if (it == data.end()) return;
      auto resp = std::make_shared<Packet>();
      resp->type = PacketType::kCoopResponse;
      resp->service = ServiceType::kCode;
      resp->flow = pkt->flow;
      resp->seq = pkt->seq;
      resp->src = id_;
      resp->dst = pkt->src;
      resp->meta = pkt->meta;
      resp->payload = it->second;
      net_.send(id_, resp);
    }
    if (pkt->type == PacketType::kNackCheck && confirm_checks) {
      NackInfo info;
      info.missing = {pkt->seq};
      auto confirm = std::make_shared<Packet>();
      confirm->type = PacketType::kNackConfirm;
      confirm->service = ServiceType::kCode;
      confirm->flow = pkt->flow;
      confirm->seq = pkt->seq;
      confirm->src = id_;
      confirm->dst = pkt->src;
      confirm->payload = info.serialize();
      net_.send(id_, confirm);
    }
  }

  std::vector<PacketPtr> recovered() const {
    std::vector<PacketPtr> out;
    for (const auto& p : received) {
      if (p->type == PacketType::kRecovered) out.push_back(p);
    }
    return out;
  }

  netsim::Network& net_;
  NodeId id_;
  std::map<SeqNo, std::vector<std::uint8_t>> data;
  bool straggler = false;
  bool confirm_checks = true;
  std::vector<PacketPtr> received;
};

struct Fixture {
  netsim::Simulator sim;
  netsim::Network net{sim};
  overlay::DataCenter dc2{net, 2, "dc2"};
  FlowRegistryPtr registry = std::make_shared<FlowRegistry>();
  std::shared_ptr<RecoveryService> recovery;
  std::vector<std::unique_ptr<Peer>> peers;

  explicit Fixture(RecoveryParams params = {}) {
    recovery = std::make_shared<RecoveryService>(dc2, params, registry);
    dc2.install(recovery);
  }

  // Creates k flows (1..k), one peer receiver each, with one data packet
  // (seq `seq`) per flow; returns the cross-coded packets for the batch.
  std::vector<PacketPtr> make_cross_batch(std::size_t k, SeqNo seq, std::size_t r = 2,
                                          std::uint32_t batch_id = 100) {
    std::vector<PacketPtr> data_pkts;
    for (FlowId f = 1; f <= k; ++f) {
      auto peer = std::make_unique<Peer>(net, dc2);
      auto p = std::make_shared<Packet>();
      p->flow = f;
      p->seq = seq;
      p->payload.assign(48, static_cast<std::uint8_t>(f * 7 + seq));
      peer->data[seq] = p->payload;
      registry->register_flow(f, FlowInfo{dc2.id(), peer->id()});
      peers.push_back(std::move(peer));
      data_pkts.push_back(std::move(p));
    }
    return fec::encode_batch(data_pkts, r, PacketType::kCrossCoded, batch_id, 1,
                             dc2.id(), 0);
  }

  void deliver_coded(const std::vector<PacketPtr>& coded) {
    for (const auto& c : coded) {
      auto copy = std::make_shared<Packet>(*c);
      copy->service = ServiceType::kCode;
      dc2.handle_packet(copy);
    }
  }

  void send_nack(FlowId flow, std::vector<SeqNo> missing, NodeId from, bool tail = false,
                 SeqNo expected = 0) {
    NackInfo info;
    info.tail = tail;
    info.expected = expected;
    info.missing = std::move(missing);
    auto nack = std::make_shared<Packet>();
    nack->type = PacketType::kNack;
    nack->service = ServiceType::kCode;
    nack->flow = flow;
    nack->src = from;
    nack->dst = dc2.id();
    nack->payload = info.serialize();
    dc2.handle_packet(nack);
  }
};

TEST(Recovery, CooperativeRecoverySingleLoss) {
  Fixture f;
  auto coded = f.make_cross_batch(6, 0);
  f.deliver_coded(coded);

  // Peer 0 (flow 1) lost its packet and NACKs.
  const auto want = f.peers[0]->data[0];
  f.peers[0]->data.clear();  // It does not have its own packet.
  f.send_nack(1, {0}, f.peers[0]->id());
  f.sim.run_until(sec(1));

  auto rec = f.peers[0]->recovered();
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec[0]->flow, 1u);
  EXPECT_EQ(rec[0]->seq, 0u);
  EXPECT_EQ(rec[0]->payload, want);
  EXPECT_EQ(f.recovery->stats().coop_success, 1u);
  // 5 peers were solicited (everyone but the requester).
  EXPECT_EQ(f.recovery->stats().coop_requests_sent, 5u);
}

TEST(Recovery, ToleratesStragglersUpToCodedBudget) {
  Fixture f;
  auto coded = f.make_cross_batch(6, 0, /*r=*/2);
  f.deliver_coded(coded);
  f.peers[0]->data.clear();
  f.peers[3]->straggler = true;  // One peer never answers; r=2 absorbs it.
  f.send_nack(1, {0}, f.peers[0]->id());
  f.sim.run_until(sec(1));
  EXPECT_EQ(f.peers[0]->recovered().size(), 1u);
  EXPECT_EQ(f.recovery->stats().coop_success, 1u);
}

TEST(Recovery, DeadlineFailureWhenTooManyStragglers) {
  RecoveryParams params;
  params.coop_deadline = msec(100);
  Fixture f(params);
  auto coded = f.make_cross_batch(6, 0, /*r=*/1);
  f.deliver_coded(coded);
  f.peers[0]->data.clear();
  f.peers[2]->straggler = true;
  f.peers[4]->straggler = true;  // r=1 cannot absorb two stragglers + 1 loss.
  f.send_nack(1, {0}, f.peers[0]->id());
  f.sim.run_until(sec(2));
  EXPECT_TRUE(f.peers[0]->recovered().empty());
  EXPECT_EQ(f.recovery->stats().coop_deadline_failures, 1u);
}

TEST(Recovery, InStreamServedForSingleLoss) {
  Fixture f;
  // In-stream batch: one flow, 5 packets.
  auto peer = std::make_unique<Peer>(f.net, f.dc2);
  f.registry->register_flow(9, FlowInfo{f.dc2.id(), peer->id()});
  std::vector<PacketPtr> data;
  for (SeqNo s = 0; s < 5; ++s) {
    auto p = std::make_shared<Packet>();
    p->flow = 9;
    p->seq = s;
    p->payload.assign(32, static_cast<std::uint8_t>(s));
    data.push_back(p);
  }
  auto coded = fec::encode_batch(data, 1, PacketType::kInCoded, 500, 1, f.dc2.id(), 0);
  f.deliver_coded(coded);

  f.send_nack(9, {2}, peer->id());
  f.sim.run_until(sec(1));
  // The receiver gets the in-stream coded packet to decode locally.
  bool got_in_coded = false;
  for (const auto& p : peer->received) {
    if (p->type == PacketType::kInCoded) got_in_coded = true;
  }
  EXPECT_TRUE(got_in_coded);
  EXPECT_EQ(f.recovery->stats().in_stream_served, 1u);
  EXPECT_EQ(f.recovery->stats().coop_ops, 0u);
}

TEST(Recovery, MultiLossNackPrefersCooperative) {
  Fixture f;
  auto coded0 = f.make_cross_batch(4, 0, 2, 100);
  f.deliver_coded(coded0);
  // Same flows, second packet each, second batch.
  std::vector<PacketPtr> data_pkts;
  for (FlowId flow = 1; flow <= 4; ++flow) {
    auto p = std::make_shared<Packet>();
    p->flow = flow;
    p->seq = 1;
    p->payload.assign(48, static_cast<std::uint8_t>(flow + 100));
    f.peers[flow - 1]->data[1] = p->payload;
    data_pkts.push_back(p);
  }
  auto coded1 =
      fec::encode_batch(data_pkts, 2, PacketType::kCrossCoded, 101, 1, f.dc2.id(), 0);
  f.deliver_coded(coded1);

  // Peer 0 lost both of its packets (burst) and NACKs them together.
  f.peers[0]->data.clear();
  f.send_nack(1, {0, 1}, f.peers[0]->id());
  f.sim.run_until(sec(1));

  EXPECT_EQ(f.peers[0]->recovered().size(), 2u);
  EXPECT_EQ(f.recovery->stats().coop_ops, 2u);  // One per batch.
}

TEST(Recovery, NackBeforeCodedTriggersCheckThenRecovers) {
  Fixture f;
  auto coded = f.make_cross_batch(6, 0);
  // NACK arrives BEFORE any coded packet (outran it on the short path).
  f.peers[0]->data.clear();
  f.send_nack(1, {0}, f.peers[0]->id());
  f.sim.run_until(msec(50));
  EXPECT_EQ(f.recovery->stats().nack_checks_sent, 1u);
  EXPECT_TRUE(f.peers[0]->recovered().empty());

  // Coded packets arrive later; the confirmed pending NACK fires recovery.
  f.deliver_coded(coded);
  f.sim.run_until(sec(2));
  EXPECT_EQ(f.peers[0]->recovered().size(), 1u);
}

TEST(Recovery, SpuriousNackNeverRecoversWithoutConfirm) {
  Fixture f;
  auto coded = f.make_cross_batch(6, 0);
  f.peers[0]->confirm_checks = false;  // Receiver knows nothing is missing.
  f.send_nack(1, {7}, f.peers[0]->id());  // Seq 7 was never coded.
  f.sim.run_until(sec(1));
  f.deliver_coded(coded);
  f.sim.run_until(sec(2));
  EXPECT_TRUE(f.peers[0]->recovered().empty());
}

TEST(Recovery, TailNackRecoversForwardRun) {
  Fixture f;
  // Three consecutive batches covering seqs 0, 1, 2 of each flow.
  for (SeqNo s = 0; s < 3; ++s) {
    if (s == 0) {
      f.deliver_coded(f.make_cross_batch(4, 0, 2, 200));
    } else {
      std::vector<PacketPtr> data_pkts;
      for (FlowId flow = 1; flow <= 4; ++flow) {
        auto p = std::make_shared<Packet>();
        p->flow = flow;
        p->seq = s;
        p->payload.assign(48, static_cast<std::uint8_t>(flow * 3 + s));
        f.peers[flow - 1]->data[s] = p->payload;
        data_pkts.push_back(p);
      }
      f.deliver_coded(fec::encode_batch(data_pkts, 2, PacketType::kCrossCoded, 200 + s, 1,
                                        f.dc2.id(), 0));
    }
  }
  // Flow 1's receiver went dark at seq 0 (outage): tail NACK from 0. The
  // tail scan only trusts batches old enough that direct copies must have
  // landed, so advance past that age first.
  f.sim.run_until(msec(200));
  f.peers[0]->data.clear();
  f.send_nack(1, {}, f.peers[0]->id(), /*tail=*/true, /*expected=*/0);
  f.sim.run_until(sec(2));
  EXPECT_EQ(f.peers[0]->recovered().size(), 3u);
}

TEST(Recovery, BatchTtlSweepsOldBatches) {
  RecoveryParams params;
  params.batch_ttl = sec(5);
  Fixture f(params);
  auto coded = f.make_cross_batch(4, 0);
  f.deliver_coded(coded);
  EXPECT_EQ(f.recovery->batches_held(), 1u);
  // Heartbeat packets keep the sweep running past the TTL.
  for (int i = 1; i <= 8; ++i) {
    f.sim.run_until(sec(i));
    auto hb = std::make_shared<Packet>();
    hb->type = PacketType::kControl;
    f.recovery->handle(f.dc2, hb);
  }
  EXPECT_EQ(f.recovery->batches_held(), 0u);
  EXPECT_EQ(f.recovery->stats().batches_expired, 1u);
}

TEST(Recovery, StragglerResponseAfterCompletionCounted) {
  Fixture f;
  auto coded = f.make_cross_batch(6, 0);
  f.deliver_coded(coded);
  f.peers[0]->data.clear();
  f.send_nack(1, {0}, f.peers[0]->id());
  f.sim.run_until(sec(1));
  ASSERT_EQ(f.recovery->stats().coop_success, 1u);
  // The op closed as soon as enough symbols arrived; peers answering after
  // that already count as stragglers. Record the baseline.
  const std::uint64_t baseline = f.recovery->stats().straggler_responses;
  // A late duplicate response arrives after the op closed.
  auto resp = std::make_shared<Packet>();
  resp->type = PacketType::kCoopResponse;
  resp->service = ServiceType::kCode;
  resp->flow = 2;
  resp->seq = 0;
  resp->src = f.peers[1]->id();
  resp->dst = f.dc2.id();
  CodedMeta m;
  m.batch_id = 100;
  resp->meta = m;
  resp->payload = f.peers[1]->data[0];
  f.dc2.handle_packet(resp);
  EXPECT_EQ(f.recovery->stats().straggler_responses, baseline + 1);
}

}  // namespace
}  // namespace jqos::services
