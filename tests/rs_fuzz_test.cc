// Seeded-RNG fuzz of the Reed-Solomon erasure path: encode -> random erasure
// pattern -> decode, with k, r, survivor count, and packet size all
// randomized, under a randomly chosen GF(256) kernel backend per iteration.
//
// Invariants pinned per round-trip:
//   - whenever >= k shards survive (any mix of data and parity, in any
//     order), decode returns exactly the original payloads, byte for byte;
//   - whenever fewer than k shards survive, decode returns nullopt — it must
//     fail loudly, never fabricate plausible-looking garbage.
//
// The seed is fixed so a failure reproduces exactly; the iteration index of
// a failing case is part of the assertion message.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "fec/gf256_simd.h"
#include "fec/reed_solomon.h"
#include "test_guards.h"

namespace jqos::fec {
namespace {

TEST(RsFuzz, RandomizedEncodeEraseDecodeRoundTrips) {
  // Restores the entry backend even when an ASSERT aborts mid-fuzz.
  const jqos::testing::GfBackendGuard guard;
  constexpr int kIterations = 1000;
  Rng rng(0xf022ed5eed);
  const auto backends = gf_available_backends();

  for (int iter = 0; iter < kIterations; ++iter) {
    gf_set_backend(backends[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(backends.size()) - 1))]);

    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 20));
    const std::size_t r = static_cast<std::size_t>(rng.uniform_int(0, 10));
    // Mostly realistic packet sizes, with occasional tiny/empty shards to
    // keep the head/tail handling honest.
    const std::size_t len = rng.bernoulli(0.1)
                                ? static_cast<std::size_t>(rng.uniform_int(0, 3))
                                : static_cast<std::size_t>(rng.uniform_int(16, 1400));

    std::vector<std::vector<std::uint8_t>> data(k, std::vector<std::uint8_t>(len));
    for (auto& shard : data) {
      for (auto& b : shard) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    std::vector<std::span<const std::uint8_t>> data_spans(data.begin(), data.end());

    const ReedSolomon rs(k, r);
    const auto parity = rs.encode(data_spans);
    ASSERT_EQ(parity.size(), r);

    // Random erasure pattern: shuffle all n shard indices, keep a random
    // prefix as the survivors (delivered in shuffled order, so decode also
    // sees parity-before-data arrivals).
    const std::size_t n = k + r;
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    }
    const std::size_t survivors = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n)));

    std::vector<std::pair<std::size_t, std::span<const std::uint8_t>>> shards;
    shards.reserve(survivors);
    for (std::size_t i = 0; i < survivors; ++i) {
      const std::size_t idx = order[i];
      shards.emplace_back(idx, idx < k ? std::span<const std::uint8_t>(data[idx])
                                       : std::span<const std::uint8_t>(parity[idx - k]));
    }

    const auto decoded = rs.decode(shards);
    if (survivors >= k) {
      ASSERT_TRUE(decoded.has_value())
          << "iter=" << iter << " k=" << k << " r=" << r << " survivors=" << survivors;
      ASSERT_EQ(decoded->size(), k);
      for (std::size_t i = 0; i < k; ++i) {
        ASSERT_EQ((*decoded)[i], data[i])
            << "iter=" << iter << " k=" << k << " r=" << r << " len=" << len
            << " backend=" << gf_backend_name() << " shard=" << i;
      }
    } else {
      ASSERT_FALSE(decoded.has_value())
          << "iter=" << iter << ": decode must fail with " << survivors << " < k=" << k
          << " survivors, not fabricate data";
    }
  }
}

}  // namespace
}  // namespace jqos::fec
