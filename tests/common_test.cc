// Unit tests for the common substrate: wire format, packet serialization,
// NACK payloads, statistics, and the deterministic RNG.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/packet.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/wire.h"

namespace jqos {
namespace {

// ------------------------------- wire -------------------------------------

TEST(Wire, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, BigEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[3], 0x04);
}

TEST(Wire, VarBytesRoundTrip) {
  ByteWriter w;
  std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  w.var_bytes(payload);
  w.str("hello");
  ByteReader r(w.data());
  EXPECT_EQ(r.var_bytes(), payload);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.ok());
}

TEST(Wire, UnderflowSetsErrorInsteadOfThrowing) {
  std::vector<std::uint8_t> short_buf = {1, 2};
  ByteReader r(short_buf);
  (void)r.u32();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u64(), 0u);  // Still safe to call.
}

TEST(Wire, CorruptLengthPrefixRejected) {
  ByteWriter w;
  w.u32(0xffffffff);  // Length prefix far beyond the buffer.
  ByteReader r(w.data());
  EXPECT_TRUE(r.var_bytes().empty());
  EXPECT_FALSE(r.ok());
}

// ------------------------------ packet ------------------------------------

TEST(Packet, SerializeParseRoundTrip) {
  Packet p;
  p.type = PacketType::kCrossCoded;
  p.service = ServiceType::kCode;
  p.flow = 7;
  p.seq = 1234;
  p.src = 2;
  p.dst = 3;
  p.final_dst = 9;
  p.sent_at = 987654321;
  CodedMeta m;
  m.batch_id = 55;
  m.index = 6;
  m.k = 6;
  m.r = 2;
  m.covered = {{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}, {6, 60}};
  p.meta = m;
  p.payload = {9, 8, 7};

  auto bytes = p.serialize();
  EXPECT_EQ(bytes.size(), p.wire_size());
  auto parsed = Packet::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, p.type);
  EXPECT_EQ(parsed->service, p.service);
  EXPECT_EQ(parsed->flow, p.flow);
  EXPECT_EQ(parsed->seq, p.seq);
  EXPECT_EQ(parsed->src, p.src);
  EXPECT_EQ(parsed->dst, p.dst);
  EXPECT_EQ(parsed->final_dst, p.final_dst);
  EXPECT_EQ(parsed->sent_at, p.sent_at);
  ASSERT_TRUE(parsed->meta.has_value());
  EXPECT_EQ(*parsed->meta, m);
  EXPECT_EQ(parsed->payload, p.payload);
}

TEST(Packet, ParseRejectsBadVersionAndType) {
  Packet p;
  auto bytes = p.serialize();
  auto bad_version = bytes;
  bad_version[0] = 99;
  EXPECT_FALSE(Packet::parse(bad_version).has_value());
  auto bad_type = bytes;
  bad_type[1] = 200;
  EXPECT_FALSE(Packet::parse(bad_type).has_value());
}

TEST(Packet, ParseRejectsTruncated) {
  Packet p;
  p.payload = {1, 2, 3, 4};
  auto bytes = p.serialize();
  bytes.resize(bytes.size() - 2);
  EXPECT_FALSE(Packet::parse(bytes).has_value());
}

TEST(Packet, WireSizeChargesMetaAndPayload) {
  Packet bare;
  const std::size_t base = bare.wire_size();
  EXPECT_EQ(base, packet_header_bytes());
  Packet loaded;
  loaded.payload.assign(100, 0);
  EXPECT_EQ(loaded.wire_size(), base + 100);
  CodedMeta m;
  m.covered = {{1, 1}, {2, 2}};
  loaded.meta = m;
  EXPECT_GT(loaded.wire_size(), base + 100);
}

TEST(Packet, NackInfoRoundTrip) {
  NackInfo n;
  n.tail = true;
  n.expected = 17;
  n.missing = {17, 19, 23};
  auto parsed = NackInfo::parse(n.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, n);
}

TEST(Packet, NackInfoRejectsBogusCount) {
  ByteWriter w;
  w.u8(0);
  w.u32(0);
  w.u32(1000000);  // Claims a million seqs with no bytes behind it.
  EXPECT_FALSE(NackInfo::parse(w.data()).has_value());
}

TEST(Packet, FactoriesPopulateFields) {
  auto p = make_data_packet(3, 4, 1, 2, 1000, 64);
  EXPECT_EQ(p->type, PacketType::kData);
  EXPECT_EQ(p->flow, 3u);
  EXPECT_EQ(p->seq, 4u);
  EXPECT_EQ(p->payload.size(), 64u);
  EXPECT_EQ(p->key(), (PacketKey{3, 4}));
}

// ------------------------------- stats ------------------------------------

TEST(Stats, OnlineStatsMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, OnlineStatsMergeMatchesSequential) {
  OnlineStats a, b, all;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(95), 95.05, 0.1);
}

TEST(Stats, CdfAt) {
  Samples s;
  for (int i = 0; i < 10; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.cdf_at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(4.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(100.0), 1.0);
  EXPECT_DOUBLE_EQ(s.ccdf_at(4.0), 0.5);
}

TEST(Stats, CdfPointsMonotone) {
  Samples s;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) s.add(rng.lognormal(0.0, 1.0));
  auto pts = s.cdf_points(25);
  ASSERT_EQ(pts.size(), 26u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].value, pts[i - 1].value);
    EXPECT_GE(pts[i].fraction, pts[i - 1].fraction);
  }
}

TEST(Stats, HistogramCountsOutOfRangeSeparately) {
  // Out-of-range samples must not be clamped into the edge bins: that
  // silently corrupted tail bins (the Figure 9(a) PSNR histograms). They
  // are tracked as underflow/overflow and still count toward total().
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);  // Underflow, NOT bin 0.
  h.add(0.5);
  h.add(9.5);
  h.add(15.0);  // Overflow, NOT bin 9.
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.in_range(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  // The CDF includes underflow below every bin and tops out short of 1.0
  // when samples overflowed the range.
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(9), 0.75);
}

TEST(Stats, HistogramUpperEdgeIsExclusive) {
  Histogram h(0.0, 10.0, 10);
  h.add(10.0);  // hi itself is out of range ([lo, hi)).
  EXPECT_EQ(h.overflow(), 1u);
  h.add(0.0);  // lo itself is in range.
  EXPECT_EQ(h.bin_count(0), 1u);
}

TEST(Stats, PercentileEmptyIsNaN) {
  // An empty set must be distinguishable from a real zero sample.
  Samples s;
  EXPECT_TRUE(std::isnan(s.percentile(50)));
  EXPECT_TRUE(std::isnan(s.median()));
}

TEST(Stats, PercentileSingleSample) {
  Samples s;
  s.add(7.5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(s.percentile(37.0), 7.5);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.5);
}

TEST(Stats, PercentileTwoSamplesInterpolates) {
  Samples s;
  s.add(20.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 12.5);
  EXPECT_DOUBLE_EQ(s.percentile(50), 15.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 20.0);
}

TEST(Stats, MeanCompensatedSummation) {
  // A sum whose large terms cancel: naive accumulation loses every small
  // sample against the 1e16 running total (ulp there is 2.0), so the naive
  // mean comes out near 4/3 instead of pi/3. Neumaier compensation must
  // recover the exact value. 10M samples keeps this in soak-run territory.
  Samples s;
  constexpr std::size_t kTriples = 3'333'333;
  s.reserve(3 * kTriples);
  const double pi = 3.14159265358979323846;
  for (std::size_t i = 0; i < kTriples; ++i) {
    s.add(1e16);
    s.add(pi);
    s.add(-1e16);
  }
  EXPECT_NEAR(s.mean(), pi / 3.0, 1e-9);

  // And on a plain well-conditioned stream the mean agrees with the
  // streaming (Welford) path to near machine precision.
  Samples plain;
  OnlineStats online;
  Rng rng(11);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.lognormal(2.0, 1.0);
    plain.add(x);
    online.add(x);
  }
  EXPECT_NEAR(plain.mean(), online.mean(), std::abs(online.mean()) * 1e-12);
}

TEST(Stats, HistogramRejectsDegenerate) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// --------------------------- quantile sketch -------------------------------

TEST(QuantileSketch, EmptyIsNaN) {
  QuantileSketch sk;
  EXPECT_TRUE(sk.empty());
  EXPECT_TRUE(std::isnan(sk.quantile(0.5)));
  EXPECT_TRUE(std::isnan(sk.percentile(99.0)));
  EXPECT_TRUE(std::isnan(sk.min()));
  EXPECT_TRUE(std::isnan(sk.max()));
}

TEST(QuantileSketch, ExactOnSmallSetsMatchesSamples) {
  // While everything fits in level 0 the sketch must reproduce
  // Samples::percentile bit for bit -- including the count 0/1/2 edge
  // cases those are now goldens for.
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{5}, std::size_t{100},
                        std::size_t{1000}}) {
    Samples s;
    QuantileSketch sk(1024);
    Rng rng(1000 + n);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = rng.lognormal(1.0, 2.0);
      s.add(x);
      sk.add(x);
    }
    for (double p : {0.0, 25.0, 37.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
      EXPECT_DOUBLE_EQ(sk.percentile(p), s.percentile(p))
          << "n=" << n << " p=" << p;
    }
    EXPECT_DOUBLE_EQ(sk.min(), s.min());
    EXPECT_DOUBLE_EQ(sk.max(), s.max());
  }
}

TEST(QuantileSketch, RankErrorWithinOnePercent) {
  // The soak-path accuracy contract (docs/BENCHMARKING.md): estimated
  // quantiles land within 1% rank error of the exact order statistics at
  // p50/p99/p999, on a heavy-tailed stream far larger than k.
  constexpr std::size_t kN = 500000;
  Samples exact;
  QuantileSketch sk(1024);
  Rng rng(77);
  exact.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double x = rng.lognormal(0.0, 2.0);
    exact.add(x);
    sk.add(x);
  }
  EXPECT_LT(sk.retained(), std::size_t{32} * 1024);  // O(k log(n/k)) memory.
  for (double q : {0.50, 0.99, 0.999}) {
    const double est = sk.quantile(q);
    const double rank = exact.cdf_at(est);
    EXPECT_NEAR(rank, q, 0.01) << "q=" << q << " est=" << est;
  }
}

TEST(QuantileSketch, MergeIsDeterministicAndAccurate) {
  // The OnlineStats::merge-style contract: merging per-shard sketches in a
  // fixed order is reproducible bit for bit, and the merged estimate keeps
  // the accuracy bound. Shards get different sizes on purpose.
  constexpr std::size_t kShards = 5;
  auto build = [](std::size_t shard) {
    QuantileSketch sk(512);
    Rng rng(Rng::derive(42, shard));
    const std::size_t n = 20000 + shard * 13777;
    for (std::size_t i = 0; i < n; ++i) sk.add(rng.exponential(3.0));
    return sk;
  };
  QuantileSketch merged_a, merged_b;
  Samples exact;
  for (std::size_t s = 0; s < kShards; ++s) {
    QuantileSketch sk = build(s);
    merged_a.merge(sk);
    merged_b.merge(sk);
    Rng rng(Rng::derive(42, s));
    const std::size_t n = 20000 + s * 13777;
    for (std::size_t i = 0; i < n; ++i) exact.add(rng.exponential(3.0));
  }
  EXPECT_EQ(merged_a.count(), exact.count());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    // Bitwise identical across the two identical merge sequences.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(merged_a.quantile(q)),
              std::bit_cast<std::uint64_t>(merged_b.quantile(q)));
    EXPECT_NEAR(exact.cdf_at(merged_a.quantile(q)), q, 0.015) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(merged_a.min(), exact.min());
  EXPECT_DOUBLE_EQ(merged_a.max(), exact.max());
}

// -------------------------------- rng -------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(9);
  Rng c1 = parent.fork("loss");
  Rng c2 = parent.fork("loss");
  Rng c3 = parent.fork("jitter");
  // Successive forks and distinct labels must differ.
  EXPECT_NE(c1.next_u64(), c2.next_u64());
  EXPECT_NE(c1.next_u64(), c3.next_u64());
}

TEST(Rng, DeriveIsPureAndReproducible) {
  // Same (seed, stream) -> same sub-stream, independent of any other
  // derivation happening before or between.
  const std::uint64_t a = Rng::derive(42, 7);
  Rng::derive(42, 8);
  Rng::derive(99, 7);
  EXPECT_EQ(Rng::derive(42, 7), a);
  Rng r1 = Rng::derived(42, 7);
  Rng r2 = Rng::derived(42, 7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(r1.next_u64(), r2.next_u64());
}

TEST(Rng, DeriveStabilityGuarantee) {
  // The mapping is FROZEN (see rng.h): sharded experiment decomposition and
  // archived fingerprints depend on these exact values. If this test fails,
  // the derivation function changed -- that is a determinism contract break,
  // not a test to update.
  EXPECT_EQ(Rng::derive(0, 0), 0xa706dd2f4d197e6fULL);
  EXPECT_EQ(Rng::derive(1, 0), 0x5e41ab087439611eULL);
  EXPECT_EQ(Rng::derive(42, 1), Rng::derive(42, 1));
  EXPECT_EQ(Rng::derive(42, "schedule"), Rng::derive(42, "schedule"));
  EXPECT_NE(Rng::derive(42, "schedule"), Rng::derive(42, "overlay"));
}

TEST(Rng, DeriveAdjacentStreamsUncorrelated) {
  // Shards are numbered 0..N-1; adjacent ids must give statistically
  // unrelated streams. Cheap guards: distinct seeds, bitwise-decorrelated
  // first outputs, and mean of XORed bit counts near 32.
  const std::uint64_t s0 = Rng::derive(1234, 0);
  const std::uint64_t s1 = Rng::derive(1234, 1);
  EXPECT_NE(s0, s1);
  double bits = 0;
  Rng a(s0), b(s1);
  constexpr int kDraws = 4096;
  for (int i = 0; i < kDraws; ++i) {
    bits += static_cast<double>(std::popcount(a.next_u64() ^ b.next_u64()));
  }
  EXPECT_NEAR(bits / kDraws, 32.0, 1.0);
}

TEST(Rng, DeriveDistinctAcrossSeedsAndStreams) {
  // No collisions over a grid of small seeds x small stream ids (the shapes
  // real scenarios use: seed from config, stream = global path index).
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    for (std::uint64_t stream = 0; stream < 64; ++stream) {
      EXPECT_TRUE(seen.insert(Rng::derive(seed, stream)).second)
          << "collision at seed=" << seed << " stream=" << stream;
    }
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, ExponentialMean) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / 50000.0, 10.0, 0.3);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, PoissonMean) {
  Rng rng(9);
  OnlineStats small, large;
  for (int i = 0; i < 20000; ++i) small.add(rng.poisson(3.0));
  for (int i = 0; i < 20000; ++i) large.add(rng.poisson(100.0));
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 100.0, 1.0);
}

TEST(Rng, PoissonContinuousAcrossLegacyCutover) {
  // The old implementation switched from the Knuth product loop to a
  // normal approximation at mean > 64.0 -- exactly the regime the churn
  // arrival processes live in -- and the product form's comparison against
  // exp(-mean) degraded near the boundary. The log-domain sampler is exact
  // through this whole range, so the distribution must be continuous
  // across 64.0: matching means/variances AND the Poisson skew on both
  // sides. The normal approximation has zero skew, so the skewness checks
  // fail on the pre-fix code.
  constexpr int kDraws = 200000;
  auto moments = [](Rng& rng, double mean, double* skew) {
    OnlineStats s;
    std::vector<double> xs;
    xs.reserve(kDraws);
    for (int i = 0; i < kDraws; ++i) {
      const double x = rng.poisson(mean);
      s.add(x);
      xs.push_back(x);
    }
    double m3 = 0.0;
    for (double x : xs) {
      const double d = x - s.mean();
      m3 += d * d * d;
    }
    m3 /= static_cast<double>(xs.size());
    *skew = m3 / (s.stddev() * s.stddev() * s.stddev());
    return s;
  };

  Rng below_rng(21), above_rng(22);
  double skew_below = 0.0, skew_above = 0.0;
  const OnlineStats below = moments(below_rng, 63.9, &skew_below);
  const OnlineStats above = moments(above_rng, 64.1, &skew_above);

  EXPECT_NEAR(below.mean(), 63.9, 0.15);
  EXPECT_NEAR(above.mean(), 64.1, 0.15);
  EXPECT_NEAR(below.variance(), 63.9, 2.0);
  EXPECT_NEAR(above.variance(), 64.1, 2.0);
  // Poisson skewness is 1/sqrt(mean) ~ 0.125 here; the standard error over
  // 200k draws is ~0.0055, so [0.08, 0.17] is a >5-sigma window.
  EXPECT_NEAR(skew_below, 1.0 / std::sqrt(63.9), 0.045);
  EXPECT_NEAR(skew_above, 1.0 / std::sqrt(64.1), 0.045);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

// ------------------------------ logging -----------------------------------

TEST(Logging, ThresholdGates) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_threshold(LogLevel::kTrace);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug));
  set_log_threshold(before);
}

TEST(Logging, FormatDuration) {
  EXPECT_EQ(format_duration(500), "500us");
  EXPECT_EQ(format_duration(msec(12)), "12ms");
  EXPECT_EQ(format_duration(sec(3)), "3s");
}

}  // namespace
}  // namespace jqos
