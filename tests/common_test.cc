// Unit tests for the common substrate: wire format, packet serialization,
// NACK payloads, statistics, and the deterministic RNG.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/packet.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/wire.h"

namespace jqos {
namespace {

// ------------------------------- wire -------------------------------------

TEST(Wire, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, BigEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[3], 0x04);
}

TEST(Wire, VarBytesRoundTrip) {
  ByteWriter w;
  std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  w.var_bytes(payload);
  w.str("hello");
  ByteReader r(w.data());
  EXPECT_EQ(r.var_bytes(), payload);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.ok());
}

TEST(Wire, UnderflowSetsErrorInsteadOfThrowing) {
  std::vector<std::uint8_t> short_buf = {1, 2};
  ByteReader r(short_buf);
  (void)r.u32();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u64(), 0u);  // Still safe to call.
}

TEST(Wire, CorruptLengthPrefixRejected) {
  ByteWriter w;
  w.u32(0xffffffff);  // Length prefix far beyond the buffer.
  ByteReader r(w.data());
  EXPECT_TRUE(r.var_bytes().empty());
  EXPECT_FALSE(r.ok());
}

// ------------------------------ packet ------------------------------------

TEST(Packet, SerializeParseRoundTrip) {
  Packet p;
  p.type = PacketType::kCrossCoded;
  p.service = ServiceType::kCode;
  p.flow = 7;
  p.seq = 1234;
  p.src = 2;
  p.dst = 3;
  p.final_dst = 9;
  p.sent_at = 987654321;
  CodedMeta m;
  m.batch_id = 55;
  m.index = 6;
  m.k = 6;
  m.r = 2;
  m.covered = {{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}, {6, 60}};
  p.meta = m;
  p.payload = {9, 8, 7};

  auto bytes = p.serialize();
  EXPECT_EQ(bytes.size(), p.wire_size());
  auto parsed = Packet::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, p.type);
  EXPECT_EQ(parsed->service, p.service);
  EXPECT_EQ(parsed->flow, p.flow);
  EXPECT_EQ(parsed->seq, p.seq);
  EXPECT_EQ(parsed->src, p.src);
  EXPECT_EQ(parsed->dst, p.dst);
  EXPECT_EQ(parsed->final_dst, p.final_dst);
  EXPECT_EQ(parsed->sent_at, p.sent_at);
  ASSERT_TRUE(parsed->meta.has_value());
  EXPECT_EQ(*parsed->meta, m);
  EXPECT_EQ(parsed->payload, p.payload);
}

TEST(Packet, ParseRejectsBadVersionAndType) {
  Packet p;
  auto bytes = p.serialize();
  auto bad_version = bytes;
  bad_version[0] = 99;
  EXPECT_FALSE(Packet::parse(bad_version).has_value());
  auto bad_type = bytes;
  bad_type[1] = 200;
  EXPECT_FALSE(Packet::parse(bad_type).has_value());
}

TEST(Packet, ParseRejectsTruncated) {
  Packet p;
  p.payload = {1, 2, 3, 4};
  auto bytes = p.serialize();
  bytes.resize(bytes.size() - 2);
  EXPECT_FALSE(Packet::parse(bytes).has_value());
}

TEST(Packet, WireSizeChargesMetaAndPayload) {
  Packet bare;
  const std::size_t base = bare.wire_size();
  EXPECT_EQ(base, packet_header_bytes());
  Packet loaded;
  loaded.payload.assign(100, 0);
  EXPECT_EQ(loaded.wire_size(), base + 100);
  CodedMeta m;
  m.covered = {{1, 1}, {2, 2}};
  loaded.meta = m;
  EXPECT_GT(loaded.wire_size(), base + 100);
}

TEST(Packet, NackInfoRoundTrip) {
  NackInfo n;
  n.tail = true;
  n.expected = 17;
  n.missing = {17, 19, 23};
  auto parsed = NackInfo::parse(n.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, n);
}

TEST(Packet, NackInfoRejectsBogusCount) {
  ByteWriter w;
  w.u8(0);
  w.u32(0);
  w.u32(1000000);  // Claims a million seqs with no bytes behind it.
  EXPECT_FALSE(NackInfo::parse(w.data()).has_value());
}

TEST(Packet, FactoriesPopulateFields) {
  auto p = make_data_packet(3, 4, 1, 2, 1000, 64);
  EXPECT_EQ(p->type, PacketType::kData);
  EXPECT_EQ(p->flow, 3u);
  EXPECT_EQ(p->seq, 4u);
  EXPECT_EQ(p->payload.size(), 64u);
  EXPECT_EQ(p->key(), (PacketKey{3, 4}));
}

// ------------------------------- stats ------------------------------------

TEST(Stats, OnlineStatsMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, OnlineStatsMergeMatchesSequential) {
  OnlineStats a, b, all;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(95), 95.05, 0.1);
}

TEST(Stats, CdfAt) {
  Samples s;
  for (int i = 0; i < 10; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.cdf_at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(4.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(100.0), 1.0);
  EXPECT_DOUBLE_EQ(s.ccdf_at(4.0), 0.5);
}

TEST(Stats, CdfPointsMonotone) {
  Samples s;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) s.add(rng.lognormal(0.0, 1.0));
  auto pts = s.cdf_points(25);
  ASSERT_EQ(pts.size(), 26u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].value, pts[i - 1].value);
    EXPECT_GE(pts[i].fraction, pts[i - 1].fraction);
  }
}

TEST(Stats, HistogramBinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);   // Clamps into bin 0.
  h.add(0.5);
  h.add(9.5);
  h.add(15.0);   // Clamps into the last bin.
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(9), 1.0);
}

TEST(Stats, HistogramRejectsDegenerate) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// -------------------------------- rng -------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(9);
  Rng c1 = parent.fork("loss");
  Rng c2 = parent.fork("loss");
  Rng c3 = parent.fork("jitter");
  // Successive forks and distinct labels must differ.
  EXPECT_NE(c1.next_u64(), c2.next_u64());
  EXPECT_NE(c1.next_u64(), c3.next_u64());
}

TEST(Rng, DeriveIsPureAndReproducible) {
  // Same (seed, stream) -> same sub-stream, independent of any other
  // derivation happening before or between.
  const std::uint64_t a = Rng::derive(42, 7);
  Rng::derive(42, 8);
  Rng::derive(99, 7);
  EXPECT_EQ(Rng::derive(42, 7), a);
  Rng r1 = Rng::derived(42, 7);
  Rng r2 = Rng::derived(42, 7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(r1.next_u64(), r2.next_u64());
}

TEST(Rng, DeriveStabilityGuarantee) {
  // The mapping is FROZEN (see rng.h): sharded experiment decomposition and
  // archived fingerprints depend on these exact values. If this test fails,
  // the derivation function changed -- that is a determinism contract break,
  // not a test to update.
  EXPECT_EQ(Rng::derive(0, 0), 0xa706dd2f4d197e6fULL);
  EXPECT_EQ(Rng::derive(1, 0), 0x5e41ab087439611eULL);
  EXPECT_EQ(Rng::derive(42, 1), Rng::derive(42, 1));
  EXPECT_EQ(Rng::derive(42, "schedule"), Rng::derive(42, "schedule"));
  EXPECT_NE(Rng::derive(42, "schedule"), Rng::derive(42, "overlay"));
}

TEST(Rng, DeriveAdjacentStreamsUncorrelated) {
  // Shards are numbered 0..N-1; adjacent ids must give statistically
  // unrelated streams. Cheap guards: distinct seeds, bitwise-decorrelated
  // first outputs, and mean of XORed bit counts near 32.
  const std::uint64_t s0 = Rng::derive(1234, 0);
  const std::uint64_t s1 = Rng::derive(1234, 1);
  EXPECT_NE(s0, s1);
  double bits = 0;
  Rng a(s0), b(s1);
  constexpr int kDraws = 4096;
  for (int i = 0; i < kDraws; ++i) {
    bits += static_cast<double>(std::popcount(a.next_u64() ^ b.next_u64()));
  }
  EXPECT_NEAR(bits / kDraws, 32.0, 1.0);
}

TEST(Rng, DeriveDistinctAcrossSeedsAndStreams) {
  // No collisions over a grid of small seeds x small stream ids (the shapes
  // real scenarios use: seed from config, stream = global path index).
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    for (std::uint64_t stream = 0; stream < 64; ++stream) {
      EXPECT_TRUE(seen.insert(Rng::derive(seed, stream)).second)
          << "collision at seed=" << seed << " stream=" << stream;
    }
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, ExponentialMean) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / 50000.0, 10.0, 0.3);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, PoissonMean) {
  Rng rng(9);
  OnlineStats small, large;
  for (int i = 0; i < 20000; ++i) small.add(rng.poisson(3.0));
  for (int i = 0; i < 20000; ++i) large.add(rng.poisson(100.0));
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 100.0, 1.0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

// ------------------------------ logging -----------------------------------

TEST(Logging, ThresholdGates) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_threshold(LogLevel::kTrace);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug));
  set_log_threshold(before);
}

TEST(Logging, FormatDuration) {
  EXPECT_EQ(format_duration(500), "500us");
  EXPECT_EQ(format_duration(msec(12)), "12ms");
  EXPECT_EQ(format_duration(sec(3)), "3s");
}

}  // namespace
}  // namespace jqos
