// Unit tests for the link-layer queue disciplines (netsim/queue_disc.h):
// the RED probability curve and EWMA pinned against hand-computed values,
// the CoDel interval control law traced step by step through hand-built
// queue snapshots, the tail-drop byte cap, and the Link-level integration
// (queue drops counted separately from loss-model drops, CE marks applied
// copy-on-write, ECN bits surviving the wire format).
#include <gtest/gtest.h>

#include "common/packet.h"
#include "netsim/link.h"
#include "netsim/queue_disc.h"

namespace jqos::netsim {
namespace {

QueueSnapshot snap(SimTime now, SimDuration sojourn, std::size_t backlog_bytes,
                   std::size_t packet_bytes, bool ect) {
  QueueSnapshot q;
  q.now = now;
  q.dequeue_at = now + sojourn;
  q.backlog_bytes = backlog_bytes;
  q.backlog_packets = packet_bytes == 0 ? 0 : backlog_bytes / packet_bytes;
  q.packet_bytes = packet_bytes;
  q.ecn_capable = ect;
  return q;
}

// ---- RED -----------------------------------------------------------------

TEST(RedQueue, ProbabilityCurveMatchesHandComputedValues) {
  // pb = max_p * (avg - min) / (max - min), clamped to [0, 1] outside the
  // thresholds. min = 1000, max = 3000, max_p = 0.1.
  EXPECT_DOUBLE_EQ(red_mark_probability(0, 1000, 3000, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(red_mark_probability(999.9, 1000, 3000, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(red_mark_probability(1000, 1000, 3000, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(red_mark_probability(1500, 1000, 3000, 0.1), 0.025);
  EXPECT_DOUBLE_EQ(red_mark_probability(2000, 1000, 3000, 0.1), 0.05);
  EXPECT_DOUBLE_EQ(red_mark_probability(2500, 1000, 3000, 0.1), 0.075);
  EXPECT_DOUBLE_EQ(red_mark_probability(3000, 1000, 3000, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(red_mark_probability(9999, 1000, 3000, 0.1), 1.0);
}

TEST(RedQueue, EwmaTracksBacklogGeometrically) {
  QdiscConfig cfg;
  cfg.kind = QdiscKind::kRed;
  cfg.red_wq = 0.5;           // Big weight => short hand trace.
  cfg.red_min_bytes = 100000;  // Far above the feed: no marking, pure EWMA.
  cfg.red_max_bytes = 200000;
  RedQueue red(cfg, Rng(1));

  // avg' = (1 - wq) * avg + wq * backlog, backlog held at 1000:
  // 500, 750, 875, ... -> 1000 - 1000 / 2^n.
  const auto q = snap(0, 0, 1000, 100, false);
  EXPECT_EQ(red.admit(q), QdiscVerdict::kEnqueue);
  EXPECT_DOUBLE_EQ(red.avg_bytes(), 500.0);
  EXPECT_EQ(red.admit(q), QdiscVerdict::kEnqueue);
  EXPECT_DOUBLE_EQ(red.avg_bytes(), 750.0);
  EXPECT_EQ(red.admit(q), QdiscVerdict::kEnqueue);
  EXPECT_DOUBLE_EQ(red.avg_bytes(), 875.0);
}

TEST(RedQueue, AboveMaxThresholdMarksEctDropsNonEct) {
  QdiscConfig cfg;
  cfg.kind = QdiscKind::kRed;
  cfg.red_wq = 1.0;  // avg == instantaneous backlog.
  cfg.red_min_bytes = 1;
  cfg.red_max_bytes = 2;  // Any real backlog sits above max => pb = 1.
  RedQueue red_ect(cfg, Rng(1));
  EXPECT_EQ(red_ect.admit(snap(0, 0, 5000, 100, true)), QdiscVerdict::kMark);

  RedQueue red_plain(cfg, Rng(1));
  EXPECT_EQ(red_plain.admit(snap(0, 0, 5000, 100, false)), QdiscVerdict::kDrop);

  cfg.ecn = false;  // ECN disabled on the queue: even ECT traffic drops.
  RedQueue red_noecn(cfg, Rng(1));
  EXPECT_EQ(red_noecn.admit(snap(0, 0, 5000, 100, true)), QdiscVerdict::kDrop);
}

TEST(RedQueue, HardByteCapStillDrops) {
  QdiscConfig cfg;
  cfg.kind = QdiscKind::kRed;
  cfg.limit_bytes = 5000;
  RedQueue red(cfg, Rng(1));
  // The overflow drop fires before the EWMA/marking logic and never marks.
  EXPECT_EQ(red.admit(snap(0, 0, 4500, 1000, true)), QdiscVerdict::kDrop);
}

// ---- CoDel ---------------------------------------------------------------

TEST(CoDelQueue, FirstDropAfterOneSustainedInterval) {
  QdiscConfig cfg;
  cfg.kind = QdiscKind::kCoDel;  // target 5 ms, interval 100 ms defaults.
  CoDelQueue codel(cfg);

  // Sojourn persistently above target. CoDel's clock is the virtual dequeue
  // time (arrival + sojourn), so the 100 ms grace interval started by the
  // first above-target packet (clock 10 ms) expires at clock 110 ms.
  EXPECT_EQ(codel.admit(snap(msec(0), msec(10), 5000, 1000, false)),
            QdiscVerdict::kEnqueue);
  EXPECT_FALSE(codel.dropping());
  EXPECT_EQ(codel.admit(snap(msec(50), msec(10), 5000, 1000, false)),
            QdiscVerdict::kEnqueue);
  // Clock 115 ms >= 110 ms: enter dropping, first drop immediately.
  EXPECT_EQ(codel.admit(snap(msec(105), msec(10), 5000, 1000, false)),
            QdiscVerdict::kDrop);
  EXPECT_TRUE(codel.dropping());
  EXPECT_EQ(codel.drop_count(), 1u);

  // Next drop is scheduled interval / sqrt(1) later (clock 215 ms):
  // clock 160 ms is too early, clock 220 ms is due.
  EXPECT_EQ(codel.admit(snap(msec(150), msec(10), 5000, 1000, false)),
            QdiscVerdict::kEnqueue);
  EXPECT_EQ(codel.admit(snap(msec(210), msec(10), 5000, 1000, false)),
            QdiscVerdict::kDrop);
  EXPECT_EQ(codel.drop_count(), 2u);

  // Sojourn back below target: leave the dropping state, no more drops.
  EXPECT_EQ(codel.admit(snap(msec(300), msec(1), 5000, 1000, false)),
            QdiscVerdict::kEnqueue);
  EXPECT_FALSE(codel.dropping());
}

TEST(CoDelQueue, MarksInsteadOfDroppingForEctTraffic) {
  QdiscConfig cfg;
  cfg.kind = QdiscKind::kCoDel;
  CoDelQueue codel(cfg);
  EXPECT_EQ(codel.admit(snap(msec(0), msec(10), 5000, 1000, true)),
            QdiscVerdict::kEnqueue);
  EXPECT_EQ(codel.admit(snap(msec(105), msec(10), 5000, 1000, true)),
            QdiscVerdict::kMark);
  EXPECT_EQ(codel.drop_count(), 1u);  // A mark spends the drop-count slot.
}

TEST(CoDelQueue, NearEmptyQueueNeverDrops) {
  QdiscConfig cfg;
  cfg.kind = QdiscKind::kCoDel;
  CoDelQueue codel(cfg);
  // backlog < one packet: CoDel refuses to drop the only packet in flight
  // however long its sojourn.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(codel.admit(snap(msec(100 * i), msec(50), 500, 1000, false)),
              QdiscVerdict::kEnqueue);
  }
  EXPECT_FALSE(codel.dropping());
}

// ---- tail drop -----------------------------------------------------------

TEST(TailDropFifo, EnforcesByteCapExactly) {
  QdiscConfig cfg;
  cfg.limit_bytes = 5000;
  TailDropFifo fifo(cfg);
  EXPECT_EQ(fifo.admit(snap(0, 0, 4000, 1000, false)), QdiscVerdict::kEnqueue);
  EXPECT_EQ(fifo.admit(snap(0, 0, 4000, 1001, false)), QdiscVerdict::kDrop);
  EXPECT_EQ(fifo.admit(snap(0, 0, 5000, 1, false)), QdiscVerdict::kDrop);
  // Oversized packets still pass through an empty queue's worth of space?
  // No: the cap is absolute.
  EXPECT_EQ(fifo.admit(snap(0, 0, 0, 6000, false)), QdiscVerdict::kDrop);
}

TEST(QdiscConfig, KindNamesRoundTripAndResolve) {
  for (const QdiscKind k : {QdiscKind::kTailDrop, QdiscKind::kRed, QdiscKind::kCoDel}) {
    const auto parsed = parse_qdisc_kind(qdisc_kind_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
    QdiscConfig cfg;
    cfg.kind = k;
    EXPECT_STREQ(make_queue_disc(cfg, Rng(1))->name(), qdisc_kind_name(k));
  }
  EXPECT_FALSE(parse_qdisc_kind("sfq").has_value());
  QdiscConfig pinned;
  pinned.kind = QdiscKind::kCoDel;
  EXPECT_EQ(pinned.resolved_kind(), QdiscKind::kCoDel);  // Env never overrides.
}

// ---- Link integration ----------------------------------------------------

PacketPtr make_test_packet(std::size_t payload_bytes, bool ect) {
  auto pkt = std::make_shared<Packet>();
  pkt->type = PacketType::kData;
  pkt->flow = 1;
  pkt->ecn_capable = ect;
  pkt->payload.assign(payload_bytes, 0);
  return pkt;
}

TEST(LinkQueueDisc, QueueDropsCountedSeparatelyFromLossModel) {
  Simulator sim;
  QdiscConfig cfg;
  cfg.limit_bytes = 4000;  // Roughly 3 packets of headroom.
  // 1 Mbps bottleneck, lossless wire: every missing packet is a queue drop.
  Link link(sim, 1, 2, make_fixed_latency(msec(1)), make_no_loss(), 1e6,
            /*preserve_order=*/true, make_queue_disc(cfg, Rng(7)));

  std::uint64_t delivered = 0;
  for (int i = 0; i < 32; ++i) {
    link.send(make_test_packet(1000, false), [&](const PacketPtr&) { ++delivered; });
  }
  sim.run();

  const LinkStats& s = link.stats();
  EXPECT_EQ(s.offered_packets, 32u);
  EXPECT_EQ(s.dropped_packets, 0u);  // The loss model never fired.
  EXPECT_GT(s.queue_drops, 0u);      // The byte cap did.
  EXPECT_EQ(s.delivered_packets, delivered);
  EXPECT_EQ(s.delivered_packets + s.queue_drops, 32u);
  EXPECT_DOUBLE_EQ(s.loss_rate(), 0.0);  // Loss-model rate only...
  EXPECT_GT(s.drop_rate(), 0.0);         // ...combined rate sees the queue.
  EXPECT_GT(s.max_queue_bytes, 0u);
  EXPECT_LE(s.max_queue_bytes, cfg.limit_bytes);
}

TEST(LinkQueueDisc, CoDelMarksEctBurstCopyOnWrite) {
  Simulator sim;
  QdiscConfig cfg;
  cfg.kind = QdiscKind::kCoDel;
  // 1 Mbps: a 40-packet burst of 1000 B builds ~320 ms of sojourn, far past
  // CoDel's 5 ms target, so marks must appear within the burst.
  Link link(sim, 1, 2, make_fixed_latency(msec(1)), make_no_loss(), 1e6,
            /*preserve_order=*/true, make_queue_disc(cfg, Rng(7)));

  std::vector<PacketPtr> sent;
  std::uint64_t delivered_ce = 0;
  for (int i = 0; i < 40; ++i) {
    auto pkt = make_test_packet(1000, true);
    sent.push_back(pkt);
    link.send(pkt, [&](const PacketPtr& got) {
      if (got->ecn_ce) ++delivered_ce;
    });
  }
  sim.run();

  const LinkStats& s = link.stats();
  EXPECT_GT(s.ecn_marked, 0u);
  EXPECT_EQ(s.queue_drops, 0u);  // ECT traffic is marked, not dropped.
  EXPECT_EQ(s.delivered_packets, 40u);
  EXPECT_EQ(delivered_ce, s.ecn_marked);
  // Marking is copy-on-write: the sender's packet objects stay clean.
  for (const PacketPtr& pkt : sent) EXPECT_FALSE(pkt->ecn_ce);
}

TEST(LinkQueueDisc, ZeroBandwidthLinkNeverConsultsDiscipline) {
  Simulator sim;
  QdiscConfig cfg;
  cfg.limit_bytes = 1;  // Would drop everything if consulted.
  Link link(sim, 1, 2, make_fixed_latency(msec(1)), make_no_loss(), 0.0,
            /*preserve_order=*/true, make_queue_disc(cfg, Rng(7)));
  std::uint64_t delivered = 0;
  for (int i = 0; i < 8; ++i) {
    link.send(make_test_packet(1000, false), [&](const PacketPtr&) { ++delivered; });
  }
  sim.run();
  EXPECT_EQ(delivered, 8u);
  EXPECT_EQ(link.stats().queue_drops, 0u);
}

TEST(PacketEcn, BitsSurviveSerializationWithoutGrowingTheWire) {
  Packet plain;
  plain.type = PacketType::kData;
  plain.flow = 3;
  plain.seq = 9;
  plain.payload = {1, 2, 3};

  Packet ecn = plain;
  ecn.ecn_capable = true;
  ecn.ecn_ce = true;

  EXPECT_EQ(plain.wire_size(), ecn.wire_size());
  EXPECT_EQ(plain.serialize().size(), ecn.serialize().size());

  const auto parsed = Packet::parse(ecn.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ecn_capable);
  EXPECT_TRUE(parsed->ecn_ce);
  EXPECT_EQ(parsed->payload, ecn.payload);

  const auto parsed_plain = Packet::parse(plain.serialize());
  ASSERT_TRUE(parsed_plain.has_value());
  EXPECT_FALSE(parsed_plain->ecn_capable);
  EXPECT_FALSE(parsed_plain->ecn_ce);
}

}  // namespace
}  // namespace jqos::netsim
