#include "netsim/event_queue.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

namespace jqos::netsim {

namespace {

// Buckets bigger than this are split into a finer rung instead of sorted.
// Sorting a run of 16-byte POD entries is cheap (and the sorted run then
// feeds the prefetching dispatch loop), so the threshold is set where a
// sort's n·log n starts losing to one more cache-resident scatter pass.
constexpr std::size_t kSortThreshold = 1024;
// Rung sizing: aim for ~kPerBucket entries per bucket -- fine enough that
// sorting a bucket is trivial, coarse enough that per-bucket fixed costs
// (take, scan, sort call, recycle) amortize across a cache line's worth of
// entries -- clamped to keep tiny spreads from degenerating and huge ones
// from allocating absurd bucket arrays.
constexpr std::uint64_t kPerBucket = 16;
constexpr std::uint64_t kMinBuckets = 8;
// The bucket-header array of one rung stays L2-resident (8k vectors = 192
// KB): a multi-million-event spread cascades through two cache-friendly
// scatters (coarse rung, then a tiny child rung per bucket) instead of one
// cache-hostile scatter across hundreds of thousands of buckets.
constexpr std::uint64_t kMaxBuckets = std::uint64_t{1} << 13;
// Depth backstop: at width 1 a bucket holds only equal timestamps and is
// sorted regardless, so real workloads never get near this.
constexpr std::size_t kMaxRungs = 40;
// Caps on recycled bucket storage. The pool only needs to absorb one
// spread's worth of bucket vectors between a rung being consumed and the
// next spawn_rung taking them back, so its TOTAL capacity is held to a
// small multiple of the slab high-water mark (peak simultaneously live
// events) with a fixed floor for tiny queues. Overflow is simply freed --
// without the byte bound, steady-state workloads that consume buckets far
// more often than they spawn rungs ratchet pooled storage up linearly for
// the whole run (each consumption recycles a capacity-bearing vector, and
// only a spread, ~once per rung exhaustion, draws any back out).
constexpr std::size_t kPoolCap = std::size_t{1} << 17;
constexpr std::size_t kPoolMinEntries = std::size_t{1} << 12;
constexpr std::size_t kPoolSlabFactor = 8;

constexpr std::uint64_t kMaxSlots = std::uint64_t{1} << 24;  // Entry::slot width.

// Process-wide default-backend override. Sharded runs construct one
// Simulator per worker thread, so the override is an atomic: setting it
// concurrently with shard construction is data-race-free (each constructor
// sees either the old or the new value, never a torn one). Determinism-
// sensitive callers (ShardedRunner) resolve the backend ONCE on the main
// thread and pass it to Simulator(EvqBackend) explicitly instead of letting
// worker threads consult this global.
// Encoding: -1 = no override, otherwise static_cast<int>(EvqBackend).
std::atomic<int>& backend_override() {
  static std::atomic<int> g{-1};
  return g;
}

}  // namespace

const char* evq_backend_name(EvqBackend b) {
  switch (b) {
    case EvqBackend::kHeap:
      return "heap";
    case EvqBackend::kLadder:
      return "ladder";
  }
  return "?";
}

EvqBackend evq_default_backend() {
  const int forced = backend_override().load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<EvqBackend>(forced);
  if (const char* env = std::getenv("JQOS_EVQ_BACKEND")) {
    if (std::strcmp(env, "heap") == 0) return EvqBackend::kHeap;
    if (std::strcmp(env, "ladder") == 0) return EvqBackend::kLadder;
    if (std::strcmp(env, "auto") == 0 || env[0] == '\0') return EvqBackend::kLadder;
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr, "[WARN] JQOS_EVQ_BACKEND=%s not recognized (heap|ladder|auto); using ladder\n",
                   env);
    }
  }
  return EvqBackend::kLadder;
}

void evq_set_default_backend(EvqBackend b) {
  backend_override().store(static_cast<int>(b), std::memory_order_release);
}
void evq_clear_default_backend() {
  backend_override().store(-1, std::memory_order_release);
}

std::uint32_t EventQueue::alloc_slot(EventFn&& fn) {
  std::uint32_t slot;
  if (free_head_ != kNoFree) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    if (slots_.size() >= kMaxSlots) {
      throw std::length_error("EventQueue: more than 2^24 simultaneously live events");
    }
    if (slots_.size() == slots_.capacity()) ++version_;  // Slab will move.
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  if (next_seq_ >= (std::uint64_t{1} << 40)) {
    // Entry::seq is a 40-bit field; past it, truncation would silently
    // mismatch the slot's 64-bit sequence. Fail loudly like the slot cap.
    throw std::length_error("EventQueue: more than 2^40 events in one run");
  }
  s.seq = next_seq_++;
  ++live_;
  return slot;
}

void EventQueue::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.seq = 0;
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

EventId EventQueue::push(SimTime at, EventFn&& fn) {
  if (live_ == 0) {
    // Quiescent point: drop any stale (cancelled) entries still parked in
    // the ordering structures so they cannot accumulate across phases.
    if (backend_ == EvqBackend::kHeap) {
      heap_.clear();
    } else {
      ladder_reset();
    }
  }
  const std::uint32_t slot = alloc_slot(std::move(fn));
  const Entry e{at, slots_[slot].seq, slot};
  if (backend_ == EvqBackend::kHeap) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), EntryGt{});
  } else {
    ladder_push(e);
  }
  return (static_cast<EventId>(slots_[slot].gen) << 32) | slot;
}

void EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.seq == 0 || s.gen != gen) return;  // Fired, cancelled, or stale id.
  // The ordering entry stays parked wherever it is; it is skipped (and its
  // memory reclaimed) when its bucket is next touched.
  ++version_;
  free_slot(slot);
}

void EventQueue::heap_prune() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), EntryGt{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  if (backend_ == EvqBackend::kHeap) {
    heap_prune();
    assert(!heap_.empty());
    return heap_.front().at;
  }
  const bool ok = ladder_prepare();
  assert(ok);
  (void)ok;
  return bottom_[bottom_pos_].at;
}

EventQueue::Fired EventQueue::pop() {
  Entry e;
  if (backend_ == EvqBackend::kHeap) {
    heap_prune();
    assert(!heap_.empty());
    e = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), EntryGt{});
    heap_.pop_back();
  } else {
    const bool ok = ladder_prepare();
    assert(ok);
    (void)ok;
    e = bottom_[bottom_pos_++];
  }
  const auto slot = static_cast<std::uint32_t>(e.slot);
  Fired fired{e.at, std::move(slots_[slot].fn)};
  free_slot(slot);
  return fired;
}

std::size_t EventQueue::pop_ready(SimTime horizon, std::vector<Fired>& out) {
  return drain(horizon, [&out](SimTime at, EventFn&& fn) {
    out.push_back(Fired{at, std::move(fn)});
  });
}

// ------------------------------ ladder core -------------------------------

void EventQueue::recycle_bucket(std::vector<Entry>&& v) {
  if (v.capacity() == 0 || bucket_pool_.size() >= kPoolCap) return;
  const std::size_t limit =
      std::max(kPoolMinEntries, kPoolSlabFactor * slots_.size());
  if (pool_entries_ + v.capacity() > limit) return;  // Full: free it instead.
  pool_entries_ += v.capacity();
  v.clear();
  bucket_pool_.push_back(std::move(v));
}

void EventQueue::ladder_reset() {
  ++version_;
  for (Rung& r : rungs_) {
    for (auto& b : r.buckets) recycle_bucket(std::move(b));
  }
  rungs_.clear();
  top_.clear();
  recycle_bucket(std::move(bottom_));
  bottom_ = {};
  bottom_pos_ = 0;
  top_start_ = std::numeric_limits<SimTime>::min();
  ladder_init_ = true;
}

void EventQueue::ladder_push(const Entry& e) {
  if (!ladder_init_) ladder_reset();
  if (e.at >= top_start_) {
    top_.push_back(e);
    return;
  }
  // Rung spans nest (each rung refines its parent's current bucket), so the
  // first rung whose unconsumed range contains e.at is the right home.
  for (Rung& r : rungs_) {
    if (e.at < r.base) break;  // Earlier than every remaining rung's range.
    std::uint64_t idx = static_cast<std::uint64_t>(e.at - r.base) >> r.shift;
    if (idx >= r.buckets.size()) idx = r.buckets.size() - 1;  // Defensive clamp.
    if (idx >= r.cur) {
      r.buckets[idx].push_back(e);
      ++r.count;
      return;
    }
  }
  // Inside already-consumed territory: sorted insert into the live bottom.
  ++version_;
  auto it = std::upper_bound(bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_pos_),
                             bottom_.end(), e, EntryLt{});
  bottom_.insert(it, e);
}

void EventQueue::sort_into_bottom(std::vector<Entry>& bucket, SimTime start,
                                  std::uint64_t width) {
  // Bucket entries arrive in push order (monotonic seq), both from direct
  // pushes and from spreads (which preserve source order), so a STABLE sort
  // by time alone yields the full (time, seq) delivery order. When the
  // bucket's time span is narrow relative to its population, a stable
  // counting sort by time offset does it in O(n + width) with no compares.
  // The counting path scatters into bottom_'s EXISTING storage (it is
  // already drained when this runs): churning it through the pool and
  // reallocating per bucket would both malloc on the hot path and feed the
  // pool faster than spreads drain it.
  if (width <= 2 * bucket.size() + 64) {
    counts_.assign(static_cast<std::size_t>(width), 0);
    for (const Entry& e : bucket) {
      ++counts_[static_cast<std::size_t>(static_cast<std::uint64_t>(e.at - start))];
    }
    std::uint32_t running = 0;
    for (auto& c : counts_) {
      const std::uint32_t n = c;
      c = running;
      running += n;
    }
    bottom_.resize(bucket.size());
    for (const Entry& e : bucket) {
      const auto off = static_cast<std::size_t>(static_cast<std::uint64_t>(e.at - start));
      bottom_[counts_[off]++] = e;
    }
    recycle_bucket(std::move(bucket));
  } else {
    recycle_bucket(std::move(bottom_));
    bottom_ = std::move(bucket);
    std::sort(bottom_.begin(), bottom_.end(), EntryLt{});
  }
}

void EventQueue::spawn_rung(SimTime base, std::uint64_t span, const std::vector<Entry>& entries) {
  Rung r;
  r.base = base;
  const std::uint64_t target = std::clamp<std::uint64_t>(
      entries.size() / kPerBucket, kMinBuckets, kMaxBuckets);
  const std::uint64_t ideal = (span + target - 1) / target;
  while ((std::uint64_t{1} << r.shift) < ideal) ++r.shift;
  const std::uint64_t width = std::uint64_t{1} << r.shift;
  const std::uint64_t nb = (span + width - 1) >> r.shift;
  r.buckets.resize(static_cast<std::size_t>(nb));
  r.cur = 0;
  r.count = entries.size();
  for (const Entry& e : entries) {
    const auto idx =
        static_cast<std::size_t>(static_cast<std::uint64_t>(e.at - base) >> r.shift);
    auto& bucket = r.buckets[idx];
    if (bucket.capacity() == 0 && !bucket_pool_.empty()) {
      pool_entries_ -= bucket_pool_.back().capacity();
      bucket = std::move(bucket_pool_.back());
      bucket_pool_.pop_back();
    }
    bucket.push_back(e);
  }
  rungs_.push_back(std::move(r));
}

bool EventQueue::ladder_prepare() {
  if (!ladder_init_) ladder_reset();
  for (;;) {
    // Serve from the sorted bottom, skipping entries cancelled after sorting.
    while (bottom_pos_ < bottom_.size() && !entry_live(bottom_[bottom_pos_])) ++bottom_pos_;
    if (bottom_pos_ < bottom_.size()) return true;
    bottom_.clear();
    bottom_pos_ = 0;

    // Refill from the deepest rung that still holds entries.
    while (!rungs_.empty() && rungs_.back().count == 0) {
      for (auto& b : rungs_.back().buckets) recycle_bucket(std::move(b));
      rungs_.pop_back();
    }
    if (!rungs_.empty()) {
      Rung& r = rungs_.back();
      while (r.buckets[r.cur].empty()) ++r.cur;
      std::vector<Entry> bucket = std::move(r.buckets[r.cur]);
      const SimTime bucket_start = r.base + static_cast<SimTime>(r.cur << r.shift);
      const std::uint64_t bucket_width = std::uint64_t{1} << r.shift;
      r.count -= bucket.size();
      ++r.cur;
      std::erase_if(bucket, [this](const Entry& e) { return !entry_live(e); });
      if (bucket.empty()) {
        recycle_bucket(std::move(bucket));
        continue;
      }
      if (bucket.size() <= kSortThreshold || bucket_width == 1 ||
          rungs_.size() >= kMaxRungs) {
        sort_into_bottom(bucket, bucket_start, bucket_width);
      } else {
        spawn_rung(bucket_start, bucket_width, bucket);
        recycle_bucket(std::move(bucket));
      }
      continue;
    }

    // Rungs exhausted: spread the top tier into a fresh coarsest rung.
    std::erase_if(top_, [this](const Entry& e) { return !entry_live(e); });
    if (top_.empty()) {
      top_start_ = std::numeric_limits<SimTime>::min();
      return false;
    }
    SimTime lo = top_.front().at;
    SimTime hi = top_.front().at;
    for (const Entry& e : top_) {
      lo = std::min(lo, e.at);
      hi = std::max(hi, e.at);
    }
    if (top_.size() <= kSortThreshold) {
      // Small spread: sort top straight into bottom (reusing its drained
      // storage), skipping the rung machinery entirely -- the common case
      // at simulation tails and in lightly-loaded phases.
      bottom_.assign(top_.begin(), top_.end());
      std::sort(bottom_.begin(), bottom_.end(), EntryLt{});
      top_.clear();
      top_start_ = hi;
      continue;
    }
    // New events at or beyond `hi` go to top from here on; anything earlier
    // routes into the rung below (its buckets cover [lo, hi] with no gap).
    // Equal-timestamp ordering still holds across the boundary because top
    // is refilled only after every rung entry (all with lower seq) fired.
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    spawn_rung(lo, span, top_);
    top_.clear();  // Keeps its capacity: the next accumulation is alloc-free.
    top_start_ = hi;
  }
}

}  // namespace jqos::netsim
