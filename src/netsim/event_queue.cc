#include "netsim/event_queue.h"

#include <cassert>

namespace jqos::netsim {

EventId EventQueue::push(SimTime at, EventFn fn) {
  const EventId id = next_id_++;
  handlers_.push_back(std::move(fn));
  cancelled_.push_back(false);
  heap_.push(Entry{at, id});
  ++live_count_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id >= cancelled_.size() || cancelled_[id]) return;
  if (!handlers_[id]) return;  // Already fired.
  cancelled_[id] = true;
  handlers_[id] = nullptr;
  --live_count_;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && cancelled_[heap_.top().id]) heap_.pop();
}

SimTime EventQueue::next_time() {
  drop_cancelled();
  assert(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  const Entry e = heap_.top();
  heap_.pop();
  Fired fired{e.at, std::move(handlers_[e.id])};
  handlers_[e.id] = nullptr;
  --live_count_;
  return fired;
}

}  // namespace jqos::netsim
