#include "netsim/faults.h"

#include <cassert>
#include <utility>

#include "common/rng.h"

namespace jqos::netsim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown:
      return "link_down";
    case FaultKind::kLinkBrownout:
      return "link_brownout";
    case FaultKind::kNodeCrash:
      return "node_crash";
  }
  return "?";
}

FaultPlan& FaultPlan::link_down(std::string target, SimTime start, SimDuration duration) {
  specs_.push_back({FaultKind::kLinkDown, std::move(target), start, duration, {}});
  return *this;
}

FaultPlan& FaultPlan::link_brownout(std::string target, SimTime start, SimDuration duration,
                                    BrownoutProfile profile) {
  specs_.push_back({FaultKind::kLinkBrownout, std::move(target), start, duration, profile});
  return *this;
}

FaultPlan& FaultPlan::node_crash(std::string target, SimTime start, SimDuration duration) {
  specs_.push_back({FaultKind::kNodeCrash, std::move(target), start, duration, {}});
  return *this;
}

FaultPlan& FaultPlan::link_flaps(std::string target, const OutageParams& params,
                                 SimTime horizon) {
  // The stream is a pure function of (plan seed, target name): the same plan
  // produces the same flap schedule no matter which shard owns the link.
  const auto windows = outage_windows(params, Rng::derived(seed_, target), horizon);
  for (const OutageWindow& w : windows) {
    specs_.push_back({FaultKind::kLinkDown, target, w.start, w.end - w.start, {}});
  }
  return *this;
}

std::vector<OutageWindow> FaultPlan::windows() const {
  std::vector<OutageWindow> out;
  out.reserve(specs_.size());
  for (const FaultSpec& s : specs_) out.push_back({s.start, s.start + s.duration});
  return out;
}

std::vector<OutageWindow> FaultPlan::windows_for(std::string_view target) const {
  std::vector<OutageWindow> out;
  for (const FaultSpec& s : specs_) {
    if (s.target == target) out.push_back({s.start, s.start + s.duration});
  }
  return out;
}

void FaultInjector::bind_link(const std::string& target, Link* link, std::size_t lane) {
  assert(link != nullptr);
  links_[target].push_back(link);
  lanes_[target] = lane;
}

void FaultInjector::bind_node(const std::string& target, FaultableNode* node,
                              std::size_t lane) {
  assert(node != nullptr);
  nodes_[target] = node;
  lanes_[target] = lane;
}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultSpec& spec : plan.specs()) arm_spec(spec, plan.seed());
}

void FaultInjector::arm_spec(const FaultSpec& spec, std::uint64_t plan_seed) {
  assert(spec.start >= sim_.now() && "fault plans must be armed before run()");
  assert(spec.duration > 0 && "zero-length faults are no-ops; drop them from the plan");
  const SimTime clear_at = spec.start + spec.duration;

  // Fault events belong to the lane that owns the target's state: toggling a
  // direct link's fault_down must serialize with its path's traffic, a DC
  // crash with the hub's. A no-op on plain (lane-less) simulators.
  const auto lane_it = lanes_.find(spec.target);
  const std::size_t lane = lane_it == lanes_.end() ? 0 : lane_it->second;
  const Simulator::LaneScope scope(sim_, lane);

  if (spec.kind == FaultKind::kNodeCrash) {
    auto it = nodes_.find(spec.target);
    if (it == nodes_.end()) {
      ++stats_.skipped_unbound;
      return;
    }
    FaultableNode* node = it->second;
    sim_.at(spec.start, [node] { node->fault_crash(); });
    sim_.at(clear_at, [node] { node->fault_restart(); });
    ++stats_.node_crashes;
    return;
  }

  auto it = links_.find(spec.target);
  if (it == links_.end()) {
    ++stats_.skipped_unbound;
    return;
  }
  // Copy the binding list into the closures: cheap (a few pointers), and the
  // events outlive any later rebinding.
  const std::vector<Link*> targets = it->second;

  if (spec.kind == FaultKind::kLinkDown) {
    sim_.at(spec.start, [targets] {
      for (Link* l : targets) l->set_fault_down(true);
    });
    sim_.at(clear_at, [targets] {
      for (Link* l : targets) l->set_fault_down(false);
    });
    ++stats_.link_downs;
    return;
  }

  // Brownout: each bound link gets its own degradation stream, derived from
  // (plan seed, target, window start, bind index) -- all stable identities,
  // so the extra-loss coin flips are identical however the shards are laid
  // out. Bind order is scenario-controlled and deterministic.
  const std::uint64_t window_seed =
      Rng::derive(Rng::derive(plan_seed, spec.target), static_cast<std::uint64_t>(spec.start));
  const BrownoutProfile profile = spec.brownout;
  sim_.at(spec.start, [targets, profile, window_seed] {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      targets[i]->set_degraded(profile.extra_loss, profile.extra_latency,
                               Rng::derived(window_seed, static_cast<std::uint64_t>(i)));
    }
  });
  sim_.at(clear_at, [targets] {
    for (Link* l : targets) l->clear_degraded();
  });
  ++stats_.brownouts;
}

}  // namespace jqos::netsim
