// Priority event queue for the discrete-event simulator.
//
// Events at equal timestamps are delivered in insertion order (a strict
// tie-break on a monotonic sequence number), which keeps simulations fully
// deterministic for a given seed -- a property the test suite asserts.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.h"

namespace jqos::netsim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  // Schedules `fn` at absolute time `at`; returns an id usable with cancel().
  EventId push(SimTime at, EventFn fn);

  // Lazily cancels a pending event. Cancelling an already-fired or unknown
  // id is a no-op.
  void cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  // Time of the earliest live event; only valid when !empty().
  SimTime next_time();

  // Pops and returns the earliest live event's function, advancing past any
  // cancelled entries. Only valid when !empty().
  struct Fired {
    SimTime at;
    EventFn fn;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime at;
    EventId id;
    // Ordered as a min-heap: earliest time first, then lowest id.
    bool operator>(const Entry& rhs) const {
      if (at != rhs.at) return at > rhs.at;
      return id > rhs.id;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  // Handlers stored separately so cancel() is O(1); entry ids index here.
  std::vector<EventFn> handlers_;
  std::vector<bool> cancelled_;
  EventId next_id_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace jqos::netsim
