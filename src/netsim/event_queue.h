// Priority event queue for the discrete-event simulator.
//
// Events at equal timestamps are delivered in insertion order (a strict
// tie-break on a monotonic sequence number), which keeps simulations fully
// deterministic for a given seed -- a property the test suite asserts.
//
// Two ordering backends share one slab of slot-allocated events:
//
//   kLadder  a ladder queue (Tang/Goh/Thng): far-future events sit in an
//            unsorted top tier; when needed they are spread into rungs of
//            time buckets, and only the single earliest bucket is ever
//            sorted ("bottom"). push and cancel are O(1) amortized, and
//            ordering work is amortized across every event in a bucket, so
//            dispatch stays flat as the live-event count grows. The default.
//   kHeap    the classic binary heap, O(log n) per operation. Retained as
//            the reference backend for differential tests and as the
//            baseline the event-queue microbench measures speedups against.
//
// Both backends order by (time, sequence), so for any same-seed workload
// they produce bit-identical traces -- tests/netsim_determinism_test.cc and
// tests/evq_stress_test.cc pin this.
//
// Event callbacks live in a slab of freelist-reused slots with inline
// small-buffer storage (see event_fn.h): pushing an event allocates no
// memory in steady state, and resident memory is O(live events), not
// O(events ever pushed). EventIds encode (slot, generation) so cancel is
// O(1) and cancelling a fired, cancelled, or unknown id stays a no-op.
//
// Backend selection: EventQueue() uses evq_default_backend() -- the
// process-wide programmatic override if set, else the JQOS_EVQ_BACKEND
// environment variable (heap|ladder|auto), else the ladder. CI forces each
// backend through the whole suite; benches sweep both.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "netsim/event_fn.h"

#if defined(__GNUC__) || defined(__clang__)
#define JQOS_EVQ_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define JQOS_EVQ_PREFETCH(addr) ((void)0)
#endif

namespace jqos::netsim {

using EventId = std::uint64_t;

enum class EvqBackend {
  kHeap,
  kLadder,
};

// Human-readable backend name: "heap", "ladder".
const char* evq_backend_name(EvqBackend b);

// Backend newly constructed queues use: the programmatic override if set,
// else JQOS_EVQ_BACKEND (heap|ladder|auto; bogus values warn once and fall
// through), else kLadder.
EvqBackend evq_default_backend();

// Process-wide programmatic override, used by differential tests and bench
// sweeps to force full simulations onto one backend. Not synchronized;
// switch only while no queue is being constructed on another thread.
void evq_set_default_backend(EvqBackend b);
void evq_clear_default_backend();

class EventQueue {
 public:
  EventQueue() : EventQueue(evq_default_backend()) {}
  explicit EventQueue(EvqBackend backend) : backend_(backend) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` at absolute time `at`; returns an id usable with cancel().
  EventId push(SimTime at, EventFn&& fn);

  // Lazily cancels a pending event and frees its slot. Cancelling an
  // already-fired, already-cancelled, or unknown id is a no-op.
  void cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  // Time of the earliest live event; only valid when !empty().
  SimTime next_time();

  // Pops and returns the earliest live event's function, advancing past any
  // cancelled entries. Only valid when !empty().
  struct Fired {
    SimTime at;
    EventFn fn;
  };
  Fired pop();

  // Batched extraction: moves every live event with time <= horizon into
  // `out` in delivery order and returns how many were appended. Extracted
  // events count as fired -- cancelling one afterwards is a no-op. Callers
  // whose handlers may push or cancel while the batch runs should use
  // drain() instead, which validates each event just-in-time.
  std::size_t pop_ready(SimTime horizon, std::vector<Fired>& out);

  // Runs sink(at, std::move(fn)) for every live event with time <= horizon,
  // in delivery order, and returns how many fired. The sink may push new
  // events (including at times within the horizon -- they fire in this same
  // drain, correctly ordered) and may cancel not-yet-fired ones (they are
  // skipped). This is the batched core under Simulator::run: the ladder
  // backend serves the whole loop from its pre-sorted bottom rung, and
  // because that rung is pre-sorted the upcoming slots are known early
  // enough to prefetch -- hiding the slab's DRAM latency, which a binary
  // heap (whose next pop emerges only from the reheapify) cannot do.
  // Defined here so the per-event loop and the sink inline together.
  template <typename Sink>
  std::size_t drain(SimTime horizon, Sink&& sink) {
    std::size_t fired = 0;
    if (backend_ == EvqBackend::kHeap) {
      for (;;) {
        heap_prune();
        if (heap_.empty() || heap_.front().at > horizon) break;
        const Entry e = heap_.front();
        std::pop_heap(heap_.begin(), heap_.end(), EntryGt{});
        heap_.pop_back();
        const auto slot = static_cast<std::uint32_t>(e.slot);
        EventFn fn = std::move(slots_[slot].fn);
        free_slot(slot);
        sink(e.at, std::move(fn));
        ++fired;
      }
      return fired;
    }
    for (;;) {
      // Refill / skip stale entries until the next live event is known.
      if (bottom_pos_ >= bottom_.size() || !entry_live(bottom_[bottom_pos_])) {
        if (!ladder_prepare()) break;
      }
      if (bottom_[bottom_pos_].at > horizon) break;
      // Serve a maximal run under a stable structure version: while no
      // cancel, no push into the live bottom, and no slab reallocation
      // happens, the cached pointers stay valid and the loop touches no
      // queue member but the version word. Entries cancelled before this
      // run began can still be parked in it, so each entry's sequence is
      // validated against its slot -- a read from the line the callback
      // move needs anyway.
      const Entry* data = bottom_.data();
      const std::size_t size = bottom_.size();
      Slot* slots = slots_.data();
      const std::uint64_t v = version_;
      std::size_t pos = bottom_pos_;
      while (pos < size) {
        const Entry e = data[pos];
        if (e.at > horizon) break;
        bottom_pos_ = ++pos;  // Commit before the sink, which may push.
        if (pos + 4 < size) {
          JQOS_EVQ_PREFETCH(&slots[static_cast<std::size_t>(data[pos + 4].slot)]);
        }
        const auto slot = static_cast<std::uint32_t>(e.slot);
        if (slots[slot].seq != e.seq) continue;  // Cancelled while parked.
        EventFn fn = std::move(slots[slot].fn);
        free_slot(slot);
        sink(e.at, std::move(fn));
        ++fired;
        if (version_ != v) break;  // Structure changed: re-cache.
      }
      // The outer loop re-evaluates refill, staleness, and horizon.
    }
    return fired;
  }

  EvqBackend backend() const { return backend_; }

  // Slots ever allocated -- the slab's high-water mark. Bounded by the peak
  // number of simultaneously live events; the memory regression test pins
  // this (it must NOT scale with total events pushed over a run).
  std::size_t slab_slots() const { return slots_.size(); }

  // Total capacity (in entries) of the ladder's recycled-bucket pool; 0 for
  // the heap backend. Held to O(slab_slots) by recycle_bucket -- the memory
  // regression test pins this (it must NOT scale with run length: bucket
  // consumptions feed the pool every few events, spreads drain it only when
  // a rung exhausts).
  std::size_t pooled_bucket_entries() const { return pool_entries_; }

 private:
  struct alignas(64) Slot {
    EventFn fn;
    std::uint64_t seq = 0;       // Sequence of the current occupant; 0 when free.
    std::uint32_t gen = 0;       // Bumped on each free; embedded in EventId.
    std::uint32_t next_free = 0; // Intrusive freelist link (valid when free).
  };
  static_assert(sizeof(Slot) == 64, "one cache line per event slot");

  // 16 bytes of ordering state per queued event; callbacks stay in the slab.
  struct Entry {
    SimTime at;
    std::uint64_t seq : 40;  // Monotonic insertion order; 2^40 events/run.
    std::uint64_t slot : 24;
  };
  static_assert(sizeof(Entry) == 16);

  struct Rung {
    SimTime base = 0;        // Time at the start of bucket 0.
    std::uint32_t shift = 0; // Bucket width = 1 << shift ticks (a shift, not
                             // a divide, on the per-event scatter path).
    std::size_t cur = 0;     // Next bucket index not yet consumed.
    std::size_t count = 0;   // Entries parked in buckets[cur..].
    std::vector<std::vector<Entry>> buckets;
  };

  // Delivery order: earliest time first, then lowest sequence (= insertion
  // order at equal timestamps). Both backends order by exactly this.
  // Functors (not function pointers) so sort/heap comparisons inline.
  struct EntryLt {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
  };
  struct EntryGt {
    bool operator()(const Entry& a, const Entry& b) const { return EntryLt{}(b, a); }
  };

  std::uint32_t alloc_slot(EventFn&& fn);
  void free_slot(std::uint32_t slot);
  bool entry_live(const Entry& e) const {
    return slots_[static_cast<std::size_t>(e.slot)].seq == e.seq;
  }

  void heap_prune();

  void ladder_reset();
  void ladder_push(const Entry& e);
  // Ensures bottom_[bottom_pos_] is the earliest live event (spreading top /
  // spawning rungs / sorting a bucket as needed); false when queue is empty.
  bool ladder_prepare();
  // Sorts `bucket` (whose span starts at `start` and is `width` ticks wide)
  // into bottom_, picking counting sort when the span is narrow.
  void sort_into_bottom(std::vector<Entry>& bucket, SimTime start, std::uint64_t width);
  void spawn_rung(SimTime base, std::uint64_t span, const std::vector<Entry>& entries);
  void recycle_bucket(std::vector<Entry>&& v);

  EvqBackend backend_;

  // Bumped whenever a mutation could invalidate a cached serve run in
  // drain(): a cancel (entries may go stale), a push landing in the live
  // bottom (its storage may move), a slab reallocation (slot pointers move),
  // or a ladder reset. Rung-bucket and top pushes leave it untouched, which
  // is what lets steady-state dispatch stay in the cached loop.
  std::uint64_t version_ = 0;

  // ---- slab ----
  std::vector<Slot> slots_;
  static constexpr std::uint32_t kNoFree = 0xffffffffu;
  std::uint32_t free_head_ = kNoFree;  // LIFO: a just-freed slot is cache-hot.
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;

  // ---- heap backend ----
  std::vector<Entry> heap_;

  // ---- ladder backend ----
  std::vector<Entry> top_;     // Unsorted; every entry has at >= top_start_.
  SimTime top_start_;          // Initialized by ladder_reset() on first push.
  std::vector<Rung> rungs_;    // Coarsest first; back() is being drained.
  std::vector<Entry> bottom_;  // Sorted (at, seq); drained from bottom_pos_.
  std::size_t bottom_pos_ = 0;
  std::vector<std::uint32_t> counts_;  // Scratch for the counting sort.
  bool ladder_init_ = false;
  // Retired bucket vectors, recycled with their capacity so steady-state
  // spreads allocate nothing. Bounded by TOTAL capacity (pool_entries_,
  // kept O(peak live events) by recycle_bucket), not just vector count:
  // consumptions feed the pool far more often than spreads draw from it,
  // so a count-only cap lets pooled storage ratchet up for the whole run.
  std::vector<std::vector<Entry>> bucket_pool_;
  std::size_t pool_entries_ = 0;  // Sum of capacities pooled above.
};

}  // namespace jqos::netsim
