#include "netsim/simulator.h"

#include <limits>
#include <stdexcept>

namespace jqos::netsim {

EventId Simulator::at(SimTime t, EventFn fn) {
  if (t < now_) throw std::invalid_argument("Simulator::at: time in the past");
  return queue_.push(t, std::move(fn));
}

EventId Simulator::after(SimDuration d, EventFn fn) {
  if (d < 0) d = 0;
  return queue_.push(now_ + d, std::move(fn));
}

void Simulator::run() {
  // One drain call empties the queue: events scheduled by handlers during
  // the drain (always >= now_) are picked up by the same batched loop.
  queue_.drain(std::numeric_limits<SimTime>::max(), [this](SimTime at, EventFn&& fn) {
    now_ = at;
    ++processed_;
    fn();
  });
}

void Simulator::run_until(SimTime deadline) {
  queue_.drain(deadline, [this](SimTime at, EventFn&& fn) {
    now_ = at;
    ++processed_;
    fn();
  });
  if (now_ < deadline) now_ = deadline;
}

std::size_t Simulator::step(std::size_t n) {
  std::size_t ran = 0;
  while (ran < n && !queue_.empty()) {
    auto [at, fn] = queue_.pop();
    now_ = at;
    ++processed_;
    ++ran;
    fn();
  }
  return ran;
}

}  // namespace jqos::netsim
