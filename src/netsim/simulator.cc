#include "netsim/simulator.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

namespace jqos::netsim {
namespace {

// The ambient lane context of this thread. Set by LaneScope (build-time
// wiring, serial handlers) and by the window dispatch loop; consulted by
// now()/at()/after()/cancel() and Channel::schedule. Keyed by the Simulator
// pointer so several shards' simulators can interleave on one thread
// without confusing each other.
struct LaneTls {
  Simulator* sim = nullptr;
  std::size_t lane = 0;
  SimTime now = 0;         // Executing event's timestamp (windows only).
  SimTime window_end = 0;  // Exclusive end of the current window.
  bool in_window = false;
};
thread_local LaneTls g_tls;

// EventQueue ids use bits [0,24) for the slot and [32,64) for the
// generation; bits [24,32) are always zero and carry the lane tag here.
constexpr int kLaneTagShift = 24;
constexpr EventId kLaneTagMask = EventId{0xffu} << kLaneTagShift;
constexpr EventId kSerialTag = 0xffu;

EventId tag_id(std::size_t lane, EventId raw) {
  const EventId tag = lane == Simulator::kSerialLane ? kSerialTag : static_cast<EventId>(lane);
  return raw | (tag << kLaneTagShift);
}

std::string us(SimTime t) { return std::to_string(t) + "us"; }

}  // namespace

// ---------------------------------------------------------------- plain mode

EventId Simulator::at(SimTime t, EventFn fn) {
  if (!lane_mode_) {
    if (t < now_) throw std::invalid_argument("Simulator::at: time in the past");
    return queue_.push(t, std::move(fn));
  }
  return lane_push(t, std::move(fn), /*is_delay=*/false, 0);
}

EventId Simulator::after(SimDuration d, EventFn fn) {
  if (d < 0) d = 0;
  if (!lane_mode_) return queue_.push(now_ + d, std::move(fn));
  return lane_push(0, std::move(fn), /*is_delay=*/true, d);
}

void Simulator::run() {
  if (lane_mode_) {
    run_lanes(kMaxSimTime - 1, /*settle_now=*/false);
    return;
  }
  // One drain call empties the queue: events scheduled by handlers during
  // the drain (always >= now_) are picked up by the same batched loop.
  queue_.drain(std::numeric_limits<SimTime>::max(), [this](SimTime at, EventFn&& fn) {
    now_ = at;
    ++processed_;
    fn();
  });
}

void Simulator::run_until(SimTime deadline) {
  if (lane_mode_) {
    run_lanes(std::min(deadline, kMaxSimTime - 1), /*settle_now=*/true);
    return;
  }
  queue_.drain(deadline, [this](SimTime at, EventFn&& fn) {
    now_ = at;
    ++processed_;
    fn();
  });
  if (now_ < deadline) now_ = deadline;
}

std::size_t Simulator::step(std::size_t n) {
  if (lane_mode_) {
    throw std::logic_error(
        "Simulator::step: unavailable in lane mode (events advance in whole "
        "windows); drive the clock with run_until instead");
  }
  std::size_t ran = 0;
  while (ran < n && !queue_.empty()) {
    auto [at, fn] = queue_.pop();
    now_ = at;
    ++processed_;
    ++ran;
    fn();
  }
  return ran;
}

// ----------------------------------------------------------------- lane mode

void Simulator::configure_lanes(std::size_t lanes, unsigned threads) {
  if (lane_mode_) {
    throw std::logic_error("Simulator::configure_lanes: lanes already configured");
  }
  if (lanes == 0 || lanes > kMaxLanes) {
    throw std::invalid_argument(
        "Simulator::configure_lanes: lane count " + std::to_string(lanes) +
        " is invalid; expected 1.." + std::to_string(kMaxLanes) +
        " (use WanScenarioParams::lanes = 0 / unset JQOS_SIM_LANES to disable lanes)");
  }
  lanes_.resize(lanes);
  lanes_[0].q = &queue_;
  for (std::size_t i = 1; i < lanes; ++i) {
    lanes_[i].owned = std::make_unique<EventQueue>(queue_.backend());
    lanes_[i].q = lanes_[i].owned.get();
  }
  serial_ = std::make_unique<EventQueue>(queue_.backend());
  lane_threads_ = threads == 0 ? 1 : threads;
  if (lane_threads_ > lanes) lane_threads_ = static_cast<unsigned>(lanes);
  if (lane_threads_ > 1) pool_ = std::make_unique<WorkerPool>(lane_threads_);
  lane_mode_ = true;
}

SimTime Simulator::lane_now() const {
  if (g_tls.sim == this && g_tls.in_window) return g_tls.now;
  return now_;
}

bool Simulator::lanes_idle() const {
  for (const auto& lane : lanes_) {
    if (!lane.q->empty()) return false;
  }
  return serial_->empty();
}

std::size_t Simulator::ambient_lane() const {
  return g_tls.sim == this ? g_tls.lane : 0;
}

std::size_t Simulator::current_lane() const { return lane_mode_ ? ambient_lane() : 0; }

EventQueue& Simulator::lane_queue(std::size_t lane) {
  if (!lane_mode_) return queue_;
  if (lane == kSerialLane) return *serial_;
  if (lane >= lanes_.size()) {
    throw std::invalid_argument("Simulator::lane_queue: no lane " + std::to_string(lane));
  }
  return *lanes_[lane].q;
}

EventId Simulator::lane_push(SimTime t, EventFn&& fn, bool is_delay, SimDuration d) {
  const bool here = g_tls.sim == this;
  const SimTime ref = here && g_tls.in_window ? g_tls.now : now_;
  if (is_delay) {
    t = ref + d;
  } else if (t < ref) {
    throw std::invalid_argument("Simulator::at: time in the past");
  }
  const std::size_t lane = here ? g_tls.lane : 0;
  if (lane == kSerialLane) return tag_id(lane, serial_->push(t, std::move(fn)));
  return tag_id(lane, lanes_[lane].q->push(t, std::move(fn)));
}

void Simulator::cancel(EventId id) {
  if (!lane_mode_) {
    queue_.cancel(id);
    return;
  }
  const auto tag = static_cast<std::size_t>((id & kLaneTagMask) >> kLaneTagShift);
  const std::size_t lane = tag == kSerialTag ? kSerialLane : tag;
  const EventId raw = id & ~kLaneTagMask;
  if (g_tls.sim == this && g_tls.in_window) {
    // Mid-window a lane may only touch its own queue. A foreign-lane id is
    // an O(1) no-op: by the lane contract its event either already fired or
    // belongs to state this lane must not reach into concurrently. (Own-lane
    // cancels, including of stale ids, behave exactly as in plain mode.)
    if (lane != g_tls.lane) return;
    lanes_[lane].q->cancel(raw);
    return;
  }
  if (lane == kSerialLane) {
    serial_->cancel(raw);
    return;
  }
  if (lane >= lanes_.size()) return;  // Stale id from another configuration.
  lanes_[lane].q->cancel(raw);
}

Simulator::Channel& Simulator::make_channel(std::uint64_t key, std::size_t target_lane,
                                            SimDuration min_delay) {
  if (!lane_mode_) {
    throw std::logic_error("Simulator::make_channel: call configure_lanes first");
  }
  if (g_tls.sim == this && g_tls.in_window) {
    throw std::logic_error("Simulator::make_channel: cannot declare channels mid-window");
  }
  if (target_lane != kSerialLane && target_lane >= lanes_.size()) {
    throw std::invalid_argument("Simulator::make_channel: no lane " +
                                std::to_string(target_lane));
  }
  if (target_lane != kSerialLane) {
    if (min_delay <= 0) {
      throw std::invalid_argument(
          "Simulator::make_channel: channel " + std::to_string(key) +
          " declares zero lookahead (min_delay=" + std::to_string(min_delay) +
          "); a cross-lane edge with no minimum latency cannot be simulated "
          "conservatively -- keep both endpoints in one lane, or give the "
          "edge a positive propagation floor");
    }
    lookahead_ = std::min(lookahead_, min_delay);
  }
  for (const auto& c : channels_) {
    if (c->key_ == key) {
      throw std::invalid_argument("Simulator::make_channel: duplicate channel key " +
                                  std::to_string(key));
    }
  }
  channels_.emplace_back(new Channel(this, key, target_lane, min_delay));
  return *channels_.back();
}

void Simulator::Channel::schedule(SimTime at, EventFn fn) {
  sim_->channel_schedule(*this, at, std::move(fn));
}

void Simulator::push_raw(std::size_t target, SimTime t, EventFn&& fn) {
  if (target == kSerialLane) {
    serial_->push(t, std::move(fn));
  } else {
    lanes_[target].q->push(t, std::move(fn));
  }
}

void Simulator::channel_schedule(Channel& ch, SimTime t, EventFn&& fn) {
  if (g_tls.sim == this && g_tls.in_window) {
    if (t < g_tls.window_end) {
      throw std::logic_error(
          "Simulator: conservative lookahead violated on channel " + std::to_string(ch.key_) +
          ": event for " + us(t) + " is inside the executing window (ends " +
          us(g_tls.window_end) + "); cross-lane events must honor the channel's declared "
          "min_delay (" + us(ch.min_delay_) + " here, global lookahead " + us(lookahead_) +
          ") -- a same-time cross-lane edge cannot be simulated conservatively");
    }
#ifndef NDEBUG
    // One source lane per channel per window: the sequence counter below is
    // unsynchronized on purpose (a race-free atomic would still make the
    // merge order depend on thread interleaving). Windows have strictly
    // increasing end times within a run, so window_end identifies the window.
    if (ch.dbg_window_ == g_tls.window_end) {
      assert(ch.dbg_lane_ == g_tls.lane &&
             "Simulator: two lanes scheduled on one channel in the same window");
    } else {
      ch.dbg_window_ = g_tls.window_end;
      ch.dbg_lane_ = g_tls.lane;
    }
#endif
    auto& outbox = lanes_[g_tls.lane].outbox;
    outbox.push_back(Outmsg{t, ch.key_, ch.seq_++, ch.target_, std::move(fn)});
    return;
  }
  // Outside windows -- build time, serial-at-barrier handlers, drains
  // between runs -- execution is single-threaded and already deterministic,
  // so inject directly. The sequence still advances: the channel's send
  // order is one monotone stream regardless of which side of a window each
  // send happened on.
  if (t < now_) {
    throw std::invalid_argument("Simulator: channel " + std::to_string(ch.key_) +
                                " schedule at " + us(t) + " is in the past (now " +
                                us(now_) + ")");
  }
  ch.seq_++;
  push_raw(ch.target_, t, std::move(fn));
}

Simulator::LaneScope::LaneScope(Simulator& sim, std::size_t lane) {
  if (g_tls.sim == &sim && g_tls.in_window) {
    throw std::logic_error("Simulator::LaneScope: the executing lane cannot be overridden "
                           "inside a window");
  }
  if (sim.lane_mode_ && lane != kSerialLane && lane >= sim.lanes_.size()) {
    throw std::invalid_argument("Simulator::LaneScope: no lane " + std::to_string(lane));
  }
  prev_sim_ = g_tls.sim;
  prev_lane_ = g_tls.lane;
  prev_now_ = g_tls.now;
  prev_window_end_ = g_tls.window_end;
  prev_in_window_ = g_tls.in_window;
  g_tls = LaneTls{&sim, lane, 0, 0, false};
}

Simulator::LaneScope::~LaneScope() {
  g_tls = LaneTls{prev_sim_, prev_lane_, prev_now_, prev_window_end_, prev_in_window_};
}

SimTime Simulator::run_window(SimTime window_end) {
  auto drain_one = [this, window_end](std::size_t i) {
    LaneState& lane = lanes_[i];
    const LaneTls saved = g_tls;
    g_tls = LaneTls{this, i, now_, window_end, true};
    try {
      // Window [T, E): fire events with time <= E-1. An event exactly AT the
      // horizon E belongs to the next window (it may be a tie with a
      // cross-lane injection, and ties are resolved at barriers).
      lane.window_fired = lane.q->drain(window_end - 1, [](SimTime at, EventFn&& fn) {
        g_tls.now = at;
        fn();
      });
      // g_tls.now is the timestamp of the lane's last fired event; remember
      // it so run() can settle the clock on the final event like plain mode.
      lane.window_last = lane.window_fired > 0 ? g_tls.now : kSimStart - 1;
    } catch (...) {
      g_tls = saved;
      throw;
    }
    g_tls = saved;
  };
  if (pool_) {
    pool_->run(lanes_.size(), drain_one);
  } else {
    for (std::size_t i = 0; i < lanes_.size(); ++i) drain_one(i);
  }

  // Barrier: merge the windows' cross-lane events in canonical
  // (time, channel key, channel sequence) order -- a pure function of the
  // traffic, independent of lane layout and thread interleaving -- and
  // inject them into their target queues before the next window begins.
  SimTime last_fired = kSimStart - 1;
  inject_scratch_.clear();
  for (auto& lane : lanes_) {
    processed_ += lane.window_fired;
    lane.window_fired = 0;
    last_fired = std::max(last_fired, lane.window_last);
    for (auto& msg : lane.outbox) inject_scratch_.push_back(std::move(msg));
    lane.outbox.clear();
  }
  std::sort(inject_scratch_.begin(), inject_scratch_.end(),
            [](const Outmsg& a, const Outmsg& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.key != b.key) return a.key < b.key;
              return a.seq < b.seq;
            });
  for (auto& msg : inject_scratch_) push_raw(msg.target, msg.at, std::move(msg.fn));
  inject_scratch_.clear();
  return last_fired;
}

void Simulator::run_lanes(SimTime deadline, bool settle_now) {
  SimTime last_fired = kSimStart - 1;
  for (;;) {
    // 1) Serial events due at this barrier run single-threaded, with every
    // lane parked and the clock at the barrier. Their pushes stay serial
    // unless they scope into a lane.
    if (!serial_->empty() && serial_->next_time() <= now_) {
      const LaneTls saved = g_tls;
      g_tls = LaneTls{this, kSerialLane, now_, 0, false};
      try {
        const std::size_t fired = serial_->drain(now_, [](SimTime, EventFn&& fn) { fn(); });
        processed_ += fired;
        if (fired > 0) last_fired = std::max(last_fired, now_);
      } catch (...) {
        g_tls = saved;
        throw;
      }
      g_tls = saved;
    }

    // 2) Find the next thing to do.
    SimTime m = kMaxSimTime;
    for (auto& lane : lanes_) {
      if (!lane.q->empty()) m = std::min(m, lane.q->next_time());
    }
    const SimTime next_serial = serial_->empty() ? kMaxSimTime : serial_->next_time();
    const SimTime first = std::min(m, next_serial);
    if (first == kMaxSimTime || first > deadline) break;
    if (next_serial <= m) {
      // A serial event comes first (ties go to the serial lane -- the
      // convention that makes session bookkeeping observe a settled world).
      now_ = next_serial;
      continue;
    }

    // 3) Window [now_, e): every lane may run to e-1 because no cross-lane
    // event can be injected earlier than m + lookahead.
    SimTime e = lookahead_ >= kMaxSimTime - m ? kMaxSimTime : m + lookahead_;
    e = std::min(e, next_serial);
    e = std::min(e, deadline + 1);  // Callers cap deadline at kMaxSimTime-1.
    last_fired = std::max(last_fired, run_window(e));
    now_ = std::min(e, deadline);
  }
  if (settle_now) {
    if (now_ < deadline) now_ = deadline;
  } else if (last_fired >= kSimStart) {
    // run(): like plain mode, the clock settles on the final event, not on
    // the last barrier.
    now_ = last_fired;
  }
}

}  // namespace jqos::netsim
