#include "netsim/simulator.h"

#include <stdexcept>

namespace jqos::netsim {

EventId Simulator::at(SimTime t, EventFn fn) {
  if (t < now_) throw std::invalid_argument("Simulator::at: time in the past");
  return queue_.push(t, std::move(fn));
}

EventId Simulator::after(SimDuration d, EventFn fn) {
  if (d < 0) d = 0;
  return queue_.push(now_ + d, std::move(fn));
}

void Simulator::run() {
  while (!queue_.empty()) {
    auto [at, fn] = queue_.pop();
    now_ = at;
    ++processed_;
    fn();
  }
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    auto [at, fn] = queue_.pop();
    now_ = at;
    ++processed_;
    fn();
  }
  if (now_ < deadline) now_ = deadline;
}

std::size_t Simulator::step(std::size_t n) {
  std::size_t ran = 0;
  while (ran < n && !queue_.empty()) {
    auto [at, fn] = queue_.pop();
    now_ = at;
    ++processed_;
    ++ran;
    fn();
  }
  return ran;
}

}  // namespace jqos::netsim
