// Queue disciplines for finite-bandwidth links: the policy half of the
// link-layer split. `Link` owns the mechanism (analytic FIFO serialization
// via tx_free_at_); a QueueDisc decides, per arriving packet, whether it is
// enqueued, ECN-marked, or dropped.
//
// The simulator never materializes a packet queue: because the FIFO order
// and the serialization times are analytically known at enqueue time, every
// AQM decision can be made at arrival using the packet's *predicted* dequeue
// time as the clock ("virtual dequeue"). This keeps the per-packet cost at
// O(1) with no extra events, and — critically for the determinism contract —
// keeps all decisions in arrival order, which is also dequeue order.
//
// Implementations:
//   TailDropFifo  byte-capped drop-tail (the default; a finite buffer where
//                 the pre-refactor link modelled an infinite one)
//   RedQueue      Random Early Detection (EWMA average queue, probabilistic
//                 early drop/mark between min/max thresholds; Floyd/Jacobson)
//   CoDelQueue    Controlled Delay (sojourn-time target/interval control law
//                 with inverse-sqrt drop spacing; Nichols/Jacobson)
//
// RED and CoDel can mark ECT packets (Packet::ecn_capable) with CE instead
// of dropping, which the TCP model echoes back to the sender (see
// docs/TRANSPORT.md for the end-to-end ECN wiring).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "common/rng.h"
#include "common/sim_time.h"

namespace jqos::netsim {

enum class QdiscKind : std::uint8_t { kTailDrop = 0, kRed = 1, kCoDel = 2 };

const char* qdisc_kind_name(QdiscKind k);
std::optional<QdiscKind> parse_qdisc_kind(std::string_view name);

// The JQOS_QDISC override (taildrop|red|codel), read once at first use;
// bogus values warn once and fall back. Applied only where the config left
// the kind unset, so tests that pin a discipline are immune to the env.
QdiscKind qdisc_kind_from_env(QdiscKind fallback = QdiscKind::kTailDrop);

struct QdiscConfig {
  // nullopt resolves through JQOS_QDISC, defaulting to tail-drop.
  std::optional<QdiscKind> kind;

  // Hard byte cap shared by every discipline. The default comfortably
  // exceeds the largest backlog any existing scenario builds (~140 KB in
  // bench_fig10), so capping the previously infinite buffer changes no
  // pinned trace.
  std::size_t limit_bytes = 1 << 20;

  // Mark ECT packets with CE instead of dropping (RED/CoDel early action
  // only; the hard byte cap always drops).
  bool ecn = true;

  // RED knobs. Zero thresholds derive from limit_bytes (min = limit/8,
  // max = limit/4) so a bare {kind = kRed} is usable.
  std::size_t red_min_bytes = 0;
  std::size_t red_max_bytes = 0;
  double red_max_p = 0.1;  // Mark probability at the max threshold.
  double red_wq = 0.002;   // EWMA weight per arrival.

  // CoDel knobs (RFC 8289 defaults).
  SimDuration codel_target = msec(5);
  SimDuration codel_interval = msec(100);

  QdiscKind resolved_kind() const {
    return kind ? *kind : qdisc_kind_from_env();
  }
};

enum class QdiscVerdict : std::uint8_t { kEnqueue = 0, kMark = 1, kDrop = 2 };

// Everything a discipline may inspect about the analytic FIFO at arrival.
struct QueueSnapshot {
  SimTime now = 0;        // Arrival time.
  SimTime dequeue_at = 0; // When this packet would start serializing (>= now).
  std::size_t backlog_bytes = 0;    // Queued ahead of this packet.
  std::size_t backlog_packets = 0;
  std::size_t packet_bytes = 0;     // Wire size of the arriving packet.
  bool ecn_capable = false;         // Sender set ECT; marking is meaningful.

  SimDuration sojourn() const { return dequeue_at - now; }
};

class QueueDisc {
 public:
  virtual ~QueueDisc() = default;
  virtual const char* name() const = 0;
  // Called once per offered packet, in arrival (== dequeue) order.
  virtual QdiscVerdict admit(const QueueSnapshot& q) = 0;
};

using QueueDiscPtr = std::unique_ptr<QueueDisc>;

// ---- concrete disciplines (exposed for unit tests) ----------------------

class TailDropFifo final : public QueueDisc {
 public:
  explicit TailDropFifo(const QdiscConfig& cfg) : limit_bytes_(cfg.limit_bytes) {}
  const char* name() const override { return "taildrop"; }
  QdiscVerdict admit(const QueueSnapshot& q) override;

 private:
  std::size_t limit_bytes_;
};

class RedQueue final : public QueueDisc {
 public:
  RedQueue(const QdiscConfig& cfg, Rng rng);
  const char* name() const override { return "red"; }
  QdiscVerdict admit(const QueueSnapshot& q) override;

  double avg_bytes() const { return avg_; }

 private:
  std::size_t limit_bytes_;
  std::size_t min_th_;
  std::size_t max_th_;
  double max_p_;
  double wq_;
  bool ecn_;
  Rng rng_;
  double avg_ = 0.0;  // EWMA of the backlog, in bytes.
  int count_ = -1;    // Packets since the last mark/drop (RED's `count`).
};

// The instantaneous-probability half of RED's drop decision, exposed so the
// unit test can pin the curve against hand-computed values.
double red_mark_probability(double avg_bytes, std::size_t min_th, std::size_t max_th,
                            double max_p);

class CoDelQueue final : public QueueDisc {
 public:
  explicit CoDelQueue(const QdiscConfig& cfg);
  const char* name() const override { return "codel"; }
  QdiscVerdict admit(const QueueSnapshot& q) override;

  bool dropping() const { return dropping_; }
  std::uint32_t drop_count() const { return count_; }

 private:
  QdiscVerdict mark_or_drop(const QueueSnapshot& q);
  SimTime control_law(SimTime t) const;

  std::size_t limit_bytes_;
  SimDuration target_;
  SimDuration interval_;
  bool ecn_;
  SimTime first_above_ = 0;  // 0 = sojourn currently below target.
  SimTime drop_next_ = 0;    // Next scheduled drop while in dropping state.
  bool dropping_ = false;
  std::uint32_t count_ = 0;  // Drops in the current dropping state.
};

// Builds the configured discipline. `rng` feeds RED's probabilistic drops;
// derive it from a stable identity (Network uses the (from, to) link pair)
// so traces are independent of link-creation order.
QueueDiscPtr make_queue_disc(const QdiscConfig& cfg, Rng rng);

}  // namespace jqos::netsim
