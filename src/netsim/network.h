// The network fabric: nodes addressed by NodeId, connected by directed
// links. Nodes (end hosts, data centers) implement the Node interface and
// call Network::send to transmit; the fabric applies the link's loss/delay
// processes and hands surviving packets to the destination node.
#pragma once

#include <map>
#include <memory>
#include <utility>

#include "common/packet.h"
#include "netsim/link.h"
#include "netsim/simulator.h"

namespace jqos::netsim {

class Node {
 public:
  virtual ~Node() = default;

  virtual NodeId id() const = 0;

  // Delivery upcall: `pkt` survived the link and has arrived at this node.
  virtual void handle_packet(const PacketPtr& pkt) = 0;
};

class Network {
 public:
  explicit Network(Simulator& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& sim() { return sim_; }

  // Allocates a fresh NodeId (ids start at 1; 0 is kInvalidNode).
  NodeId allocate_id() { return next_id_++; }

  // Registers a node; the node must outlive the network. A node must be
  // attached before packets can be delivered to it.
  void attach(Node& node);

  // Installs a directed link. Replaces any existing from->to link.
  Link& add_link(NodeId from, NodeId to, LatencyModelPtr latency, LossModelPtr loss,
                 double bandwidth_bps = 0.0, bool preserve_order = true);

  // Sends pkt->dst via the from->dst link. Requires the link to exist;
  // packets to unattached or unreachable nodes are counted and dropped.
  void send(NodeId from, const PacketPtr& pkt);

  Link* link(NodeId from, NodeId to);
  const Link* link(NodeId from, NodeId to) const;

  std::uint64_t routing_failures() const { return routing_failures_; }

 private:
  Simulator& sim_;
  NodeId next_id_ = 1;
  std::map<NodeId, Node*> nodes_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Link>> links_;
  std::uint64_t routing_failures_ = 0;
};

}  // namespace jqos::netsim
