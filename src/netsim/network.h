// The network fabric: nodes addressed by NodeId, connected by directed
// links. Nodes (end hosts, data centers) implement the Node interface and
// call Network::send to transmit; the fabric applies the link's loss/delay
// processes and hands surviving packets to the destination node.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/packet.h"
#include "netsim/link.h"
#include "netsim/queue_disc.h"
#include "netsim/simulator.h"

namespace jqos::netsim {

class Node {
 public:
  virtual ~Node() = default;

  virtual NodeId id() const = 0;

  // Delivery upcall: `pkt` survived the link and has arrived at this node.
  virtual void handle_packet(const PacketPtr& pkt) = 0;
};

class Network {
 public:
  // `qdisc` is the default queue-disc configuration applied to every
  // finite-bandwidth link (zero-bandwidth links have no queue and never get
  // a discipline). RED's probabilistic drops draw from an Rng derived from
  // `qdisc_seed` and the (from, to) pair — a stable identity, so traces are
  // independent of link-creation order.
  explicit Network(Simulator& sim, QdiscConfig qdisc = {}, std::uint64_t qdisc_seed = 0)
      : sim_(sim), qdisc_(std::move(qdisc)), qdisc_seed_(qdisc_seed) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& sim() { return sim_; }

  // Allocates a fresh NodeId (ids start at 1; 0 is kInvalidNode).
  NodeId allocate_id() { return next_id_++; }

  // Registers a node; the node must outlive the network. A node must be
  // attached before packets can be delivered to it.
  void attach(Node& node);

  // Installs a directed link. Replaces any existing from->to link.
  // Finite-bandwidth links get a queue disc built from the network-wide
  // config (or the per-link override of the second form).
  Link& add_link(NodeId from, NodeId to, LatencyModelPtr latency, LossModelPtr loss,
                 double bandwidth_bps = 0.0, bool preserve_order = true);
  Link& add_link(NodeId from, NodeId to, LatencyModelPtr latency, LossModelPtr loss,
                 double bandwidth_bps, bool preserve_order, const QdiscConfig& qdisc);

  const QdiscConfig& qdisc_config() const { return qdisc_; }

  // Sends pkt->dst via the from->dst link. Requires the link to exist;
  // packets to unattached or unreachable nodes are counted and dropped.
  // By-value so a temporary moves through to the scheduled delivery event
  // without refcount traffic.
  void send(NodeId from, PacketPtr pkt);

  Link* link(NodeId from, NodeId to) {
    if (from < out_.size()) {
      for (const auto& [dst, l] : out_[from]) {
        if (dst == to) return l;
      }
    }
    return nullptr;
  }
  const Link* link(NodeId from, NodeId to) const {
    return const_cast<Network*>(this)->link(from, to);
  }

  // Visits every installed link (deterministic (from, to) order); used by
  // the experiment harness to aggregate per-link counters such as
  // fault_drops without enumerating the topology itself.
  template <typename Fn>
  void for_each_link(Fn&& fn) const {
    for (const auto& [key, l] : links_) fn(*l);
  }

  std::uint64_t routing_failures() const {
    return routing_failures_.load(std::memory_order_relaxed);
  }

 private:
  Simulator& sim_;
  QdiscConfig qdisc_;
  std::uint64_t qdisc_seed_ = 0;
  Node* node(NodeId id) const { return id < nodes_.size() ? nodes_[id] : nullptr; }

  NodeId next_id_ = 1;
  // Per-packet structures: node lookup is a dense array indexed by NodeId
  // (allocate_id hands out small consecutive ids), and link lookup is a
  // per-source adjacency list scanned linearly -- real fan-out is a handful
  // of destinations, so the scan beats a tree or hash walk. The ownership
  // map below keeps the deterministic (from, to) iteration order that
  // for_each_link promises; it is never touched on the packet path.
  std::vector<Node*> nodes_;
  std::vector<std::vector<std::pair<NodeId, Link*>>> out_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Link>> links_;
  // Atomic: in lane mode a delivery sink (which counts unattached targets)
  // runs in the RECEIVING lane while Network::send runs in senders' lanes.
  std::atomic<std::uint64_t> routing_failures_{0};
};

}  // namespace jqos::netsim
