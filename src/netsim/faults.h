// Deterministic fault injection for the simulated deployment.
//
// A FaultPlan is a declarative, seeded schedule of faults -- link down/up,
// link brownout (a degraded loss/latency overlay swapped in temporarily),
// and node (data center) crash/restart. A FaultInjector binds the plan's
// symbolic targets ("dc:FRA", "link:FRA>LHR", "direct:3") to the concrete
// links and nodes of one simulation and schedules every fault as an ordinary
// simulator event, so fault traces are bit-identical across thread counts
// and event-queue backends.
//
// Determinism contract: seeded fault processes (link_flaps) derive their
// random stream via Rng::derive(seed, target) -- a pure function of stable
// identities, never of construction order or shard layout. Shard safety: a
// fault may only touch entities inside one (DC1, DC2) interaction group;
// the scenario layer enforces that at plan-validation time, and arm() simply
// skips targets the local shard does not own (counted in stats), so every
// shard replica of a shared entity faults at the same simulated time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_time.h"
#include "netsim/link.h"
#include "netsim/loss_model.h"
#include "netsim/simulator.h"

namespace jqos::netsim {

enum class FaultKind {
  kLinkDown,      // Link drops everything for the window (fault_drops).
  kLinkBrownout,  // Link keeps forwarding but with extra loss + latency.
  kNodeCrash,     // Node loses all service state, ignores traffic while down.
};

const char* to_string(FaultKind kind);

// Degraded operating point applied to a link during a brownout.
struct BrownoutProfile {
  double extra_loss = 0.05;            // Additional Bernoulli drop probability.
  SimDuration extra_latency = msec(50);  // Added to every arrival.
};

struct FaultSpec {
  FaultKind kind = FaultKind::kLinkDown;
  std::string target;       // Symbolic name the injector binds ("dc:FRA").
  SimTime start = 0;
  SimDuration duration = 0;  // Fault clears at start + duration.
  BrownoutProfile brownout;  // kLinkBrownout only.
};

// A declarative fault schedule. Builders return *this so plans read as a
// sentence; specs() is the materialized schedule in insertion order.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0) : seed_(seed) {}

  FaultPlan& link_down(std::string target, SimTime start, SimDuration duration);
  FaultPlan& link_brownout(std::string target, SimTime start, SimDuration duration,
                           BrownoutProfile profile = {});
  FaultPlan& node_crash(std::string target, SimTime start, SimDuration duration);

  // Seeded recurring link-down process: materializes the outage windows of
  // `params` over [kSimStart, horizon) using Rng::derive(seed, target), the
  // same draw sequence as make_outage_over -- so a wall-clock outage process
  // and a fault-layer flap schedule with the same seed agree exactly.
  FaultPlan& link_flaps(std::string target, const OutageParams& params, SimTime horizon);

  std::uint64_t seed() const { return seed_; }
  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }

  // Fault windows, for classifying deliveries as inside/outside a fault.
  // Unsorted (insertion order); filter by target with windows_for().
  std::vector<OutageWindow> windows() const;
  std::vector<OutageWindow> windows_for(std::string_view target) const;

 private:
  std::uint64_t seed_;
  std::vector<FaultSpec> specs_;
};

// Implemented by nodes that can crash and restart (DataCenter). A crash
// wipes soft state (installed services decide what that means); a restart
// brings the node back cold.
class FaultableNode {
 public:
  virtual ~FaultableNode() = default;
  virtual void fault_crash() = 0;
  virtual void fault_restart() = 0;
};

struct FaultInjectorStats {
  std::uint64_t link_downs = 0;      // Down windows scheduled.
  std::uint64_t brownouts = 0;       // Brownout windows scheduled.
  std::uint64_t node_crashes = 0;    // Crash windows scheduled.
  std::uint64_t skipped_unbound = 0;  // Plan targets this shard does not own.
};

// Binds plan targets to one simulation's links/nodes and schedules the
// plan's faults as simulator events. One injector per shard; each shard
// arms the same plan, and unbound targets (entities living in other shards)
// are skipped, so a DC replicated into several shards crashes everywhere at
// the same simulated instant.
class FaultInjector {
 public:
  explicit FaultInjector(Simulator& sim) : sim_(sim) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // A target may bind several directed links (both directions of a site
  // pair); a fault hits all of them together. `lane` is the simulator lane
  // that OWNS the bound entity (mutates its state): arm() schedules the
  // target's fault events into that lane so toggling fault state never
  // races the entity's own traffic. Ignored (lane 0) outside lane mode; all
  // bindings of one target must name the same lane.
  void bind_link(const std::string& target, Link* link,
                 std::size_t lane = 0);
  void bind_node(const std::string& target, FaultableNode* node,
                 std::size_t lane = 0);

  // Schedules every spec in the plan whose target is bound here. Faults with
  // start < now() are rejected (fault plans are armed before run()). May be
  // called once per plan; arming twice schedules twice.
  void arm(const FaultPlan& plan);

  const FaultInjectorStats& stats() const { return stats_; }

 private:
  void arm_spec(const FaultSpec& spec, std::uint64_t plan_seed);

  Simulator& sim_;
  std::map<std::string, std::vector<Link*>, std::less<>> links_;
  std::map<std::string, FaultableNode*, std::less<>> nodes_;
  std::map<std::string, std::size_t, std::less<>> lanes_;  // Target -> owning lane.
  FaultInjectorStats stats_;
};

}  // namespace jqos::netsim
