#include "netsim/link.h"

#include <algorithm>
#include <cassert>

namespace jqos::netsim {

Link::Link(Simulator& sim, NodeId from, NodeId to, LatencyModelPtr latency, LossModelPtr loss,
           double bandwidth_bps, bool preserve_order, QueueDiscPtr qdisc)
    : sim_(sim),
      from_(from),
      to_(to),
      latency_(std::move(latency)),
      loss_(std::move(loss)),
      bandwidth_bps_(bandwidth_bps),
      preserve_order_(preserve_order),
      qdisc_(std::move(qdisc)) {
  // Finite bandwidth implies a finite buffer: default to tail-drop if the
  // caller did not pick a discipline (Network always does).
  if (bandwidth_bps_ > 0.0 && qdisc_ == nullptr) {
    qdisc_ = make_queue_disc(QdiscConfig{.kind = QdiscKind::kTailDrop}, Rng(0));
  }
}

SimTime Link::admit(const PacketPtr& pkt, bool& mark) {
  const std::size_t bytes = pkt->wire_size();
  ++stats_.offered_packets;
  stats_.offered_bytes += bytes;

  if (fault_down_) {
    ++stats_.fault_drops;
    return -1;
  }
  if (degraded_ && degraded_rng_.bernoulli(degraded_loss_)) {
    ++stats_.fault_drops;
    return -1;
  }

  if (loss_->should_drop(sim_.now())) {
    ++stats_.dropped_packets;
    return -1;
  }

  SimTime depart = sim_.now();
  if (bandwidth_bps_ > 0.0) {
    // Drain everything the transmitter has finished serializing by now, so
    // the backlog counters reflect the instantaneous queue.
    while (!backlog_.empty() && backlog_.front().first <= depart) {
      backlog_bytes_ -= backlog_.front().second;
      backlog_.pop_front();
    }

    QueueSnapshot snap;
    snap.now = depart;
    snap.dequeue_at = std::max(depart, tx_free_at_);
    snap.backlog_bytes = backlog_bytes_;
    snap.backlog_packets = backlog_.size();
    snap.packet_bytes = bytes;
    snap.ecn_capable = pkt->ecn_capable;
    switch (qdisc_->admit(snap)) {
      case QdiscVerdict::kDrop:
        ++stats_.queue_drops;
        return -1;
      case QdiscVerdict::kMark:
        ++stats_.ecn_marked;
        mark = true;
        break;
      case QdiscVerdict::kEnqueue:
        break;
    }

    const auto tx_time = static_cast<SimDuration>(
        static_cast<double>(bytes) * 8.0 / bandwidth_bps_ * 1e6);
    tx_free_at_ = snap.dequeue_at + tx_time;
    depart = tx_free_at_;
    backlog_.push_back(depart, static_cast<std::uint32_t>(bytes));
    backlog_bytes_ += bytes;
    stats_.max_queue_bytes = std::max<std::uint64_t>(stats_.max_queue_bytes, backlog_bytes_);
    stats_.max_queue_packets =
        std::max<std::uint64_t>(stats_.max_queue_packets, backlog_.size());
  }

  SimTime arrive = depart + latency_->sample(sim_.now());
  if (degraded_) arrive += degraded_latency_;
  if (preserve_order_) {
    arrive = std::max(arrive, last_arrival_);
    last_arrival_ = arrive;
  }
  ++stats_.delivered_packets;
  stats_.delivered_bytes += bytes;
  return arrive;
}

// Copy-on-mark: PacketPtr is shared and const, so a CE mark clones the
// packet rather than scribbling on the copy other paths may still carry.
static PacketPtr with_ce_mark(PacketPool* pool, const PacketPtr& pkt) {
  auto marked = alloc_packet_copy(pool, *pkt);
  marked->ecn_ce = true;
  return marked;
}

void Link::send(PacketPtr pkt, DeliverFn deliver) {
  bool mark = false;
  const SimTime arrive = admit(pkt, mark);
  if (arrive < 0) return;
  PacketPtr out = mark ? with_ce_mark(pool_, pkt) : std::move(pkt);
  if (channel_ != nullptr) {
    channel_->schedule(arrive,
                       [out = std::move(out), deliver = std::move(deliver)] { deliver(out); });
    return;
  }
  sim_.at(arrive, [out = std::move(out), deliver = std::move(deliver)] { deliver(out); });
}

void Link::send(PacketPtr pkt) {
  assert(deliver_ && "Link::send(pkt) requires set_deliver()");
  bool mark = false;
  const SimTime arrive = admit(pkt, mark);
  if (arrive < 0) return;
  if (mark) {
    PacketPtr out = with_ce_mark(pool_, pkt);
    if (channel_ != nullptr) {
      channel_->schedule(arrive, [this, out = std::move(out)] { deliver_(out); });
    } else {
      sim_.at(arrive, [this, out = std::move(out)] { deliver_(out); });
    }
    return;
  }
  // (this, pkt) is 24 bytes: well inside EventFn's inline buffer, no
  // std::function is copied on the per-packet path, and the moved-in pkt
  // never touches the refcount.
  if (channel_ != nullptr) {
    channel_->schedule(arrive, [this, pkt = std::move(pkt)] { deliver_(pkt); });
    return;
  }
  sim_.at(arrive, [this, pkt = std::move(pkt)] { deliver_(pkt); });
}

}  // namespace jqos::netsim
