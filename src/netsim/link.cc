#include "netsim/link.h"

#include <algorithm>
#include <cassert>

namespace jqos::netsim {

Link::Link(Simulator& sim, NodeId from, NodeId to, LatencyModelPtr latency, LossModelPtr loss,
           double bandwidth_bps, bool preserve_order)
    : sim_(sim),
      from_(from),
      to_(to),
      latency_(std::move(latency)),
      loss_(std::move(loss)),
      bandwidth_bps_(bandwidth_bps),
      preserve_order_(preserve_order) {}

SimTime Link::admit(const PacketPtr& pkt) {
  const std::size_t bytes = pkt->wire_size();
  ++stats_.offered_packets;
  stats_.offered_bytes += bytes;

  if (loss_->should_drop(sim_.now())) {
    ++stats_.dropped_packets;
    return -1;
  }

  SimTime depart = sim_.now();
  if (bandwidth_bps_ > 0.0) {
    const auto tx_time = static_cast<SimDuration>(
        static_cast<double>(bytes) * 8.0 / bandwidth_bps_ * 1e6);
    const SimTime start = std::max(depart, tx_free_at_);
    tx_free_at_ = start + tx_time;
    depart = tx_free_at_;
  }

  SimTime arrive = depart + latency_->sample(sim_.now());
  if (preserve_order_) {
    arrive = std::max(arrive, last_arrival_);
    last_arrival_ = arrive;
  }
  ++stats_.delivered_packets;
  stats_.delivered_bytes += bytes;
  return arrive;
}

void Link::send(const PacketPtr& pkt, DeliverFn deliver) {
  const SimTime arrive = admit(pkt);
  if (arrive < 0) return;
  sim_.at(arrive, [pkt, deliver = std::move(deliver)] { deliver(pkt); });
}

void Link::send(const PacketPtr& pkt) {
  assert(deliver_ && "Link::send(pkt) requires set_deliver()");
  const SimTime arrive = admit(pkt);
  if (arrive < 0) return;
  // (this, pkt) is 24 bytes: well inside EventFn's inline buffer, and no
  // std::function is copied on the per-packet path.
  sim_.at(arrive, [this, pkt] { deliver_(pkt); });
}

}  // namespace jqos::netsim
