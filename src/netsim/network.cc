#include "netsim/network.h"

#include "common/logging.h"
#include "common/rng.h"

namespace jqos::netsim {

void Network::attach(Node& node) { nodes_[node.id()] = &node; }

Link& Network::add_link(NodeId from, NodeId to, LatencyModelPtr latency, LossModelPtr loss,
                        double bandwidth_bps, bool preserve_order) {
  return add_link(from, to, std::move(latency), std::move(loss), bandwidth_bps,
                  preserve_order, qdisc_);
}

Link& Network::add_link(NodeId from, NodeId to, LatencyModelPtr latency, LossModelPtr loss,
                        double bandwidth_bps, bool preserve_order, const QdiscConfig& qdisc) {
  QueueDiscPtr disc;
  if (bandwidth_bps > 0.0) {
    const std::uint64_t link_id =
        (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint64_t>(to);
    disc = make_queue_disc(qdisc, Rng::derived(qdisc_seed_, link_id));
  }
  auto link = std::make_unique<Link>(sim_, from, to, std::move(latency), std::move(loss),
                                     bandwidth_bps, preserve_order, std::move(disc));
  Link& ref = *link;
  // One dispatch closure per link, registered up front: the per-packet send
  // below then schedules a small inline event instead of rebuilding (and
  // copying) a std::function for every packet offered to the fabric.
  ref.set_deliver([this, to](const PacketPtr& delivered) {
    auto it = nodes_.find(to);
    if (it == nodes_.end()) {
      routing_failures_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    it->second->handle_packet(delivered);
  });
  links_[{from, to}] = std::move(link);
  return ref;
}

void Network::send(NodeId from, const PacketPtr& pkt) {
  Link* l = link(from, pkt->dst);
  if (l == nullptr) {
    routing_failures_.fetch_add(1, std::memory_order_relaxed);
    JQOS_WARN("no link " << from << " -> " << pkt->dst << " for " << to_string(pkt->type));
    return;
  }
  l->send(pkt);
}

Link* Network::link(NodeId from, NodeId to) {
  auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : it->second.get();
}

const Link* Network::link(NodeId from, NodeId to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : it->second.get();
}

}  // namespace jqos::netsim
