#include "netsim/network.h"

#include "common/logging.h"
#include "common/rng.h"

namespace jqos::netsim {

void Network::attach(Node& node) {
  const NodeId id = node.id();
  if (id >= nodes_.size()) nodes_.resize(id + 1, nullptr);
  nodes_[id] = &node;
}

Link& Network::add_link(NodeId from, NodeId to, LatencyModelPtr latency, LossModelPtr loss,
                        double bandwidth_bps, bool preserve_order) {
  return add_link(from, to, std::move(latency), std::move(loss), bandwidth_bps,
                  preserve_order, qdisc_);
}

Link& Network::add_link(NodeId from, NodeId to, LatencyModelPtr latency, LossModelPtr loss,
                        double bandwidth_bps, bool preserve_order, const QdiscConfig& qdisc) {
  QueueDiscPtr disc;
  if (bandwidth_bps > 0.0) {
    const std::uint64_t link_id =
        (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint64_t>(to);
    disc = make_queue_disc(qdisc, Rng::derived(qdisc_seed_, link_id));
  }
  auto link = std::make_unique<Link>(sim_, from, to, std::move(latency), std::move(loss),
                                     bandwidth_bps, preserve_order, std::move(disc));
  Link& ref = *link;
  // One dispatch closure per link, registered up front: the per-packet send
  // below then schedules a small inline event instead of rebuilding (and
  // copying) a std::function for every packet offered to the fabric.
  ref.set_deliver([this, to](const PacketPtr& delivered) {
    Node* n = node(to);
    if (n == nullptr) {
      routing_failures_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    n->handle_packet(delivered);
  });
  links_[{from, to}] = std::move(link);
  if (from >= out_.size()) out_.resize(from + 1);
  auto& adj = out_[from];
  bool replaced = false;
  for (auto& [dst, l] : adj) {
    if (dst == to) {
      l = &ref;
      replaced = true;
      break;
    }
  }
  if (!replaced) adj.emplace_back(to, &ref);
  return ref;
}

void Network::send(NodeId from, PacketPtr pkt) {
  Link* l = link(from, pkt->dst);
  if (l == nullptr) {
    routing_failures_.fetch_add(1, std::memory_order_relaxed);
    JQOS_WARN("no link " << from << " -> " << pkt->dst << " for " << to_string(pkt->type));
    return;
  }
  l->send(std::move(pkt));
}

}  // namespace jqos::netsim
