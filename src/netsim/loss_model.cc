#include "netsim/loss_model.h"

#include <algorithm>

namespace jqos::netsim {
namespace {

class NoLoss final : public LossModel {
 public:
  bool should_drop(SimTime) override { return false; }
};

class BernoulliLoss final : public LossModel {
 public:
  BernoulliLoss(double p, Rng rng) : p_(p), rng_(rng) {}
  bool should_drop(SimTime) override { return rng_.bernoulli(p_); }

 private:
  double p_;
  Rng rng_;
};

class GilbertElliott final : public LossModel {
 public:
  GilbertElliott(const GilbertElliottParams& params, Rng rng) : p_(params), rng_(rng) {}

  bool should_drop(SimTime) override {
    if (in_bad_) {
      if (rng_.bernoulli(p_.p_bad_to_good)) in_bad_ = false;
    } else {
      if (rng_.bernoulli(p_.p_good_to_bad)) in_bad_ = true;
    }
    return rng_.bernoulli(in_bad_ ? p_.loss_in_bad : p_.loss_in_good);
  }

 private:
  GilbertElliottParams p_;
  Rng rng_;
  bool in_bad_ = false;
};

class GoogleBurst final : public LossModel {
 public:
  GoogleBurst(double p_first, double p_subsequent, Rng rng)
      : p_first_(p_first), p_subsequent_(p_subsequent), rng_(rng) {}

  bool should_drop(SimTime) override {
    const bool drop = rng_.bernoulli(in_burst_ ? p_subsequent_ : p_first_);
    in_burst_ = drop;
    return drop;
  }

 private:
  double p_first_;
  double p_subsequent_;
  Rng rng_;
  bool in_burst_ = false;
};

// One draw of the outage process: the window following `from`. Shared by
// the lazy OutageOver model and the eager outage_windows() materializer so
// the two can never disagree about the schedule.
static OutageWindow draw_outage(const OutageParams& params, Rng& rng, SimTime from) {
  const double gap = rng.exponential(static_cast<double>(params.mean_interval));
  const SimTime start = from + static_cast<SimDuration>(gap);
  const SimTime end =
      start + rng.uniform_int(params.min_len, std::max(params.min_len, params.max_len));
  return {start, end};
}

class OutageOver final : public LossModel {
 public:
  OutageOver(LossModelPtr inner, const OutageParams& params, Rng rng)
      : inner_(std::move(inner)), params_(params), rng_(rng) {
    schedule_next(kSimStart);
  }

  bool should_drop(SimTime now) override {
    // Advance the outage state machine to `now`. Multiple outages may have
    // elapsed between packets on slow flows.
    while (now >= next_start_) {
      if (now < next_end_) return true;  // Inside the current outage.
      schedule_next(next_end_);
    }
    return inner_->should_drop(now);
  }

 private:
  void schedule_next(SimTime from) {
    const OutageWindow w = draw_outage(params_, rng_, from);
    next_start_ = w.start;
    next_end_ = w.end;
  }

  LossModelPtr inner_;
  OutageParams params_;
  Rng rng_;
  SimTime next_start_ = 0;
  SimTime next_end_ = 0;
};

class ScheduledOutages final : public LossModel {
 public:
  ScheduledOutages(LossModelPtr inner, std::vector<OutageWindow> windows)
      : inner_(std::move(inner)), windows_(std::move(windows)) {
    std::sort(windows_.begin(), windows_.end(),
              [](const OutageWindow& a, const OutageWindow& b) { return a.start < b.start; });
  }

  bool should_drop(SimTime now) override {
    // Windows are sorted; skip the ones already past.
    while (idx_ < windows_.size() && now >= windows_[idx_].end) ++idx_;
    if (idx_ < windows_.size() && now >= windows_[idx_].start) return true;
    return inner_->should_drop(now);
  }

 private:
  LossModelPtr inner_;
  std::vector<OutageWindow> windows_;
  std::size_t idx_ = 0;
};

}  // namespace

LossModelPtr make_no_loss() { return std::make_unique<NoLoss>(); }

LossModelPtr make_bernoulli_loss(double p, Rng rng) {
  return std::make_unique<BernoulliLoss>(p, rng);
}

LossModelPtr make_gilbert_elliott(const GilbertElliottParams& params, Rng rng) {
  return std::make_unique<GilbertElliott>(params, rng);
}

LossModelPtr make_google_burst(double p_first, double p_subsequent, Rng rng) {
  return std::make_unique<GoogleBurst>(p_first, p_subsequent, rng);
}

LossModelPtr make_outage_over(LossModelPtr inner, const OutageParams& params, Rng rng) {
  return std::make_unique<OutageOver>(std::move(inner), params, rng);
}

std::vector<OutageWindow> outage_windows(const OutageParams& params, Rng rng, SimTime horizon) {
  std::vector<OutageWindow> out;
  SimTime from = kSimStart;
  while (true) {
    const OutageWindow w = draw_outage(params, rng, from);
    if (w.start >= horizon) break;
    out.push_back(w);
    from = w.end;
  }
  return out;
}

LossModelPtr make_scheduled_outages(LossModelPtr inner, std::vector<OutageWindow> windows) {
  return std::make_unique<ScheduledOutages>(std::move(inner), std::move(windows));
}

}  // namespace jqos::netsim
