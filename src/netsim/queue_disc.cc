#include "netsim/queue_disc.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace jqos::netsim {

const char* qdisc_kind_name(QdiscKind k) {
  switch (k) {
    case QdiscKind::kTailDrop: return "taildrop";
    case QdiscKind::kRed: return "red";
    case QdiscKind::kCoDel: return "codel";
  }
  return "?";
}

std::optional<QdiscKind> parse_qdisc_kind(std::string_view name) {
  if (name == "taildrop" || name == "fifo") return QdiscKind::kTailDrop;
  if (name == "red") return QdiscKind::kRed;
  if (name == "codel") return QdiscKind::kCoDel;
  return std::nullopt;
}

QdiscKind qdisc_kind_from_env(QdiscKind fallback) {
  // Parsed exactly once, like JQOS_GF_BACKEND / JQOS_EVQ_BACKEND: later
  // setenv calls have no effect and cannot race the getenv.
  static const std::optional<QdiscKind> from_env = []() -> std::optional<QdiscKind> {
    const char* v = std::getenv("JQOS_QDISC");
    if (v == nullptr || *v == '\0') return std::nullopt;
    auto parsed = parse_qdisc_kind(v);
    if (!parsed) {
      std::fprintf(stderr,
                   "[WARN] JQOS_QDISC=%s not recognized (taildrop|red|codel); ignoring\n", v);
    }
    return parsed;
  }();
  return from_env.value_or(fallback);
}

// ---- TailDropFifo --------------------------------------------------------

QdiscVerdict TailDropFifo::admit(const QueueSnapshot& q) {
  if (q.backlog_bytes + q.packet_bytes > limit_bytes_) return QdiscVerdict::kDrop;
  return QdiscVerdict::kEnqueue;
}

// ---- RedQueue ------------------------------------------------------------

double red_mark_probability(double avg_bytes, std::size_t min_th, std::size_t max_th,
                            double max_p) {
  if (avg_bytes < static_cast<double>(min_th)) return 0.0;
  if (avg_bytes >= static_cast<double>(max_th)) return 1.0;
  return max_p * (avg_bytes - static_cast<double>(min_th)) /
         static_cast<double>(max_th - min_th);
}

RedQueue::RedQueue(const QdiscConfig& cfg, Rng rng)
    : limit_bytes_(cfg.limit_bytes),
      min_th_(cfg.red_min_bytes != 0 ? cfg.red_min_bytes : cfg.limit_bytes / 8),
      max_th_(cfg.red_max_bytes != 0 ? cfg.red_max_bytes : cfg.limit_bytes / 4),
      max_p_(cfg.red_max_p),
      wq_(cfg.red_wq),
      ecn_(cfg.ecn),
      rng_(rng) {
  if (max_th_ <= min_th_) max_th_ = min_th_ + 1;
}

QdiscVerdict RedQueue::admit(const QueueSnapshot& q) {
  if (q.backlog_bytes + q.packet_bytes > limit_bytes_) return QdiscVerdict::kDrop;
  avg_ = (1.0 - wq_) * avg_ + wq_ * static_cast<double>(q.backlog_bytes);

  const double pb = red_mark_probability(avg_, min_th_, max_th_, max_p_);
  if (pb <= 0.0) {
    count_ = -1;
    return QdiscVerdict::kEnqueue;
  }
  if (pb >= 1.0) {
    count_ = 0;
    return ecn_ && q.ecn_capable ? QdiscVerdict::kMark : QdiscVerdict::kDrop;
  }
  // Uniformize mark spacing (Floyd/Jacobson): pa = pb / (1 - count * pb).
  ++count_;
  const double denom = 1.0 - static_cast<double>(count_) * pb;
  const double pa = denom <= 0.0 ? 1.0 : std::min(pb / denom, 1.0);
  if (rng_.bernoulli(pa)) {
    count_ = 0;
    return ecn_ && q.ecn_capable ? QdiscVerdict::kMark : QdiscVerdict::kDrop;
  }
  return QdiscVerdict::kEnqueue;
}

// ---- CoDelQueue ----------------------------------------------------------

CoDelQueue::CoDelQueue(const QdiscConfig& cfg)
    : limit_bytes_(cfg.limit_bytes),
      target_(cfg.codel_target),
      interval_(cfg.codel_interval),
      ecn_(cfg.ecn) {}

SimTime CoDelQueue::control_law(SimTime t) const {
  return t + static_cast<SimDuration>(
                 static_cast<double>(interval_) /
                 std::sqrt(static_cast<double>(count_ == 0 ? 1 : count_)));
}

QdiscVerdict CoDelQueue::mark_or_drop(const QueueSnapshot& q) {
  return ecn_ && q.ecn_capable ? QdiscVerdict::kMark : QdiscVerdict::kDrop;
}

QdiscVerdict CoDelQueue::admit(const QueueSnapshot& q) {
  if (q.backlog_bytes + q.packet_bytes > limit_bytes_) return QdiscVerdict::kDrop;

  // The control law runs on the virtual dequeue clock: this admit decision
  // stands in for the dequeue of the same packet later, and q.sojourn() is
  // exactly the queueing delay that dequeue would observe.
  const SimTime now = q.dequeue_at;
  bool ok_to_drop = true;
  if (q.sojourn() < target_ || q.backlog_bytes < q.packet_bytes) {
    // Below target (or the queue is nearly empty): leave the dropping state.
    first_above_ = 0;
    ok_to_drop = false;
  } else if (first_above_ == 0) {
    // Just crossed the target; give the queue one interval to drain.
    first_above_ = now + interval_;
    ok_to_drop = false;
  } else if (now < first_above_) {
    ok_to_drop = false;
  }

  if (dropping_) {
    if (!ok_to_drop) {
      dropping_ = false;
      return QdiscVerdict::kEnqueue;
    }
    if (now >= drop_next_) {
      ++count_;
      drop_next_ = control_law(drop_next_);
      return mark_or_drop(q);
    }
    return QdiscVerdict::kEnqueue;
  }

  if (ok_to_drop) {
    dropping_ = true;
    // Re-entering shortly after leaving resumes at a higher drop rate.
    count_ = (count_ > 2 && now - drop_next_ < 16 * interval_) ? count_ - 2 : 1;
    drop_next_ = control_law(now);
    return mark_or_drop(q);
  }
  return QdiscVerdict::kEnqueue;
}

// ---- factory -------------------------------------------------------------

QueueDiscPtr make_queue_disc(const QdiscConfig& cfg, Rng rng) {
  switch (cfg.resolved_kind()) {
    case QdiscKind::kTailDrop: return std::make_unique<TailDropFifo>(cfg);
    case QdiscKind::kRed: return std::make_unique<RedQueue>(cfg, rng);
    case QdiscKind::kCoDel: return std::make_unique<CoDelQueue>(cfg);
  }
  return std::make_unique<TailDropFifo>(cfg);
}

}  // namespace jqos::netsim
