// The simulation clock and scheduler.
//
// Everything in the simulated J-QoS deployment -- link deliveries, coding
// queue timers, NACK timers, application send loops -- is an event on this
// single queue, mirroring how the real prototype multiplexes timers on one
// event loop per process.
//
// run()/run_until() drain the queue through EventQueue::drain, so with the
// ladder backend (the default) the dispatch loop serves whole pre-sorted
// rungs of events instead of paying a heap reheapify per event -- the change
// that lets figure sweeps run millions of simulated packets. Construct with
// an explicit EvqBackend (or set JQOS_EVQ_BACKEND) to pin the backend; the
// retained binary heap is the differential-testing reference.
//
// --- Lane mode: conservative parallel simulation inside one Simulator ---
//
// configure_lanes(n, threads) splits the event space into n LANES, each with
// its own EventQueue. Lanes advance in parallel between synchronization
// horizons (BSP / null-message style): a window [T, E) is computed from the
// global minimum next-event time M and the LOOKAHEAD L -- the smallest
// minimum delay of any declared cross-lane Channel -- as
//
//     E = min(M + L, next serial event, deadline + 1),
//
// every lane drains its events with time < E concurrently, and at the
// barrier all cross-lane events emitted during the window are merged and
// injected in the canonical order (time, channel key, channel sequence).
// Because that order is a pure function of the traffic (channel keys are
// stable identities, channel sequences count sends on one edge), the result
// is BIT-IDENTICAL across thread counts AND lane counts; only which events
// may run concurrently changes. docs/DETERMINISM.md states the full
// contract; tests/lane_sim_test.cc and tests/determinism_fuzz_test.cc pin it.
//
// Rules the scheduler enforces at runtime:
//  * Cross-lane edges must be declared as Channels with min_delay > 0
//    (zero-lookahead edges cannot be simulated conservatively and are
//    rejected at make_channel time).
//  * A Channel::schedule during a window must target a time >= the window
//    end (the conservative promise); violations throw std::logic_error.
//  * cancel() of an event belonging to another lane during a window is an
//    O(1) no-op -- a lane may not reach into a peer's queue mid-window.
//  * Events needing global reach (session open/close, result finalization)
//    go to the SERIAL lane (kSerialLane): they run single-threaded at
//    barriers, with every lane parked and now() == the barrier time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "netsim/event_queue.h"

namespace jqos::netsim {

class Simulator {
 public:
  Simulator() = default;
  explicit Simulator(EvqBackend backend) : queue_(backend) {}

  // Inside a lane window this is the executing lane's clock (the timestamp
  // of the event being dispatched); otherwise the global clock, which at a
  // barrier equals the barrier time.
  SimTime now() const { return lane_mode_ ? lane_now() : now_; }

  // Schedules at an absolute simulated time (must be >= now()). In lane mode
  // the event joins the AMBIENT lane: the executing lane inside a window,
  // the innermost LaneScope otherwise (lane 0 when no scope is active).
  EventId at(SimTime t, EventFn fn);

  // Schedules `d` after now(); negative delays clamp to "immediately".
  EventId after(SimDuration d, EventFn fn);

  // O(1); cancelling a fired, cancelled, or unknown id is a no-op. In lane
  // mode, ids are lane-tagged; see the cross-lane rule above.
  void cancel(EventId id);

  // Runs events until the queue is empty (lane mode: until every lane and
  // the serial queue are empty).
  void run();

  // Runs events with timestamp <= deadline, then sets now() = deadline.
  void run_until(SimTime deadline);

  // Runs at most `n` further events; returns how many actually ran.
  // Unavailable in lane mode (events advance in windows): throws.
  std::size_t step(std::size_t n = 1);

  bool idle() const { return lane_mode_ ? lanes_idle() : queue_.empty(); }
  std::uint64_t events_processed() const { return processed_; }
  EvqBackend backend() const { return queue_.backend(); }

  // Direct queue access for benches and introspection (slab high-water,
  // batched pop_ready experiments); scheduling should go through at/after.
  // In lane mode this is lane 0's queue; see lane_queue() for the others.
  EventQueue& queue() { return queue_; }

  // ---- conservative lane mode ----

  // The pseudo-lane for barrier-serial events (see header comment).
  static constexpr std::size_t kSerialLane = static_cast<std::size_t>(-1);
  // Lane ids are embedded in EventId's 8 spare bits (the slot index is 24
  // bits), so at most 254 lanes plus the serial tag.
  static constexpr std::size_t kMaxLanes = 254;

  // Splits the simulator into `lanes` parallel lanes (ids 0..lanes-1)
  // drained by up to `threads` workers per window (clamped to the lane
  // count; any value yields bit-identical results). Must be called before
  // run()/run_until(), at most once. Events already scheduled belong to
  // lane 0. Throws std::invalid_argument on a zero or > kMaxLanes count.
  void configure_lanes(std::size_t lanes, unsigned threads = 1);
  bool lanes_enabled() const { return lane_mode_; }
  std::size_t lane_count() const { return lane_mode_ ? lanes_.size() : 1; }
  unsigned lane_threads() const { return lane_threads_; }

  // The current lookahead: min over all lane-target channels' min_delay
  // (kMaxSimTime until the first channel is declared).
  SimDuration lookahead() const { return lookahead_; }

  // Lane-local queue access (introspection/tests). lane may be kSerialLane.
  EventQueue& lane_queue(std::size_t lane);

  // The ambient lane at()/after() would schedule into right now.
  std::size_t current_lane() const;

  // RAII ambient-lane selector for build-time wiring and serial handlers
  // that must place events into a specific lane. Must not be constructed
  // inside a window (the executing lane is not overridable). On a simulator
  // without lanes configured this is a no-op shell, so generic code (e.g.
  // the fault injector) can scope unconditionally.
  class LaneScope {
   public:
    LaneScope(Simulator& sim, std::size_t lane);
    ~LaneScope();
    LaneScope(const LaneScope&) = delete;
    LaneScope& operator=(const LaneScope&) = delete;

   private:
    Simulator* prev_sim_;
    std::size_t prev_lane_;
    SimTime prev_now_;
    SimTime prev_window_end_;
    bool prev_in_window_;
  };

  // A declared cross-lane edge. schedule() during a window buffers the
  // event in the sending lane's outbox; at the barrier all buffered events
  // are merged in (time, key, seq) order and injected into their target
  // lanes. Outside windows (build time, serial handlers) the event is
  // injected directly -- execution there is already single-threaded and
  // deterministic. The per-channel sequence counts schedules in channel
  // order, so the merge order is independent of lane layout and threads.
  //
  // ONE SOURCE LANE PER CHANNEL: within a window, at most one lane may
  // schedule on a given channel. The sequence counter is deliberately
  // unsynchronized -- an atomic would make the counter race-free but the
  // *order* of cross-thread increments (and therefore the canonical merge)
  // would vary run to run, silently breaking determinism. Give each sending
  // lane its own channel (keys derive from stable identities, so a per-lane
  // or per-path key is natural); the scenario wiring already does this
  // (access-link channels are per path-direction, churn serial channels per
  // path).
  class Channel {
   public:
    std::uint64_t key() const { return key_; }
    std::size_t target_lane() const { return target_; }
    SimDuration min_delay() const { return min_delay_; }

    void schedule(SimTime at, EventFn fn);

   private:
    friend class Simulator;
    Channel(Simulator* sim, std::uint64_t key, std::size_t target, SimDuration min_delay)
        : sim_(sim), key_(key), target_(target), min_delay_(min_delay) {}

    Simulator* sim_;
    std::uint64_t key_;
    std::size_t target_;
    SimDuration min_delay_;
    std::uint64_t seq_ = 0;
#ifndef NDEBUG
    // Debug check for the one-source-lane-per-window rule (see above).
    SimTime dbg_window_ = -1;
    std::size_t dbg_lane_ = 0;
#endif
  };

  // Declares a cross-lane channel. `key` must be unique per simulator and
  // STABLE (derive it from simulation identities -- path indices, site
  // names -- never from construction order): it is the canonical tie-break
  // for same-time cross-lane events. `min_delay` is the conservative
  // promise: every schedule through this channel is at least min_delay in
  // the future of its sender. Lane-target channels require min_delay > 0
  // and lower the global lookahead; serial-target channels do not.
  // Throws on duplicate keys, unknown lanes, and zero lookahead.
  Channel& make_channel(std::uint64_t key, std::size_t target_lane, SimDuration min_delay);

 private:
  struct Outmsg {
    SimTime at;
    std::uint64_t key;
    std::uint64_t seq;
    std::size_t target;
    EventFn fn;
  };
  struct LaneState {
    EventQueue* q = nullptr;            // lanes_[0] aliases queue_.
    std::unique_ptr<EventQueue> owned;  // Lanes 1..n-1 own their queue.
    std::vector<Outmsg> outbox;
    std::size_t window_fired = 0;
    SimTime window_last = 0;  // Timestamp of the window's last fired event.
  };

  SimTime lane_now() const;
  bool lanes_idle() const;
  std::size_t ambient_lane() const;
  EventId lane_push(SimTime t, EventFn&& fn, bool is_delay, SimDuration d);
  void push_raw(std::size_t target, SimTime t, EventFn&& fn);
  void channel_schedule(Channel& ch, SimTime t, EventFn&& fn);
  void run_lanes(SimTime deadline, bool settle_now);
  // Drains every lane to window_end-1 (in parallel when a pool exists) and
  // merges the outboxes; returns the latest fired timestamp (kSimStart-1
  // when the window fired nothing).
  SimTime run_window(SimTime window_end);

  EventQueue queue_;
  SimTime now_ = kSimStart;
  std::uint64_t processed_ = 0;

  // ---- lane mode state (empty/unused until configure_lanes) ----
  bool lane_mode_ = false;
  unsigned lane_threads_ = 1;
  SimDuration lookahead_ = kMaxSimTime;
  std::vector<LaneState> lanes_;
  std::unique_ptr<EventQueue> serial_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::unique_ptr<WorkerPool> pool_;
  std::vector<Outmsg> inject_scratch_;
};

}  // namespace jqos::netsim
