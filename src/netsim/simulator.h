// The simulation clock and scheduler.
//
// Everything in the simulated J-QoS deployment -- link deliveries, coding
// queue timers, NACK timers, application send loops -- is an event on this
// single queue, mirroring how the real prototype multiplexes timers on one
// event loop per process.
//
// run()/run_until() drain the queue through EventQueue::drain, so with the
// ladder backend (the default) the dispatch loop serves whole pre-sorted
// rungs of events instead of paying a heap reheapify per event -- the change
// that lets figure sweeps run millions of simulated packets. Construct with
// an explicit EvqBackend (or set JQOS_EVQ_BACKEND) to pin the backend; the
// retained binary heap is the differential-testing reference.
#pragma once

#include <cstdint>

#include "netsim/event_queue.h"

namespace jqos::netsim {

class Simulator {
 public:
  Simulator() = default;
  explicit Simulator(EvqBackend backend) : queue_(backend) {}

  SimTime now() const { return now_; }

  // Schedules at an absolute simulated time (must be >= now()).
  EventId at(SimTime t, EventFn fn);

  // Schedules `d` after now(); negative delays clamp to "immediately".
  EventId after(SimDuration d, EventFn fn);

  void cancel(EventId id) { queue_.cancel(id); }

  // Runs events until the queue is empty.
  void run();

  // Runs events with timestamp <= deadline, then sets now() = deadline.
  void run_until(SimTime deadline);

  // Runs at most `n` further events; returns how many actually ran.
  std::size_t step(std::size_t n = 1);

  bool idle() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return processed_; }
  EvqBackend backend() const { return queue_.backend(); }

  // Direct queue access for benches and introspection (slab high-water,
  // batched pop_ready experiments); scheduling should go through at/after.
  EventQueue& queue() { return queue_; }

 private:
  EventQueue queue_;
  SimTime now_ = kSimStart;
  std::uint64_t processed_ = 0;
};

}  // namespace jqos::netsim
