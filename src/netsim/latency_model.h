// One-way delay processes for simulated links.
//
// Internet paths get a base propagation delay plus heavy-tailed jitter
// (lognormal body, occasional Pareto spikes -- the "long tail" the paper
// observes on direct Internet delivery in Figure 7(a)). Cloud paths get the
// same base mechanism with tight jitter, reflecting the well-provisioned
// inter-DC network.
#pragma once

#include <memory>

#include "common/rng.h"
#include "common/sim_time.h"

namespace jqos::netsim {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  // Per-packet one-way delay sample.
  virtual SimDuration sample(SimTime now) = 0;

  // The deterministic floor of this model (propagation component); exposed
  // so path setup code can compute RTT baselines.
  virtual SimDuration base() const = 0;
};

using LatencyModelPtr = std::unique_ptr<LatencyModel>;

// Constant delay (useful in unit tests and idealized topologies).
LatencyModelPtr make_fixed_latency(SimDuration d);

// base + lognormal jitter; with probability `spike_prob` an additional
// Pareto-distributed spike is added (queueing excursions).
struct JitterParams {
  SimDuration base = msec(40);
  double jitter_sigma = 0.45;      // sigma of the lognormal, in log-ms space
  double jitter_scale_ms = 1.0;    // median jitter in ms
  double spike_prob = 0.0;         // probability of a tail spike per packet
  double spike_scale_ms = 20.0;    // Pareto scale (minimum spike)
  double spike_alpha = 1.5;        // Pareto shape; < 2 => heavy tail
};
LatencyModelPtr make_jitter_latency(const JitterParams& params, Rng rng);

}  // namespace jqos::netsim
