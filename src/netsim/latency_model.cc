#include "netsim/latency_model.h"

#include <cmath>

namespace jqos::netsim {
namespace {

class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(SimDuration d) : d_(d) {}
  SimDuration sample(SimTime) override { return d_; }
  SimDuration base() const override { return d_; }

 private:
  SimDuration d_;
};

class JitterLatency final : public LatencyModel {
 public:
  JitterLatency(const JitterParams& params, Rng rng)
      : p_(params), log_scale_(std::log(params.jitter_scale_ms)), rng_(rng) {}

  SimDuration sample(SimTime) override {
    // Lognormal with median jitter_scale_ms: exp(N(ln(scale), sigma)).
    double jitter_ms = rng_.lognormal(log_scale_, p_.jitter_sigma);
    if (p_.spike_prob > 0.0 && rng_.bernoulli(p_.spike_prob)) {
      jitter_ms += rng_.pareto(p_.spike_scale_ms, p_.spike_alpha);
    }
    return p_.base + msec_f(jitter_ms);
  }

  SimDuration base() const override { return p_.base; }

 private:
  JitterParams p_;
  double log_scale_;  // ln(jitter_scale_ms), hoisted off the per-packet path.
  Rng rng_;
};

}  // namespace

LatencyModelPtr make_fixed_latency(SimDuration d) { return std::make_unique<FixedLatency>(d); }

LatencyModelPtr make_jitter_latency(const JitterParams& params, Rng rng) {
  return std::make_unique<JitterLatency>(params, rng);
}

}  // namespace jqos::netsim
