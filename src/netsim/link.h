// A unidirectional link: loss process + delay process + optional bandwidth
// with FIFO serialization, plus per-link counters the experiment harness
// reads (offered/dropped/delivered packets and bytes).
#pragma once

#include <cstdint>
#include <functional>

#include "common/packet.h"
#include "netsim/latency_model.h"
#include "netsim/loss_model.h"
#include "netsim/simulator.h"

namespace jqos::netsim {

// Invoked when a packet crosses the link.
using DeliverFn = std::function<void(const PacketPtr&)>;

struct LinkStats {
  std::uint64_t offered_packets = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t offered_bytes = 0;
  std::uint64_t delivered_bytes = 0;

  double loss_rate() const {
    return offered_packets == 0
               ? 0.0
               : static_cast<double>(dropped_packets) / static_cast<double>(offered_packets);
  }
};

class Link {
 public:
  // bandwidth_bps == 0 means unlimited (no serialization delay / queueing).
  // When preserve_order is set (the default), arrivals are clamped to be
  // non-decreasing, modelling a single-path route that may jitter but does
  // not reorder -- which is what the receiver's gap-based loss detection
  // assumes of Internet paths.
  Link(Simulator& sim, NodeId from, NodeId to, LatencyModelPtr latency, LossModelPtr loss,
       double bandwidth_bps = 0.0, bool preserve_order = true);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Offers a packet to the link; if it survives the loss process it is
  // delivered to `deliver` after serialization + queueing + propagation.
  void send(const PacketPtr& pkt, DeliverFn deliver);

  // Hot-path variant: delivers to the sink registered with set_deliver().
  // Network registers its node-dispatch sink once per link so the per-packet
  // path schedules a small (this, pkt) closure instead of copying a
  // std::function into every event.
  void send(const PacketPtr& pkt);
  void set_deliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  const LinkStats& stats() const { return stats_; }
  SimDuration base_latency() const { return latency_->base(); }

 private:
  Simulator& sim_;
  NodeId from_;
  NodeId to_;
  LatencyModelPtr latency_;
  LossModelPtr loss_;
  double bandwidth_bps_;
  bool preserve_order_;
  // Time at which the transmitter finishes serializing the last queued
  // packet; models FIFO queueing under finite bandwidth.
  SimTime tx_free_at_ = 0;
  // Latest arrival scheduled so far; used to prevent reordering.
  SimTime last_arrival_ = 0;
  // Registered delivery sink for the zero-argument send().
  DeliverFn deliver_;
  LinkStats stats_;

  // Computes the arrival time for a packet offered now, or -1 if the loss
  // process drops it; updates queueing/ordering state and stats.
  SimTime admit(const PacketPtr& pkt);
};

}  // namespace jqos::netsim
