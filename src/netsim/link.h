// A unidirectional link: loss process + delay process + optional bandwidth
// with FIFO serialization, plus per-link counters the experiment harness
// reads (offered/dropped/delivered packets and bytes).
//
// Finite-bandwidth links delegate the enqueue/mark/drop decision to a
// QueueDisc policy object (tail-drop by default, RED or CoDel for AQM).
// The transmitter itself stays analytic — tx_free_at_ plus a deque of
// pending departure times — so queueing costs no extra simulator events.
// Zero-bandwidth links never consult the discipline (there is no queue),
// which keeps every latency-only scenario bit-identical to the
// pre-queue-disc code.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/packet.h"
#include "netsim/latency_model.h"
#include "netsim/loss_model.h"
#include "netsim/queue_disc.h"
#include "netsim/simulator.h"

namespace jqos::netsim {

// Invoked when a packet crosses the link.
using DeliverFn = std::function<void(const PacketPtr&)>;

struct LinkStats {
  std::uint64_t offered_packets = 0;
  std::uint64_t dropped_packets = 0;    // Loss-model drops (the "wire").
  std::uint64_t queue_drops = 0;        // Queue-disc drops (buffer full / AQM early).
  std::uint64_t fault_drops = 0;        // Fault-layer drops (link down / brownout).
  std::uint64_t ecn_marked = 0;         // Delivered with a fresh CE mark.
  std::uint64_t delivered_packets = 0;
  std::uint64_t offered_bytes = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t max_queue_bytes = 0;    // High-water transmitter backlog.
  std::uint64_t max_queue_packets = 0;

  // Loss-model rate only, matching the pre-queue-disc meaning (congestion
  // drops are a separate signal; use drop_rate() for the combined figure).
  double loss_rate() const {
    return offered_packets == 0
               ? 0.0
               : static_cast<double>(dropped_packets) / static_cast<double>(offered_packets);
  }

  double drop_rate() const {
    return offered_packets == 0
               ? 0.0
               : static_cast<double>(dropped_packets + queue_drops) /
                     static_cast<double>(offered_packets);
  }
};

class Link {
 public:
  // bandwidth_bps == 0 means unlimited (no serialization delay / queueing;
  // `qdisc` is then never consulted and may be null). When preserve_order
  // is set (the default), arrivals are clamped to be non-decreasing,
  // modelling a single-path route that may jitter but does not reorder --
  // which is what the receiver's gap-based loss detection assumes of
  // Internet paths.
  Link(Simulator& sim, NodeId from, NodeId to, LatencyModelPtr latency, LossModelPtr loss,
       double bandwidth_bps = 0.0, bool preserve_order = true, QueueDiscPtr qdisc = nullptr);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Offers a packet to the link; if it survives the loss process and the
  // queue discipline it is delivered to `deliver` after serialization +
  // queueing + propagation.
  // By-value: a caller sending a temporary (the common fabric path) moves
  // the PacketPtr all the way into the scheduled event, so the hot path
  // never touches the shared_ptr refcount.
  void send(PacketPtr pkt, DeliverFn deliver);

  // Hot-path variant: delivers to the sink registered with set_deliver().
  // Network registers its node-dispatch sink once per link so the per-packet
  // path schedules a small (this, pkt) closure instead of copying a
  // std::function into every event.
  void send(PacketPtr pkt);
  void set_deliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  // Lane mode: deliveries on this link cross a lane boundary, so they are
  // scheduled through `ch` (buffered to the sending lane's outbox during a
  // window, merged canonically at the barrier) instead of through plain
  // Simulator::at. The channel's min_delay must be a true lower bound on
  // this link's latency -- base_latency() is, because jitter, brownout
  // penalties, and the preserve_order clamp only ever ADD delay. Send-side
  // state (loss draws, queueing, stats) is still owned by the sending lane;
  // only the delivery callback migrates.
  void set_lane_channel(Simulator::Channel* ch) { channel_ = ch; }
  Simulator::Channel* lane_channel() const { return channel_; }

  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  const LinkStats& stats() const { return stats_; }
  SimDuration base_latency() const { return latency_->base(); }
  const QueueDisc* qdisc() const { return qdisc_.get(); }

  // Fault-layer controls (driven by netsim::FaultInjector). A downed link
  // drops every offered packet; a degraded (brownout) link adds a Bernoulli
  // drop probability and extra propagation latency on top of its configured
  // models. Both count into LinkStats.fault_drops, separate from loss-model
  // and queue-disc drops. The degradation Rng draws only while degraded, so
  // an un-faulted link's trace is byte-identical to a build without faults.
  void set_fault_down(bool down) { fault_down_ = down; }
  bool fault_down() const { return fault_down_; }
  void set_degraded(double extra_loss, SimDuration extra_latency, Rng rng) {
    degraded_ = true;
    degraded_loss_ = extra_loss;
    degraded_latency_ = extra_latency;
    degraded_rng_ = rng;
  }
  void clear_degraded() { degraded_ = false; }
  bool degraded() const { return degraded_; }

  // Packet storage pool for the lane this link's sender runs in (see
  // docs/MEMORY.md). Only the copy-on-CE-mark path allocates here; null
  // (the default) means heap allocation. Set at build time, before traffic.
  void set_pool(PacketPool* pool) { pool_ = pool; }
  PacketPool* pool() const { return pool_; }

 private:
  // Fixed-capacity-amortized FIFO of (departure time, wire bytes) pairs.
  // A deque allocates and frees a chunk every ~few-hundred entries of
  // churn; this ring reaches its high-water capacity once and then cycles
  // in place — the transmitter backlog is on the per-packet path of every
  // finite-bandwidth link.
  class BacklogRing {
   public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    const std::pair<SimTime, std::uint32_t>& front() const { return slots_[head_]; }
    void pop_front() {
      head_ = (head_ + 1) & (slots_.size() - 1);
      --size_;
    }
    void push_back(SimTime depart, std::uint32_t bytes) {
      if (size_ == slots_.size()) grow();
      slots_[(head_ + size_) & (slots_.size() - 1)] = {depart, bytes};
      ++size_;
    }

   private:
    void grow() {
      // Power-of-two capacity keeps the index math a mask. Re-linearize on
      // growth so head_ starts at 0 in the new storage.
      std::vector<std::pair<SimTime, std::uint32_t>> bigger(
          slots_.empty() ? 16 : slots_.size() * 2);
      for (std::size_t i = 0; i < size_; ++i) {
        bigger[i] = slots_[(head_ + i) & (slots_.size() - 1)];
      }
      slots_ = std::move(bigger);
      head_ = 0;
    }

    std::vector<std::pair<SimTime, std::uint32_t>> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
  };

  Simulator& sim_;
  NodeId from_;
  NodeId to_;
  LatencyModelPtr latency_;
  LossModelPtr loss_;
  double bandwidth_bps_;
  bool preserve_order_;
  QueueDiscPtr qdisc_;
  // Time at which the transmitter finishes serializing the last queued
  // packet; models FIFO queueing under finite bandwidth.
  SimTime tx_free_at_ = 0;
  // Latest arrival scheduled so far; used to prevent reordering.
  SimTime last_arrival_ = 0;
  // Departure time + size of every packet still in the transmitter, oldest
  // first; drained lazily on each send to maintain the backlog counters the
  // queue discipline and the depth stats read.
  BacklogRing backlog_;
  std::size_t backlog_bytes_ = 0;
  // Registered delivery sink for the zero-argument send().
  DeliverFn deliver_;
  // Cross-lane delivery channel (lane mode only; null = same-lane edge).
  Simulator::Channel* channel_ = nullptr;
  PacketPool* pool_ = nullptr;
  LinkStats stats_;
  // Fault-layer state; see set_fault_down()/set_degraded().
  bool fault_down_ = false;
  bool degraded_ = false;
  double degraded_loss_ = 0.0;
  SimDuration degraded_latency_ = 0;
  Rng degraded_rng_{0};

  // Computes the arrival time for a packet offered now, or -1 if the loss
  // process or the queue discipline drops it; sets `mark` when the
  // discipline CE-marked instead; updates queueing/ordering state and stats.
  SimTime admit(const PacketPtr& pkt, bool& mark);
};

}  // namespace jqos::netsim
