// Packet-loss processes for simulated paths.
//
// The paper's PlanetLab study (Section 6.2.2, Figure 8(b)) classifies loss
// episodes into Random (single packet), Multi-Packet (2-14 packets) and
// Outage (>14 packets, observed lasting 1-3 seconds); its TCP case study
// (Section 6.4) uses the Google study's burst model (first-loss probability
// 0.01, subsequent-loss probability 0.5). The models here generate exactly
// those processes; inter-DC cloud paths use loss rates an order of magnitude
// lower, per the measurements the paper cites.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"

namespace jqos::netsim {

class LossModel {
 public:
  virtual ~LossModel() = default;

  // Decides the fate of one packet offered to the link at `now`. Stateful
  // models (bursts, outages) advance their state on every call.
  virtual bool should_drop(SimTime now) = 0;
};

using LossModelPtr = std::unique_ptr<LossModel>;

// Never drops; cloud inter-DC links in the idealized configuration.
LossModelPtr make_no_loss();

// Independent (random) loss with probability p per packet.
LossModelPtr make_bernoulli_loss(double p, Rng rng);

// Two-state Gilbert-Elliott: GOOD state drops with p_good, BAD with p_bad;
// transition probabilities are evaluated per packet. Produces the
// multi-packet bursts of Figure 8(b).
struct GilbertElliottParams {
  double p_good_to_bad = 0.0005;
  double p_bad_to_good = 0.25;
  double loss_in_good = 0.0;
  double loss_in_bad = 0.8;
};
LossModelPtr make_gilbert_elliott(const GilbertElliottParams& params, Rng rng);

// The Google web-study model used in Section 6.4: the first packet of a
// burst is lost with p_first; once a loss happens, each subsequent packet is
// lost with p_subsequent until a packet survives.
LossModelPtr make_google_burst(double p_first, double p_subsequent, Rng rng);

// Wall-clock outage process layered over an inner model: outages start as a
// Poisson process with the given mean inter-arrival time and last a uniform
// duration in [min_len, max_len]; all packets offered during an outage are
// dropped. Models the 1-3 s outages seen on 45% of PlanetLab paths.
struct OutageParams {
  SimDuration mean_interval = minutes(30);
  SimDuration min_len = sec(1);
  SimDuration max_len = sec(3);
};
LossModelPtr make_outage_over(LossModelPtr inner, const OutageParams& params, Rng rng);

// Drops during explicit windows; used by case studies that script a single
// 30-second outage (Section 6.3).
struct OutageWindow {
  SimTime start;
  SimTime end;
};

// The exact start/duration schedule make_outage_over(params, rng) would
// realize over [kSimStart, horizon): same draw order, same stream. Exposed
// so tests can pin outage windows deterministically and so the fault layer
// (FaultPlan::link_flaps) can materialize the identical process as explicit
// fault windows. A window straddling the horizon is included whole.
std::vector<OutageWindow> outage_windows(const OutageParams& params, Rng rng, SimTime horizon);
LossModelPtr make_scheduled_outages(LossModelPtr inner, std::vector<OutageWindow> windows);

}  // namespace jqos::netsim
