// Small-buffer-optimized callback storage for simulator events.
//
// The event queue fires tens of millions of callbacks per experiment, and
// std::function heap-allocates any closure bigger than two pointers — which
// includes the common link-delivery closure. EventFn is a move-only
// std::function<void()> replacement tuned for the dispatch loop:
//
//   - 32 bytes of inline storage: every hot-path closure in the tree fits
//     (link delivery captures this + PacketPtr = 24 B, timers capture
//     this + a generation = 16-24 B), so pushing an event never allocates.
//     Larger or not-nothrow-movable callables fall back to one heap
//     allocation — correct for arbitrary callables, hit only on cold paths.
//   - a trivial fast path: closures that are trivially copyable and
//     trivially destructible (raw pointers + ints — the overwhelming
//     majority) relocate by plain memcpy and destroy as a no-op, with no
//     indirect call. Only invocation pays an indirect call, and only
//     closures owning real state (e.g. a PacketPtr) carry an ops table.
//
// sizeof(EventFn) == 48 so the event slab's Slot (EventFn + sequence +
// generation + freelist link) is exactly one 64-byte cache line.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace jqos::netsim {

class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 32;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (kFitsInline<D>) {
      ::new (storage()) D(std::forward<F>(f));
      invoke_ = &inline_invoke<D>;
      if constexpr (!kTrivial<D>) ops_ = &kInlineOps<D>;
    } else {
      ::new (storage()) D*(new D(std::forward<F>(f)));
      invoke_ = &heap_invoke<D>;
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() {
    assert(invoke_ != nullptr && "invoking an empty EventFn");
    invoke_(storage());
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void reset() noexcept {
    if (invoke_ != nullptr) {
      if (ops_ != nullptr) ops_->destroy(storage());
      invoke_ = nullptr;
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    // Move-constructs the callable into dst and destroys the one in src.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void* obj);
  };

  template <typename D>
  static constexpr bool kFitsInline = sizeof(D) <= kInlineBytes &&
                                      alignof(D) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<D>;
  template <typename D>
  static constexpr bool kTrivial =
      std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>;

  template <typename D>
  static void inline_invoke(void* obj) {
    (*static_cast<D*>(obj))();
  }
  template <typename D>
  static void inline_relocate(void* src, void* dst) {
    D* p = static_cast<D*>(src);
    ::new (dst) D(std::move(*p));
    p->~D();
  }
  template <typename D>
  static void inline_destroy(void* obj) {
    static_cast<D*>(obj)->~D();
  }

  template <typename D>
  static void heap_invoke(void* obj) {
    (**static_cast<D**>(obj))();
  }
  static void heap_relocate(void* src, void* dst) {
    std::memcpy(dst, src, sizeof(void*));  // Ownership of the D* moves over.
  }
  template <typename D>
  static void heap_destroy(void* obj) {
    delete *static_cast<D**>(obj);
  }

  template <typename D>
  static constexpr Ops kInlineOps{&inline_relocate<D>, &inline_destroy<D>};
  template <typename D>
  static constexpr Ops kHeapOps{&heap_relocate, &heap_destroy<D>};

  void* storage() noexcept { return buf_; }

  void move_from(EventFn& other) noexcept {
    if (other.invoke_ != nullptr) {
      if (other.ops_ != nullptr) {
        other.ops_->relocate(other.storage(), storage());
      } else {
        // Trivially relocatable: one fixed-size copy, no indirect call.
        std::memcpy(buf_, other.buf_, kInlineBytes);
      }
      invoke_ = other.invoke_;
      ops_ = other.ops_;
      other.invoke_ = nullptr;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;  // null => empty
  const Ops* ops_ = nullptr;         // null => memcpy-relocate, no-op destroy
};

static_assert(sizeof(EventFn) == 48);

}  // namespace jqos::netsim
