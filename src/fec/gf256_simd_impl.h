// Internals shared between the dispatcher (gf256_simd.cc) and the per-ISA
// kernel translation units (gf256_simd_ssse3.cc / gf256_simd_avx2.cc). Not
// installed; include only from within src/fec.
#pragma once

#include <cstddef>
#include <cstdint>

#include "fec/gf256.h"

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64) || defined(_M_IX86)
#define JQOS_GF_X86 1
#else
#define JQOS_GF_X86 0
#endif

namespace jqos::fec::detail {

// Split-nibble product tables, built once at static init alongside the
// log/exp tables: for each coefficient c,
//   lo[c][x] = c * x          for x in [0, 16)   (low-nibble products)
//   hi[c][x] = c * (x << 4)   for x in [0, 16)   (high-nibble products)
// Each 16-byte row is one PSHUFB operand; 32-byte alignment lets the AVX2
// path broadcast rows with aligned loads. 256 * 2 * 16 = 8 KiB total.
struct NibbleTables {
  alignas(32) std::uint8_t lo[256][16];
  alignas(32) std::uint8_t hi[256][16];
};

const NibbleTables& nibble_tables();

// The dispatched kernels, resolved on first use (and re-resolved by
// gf_set_backend). gf256.cc calls through these after stripping the
// c==0 / c==1 fast paths.
using KernelFn = void (*)(std::uint8_t*, const std::uint8_t*, Gf, std::size_t);
KernelFn gf_addmul_kernel();
KernelFn gf_mul_buf_kernel();

// Fused row kernel (gf_rs_row): dst[i] = XOR_j cs[j] * srcs[j][i], one pass
// over dst. The wrapper compacts away c == 0 terms, so kernels see m >= 1
// active sources; coefficients may still be 1 (the tables are exact for it).
using RowKernelFn = void (*)(std::uint8_t* dst, const std::uint8_t* const* srcs,
                             const Gf* cs, std::size_t m, std::size_t n);
RowKernelFn gf_rs_row_kernel();

// Scalar reference kernels (no fast-path handling: callers strip c==0/c==1
// before dispatch). Also used for SIMD loop tails.
void gf_addmul_scalar(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n);
void gf_mul_buf_scalar(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n);
void gf_rs_row_scalar(std::uint8_t* dst, const std::uint8_t* const* srcs, const Gf* cs,
                      std::size_t m, std::size_t n);

// Per-ISA kernels. The symbols always exist so the dispatcher links on any
// platform; when the TU was compiled without the matching ISA (non-x86, or a
// compiler lacking -mssse3/-mavx2) they delegate to the scalar kernel and
// the *_compiled() probe reports false, which keeps them out of dispatch.
bool gf_ssse3_compiled();
void gf_addmul_ssse3(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n);
void gf_mul_buf_ssse3(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n);
void gf_rs_row_ssse3(std::uint8_t* dst, const std::uint8_t* const* srcs, const Gf* cs,
                     std::size_t m, std::size_t n);

bool gf_avx2_compiled();
void gf_addmul_avx2(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n);
void gf_mul_buf_avx2(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n);
void gf_rs_row_avx2(std::uint8_t* dst, const std::uint8_t* const* srcs, const Gf* cs,
                    std::size_t m, std::size_t n);

}  // namespace jqos::fec::detail
