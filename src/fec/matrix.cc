#include "fec/matrix.h"

#include <stdexcept>

namespace jqos::fec {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::vandermonde(std::size_t rows, std::size_t cols) {
  if (rows > 255) throw std::invalid_argument("vandermonde: at most 255 rows in GF(256)");
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    // alpha_r = alpha^r gives 255 distinct non-degenerate evaluation points.
    const Gf alpha_r = gf_exp_table(static_cast<unsigned>(r % 255));
    Gf v = 1;
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = (r == 0) ? (c == 0 ? 1 : 0) : v;
      v = gf_mul(v, alpha_r);
    }
  }
  // Row 0 corresponds to evaluation point alpha^0 = 1, whose powers are all
  // 1; the loop above instead gives row 0 the canonical unit row so the
  // matrix stays a classic Vandermonde built over points {1, alpha, ...}.
  // Rebuild row 0 properly: point 1 -> all-ones row.
  for (std::size_t c = 0; c < cols; ++c) m.at(0, c) = 1;
  return m;
}

Matrix Matrix::mul(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("matrix mul: shape mismatch");
  Matrix out(rows_, rhs.cols_);
  // Row-times-matrix as row accumulation: out.row(i) ^= a * rhs.row(k) goes
  // through the same dispatched gf_addmul kernel as the packet hot path.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      gf_addmul(out.row(i), rhs.row(k), at(i, k), rhs.cols_);
    }
  }
  return out;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& rows) const {
  Matrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= rows_) throw std::out_of_range("select_rows: row index");
    for (std::size_t j = 0; j < cols_; ++j) out.at(i, j) = at(rows[i], j);
  }
  return out;
}

std::optional<Matrix> Matrix::inverted() const {
  if (rows_ != cols_) throw std::invalid_argument("inverted: square matrices only");
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix inv = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot (any non-zero entry works in a field). If the column has
    // none the matrix is rank-deficient: report singularity to the caller
    // instead of continuing with a zero pivot, which would feed 0 to gf_inv
    // below and propagate garbage through every remaining row operation.
    std::size_t pivot = col;
    while (pivot < n && a.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return std::nullopt;  // singular
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a.at(pivot, j), a.at(col, j));
        std::swap(inv.at(pivot, j), inv.at(col, j));
      }
    }
    // Scale pivot row to 1. The pivot is non-zero by construction, so
    // gf_inv cannot throw here. gf_mul_buf permits exact dst==src aliasing,
    // so the rows scale in place through the dispatched kernel.
    const Gf scale = gf_inv(a.at(col, col));
    gf_mul_buf(a.row(col), a.row(col), scale, n);
    gf_mul_buf(inv.row(col), inv.row(col), scale, n);
    // Eliminate the column everywhere else: row_i ^= f * row_col is exactly
    // the gf_addmul row-accumulation primitive (c == 0 rows are a no-op
    // inside the kernel's fast path).
    for (std::size_t i = 0; i < n; ++i) {
      if (i == col) continue;
      const Gf f = a.at(i, col);
      gf_addmul(a.row(i), a.row(col), f, n);
      gf_addmul(inv.row(i), inv.row(col), f, n);
    }
  }
  return inv;
}

}  // namespace jqos::fec
