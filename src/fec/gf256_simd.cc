// Backend selection for the GF(256) buffer kernels: builds the split-nibble
// tables, probes CPU support once, honors the JQOS_GF_BACKEND override, and
// hands gf256.cc a pair of kernel function pointers. This TU contains no
// ISA-specific code itself — the SSSE3/AVX2 kernels live in their own TUs so
// only those are built with -mssse3/-mavx2.
#include "fec/gf256_simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "fec/gf256_simd_impl.h"

namespace jqos::fec {
namespace detail {
namespace {

NibbleTables build_nibble_tables() {
  NibbleTables t;
  for (int c = 0; c < 256; ++c) {
    for (int x = 0; x < 16; ++x) {
      t.lo[c][x] = gf_mul(static_cast<Gf>(c), static_cast<Gf>(x));
      t.hi[c][x] = gf_mul(static_cast<Gf>(c), static_cast<Gf>(x << 4));
    }
  }
  return t;
}

bool cpu_supports(GfBackend b) {
#if JQOS_GF_X86 && defined(__GNUC__)
  switch (b) {
    case GfBackend::kScalar:
      return true;
    case GfBackend::kSsse3:
      return __builtin_cpu_supports("ssse3") != 0;
    case GfBackend::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
  }
  return false;
#else
  return b == GfBackend::kScalar;
#endif
}

// JQOS_GF_BACKEND, parsed exactly once at first use (the header's documented
// contract; later setenv calls have no effect and cannot race the getenv).
// Unset, empty, "auto", or an unrecognized value all mean "no constraint"
// (unrecognized values must not silently degrade a production encoder to
// scalar).
std::optional<GfBackend> env_backend() {
  static const std::optional<GfBackend> parsed = []() -> std::optional<GfBackend> {
    const char* v = std::getenv("JQOS_GF_BACKEND");
    if (v == nullptr || *v == '\0') return std::nullopt;
    if (std::strcmp(v, "scalar") == 0) return GfBackend::kScalar;
    if (std::strcmp(v, "ssse3") == 0) return GfBackend::kSsse3;
    if (std::strcmp(v, "avx2") == 0) return GfBackend::kAvx2;
    return std::nullopt;
  }();
  return parsed;
}

struct Dispatch {
  GfBackend backend;
  KernelFn addmul;
  KernelFn mul_buf;
  RowKernelFn rs_row;
};

// One immutable Dispatch per backend. gf_set_backend() swings an atomic
// pointer between these rather than mutating a shared struct in place, so a
// backend switch racing concurrent encoders (the sharded scenario runner
// runs one shard per thread) is data-race-free: every reader sees one
// coherent (backend, kernels) tuple, old or new, never a torn mix.
const Dispatch& dispatch_entry(GfBackend b) {
  static const Dispatch kAvx2{GfBackend::kAvx2, &gf_addmul_avx2, &gf_mul_buf_avx2,
                              &gf_rs_row_avx2};
  static const Dispatch kSsse3{GfBackend::kSsse3, &gf_addmul_ssse3, &gf_mul_buf_ssse3,
                               &gf_rs_row_ssse3};
  static const Dispatch kScalar{GfBackend::kScalar, &gf_addmul_scalar, &gf_mul_buf_scalar,
                                &gf_rs_row_scalar};
  switch (b) {
    case GfBackend::kAvx2:
      return kAvx2;
    case GfBackend::kSsse3:
      return kSsse3;
    case GfBackend::kScalar:
      break;
  }
  return kScalar;
}

std::atomic<const Dispatch*>& active_dispatch() {
  // Thread-safe lazy init: the first caller probes the CPU and the env
  // override; later callers (any thread) do a plain acquire load.
  static std::atomic<const Dispatch*> d{&dispatch_entry(gf_best_backend())};
  return d;
}

const Dispatch& dispatch() {
  return *active_dispatch().load(std::memory_order_acquire);
}

}  // namespace

const NibbleTables& nibble_tables() {
  static const NibbleTables t = build_nibble_tables();
  return t;
}

KernelFn gf_addmul_kernel() { return dispatch().addmul; }
KernelFn gf_mul_buf_kernel() { return dispatch().mul_buf; }
RowKernelFn gf_rs_row_kernel() { return dispatch().rs_row; }

}  // namespace detail

bool gf_backend_available(GfBackend b) {
  switch (b) {
    case GfBackend::kScalar:
      return true;
    case GfBackend::kSsse3:
      return detail::gf_ssse3_compiled() && detail::cpu_supports(b);
    case GfBackend::kAvx2:
      return detail::gf_avx2_compiled() && detail::cpu_supports(b);
  }
  return false;
}

std::vector<GfBackend> gf_available_backends() {
  std::vector<GfBackend> out;
  for (GfBackend b : {GfBackend::kScalar, GfBackend::kSsse3, GfBackend::kAvx2}) {
    if (gf_backend_available(b)) out.push_back(b);
  }
  return out;
}

GfBackend gf_best_backend() {
  const auto forced = detail::env_backend();
  if (forced && gf_backend_available(*forced)) return *forced;
  if (gf_backend_available(GfBackend::kAvx2)) return GfBackend::kAvx2;
  if (gf_backend_available(GfBackend::kSsse3)) return GfBackend::kSsse3;
  return GfBackend::kScalar;
}

bool gf_set_backend(GfBackend b) {
  if (!gf_backend_available(b)) return false;
  detail::active_dispatch().store(&detail::dispatch_entry(b), std::memory_order_release);
  return true;
}

GfBackend gf_backend() { return detail::dispatch().backend; }

const char* gf_backend_name(GfBackend b) {
  switch (b) {
    case GfBackend::kScalar:
      return "scalar";
    case GfBackend::kSsse3:
      return "ssse3";
    case GfBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const char* gf_backend_name() { return gf_backend_name(gf_backend()); }

}  // namespace jqos::fec
