// Dense matrices over GF(2^8) with Gaussian-elimination inversion; the
// machinery behind systematic Reed-Solomon construction and decoding.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "fec/gf256.h"

namespace jqos::fec {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  static Matrix identity(std::size_t n);

  // Vandermonde matrix V[i][j] = alpha_i^j where alpha_i are distinct field
  // elements; any square submatrix formed from distinct rows is invertible,
  // which is the property Reed-Solomon erasure decoding relies on.
  static Matrix vandermonde(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Gf at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  Gf& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const Gf* row(std::size_t r) const { return &data_[r * cols_]; }
  Gf* row(std::size_t r) { return &data_[r * cols_]; }

  Matrix mul(const Matrix& rhs) const;

  // Returns this matrix with rows permuted: out.row(i) = row(rows[i]).
  Matrix select_rows(const std::vector<std::size_t>& rows) const;

  // Gauss-Jordan inversion; nullopt if singular. Square matrices only.
  std::optional<Matrix> inverted() const;

  bool operator==(const Matrix& rhs) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Gf> data_;
};

}  // namespace jqos::fec
