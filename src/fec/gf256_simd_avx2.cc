// AVX2 split-nibble GF(256) kernels: the SSSE3 trick at 32 bytes per step.
// VPSHUFB shuffles within each 128-bit lane, so the 16-byte nibble tables
// are broadcast to both lanes once per call. This TU (and only this TU) is
// built with -mavx2; dispatch guarantees these run only on AVX2 CPUs.
#include "fec/gf256_simd_impl.h"

#if JQOS_GF_X86 && defined(__AVX2__)

#include <immintrin.h>

namespace jqos::fec::detail {

bool gf_avx2_compiled() { return true; }

void gf_addmul_avx2(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  const NibbleTables& t = nibble_tables();
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
    const __m256i ph =
        _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, _mm256_xor_si256(pl, ph)));
  }
  // AVX2 implies SSSE3: hand the 16..31-byte remainder to the 128-bit kernel
  // (compiled into this TU so no cross-TU ISA mismatch), which finishes the
  // final < 16 bytes with the scalar tail.
  if (i < n) {
    const __m128i lo128 = _mm256_castsi256_si128(lo);
    const __m128i hi128 = _mm256_castsi256_si128(hi);
    const __m128i mask128 = _mm_set1_epi8(0x0f);
    for (; i + 16 <= n; i += 16) {
      const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
      const __m128i pl = _mm_shuffle_epi8(lo128, _mm_and_si128(s, mask128));
      const __m128i ph = _mm_shuffle_epi8(hi128, _mm_and_si128(_mm_srli_epi64(s, 4), mask128));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm_xor_si128(d, _mm_xor_si128(pl, ph)));
    }
    if (i < n) gf_addmul_scalar(dst + i, src + i, c, n - i);
  }
}

void gf_mul_buf_avx2(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  const NibbleTables& t = nibble_tables();
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
    const __m256i ph =
        _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(pl, ph));
  }
  if (i < n) {
    const __m128i lo128 = _mm256_castsi256_si128(lo);
    const __m128i hi128 = _mm256_castsi256_si128(hi);
    const __m128i mask128 = _mm_set1_epi8(0x0f);
    for (; i + 16 <= n; i += 16) {
      const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      const __m128i pl = _mm_shuffle_epi8(lo128, _mm_and_si128(s, mask128));
      const __m128i ph = _mm_shuffle_epi8(hi128, _mm_and_si128(_mm_srli_epi64(s, 4), mask128));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(pl, ph));
    }
    if (i < n) gf_mul_buf_scalar(dst + i, src + i, c, n - i);
  }
}

// Fused Reed-Solomon row: one pass over dst accumulating all m sources in a
// register, so per 32-byte block the dst traffic is a single store instead
// of the per-source load/xor/store of m chained gf_addmul calls. The
// per-coefficient nibble tables are broadcast once into a stack-resident
// array before the block loop; inside the loop they are L1-hot aligned
// loads. m <= 255 by the caller's contract (RS codewords), which bounds the
// table array at 16 KiB of stack.
void gf_rs_row_avx2(std::uint8_t* dst, const std::uint8_t* const* srcs, const Gf* cs,
                    std::size_t m, std::size_t n) {
  const NibbleTables& t = nibble_tables();
  alignas(32) __m256i tabs[2 * 255];
  for (std::size_t j = 0; j < m; ++j) {
    tabs[2 * j] = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[cs[j]])));
    tabs[2 * j + 1] = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[cs[j]])));
  }
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t j = 0; j < m; ++j) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i));
      const __m256i pl = _mm256_shuffle_epi8(tabs[2 * j], _mm256_and_si256(s, mask));
      const __m256i ph = _mm256_shuffle_epi8(
          tabs[2 * j + 1], _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
      acc = _mm256_xor_si256(acc, _mm256_xor_si256(pl, ph));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
  }
  if (i < n) {
    // Sub-block tail: the scalar composition is exact and the tail is at
    // most 31 bytes (arena-framed callers pad it away entirely).
    gf_mul_buf_scalar(dst + i, srcs[0] + i, cs[0], n - i);
    for (std::size_t j = 1; j < m; ++j) {
      gf_addmul_scalar(dst + i, srcs[j] + i, cs[j], n - i);
    }
  }
}

}  // namespace jqos::fec::detail

#else  // !x86 or compiler without -mavx2: keep the symbols, stay scalar.

namespace jqos::fec::detail {

bool gf_avx2_compiled() { return false; }

void gf_addmul_avx2(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  gf_addmul_scalar(dst, src, c, n);
}

void gf_mul_buf_avx2(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  gf_mul_buf_scalar(dst, src, c, n);
}

void gf_rs_row_avx2(std::uint8_t* dst, const std::uint8_t* const* srcs, const Gf* cs,
                    std::size_t m, std::size_t n) {
  gf_rs_row_scalar(dst, srcs, cs, m, n);
}

}  // namespace jqos::fec::detail

#endif
