// Packet-level batch coding on top of ReedSolomon.
//
// CR-WAN batches are sets of *packets* of different sizes (different flows,
// different applications), while Reed-Solomon wants equal-length shards.
// This module owns the shard framing: each data packet becomes the shard
//
//     [u16 original_length | payload bytes | zero padding]
//
// padded to the longest member of the batch, so a recovered shard yields the
// exact original payload. It also builds the CodedMeta carried in coded
// packets (batch id, codeword index, covered (flow, seq) keys) that DC2 and
// the cooperative-recovery protocol consume.
//
// Two encode paths exist:
//
//  * encode_batch — the original allocation-per-shard reference path. Kept
//    as the behavioral baseline: the zero-copy path is differentially
//    tested against it byte-for-byte, and simple call sites (tests, one-off
//    batches) keep using it.
//  * BatchEncoder::encode_into — the production hot path. All k shards are
//    framed into one reusable stride-aligned arena allocation and the SIMD
//    kernels write parity straight into the coded packets' payload buffers;
//    steady state performs no allocation beyond the output packets
//    themselves. See docs/CODING_PIPELINE.md for the full contract.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/packet.h"
#include "fec/reed_solomon.h"

namespace jqos::fec {

// Reusable scratch storage that frames a batch's shards into one contiguous
// allocation, each shard starting on a kAlignment boundary (stride =
// shard_len rounded up to kAlignment) so the SIMD GF(256) kernels read and
// write aligned lines.
//
// Ownership/lifetime: the arena owns its buffer; pointers returned by
// shard()/data() are valid until the next layout() call that grows the
// buffer, and are invalidated by move/destruction. The buffer only ever
// grows, so a long-lived arena (one per encoder service instance) reaches
// its high-water size once and then recycles it for every later batch.
// Not thread-safe; use one arena per thread.
class ShardArena {
 public:
  ShardArena() = default;
  // Copying would leave the copy's base pointer aimed at the source's
  // buffer (corruption, or use-after-free once the source dies). Moves are
  // safe: vector move preserves the data pointer base_ was derived from.
  ShardArena(const ShardArena&) = delete;
  ShardArena& operator=(const ShardArena&) = delete;
  ShardArena(ShardArena&&) = default;
  ShardArena& operator=(ShardArena&&) = default;

  // Alignment of every shard start. 64 covers the AVX2 kernels' 32-byte
  // step and keeps each shard cache-line aligned.
  static constexpr std::size_t kAlignment = 64;

  // Shards are zero-padded past shard_len up to padded_len() — shard_len
  // rounded up to one SIMD step — so kernels can run whole 32-byte steps
  // with no scalar tail; the extra parity bytes come out zero and are
  // trimmed by the caller.
  static constexpr std::size_t kKernelStep = 32;

  // Lays the arena out for `count` shards of `shard_len` bytes. Reuses the
  // existing allocation when it is large enough (the steady-state case);
  // otherwise reallocates, invalidating previously returned pointers.
  // Shard contents are NOT cleared — frame_shard_into overwrites prefix,
  // payload, and pad explicitly. O(1) when no growth is needed.
  void layout(std::size_t count, std::size_t shard_len);

  // Start of shard `i` (i < count of the last layout()); shard_len() bytes
  // are readable/writable, the slack up to stride() is never read by the
  // coding kernels.
  std::uint8_t* shard(std::size_t i) { return base_ + i * stride_; }
  const std::uint8_t* shard(std::size_t i) const { return base_ + i * stride_; }

  // Base pointer of shard 0; shard j lives at data() + j * stride().
  const std::uint8_t* data() const { return base_; }

  std::size_t stride() const { return stride_; }
  std::size_t shard_len() const { return shard_len_; }
  // Tail-free kernel length: shard_len rounded up to kKernelStep (never
  // exceeds stride). frame_shard_into zeroes shards up to this length.
  std::size_t padded_len() const { return padded_len_; }
  std::size_t count() const { return count_; }

  // Bytes currently owned (the high-water mark); exposed so tests can pin
  // the no-realloc steady-state property.
  std::size_t capacity_bytes() const { return buf_.size(); }

  // Writes the framed form of `payload` ([u16 len | payload | zero pad]) to
  // shard `i`, padding to the layout's padded_len. payload.size() + 2 must
  // be <= shard_len(). `payload` must not alias the arena.
  void frame_shard_into(std::size_t i, std::span<const std::uint8_t> payload);

 private:
  std::vector<std::uint8_t> buf_;  // Oversized by kAlignment for the aligned base.
  std::uint8_t* base_ = nullptr;
  std::size_t stride_ = 0;
  std::size_t shard_len_ = 0;
  std::size_t padded_len_ = 0;
  std::size_t count_ = 0;
};

// Encodes a batch of k data packets into `num_coded` coded packets of the
// given type (kInCoded for in-stream batches, kCrossCoded for cross-stream
// batches). `src`/`dst` address the coded packets (DC1 -> DC2).
//
// Preconditions: 1 <= k <= 255 - num_coded, all packets non-null.
// Reference path: allocates one framed copy per shard plus the parity
// vectors. Prefer BatchEncoder on per-batch hot paths.
std::vector<PacketPtr> encode_batch(std::span<const PacketPtr> data,
                                    std::size_t num_coded, PacketType coded_type,
                                    std::uint32_t batch_id, NodeId src, NodeId dst,
                                    SimTime now);

// The zero-copy production encoder. Owns a ShardArena and memoizes the last
// (k, r) codec, so a service instance that encodes batch after batch of the
// same shape performs, per batch: one framing pass over the data payloads
// into the arena, the SIMD parity computation directly into the output
// packets' payloads, and nothing else — no per-shard vectors, no
// intermediate parity buffers, no codec-cache lock.
//
// Not thread-safe (the arena is shared mutable state); keep one instance
// per encoding service/thread. Output packets are independently owned
// shared_ptrs, safe to retain beyond the encoder's lifetime.
class BatchEncoder {
 public:
  // Zero-copy equivalent of encode_batch: appends `num_coded` coded packets
  // to `out` (byte-identical payload and metadata to what encode_batch
  // returns for the same inputs). `out` is appended to, not cleared, so a
  // caller-reused vector amortizes its allocation too.
  //
  // With a non-null enabled `pool`, the coded packets come from the pool
  // (recycled storage, payload/covered capacity reused, zero allocator
  // traffic in steady state); otherwise they share one slab allocation.
  // Either way the bytes and metadata are identical — the RS kernels fully
  // overwrite the parity buffers, so recycled payloads need no re-zeroing.
  //
  // Preconditions: as encode_batch (throws std::invalid_argument on an
  // empty batch or k + num_coded > 255; packets non-null). Complexity:
  // O(k * shard_len) framing + O(k * num_coded * shard_len) field ops.
  void encode_into(std::span<const PacketPtr> data, std::size_t num_coded,
                   PacketType coded_type, std::uint32_t batch_id, NodeId src,
                   NodeId dst, SimTime now, std::vector<PacketPtr>& out,
                   PacketPool* pool = nullptr);

  // The scratch arena, exposed for tests (capacity high-water assertions).
  const ShardArena& arena() const { return arena_; }

 private:
  ShardArena arena_;
  std::vector<std::uint8_t*> parity_ptrs_;            // Reused per batch.
  std::vector<Packet*> pooled_pkts_;                  // Reused per batch.
  std::shared_ptr<const ReedSolomon> codec_;          // Memoized last shape,
                                                      // backed by the global
                                                      // (k, r) cache.
};

// Reconstructs the payloads of missing batch members.
//
// `meta` comes from any coded packet of the batch; `present_data` maps
// codeword positions (0..k-1) to the original payloads that are available
// (from peer receivers during cooperative recovery, or from DC2's own cache
// for in-stream recovery); `coded` holds the coded packets available for
// this batch. Recovery succeeds iff present_data.size() + coded.size() >= k.
//
// On success returns one entry per missing position: (codeword position,
// recovered payload). Returns nullopt when not enough symbols survive --
// the "fails silently" case of Section 4.4.
struct RecoveredPacket {
  std::size_t position = 0;  // Codeword position in meta.covered.
  PacketKey key;
  std::vector<std::uint8_t> payload;
};

// Convenience form: uses a transient arena (allocates scratch per call).
std::optional<std::vector<RecoveredPacket>> decode_batch(
    const CodedMeta& meta,
    std::span<const std::pair<std::size_t, std::span<const std::uint8_t>>> present_data,
    std::span<const PacketPtr> coded);

// Arena form, symmetric to BatchEncoder: frames the present payloads and
// reconstructs the missing shards inside `arena` (grow-only, reusable
// across calls — the recovery service keeps one per instance), so no
// shard-sized buffer is allocated or copied beyond the returned
// RecoveredPacket payloads. Small transient bookkeeping vectors (input
// lists, the sub-matrix inverse) are still heap-allocated per call —
// recovery runs per NACK, not per packet, so those are off the hot path.
// Only the missing codeword positions are reconstructed; positions the
// caller already holds are never materialized. Not thread-safe with
// respect to `arena`.
std::optional<std::vector<RecoveredPacket>> decode_batch(
    ShardArena& arena, const CodedMeta& meta,
    std::span<const std::pair<std::size_t, std::span<const std::uint8_t>>> present_data,
    std::span<const PacketPtr> coded);

// The shard length used for a batch whose largest payload is `max_payload`
// (payload plus the u16 length prefix).
std::size_t shard_length(std::size_t max_payload);

}  // namespace jqos::fec
