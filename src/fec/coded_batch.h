// Packet-level batch coding on top of ReedSolomon.
//
// CR-WAN batches are sets of *packets* of different sizes (different flows,
// different applications), while Reed-Solomon wants equal-length shards.
// This module owns the shard framing: each data packet becomes the shard
//
//     [u16 original_length | payload bytes | zero padding]
//
// padded to the longest member of the batch, so a recovered shard yields the
// exact original payload. It also builds the CodedMeta carried in coded
// packets (batch id, codeword index, covered (flow, seq) keys) that DC2 and
// the cooperative-recovery protocol consume.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/packet.h"
#include "fec/reed_solomon.h"

namespace jqos::fec {

// Encodes a batch of k data packets into `num_coded` coded packets of the
// given type (kInCoded for in-stream batches, kCrossCoded for cross-stream
// batches). `src`/`dst` address the coded packets (DC1 -> DC2).
//
// Preconditions: 1 <= k <= 255 - num_coded, all packets non-null.
std::vector<PacketPtr> encode_batch(std::span<const PacketPtr> data,
                                    std::size_t num_coded, PacketType coded_type,
                                    std::uint32_t batch_id, NodeId src, NodeId dst,
                                    SimTime now);

// Reconstructs the payloads of missing batch members.
//
// `meta` comes from any coded packet of the batch; `present_data` maps
// codeword positions (0..k-1) to the original payloads that are available
// (from peer receivers during cooperative recovery, or from DC2's own cache
// for in-stream recovery); `coded` holds the coded packets available for
// this batch. Recovery succeeds iff present_data.size() + coded.size() >= k.
//
// On success returns one entry per missing position: (codeword position,
// recovered payload). Returns nullopt when not enough symbols survive --
// the "fails silently" case of Section 4.4.
struct RecoveredPacket {
  std::size_t position = 0;  // Codeword position in meta.covered.
  PacketKey key;
  std::vector<std::uint8_t> payload;
};

std::optional<std::vector<RecoveredPacket>> decode_batch(
    const CodedMeta& meta,
    std::span<const std::pair<std::size_t, std::span<const std::uint8_t>>> present_data,
    std::span<const PacketPtr> coded);

// The shard length used for a batch whose largest payload is `max_payload`.
std::size_t shard_length(std::size_t max_payload);

}  // namespace jqos::fec
