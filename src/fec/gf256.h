// Arithmetic over GF(2^8) with the AES polynomial x^8+x^4+x^3+x^2+1 (0x11d
// representation as used by Reed-Solomon implementations such as zfec, the
// library the paper's prototype used).
//
// Multiplication is table-driven via log/exp tables built once at static
// initialization; the buffer kernels (addmul / mul_buf) are what the encoder
// hot path uses, processing whole packets at a time.
//
// The buffer kernels are SIMD-accelerated: a split-nibble PSHUFB
// implementation (SSSE3 at 16 bytes/step, AVX2 at 32 bytes/step, scalar
// table walk as the portable fallback) is selected once at startup by CPUID
// runtime dispatch. See gf256_simd.h for the technique, the dispatch order,
// and how to force a specific backend when debugging (gf_set_backend() or
// the JQOS_GF_BACKEND environment variable).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace jqos::fec {

// Field element.
using Gf = std::uint8_t;

// Addition and subtraction in GF(2^8) are both XOR.
constexpr Gf gf_add(Gf a, Gf b) { return a ^ b; }
constexpr Gf gf_sub(Gf a, Gf b) { return a ^ b; }

// Multiplication, division, inverse and exponentiation via the log/exp
// tables. gf_div throws std::domain_error when b == 0 and gf_inv throws when
// a == 0: both are undefined in a field, and a silent wrong answer here
// corrupts every packet decoded through the offending matrix row.
Gf gf_mul(Gf a, Gf b);
Gf gf_div(Gf a, Gf b);
Gf gf_inv(Gf a);
Gf gf_pow(Gf a, unsigned e);

// dst[i] ^= c * src[i] for i in [0, n). The core encode/decode kernel: one
// call accumulates one data packet, scaled by a matrix coefficient, into a
// coded packet. No alignment requirement on either pointer. dst and src
// must be either exactly equal or non-overlapping; partial overlap is
// undefined (the SIMD backends load and store 16/32 bytes at a time).
void gf_addmul(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n);

// dst[i] = c * src[i]. Same aliasing contract as gf_addmul: exact dst == src
// (in-place scaling, used by matrix inversion) or no overlap.
void gf_mul_buf(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n);

// Fused Reed-Solomon row kernel:
//
//     dst[i] = XOR over j in [0, k) of coeffs[j] * src_j[i],
//
// where src_j = src + j * stride (k equal-length shards laid out at a fixed
// stride, as in fec::ShardArena). Computes a whole codeword row in ONE pass
// over dst — the per-source gf_addmul formulation re-reads and re-writes
// dst k times; this accumulates all k products in registers and stores each
// dst block once, which is what makes the strided arena layout faster than
// per-shard pointer chasing. dst is fully overwritten (k == 0 or all-zero
// coefficients zero it). Preconditions: k <= 255, stride >= n, dst must not
// overlap any source shard. O(k * n) field operations.
void gf_rs_row(std::uint8_t* dst, const std::uint8_t* src, std::size_t stride,
               const Gf* coeffs, std::size_t k, std::size_t n);

// Pointer-array variant of gf_rs_row for sources that are not stride-
// contiguous (decode reads a mix of arena shards and packet payloads).
// Same contract otherwise.
void gf_rs_row(std::uint8_t* dst, const std::uint8_t* const* srcs,
               const Gf* coeffs, std::size_t k, std::size_t n);

// Direct table access for tests that validate table construction against
// schoolbook carry-less multiplication.
Gf gf_exp_table(unsigned i);   // alpha^i, i in [0, 509]
int gf_log_table(Gf a);        // log_alpha(a), a != 0

}  // namespace jqos::fec
