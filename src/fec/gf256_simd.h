// Runtime-dispatched SIMD backends for the GF(256) buffer kernels.
//
// The hot kernels (gf_addmul / gf_mul_buf in gf256.h) are implemented three
// ways and selected once at startup:
//
//   kScalar  portable 256-entry table walk (always available)
//   kSsse3   split-nibble PSHUFB, 16 bytes per step
//   kAvx2    split-nibble VPSHUFB, 32 bytes per step
//
// The split-nibble technique (zfec / gf-complete / ISA-L lineage — zfec is
// the library the paper's prototype used): for a fixed coefficient c, write
// each source byte as x = hi·16 + lo. Multiplication by c is linear over
// GF(2), so c·x = c·(hi·16) ^ c·(lo). Precomputing two 16-entry tables per
// coefficient — products of c with every low nibble and with every high
// nibble — turns one field multiply per byte into two byte shuffles and an
// XOR, applied to 16 (SSSE3) or 32 (AVX2) bytes per instruction.
//
// Dispatch order is best-first: AVX2 if the CPU reports it, else SSSE3, else
// scalar. The choice can be overridden two ways:
//
//   - programmatically: gf_set_backend(GfBackend::kScalar) — used by the
//     differential tests and the per-backend bench sweeps;
//   - environment: JQOS_GF_BACKEND=scalar|ssse3|avx2|auto, read once at
//     first kernel use — used by CI to force each backend under ASan.
//
// gf_set_backend is not synchronized against concurrent kernel calls; switch
// backends only while no encode/decode is in flight (tests and bench setup).
#pragma once

#include <vector>

namespace jqos::fec {

enum class GfBackend {
  kScalar,
  kSsse3,
  kAvx2,
};

// True when the backend is both compiled in (x86 build with the matching
// ISA flags) and supported by the CPU we are running on. kScalar is always
// available.
bool gf_backend_available(GfBackend b);

// Every backend available on this machine, slowest first (so index 0 is
// always kScalar). The single source of truth for tests and bench sweeps
// that iterate backends — a newly added backend joins their coverage
// automatically.
std::vector<GfBackend> gf_available_backends();

// The backend the dispatcher would pick on its own: the fastest available
// one, unless the JQOS_GF_BACKEND environment variable narrows the choice.
GfBackend gf_best_backend();

// Forces the kernels onto `b`. Returns false (and leaves the current choice
// untouched) when `b` is not available on this machine.
bool gf_set_backend(GfBackend b);

// Currently active backend.
GfBackend gf_backend();

// Human-readable name of a backend: "scalar", "ssse3", "avx2".
const char* gf_backend_name(GfBackend b);

// Name of the currently active backend.
const char* gf_backend_name();

}  // namespace jqos::fec
