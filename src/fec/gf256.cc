#include "fec/gf256.h"

#include <array>
#include <stdexcept>

#include "fec/gf256_simd_impl.h"

namespace jqos::fec {
namespace {

// 0x11d = x^8 + x^4 + x^3 + x^2 + 1, generator alpha = 2.
constexpr unsigned kPoly = 0x11d;

struct Tables {
  // exp_ is doubled so gf_mul can skip the mod-255 reduction.
  std::array<Gf, 510> exp_{};
  std::array<int, 256> log_{};
  // 256x256 full multiplication table: one L1-resident 64KB lookup per
  // product; measurably faster than log/exp in the addmul kernel.
  std::array<std::array<Gf, 256>, 256> mul_{};

  Tables() {
    unsigned x = 1;
    for (int i = 0; i < 255; ++i) {
      exp_[static_cast<std::size_t>(i)] = static_cast<Gf>(x);
      log_[x] = i;
      x <<= 1;
      if (x & 0x100) x ^= kPoly;
    }
    for (int i = 255; i < 510; ++i) exp_[static_cast<std::size_t>(i)] = exp_[static_cast<std::size_t>(i - 255)];
    log_[0] = -1;  // log(0) is undefined; sentinel for debug checks.
    for (int a = 0; a < 256; ++a) {
      for (int b = 0; b < 256; ++b) {
        if (a == 0 || b == 0) {
          mul_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = 0;
        } else {
          mul_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
              exp_[static_cast<std::size_t>(log_[a] + log_[b])];
        }
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

Gf gf_mul(Gf a, Gf b) { return tables().mul_[a][b]; }

Gf gf_div(Gf a, Gf b) {
  // Division by zero is undefined in a field. The previous implementation
  // fell through to log_[0] = -1 sentinel arithmetic and returned a wrong
  // non-zero value; fail loudly instead so decoder bugs surface at the
  // source rather than as corrupted recovered packets.
  if (b == 0) throw std::domain_error("gf_div: division by zero in GF(256)");
  if (a == 0) return 0;
  const Tables& t = tables();
  int d = t.log_[a] - t.log_[b];
  if (d < 0) d += 255;
  return t.exp_[static_cast<std::size_t>(d)];
}

Gf gf_inv(Gf a) {
  if (a == 0) throw std::domain_error("gf_inv: zero has no inverse in GF(256)");
  const Tables& t = tables();
  return t.exp_[static_cast<std::size_t>(255 - t.log_[a])];
}

Gf gf_pow(Gf a, unsigned e) {
  if (a == 0) return e == 0 ? 1 : 0;
  const Tables& t = tables();
  const unsigned l = (static_cast<unsigned>(t.log_[a]) * e) % 255u;
  return t.exp_[l];
}

// The c==0 / c==1 fast paths are handled here, before dispatch: c==0 is a
// no-op (or a zero/copy for mul_buf) and c==1 is a plain XOR/copy, both of
// which the compiler already vectorizes; only genuine products reach the
// backend kernels. The XOR/copy loops need no table and no PSHUFB.
void gf_addmul(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  detail::gf_addmul_kernel()(dst, src, c, n);
}

void gf_mul_buf(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  if (c == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
    return;
  }
  detail::gf_mul_buf_kernel()(dst, src, c, n);
}

void gf_rs_row(std::uint8_t* dst, const std::uint8_t* const* srcs, const Gf* coeffs,
               std::size_t k, std::size_t n) {
  // Compact away c == 0 terms (they contribute nothing); the kernels then
  // only see active sources. k <= 255 by the RS contract, so fixed stack
  // arrays suffice — no allocation on this path.
  const std::uint8_t* active[255];
  Gf cs[255];
  std::size_t m = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (coeffs[j] == 0) continue;
    active[m] = srcs[j];
    cs[m] = coeffs[j];
    ++m;
  }
  if (m == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  detail::gf_rs_row_kernel()(dst, active, cs, m, n);
}

void gf_rs_row(std::uint8_t* dst, const std::uint8_t* src, std::size_t stride,
               const Gf* coeffs, std::size_t k, std::size_t n) {
  // Materialize the strided shard pointers and share the pointer-array
  // overload's compaction logic.
  const std::uint8_t* srcs[255];
  for (std::size_t j = 0; j < k; ++j) srcs[j] = src + j * stride;
  gf_rs_row(dst, srcs, coeffs, k, n);
}

namespace detail {

// Scalar backend: one L1-resident 256-byte row walk per buffer. Defined here
// (not in gf256_simd.cc) because it reads the full multiplication table.
void gf_addmul_scalar(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  const auto& row = tables().mul_[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void gf_mul_buf_scalar(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  const auto& row = tables().mul_[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

// Reference composition of the fused row kernel: first active term
// initializes, the rest accumulate. The tables are exact for every
// coefficient (including 1), so no fast-path stripping is needed here.
void gf_rs_row_scalar(std::uint8_t* dst, const std::uint8_t* const* srcs, const Gf* cs,
                      std::size_t m, std::size_t n) {
  gf_mul_buf_scalar(dst, srcs[0], cs[0], n);
  for (std::size_t j = 1; j < m; ++j) gf_addmul_scalar(dst, srcs[j], cs[j], n);
}

}  // namespace detail

Gf gf_exp_table(unsigned i) { return tables().exp_.at(i); }

int gf_log_table(Gf a) { return tables().log_.at(a); }

}  // namespace jqos::fec
