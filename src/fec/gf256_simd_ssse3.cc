// SSSE3 split-nibble GF(256) kernels. This TU (and only this TU) is built
// with -mssse3 so PSHUFB is usable without raising the ISA floor of the rest
// of the build; dispatch guarantees these run only on CPUs that report SSSE3.
#include "fec/gf256_simd_impl.h"

#if JQOS_GF_X86 && defined(__SSSE3__)

#include <tmmintrin.h>

namespace jqos::fec::detail {

bool gf_ssse3_compiled() { return true; }

void gf_addmul_ssse3(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  const NibbleTables& t = nibble_tables();
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  // Unaligned loads/stores handle arbitrary head alignment; the remainder
  // (< 16 bytes) falls through to the scalar tail.
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
    const __m128i ph = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, _mm_xor_si128(pl, ph)));
  }
  if (i < n) gf_addmul_scalar(dst + i, src + i, c, n - i);
}

void gf_mul_buf_ssse3(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  const NibbleTables& t = nibble_tables();
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
    const __m128i ph = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(pl, ph));
  }
  if (i < n) gf_mul_buf_scalar(dst + i, src + i, c, n - i);
}

// Fused Reed-Solomon row at 16 bytes per step; see gf_rs_row_avx2 for the
// rationale. Tables for all m coefficients sit in an L1-hot stack array
// (16 B each, 8 KiB max), dst is stored once per block.
void gf_rs_row_ssse3(std::uint8_t* dst, const std::uint8_t* const* srcs, const Gf* cs,
                     std::size_t m, std::size_t n) {
  const NibbleTables& t = nibble_tables();
  alignas(16) __m128i tabs[2 * 255];
  for (std::size_t j = 0; j < m; ++j) {
    tabs[2 * j] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[cs[j]]));
    tabs[2 * j + 1] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[cs[j]]));
  }
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i acc = _mm_setzero_si128();
    for (std::size_t j = 0; j < m; ++j) {
      const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(srcs[j] + i));
      const __m128i pl = _mm_shuffle_epi8(tabs[2 * j], _mm_and_si128(s, mask));
      const __m128i ph =
          _mm_shuffle_epi8(tabs[2 * j + 1], _mm_and_si128(_mm_srli_epi64(s, 4), mask));
      acc = _mm_xor_si128(acc, _mm_xor_si128(pl, ph));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc);
  }
  if (i < n) {
    gf_mul_buf_scalar(dst + i, srcs[0] + i, cs[0], n - i);
    for (std::size_t j = 1; j < m; ++j) {
      gf_addmul_scalar(dst + i, srcs[j] + i, cs[j], n - i);
    }
  }
}

}  // namespace jqos::fec::detail

#else  // !x86 or compiler without -mssse3: keep the symbols, stay scalar.

namespace jqos::fec::detail {

bool gf_ssse3_compiled() { return false; }

void gf_addmul_ssse3(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  gf_addmul_scalar(dst, src, c, n);
}

void gf_mul_buf_ssse3(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  gf_mul_buf_scalar(dst, src, c, n);
}

void gf_rs_row_ssse3(std::uint8_t* dst, const std::uint8_t* const* srcs, const Gf* cs,
                     std::size_t m, std::size_t n) {
  gf_rs_row_scalar(dst, srcs, cs, m, n);
}

}  // namespace jqos::fec::detail

#endif
