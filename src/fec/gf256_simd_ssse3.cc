// SSSE3 split-nibble GF(256) kernels. This TU (and only this TU) is built
// with -mssse3 so PSHUFB is usable without raising the ISA floor of the rest
// of the build; dispatch guarantees these run only on CPUs that report SSSE3.
#include "fec/gf256_simd_impl.h"

#if JQOS_GF_X86 && defined(__SSSE3__)

#include <tmmintrin.h>

namespace jqos::fec::detail {

bool gf_ssse3_compiled() { return true; }

void gf_addmul_ssse3(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  const NibbleTables& t = nibble_tables();
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  // Unaligned loads/stores handle arbitrary head alignment; the remainder
  // (< 16 bytes) falls through to the scalar tail.
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
    const __m128i ph = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, _mm_xor_si128(pl, ph)));
  }
  if (i < n) gf_addmul_scalar(dst + i, src + i, c, n - i);
}

void gf_mul_buf_ssse3(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  const NibbleTables& t = nibble_tables();
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
    const __m128i ph = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(pl, ph));
  }
  if (i < n) gf_mul_buf_scalar(dst + i, src + i, c, n - i);
}

}  // namespace jqos::fec::detail

#else  // !x86 or compiler without -mssse3: keep the symbols, stay scalar.

namespace jqos::fec::detail {

bool gf_ssse3_compiled() { return false; }

void gf_addmul_ssse3(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  gf_addmul_scalar(dst, src, c, n);
}

void gf_mul_buf_ssse3(std::uint8_t* dst, const std::uint8_t* src, Gf c, std::size_t n) {
  gf_mul_buf_scalar(dst, src, c, n);
}

}  // namespace jqos::fec::detail

#endif
