#include "fec/reed_solomon.h"

#include <cstring>
#include <stdexcept>

namespace jqos::fec {

ReedSolomon::ReedSolomon(std::size_t k, std::size_t r) : k_(k), r_(r) {
  if (k == 0) throw std::invalid_argument("ReedSolomon: k must be >= 1");
  if (k + r > 255) throw std::invalid_argument("ReedSolomon: k + r must be <= 255");
  Matrix v = Matrix::vandermonde(k + r, k);
  std::vector<std::size_t> top(k);
  for (std::size_t i = 0; i < k; ++i) top[i] = i;
  auto top_inv = v.select_rows(top).inverted();
  if (!top_inv) throw std::logic_error("ReedSolomon: Vandermonde top block singular");
  enc_ = v.mul(*top_inv);
}

std::vector<std::vector<std::uint8_t>> ReedSolomon::encode(
    std::span<const std::span<const std::uint8_t>> data) const {
  if (data.size() != k_) throw std::invalid_argument("encode: need exactly k shards");
  const std::size_t len = data.empty() ? 0 : data[0].size();
  for (const auto& shard : data) {
    if (shard.size() != len) throw std::invalid_argument("encode: unequal shard lengths");
  }
  std::vector<std::vector<std::uint8_t>> parity(r_, std::vector<std::uint8_t>(len, 0));
  if (len == 0) return parity;
  std::vector<const std::uint8_t*> data_ptrs(k_);
  std::vector<std::uint8_t*> parity_ptrs(r_);
  for (std::size_t i = 0; i < k_; ++i) data_ptrs[i] = data[i].data();
  for (std::size_t i = 0; i < r_; ++i) parity_ptrs[i] = parity[i].data();
  encode_into(data_ptrs.data(), len, parity_ptrs.data());
  return parity;
}

void ReedSolomon::encode_into(const std::uint8_t* const* data, std::size_t shard_len,
                              std::uint8_t* const* parity) const {
  for (std::size_t p = 0; p < r_; ++p) {
    std::uint8_t* out = parity[p];
    const Gf* row = enc_.row(k_ + p);
    // First term initializes, remaining terms accumulate.
    gf_mul_buf(out, data[0], row[0], shard_len);
    for (std::size_t j = 1; j < k_; ++j) {
      gf_addmul(out, data[j], row[j], shard_len);
    }
  }
}

void ReedSolomon::encode_into(const std::uint8_t* data, std::size_t stride,
                              std::size_t shard_len, std::uint8_t* const* parity) const {
  if (stride < shard_len) throw std::invalid_argument("encode_into: stride < shard_len");
  // The strided layout feeds the fused row kernel: one pass over each
  // parity buffer instead of k chained read-modify-write gf_addmul passes.
  for (std::size_t p = 0; p < r_; ++p) {
    gf_rs_row(parity[p], data, stride, enc_.row(k_ + p), k_, shard_len);
  }
}

std::optional<std::vector<std::vector<std::uint8_t>>> ReedSolomon::decode(
    std::span<const std::pair<std::size_t, std::span<const std::uint8_t>>> shards) const {
  if (shards.size() < k_) return std::nullopt;
  const std::size_t len = shards.empty() ? 0 : shards[0].second.size();
  std::vector<std::size_t> rows;
  rows.reserve(k_);
  std::vector<std::span<const std::uint8_t>> bufs;
  bufs.reserve(k_);
  std::vector<bool> seen(n(), false);
  for (const auto& [idx, buf] : shards) {
    if (rows.size() == k_) break;
    if (idx >= n()) throw std::out_of_range("decode: shard index out of range");
    if (seen[idx]) throw std::invalid_argument("decode: duplicate shard index");
    if (buf.size() != len) throw std::invalid_argument("decode: unequal shard lengths");
    seen[idx] = true;
    rows.push_back(idx);
    bufs.push_back(buf);
  }
  auto sub_inv = enc_.select_rows(rows).inverted();
  if (!sub_inv) return std::nullopt;  // Cannot happen for distinct Vandermonde rows.

  std::vector<std::vector<std::uint8_t>> out(k_, std::vector<std::uint8_t>(len, 0));
  for (std::size_t i = 0; i < k_; ++i) {
    // Fast path: if a data shard was received intact, copy it through
    // instead of recomputing it from the inverse.
    bool direct = false;
    for (std::size_t j = 0; j < rows.size(); ++j) {
      if (rows[j] == i) {
        out[i].assign(bufs[j].begin(), bufs[j].end());
        direct = true;
        break;
      }
    }
    if (direct || len == 0) continue;
    // Same accumulate structure as encode_into: first term initializes via
    // mul_buf (saves one pass over the zero-filled buffer), the rest
    // accumulate through the dispatched addmul kernel.
    gf_mul_buf(out[i].data(), bufs[0].data(), sub_inv->at(i, 0), len);
    for (std::size_t j = 1; j < k_; ++j) {
      gf_addmul(out[i].data(), bufs[j].data(), sub_inv->at(i, j), len);
    }
  }
  return out;
}

bool ReedSolomon::decode_into(
    std::span<const std::pair<std::size_t, const std::uint8_t*>> shards,
    std::size_t shard_len, std::span<const std::size_t> targets,
    std::uint8_t* const* out) const {
  if (shards.size() < k_) return false;
  std::vector<std::size_t> rows;
  rows.reserve(k_);
  std::vector<const std::uint8_t*> bufs;
  bufs.reserve(k_);
  std::vector<bool> seen(n(), false);
  for (const auto& [idx, buf] : shards) {
    if (rows.size() == k_) break;
    if (idx >= n()) throw std::out_of_range("decode_into: shard index out of range");
    if (seen[idx]) throw std::invalid_argument("decode_into: duplicate shard index");
    seen[idx] = true;
    rows.push_back(idx);
    bufs.push_back(buf);
  }
  if (rows.size() < k_) return false;

  // The inverse is only needed for targets that were not received directly;
  // compute it lazily so the all-direct case (every target survived) costs
  // nothing but memcpys.
  std::optional<Matrix> sub_inv;
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const std::size_t pos = targets[t];
    if (pos >= k_) throw std::out_of_range("decode_into: target out of range");
    std::uint8_t* dst = out[t];
    bool direct = false;
    for (std::size_t j = 0; j < rows.size(); ++j) {
      if (rows[j] == pos) {
        if (shard_len != 0) std::memcpy(dst, bufs[j], shard_len);
        direct = true;
        break;
      }
    }
    if (direct || shard_len == 0) continue;
    if (!sub_inv) {
      sub_inv = enc_.select_rows(rows).inverted();
      if (!sub_inv) return false;  // Cannot happen for distinct Vandermonde rows.
    }
    gf_rs_row(dst, bufs.data(), sub_inv->row(pos), k_, shard_len);
  }
  return true;
}

std::vector<Gf> ReedSolomon::encode_row(std::size_t i) const {
  std::vector<Gf> row(k_);
  for (std::size_t j = 0; j < k_; ++j) row[j] = enc_.at(i, j);
  return row;
}

}  // namespace jqos::fec
