// Systematic Reed-Solomon erasure code over GF(2^8), zfec-compatible in
// spirit: k data shards are left untouched and r parity shards are appended;
// any k of the k+r shards reconstruct the data.
//
// Construction: start from a (k+r) x k Vandermonde matrix over distinct
// evaluation points, then right-multiply by the inverse of its top k x k
// block. The top block becomes the identity (systematic), and every square
// submatrix built from distinct rows remains invertible, which is exactly
// the any-k-of-n property.
//
// A ReedSolomon instance is immutable after construction and safe to share
// across threads; coded_batch.cc caches instances per (k, r) for exactly
// that reason.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "fec/matrix.h"

namespace jqos::fec {

class ReedSolomon {
 public:
  // k data shards, r parity shards; k >= 1, r >= 0, k + r <= 255.
  // Construction inverts a k x k block: O(k^3) field operations. Cache and
  // reuse instances (see coded_batch.cc's shared_codec) instead of building
  // one per batch.
  ReedSolomon(std::size_t k, std::size_t r);

  std::size_t k() const { return k_; }
  std::size_t r() const { return r_; }
  std::size_t n() const { return k_ + r_; }

  // Computes the r parity shards for k equal-length data shards.
  // `data` must contain exactly k spans of identical length. Allocates the
  // returned parity vectors; O(k * r * len) field operations. Convenience
  // wrapper over encode_into for call sites off the hot path.
  std::vector<std::vector<std::uint8_t>> encode(
      std::span<const std::span<const std::uint8_t>> data) const;

  // Zero-allocation encode core: data[j] must point at shard_len readable
  // bytes (shard j), parity[i] at shard_len writable bytes. Parity buffers
  // are fully overwritten (no need to pre-zero) and must not alias any data
  // shard or each other. O(k * r * shard_len), no allocation.
  void encode_into(const std::uint8_t* const* data, std::size_t shard_len,
                   std::uint8_t* const* parity) const;

  // Strided encode core for arena-framed batches (BatchEncoder's layout):
  // shard j lives at data + j * stride, stride >= shard_len. Reads the k
  // shards in place — no per-shard pointer table, no copies. Same aliasing
  // and cost contract as the pointer-array overload.
  void encode_into(const std::uint8_t* data, std::size_t stride, std::size_t shard_len,
                   std::uint8_t* const* parity) const;

  // Reconstructs all k data shards from any >= k shards. Each entry pairs a
  // row index (0..k-1 for data shards, k..n-1 for parity) with the shard
  // bytes; all shards must have equal length and indices must be distinct.
  // Returns nullopt if fewer than k shards are supplied. Allocates the
  // returned shards and a k x k inverse; O(k^3 + k^2 * len).
  std::optional<std::vector<std::vector<std::uint8_t>>> decode(
      std::span<const std::pair<std::size_t, std::span<const std::uint8_t>>> shards) const;

  // Targeted zero-copy decode: reconstructs only the data shards named in
  // `targets` (codeword positions 0..k-1), writing target i's shard into
  // out[i], which must point at shard_len writable bytes. `shards` pairs row
  // indices with shard pointers (each shard_len long, first k distinct
  // entries are used); out buffers must not alias any input shard. Returns
  // false when fewer than k distinct shards are supplied. Throws
  // std::out_of_range / std::invalid_argument on malformed indices, like
  // decode. Cost: one O(k^3) inversion plus O(k * len) per requested target
  // that was not received directly; no allocation proportional to len.
  bool decode_into(
      std::span<const std::pair<std::size_t, const std::uint8_t*>> shards,
      std::size_t shard_len, std::span<const std::size_t> targets,
      std::uint8_t* const* out) const;

  // Row `i` of the full (systematic) encoding matrix; exposed for tests.
  std::vector<Gf> encode_row(std::size_t i) const;

 private:
  std::size_t k_;
  std::size_t r_;
  Matrix enc_;  // (k + r) x k systematic encoding matrix.
};

}  // namespace jqos::fec
