// Systematic Reed-Solomon erasure code over GF(2^8), zfec-compatible in
// spirit: k data shards are left untouched and r parity shards are appended;
// any k of the k+r shards reconstruct the data.
//
// Construction: start from a (k+r) x k Vandermonde matrix over distinct
// evaluation points, then right-multiply by the inverse of its top k x k
// block. The top block becomes the identity (systematic), and every square
// submatrix built from distinct rows remains invertible, which is exactly
// the any-k-of-n property.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "fec/matrix.h"

namespace jqos::fec {

class ReedSolomon {
 public:
  // k data shards, r parity shards; k >= 1, r >= 0, k + r <= 255.
  ReedSolomon(std::size_t k, std::size_t r);

  std::size_t k() const { return k_; }
  std::size_t r() const { return r_; }
  std::size_t n() const { return k_ + r_; }

  // Computes the r parity shards for k equal-length data shards.
  // `data` must contain exactly k spans of identical length.
  std::vector<std::vector<std::uint8_t>> encode(
      std::span<const std::span<const std::uint8_t>> data) const;

  // Zero-allocation variant for the encoding hot path (Figure 10 benchmark):
  // parity[i] must point at shard_len writable bytes.
  void encode_into(const std::uint8_t* const* data, std::size_t shard_len,
                   std::uint8_t* const* parity) const;

  // Reconstructs all k data shards from any >= k shards. Each entry pairs a
  // row index (0..k-1 for data shards, k..n-1 for parity) with the shard
  // bytes; all shards must have equal length and indices must be distinct.
  // Returns nullopt if fewer than k shards are supplied.
  std::optional<std::vector<std::vector<std::uint8_t>>> decode(
      std::span<const std::pair<std::size_t, std::span<const std::uint8_t>>> shards) const;

  // Row `i` of the full (systematic) encoding matrix; exposed for tests.
  std::vector<Gf> encode_row(std::size_t i) const;

 private:
  std::size_t k_;
  std::size_t r_;
  Matrix enc_;  // (k + r) x k systematic encoding matrix.
};

}  // namespace jqos::fec
