#include "fec/coded_batch.h"

#include <algorithm>

#include "common/packet_pool.h"
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace jqos::fec {
namespace {

// Constructing a ReedSolomon codec builds and inverts a Vandermonde block —
// O(k^3) field operations. Batches reuse a handful of (k, r) shapes for the
// lifetime of a run, so cache codecs instead of rebuilding one per batch.
// ReedSolomon is immutable after construction, making the shared instances
// safe for concurrent encode/decode; the mutex only guards the map itself.
//
// decode_batch feeds (k, r) straight from received packet metadata, so the
// cache is bounded: a peer cycling through distinct shapes flushes the cache
// rather than growing it without limit. Callers hold shared_ptr, so a flush
// cannot free a codec that another thread is mid-encode on. The codec is
// constructed before the map is touched, so a throwing constructor (invalid
// shape from corrupt metadata) leaves no empty slot behind.
std::shared_ptr<const ReedSolomon> shared_codec_slow(std::size_t k, std::size_t r) {
  constexpr std::size_t kMaxCachedShapes = 64;
  static std::mutex mu;
  static std::map<std::pair<std::size_t, std::size_t>, std::shared_ptr<const ReedSolomon>>
      cache;
  {
    const std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find({k, r});
    if (it != cache.end()) return it->second;
  }
  auto codec = std::make_shared<const ReedSolomon>(k, r);  // Built outside the lock.
  const std::lock_guard<std::mutex> lock(mu);
  if (cache.size() >= kMaxCachedShapes) cache.clear();
  return cache.try_emplace({k, r}, std::move(codec)).first->second;
}

// Per-thread front for the global cache: one experiment shard (= one
// thread) cycles through a handful of (k, r) shapes, so a tiny direct-
// mapped thread_local table turns the steady-state decode path into two
// integer compares -- no mutex, no sharing, no contention between shards.
// Entries hold shared_ptr copies, so a global-cache flush can never free a
// codec a thread still references.
std::shared_ptr<const ReedSolomon> shared_codec(std::size_t k, std::size_t r) {
  struct Entry {
    std::size_t k = 0, r = 0;
    std::shared_ptr<const ReedSolomon> codec;
  };
  constexpr std::size_t kTlsSlots = 8;
  thread_local Entry tls[kTlsSlots];
  Entry& e = tls[(k * 31 + r) % kTlsSlots];
  if (e.codec && e.k == k && e.r == r) return e.codec;
  e.codec = shared_codec_slow(k, r);
  e.k = k;
  e.r = r;
  return e.codec;
}

// Shard framing: 2-byte original length prefix.
constexpr std::size_t kLenPrefix = 2;

std::vector<std::uint8_t> frame_shard(std::span<const std::uint8_t> payload,
                                      std::size_t shard_len) {
  std::vector<std::uint8_t> shard(shard_len, 0);
  shard[0] = static_cast<std::uint8_t>(payload.size() >> 8);
  shard[1] = static_cast<std::uint8_t>(payload.size() & 0xff);
  std::copy(payload.begin(), payload.end(), shard.begin() + kLenPrefix);
  return shard;
}

std::vector<std::uint8_t> unframe_shard(std::span<const std::uint8_t> shard) {
  if (shard.size() < kLenPrefix) return {};
  const std::size_t len = (static_cast<std::size_t>(shard[0]) << 8) | shard[1];
  if (len > shard.size() - kLenPrefix) return {};  // Corrupt frame.
  return std::vector<std::uint8_t>(shard.begin() + kLenPrefix,
                                   shard.begin() + static_cast<std::ptrdiff_t>(kLenPrefix + len));
}

}  // namespace

std::size_t shard_length(std::size_t max_payload) { return max_payload + kLenPrefix; }

void ShardArena::layout(std::size_t count, std::size_t shard_len) {
  stride_ = (shard_len + kAlignment - 1) / kAlignment * kAlignment;
  shard_len_ = shard_len;
  padded_len_ = std::min(stride_, (shard_len + kKernelStep - 1) / kKernelStep * kKernelStep);
  count_ = count;
  const std::size_t need = count * stride_ + kAlignment;
  if (buf_.size() < need) buf_.resize(need);
  const auto addr = reinterpret_cast<std::uintptr_t>(buf_.data());
  const std::uintptr_t aligned = (addr + kAlignment - 1) / kAlignment * kAlignment;
  base_ = buf_.data() + (aligned - addr);
}

void ShardArena::frame_shard_into(std::size_t i, std::span<const std::uint8_t> payload) {
  std::uint8_t* shard_ptr = shard(i);
  shard_ptr[0] = static_cast<std::uint8_t>(payload.size() >> 8);
  shard_ptr[1] = static_cast<std::uint8_t>(payload.size() & 0xff);
  if (!payload.empty()) std::memcpy(shard_ptr + kLenPrefix, payload.data(), payload.size());
  // Zero only the pad (through padded_len, so kernels can run tail-free):
  // the arena is recycled across batches, so bytes past the payload may
  // hold the previous batch's data.
  const std::size_t used = kLenPrefix + payload.size();
  if (used < padded_len_) std::memset(shard_ptr + used, 0, padded_len_ - used);
}

std::vector<PacketPtr> encode_batch(std::span<const PacketPtr> data,
                                    std::size_t num_coded, PacketType coded_type,
                                    std::uint32_t batch_id, NodeId src, NodeId dst,
                                    SimTime now) {
  if (data.empty()) throw std::invalid_argument("encode_batch: empty batch");
  if (data.size() + num_coded > 255) {
    throw std::invalid_argument("encode_batch: batch too large for GF(256)");
  }
  std::size_t max_payload = 0;
  for (const PacketPtr& p : data) max_payload = std::max(max_payload, p->payload.size());
  if (max_payload > 0xffff) {
    // The u16 length prefix cannot frame it; truncating would corrupt
    // every recovery of the batch.
    throw std::invalid_argument("encode_batch: payload exceeds 65535 bytes");
  }
  const std::size_t len = shard_length(max_payload);

  std::vector<std::vector<std::uint8_t>> shards;
  shards.reserve(data.size());
  CodedMeta meta;
  meta.batch_id = batch_id;
  meta.k = static_cast<std::uint8_t>(data.size());
  meta.r = static_cast<std::uint8_t>(num_coded);
  for (const PacketPtr& p : data) {
    shards.push_back(frame_shard(p->payload, len));
    meta.covered.push_back(p->key());
  }

  std::vector<std::span<const std::uint8_t>> shard_spans;
  shard_spans.reserve(shards.size());
  for (const auto& s : shards) shard_spans.emplace_back(s);

  const auto rs = shared_codec(data.size(), num_coded);
  auto parity = rs->encode(shard_spans);

  std::vector<PacketPtr> out;
  out.reserve(num_coded);
  for (std::size_t i = 0; i < parity.size(); ++i) {
    auto pkt = std::make_shared<Packet>();
    pkt->type = coded_type;
    // Coded packets belong to no single flow; flow/seq identify the batch
    // and codeword index instead so logs stay greppable.
    pkt->flow = 0;
    pkt->seq = batch_id;
    pkt->src = src;
    pkt->dst = dst;
    pkt->sent_at = now;
    CodedMeta m = meta;
    m.index = static_cast<std::uint8_t>(data.size() + i);
    pkt->meta = std::move(m);
    pkt->payload = std::move(parity[i]);
    out.push_back(std::move(pkt));
  }
  return out;
}

void BatchEncoder::encode_into(std::span<const PacketPtr> data, std::size_t num_coded,
                               PacketType coded_type, std::uint32_t batch_id, NodeId src,
                               NodeId dst, SimTime now, std::vector<PacketPtr>& out,
                               PacketPool* pool) {
  if (data.empty()) throw std::invalid_argument("BatchEncoder::encode_into: empty batch");
  if (data.size() + num_coded > 255) {
    throw std::invalid_argument("BatchEncoder::encode_into: batch too large for GF(256)");
  }
  const std::size_t k = data.size();
  std::size_t max_payload = 0;
  for (const PacketPtr& p : data) max_payload = std::max(max_payload, p->payload.size());
  if (max_payload > 0xffff) {
    throw std::invalid_argument(
        "BatchEncoder::encode_into: payload exceeds 65535 bytes");
  }
  const std::size_t len = shard_length(max_payload);

  // Frame all k shards into the reused arena: one memcpy per payload, zero
  // pad only, no allocation once the arena reaches its high-water size.
  arena_.layout(k, len);
  for (std::size_t i = 0; i < k; ++i) arena_.frame_shard_into(i, data[i]->payload);

  if (codec_ == nullptr || codec_->k() != k || codec_->r() != num_coded) {
    codec_ = shared_codec(k, num_coded);
  }

  if (num_coded == 0) return;

  // Create the coded packets up front so parity is computed directly into
  // their payload buffers — the arena-to-packet copy of the legacy path
  // disappears. Two storage strategies, byte-identical outputs:
  //
  //  * Pooled (pool enabled): each packet is recycled from the owning
  //    lane's PacketPool, reusing payload capacity and covered-key capacity
  //    from earlier batches — zero allocator traffic in steady state.
  //  * Slab (no pool): the batch's packets share one slab allocation
  //    (aliasing shared_ptrs into a make_shared array): one control block
  //    for all r outputs instead of one per packet.
  out.reserve(out.size() + num_coded);
  parity_ptrs_.clear();
  pooled_pkts_.clear();
  const bool use_pool = pool != nullptr && pool->enabled();
  std::shared_ptr<Packet[]> slab;
  if (!use_pool) slab = std::make_shared<Packet[]>(num_coded);
  for (std::size_t i = 0; i < num_coded; ++i) {
    Packet* pkt_ptr;
    if (use_pool) {
      auto pp = pool->acquire();
      pkt_ptr = const_cast<Packet*>(pp.get());
      out.push_back(std::move(pp));
    } else {
      pkt_ptr = &slab[i];
      out.push_back(PacketPtr(slab, pkt_ptr));
    }
    pooled_pkts_.push_back(pkt_ptr);
    Packet& pkt = *pkt_ptr;
    pkt.type = coded_type;
    // Same field conventions as encode_batch (see comment there).
    pkt.flow = 0;
    pkt.seq = batch_id;
    pkt.src = src;
    pkt.dst = dst;
    pkt.sent_at = now;
    if (use_pool) {
      pool->engage_meta(pkt);
    } else {
      pkt.meta.emplace();
    }
    auto& m = *pkt.meta;
    m.batch_id = batch_id;
    m.index = static_cast<std::uint8_t>(k + i);
    m.k = static_cast<std::uint8_t>(k);
    m.r = static_cast<std::uint8_t>(num_coded);
    m.covered.reserve(k);
    for (const PacketPtr& p : data) m.covered.push_back(p->key());
    pkt.payload.resize(arena_.padded_len());
    parity_ptrs_.push_back(pkt.payload.data());
  }
  // Run the kernels over the zero-padded length — whole SIMD steps, no
  // scalar tails — then trim each payload to the true shard length (the
  // trimmed bytes are parity over zeros, i.e. zero).
  codec_->encode_into(arena_.data(), arena_.stride(), arena_.padded_len(),
                      parity_ptrs_.data());
  for (Packet* pkt : pooled_pkts_) pkt->payload.resize(len);
}

std::optional<std::vector<RecoveredPacket>> decode_batch(
    const CodedMeta& meta,
    std::span<const std::pair<std::size_t, std::span<const std::uint8_t>>> present_data,
    std::span<const PacketPtr> coded) {
  ShardArena arena;
  return decode_batch(arena, meta, present_data, coded);
}

std::optional<std::vector<RecoveredPacket>> decode_batch(
    ShardArena& arena, const CodedMeta& meta,
    std::span<const std::pair<std::size_t, std::span<const std::uint8_t>>> present_data,
    std::span<const PacketPtr> coded) {
  const std::size_t k = meta.k;
  if (k == 0 || meta.covered.size() != k) return std::nullopt;
  if (present_data.size() + coded.size() < k) return std::nullopt;

  // Shard length is dictated by the coded payloads (parity shards are
  // exactly shard-length long).
  std::size_t len = 0;
  for (const PacketPtr& c : coded) len = std::max(len, c->payload.size());
  if (len == 0) return std::nullopt;

  // Arena plan: framed present shards first, then one output slot per
  // missing position. Present and missing positions are complementary
  // subsets of [0, k), so k slots cover both. Coded payloads are read in
  // place from the stored packets.
  arena.layout(k, len);

  std::vector<std::pair<std::size_t, const std::uint8_t*>> inputs;
  inputs.reserve(k);
  std::vector<bool> have(k, false);
  std::size_t framed = 0;
  for (const auto& [pos, payload] : present_data) {
    if (pos >= k || have[pos]) continue;
    if (payload.size() + kLenPrefix > len) return std::nullopt;  // Inconsistent batch.
    arena.frame_shard_into(framed, payload);
    inputs.emplace_back(pos, arena.shard(framed));
    ++framed;
    have[pos] = true;
  }
  std::vector<bool> have_coded(static_cast<std::size_t>(k) + meta.r, false);
  for (const PacketPtr& c : coded) {
    if (inputs.size() >= k) break;
    if (!c->meta || c->meta->batch_id != meta.batch_id) continue;
    if (c->meta->index < k || c->meta->index >= k + meta.r) continue;
    if (c->payload.size() != len) continue;
    if (have_coded[c->meta->index]) continue;  // Duplicate delivery.
    have_coded[c->meta->index] = true;
    inputs.emplace_back(c->meta->index, c->payload.data());
  }
  if (inputs.size() < k) return std::nullopt;

  // Reconstruct only the missing positions, straight into arena slots.
  std::vector<std::size_t> targets;
  std::vector<std::uint8_t*> outs;
  targets.reserve(k);
  outs.reserve(k);
  for (std::size_t pos = 0; pos < k; ++pos) {
    if (have[pos]) continue;  // Caller already has it.
    targets.push_back(pos);
    outs.push_back(arena.shard(framed + targets.size() - 1));
  }

  const auto rs = shared_codec(k, meta.r);
  if (!rs->decode_into(inputs, len, targets, outs.data())) return std::nullopt;

  std::vector<RecoveredPacket> out;
  out.reserve(targets.size());
  for (std::size_t t = 0; t < targets.size(); ++t) {
    RecoveredPacket rp;
    rp.position = targets[t];
    rp.key = meta.covered[targets[t]];
    rp.payload = unframe_shard(std::span<const std::uint8_t>(outs[t], len));
    out.push_back(std::move(rp));
  }
  return out;
}

}  // namespace jqos::fec
