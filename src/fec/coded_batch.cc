#include "fec/coded_batch.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace jqos::fec {
namespace {

// Constructing a ReedSolomon codec builds and inverts a Vandermonde block —
// O(k^3) field operations. Batches reuse a handful of (k, r) shapes for the
// lifetime of a run, so cache codecs instead of rebuilding one per batch.
// ReedSolomon is immutable after construction, making the shared instances
// safe for concurrent encode/decode; the mutex only guards the map itself.
//
// decode_batch feeds (k, r) straight from received packet metadata, so the
// cache is bounded: a peer cycling through distinct shapes flushes the cache
// rather than growing it without limit. Callers hold shared_ptr, so a flush
// cannot free a codec that another thread is mid-encode on. The codec is
// constructed before the map is touched, so a throwing constructor (invalid
// shape from corrupt metadata) leaves no empty slot behind.
std::shared_ptr<const ReedSolomon> shared_codec(std::size_t k, std::size_t r) {
  constexpr std::size_t kMaxCachedShapes = 64;
  static std::mutex mu;
  static std::map<std::pair<std::size_t, std::size_t>, std::shared_ptr<const ReedSolomon>>
      cache;
  {
    const std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find({k, r});
    if (it != cache.end()) return it->second;
  }
  auto codec = std::make_shared<const ReedSolomon>(k, r);  // Built outside the lock.
  const std::lock_guard<std::mutex> lock(mu);
  if (cache.size() >= kMaxCachedShapes) cache.clear();
  return cache.try_emplace({k, r}, std::move(codec)).first->second;
}

// Shard framing: 2-byte original length prefix.
constexpr std::size_t kLenPrefix = 2;

std::vector<std::uint8_t> frame_shard(std::span<const std::uint8_t> payload,
                                      std::size_t shard_len) {
  std::vector<std::uint8_t> shard(shard_len, 0);
  shard[0] = static_cast<std::uint8_t>(payload.size() >> 8);
  shard[1] = static_cast<std::uint8_t>(payload.size() & 0xff);
  std::copy(payload.begin(), payload.end(), shard.begin() + kLenPrefix);
  return shard;
}

std::vector<std::uint8_t> unframe_shard(std::span<const std::uint8_t> shard) {
  if (shard.size() < kLenPrefix) return {};
  const std::size_t len = (static_cast<std::size_t>(shard[0]) << 8) | shard[1];
  if (len > shard.size() - kLenPrefix) return {};  // Corrupt frame.
  return std::vector<std::uint8_t>(shard.begin() + kLenPrefix,
                                   shard.begin() + static_cast<std::ptrdiff_t>(kLenPrefix + len));
}

}  // namespace

std::size_t shard_length(std::size_t max_payload) { return max_payload + kLenPrefix; }

std::vector<PacketPtr> encode_batch(std::span<const PacketPtr> data,
                                    std::size_t num_coded, PacketType coded_type,
                                    std::uint32_t batch_id, NodeId src, NodeId dst,
                                    SimTime now) {
  if (data.empty()) throw std::invalid_argument("encode_batch: empty batch");
  if (data.size() + num_coded > 255) {
    throw std::invalid_argument("encode_batch: batch too large for GF(256)");
  }
  std::size_t max_payload = 0;
  for (const PacketPtr& p : data) max_payload = std::max(max_payload, p->payload.size());
  const std::size_t len = shard_length(max_payload);

  std::vector<std::vector<std::uint8_t>> shards;
  shards.reserve(data.size());
  CodedMeta meta;
  meta.batch_id = batch_id;
  meta.k = static_cast<std::uint8_t>(data.size());
  meta.r = static_cast<std::uint8_t>(num_coded);
  for (const PacketPtr& p : data) {
    shards.push_back(frame_shard(p->payload, len));
    meta.covered.push_back(p->key());
  }

  std::vector<std::span<const std::uint8_t>> shard_spans;
  shard_spans.reserve(shards.size());
  for (const auto& s : shards) shard_spans.emplace_back(s);

  const auto rs = shared_codec(data.size(), num_coded);
  auto parity = rs->encode(shard_spans);

  std::vector<PacketPtr> out;
  out.reserve(num_coded);
  for (std::size_t i = 0; i < parity.size(); ++i) {
    auto pkt = std::make_shared<Packet>();
    pkt->type = coded_type;
    // Coded packets belong to no single flow; flow/seq identify the batch
    // and codeword index instead so logs stay greppable.
    pkt->flow = 0;
    pkt->seq = batch_id;
    pkt->src = src;
    pkt->dst = dst;
    pkt->sent_at = now;
    CodedMeta m = meta;
    m.index = static_cast<std::uint8_t>(data.size() + i);
    pkt->meta = std::move(m);
    pkt->payload = std::move(parity[i]);
    out.push_back(std::move(pkt));
  }
  return out;
}

std::optional<std::vector<RecoveredPacket>> decode_batch(
    const CodedMeta& meta,
    std::span<const std::pair<std::size_t, std::span<const std::uint8_t>>> present_data,
    std::span<const PacketPtr> coded) {
  const std::size_t k = meta.k;
  if (k == 0 || meta.covered.size() != k) return std::nullopt;
  if (present_data.size() + coded.size() < k) return std::nullopt;

  // Shard length is dictated by the coded payloads (parity shards are
  // exactly shard-length long).
  std::size_t len = 0;
  for (const PacketPtr& c : coded) len = std::max(len, c->payload.size());
  if (len == 0) return std::nullopt;

  // Re-frame the present data packets to shards and collect decode inputs.
  std::vector<std::vector<std::uint8_t>> framed;
  framed.reserve(present_data.size());
  std::vector<std::pair<std::size_t, std::span<const std::uint8_t>>> inputs;
  inputs.reserve(k);
  std::vector<bool> have(k, false);
  for (const auto& [pos, payload] : present_data) {
    if (pos >= k || have[pos]) continue;
    if (payload.size() + 2 > len) return std::nullopt;  // Inconsistent batch.
    framed.push_back(frame_shard(payload, len));
    inputs.emplace_back(pos, std::span<const std::uint8_t>(framed.back()));
    have[pos] = true;
  }
  std::vector<bool> have_coded(static_cast<std::size_t>(k) + meta.r, false);
  for (const PacketPtr& c : coded) {
    if (inputs.size() >= k) break;
    if (!c->meta || c->meta->batch_id != meta.batch_id) continue;
    if (c->meta->index < k || c->meta->index >= k + meta.r) continue;
    if (c->payload.size() != len) continue;
    if (have_coded[c->meta->index]) continue;  // Duplicate delivery.
    have_coded[c->meta->index] = true;
    inputs.emplace_back(c->meta->index, std::span<const std::uint8_t>(c->payload));
  }
  if (inputs.size() < k) return std::nullopt;

  const auto rs = shared_codec(k, meta.r);
  auto decoded = rs->decode(inputs);
  if (!decoded) return std::nullopt;

  std::vector<RecoveredPacket> out;
  for (std::size_t pos = 0; pos < k; ++pos) {
    if (have[pos]) continue;  // Caller already has it.
    RecoveredPacket rp;
    rp.position = pos;
    rp.key = meta.covered[pos];
    rp.payload = unframe_shard((*decoded)[pos]);
    out.push_back(std::move(rp));
  }
  return out;
}

}  // namespace jqos::fec
