#include "services/coding/encoder_dc.h"

#include <algorithm>

#include "common/logging.h"
#include "fec/coded_batch.h"

namespace jqos::services {

CodingEncoderService::CodingEncoderService(overlay::DataCenter& dc, const CodingParams& params,
                                           FlowRegistryPtr registry)
    : dc_(dc),
      params_(params),
      registry_(std::move(registry)),
      next_batch_id_(static_cast<std::uint32_t>(dc.dc_id()) << 20) {}

bool CodingEncoderService::handle(overlay::DataCenter& dc, const PacketPtr& pkt) {
  (void)dc;  // Bound to dc_ at construction; DataCenter passes itself back.
  if (pkt->type != PacketType::kData || pkt->service != ServiceType::kCode) return false;
  const FlowInfo* info = registry_->find(pkt->flow);
  if (info == nullptr) {
    ++stats_.unknown_flow;
    JQOS_DEBUG(dc_.name() << ": coded data for unregistered flow " << pkt->flow);
    return true;
  }
  ++stats_.data_packets;

  // (1) In-stream coding (Algorithm 1 lines 1-5).
  if (params_.in_coded > 0 && params_.in_block > 0) enqueue_in_stream(pkt);

  // (2) Cross-stream coding (Algorithm 1 lines 6-23). The destination DC is
  // derived from the flow (extract_dc2_id in the paper's pseudocode).
  if (params_.cross_coded > 0 && params_.k > 0) enqueue_cross_stream(pkt, info->dc2);
  return true;
}

void CodingEncoderService::enqueue_in_stream(const PacketPtr& pkt) {
  Queue& q = in_qs_[pkt->flow];
  q.pkts.push_back(pkt);
  if (q.pkts.size() >= params_.in_block) {
    const FlowInfo* info = registry_->find(pkt->flow);
    ++stats_.in_batches;
    encode_queue(q, params_.in_coded, PacketType::kInCoded, info->dc2);
  } else if (!q.timer_armed) {
    arm_timer_in(pkt->flow);
  }
}

void CodingEncoderService::enqueue_cross_stream(const PacketPtr& pkt, NodeId dc2) {
  auto& queues = cross_qs_[dc2];
  if (queues.empty()) queues.resize(std::max<std::size_t>(1, params_.queues_per_group));
  group_flows_[dc2].insert(pkt->flow);
  // Batches can hold at most one packet per flow, so a group with fewer
  // flows than k closes batches at the group size (>= 2; single-flow groups
  // fall back to the queue timer).
  const std::size_t effective_k =
      std::min(params_.k, std::max<std::size_t>(2, group_flows_[dc2].size()));

  // Round-robin queue choice for this flow (line 7).
  std::size_t& cursor = rr_cursor_[pkt->flow];
  std::size_t idx = cursor % queues.size();
  cursor = (cursor + 1) % queues.size();

  // Find a queue without a packet from this flow (lines 9-12).
  const std::size_t initial = idx;
  while (queue_contains_flow(queues[idx], pkt->flow)) {
    idx = (idx + 1) % queues.size();
    if (idx == initial) {
      // Every queue holds one of our packets (lines 13-19): flush the
      // current queue if it has company, else evict our stale packet --
      // a single-flow "cross"-coded packet is just duplication and wastes
      // inter-DC bandwidth.
      Queue& q = queues[idx];
      if (q.pkts.size() > 1) {
        ++stats_.cross_batches;
        ++stats_.full_scan_flushes;
        encode_queue(q, params_.cross_coded, PacketType::kCrossCoded, dc2);
      } else {
        ++stats_.single_packet_evictions;
        q.pkts.clear();
        disarm(q);
      }
      break;
    }
  }

  Queue& q = queues[idx];
  q.pkts.push_back(pkt);  // Line 20.
  if (q.pkts.size() >= effective_k) {
    ++stats_.cross_batches;
    encode_queue(q, params_.cross_coded, PacketType::kCrossCoded, dc2);  // Lines 21-23.
  } else if (!q.timer_armed) {
    arm_timer_cross(dc2, idx);
  }
}

bool CodingEncoderService::peer_sendable(NodeId dc2) {
  if (!peer_health_) return true;
  PeerState& peer = peers_[dc2];
  if (!peer.suspended) {
    if (peer_health_(dc2)) return true;
    // First flush to find the DC dead: suspend and start the backoff clock.
    peer.suspended = true;
    peer.backoff = params_.peer_backoff_base;
    peer.retry_at = dc_.now() + peer.backoff;
    ++stats_.peer_suspends;
    return false;
  }
  if (dc_.now() < peer.retry_at) return false;  // Still backing off.
  // Probe flush: one batch gets through the gate to test the peer. A healthy
  // answer re-engages immediately; a dead one doubles the backoff (capped).
  ++stats_.peer_probes;
  if (peer_health_(dc2)) {
    peer.suspended = false;
    peer.backoff = 0;
    ++stats_.peer_reengages;
    return true;
  }
  peer.backoff = std::min(peer.backoff * 2, params_.peer_backoff_cap);
  peer.retry_at = dc_.now() + peer.backoff;
  return false;
}

void CodingEncoderService::encode_queue(Queue& q, std::size_t coded, PacketType type,
                                        NodeId dc2) {
  if (q.pkts.empty() || dc2 == kInvalidNode) {
    q.pkts.clear();
    disarm(q);
    return;
  }
  if (!peer_sendable(dc2)) {
    // The staged packets still reached their receivers on the direct path;
    // only the coded protection is lost while DC2 is out.
    ++stats_.flushes_suppressed;
    q.pkts.clear();
    disarm(q);
    return;
  }
  const std::uint32_t batch_id = next_batch_id_++;
  coded_scratch_.clear();
  encoder_.encode_into(q.pkts, coded, type, batch_id, dc_.id(), dc2, dc_.now(),
                       coded_scratch_, dc_.pool());
  for (auto& cp : coded_scratch_) {
    // Coded packets ride the inter-DC path with the coding service tag so
    // the recovery DC claims them on arrival.
    auto mutable_cp = std::const_pointer_cast<Packet>(cp);
    mutable_cp->service = ServiceType::kCode;
    mutable_cp->final_dst = dc2;
    ++stats_.coded_sent;
    dc_.send(cp);
  }
  q.pkts.clear();
  disarm(q);
}

void CodingEncoderService::arm_timer_in(FlowId flow) {
  Queue& q = in_qs_[flow];
  q.timer_armed = true;
  const std::uint64_t gen = ++q.generation;
  q.timer = dc_.network().sim().after(params_.queue_timeout, [this, flow, gen] {
    auto it = in_qs_.find(flow);
    if (it == in_qs_.end() || it->second.generation != gen || it->second.pkts.empty()) return;
    const FlowInfo* info = registry_->find(flow);
    if (info == nullptr) {
      it->second.pkts.clear();
      return;
    }
    ++stats_.timer_flushes;
    ++stats_.in_batches;
    it->second.timer_armed = false;
    encode_queue(it->second, params_.in_coded, PacketType::kInCoded, info->dc2);
  });
}

void CodingEncoderService::arm_timer_cross(NodeId dc2, std::size_t index) {
  Queue& q = cross_qs_[dc2][index];
  q.timer_armed = true;
  const std::uint64_t gen = ++q.generation;
  q.timer = dc_.network().sim().after(params_.queue_timeout, [this, dc2, index, gen] {
    auto it = cross_qs_.find(dc2);
    if (it == cross_qs_.end() || index >= it->second.size()) return;
    Queue& queue = it->second[index];
    if (queue.generation != gen || queue.pkts.empty()) return;
    ++stats_.timer_flushes;
    ++stats_.cross_batches;
    queue.timer_armed = false;
    encode_queue(queue, params_.cross_coded, PacketType::kCrossCoded, dc2);
  });
}

void CodingEncoderService::disarm(Queue& q) {
  if (q.timer_armed) {
    dc_.network().sim().cancel(q.timer);
    q.timer_armed = false;
  }
  ++q.generation;  // Invalidate any in-flight timer closure.
}

bool CodingEncoderService::queue_contains_flow(const Queue& q, FlowId flow) const {
  return std::any_of(q.pkts.begin(), q.pkts.end(),
                     [flow](const PacketPtr& p) { return p->flow == flow; });
}

void CodingEncoderService::flow_departed(FlowId flow, NodeId dc2) {
  ++stats_.flow_departures;
  auto in_it = in_qs_.find(flow);
  if (in_it != in_qs_.end()) {
    if (!in_it->second.pkts.empty()) {
      const FlowInfo* info = registry_->find(flow);
      if (info != nullptr) {
        ++stats_.in_batches;
        encode_queue(in_it->second, params_.in_coded, PacketType::kInCoded, info->dc2);
      } else {
        disarm(in_it->second);
      }
    } else {
      disarm(in_it->second);
    }
    in_qs_.erase(flow);
  }
  rr_cursor_.erase(flow);
  auto grp = group_flows_.find(dc2);
  if (grp != group_flows_.end()) {
    grp->second.erase(flow);
    if (grp->second.empty()) group_flows_.erase(grp);
  }
}

void CodingEncoderService::on_dc_crash() {
  ++stats_.crash_wipes;
  // Everything staged in process memory is gone. disarm() bumps each
  // queue's generation so timers armed before the crash are no-ops.
  for (auto& [flow, q] : in_qs_) disarm(q);
  in_qs_.clear();
  for (auto& [dc2, queues] : cross_qs_) {
    for (Queue& q : queues) disarm(q);
  }
  cross_qs_.clear();
  rr_cursor_.clear();
  group_flows_.clear();
  // A restarted process has no memory of suspended peers either.
  peers_.clear();
  // next_batch_id_ deliberately survives: it models the id namespace, not
  // state -- reusing ids would alias live batches at the recovery DC.
}

void CodingEncoderService::flush_all() {
  // Flush in ascending FlowId order, not hash order: flows are numbered in
  // path-registration order, so the flush sequence -- and therefore the
  // send order on shared inter-DC links -- is identical whether this
  // encoder serves one experiment shard or the monolithic run.
  std::vector<FlowId>& flows = flush_scratch_;
  flows.clear();
  flows.reserve(in_qs_.size());
  for (const auto& [flow, q] : in_qs_) flows.push_back(flow);
  std::sort(flows.begin(), flows.end());
  for (FlowId flow : flows) {
    Queue& q = in_qs_[flow];
    if (q.pkts.empty()) continue;
    const FlowInfo* info = registry_->find(flow);
    if (info == nullptr) {
      q.pkts.clear();
      continue;
    }
    ++stats_.in_batches;
    encode_queue(q, params_.in_coded, PacketType::kInCoded, info->dc2);
  }
  for (auto& [dc2, queues] : cross_qs_) {
    for (Queue& q : queues) {
      if (q.pkts.empty()) continue;
      ++stats_.cross_batches;
      encode_queue(q, params_.cross_coded, PacketType::kCrossCoded, dc2);
    }
  }
}

}  // namespace jqos::services
