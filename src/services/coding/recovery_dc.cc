#include "services/coding/recovery_dc.h"
#include <cstdlib>
#include <cstdio>

#include <algorithm>

#include "common/logging.h"
#include "fec/coded_batch.h"

namespace jqos::services {

RecoveryService::RecoveryService(overlay::DataCenter& dc, const RecoveryParams& params,
                                 FlowRegistryPtr registry)
    : dc_(dc), params_(params), registry_(std::move(registry)) {}

bool RecoveryService::handle(overlay::DataCenter& dc, const PacketPtr& pkt) {
  (void)dc;
  switch (pkt->type) {
    case PacketType::kInCoded:
    case PacketType::kCrossCoded:
      if (pkt->service != ServiceType::kCode) return false;
      on_coded(pkt);
      return true;
    case PacketType::kNack:
      if (pkt->service != ServiceType::kCode) return false;
      on_nack(pkt, /*confirm=*/false);
      return true;
    case PacketType::kNackConfirm:
      if (pkt->service != ServiceType::kCode) return false;
      ++stats_.nack_confirms;
      on_nack(pkt, /*confirm=*/true);
      return true;
    case PacketType::kCoopResponse:
      if (pkt->service != ServiceType::kCode) return false;
      on_coop_response(pkt);
      return true;
    default:
      return false;
  }
}

void RecoveryService::on_coded(const PacketPtr& pkt) {
  if (!pkt->meta) return;
  const std::uint32_t batch_id = pkt->meta->batch_id;
  BatchState& batch = batches_[batch_id];
  if (batch.coded.empty()) {
    batch.meta = *pkt->meta;
    batch.first_seen = dc_.now();
    batch.is_cross = pkt->type == PacketType::kCrossCoded;
    ++stats_.batches_stored;
    for (const PacketKey& key : batch.meta.covered) {
      key_index_[key].push_back(batch_id);
      if (getenv("JQOS_DEBUG_OPS") != nullptr) {
        std::fprintf(stderr, "COV %u %u\n", key.flow, key.seq);
      }
    }
  }
  batch.coded.push_back(pkt);
  arm_sweep();

  // A coded packet may unblock recoveries waiting on it. The pending NACK
  // predates this coverage, so re-verify with the receiver first: at burst
  // or session boundaries the "missing" packet may be the stream resuming,
  // and recovering it would race the direct copy (Section 3.4's guard).
  for (const PacketKey& key : pkt->meta->covered) {
    auto it = pending_.find(key);
    if (it != pending_.end() && it->second.expires_at > dc_.now()) {
      ++stats_.recheck_probes;
      ++stats_.nack_checks_sent;
      auto check = make_packet(dc_.pool(), PacketType::kNackCheck, ServiceType::kCode,
                               key.flow, key.seq, dc_.id(), it->second.receiver,
                               dc_.now());
      dc_.send(check);
    }
  }
  auto op_it = ops_.find(batch_id);
  if (op_it != ops_.end()) maybe_finish_op(op_it->second);
}

void RecoveryService::on_nack(const PacketPtr& pkt, bool confirm) {
  if (!confirm) ++stats_.nacks;
  if (!NackInfo::parse_into(pkt->payload, nack_scratch_)) return;
  const NackInfo& info = nack_scratch_;
  const NodeId receiver = pkt->src;

  std::vector<PacketKey>& keys = keys_scratch_;
  keys.clear();
  keys.reserve(info.missing.size());
  for (SeqNo s : info.missing) keys.push_back(PacketKey{pkt->flow, s});

  // Tail NACK: the receiver saw nothing after `expected`; recover every
  // covered packet of this flow from `expected` onward. Bursty losses favor
  // cooperative recovery, so prefer_coop is set below for multi-loss NACKs.
  if (info.tail) {
    // Recover every covered sequence number from `expected` onward. Holes
    // in coverage (packets the encoder evicted, batches still in flight)
    // are skipped rather than ending the run; a long uncovered stretch
    // marks the true frontier of what DC1 has seen.
    std::size_t batches_used = 0;
    std::size_t uncovered_run = 0;
    for (SeqNo s = info.expected;
         batches_used < params_.max_tail_batches && uncovered_run < 64; ++s) {
      const PacketKey key{pkt->flow, s};
      auto kit = key_index_.find(key);
      if (kit == key_index_.end()) {
        ++uncovered_run;
        continue;
      }
      // Skip batches so fresh their direct copies may still be in flight.
      bool old_enough = false;
      for (std::uint32_t id : kit->second) {
        auto bit = batches_.find(id);
        if (bit != batches_.end() && batch_fresh(bit->second) &&
            dc_.now() - bit->second.first_seen >= params_.tail_min_batch_age) {
          old_enough = true;
          break;
        }
      }
      if (!old_enough) {
        ++uncovered_run;
        continue;
      }
      uncovered_run = 0;
      keys.push_back(key);
      ++batches_used;
    }
  }

  // Heuristic from Section 4.2: in-stream protects random (single) losses;
  // two or more missing keys in one NACK imply a burst, where the in-stream
  // block is likely damaged beyond its own protection.
  const bool prefer_coop = info.tail || keys.size() >= 2;

  for (const PacketKey& key : keys) {
    ++stats_.nack_keys;
    if (recover_key(key, receiver, prefer_coop)) {
      pending_.erase(key);
      continue;
    }
    // No coverage yet: the coded packet may still be in flight (the NACK
    // outran it), or the loss predates the session. Check with the receiver
    // before recovering later (Section 3.4).
    ++stats_.uncovered_keys;
    if (getenv("JQOS_DEBUG_OPS") != nullptr) {
      std::fprintf(stderr, "UNCOV flow=%u seq=%u t=%.1fs conf=%d\n", key.flow, key.seq,
                   to_sec(dc_.now()), confirm ? 1 : 0);
    }
    PendingNack& pending = pending_[key];
    pending.receiver = receiver;
    pending.expires_at = dc_.now() + params_.pending_nack_ttl;
    arm_sweep();
    if (confirm) {
      // Confirmed but still no coverage: keep waiting for coded packets
      // (their arrival triggers a fresh check).
      pending.confirmed = true;
    } else if (!pending.check_sent) {
      pending.check_sent = true;
      ++stats_.nack_checks_sent;
      auto check = make_packet(dc_.pool(), PacketType::kNackCheck, ServiceType::kCode,
                               key.flow, key.seq, dc_.id(), receiver, dc_.now());
      dc_.send(check);
    }
  }
}

bool RecoveryService::recover_key(const PacketKey& key, NodeId receiver, bool prefer_coop) {
  if (!prefer_coop && serve_in_stream(key, receiver)) return true;
  if (start_coop(key, receiver)) return true;
  // Fall back to the other strategy if the preferred one lacks coverage.
  if (prefer_coop && serve_in_stream(key, receiver)) return true;
  return false;
}

RecoveryService::BatchState* RecoveryService::cross_batch_for(const PacketKey& key) {
  auto it = key_index_.find(key);
  if (it == key_index_.end()) return nullptr;
  for (std::uint32_t id : it->second) {
    auto bit = batches_.find(id);
    if (bit != batches_.end() && bit->second.is_cross && batch_fresh(bit->second)) {
      return &bit->second;
    }
  }
  return nullptr;
}

RecoveryService::BatchState* RecoveryService::in_batch_for(const PacketKey& key) {
  auto it = key_index_.find(key);
  if (it == key_index_.end()) return nullptr;
  for (std::uint32_t id : it->second) {
    auto bit = batches_.find(id);
    if (bit != batches_.end() && !bit->second.is_cross && batch_fresh(bit->second)) {
      return &bit->second;
    }
  }
  return nullptr;
}

bool RecoveryService::serve_in_stream(const PacketKey& key, NodeId receiver) {
  BatchState* batch = in_batch_for(key);
  if (batch == nullptr) return false;
  // Ship the in-stream coded packets; the receiver decodes against its own
  // buffered packets of the same flow (half-RTT-to-DC recovery).
  for (const PacketPtr& coded : batch->coded) {
    auto out = alloc_packet_copy(dc_.pool(), *coded);
    out->dst = receiver;
    out->final_dst = receiver;
    dc_.send(out);
  }
  ++stats_.in_stream_served;
  return true;
}

bool RecoveryService::start_coop(const PacketKey& key, NodeId receiver) {
  BatchState* batch = cross_batch_for(key);
  if (batch == nullptr) return false;
  const std::uint32_t batch_id = batch->meta.batch_id;

  auto [it, inserted] = ops_.try_emplace(batch_id);
  CoopOp& op = it->second;
  op.requesters[key] = receiver;
  if (!inserted) return true;  // Join the already-running operation.

  ++stats_.coop_ops;
  op.batch_id = batch_id;
  op.started_at = dc_.now();

  // Solicit every *other* receiver in the batch for its data packet. The
  // requester's own packet is the one being recovered, so it is skipped.
  for (const PacketKey& covered : batch->meta.covered) {
    if (covered == key) continue;
    const FlowInfo* info = registry_->find(covered.flow);
    if (info == nullptr || info->receiver == kInvalidNode) continue;
    auto req = make_packet(dc_.pool(), PacketType::kCoopRequest, ServiceType::kCode,
                           covered.flow, covered.seq, dc_.id(), info->receiver,
                           dc_.now());
    // Carry only the batch id; responses echo it back.
    engage_meta(dc_.pool(), *req);
    req->meta->batch_id = batch_id;
    req->meta->k = batch->meta.k;
    req->meta->r = batch->meta.r;
    ++stats_.coop_requests_sent;
    dc_.send(req);
  }

  op.deadline_event = dc_.network().sim().after(
      params_.coop_deadline,
      [this, batch_id, epoch = epoch_] { finish_op_failure(batch_id, epoch); });
  // Small or coded-rich batches may be decodable with zero responses (the
  // stored coded packets alone suffice); finish immediately in that case.
  maybe_finish_op(op);
  return true;
}

void RecoveryService::on_coop_response(const PacketPtr& pkt) {
  if (!pkt->meta) return;
  auto it = ops_.find(pkt->meta->batch_id);
  if (it == ops_.end()) {
    ++stats_.straggler_responses;  // Arrived after success or deadline.
    return;
  }
  CoopOp& op = it->second;
  auto bit = batches_.find(op.batch_id);
  if (bit == batches_.end()) return;
  const CodedMeta& meta = bit->second.meta;
  // Locate the codeword position of the responding packet.
  const PacketKey key = pkt->key();
  for (std::size_t pos = 0; pos < meta.covered.size(); ++pos) {
    if (meta.covered[pos] == key) {
      ++stats_.coop_responses;
      op.responses.emplace(pos, pkt->payload);
      break;
    }
  }
  maybe_finish_op(op);
}

void RecoveryService::maybe_finish_op(CoopOp& op) {
  auto bit = batches_.find(op.batch_id);
  if (bit == batches_.end()) return;
  BatchState& batch = bit->second;
  const std::size_t k = batch.meta.k;
  if (op.responses.size() + batch.coded.size() < k) return;  // Not yet decodable.

  auto& present = present_scratch_;
  present.clear();
  present.reserve(op.responses.size());
  for (const auto& [pos, payload] : op.responses) {
    present.emplace_back(pos, std::span<const std::uint8_t>(payload));
  }
  auto recovered = fec::decode_batch(decode_arena_, batch.meta, present, batch.coded);
  if (!recovered) return;  // Still insufficient (duplicate positions etc).

  ++stats_.coop_success;
  for (auto& rp : *recovered) {
    auto rit = op.requesters.find(rp.key);
    if (rit == op.requesters.end()) continue;  // Nobody asked for this one.
    auto out = make_packet(dc_.pool(), PacketType::kRecovered, ServiceType::kCode,
                           rp.key.flow, rp.key.seq, dc_.id(), rit->second, dc_.now());
    out->final_dst = rit->second;
    out->payload = std::move(rp.payload);
    ++stats_.recovered_sent;
    dc_.send(out);
  }
  dc_.network().sim().cancel(op.deadline_event);
  const std::uint32_t finished_id = op.batch_id;  // op dies with the erase.
  ops_.erase(finished_id);
}

void RecoveryService::finish_op_failure(std::uint32_t batch_id, std::uint64_t epoch) {
  if (epoch != epoch_) {
    // Armed before a crash wipe: the op it referred to is gone, and batch_id
    // may even have been reused by a post-restart op. Counted no-op.
    ++stats_.stale_timers;
    return;
  }
  auto it = ops_.find(batch_id);
  if (it == ops_.end()) return;
  ++stats_.coop_deadline_failures;
  if (const char* dbg = getenv("JQOS_DEBUG_OPS"); dbg != nullptr) {
    auto bit = batches_.find(batch_id);
    std::fprintf(stderr, "DEADOP batch=%u k=%d coded=%zu responses=%zu requesters=%zu\n",
                 batch_id, bit == batches_.end() ? -1 : (int)bit->second.meta.k,
                 bit == batches_.end() ? 0 : bit->second.coded.size(),
                 it->second.responses.size(), it->second.requesters.size());
  }
  JQOS_DEBUG(dc_.name() << ": cooperative recovery deadline for batch " << batch_id);
  ops_.erase(it);  // Fails silently (Section 4.4).
}

void RecoveryService::arm_sweep() {
  if (sweep_armed_) return;
  sweep_armed_ = true;
  // Fire at the NEXT whole simulated second. Aligning sweeps to an absolute
  // grid (rather than "one second after whatever arrived first") keeps
  // reclamation timing -- and the batches_expired counter -- a pure function
  // of store times, independent of unrelated traffic sharing this DC.
  const SimTime next_tick = (dc_.now() / sec(1) + 1) * sec(1);
  sweep_event_ = dc_.network().sim().at(next_tick, [this, epoch = epoch_] {
    if (epoch != epoch_) {
      // Armed before a crash wipe (which also cancels; this guards the race
      // where the sweep fires at the same instant the cancel lands).
      ++stats_.stale_timers;
      return;
    }
    sweep_armed_ = false;
    sweep_batches();
    if (!batches_.empty() || !pending_.empty()) arm_sweep();
  });
}

void RecoveryService::on_dc_crash() {
  ++stats_.crash_wipes;
  ++epoch_;  // Every timer armed before this instant is now stale.
  for (auto& [id, op] : ops_) dc_.network().sim().cancel(op.deadline_event);
  ops_.clear();
  batches_.clear();
  key_index_.clear();
  pending_.clear();
  if (sweep_armed_) {
    dc_.network().sim().cancel(sweep_event_);
    sweep_armed_ = false;
  }
}

void RecoveryService::sweep_batches() {
  const SimTime cutoff = dc_.now() - params_.batch_ttl;
  for (auto it = batches_.begin(); it != batches_.end();) {
    if (it->second.first_seen < cutoff && ops_.find(it->first) == ops_.end()) {
      for (const PacketKey& key : it->second.meta.covered) {
        auto kit = key_index_.find(key);
        if (kit != key_index_.end()) {
          std::erase(kit->second, it->first);
          if (kit->second.empty()) key_index_.erase(kit);
        }
      }
      ++stats_.batches_expired;
      it = batches_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.expires_at <= dc_.now()) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace jqos::services
