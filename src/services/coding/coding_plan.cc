#include "services/coding/coding_plan.h"

namespace jqos::services {

const FlowInfo* FlowRegistry::find(FlowId flow) const {
  auto it = flows_.find(flow);
  return it == flows_.end() ? nullptr : &it->second;
}

}  // namespace jqos::services
