// CR-WAN recovery at the egress DC (DC2) -- Sections 3.4 and 4.4.
//
// DC2 stores arriving coded packets (indexed by the data-packet keys they
// cover) and drives recovery when receivers NACK:
//
//  * Random single losses covered by an in-stream batch are served by
//    sending the in-stream coded packet(s) to the receiver, which decodes
//    locally against the packets it already holds -- the cheap first line
//    of defense.
//  * Bursty losses / outages trigger cooperative recovery: DC2 solicits the
//    other receivers of the batch for their data packets (incoming traffic
//    is free), decodes once enough symbols arrive (responses + coded >= k,
//    so up to `cross_coded` stragglers are tolerated), and sends the
//    reconstructed packets to the requesters. The operation fails silently
//    at a deadline (Section 4.4).
//  * A NACK that precedes its coded packet (burst/session boundary) makes
//    DC2 check back with the receiver (kNackCheck / kNackConfirm) before
//    recovering, avoiding spurious recoveries (Section 3.4).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fec/coded_batch.h"
#include "overlay/datacenter.h"
#include "services/coding/coding_plan.h"

namespace jqos::services {

struct RecoveryParams {
  // Deadline for a cooperative recovery round; "since recovery is time
  // sensitive, the protocol fails silently if not enough ... cooperative
  // recovery responses are received within a set deadline".
  SimDuration coop_deadline = msec(200);
  // How long coded packets stay useful at DC2.
  SimDuration batch_ttl = sec(10);
  // Confirmation window for NACKs that arrive before their coded packets.
  SimDuration pending_nack_ttl = sec(2);
  // Cap on batches recovered per tail NACK, bounding outage-recovery cost.
  std::size_t max_tail_batches = 64;
  // Tail probes only recover from batches at least this old: younger
  // batches cover packets whose direct copies are likely still in flight,
  // and recovering those is spurious work that races the Internet path.
  SimDuration tail_min_batch_age = msec(100);
};

struct RecoveryStatsDc {
  std::uint64_t nacks = 0;
  std::uint64_t nack_keys = 0;
  std::uint64_t in_stream_served = 0;
  std::uint64_t coop_ops = 0;
  std::uint64_t coop_requests_sent = 0;
  std::uint64_t coop_responses = 0;
  std::uint64_t coop_success = 0;
  std::uint64_t coop_deadline_failures = 0;
  std::uint64_t recovered_sent = 0;
  std::uint64_t nack_checks_sent = 0;
  std::uint64_t nack_confirms = 0;
  std::uint64_t uncovered_keys = 0;
  std::uint64_t straggler_responses = 0;  // Responses after the op finished.
  std::uint64_t batches_stored = 0;
  std::uint64_t batches_expired = 0;
  std::uint64_t recheck_probes = 0;  // Coverage arrived for a pending NACK.
  std::uint64_t crash_wipes = 0;     // DC crashes that wiped recovery state.
  std::uint64_t stale_timers = 0;    // Pre-crash timers neutered by the epoch guard.

  // The one merge definition every totals path (per-shard and cross-shard)
  // uses; a new field added here is summed everywhere or nowhere.
  RecoveryStatsDc& operator+=(const RecoveryStatsDc& o) {
    nacks += o.nacks;
    nack_keys += o.nack_keys;
    in_stream_served += o.in_stream_served;
    coop_ops += o.coop_ops;
    coop_requests_sent += o.coop_requests_sent;
    coop_responses += o.coop_responses;
    coop_success += o.coop_success;
    coop_deadline_failures += o.coop_deadline_failures;
    recovered_sent += o.recovered_sent;
    nack_checks_sent += o.nack_checks_sent;
    nack_confirms += o.nack_confirms;
    uncovered_keys += o.uncovered_keys;
    straggler_responses += o.straggler_responses;
    batches_stored += o.batches_stored;
    batches_expired += o.batches_expired;
    recheck_probes += o.recheck_probes;
    crash_wipes += o.crash_wipes;
    stale_timers += o.stale_timers;
    return *this;
  }
};

class RecoveryService final : public overlay::DcService {
 public:
  RecoveryService(overlay::DataCenter& dc, const RecoveryParams& params,
                  FlowRegistryPtr registry);

  const char* name() const override { return "cr-wan-recovery"; }

  bool handle(overlay::DataCenter& dc, const PacketPtr& pkt) override;

  // Fault layer: a crash loses everything a process restart would lose --
  // stored batches, the key index, in-flight cooperative ops (their deadline
  // timers are cancelled AND epoch-guarded), pending NACKs, and the sweep
  // timer. The service then rebuilds from newly arriving coded packets;
  // receivers re-NACK on their own timers.
  void on_dc_crash() override;

  const RecoveryStatsDc& stats() const { return stats_; }

  // Number of coded batches currently held.
  std::size_t batches_held() const { return batches_.size(); }

  // Test hook (stale-timer regression): invokes the coop-deadline callback
  // exactly as a timer armed in epoch `epoch` would -- a stale epoch must be
  // a counted no-op even when batch_id has been reused since.
  void debug_fire_deadline(std::uint32_t batch_id, std::uint64_t epoch) {
    finish_op_failure(batch_id, epoch);
  }
  std::uint64_t epoch() const { return epoch_; }

 private:
  struct BatchState {
    CodedMeta meta;
    std::vector<PacketPtr> coded;
    SimTime first_seen = 0;
    bool is_cross = false;
  };

  // One cooperative recovery operation per cross-stream batch.
  struct CoopOp {
    std::uint32_t batch_id = 0;
    // position in the codeword -> payload obtained from a peer.
    std::map<std::size_t, std::vector<std::uint8_t>> responses;
    // missing key -> receiver that asked for it.
    std::map<PacketKey, NodeId> requesters;
    netsim::EventId deadline_event = 0;
    SimTime started_at = 0;
  };

  struct PendingNack {
    NodeId receiver = kInvalidNode;
    SimTime expires_at = 0;
    bool confirmed = false;
    bool check_sent = false;
  };

  void on_coded(const PacketPtr& pkt);
  void on_nack(const PacketPtr& pkt, bool confirm);
  void on_coop_response(const PacketPtr& pkt);

  // Attempts recovery of `key` for `receiver`; returns true if some path
  // (in-stream serve or cooperative op) was started or already underway.
  bool recover_key(const PacketKey& key, NodeId receiver, bool prefer_coop);

  // Serves the in-stream coded packets covering `key` to the receiver.
  bool serve_in_stream(const PacketKey& key, NodeId receiver);

  // Starts (or joins) the cooperative op for the cross batch covering key.
  bool start_coop(const PacketKey& key, NodeId receiver);

  void maybe_finish_op(CoopOp& op);
  // Deadline callback. `epoch` is the service epoch the timer was armed in;
  // a timer scheduled before a crash wipe finds epoch != epoch_ and is a
  // counted no-op (the Receiver::forget_flow generation-guard pattern).
  void finish_op_failure(std::uint32_t batch_id, std::uint64_t epoch);

  // Reclaims expired batches / pending NACKs. Freshness is enforced lazily
  // at lookup time (batch_fresh), so the sweep only frees memory and bumps
  // batches_expired -- its timing can never change recovery behavior. The
  // sweep itself runs on a timer aligned to the whole-second simulated-time
  // grid: the set of (batch, sweep-tick) expiry decisions is then a pure
  // function of store times, not of which flow's packet happened to arrive
  // first -- the property the sharded runner's merge-determinism relies on
  // when unrelated path groups share one recovery DC.
  void sweep_batches();
  void arm_sweep();

  // TTL filter applied on every lookup; see sweep_batches().
  bool batch_fresh(const BatchState& b) const {
    return dc_.now() - b.first_seen <= params_.batch_ttl;
  }

  BatchState* cross_batch_for(const PacketKey& key);
  BatchState* in_batch_for(const PacketKey& key);

  overlay::DataCenter& dc_;
  RecoveryParams params_;
  FlowRegistryPtr registry_;

  std::unordered_map<std::uint32_t, BatchState> batches_;
  std::unordered_map<PacketKey, std::vector<std::uint32_t>> key_index_;
  std::unordered_map<std::uint32_t, CoopOp> ops_;
  std::unordered_map<PacketKey, PendingNack> pending_;
  bool sweep_armed_ = false;
  netsim::EventId sweep_event_ = 0;
  // Bumped on every crash wipe; every deadline timer carries the epoch it
  // was armed in so stale ones are no-ops.
  std::uint64_t epoch_ = 0;

  // Scratch for the zero-copy decode path (see fec::decode_batch's arena
  // overload): grows to the largest batch shape once, then every decode
  // frames and reconstructs in place.
  fec::ShardArena decode_arena_;

  // Per-call scratch recycled across packets (services run on their DC's
  // single hub lane, so handlers never run reentrantly).
  NackInfo nack_scratch_;
  std::vector<PacketKey> keys_scratch_;
  std::vector<std::pair<std::size_t, std::span<const std::uint8_t>>> present_scratch_;

  RecoveryStatsDc stats_;
};

}  // namespace jqos::services
