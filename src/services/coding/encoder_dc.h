// CR-WAN encoding at the ingress DC (DC1) -- Algorithm 1 of the paper.
//
// DC1 keeps two sets of queues: an in-stream queue per flow, and a set of
// cross-stream queues per destination DC. An arriving data packet is copied
// into one queue of each type; full queues are encoded into coded packets
// (Reed-Solomon) and shipped to DC2 over the inter-DC path. Round-robin
// placement avoids putting two packets of the same flow in one cross-stream
// queue (Algorithm 1 lines 9-19); per-queue timers flush slow queues so one
// fast flow is never held hostage by slow peers (Section 4.3).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "fec/coded_batch.h"
#include "overlay/datacenter.h"
#include "services/coding/coding_plan.h"

namespace jqos::services {

struct EncoderStats {
  std::uint64_t data_packets = 0;
  std::uint64_t in_batches = 0;
  std::uint64_t cross_batches = 0;
  std::uint64_t coded_sent = 0;
  std::uint64_t timer_flushes = 0;
  std::uint64_t single_packet_evictions = 0;  // Algorithm 1 line 18.
  std::uint64_t full_scan_flushes = 0;        // Algorithm 1 lines 13-16.
  std::uint64_t unknown_flow = 0;
  std::uint64_t flow_departures = 0;          // Sessions torn down (churn).
  std::uint64_t flushes_suppressed = 0;       // Batches dropped: dead/suspended DC2.
  std::uint64_t peer_suspends = 0;            // DC2 newly marked dead.
  std::uint64_t peer_probes = 0;              // Backed-off retry flushes attempted.
  std::uint64_t peer_reengages = 0;           // DC2 observed healthy again.
  std::uint64_t crash_wipes = 0;              // DC1 crashes that wiped encoder state.

  // The one merge definition every totals path (per-shard and cross-shard)
  // uses; a new field added here is summed everywhere or nowhere.
  EncoderStats& operator+=(const EncoderStats& o) {
    data_packets += o.data_packets;
    in_batches += o.in_batches;
    cross_batches += o.cross_batches;
    coded_sent += o.coded_sent;
    timer_flushes += o.timer_flushes;
    single_packet_evictions += o.single_packet_evictions;
    full_scan_flushes += o.full_scan_flushes;
    unknown_flow += o.unknown_flow;
    flow_departures += o.flow_departures;
    flushes_suppressed += o.flushes_suppressed;
    peer_suspends += o.peer_suspends;
    peer_probes += o.peer_probes;
    peer_reengages += o.peer_reengages;
    crash_wipes += o.crash_wipes;
    return *this;
  }
};

class CodingEncoderService final : public overlay::DcService {
 public:
  // `batch_id_base` namespaces batch ids so multiple encoder DCs sending to
  // one recovery DC never collide (the encoder's DcId shifted high).
  CodingEncoderService(overlay::DataCenter& dc, const CodingParams& params,
                       FlowRegistryPtr registry);

  const char* name() const override { return "cr-wan-encoder"; }

  // Claims kData packets tagged for the coding service: enqueues the packet
  // into its in-stream and cross-stream queues (Algorithm 1) and encodes any
  // queue that fills. Returns false for packets this service does not own
  // (other types/services), true once the packet has been consumed. O(1)
  // amortized per packet plus one zero-copy batch encode per full queue.
  bool handle(overlay::DataCenter& dc, const PacketPtr& pkt) override;

  // Flushes every non-empty queue immediately (end of experiment / ON
  // interval), as the timers eventually would.
  void flush_all();

  // Session teardown (churn workloads): encodes any residual in-stream
  // queue for the departing flow, then reclaims all state keyed by it --
  // the in-stream queue, the round-robin cursor, and its membership in the
  // dc2 group (shrinking the effective cross-batch size back down as the
  // population drains). Packets of the flow already sitting in cross
  // queues are left to flush on their timers; the coded batch remains
  // decodable because CodedMeta names (flow, seq) pairs explicitly. Must
  // be called BEFORE the flow leaves the registry (the residual flush
  // looks it up). O(1) amortized; keeps encoder memory O(live flows).
  void flow_departed(FlowId flow, NodeId dc2);

  const EncoderStats& stats() const { return stats_; }
  const CodingParams& params() const { return params_; }

  // Health oracle for destination DCs (the real system learns this from its
  // control channel). When set, a flush toward a DC reported dead is dropped
  // instead of shipped, and the encoder backs off exponentially before
  // probing that DC with another flush attempt. Never invoked for healthy
  // steady state beyond one boolean check per batch, and the suspension
  // machinery schedules no simulator events -- it is driven entirely by
  // arriving traffic, so an all-healthy run is bit-identical with or
  // without the oracle installed.
  void set_peer_health(std::function<bool(NodeId)> oracle) {
    peer_health_ = std::move(oracle);
  }

  // Fault layer: a DC1 crash loses every staged queue (the packets were in
  // process memory), the round-robin cursors, and the group membership; the
  // batch-id counter survives conceptually as a new process instance never
  // reuses ids (monotonic namespace per DC).
  void on_dc_crash() override;

 private:
  struct Queue {
    std::vector<PacketPtr> pkts;
    netsim::EventId timer = 0;
    bool timer_armed = false;
    std::uint64_t generation = 0;  // Guards against stale timer firings.
  };

  void enqueue_in_stream(const PacketPtr& pkt);
  void enqueue_cross_stream(const PacketPtr& pkt, NodeId dc2);

  // Encodes and clears one queue; `coded` many parity packets go to `dc2`.
  // Runs on the zero-copy BatchEncoder path: the per-instance arena and the
  // coded-packet scratch vector are reused across every batch this service
  // encodes, so steady-state batches allocate only the coded packets
  // themselves.
  void encode_queue(Queue& q, std::size_t coded, PacketType type, NodeId dc2);

  void arm_timer_in(FlowId flow);
  void arm_timer_cross(NodeId dc2, std::size_t index);
  void disarm(Queue& q);

  // True when a batch toward dc2 should be shipped now; false drops it
  // (suppressed flush) and advances the suspension/backoff state machine.
  bool peer_sendable(NodeId dc2);

  bool queue_contains_flow(const Queue& q, FlowId flow) const;

  overlay::DataCenter& dc_;
  CodingParams params_;
  FlowRegistryPtr registry_;
  std::uint32_t next_batch_id_;

  // Zero-copy coding state, reused for the lifetime of the service: the
  // encoder's shard arena grows to the largest batch shape once, then every
  // later batch frames and encodes without touching the allocator.
  fec::BatchEncoder encoder_;
  std::vector<PacketPtr> coded_scratch_;
  // flush_all ordering scratch (services run on one lane; never reentrant).
  std::vector<FlowId> flush_scratch_;

  std::unordered_map<FlowId, Queue> in_qs_;
  // Destination DC -> fixed-size vector of cross-stream queues.
  std::map<NodeId, std::vector<Queue>> cross_qs_;
  // Round-robin cursor per flow (Algorithm 1 line 7).
  std::unordered_map<FlowId, std::size_t> rr_cursor_;
  // Flows observed per destination-DC group. A group with fewer live flows
  // than k can never fill a k-batch (no two packets of one flow share a
  // batch), so the effective batch size adapts to the group population --
  // the "pick a further subset of flows" step of Section 4.1.
  std::map<NodeId, std::set<FlowId>> group_flows_;

  // Lazy (event-free) suspension state per destination DC; see
  // peer_sendable(). retry_at is the earliest time the next flush attempt
  // toward a suspended DC will actually probe it.
  struct PeerState {
    bool suspended = false;
    SimTime retry_at = 0;
    SimDuration backoff = 0;
  };
  std::function<bool(NodeId)> peer_health_;
  std::map<NodeId, PeerState> peers_;

  EncoderStats stats_;
};

}  // namespace jqos::services
