// Coding plan: parameters and flow bookkeeping for CR-WAN (Section 4.1).
//
// The plan captures the spatial constraint (only flows with the same
// destination DC are coded together -- DC1 groups flows by egress DC) and
// the temporal constraint (a batch only holds packets that arrived within a
// short interval, enforced by per-queue timers that bound encoding delay).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/sim_time.h"
#include "common/types.h"

namespace jqos::services {

struct CodingParams {
  // Cross-stream: batches draw from at most k different flows (k <= 10 in
  // the paper's evaluation; Section 5), protected by `cross_coded` coded
  // packets (default 2, the straggler-protection choice of Section 5).
  std::size_t k = 6;
  std::size_t cross_coded = 2;

  // In-stream: one FEC packet per `in_block` data packets of a single flow
  // (s = 1/5 for interactive apps; 0 coded packets disables in-stream
  // coding, as the Skype case study does since Skype runs its own FEC).
  std::size_t in_block = 5;
  std::size_t in_coded = 1;

  // Queues that cannot fill quickly are flushed by timers so coding never
  // holds back recovery data (Section 4.3, "Timing constraints").
  SimDuration queue_timeout = msec(30);

  // Cross-stream queues maintained per destination DC; more queues means
  // less head-of-line contention between bursty flows.
  std::size_t queues_per_group = 4;

  // Flushes toward a destination DC the health oracle reports dead are
  // suppressed; the encoder retries (a "probe" flush) with this exponential
  // backoff so a long outage costs O(log) wasted batches, not one per flush.
  SimDuration peer_backoff_base = msec(100);
  SimDuration peer_backoff_cap = sec(2);

  double cross_rate() const {
    return k == 0 ? 0.0 : static_cast<double>(cross_coded) / static_cast<double>(k);
  }
  double in_rate() const {
    return in_block == 0 ? 0.0 : static_cast<double>(in_coded) / static_cast<double>(in_block);
  }
};

// Where a flow terminates: the DC near its receiver (spatial grouping key)
// and the receiver itself (cooperative-recovery solicitation target).
struct FlowInfo {
  NodeId dc2 = kInvalidNode;
  NodeId receiver = kInvalidNode;
};

// Shared flow registry, standing in for the prototype's TCP control channel
// over which endpoints register flows with the DCs (Section 5).
class FlowRegistry {
 public:
  void register_flow(FlowId flow, const FlowInfo& info) { flows_[flow] = info; }
  void unregister_flow(FlowId flow) { flows_.erase(flow); }

  // nullptr when the flow is unknown.
  const FlowInfo* find(FlowId flow) const;

  std::size_t size() const { return flows_.size(); }

 private:
  std::unordered_map<FlowId, FlowInfo> flows_;
};

using FlowRegistryPtr = std::shared_ptr<FlowRegistry>;

}  // namespace jqos::services
