// Short-term in-memory packet store (Section 3.2).
//
// "For any packet to use this service, there should be an associated timeout
// value and an identifier that can be used to retrieve/pull that packet."
// The identifier is the (flow, seq) PacketKey; the timeout is a TTL after
// which the entry is reclaimed. A byte-capacity bound with LRU eviction
// protects the DC's memory when many flows cache simultaneously.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/packet.h"

namespace jqos::services {

struct CacheStats {
  std::uint64_t puts = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t expirations = 0;
  std::uint64_t capacity_evictions = 0;
};

class CacheStore {
 public:
  // max_bytes bounds the sum of stored payload sizes; 0 means unbounded.
  explicit CacheStore(std::uint64_t max_bytes = 0) : max_bytes_(max_bytes) {}

  // Stores (or refreshes) a packet under its key until now + ttl.
  void put(const PacketPtr& pkt, SimTime now, SimDuration ttl);

  // Retrieves a live entry; expired entries count as misses and are
  // reclaimed lazily.
  PacketPtr get(const PacketKey& key, SimTime now);

  // Drops every entry whose deadline has passed; returns the number
  // reclaimed. Called opportunistically by the owning service.
  std::size_t sweep(SimTime now);

  // Drops everything (DC crash: the cache restarts cold). Cumulative stats
  // survive -- they are books, not state.
  void clear() {
    entries_.clear();
    lru_.clear();
    bytes_ = 0;
  }

  std::size_t size() const { return entries_.size(); }
  std::uint64_t bytes() const { return bytes_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    PacketPtr pkt;
    SimTime expires_at;
    std::list<PacketKey>::iterator lru_it;
  };

  void erase(std::unordered_map<PacketKey, Entry>::iterator it);

  std::uint64_t max_bytes_;
  std::uint64_t bytes_ = 0;
  std::unordered_map<PacketKey, Entry> entries_;
  // Most-recently-used at the front.
  std::list<PacketKey> lru_;
  CacheStats stats_;
};

}  // namespace jqos::services
