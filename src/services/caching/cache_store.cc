#include "services/caching/cache_store.h"

namespace jqos::services {

void CacheStore::put(const PacketPtr& pkt, SimTime now, SimDuration ttl) {
  ++stats_.puts;
  const PacketKey key = pkt->key();
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh: replace payload and TTL, move to MRU position.
    bytes_ -= it->second.pkt->wire_size();
    bytes_ += pkt->wire_size();
    it->second.pkt = pkt;
    it->second.expires_at = now + ttl;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  entries_[key] = Entry{pkt, now + ttl, lru_.begin()};
  bytes_ += pkt->wire_size();

  // Capacity eviction from the LRU tail; never evict the entry just added.
  while (max_bytes_ != 0 && bytes_ > max_bytes_ && entries_.size() > 1) {
    auto victim = entries_.find(lru_.back());
    if (victim == entries_.end()) break;
    ++stats_.capacity_evictions;
    erase(victim);
  }
}

PacketPtr CacheStore::get(const PacketKey& key, SimTime now) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.expires_at <= now) {
    ++stats_.expirations;
    erase(it);
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  return it->second.pkt;
}

std::size_t CacheStore::sweep(SimTime now) {
  std::size_t reclaimed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires_at <= now) {
      auto doomed = it++;
      ++stats_.expirations;
      erase(doomed);
      ++reclaimed;
    } else {
      ++it;
    }
  }
  return reclaimed;
}

void CacheStore::erase(std::unordered_map<PacketKey, Entry>::iterator it) {
  bytes_ -= it->second.pkt->wire_size();
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

}  // namespace jqos::services
