#include "services/caching/caching_service.h"

namespace jqos::services {

bool CachingService::handle(overlay::DataCenter& dc, const PacketPtr& pkt) {
  switch (pkt->type) {
    case PacketType::kData: {
      if (pkt->service != ServiceType::kCache) return false;
      store_.put(pkt, dc.now(), ttl_);
      ++service_stats_.cached;
      return true;
    }
    case PacketType::kPull: {
      if (pkt->service != ServiceType::kCache) return false;
      // Pull key travels in (flow, seq) of the request itself.
      ++service_stats_.pulls;
      serve(dc, pkt->key(), pkt->src);
      return true;
    }
    case PacketType::kNack: {
      if (pkt->service != ServiceType::kCache) return false;
      // The receiver-driven recovery protocol: each explicitly missing
      // packet is served from the cache. Tail NACKs ask for everything at
      // or beyond `expected` -- served by probing forward while hits last
      // (sequence numbers are contiguous per flow).
      auto info = NackInfo::parse(pkt->payload);
      if (!info) return false;
      for (SeqNo s : info->missing) {
        ++service_stats_.pulls;
        serve(dc, PacketKey{pkt->flow, s}, pkt->src);
      }
      if (info->tail) {
        // Serve the contiguous cached run starting at `expected`; the first
        // miss ends the outage-recovery burst.
        SeqNo s = info->expected;
        while (true) {
          PacketPtr cached = store_.get(PacketKey{pkt->flow, s}, dc.now());
          if (cached == nullptr) break;
          ++service_stats_.pulls;
          ++service_stats_.pull_hits;
          auto out = alloc_packet_copy(dc.pool(), *cached);
          out->type = PacketType::kRecovered;
          out->dst = pkt->src;
          out->final_dst = pkt->src;
          dc.send(out);
          ++s;
        }
      }
      ++service_stats_.nack_recoveries;
      return true;
    }
    default:
      return false;
  }
}

void CachingService::serve(overlay::DataCenter& dc, const PacketKey& key, NodeId requester) {
  PacketPtr cached = store_.get(key, dc.now());
  if (cached == nullptr) {
    ++service_stats_.pull_misses;
    return;  // Recovery falls back to the transport (fails silently).
  }
  ++service_stats_.pull_hits;
  auto out = alloc_packet_copy(dc.pool(), *cached);
  out->type = PacketType::kRecovered;
  out->dst = requester;
  out->final_dst = requester;
  dc.send(out);
}

}  // namespace jqos::services
