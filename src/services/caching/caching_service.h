// The caching service (Section 3.2).
//
// Stores copies of data packets arriving with service == kCache, and answers
// kPull requests (and the NACK-based recovery protocol of Section 3.4) from
// the store. Supports the use cases of Figure 3:
//  - loss recovery: a copy of each packet is cached at the DC near the
//    receiver; on loss the receiver pulls it (total delay y + 2*delta);
//  - hybrid multicast: one cached copy serves pulls from many receivers;
//  - mobility/DTN rendezvous: packets addressed to an offline receiver wait
//    in the cache until pulled.
#pragma once

#include <cstdint>

#include "overlay/datacenter.h"
#include "services/caching/cache_store.h"

namespace jqos::services {

struct CachingServiceStats {
  std::uint64_t cached = 0;
  std::uint64_t pulls = 0;
  std::uint64_t pull_hits = 0;
  std::uint64_t pull_misses = 0;
  std::uint64_t nack_recoveries = 0;
  std::uint64_t crash_wipes = 0;  // DC crashes that emptied the store.
};

class CachingService final : public overlay::DcService {
 public:
  // `ttl` is how long cached packets stay pullable. The paper's use cases
  // need only short-term storage; mobility scenarios pass a longer TTL.
  explicit CachingService(SimDuration ttl = sec(30), std::uint64_t max_bytes = 0)
      : ttl_(ttl), store_(max_bytes) {}

  const char* name() const override { return "caching"; }

  bool handle(overlay::DataCenter& dc, const PacketPtr& pkt) override;

  // Fault layer: the cache restarts cold -- every stored packet is gone and
  // later pulls for pre-crash traffic miss (the receiver's NACK path then
  // falls back to the sender's direct copy).
  void on_dc_crash() override {
    ++service_stats_.crash_wipes;
    store_.clear();
  }

  const CachingServiceStats& stats() const { return service_stats_; }
  const CacheStore& store() const { return store_; }
  SimDuration ttl() const { return ttl_; }

 private:
  void serve(overlay::DataCenter& dc, const PacketKey& key, NodeId requester);

  SimDuration ttl_;
  CacheStore store_;
  CachingServiceStats service_stats_;
};

}  // namespace jqos::services
