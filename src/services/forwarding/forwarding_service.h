// The forwarding service (Section 3.1).
//
// "Similar to IP forwarding, our forwarding service decides the next hop
// based on the destination address of the packet. ... The next hop could be
// another J-QoS service, an end-point (e.g., the receiver), or a multicast
// group."
//
// The service consumes any packet whose final_dst is not this DC and relays
// it one hop closer: either a configured next hop, or directly to final_dst
// when a link exists (the overlay is small, so next-hop decisions are
// simple and centrally configured -- Section 3.5). It also expands
// multicast groups, fanning a single ingress stream out to every member,
// which is the cloud-multicast use case of Figure 3(c).
//
// Forwarding doubles as the building block for caching and coding: copies
// destined to a remote DC2 transit DC1 through this service.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "overlay/datacenter.h"

namespace jqos::services {

// Multicast group ids live in a reserved NodeId range so they can appear in
// Packet::final_dst without colliding with real nodes.
inline constexpr NodeId kMulticastBase = 0xf0000000;

inline bool is_multicast(NodeId id) { return id >= kMulticastBase; }

struct ForwardingStats {
  std::uint64_t forwarded = 0;
  std::uint64_t multicast_copies = 0;
  std::uint64_t no_route = 0;
};

class ForwardingService final : public overlay::DcService {
 public:
  const char* name() const override { return "forwarding"; }

  // Pin the next hop used for packets whose final destination is `dst`
  // (e.g. route end-host packets via the DC nearest to them). Without an
  // entry the packet is sent straight to its final destination.
  void set_next_hop(NodeId dst, NodeId next_hop) { routes_[dst] = next_hop; }

  // Registers a multicast group; packets with final_dst == group fan out to
  // every member.
  void set_multicast_group(NodeId group, std::vector<NodeId> members);

  bool handle(overlay::DataCenter& dc, const PacketPtr& pkt) override;

  const ForwardingStats& stats() const { return stats_; }

 private:
  void forward_unicast(overlay::DataCenter& dc, const PacketPtr& pkt, NodeId final_dst);

  std::map<NodeId, NodeId> routes_;
  std::map<NodeId, std::vector<NodeId>> groups_;
  ForwardingStats stats_;
};

}  // namespace jqos::services
