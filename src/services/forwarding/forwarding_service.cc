#include "services/forwarding/forwarding_service.h"

#include "common/logging.h"

namespace jqos::services {

void ForwardingService::set_multicast_group(NodeId group, std::vector<NodeId> members) {
  groups_[group] = std::move(members);
}

bool ForwardingService::handle(overlay::DataCenter& dc, const PacketPtr& pkt) {
  const NodeId final_dst = pkt->final_dst;
  // Only packets still in transit concern forwarding: a packet whose final
  // destination is this DC (or which has none) belongs to a local service.
  if (final_dst == kInvalidNode || final_dst == dc.id()) return false;

  if (is_multicast(final_dst)) {
    auto it = groups_.find(final_dst);
    if (it == groups_.end()) {
      ++stats_.no_route;
      JQOS_WARN(dc.name() << ": unknown multicast group " << final_dst);
      return true;
    }
    for (NodeId member : it->second) {
      auto copy = alloc_packet_copy(dc.pool(), *pkt);
      copy->dst = member;
      copy->final_dst = member;
      ++stats_.multicast_copies;
      dc.send(copy);
    }
    return true;
  }

  forward_unicast(dc, pkt, final_dst);
  return true;
}

void ForwardingService::forward_unicast(overlay::DataCenter& dc, const PacketPtr& pkt,
                                        NodeId final_dst) {
  auto it = routes_.find(final_dst);
  const NodeId next_hop = it == routes_.end() ? final_dst : it->second;
  auto copy = alloc_packet_copy(dc.pool(), *pkt);
  copy->dst = next_hop;
  ++stats_.forwarded;
  dc.send(copy);
}

}  // namespace jqos::services
