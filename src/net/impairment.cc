#include "net/impairment.h"

namespace jqos::net {

ImpairedLink::ImpairedLink(EventLoop& loop, UdpSocket& socket,
                           const ImpairmentParams& params, Rng rng)
    : loop_(loop), socket_(socket), params_(params), rng_(rng) {}

void ImpairedLink::send(std::vector<std::uint8_t> data, const UdpEndpoint& dst) {
  ++stats_.offered;
  if (rng_.bernoulli(params_.drop_probability)) {
    ++stats_.dropped;
    return;
  }
  auto total_delay = params_.delay;
  if (params_.jitter.count() > 0) {
    total_delay += std::chrono::milliseconds(rng_.uniform_int(0, params_.jitter.count()));
  }
  ++stats_.sent;
  if (total_delay.count() <= 0) {
    socket_.send_to(data, dst);
    return;
  }
  loop_.add_timer(total_delay, [this, data = std::move(data), dst] {
    socket_.send_to(data, dst);
  });
}

}  // namespace jqos::net
