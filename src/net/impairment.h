// User-space link impairment for the live loopback runtime: probabilistic
// drops and added delay applied on the send side, standing in for the WAN
// emulation (netem/Emulab) the paper's testbed used. Loopback itself is
// lossless and instant, so all "Internet path" behaviour is injected here.
#pragma once

#include <chrono>
#include <cstdint>

#include "common/rng.h"
#include "net/event_loop.h"
#include "net/udp_socket.h"

namespace jqos::net {

struct ImpairmentParams {
  double drop_probability = 0.0;
  std::chrono::milliseconds delay{0};
  std::chrono::milliseconds jitter{0};  // Uniform extra in [0, jitter].
};

struct ImpairmentStats {
  std::uint64_t offered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t sent = 0;
};

// Sends datagrams through `socket` with the configured impairment; delayed
// sends are scheduled on the event loop.
class ImpairedLink {
 public:
  ImpairedLink(EventLoop& loop, UdpSocket& socket, const ImpairmentParams& params,
               Rng rng);

  void send(std::vector<std::uint8_t> data, const UdpEndpoint& dst);

  void set_params(const ImpairmentParams& params) { params_ = params; }
  const ImpairmentStats& stats() const { return stats_; }

 private:
  EventLoop& loop_;
  UdpSocket& socket_;
  ImpairmentParams params_;
  Rng rng_;
  ImpairmentStats stats_;
};

}  // namespace jqos::net
