// Live loopback deployment of the J-QoS caching recovery path: a DC
// process, a sender, and a receiver exchanging real UDP datagrams in the
// J-QoS wire format, with impairment injected on the "Internet" leg. This
// mirrors the prototype's proxy mode (Section 5): applications hand packets
// to a local J-QoS process which duplicates them toward the cloud.
//
// The simulator remains the vehicle for the paper's quantitative
// experiments; the live runtime demonstrates (and tests) that the same wire
// format and recovery protocol run over actual sockets.
#pragma once

#include <functional>
#include <map>
#include <set>

#include "common/packet.h"
#include "net/impairment.h"
#include "net/udp_socket.h"
#include "services/caching/cache_store.h"

namespace jqos::net {

// A data center running the caching service over UDP.
class LiveCachingDc {
 public:
  LiveCachingDc(EventLoop& loop, std::uint16_t port = 0);

  UdpEndpoint endpoint() const { return socket_.local_endpoint(); }
  const services::CacheStore& store() const { return store_; }
  std::uint64_t served() const { return served_; }

 private:
  void on_readable();
  void handle(const Packet& pkt, const UdpEndpoint& from);

  EventLoop& loop_;
  UdpSocket socket_;
  services::CacheStore store_;
  std::uint64_t served_ = 0;
};

// A sender that duplicates each payload: direct to the receiver through an
// impaired link, and a clean copy to the DC for caching.
class LiveSender {
 public:
  LiveSender(EventLoop& loop, FlowId flow, UdpEndpoint receiver, UdpEndpoint dc,
             const ImpairmentParams& direct_impairment, Rng rng);

  SeqNo send(std::vector<std::uint8_t> payload);

  const ImpairmentStats& direct_stats() const { return direct_link_.stats(); }

 private:
  EventLoop& loop_;
  UdpSocket socket_;
  ImpairedLink direct_link_;
  FlowId flow_;
  UdpEndpoint receiver_;
  UdpEndpoint dc_;
  SeqNo next_seq_ = 0;
};

// A receiver with gap detection and pull-based recovery from the DC.
class LiveReceiver {
 public:
  using DeliverFn = std::function<void(const Packet&, bool recovered)>;

  LiveReceiver(EventLoop& loop, FlowId flow, UdpEndpoint dc, DeliverFn on_delivery,
               std::uint16_t port = 0);

  UdpEndpoint endpoint() const { return socket_.local_endpoint(); }

  std::uint64_t delivered_direct() const { return delivered_direct_; }
  std::uint64_t delivered_recovered() const { return delivered_recovered_; }
  std::uint64_t pulls_sent() const { return pulls_sent_; }

 private:
  void on_readable();
  void pull(SeqNo seq);

  EventLoop& loop_;
  UdpSocket socket_;
  FlowId flow_;
  UdpEndpoint dc_;
  DeliverFn on_delivery_;
  SeqNo next_expected_ = 0;
  std::set<SeqNo> pending_pulls_;
  std::uint64_t delivered_direct_ = 0;
  std::uint64_t delivered_recovered_ = 0;
  std::uint64_t pulls_sent_ = 0;
};

}  // namespace jqos::net
