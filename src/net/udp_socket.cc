#include "net/udp_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sstream>
#include <stdexcept>

namespace jqos::net {

sockaddr_in UdpEndpoint::to_sockaddr() const {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ip_host_order);
  sa.sin_port = htons(port);
  return sa;
}

UdpEndpoint UdpEndpoint::from_sockaddr(const sockaddr_in& sa) {
  UdpEndpoint ep;
  ep.ip_host_order = ntohl(sa.sin_addr.s_addr);
  ep.port = ntohs(sa.sin_port);
  return ep;
}

std::string UdpEndpoint::to_string() const {
  std::ostringstream os;
  os << ((ip_host_order >> 24) & 0xff) << '.' << ((ip_host_order >> 16) & 0xff) << '.'
     << ((ip_host_order >> 8) & 0xff) << '.' << (ip_host_order & 0xff) << ':' << port;
  return os.str();
}

UdpSocket::UdpSocket(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw std::runtime_error("UDP socket() failed");
  UdpEndpoint ep;
  ep.port = port;
  sockaddr_in sa = ep.to_sockaddr();
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd_);
    throw std::runtime_error("UDP bind() failed");
  }
  socklen_t len = sizeof(sa);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    ::close(fd_);
    throw std::runtime_error("getsockname() failed");
  }
  local_ = UdpEndpoint::from_sockaddr(sa);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept : fd_(other.fd_), local_(other.local_) {
  other.fd_ = -1;
}

ssize_t UdpSocket::send_to(std::span<const std::uint8_t> data, const UdpEndpoint& dst) {
  sockaddr_in sa = dst.to_sockaddr();
  return ::sendto(fd_, data.data(), data.size(), 0, reinterpret_cast<sockaddr*>(&sa),
                  sizeof(sa));
}

std::optional<UdpSocket::Datagram> UdpSocket::recv() {
  std::vector<std::uint8_t> buf(65536);
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                               reinterpret_cast<sockaddr*>(&sa), &len);
  if (n < 0) return std::nullopt;
  buf.resize(static_cast<std::size_t>(n));
  Datagram d;
  d.data = std::move(buf);
  d.from = UdpEndpoint::from_sockaddr(sa);
  return d;
}

}  // namespace jqos::net
