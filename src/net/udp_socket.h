// Non-blocking UDP socket wrapper. The live runtime uses UDP for all data
// plane traffic (forwarded packets, coded packets, NACKs, recoveries), as
// the prototype does (Section 5).
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace jqos::net {

struct UdpEndpoint {
  std::uint32_t ip_host_order = 0x7f000001;  // 127.0.0.1
  std::uint16_t port = 0;

  sockaddr_in to_sockaddr() const;
  static UdpEndpoint from_sockaddr(const sockaddr_in& sa);
  std::string to_string() const;

  friend bool operator==(const UdpEndpoint&, const UdpEndpoint&) = default;
};

class UdpSocket {
 public:
  // Binds to 127.0.0.1:`port` (0 = ephemeral) in non-blocking mode.
  explicit UdpSocket(std::uint16_t port = 0);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&&) = delete;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  int fd() const { return fd_; }
  UdpEndpoint local_endpoint() const { return local_; }

  // Returns bytes sent or -1 (EWOULDBLOCK and real errors alike; datagram
  // best effort).
  ssize_t send_to(std::span<const std::uint8_t> data, const UdpEndpoint& dst);

  struct Datagram {
    std::vector<std::uint8_t> data;
    UdpEndpoint from;
  };
  // Non-blocking receive; nullopt when no datagram is queued.
  std::optional<Datagram> recv();

 private:
  int fd_ = -1;
  UdpEndpoint local_;
};

}  // namespace jqos::net
