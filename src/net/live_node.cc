#include "net/live_node.h"

#include <sys/epoll.h>

#include <chrono>

namespace jqos::net {
namespace {

// Live-runtime clock in microseconds, used for cache TTLs.
SimTime live_now() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

constexpr SimDuration kLiveCacheTtl = sec(30);

}  // namespace

// ----------------------------- LiveCachingDc ------------------------------

LiveCachingDc::LiveCachingDc(EventLoop& loop, std::uint16_t port)
    : loop_(loop), socket_(port) {
  loop_.add_fd(socket_.fd(), EPOLLIN, [this](std::uint32_t) { on_readable(); });
}

void LiveCachingDc::on_readable() {
  while (auto dgram = socket_.recv()) {
    auto pkt = Packet::parse(dgram->data);
    if (pkt) handle(*pkt, dgram->from);
  }
}

void LiveCachingDc::handle(const Packet& pkt, const UdpEndpoint& from) {
  switch (pkt.type) {
    case PacketType::kData: {
      if (pkt.service != ServiceType::kCache) return;
      auto stored = std::make_shared<Packet>(pkt);
      store_.put(stored, live_now(), kLiveCacheTtl);
      return;
    }
    case PacketType::kPull: {
      PacketPtr cached = store_.get(pkt.key(), live_now());
      if (cached == nullptr) return;  // Fails silently; receiver re-pulls.
      Packet out = *cached;
      out.type = PacketType::kRecovered;
      ++served_;
      socket_.send_to(out.serialize(), from);
      return;
    }
    default:
      return;
  }
}

// ------------------------------- LiveSender -------------------------------

LiveSender::LiveSender(EventLoop& loop, FlowId flow, UdpEndpoint receiver, UdpEndpoint dc,
                       const ImpairmentParams& direct_impairment, Rng rng)
    : loop_(loop),
      socket_(0),
      direct_link_(loop, socket_, direct_impairment, rng),
      flow_(flow),
      receiver_(receiver),
      dc_(dc) {
  (void)loop_;
}

SeqNo LiveSender::send(std::vector<std::uint8_t> payload) {
  const SeqNo seq = next_seq_++;
  Packet pkt;
  pkt.type = PacketType::kData;
  pkt.flow = flow_;
  pkt.seq = seq;
  pkt.sent_at = live_now();
  pkt.payload = std::move(payload);

  // Direct copy over the impaired "Internet" leg.
  pkt.service = ServiceType::kNone;
  direct_link_.send(pkt.serialize(), receiver_);

  // Clean duplicate to the DC cache (the cloud leg is reliable).
  pkt.service = ServiceType::kCache;
  socket_.send_to(pkt.serialize(), dc_);
  return seq;
}

// ------------------------------ LiveReceiver ------------------------------

LiveReceiver::LiveReceiver(EventLoop& loop, FlowId flow, UdpEndpoint dc,
                           DeliverFn on_delivery, std::uint16_t port)
    : loop_(loop),
      socket_(port),
      flow_(flow),
      dc_(dc),
      on_delivery_(std::move(on_delivery)) {
  loop_.add_fd(socket_.fd(), EPOLLIN, [this](std::uint32_t) { on_readable(); });
}

void LiveReceiver::pull(SeqNo seq) {
  Packet req;
  req.type = PacketType::kPull;
  req.service = ServiceType::kCache;
  req.flow = flow_;
  req.seq = seq;
  req.sent_at = live_now();
  ++pulls_sent_;
  socket_.send_to(req.serialize(), dc_);
  // Retry while the hole persists: the cloud copy may still be in flight.
  loop_.add_timer(std::chrono::milliseconds(25), [this, seq] {
    if (pending_pulls_.count(seq) != 0) pull(seq);
  });
}

void LiveReceiver::on_readable() {
  while (auto dgram = socket_.recv()) {
    auto parsed = Packet::parse(dgram->data);
    if (!parsed || parsed->flow != flow_) continue;
    const Packet& pkt = *parsed;
    const bool recovered = pkt.type == PacketType::kRecovered;
    if (pkt.type != PacketType::kData && !recovered) continue;

    if (pkt.seq < next_expected_ && pending_pulls_.count(pkt.seq) == 0) {
      continue;  // Duplicate.
    }
    if (pending_pulls_.erase(pkt.seq) != 0) {
      if (recovered) ++delivered_recovered_; else ++delivered_direct_;
      if (on_delivery_) on_delivery_(pkt, recovered);
      continue;
    }
    // Gap detection: pull every hole between the expected and arrived seq.
    for (SeqNo s = next_expected_; s < pkt.seq; ++s) {
      if (pending_pulls_.insert(s).second) pull(s);
    }
    next_expected_ = pkt.seq + 1;
    if (recovered) ++delivered_recovered_; else ++delivered_direct_;
    if (on_delivery_) on_delivery_(pkt, recovered);
  }
}

}  // namespace jqos::net
