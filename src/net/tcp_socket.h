// Minimal non-blocking TCP wrappers for the live runtime's control channel
// (the prototype "uses TCP for control channel traffic between the
// endpoints and the data centers", Section 5). Control messages are
// length-prefixed frames.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace jqos::net {

class TcpConnection {
 public:
  explicit TcpConnection(int fd);
  ~TcpConnection();

  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;
  TcpConnection& operator=(TcpConnection&&) = delete;

  // Connects to 127.0.0.1:`port` (blocking connect, then non-blocking IO).
  static std::optional<TcpConnection> connect_local(std::uint16_t port);

  int fd() const { return fd_; }

  // Queues one length-prefixed frame; returns false on a dead connection.
  bool send_frame(std::span<const std::uint8_t> payload);

  // Drains readable bytes and returns every complete frame received.
  std::vector<std::vector<std::uint8_t>> read_frames();

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> rx_;
};

class TcpListener {
 public:
  // Listens on 127.0.0.1:`port` (0 = ephemeral).
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  int fd() const { return fd_; }
  std::uint16_t port() const { return port_; }

  // Non-blocking accept.
  std::optional<TcpConnection> accept();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace jqos::net
