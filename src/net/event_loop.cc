#include "net/event_loop.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <stdexcept>

namespace jqos::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw std::runtime_error("epoll_create1 failed");
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, IoCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::runtime_error("epoll_ctl ADD failed");
  }
  io_callbacks_[fd] = std::move(cb);
}

void EventLoop::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  io_callbacks_.erase(fd);
}

TimerId EventLoop::add_timer(std::chrono::milliseconds delay, TimerCallback cb) {
  const TimerId id = next_timer_++;
  timers_.push(TimerEntry{Clock::now() + delay, id});
  timer_callbacks_[id] = std::move(cb);
  return id;
}

void EventLoop::cancel_timer(TimerId id) { timer_callbacks_.erase(id); }

void EventLoop::fire_due_timers() {
  const auto now = Clock::now();
  while (!timers_.empty() && timers_.top().due <= now) {
    const TimerEntry entry = timers_.top();
    timers_.pop();
    auto it = timer_callbacks_.find(entry.id);
    if (it == timer_callbacks_.end()) continue;  // Cancelled.
    TimerCallback cb = std::move(it->second);
    timer_callbacks_.erase(it);
    cb();
  }
}

bool EventLoop::run_once(std::chrono::milliseconds max_wait) {
  if (io_callbacks_.empty() && timer_callbacks_.empty()) return false;

  int wait_ms = static_cast<int>(max_wait.count());
  // Trim the wait to the next live timer deadline.
  while (!timers_.empty() && timer_callbacks_.count(timers_.top().id) == 0) timers_.pop();
  if (!timers_.empty()) {
    const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
        timers_.top().due - Clock::now());
    wait_ms = std::clamp<int>(static_cast<int>(until.count()), 0, wait_ms);
  }

  std::array<epoll_event, 64> events{};
  const int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                             wait_ms);
  for (int i = 0; i < n; ++i) {
    auto it = io_callbacks_.find(events[static_cast<std::size_t>(i)].data.fd);
    if (it != io_callbacks_.end()) it->second(events[static_cast<std::size_t>(i)].events);
  }
  fire_due_timers();
  return true;
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_ && run_once(std::chrono::milliseconds(100))) {
  }
}

}  // namespace jqos::net
