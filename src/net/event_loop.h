// A small epoll-based event loop with a timer heap: the live (non-simulated)
// runtime's scheduler. One loop per thread; not thread-safe by design (the
// paper's prototype runs one event loop per process, in user space).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

namespace jqos::net {

using Clock = std::chrono::steady_clock;
using TimerId = std::uint64_t;

class EventLoop {
 public:
  using IoCallback = std::function<void(std::uint32_t epoll_events)>;
  using TimerCallback = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Watches `fd` for the given epoll event mask (EPOLLIN etc.).
  void add_fd(int fd, std::uint32_t events, IoCallback cb);
  void remove_fd(int fd);

  TimerId add_timer(std::chrono::milliseconds delay, TimerCallback cb);
  void cancel_timer(TimerId id);

  // Runs until stop() is called and no work remains.
  void run();
  void stop() { stopped_ = true; }

  // Processes at most one epoll wake-up + due timers; returns false when
  // there is nothing left to wait for.
  bool run_once(std::chrono::milliseconds max_wait);

 private:
  struct TimerEntry {
    Clock::time_point due;
    TimerId id;
    bool operator>(const TimerEntry& rhs) const {
      if (due != rhs.due) return due > rhs.due;
      return id > rhs.id;
    }
  };

  void fire_due_timers();

  int epoll_fd_ = -1;
  bool stopped_ = false;
  std::map<int, IoCallback> io_callbacks_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<TimerEntry>> timers_;
  std::map<TimerId, TimerCallback> timer_callbacks_;
  TimerId next_timer_ = 1;
};

}  // namespace jqos::net
