#include "net/tcp_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>

namespace jqos::net {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

sockaddr_in local_addr(std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(0x7f000001);
  sa.sin_port = htons(port);
  return sa;
}

}  // namespace

TcpConnection::TcpConnection(int fd) : fd_(fd) { set_nonblocking(fd_); }

TcpConnection::~TcpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(other.fd_), rx_(std::move(other.rx_)) {
  other.fd_ = -1;
}

std::optional<TcpConnection> TcpConnection::connect_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in sa = local_addr(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(fd);
}

bool TcpConnection::send_frame(std::span<const std::uint8_t> payload) {
  if (fd_ < 0) return false;
  std::vector<std::uint8_t> frame(4 + payload.size());
  const auto n = static_cast<std::uint32_t>(payload.size());
  frame[0] = static_cast<std::uint8_t>(n >> 24);
  frame[1] = static_cast<std::uint8_t>(n >> 16);
  frame[2] = static_cast<std::uint8_t>(n >> 8);
  frame[3] = static_cast<std::uint8_t>(n);
  std::copy(payload.begin(), payload.end(), frame.begin() + 4);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t sent = ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // Loopback drains fast.
      return false;
    }
    off += static_cast<std::size_t>(sent);
  }
  return true;
}

std::vector<std::vector<std::uint8_t>> TcpConnection::read_frames() {
  std::vector<std::vector<std::uint8_t>> frames;
  if (fd_ < 0) return frames;
  std::uint8_t buf[16384];
  while (true) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) break;
    rx_.insert(rx_.end(), buf, buf + n);
  }
  std::size_t pos = 0;
  while (rx_.size() - pos >= 4) {
    const std::uint32_t len = (static_cast<std::uint32_t>(rx_[pos]) << 24) |
                              (static_cast<std::uint32_t>(rx_[pos + 1]) << 16) |
                              (static_cast<std::uint32_t>(rx_[pos + 2]) << 8) |
                              static_cast<std::uint32_t>(rx_[pos + 3]);
    if (rx_.size() - pos - 4 < len) break;
    frames.emplace_back(rx_.begin() + static_cast<std::ptrdiff_t>(pos + 4),
                        rx_.begin() + static_cast<std::ptrdiff_t>(pos + 4 + len));
    pos += 4 + len;
  }
  rx_.erase(rx_.begin(), rx_.begin() + static_cast<std::ptrdiff_t>(pos));
  return frames;
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw std::runtime_error("TCP socket() failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa = local_addr(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(fd_, 16) != 0) {
    ::close(fd_);
    throw std::runtime_error("TCP bind/listen failed");
  }
  socklen_t len = sizeof(sa);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len);
  port_ = ntohs(sa.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<TcpConnection> TcpListener::accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  return TcpConnection(fd);
}

}  // namespace jqos::net
