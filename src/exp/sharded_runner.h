// Shard-per-thread scenario execution: partitions a scenario's wide-area
// paths into independent ScenarioShards, runs them on a std::thread pool,
// and merges per-path outcomes and service statistics back into the exact
// structures single-shard callers consume.
//
// Determinism contract (enforced by tests/sharded_scenario_test.cc):
//
//  * The PARTITION is a pure function of the paths and `num_shards` --
//    never of the thread count. JQOS_SIM_THREADS (or num_threads) only
//    decides how many shards execute concurrently; 1 thread and 64 threads
//    produce byte-identical merged results.
//  * The partition's atomic unit is the (DC1, DC2) interaction group: paths
//    sharing both endpoint DCs are cross-coded into the same batches, share
//    the inter-DC link's ordering/jitter processes, and serve as each
//    other's cooperative-recovery peers, so they must stay together. Paths
//    in different groups never exchange causally connected events.
//  * Because every random stream in a shard is derived from stable
//    identities (see scenario.h), the merged result is also independent of
//    `num_shards` itself -- running 45 paths as 1 shard, as one shard per
//    group, or anything between yields identical per-path outcomes and
//    identical summed encoder/recovery totals.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exp/scenario.h"

namespace jqos::exp {

struct ShardedRunParams {
  // Number of shards to pack the interaction groups into.
  //   0 = one shard per (DC1, DC2) group (maximum parallelism).
  //   n = groups are LPT-packed into at most n shards.
  // Part of the scenario's semantics only in that it bounds parallelism;
  // results are identical for every value (see header comment).
  std::size_t num_shards = 0;
  // Worker threads. 0 = JQOS_SIM_THREADS env var if set, else
  // hardware_concurrency. Never affects results.
  unsigned num_threads = 0;
};

// The partition both ShardedRunner and the workload layer's churn runner
// use: groups paths by (DC1, DC2) interaction group in first-appearance
// order, LPT-packs the groups into at most `num_shards` shards (0 = one
// shard per group), and keeps paths in ascending global-index order within
// each shard. A pure function of (paths, num_shards) -- never of thread
// count -- which is what makes merged results thread-count invariant.
std::vector<std::vector<IndexedPath>> plan_shards(
    const std::vector<geo::PathSample>& paths, std::size_t num_shards);

class ShardedRunner {
 public:
  ShardedRunner(std::vector<geo::PathSample> paths, const WanScenarioParams& params,
                const ShardedRunParams& run_params = {});
  ~ShardedRunner();

  ShardedRunner(const ShardedRunner&) = delete;
  ShardedRunner& operator=(const ShardedRunner&) = delete;

  // Builds every shard (on the pool) and runs the workload for `duration`.
  // Shard construction happens on the worker threads too: it is the
  // second-largest cost after the event loop and is just as independent.
  void run(SimDuration duration);

  // Merged view, valid after run(). Paths appear under their original
  // indices, exactly as WanScenario would expose them.
  std::size_t path_count() const { return total_paths_; }
  const PathRuntime& path(std::size_t global_index) const;

  // Summed across all shards' DCs; bit-identical to the monolithic totals.
  services::EncoderStats encoder_totals() const;
  services::RecoveryStatsDc recovery_totals() const;

  // Fault counters merged over all shards. DC crash counts deduplicate by
  // site (replicated DCs crash identically in every owning shard); traffic
  // counters sum, since only the owning shard's replica carries traffic.
  FaultSummary fault_summary() const;

  std::size_t shard_count() const { return plans_.size(); }
  ScenarioShard& shard(std::size_t i) { return *shards_.at(i); }
  unsigned threads_used() const { return threads_used_; }

  // Per-shard and merged simulator event counts (throughput reporting).
  const std::vector<std::uint64_t>& shard_events() const { return shard_events_; }
  std::uint64_t total_events() const;

 private:
  WanScenarioParams params_;
  ShardedRunParams run_params_;
  netsim::EvqBackend backend_;  // Resolved once, on the constructing thread.
  std::vector<std::vector<IndexedPath>> plans_;
  std::vector<std::unique_ptr<ScenarioShard>> shards_;
  std::vector<const PathRuntime*> merged_;  // Indexed by global path index.
  std::vector<std::uint64_t> shard_events_;
  unsigned threads_used_ = 0;
  std::size_t total_paths_ = 0;
};

}  // namespace jqos::exp
