// Fan-in / incast scenario: N synchronized burst senders share one
// finite-bandwidth bottleneck into a single sink — the TCP-incast shape
// (partition/aggregate workers answering at once) that makes shared switch
// buffers overflow and is the motivating workload for AQM + ECN.
//
//   sender_0 ─┐
//   sender_1 ─┼─(fast edge links)─→ switch ═(bottleneck + queue disc)═→ sink
//   ...      ─┘
//
// Each epoch every sender emits a back-to-back burst; the per-epoch drain
// time, the bottleneck's queue/drop/mark counters, and delivery totals are
// the observables. The scenario is transport-free (raw packet bursts, no
// TCP) so it isolates exactly the queue-discipline behavior; it is fully
// deterministic and must fingerprint identically under both event-queue
// backends (pinned by tests/incast_test.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "netsim/network.h"

namespace jqos::exp {

struct IncastParams {
  std::size_t senders = 16;
  std::size_t packets_per_sender = 64;  // Burst length per epoch.
  std::size_t payload_bytes = 1000;
  std::size_t epochs = 4;
  SimDuration epoch_interval = msec(20);
  // Senders start their bursts `sender_stagger` apart, modelling
  // near-but-not-perfectly synchronized responses.
  SimDuration sender_stagger = usec(2);
  SimDuration edge_latency = usec(50);    // Sender -> switch.
  SimDuration bottleneck_latency = msec(1);
  double bottleneck_bps = 100e6;
  bool ecn = true;                        // Senders stamp ECT.
  netsim::QdiscConfig qdisc;              // Discipline on the bottleneck.
  std::uint64_t seed = 1;                 // Feeds RED via the network's qdisc seed.
};

struct IncastResult {
  netsim::LinkStats bottleneck;           // The contended switch -> sink link.
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;            // Arrived at the sink.
  std::uint64_t ce_marked = 0;            // Arrived carrying a CE mark.
  std::vector<double> epoch_drain_ms;     // Last arrival per epoch, from epoch start.
  std::uint64_t events_processed = 0;
  SimTime end_time = 0;
};

class IncastScenario {
 public:
  explicit IncastScenario(const IncastParams& params,
                          std::optional<netsim::EvqBackend> backend = std::nullopt);
  ~IncastScenario();

  IncastScenario(const IncastScenario&) = delete;
  IncastScenario& operator=(const IncastScenario&) = delete;

  // Runs all epochs to quiescence and returns the collected result.
  IncastResult run();

  netsim::Simulator& sim() { return sim_; }

 private:
  struct Switch;
  struct Sink;

  void start_epoch(std::size_t epoch);

  IncastParams params_;
  netsim::Simulator sim_;
  netsim::Network net_;
  std::vector<NodeId> sender_ids_;
  std::unique_ptr<Switch> switch_;
  std::unique_ptr<Sink> sink_;
  IncastResult result_;
};

}  // namespace jqos::exp
