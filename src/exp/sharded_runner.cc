#include "exp/sharded_runner.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

#include "common/parallel.h"

namespace jqos::exp {
namespace {

// Groups path indices by (DC1 name, DC2 name) in order of first appearance.
// This is the finest partition that keeps every causal interaction --
// cross-stream coding, shared inter-DC link ordering, cooperative recovery
// peering -- inside one shard.
std::vector<std::vector<std::size_t>> interaction_groups(
    const std::vector<geo::PathSample>& paths) {
  std::map<std::pair<std::string, std::string>, std::size_t> group_of;
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto key = std::make_pair(paths[i].dc1.name, paths[i].dc2.name);
    auto [it, inserted] = group_of.try_emplace(key, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  return groups;
}

}  // namespace

std::vector<std::vector<IndexedPath>> plan_shards(
    const std::vector<geo::PathSample>& paths, std::size_t num_shards) {
  auto groups = interaction_groups(paths);

  // LPT bin-packing of groups into shards: sort groups by size descending
  // (first-appearance order breaks ties, keeping the plan deterministic),
  // then place each into the currently lightest shard. num_shards == 0
  // means one shard per group.
  const std::size_t shard_count =
      num_shards == 0 ? groups.size() : std::min(num_shards, groups.size());
  std::vector<std::size_t> order(groups.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&groups](std::size_t a, std::size_t b) {
    return groups[a].size() > groups[b].size();
  });

  // Every shard ends up non-empty: shard_count <= groups.size() and LPT
  // always places into a zero-load shard while one exists.
  std::vector<std::vector<IndexedPath>> plans(shard_count);
  std::vector<std::size_t> load(plans.size(), 0);
  std::vector<std::vector<std::size_t>> shard_paths(plans.size());
  for (std::size_t g : order) {
    const std::size_t lightest = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    for (std::size_t p : groups[g]) shard_paths[lightest].push_back(p);
    load[lightest] += groups[g].size();
  }

  // Within a shard, paths keep ascending global-index order: flow ids are
  // handed out in build order, so the relative order of any two same-group
  // paths (the only order that can matter) matches every other composition.
  for (std::size_t s = 0; s < plans.size(); ++s) {
    std::sort(shard_paths[s].begin(), shard_paths[s].end());
    plans[s].reserve(shard_paths[s].size());
    for (std::size_t p : shard_paths[s]) {
      plans[s].push_back(IndexedPath{p, paths[p]});
    }
  }
  return plans;
}

ShardedRunner::ShardedRunner(std::vector<geo::PathSample> paths,
                             const WanScenarioParams& params,
                             const ShardedRunParams& run_params)
    : params_(params),
      run_params_(run_params),
      backend_(netsim::evq_default_backend()),
      total_paths_(paths.size()) {
  if (!params_.faults.empty()) validate_fault_plan(params_.faults, paths);
  plans_ = plan_shards(paths, run_params_.num_shards);
}

ShardedRunner::~ShardedRunner() = default;

void ShardedRunner::run(SimDuration duration) {
  shards_.clear();
  shards_.resize(plans_.size());
  // Report the concurrency that can actually materialize: the pool clamps
  // workers to the shard count, so a 16-core machine running 6 shards used
  // 6 threads, and the bench rows should say so.
  threads_used_ = static_cast<unsigned>(std::min<std::size_t>(
      resolve_sim_threads(run_params_.num_threads), plans_.size()));

  // Build + run each shard; workers write only their own slot. The event
  // queue backend was resolved once in the constructor, so workers never
  // touch process-global backend state.
  parallel_for_indexed(plans_.size(), threads_used_, [this, duration](std::size_t i) {
    shards_[i] = std::make_unique<ScenarioShard>(plans_[i], params_, backend_);
    shards_[i]->run(duration);
  });

  // Merge: per-path results under their global indices, per-shard event
  // counts for throughput reporting.
  merged_.assign(total_paths_, nullptr);
  shard_events_.clear();
  shard_events_.reserve(shards_.size());
  for (const auto& shard : shards_) {
    for (std::size_t p = 0; p < shard->path_count(); ++p) {
      const PathRuntime& rt = shard->path(p);
      merged_.at(rt.global_index) = &rt;
    }
    shard_events_.push_back(shard->sim().events_processed());
  }
}

const PathRuntime& ShardedRunner::path(std::size_t global_index) const {
  if (merged_.empty()) throw std::logic_error("ShardedRunner::path before run()");
  return *merged_.at(global_index);
}

services::EncoderStats ShardedRunner::encoder_totals() const {
  services::EncoderStats total;
  for (const auto& shard : shards_) total += shard->encoder_totals();
  return total;
}

services::RecoveryStatsDc ShardedRunner::recovery_totals() const {
  services::RecoveryStatsDc total;
  for (const auto& shard : shards_) total += shard->recovery_totals();
  return total;
}

FaultSummary ShardedRunner::fault_summary() const {
  FaultSummary total;
  for (const auto& shard : shards_) total += shard->fault_summary();
  return total;
}

std::uint64_t ShardedRunner::total_events() const {
  std::uint64_t total = 0;
  for (std::uint64_t e : shard_events_) total += e;
  return total;
}

}  // namespace jqos::exp
