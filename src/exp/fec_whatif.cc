#include "exp/fec_whatif.h"

#include <algorithm>

#include "common/parallel.h"

namespace jqos::exp {

std::vector<bool> loss_trace(const std::vector<Outcome>& outcomes) {
  std::vector<bool> trace;
  trace.reserve(outcomes.size());
  for (Outcome o : outcomes) {
    if (o == Outcome::kPending) continue;  // Never observed (end of run).
    trace.push_back(o != Outcome::kDirect);
  }
  return trace;
}

namespace {

// Evaluates one block: data packets [start, start+block), FEC packets'
// fates sampled from the packets immediately after the block (wrapping
// traces shorter than needed are truncated by the caller's loop bounds).
struct BlockResult {
  std::size_t data_lost = 0;
  std::size_t fec_survived = 0;
  bool recoverable(std::size_t) const { return data_lost <= fec_survived; }
};

BlockResult eval_block(const std::vector<bool>& trace, std::size_t start, std::size_t block,
                       std::size_t fec_per_block) {
  BlockResult r;
  for (std::size_t i = start; i < start + block && i < trace.size(); ++i) {
    if (trace[i]) ++r.data_lost;
  }
  // FEC packets ride right behind the block on the same path.
  for (std::size_t i = start + block; i < start + block + fec_per_block; ++i) {
    const bool lost = i < trace.size() ? trace[i] : false;
    if (!lost) ++r.fec_survived;
  }
  return r;
}

}  // namespace

double fec_recovery_rate(const std::vector<bool>& trace, std::size_t block,
                         std::size_t fec_per_block) {
  std::size_t lost_total = 0;
  std::size_t recovered_total = 0;
  for (std::size_t start = 0; start + 1 <= trace.size(); start += block) {
    const BlockResult r = eval_block(trace, start, block, fec_per_block);
    lost_total += r.data_lost;
    // An MDS code recovers the whole block iff losses <= surviving FEC
    // symbols; otherwise nothing beyond what arrived.
    if (r.data_lost > 0 && r.data_lost <= r.fec_survived) recovered_total += r.data_lost;
  }
  return lost_total == 0 ? 1.0
                         : static_cast<double>(recovered_total) /
                               static_cast<double>(lost_total);
}

bool has_fec_unrecoverable_episode(const std::vector<bool>& trace, std::size_t block,
                                   std::size_t fec_per_block) {
  for (std::size_t start = 0; start + 1 <= trace.size(); start += block) {
    const BlockResult r = eval_block(trace, start, block, fec_per_block);
    if (r.data_lost > 0 && r.data_lost > r.fec_survived) return true;
  }
  return false;
}

double percent_increase(double crwan_rate, double fec_rate, double cap_percent) {
  if (fec_rate <= 0.0) return crwan_rate > 0.0 ? cap_percent : 0.0;
  const double inc = (crwan_rate - fec_rate) / fec_rate * 100.0;
  return std::clamp(inc, 0.0, cap_percent);
}

std::vector<FecWhatifRow> fec_whatif_sweep(
    const std::vector<std::vector<bool>>& traces,
    const std::vector<std::pair<std::size_t, std::size_t>>& levels,
    unsigned num_threads) {
  std::vector<FecWhatifRow> rows(traces.size());
  parallel_for_indexed(traces.size(), resolve_sim_threads(num_threads),
                       [&](std::size_t i) {
                         FecWhatifRow& row = rows[i];
                         row.rates.reserve(levels.size());
                         for (const auto& [block, fec] : levels) {
                           row.rates.push_back(fec_recovery_rate(traces[i], block, fec));
                         }
                         if (!levels.empty()) {
                           row.last_level_defeated = has_fec_unrecoverable_episode(
                               traces[i], levels.back().first, levels.back().second);
                         }
                       });
  return rows;
}

}  // namespace jqos::exp
