#include "exp/report.h"

#include <cstdio>
#include <sstream>

namespace jqos::exp {

void print_cdf(const std::string& title, const Samples& samples, std::size_t points) {
  std::printf("# CDF: %s (n=%zu)\n", title.c_str(), samples.count());
  for (const auto& p : samples.cdf_points(points)) {
    std::printf("%.3f\t%.3f\n", p.value, p.fraction);
  }
}

void print_ccdf(const std::string& title, const Samples& samples, std::size_t points) {
  std::printf("# CCDF: %s (n=%zu)\n", title.c_str(), samples.count());
  for (const auto& p : samples.cdf_points(points)) {
    std::printf("%.3f\t%.3f\n", p.value, 1.0 - p.fraction);
  }
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

void Table::print(const std::string& title) const {
  std::printf("# TABLE: %s\n", title.c_str());
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(i < widths.size() ? widths[i] : 0),
                  row[i].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

void print_claim(const std::string& experiment, const std::string& paper_claim,
                 const std::string& measured) {
  std::printf("CLAIM\t%s\tpaper:[%s]\tmeasured:[%s]\n", experiment.c_str(),
              paper_claim.c_str(), measured.c_str());
}

void print_fault_summary(const std::string& title, const FaultSummary& s) {
  const bool armed = s.injector.link_downs + s.injector.brownouts +
                         s.injector.node_crashes + s.injector.skipped_unbound >
                     0;
  if (!armed && s.link_fault_drops == 0 && s.dc_fault_dropped == 0 &&
      s.dc_crashes.empty() && s.failovers == 0 && s.reengages == 0) {
    return;  // No plan, no faults: keep legacy output unchanged.
  }
  Table t({"counter", "value"});
  auto row = [&t](const char* name, std::uint64_t v) {
    t.add_row({name, std::to_string(v)});
  };
  row("link_fault_drops", s.link_fault_drops);
  row("dc_fault_dropped", s.dc_fault_dropped);
  row("dc_crashes_total", s.total_dc_crashes());
  for (const auto& [site, n] : s.dc_crashes) {
    t.add_row({"dc_crashes:" + site, std::to_string(n)});
  }
  row("failovers", s.failovers);
  row("reengages", s.reengages);
  row("probes_sent", s.probes_sent);
  row("nacks_suppressed", s.nacks_suppressed);
  row("failover_direct_sent", s.failover_direct_sent);
  row("cloud_suppressed", s.cloud_suppressed);
  row("flushes_suppressed", s.flushes_suppressed);
  row("faults_scheduled_link_down", s.injector.link_downs);
  row("faults_scheduled_brownout", s.injector.brownouts);
  row("faults_scheduled_crash", s.injector.node_crashes);
  row("faults_skipped_unbound", s.injector.skipped_unbound);
  t.print(title);
}

}  // namespace jqos::exp
