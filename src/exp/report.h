// Result-table and CDF-series printers shared by the bench binaries. All
// output goes to stdout in a stable, grep-friendly format: one header line
// per series/table, then rows.
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "exp/scenario.h"

namespace jqos::exp {

// Prints "# <title>" followed by "value<TAB>cdf" rows (n+1 points).
void print_cdf(const std::string& title, const Samples& samples, std::size_t points = 20);

// Prints a CCDF series ("value<TAB>ccdf").
void print_ccdf(const std::string& title, const Samples& samples, std::size_t points = 20);

// Simple fixed-width table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(const std::string& title) const;

  static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// "paper vs measured" one-liner used by EXPERIMENTS.md generation.
void print_claim(const std::string& experiment, const std::string& paper_claim,
                 const std::string& measured);

// Fault-layer counters as a table: one row per counter plus one per crashed
// DC site. Prints nothing when the summary is entirely zero, so scenarios
// without a fault plan keep their existing output byte-identical.
void print_fault_summary(const std::string& title, const FaultSummary& summary);

}  // namespace jqos::exp
