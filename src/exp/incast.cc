#include "exp/incast.h"

#include "common/rng.h"

namespace jqos::exp {

// The fan-in point: rewrites dst to the packet's final destination and
// relays, one hop, onto the bottleneck link.
struct IncastScenario::Switch final : netsim::Node {
  netsim::Network& net;
  NodeId nid;

  explicit Switch(netsim::Network& n) : net(n), nid(n.allocate_id()) { n.attach(*this); }
  NodeId id() const override { return nid; }

  void handle_packet(const PacketPtr& pkt) override {
    auto fwd = std::make_shared<Packet>(*pkt);
    fwd->src = nid;
    fwd->dst = pkt->final_dst;
    net.send(nid, fwd);
  }
};

struct IncastScenario::Sink final : netsim::Node {
  netsim::Simulator& sim;
  NodeId nid;
  IncastResult& result;
  SimTime epoch_start = 0;
  std::size_t epoch = 0;

  Sink(netsim::Simulator& s, netsim::Network& n, IncastResult& r)
      : sim(s), nid(n.allocate_id()), result(r) {
    n.attach(*this);
  }
  NodeId id() const override { return nid; }

  void handle_packet(const PacketPtr& pkt) override {
    ++result.delivered;
    if (pkt->ecn_ce) ++result.ce_marked;
    if (epoch < result.epoch_drain_ms.size()) {
      result.epoch_drain_ms[epoch] = to_ms(sim.now() - epoch_start);
    }
  }
};

IncastScenario::IncastScenario(const IncastParams& params,
                               std::optional<netsim::EvqBackend> backend)
    : params_(params),
      sim_(backend.value_or(netsim::evq_default_backend())),
      net_(sim_, params.qdisc, Rng::derive(params.seed, "incast-qdisc")) {
  switch_ = std::make_unique<Switch>(net_);
  sink_ = std::make_unique<Sink>(sim_, net_, result_);
  result_.epoch_drain_ms.assign(params_.epochs, 0.0);

  sender_ids_.reserve(params_.senders);
  for (std::size_t i = 0; i < params_.senders; ++i) {
    const NodeId src = net_.allocate_id();
    sender_ids_.push_back(src);
    // Fast edge links: no queueing, just a short propagation delay. The
    // only contended resource is the switch's uplink.
    net_.add_link(src, switch_->nid, netsim::make_fixed_latency(params_.edge_latency),
                  netsim::make_no_loss());
  }
  net_.add_link(switch_->nid, sink_->nid,
                netsim::make_fixed_latency(params_.bottleneck_latency),
                netsim::make_no_loss(), params_.bottleneck_bps);
}

IncastScenario::~IncastScenario() = default;

void IncastScenario::start_epoch(std::size_t epoch) {
  sink_->epoch = epoch;
  sink_->epoch_start = sim_.now();
  for (std::size_t i = 0; i < params_.senders; ++i) {
    const NodeId src = sender_ids_[i];
    const FlowId flow = static_cast<FlowId>(i + 1);
    sim_.after(params_.sender_stagger * static_cast<SimDuration>(i), [this, src, flow] {
      // The whole burst enters the fabric back to back, as an aggregate
      // response leaving a server NIC does.
      for (std::size_t p = 0; p < params_.packets_per_sender; ++p) {
        auto pkt = std::make_shared<Packet>();
        pkt->type = PacketType::kData;
        pkt->flow = flow;
        pkt->seq = static_cast<SeqNo>(result_.sent);
        pkt->src = src;
        pkt->dst = switch_->nid;
        pkt->final_dst = sink_->nid;
        pkt->sent_at = sim_.now();
        pkt->ecn_capable = params_.ecn;
        pkt->payload.assign(params_.payload_bytes, 0);
        ++result_.sent;
        net_.send(src, pkt);
      }
    });
  }
}

IncastResult IncastScenario::run() {
  for (std::size_t e = 0; e < params_.epochs; ++e) {
    sim_.at(params_.epoch_interval * static_cast<SimDuration>(e),
            [this, e] { start_epoch(e); });
  }
  sim_.run();
  result_.bottleneck = net_.link(switch_->nid, sink_->nid)->stats();
  result_.events_processed = sim_.events_processed();
  result_.end_time = sim_.now();
  return result_;
}

}  // namespace jqos::exp
