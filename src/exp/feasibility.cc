#include "exp/feasibility.h"

#include "common/parallel.h"
#include "geo/coords.h"

namespace jqos::exp {

endpoint::PathDelays to_path_delays(const geo::PathSample& sample, double delta_median_ms) {
  endpoint::PathDelays d;
  d.y_ms = sample.y_ms;
  d.delta_s_ms = sample.delta_s_ms;
  d.delta_r_ms = sample.delta_r_ms;
  d.x_ms = sample.x_ms;
  d.delta_r_median_ms = delta_median_ms;
  return d;
}

FeasibilityResult run_feasibility(const FeasibilityParams& params) {
  Rng rng(params.seed);
  FeasibilityResult out;
  const unsigned threads = resolve_sim_threads(params.num_threads);

  // --- Fig 7(a)/(b): US-East senders, EU receivers ---
  geo::PathDatasetParams pd;
  pd.sender_region = geo::WorldRegion::kUsEast;
  pd.receiver_region = geo::WorldRegion::kEurope;
  pd.num_paths = params.num_paths;
  auto paths = geo::synthesize_paths(pd, rng);

  // Median receiver<->DC delay across the cohort (the peer round trip the
  // coding formula charges).
  Samples deltas;
  for (const auto& p : paths) deltas.add(p.delta_r_ms);
  const double delta_median = deltas.median();

  // The delay formulas are pure per-path math: compute into index-addressed
  // slots on the pool, fold into Samples in path order afterwards so the
  // result is byte-identical to the sequential loop for any thread count.
  struct PathPoint {
    double internet = 0, fwd = 0, cache = 0, code = 0;
    double cache_rec = 0, code_rec = 0;
  };
  std::vector<PathPoint> points(paths.size());
  parallel_for_indexed(paths.size(), threads, [&](std::size_t i) {
    const auto& p = paths[i];
    const auto d = to_path_delays(p, delta_median);
    PathPoint& pt = points[i];
    pt.internet = endpoint::expected_delay_ms(ServiceType::kNone, d);
    pt.fwd = endpoint::expected_delay_ms(ServiceType::kForward, d);
    pt.cache = endpoint::expected_delay_ms(ServiceType::kCache, d);
    pt.code = endpoint::expected_delay_ms(ServiceType::kCode, d);
    // Recovery delay relative to the direct-path RTT (Fig 7(b)): the extra
    // time beyond normal direct delivery, over RTT = 2y.
    const double rtt = 2.0 * p.y_ms;
    pt.cache_rec = (pt.cache - pt.internet) / rtt;
    pt.code_rec = (pt.code - pt.internet) / rtt;
  });
  for (const PathPoint& pt : points) {
    out.internet_ms.add(pt.internet);
    out.forwarding_ms.add(pt.fwd);
    out.caching_ms.add(pt.cache);
    out.coding_ms.add(pt.code);
    out.caching_recovery_over_rtt.add(pt.cache_rec);
    out.coding_recovery_over_rtt.add(pt.code_rec);
  }

  // --- Fig 7(c): EU hosts' delta to the nearest DC (2019 catalog) ---
  Rng host_rng = rng.fork("eu-hosts");
  auto eu_hosts =
      geo::synthesize_hosts(geo::WorldRegion::kEurope, params.num_eu_hosts, host_rng);
  const auto sites_now = geo::cloud_sites_as_of(2019);
  std::vector<double> eu_delta(eu_hosts.size());
  parallel_for_indexed(eu_hosts.size(), threads, [&](std::size_t i) {
    const auto& h = eu_hosts[i];
    const auto& site = geo::nearest_site(sites_now, h.location);
    const double km = geo::haversine_km(h.location, site.location);
    eu_delta[i] = geo::propagation_ms(km, geo::kAccessInflation) + h.last_mile_ms;
  });
  for (double d : eu_delta) out.delta_eu_ms.add(d);

  // --- Fig 7(d): northern-EU hosts under historical DC catalogs ---
  Rng neu_rng = rng.fork("neu-hosts");
  auto neu_hosts = geo::synthesize_hosts(geo::WorldRegion::kNorthEurope,
                                         params.num_north_eu_hosts, neu_rng);
  for (int year : {2007, 2014, 2019}) {
    const auto sites = geo::cloud_sites_as_of(year);
    std::vector<double> neu_delta(neu_hosts.size());
    parallel_for_indexed(neu_hosts.size(), threads, [&](std::size_t i) {
      const auto& h = neu_hosts[i];
      const auto& site = geo::nearest_site(sites, h.location);
      const double km = geo::haversine_km(h.location, site.location);
      neu_delta[i] = geo::propagation_ms(km, geo::kAccessInflation) + h.last_mile_ms;
    });
    Samples& bucket = year == 2007   ? out.delta_neu_2007_ms
                      : year == 2014 ? out.delta_neu_2014_ms
                                     : out.delta_neu_now_ms;
    for (double d : neu_delta) bucket.add(d);
  }
  return out;
}

}  // namespace jqos::exp
