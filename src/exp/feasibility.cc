#include "exp/feasibility.h"

#include "geo/coords.h"

namespace jqos::exp {

endpoint::PathDelays to_path_delays(const geo::PathSample& sample, double delta_median_ms) {
  endpoint::PathDelays d;
  d.y_ms = sample.y_ms;
  d.delta_s_ms = sample.delta_s_ms;
  d.delta_r_ms = sample.delta_r_ms;
  d.x_ms = sample.x_ms;
  d.delta_r_median_ms = delta_median_ms;
  return d;
}

FeasibilityResult run_feasibility(const FeasibilityParams& params) {
  Rng rng(params.seed);
  FeasibilityResult out;

  // --- Fig 7(a)/(b): US-East senders, EU receivers ---
  geo::PathDatasetParams pd;
  pd.sender_region = geo::WorldRegion::kUsEast;
  pd.receiver_region = geo::WorldRegion::kEurope;
  pd.num_paths = params.num_paths;
  auto paths = geo::synthesize_paths(pd, rng);

  // Median receiver<->DC delay across the cohort (the peer round trip the
  // coding formula charges).
  Samples deltas;
  for (const auto& p : paths) deltas.add(p.delta_r_ms);
  const double delta_median = deltas.median();

  for (const auto& p : paths) {
    const auto d = to_path_delays(p, delta_median);
    const double internet = endpoint::expected_delay_ms(ServiceType::kNone, d);
    const double fwd = endpoint::expected_delay_ms(ServiceType::kForward, d);
    const double cache = endpoint::expected_delay_ms(ServiceType::kCache, d);
    const double code = endpoint::expected_delay_ms(ServiceType::kCode, d);
    out.internet_ms.add(internet);
    out.forwarding_ms.add(fwd);
    out.caching_ms.add(cache);
    out.coding_ms.add(code);
    // Recovery delay relative to the direct-path RTT (Fig 7(b)): the extra
    // time beyond normal direct delivery, over RTT = 2y.
    const double rtt = 2.0 * p.y_ms;
    out.caching_recovery_over_rtt.add((cache - internet) / rtt);
    out.coding_recovery_over_rtt.add((code - internet) / rtt);
  }

  // --- Fig 7(c): EU hosts' delta to the nearest DC (2019 catalog) ---
  Rng host_rng = rng.fork("eu-hosts");
  auto eu_hosts =
      geo::synthesize_hosts(geo::WorldRegion::kEurope, params.num_eu_hosts, host_rng);
  const auto sites_now = geo::cloud_sites_as_of(2019);
  for (const auto& h : eu_hosts) {
    const auto& site = geo::nearest_site(sites_now, h.location);
    const double km = geo::haversine_km(h.location, site.location);
    out.delta_eu_ms.add(geo::propagation_ms(km, geo::kAccessInflation) + h.last_mile_ms);
  }

  // --- Fig 7(d): northern-EU hosts under historical DC catalogs ---
  Rng neu_rng = rng.fork("neu-hosts");
  auto neu_hosts = geo::synthesize_hosts(geo::WorldRegion::kNorthEurope,
                                         params.num_north_eu_hosts, neu_rng);
  for (int year : {2007, 2014, 2019}) {
    const auto sites = geo::cloud_sites_as_of(year);
    for (const auto& h : neu_hosts) {
      const auto& site = geo::nearest_site(sites, h.location);
      const double km = geo::haversine_km(h.location, site.location);
      const double delta =
          geo::propagation_ms(km, geo::kAccessInflation) + h.last_mile_ms;
      if (year == 2007) {
        out.delta_neu_2007_ms.add(delta);
      } else if (year == 2014) {
        out.delta_neu_2014_ms.add(delta);
      } else {
        out.delta_neu_now_ms.add(delta);
      }
    }
  }
  return out;
}

}  // namespace jqos::exp
