// The Section 6.1 feasibility study (Figure 7), computed analytically from
// the synthetic path dataset exactly as the paper computes it from ping
// measurements: one-way segment delays plugged into the per-service delay
// formulas.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "endpoint/service_selector.h"
#include "geo/path_dataset.h"

namespace jqos::exp {

struct FeasibilityParams {
  std::size_t num_paths = 6250;  // The paper's US-East -> EU path count.
  std::size_t num_eu_hosts = 1000;
  std::size_t num_north_eu_hosts = 400;
  std::uint64_t seed = 7;
  // Worker threads for the per-path/per-host delay formulas (dataset
  // synthesis stays sequential -- it is one RNG stream). Results are
  // byte-identical for every value: workers fill index-addressed slots
  // that are folded in order on the calling thread. 0 = JQOS_SIM_THREADS
  // or hardware_concurrency.
  unsigned num_threads = 0;
};

struct FeasibilityResult {
  // Fig 7(a): end-to-end packet delivery latency per service (ms, one way).
  Samples internet_ms;
  Samples forwarding_ms;
  Samples caching_ms;
  Samples coding_ms;
  // Fig 7(b): recovery delay as a fraction of the direct-path RTT.
  Samples caching_recovery_over_rtt;
  Samples coding_recovery_over_rtt;
  // Fig 7(c): end-host -> nearest-DC latency for EU hosts (ms, one way).
  Samples delta_eu_ms;
  // Fig 7(d): northern-EU delta under the 2007 / 2014 / 2018 DC catalogs.
  Samples delta_neu_2007_ms;
  Samples delta_neu_2014_ms;
  Samples delta_neu_now_ms;
};

FeasibilityResult run_feasibility(const FeasibilityParams& params);

// The PathDelays for one sample (shared with the service selector).
endpoint::PathDelays to_path_delays(const geo::PathSample& sample, double delta_median_ms);

}  // namespace jqos::exp
