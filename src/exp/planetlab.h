// The Section 6.2 CR-WAN deployment reproduction (Figure 8): 45 wide-area
// paths across four continents running the ON/OFF CBR workload through the
// full simulated service stack, plus the derived analyses -- loss-episode
// classification, the FEC what-if comparison, regional recovery times, and
// the 1-vs-2 cross-coded-packet ablation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/scenario.h"
#include "exp/sharded_runner.h"

namespace jqos::exp {

struct PlanetlabConfig {
  std::size_t num_paths = 45;
  // Compressed timescales preserving the paper's ON/OFF structure: the
  // defaults give each path several ON intervals in a modest simulated span.
  SimDuration duration = minutes(40);
  transport::CbrParams cbr{.on_duration = minutes(2),
                           .mean_off = minutes(3),
                           .packets_per_second = 20.0,
                           .payload_bytes = 512};
  services::CodingParams coding{.k = 6, .cross_coded = 2, .in_block = 5, .in_coded = 1,
                                .queue_timeout = msec(300)};
  DirectPathParams direct;
  std::uint64_t seed = 42;
  // Sharded execution (see sharded_runner.h). Neither value changes the
  // results -- num_threads never, num_shards by the runner's composition-
  // invariance contract; they only trade wall-clock for cores.
  std::size_t num_shards = 0;   // 0 = one shard per (DC1, DC2) group.
  unsigned num_threads = 0;     // 0 = JQOS_SIM_THREADS or hardware_concurrency.
};

// Loss-episode classification (Figure 8(b)).
struct EpisodeMix {
  std::uint64_t random_episodes = 0;   // 1 packet
  std::uint64_t multi_episodes = 0;    // 2-14 packets
  std::uint64_t outage_episodes = 0;   // > 14 packets
  std::uint64_t random_packets = 0;
  std::uint64_t multi_packets = 0;
  std::uint64_t outage_packets = 0;

  // Fractions of the total lost packets contributed by each class.
  double random_fraction() const;
  double multi_fraction() const;
  double outage_fraction() const;
};

EpisodeMix classify_episodes(const std::vector<Outcome>& outcomes);

struct PlanetlabPathResult {
  std::string label;
  double rtt_ms = 0.0;
  double loss_rate = 0.0;
  double recovery_success = 0.0;  // Fraction of lost packets recovered <= 1 RTT.
  EpisodeMix episodes;
  Samples recovery_over_rtt;
  Samples recovery_ms;
  std::vector<bool> trace;  // Direct-path loss trace for the FEC what-if.
};

struct PlanetlabResult {
  std::vector<PlanetlabPathResult> paths;
  double overall_recovery = 0.0;       // Lost packets recovered, all paths.
  double overall_loss_rate = 0.0;
  Samples per_path_recovery;           // For the Fig 8(a) CCDF.
  Samples recovery_over_rtt_all;       // Fig 8(d) aggregate.
  std::map<std::string, Samples> recovery_over_rtt_by_region;  // Fig 8(d) series.
  services::EncoderStats encoder;
  services::RecoveryStatsDc recovery;
  // Execution shape of the run that produced this result.
  std::size_t shards_used = 0;
  unsigned threads_used = 0;
  std::uint64_t events_processed = 0;  // Summed across shards.
};

PlanetlabResult run_planetlab(const PlanetlabConfig& config);

// Runs the deployment twice (cross_coded = 2 vs 1) and returns the per-path
// percentage increase in recovery rate (Figure 8(e)).
Samples run_straggler_ablation(PlanetlabConfig config);

}  // namespace jqos::exp
