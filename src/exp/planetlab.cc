#include "exp/planetlab.h"

#include <algorithm>

#include "exp/fec_whatif.h"

namespace jqos::exp {

double EpisodeMix::random_fraction() const {
  const std::uint64_t total = random_packets + multi_packets + outage_packets;
  return total == 0 ? 0.0 : static_cast<double>(random_packets) / static_cast<double>(total);
}

double EpisodeMix::multi_fraction() const {
  const std::uint64_t total = random_packets + multi_packets + outage_packets;
  return total == 0 ? 0.0 : static_cast<double>(multi_packets) / static_cast<double>(total);
}

double EpisodeMix::outage_fraction() const {
  const std::uint64_t total = random_packets + multi_packets + outage_packets;
  return total == 0 ? 0.0 : static_cast<double>(outage_packets) / static_cast<double>(total);
}

EpisodeMix classify_episodes(const std::vector<Outcome>& outcomes) {
  EpisodeMix mix;
  std::size_t run = 0;
  auto close_run = [&mix](std::size_t len) {
    if (len == 0) return;
    if (len == 1) {
      ++mix.random_episodes;
      mix.random_packets += len;
    } else if (len <= 14) {
      ++mix.multi_episodes;
      mix.multi_packets += len;
    } else {
      ++mix.outage_episodes;
      mix.outage_packets += len;
    }
  };
  for (Outcome o : outcomes) {
    if (o == Outcome::kPending) continue;
    if (o == Outcome::kDirect) {
      close_run(run);
      run = 0;
    } else {
      ++run;
    }
  }
  close_run(run);
  return mix;
}

PlanetlabResult run_planetlab(const PlanetlabConfig& config) {
  Rng rng(config.seed);
  auto samples = geo::planetlab_paths(config.num_paths, rng);

  WanScenarioParams params;
  params.service = ServiceType::kCode;
  params.coding = config.coding;
  params.direct = config.direct;
  params.cbr = config.cbr;
  params.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;

  ShardedRunParams run_params;
  run_params.num_shards = config.num_shards;
  run_params.num_threads = config.num_threads;
  ShardedRunner scenario(std::move(samples), params, run_params);
  scenario.run(config.duration);

  PlanetlabResult result;
  result.shards_used = scenario.shard_count();
  result.threads_used = scenario.threads_used();
  result.events_processed = scenario.total_events();
  std::uint64_t lost_total = 0;
  std::uint64_t recovered_total = 0;
  std::uint64_t offered_total = 0;
  for (std::size_t i = 0; i < scenario.path_count(); ++i) {
    const PathRuntime& rt = scenario.path(i);
    PlanetlabPathResult pr;
    pr.label = rt.label;
    pr.rtt_ms = rt.rtt_ms;
    pr.loss_rate = rt.loss_rate();
    pr.recovery_success = rt.recovery_success();
    pr.episodes = classify_episodes(rt.outcome);
    pr.recovery_over_rtt = rt.recovery_over_rtt;
    pr.recovery_ms = rt.recovery_ms;
    pr.trace = loss_trace(rt.outcome);

    recovered_total += rt.recovered;
    lost_total += rt.direct_losses();
    offered_total += rt.delivered_direct + rt.direct_losses();

    result.per_path_recovery.add(pr.recovery_success * 100.0);
    for (double v : rt.recovery_over_rtt.values()) {
      result.recovery_over_rtt_all.add(v);
      result.recovery_over_rtt_by_region[rt.label].add(v);
    }
    result.paths.push_back(std::move(pr));
  }
  result.overall_recovery =
      lost_total == 0 ? 1.0
                      : static_cast<double>(recovered_total) / static_cast<double>(lost_total);
  result.overall_loss_rate =
      offered_total == 0
          ? 0.0
          : static_cast<double>(lost_total) / static_cast<double>(offered_total);
  result.encoder = scenario.encoder_totals();
  result.recovery = scenario.recovery_totals();
  return result;
}

Samples run_straggler_ablation(PlanetlabConfig config) {
  PlanetlabConfig one = config;
  one.coding.cross_coded = 1;
  PlanetlabConfig two = config;
  two.coding.cross_coded = 2;

  const PlanetlabResult r1 = run_planetlab(one);
  const PlanetlabResult r2 = run_planetlab(two);

  Samples increase;
  const std::size_t n = std::min(r1.paths.size(), r2.paths.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double base = r1.paths[i].recovery_success;
    const double improved = r2.paths[i].recovery_success;
    increase.add(percent_increase(improved, base, 100.0));
  }
  return increase;
}

}  // namespace jqos::exp
