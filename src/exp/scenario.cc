#include "exp/scenario.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/parallel.h"
#include "netsim/latency_model.h"

namespace jqos::exp {
namespace {

// Stream-id namespaces under the scenario seed. Path streams use the global
// path index directly; named streams use label hashing (Rng::derive on a
// string_view), which cannot collide with small integer ids in practice.
constexpr std::uint64_t kPathStreamBase = 0x70617468u;  // "path"

std::uint64_t path_seed(std::uint64_t scenario_seed, std::size_t global_index) {
  return Rng::derive(scenario_seed, kPathStreamBase + global_index);
}

}  // namespace

std::uint64_t FaultSummary::total_dc_crashes() const {
  std::uint64_t total = 0;
  for (const auto& [site, n] : dc_crashes) total += n;
  return total;
}

FaultSummary& FaultSummary::operator+=(const FaultSummary& other) {
  link_fault_drops += other.link_fault_drops;
  dc_fault_dropped += other.dc_fault_dropped;
  for (const auto& [site, n] : other.dc_crashes) {
    auto& mine = dc_crashes[site];
    mine = std::max(mine, n);
  }
  failovers += other.failovers;
  reengages += other.reengages;
  probes_sent += other.probes_sent;
  nacks_suppressed += other.nacks_suppressed;
  failover_direct_sent += other.failover_direct_sent;
  cloud_suppressed += other.cloud_suppressed;
  flushes_suppressed += other.flushes_suppressed;
  injector.link_downs += other.injector.link_downs;
  injector.brownouts += other.injector.brownouts;
  injector.node_crashes += other.injector.node_crashes;
  injector.skipped_unbound += other.injector.skipped_unbound;
  return *this;
}

void validate_fault_plan(const netsim::FaultPlan& plan,
                         const std::vector<geo::PathSample>& paths) {
  std::set<std::string> sites;
  std::set<std::pair<std::string, std::string>> groups;  // Unordered site pairs.
  for (const auto& p : paths) {
    sites.insert(p.dc1.name);
    sites.insert(p.dc2.name);
    groups.insert(std::minmax(p.dc1.name, p.dc2.name));
  }
  for (const netsim::FaultSpec& spec : plan.specs()) {
    const std::string& t = spec.target;
    if (t.rfind("dc:", 0) == 0) {
      if (sites.count(t.substr(3)) == 0) {
        throw std::invalid_argument("fault plan: unknown DC target '" + t + "'");
      }
    } else if (t.rfind("link:", 0) == 0) {
      const std::string pair = t.substr(5);
      const auto sep = pair.find('>');
      if (sep == std::string::npos) {
        throw std::invalid_argument("fault plan: malformed link target '" + t +
                                    "' (want link:<A>><B>)");
      }
      const std::string a = pair.substr(0, sep);
      const std::string b = pair.substr(sep + 1);
      if (groups.count(std::minmax(a, b)) == 0) {
        // The link either does not exist or spans two interaction groups:
        // faulting it could not be replicated consistently across shards.
        throw std::invalid_argument(
            "fault plan: link target '" + t +
            "' is not inside a single (DC1, DC2) interaction group");
      }
    } else if (t.rfind("direct:", 0) == 0) {
      std::size_t idx = 0;
      try {
        idx = std::stoul(t.substr(7));
      } catch (const std::exception&) {
        throw std::invalid_argument("fault plan: malformed direct target '" + t + "'");
      }
      if (idx >= paths.size()) {
        throw std::invalid_argument("fault plan: direct target '" + t +
                                    "' exceeds path count");
      }
    } else {
      throw std::invalid_argument("fault plan: unknown target namespace in '" + t + "'");
    }
  }
}

ScenarioShard::ScenarioShard(std::vector<IndexedPath> paths, const WanScenarioParams& params,
                             netsim::EvqBackend backend)
    : params_(params),
      sim_(backend),
      net_(sim_, params.qdisc, Rng::derive(params.seed, "qdisc")),
      injector_(sim_),
      rng_(params.seed),
      registry_(std::make_shared<services::FlowRegistry>()),
      sessions_(registry_) {
  // Lane planning precedes all construction: configure_lanes refuses a
  // populated simulator, and build_* pin every entity's events to its lane
  // via LaneScope. More lanes than paths would leave empty lanes spinning
  // at every barrier, so clamp; the env knob only applies when the params
  // leave lanes at the 0 default.
  std::size_t lanes = params_.lanes != 0 ? params_.lanes : resolve_sim_lanes();
  lanes = std::min(lanes, paths.size());
  if (lanes > 0) {
    lanes_used_ = lanes;
    sim_.configure_lanes(1 + lanes, resolve_sim_threads(params_.lane_threads));
  }
  // One packet pool per lane (a single pool when lanes are off) so no two
  // lanes ever contend on one freelist; hot returns are same-lane and the
  // occasional cross-lane return takes the owner's (uncontended) mutex.
  pools_.reserve(1 + lanes_used_);
  for (std::size_t i = 0; i < 1 + lanes_used_; ++i) {
    pools_.push_back(std::make_unique<PacketPool>());
  }
  {
    // Hub lane: DCs, services, and inter-DC links all live in lane 0.
    const netsim::Simulator::LaneScope hub(sim_, 0);
    build_overlay(paths);
  }
  for (std::size_t i = 0; i < paths.size(); ++i) {
    // Endpoint lane: the path's sender, receiver, app, and direct link.
    const netsim::Simulator::LaneScope scope(sim_, lane_of_path(i));
    build_path(std::move(paths[i]));
  }
  // Arm the fault schedule once the whole shard topology is bound; plan
  // targets living in other shards are skipped (counted skipped_unbound).
  // The injector scopes each fault into its target's bound lane itself.
  if (!params_.faults.empty()) injector_.arm(params_.faults);
}

ScenarioShard::~ScenarioShard() = default;

void ScenarioShard::build_overlay(const std::vector<IndexedPath>& paths) {
  // Collect the distinct cloud sites the shard's paths touch. The overlay
  // keys its link streams by site NAME (see OverlayNetwork), so building it
  // from this subset leaves every link's random sequence unchanged relative
  // to the monolithic run.
  std::set<std::string> names;
  std::vector<geo::CloudSite> sites;
  for (const auto& p : paths) {
    for (const geo::CloudSite* site : {&p.sample.dc1, &p.sample.dc2}) {
      if (names.insert(site->name).second) sites.push_back(*site);
    }
  }
  overlay_ = std::make_unique<overlay::OverlayNetwork>(net_, sites, params_.overlay, rng_);

  // Install the full service stack on every DC. Forwarding runs first (it
  // claims in-transit packets), then the local services.
  for (std::size_t i = 0; i < overlay_->dc_count(); ++i) {
    overlay::DataCenter& dc = overlay_->dc(i);
    dc.set_pool(pools_[0].get());  // DCs and services live in the hub lane.
    auto fwd = std::make_shared<services::ForwardingService>();
    forwarders_.push_back(fwd);
    dc.install(fwd);
    dc.install(std::make_shared<services::CachingService>());
    auto encoder =
        std::make_shared<services::CodingEncoderService>(dc, params_.coding, registry_);
    encoders_.push_back(encoder);
    dc.install(encoder);
    auto recovery =
        std::make_shared<services::RecoveryService>(dc, params_.recovery, registry_);
    recoverers_.push_back(recovery);
    dc.install(recovery);
  }

  // Inter-DC links transmit from the hub lane; their CE-mark copies draw
  // from the hub pool.
  for (std::size_t i = 0; i < overlay_->dc_count(); ++i) {
    for (std::size_t j = 0; j < overlay_->dc_count(); ++j) {
      if (i == j) continue;
      netsim::Link* l = net_.link(overlay_->dc(i).id(), overlay_->dc(j).id());
      if (l != nullptr) l->set_pool(pools_[0].get());
    }
  }

  if (params_.faults.empty()) return;
  // Bind the plan's symbolic overlay targets. Only done for non-empty plans
  // so the default path stays byte-for-byte untouched.
  for (std::size_t i = 0; i < overlay_->dc_count(); ++i) {
    overlay::DataCenter& dc = overlay_->dc(i);
    injector_.bind_node("dc:" + dc.name(), &dc);
    for (std::size_t j = 0; j < overlay_->dc_count(); ++j) {
      if (i == j) continue;
      overlay::DataCenter& peer = overlay_->dc(j);
      netsim::Link* l = net_.link(dc.id(), peer.id());
      if (l != nullptr) {
        injector_.bind_link("link:" + dc.name() + ">" + peer.name(), l);
      }
    }
  }
  // Let encoders see peer-DC liveness: a flush toward a crashed DC2 is
  // suppressed and retried with backoff instead of feeding a black hole.
  overlay::OverlayNetwork* ov = overlay_.get();
  for (auto& enc : encoders_) {
    enc->set_peer_health([ov](NodeId dc2) {
      for (std::size_t i = 0; i < ov->dc_count(); ++i) {
        if (ov->dc(i).id() == dc2) return !ov->dc(i).down();
      }
      return true;  // Not a DC we know; assume reachable.
    });
  }
}

void ScenarioShard::build_path(IndexedPath path) {
  geo::PathSample sample = std::move(path.sample);
  // This path's endpoint lane (0 when lanes are off): paths_ grows in build
  // order, so the path under construction has local index paths_.size().
  const std::size_t lane = lane_of_path(paths_.size());
  // Every stochastic choice this path makes -- severity, loss processes,
  // jitter, access links, receiver straggler behavior, workload skew --
  // draws from streams derived from (scenario seed, GLOBAL path index).
  // Nothing is drawn from shard-shared state, so the path's entire random
  // future is fixed before we know which shard (or thread) runs it.
  const std::uint64_t pseed = path_seed(params_.seed, path.global_index);
  Rng path_rng(pseed);

  auto rt = std::make_unique<PathRuntime>();
  rt->path = sample;
  rt->label = geo::region_pair_label(sample);
  rt->global_index = path.global_index;
  rt->rtt_ms = 2.0 * sample.y_ms;
  rt->give_up_rtts = params_.give_up_rtts;
  rt->flow = next_flow_++;
  rt->dc1 = overlay_->dc_by_site(sample.dc1.name);
  rt->dc2 = overlay_->dc_by_site(sample.dc2.name);

  // This path's endpoint entities allocate from its lane's pool.
  PacketPool* lane_pool = pools_[lane].get();

  // --- endpoints ---
  rt->sender = std::make_unique<endpoint::Sender>(net_);
  rt->sender->set_pool(lane_pool);

  endpoint::ReceiverConfig rc;
  rc.dc2 = rt->dc2->id();
  rc.recovery_service =
      params_.service == ServiceType::kCache ? ServiceType::kCache : ServiceType::kCode;
  rc.rtt_estimate = msec_f(rt->rtt_ms);
  rc.use_markov = params_.use_markov;
  // Track holes longer than the success criterion so late recoveries are
  // observed and classified (the paper's rule -- "any packet that takes
  // longer than one RTT to recover is a lost packet" -- is applied at
  // accounting time below, not by aborting recovery).
  rc.recovery_give_up =
      std::max<SimDuration>(msec(600), 3 * msec_f(rt->rtt_ms));
  // Wide-area testbed hosts are sometimes slow to answer cooperative
  // requests (the straggler problem, Section 4.4).
  rc.coop_slow_prob = params_.coop_slow_prob;
  rc.buffer_packets = params_.receiver_buffer_packets;
  rc.record_delay_samples = params_.record_delay_samples;
  rc.rng_seed = Rng::derive(pseed, "receiver-coop");
  rc.failover = params_.failover;
  // Path-switching flows have no direct copies: overlay death shows up as
  // outright data silence, so that detector is implied.
  if (!params_.send_direct) rc.failover.overlay_carries_data = true;
  PathRuntime* rt_raw = rt.get();
  rt->receiver = std::make_unique<endpoint::Receiver>(
      net_, rc, [rt_raw](const endpoint::DeliveryRecord& rec, const PacketPtr&) {
        if (rec.seq >= rt_raw->outcome.size()) rt_raw->outcome.resize(rec.seq + 1);
        if (rec.late_direct) {
          // The direct copy arrived after all: not a path loss.
          if (rt_raw->outcome[rec.seq] == Outcome::kRecovered) {
            rt_raw->outcome[rec.seq] = Outcome::kDirect;
            --rt_raw->recovered;
            ++rt_raw->delivered_direct;
          }
          return;
        }
        if (rec.lost) {
          rt_raw->outcome[rec.seq] = Outcome::kLost;
          ++rt_raw->lost;
        } else if (rec.recovered) {
          double ms = 0.0;
          if (rec.detected_missing_at > 0) {
            ms = to_ms(rec.delivered_at - rec.detected_missing_at);
            rt_raw->recovery_ms.add(ms);
            rt_raw->recovery_over_rtt.add(ms / rt_raw->rtt_ms);
          }
          // Paper's success criterion: recovery beyond one direct-path RTT
          // counts as a loss.
          if (ms <= rt_raw->give_up_rtts * rt_raw->rtt_ms) {
            rt_raw->outcome[rec.seq] = Outcome::kRecovered;
            ++rt_raw->recovered;
          } else {
            rt_raw->outcome[rec.seq] = Outcome::kLost;
            ++rt_raw->lost;
          }
        } else {
          rt_raw->outcome[rec.seq] = Outcome::kDirect;
          ++rt_raw->delivered_direct;
        }
      });
  rt->receiver->set_pool(lane_pool);

  if (params_.failover.enabled) {
    // Overlay up/down notifications reach the sender over a control channel
    // modeled as half the path RTT (receiver -> sender one-way).
    endpoint::Sender* snd = rt->sender.get();
    netsim::Simulator* simp = &sim_;
    const SimDuration ctrl = msec_f(rt->rtt_ms / 2.0);
    rt->receiver->set_overlay_handler([snd, simp, ctrl, rt_raw](bool up, SimTime at) {
      rt_raw->failover_events.push_back(FailoverEvent{at, up});
      simp->after(ctrl, [snd, up] { snd->set_overlay_down(!up); });
    });
  }

  // --- links ---
  // Direct Internet path with the configured loss mix, scaled by a
  // per-path severity factor (paths span orders of magnitude in loss rate).
  Rng loss_rng = path_rng.fork("direct-loss");
  const double severity =
      params_.direct.path_severity_sigma > 0.0
          ? loss_rng.lognormal(0.0, params_.direct.path_severity_sigma)
          : 1.0;
  netsim::LossModelPtr loss = netsim::make_bernoulli_loss(
      std::min(0.05, params_.direct.bernoulli_loss * severity), loss_rng.fork("bern"));
  if (params_.direct.enable_bursts) {
    // Compose: Gilbert-Elliott bursts on top of the random-loss floor.
    struct Composite final : netsim::LossModel {
      netsim::LossModelPtr a, b;
      Composite(netsim::LossModelPtr x, netsim::LossModelPtr y)
          : a(std::move(x)), b(std::move(y)) {}
      bool should_drop(SimTime now) override {
        const bool da = a->should_drop(now);
        const bool db = b->should_drop(now);
        return da || db;
      }
    };
    netsim::GilbertElliottParams ge = params_.direct.gilbert;
    ge.p_good_to_bad = std::min(0.02, ge.p_good_to_bad * severity);
    loss = std::make_unique<Composite>(std::move(loss),
                                       netsim::make_gilbert_elliott(ge, loss_rng.fork("ge")));
  }
  if (path_rng.fork("outage-sel").bernoulli(params_.direct.outage_path_fraction)) {
    loss = netsim::make_outage_over(std::move(loss), params_.direct.outage,
                                    loss_rng.fork("outage"));
  }
  netsim::JitterParams jp;
  jp.base = msec_f(sample.y_ms);
  jp.jitter_sigma = params_.direct.jitter_sigma;
  jp.jitter_scale_ms = params_.direct.jitter_scale_ms;
  jp.spike_prob = params_.direct.spike_prob;
  netsim::Link& direct_link =
      net_.add_link(rt->sender->id(), rt->receiver->id(),
                    netsim::make_jitter_latency(jp, path_rng.fork("direct-lat")),
                    std::move(loss));
  direct_link.set_pool(lane_pool);
  if (!params_.faults.empty()) {
    injector_.bind_link("direct:" + std::to_string(rt->global_index), &direct_link, lane);
  }

  // Access links to the nearby DCs, drawn from path-keyed streams so attach
  // order across paths cannot shift them.
  Rng access_s = path_rng.fork("access-s");
  Rng access_r = path_rng.fork("access-r");
  overlay_->attach_host(rt->sender->id(), *rt->dc1, msec_f(sample.delta_s_ms), access_s);
  overlay_->attach_host(rt->receiver->id(), *rt->dc2, msec_f(sample.delta_r_ms), access_r);

  // Access-link pools follow the transmitting side: host->DC links send
  // from this path's lane, DC->host links send from the hub lane.
  const auto set_link_pool = [this](NodeId from, NodeId to, PacketPool* pool) {
    netsim::Link* l = net_.link(from, to);
    if (l != nullptr) l->set_pool(pool);
  };
  set_link_pool(rt->sender->id(), rt->dc1->id(), lane_pool);
  set_link_pool(rt->dc1->id(), rt->sender->id(), pools_[0].get());
  set_link_pool(rt->receiver->id(), rt->dc2->id(), lane_pool);
  set_link_pool(rt->dc2->id(), rt->receiver->id(), pools_[0].get());

  // Lane mode: the four access links are exactly the edges where this
  // path's lane meets the hub lane, so their deliveries go through declared
  // channels (buffered during windows, merged canonically at barriers).
  // Channel keys derive from the GLOBAL path index -- stable identities, so
  // the canonical merge order is independent of shard layout. min_delay is
  // the link's base latency: a true floor, since jitter, brownout penalties,
  // and the preserve_order clamp only ever add delay. The direct link needs
  // no channel -- both of its ends live in this path's lane.
  if (lanes_used_ > 0) {
    const auto wire = [this](NodeId from, NodeId to, std::uint64_t key,
                             std::size_t target) {
      netsim::Link* l = net_.link(from, to);
      l->set_lane_channel(&sim_.make_channel(key, target, l->base_latency()));
    };
    const std::uint64_t base = static_cast<std::uint64_t>(rt->global_index) << 3;
    wire(rt->sender->id(), rt->dc1->id(), base | 0, 0);
    wire(rt->dc1->id(), rt->sender->id(), base | 1, lane);
    wire(rt->receiver->id(), rt->dc2->id(), base | 2, 0);
    wire(rt->dc2->id(), rt->receiver->id(), base | 3, lane);
  }

  // Forwarding-service routing: packets for this receiver entering DC1 ride
  // the inter-DC path to DC2, which has the access link to the receiver.
  for (std::size_t i = 0; i < overlay_->dc_count(); ++i) {
    if (&overlay_->dc(i) == rt->dc1 && rt->dc1 != rt->dc2) {
      forwarders_[i]->set_next_hop(rt->receiver->id(), rt->dc2->id());
    }
  }

  // --- J-QoS registration ---
  endpoint::RegisterRequest req;
  req.force_service = params_.service;
  req.send_direct = params_.send_direct;
  req.dc1 = rt->dc1->id();
  req.dc2 = rt->dc2->id();
  req.delays.y_ms = sample.y_ms;
  req.delays.delta_s_ms = sample.delta_s_ms;
  req.delays.delta_r_ms = sample.delta_r_ms;
  req.delays.x_ms = sample.x_ms;
  req.delays.delta_r_median_ms = sample.delta_r_ms;
  req.coding_rate = params_.coding.cross_rate();
  endpoint::Session session =
      sessions_.register_flow(*rt->sender, *rt->receiver, req);
  rt->flow = session.flow;

  // The workload app is instantiated in run(), where per-path skew is known.
  paths_.push_back(std::move(rt));
}

FlowId ScenarioShard::open_session(std::size_t path_index) {
  PathRuntime& rt = *paths_.at(path_index);
  endpoint::RegisterRequest req;
  req.force_service = params_.service;
  req.send_direct = params_.send_direct;
  req.dc1 = rt.dc1->id();
  req.dc2 = rt.dc2->id();
  req.delays.y_ms = rt.path.y_ms;
  req.delays.delta_s_ms = rt.path.delta_s_ms;
  req.delays.delta_r_ms = rt.path.delta_r_ms;
  req.delays.x_ms = rt.path.x_ms;
  req.delays.delta_r_median_ms = rt.path.delta_r_ms;
  req.coding_rate = params_.coding.cross_rate();
  return sessions_.register_flow(*rt.sender, *rt.receiver, req).flow;
}

void ScenarioShard::close_session(std::size_t path_index, FlowId flow) {
  PathRuntime& rt = *paths_.at(path_index);
  // Look the flow up BEFORE unwinding the registry entry: the encoder needs
  // the dc2 group key, and its residual-queue flush re-reads the registry.
  const services::FlowInfo* info = registry_->find(flow);
  if (info != nullptr) {
    for (std::size_t i = 0; i < overlay_->dc_count(); ++i) {
      if (&overlay_->dc(i) == rt.dc1) {
        encoders_[i]->flow_departed(flow, info->dc2);
        break;
      }
    }
  }
  sessions_.unregister_flow(*rt.sender, *rt.receiver, flow);
}

void ScenarioShard::flush_encoders() {
  for (auto& enc : encoders_) enc->flush_all();
}

void ScenarioShard::run(SimDuration duration) {
  // One shared ON-interval schedule with small per-path skew: the
  // deployment's control channel keeps senders loosely synchronized so the
  // encoder always sees concurrent streams (Section 6.2.1). The schedule is
  // derived purely from (seed, "schedule"), so every shard of one scenario
  // computes the identical schedule.
  Rng sched_rng = Rng::derived(params_.seed, "schedule");
  const auto schedule = transport::CbrApp::make_schedule(
      sim_.now(), sim_.now() + duration, params_.cbr, sched_rng);
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    // App ticks belong to the path's endpoint lane (no-op when lanes off).
    const netsim::Simulator::LaneScope scope(sim_, lane_of_path(i));
    const std::uint64_t pseed = path_seed(params_.seed, paths_[i]->global_index);
    transport::CbrParams p = params_.cbr;
    p.initial_skew = static_cast<SimDuration>(
        Rng::derived(pseed, "cbr-skew").uniform_int(0, msec(500)));
    // CbrApp holds its params by value; rebuild with the skew.
    paths_[i]->app = std::make_unique<transport::CbrApp>(
        sim_, *paths_[i]->sender, paths_[i]->flow, p, Rng::derived(pseed, "cbr-run"));
    paths_[i]->app->start_with_schedule(schedule, sim_.now() + duration);
  }
  sim_.run_until(sim_.now() + duration);
  // Drain: flush encoder queues and let outstanding recoveries finish.
  for (auto& enc : encoders_) enc->flush_all();
  sim_.run_until(sim_.now() + sec(30));

  // Ground-truth closing of the books: every sequence number the sender
  // emitted that produced no delivery record is a loss (tail losses the
  // receiver could never distinguish from a paused stream).
  for (auto& rt : paths_) {
    const SeqNo sent = rt->sender->next_seq(rt->flow);
    if (rt->outcome.size() < sent) rt->outcome.resize(sent, Outcome::kPending);
    for (SeqNo s = 0; s < sent; ++s) {
      if (rt->outcome[s] == Outcome::kPending) {
        rt->outcome[s] = Outcome::kLost;
        ++rt->lost;
      }
    }
  }
}

services::EncoderStats ScenarioShard::encoder_totals() const {
  services::EncoderStats total;
  for (const auto& e : encoders_) total += e->stats();
  return total;
}

services::RecoveryStatsDc ScenarioShard::recovery_totals() const {
  services::RecoveryStatsDc total;
  for (const auto& r : recoverers_) total += r->stats();
  return total;
}

FaultSummary ScenarioShard::fault_summary() const {
  FaultSummary s;
  net_.for_each_link(
      [&s](const netsim::Link& l) { s.link_fault_drops += l.stats().fault_drops; });
  for (std::size_t i = 0; i < overlay_->dc_count(); ++i) {
    const overlay::DataCenter& dc = overlay_->dc(i);
    s.dc_fault_dropped += dc.fault_dropped_packets();
    if (dc.crashes() > 0) s.dc_crashes[dc.name()] = dc.crashes();
  }
  for (const auto& rt : paths_) {
    const endpoint::ReceiverStats& r = rt->receiver->stats();
    s.failovers += r.failovers;
    s.reengages += r.reengages;
    s.probes_sent += r.probes_sent;
    s.nacks_suppressed += r.nacks_suppressed;
    const endpoint::SenderStats& snd = rt->sender->stats();
    s.failover_direct_sent += snd.failover_direct_sent;
    s.cloud_suppressed += snd.cloud_suppressed;
  }
  s.flushes_suppressed = encoder_totals().flushes_suppressed;
  s.injector = injector_.stats();
  return s;
}

WanScenario::WanScenario(std::vector<geo::PathSample> paths, const WanScenarioParams& params) {
  if (!params.faults.empty()) validate_fault_plan(params.faults, paths);
  std::vector<IndexedPath> indexed;
  indexed.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    indexed.push_back(IndexedPath{i, std::move(paths[i])});
  }
  shard_ = std::make_unique<ScenarioShard>(std::move(indexed), params,
                                           netsim::evq_default_backend());
}

WanScenario::~WanScenario() = default;

}  // namespace jqos::exp
