// The Figure 8(c) what-if analysis: replay each path's direct-path loss
// trace against traditional on-path FEC at several overhead levels and
// compare recovery rates with CR-WAN's measured recovery.
//
// Methodology follows Section 6.2.2: "We divide the probes into 5 packet
// bursts and consider the next burst as the FEC packets" -- i.e. a block of
// 5 data packets is protected by FEC packets whose own delivery fate is
// sampled from the packets that follow the block on the same path, so FEC
// packets are exposed to the same bursts/outages as the data.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "exp/scenario.h"

namespace jqos::exp {

// Fraction of lost packets an on-path FEC scheme with `fec_per_block` coded
// packets per `block` data packets would have recovered on this loss trace.
// `trace[i]` is true when packet i was lost on the direct path.
double fec_recovery_rate(const std::vector<bool>& trace, std::size_t block,
                         std::size_t fec_per_block);

// Converts scenario outcomes to a direct-loss trace.
std::vector<bool> loss_trace(const std::vector<Outcome>& outcomes);

// Percentage increase of CR-WAN's recovery rate over FEC's, capped to
// `cap_percent` when FEC recovers nothing (the paper's log axis tops out at
// 10^4).
double percent_increase(double crwan_rate, double fec_rate, double cap_percent = 1e4);

// Whether the trace contains at least one loss episode FEC at the given
// overhead could not recover (the "90% of paths had at least one episode
// unrecoverable even at 100% overhead" claim).
bool has_fec_unrecoverable_episode(const std::vector<bool>& trace, std::size_t block,
                                   std::size_t fec_per_block);

// One path's full Figure 8(c) what-if evaluation: recovery rate at each
// requested overhead level plus the "FEC-defeated even at the last level"
// flag. Kept together so the multi-path sweep walks each trace once.
struct FecWhatifRow {
  std::vector<double> rates;         // One per (block, fec) overhead level.
  bool last_level_defeated = false;  // has_fec_unrecoverable_episode at back().
};

// Replays every trace against each (block, fec_per_block) overhead level,
// fanned out across `num_threads` workers (0 = JQOS_SIM_THREADS or
// hardware_concurrency). Rows come back in trace order and are
// byte-identical for any thread count -- traces are independent replays.
std::vector<FecWhatifRow> fec_whatif_sweep(
    const std::vector<std::vector<bool>>& traces,
    const std::vector<std::pair<std::size_t, std::size_t>>& levels,
    unsigned num_threads = 0);

}  // namespace jqos::exp
