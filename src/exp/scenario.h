// Scenario builder: turns a set of geo::PathSample wide-area paths into a
// running simulated J-QoS deployment -- senders, receivers, the cloud
// overlay with all four services installed, per-path Internet links with
// configurable loss processes, and per-path outcome collection.
//
// This is the machinery behind the Section 6.2 PlanetLab reproduction and
// the case studies; benches and tests configure it differently (service
// choice, loss mix, coding parameters) but share the wiring.
//
// The unit of execution is a ScenarioShard: one Simulator, one Network, one
// overlay, and a subset of the scenario's paths. Every random stream a shard
// consumes is derived (Rng::derive) from the scenario seed plus a stable
// identity -- the path's GLOBAL index, or an overlay link's site names --
// never from construction order. That is the shard determinism contract:
// a path behaves bit-identically whether its shard holds 1 path or all of
// them, which is what lets ShardedRunner (sharded_runner.h) split a 45-path
// sweep across every core and still merge results identical to the
// single-shard run. WanScenario below is the N=1 facade: the whole scenario
// in one shard, with the pre-sharding public API intact.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/packet_pool.h"
#include "endpoint/receiver.h"
#include "endpoint/sender.h"
#include "endpoint/session.h"
#include "geo/path_dataset.h"
#include "netsim/faults.h"
#include "netsim/loss_model.h"
#include "netsim/network.h"
#include "overlay/overlay_network.h"
#include "services/caching/caching_service.h"
#include "services/coding/encoder_dc.h"
#include "services/coding/recovery_dc.h"
#include "services/forwarding/forwarding_service.h"
#include "transport/cbr_app.h"

namespace jqos::exp {

// Per-packet delivery outcome codes recorded by sequence number.
enum class Outcome : std::uint8_t {
  kPending = 0,    // Sent (or never sent); no record yet.
  kDirect = 1,     // Delivered on the direct Internet path.
  kRecovered = 2,  // Lost on the direct path, recovered by J-QoS in time.
  kLost = 3,       // Lost and never recovered within the give-up window.
};

// Direct-path loss process configuration for one scenario. Defaults are
// calibrated to the Section 6.2.2 observations: loss rates up to ~0.9%,
// 40% of paths above 0.1%, and 1-3 s outages on ~45% of paths.
struct DirectPathParams {
  // Random (single-packet) losses.
  double bernoulli_loss = 0.0002;
  // Multi-packet bursts.
  bool enable_bursts = true;
  netsim::GilbertElliottParams gilbert{.p_good_to_bad = 0.0001,
                                       .p_bad_to_good = 0.25,
                                       .loss_in_good = 0.0,
                                       .loss_in_bad = 0.8};
  // Per-path severity multiplier (lognormal sigma): paths differ by orders
  // of magnitude in loss rate, as the measured PlanetLab paths do.
  double path_severity_sigma = 1.3;
  // Long outages (1-3 s) on a fraction of the paths.
  double outage_path_fraction = 0.45;
  netsim::OutageParams outage{.mean_interval = minutes(12), .min_len = sec(1),
                              .max_len = sec(3)};
  // Jitter of the direct path. Spikes are rare: a delayed packet that gets
  // recovered anyway is reclassified as delivered when the direct copy
  // lands, but spikes still cost NACK/recovery traffic.
  double jitter_sigma = 0.5;
  double jitter_scale_ms = 1.5;
  double spike_prob = 0.003;
};

struct WanScenarioParams {
  ServiceType service = ServiceType::kCode;
  services::CodingParams coding;
  services::RecoveryParams recovery;
  DirectPathParams direct;
  overlay::OverlayParams overlay;
  transport::CbrParams cbr;
  // Give-up window as a multiple of the path RTT (1.0 = the paper's "longer
  // than one RTT to recover counts as lost").
  double give_up_rtts = 1.0;
  // Probability a receiver answers a cooperative request late (straggler).
  double coop_slow_prob = 0.10;
  bool use_markov = true;
  // Per-packet delay Samples at the receivers (see ReceiverConfig); churn
  // soaks disable them to keep memory O(active sessions).
  bool record_delay_samples = true;
  // Receiver history depth (cooperative responses / in-stream decode). The
  // figure scenarios keep the generous default; churn workloads with short
  // sessions size it to the session length.
  std::size_t receiver_buffer_packets = 1024;
  std::uint64_t seed = 1;
  // Queue-disc configuration handed to the shard's Network; consulted only
  // by finite-bandwidth links (the default WAN topology is latency-only, so
  // the default config leaves every trace bit-identical).
  netsim::QdiscConfig qdisc;
  // Send on the direct Internet path (false = path switching: every data
  // packet rides the overlay via the forwarding service, Fig. 2(b)).
  bool send_direct = true;
  // Overlay-death detection at the receivers (see endpoint::FailoverParams).
  // When enabled, each path's receiver drives its sender's direct-path
  // override through a control channel modeled as an RTT/2 delay, and
  // transitions are recorded in PathRuntime::failover_events. Disabled by
  // default: zero events, zero extra draws, bit-identical traces.
  endpoint::FailoverParams failover;
  // Declarative fault schedule, armed before the workload starts. Symbolic
  // targets: "dc:<site>" (DataCenter crash/restart), "link:<A>><B>" (the
  // directed inter-DC link), "direct:<global_index>" (a path's direct
  // Internet link). Validate with validate_fault_plan() before running a
  // multi-shard scenario; every shard arms the same plan and skips targets
  // it does not own, so replicated entities fault at the same instant.
  netsim::FaultPlan faults;
  // Conservative intra-shard parallelism (PDES lanes; see
  // netsim::Simulator::configure_lanes and docs/DETERMINISM.md).
  //   0 = off: one event loop per shard, byte-identical to prior releases
  //       (JQOS_SIM_LANES, if set, overrides this default).
  //   N = split the shard's endpoint-side work -- each path's sender,
  //       receiver, app, and direct link -- across min(N, paths) lanes that
  //       advance in parallel between horizons derived from the access
  //       links' minimum one-way latency; the hub (DCs, services, inter-DC
  //       links) runs in its own lane.
  // Results are BIT-IDENTICAL for every lanes >= 1 at fixed shard count,
  // any thread count, and both event-queue backends. lanes >= 1 differs
  // from lanes == 0 only in same-microsecond arrival order at shared
  // services (lanes resolve those ties canonically; the single loop
  // resolves them by global scheduling order).
  std::size_t lanes = 0;
  // Worker threads draining lanes inside this shard's windows
  // (0 = JQOS_SIM_THREADS / hardware concurrency). Never affects results.
  unsigned lane_threads = 0;
};

// One overlay up/down transition observed by a path's receiver.
struct FailoverEvent {
  SimTime at = 0;
  bool up = false;
};

// Fault-layer counters aggregated over one shard (or merged over all of
// them). dc_crashes is keyed by site name so the merge can deduplicate
// DC replicas that crash in several shards at once.
struct FaultSummary {
  std::uint64_t link_fault_drops = 0;   // Packets dropped by down/degraded links.
  std::uint64_t dc_fault_dropped = 0;   // Packets black-holed by crashed DCs.
  std::map<std::string, std::uint64_t> dc_crashes;  // Site -> crash count.
  std::uint64_t failovers = 0;          // Receivers declaring the overlay dead.
  std::uint64_t reengages = 0;          // Receivers re-engaging the overlay.
  std::uint64_t probes_sent = 0;
  std::uint64_t nacks_suppressed = 0;
  std::uint64_t failover_direct_sent = 0;  // Direct copies forced by failover.
  std::uint64_t cloud_suppressed = 0;      // Cloud copies skipped while down.
  std::uint64_t flushes_suppressed = 0;    // Encoder flushes toward dead DCs.
  netsim::FaultInjectorStats injector;

  std::uint64_t total_dc_crashes() const;
  // Sums counters; dc_crashes merges by per-site max, because every shard
  // replica of a DC crashes identically under the shared plan.
  FaultSummary& operator+=(const FaultSummary& other);
};

// Rejects plans that name unknown targets or faults crossing a shard
// boundary: a "link:<A>><B>" target is only valid when some path has
// exactly {A, B} as its (DC1, DC2) pair, i.e. the link belongs to one
// interaction group. Throws std::invalid_argument with the offending
// target. Call before constructing a scenario/runner with a non-empty plan.
void validate_fault_plan(const netsim::FaultPlan& plan,
                         const std::vector<geo::PathSample>& paths);

// Everything belonging to one wide-area path in the running scenario.
struct PathRuntime {
  geo::PathSample path;
  std::string label;  // Region pair, e.g. "US-EU".
  // The path's index within the FULL scenario (not within its shard): the
  // stable identity all of its random streams are derived from, and the
  // position it occupies in ShardedRunner's merged view.
  std::size_t global_index = 0;
  double rtt_ms = 0.0;
  double give_up_rtts = 1.0;  // Success criterion (copied from params).
  FlowId flow = 0;
  std::unique_ptr<endpoint::Sender> sender;
  std::unique_ptr<endpoint::Receiver> receiver;
  std::unique_ptr<transport::CbrApp> app;
  overlay::DataCenter* dc1 = nullptr;
  overlay::DataCenter* dc2 = nullptr;

  // Collected results.
  std::vector<Outcome> outcome;      // Indexed by sequence number.
  Samples recovery_ms;               // Detection -> recovered delivery.
  Samples recovery_over_rtt;         // Same, as a fraction of path RTT.
  std::uint64_t delivered_direct = 0;
  std::uint64_t recovered = 0;
  std::uint64_t lost = 0;
  // Overlay up/down transitions, in occurrence order (failover enabled only).
  std::vector<FailoverEvent> failover_events;

  std::uint64_t direct_losses() const { return recovered + lost; }
  double recovery_success() const {
    const std::uint64_t l = direct_losses();
    return l == 0 ? 1.0 : static_cast<double>(recovered) / static_cast<double>(l);
  }
  double loss_rate() const {
    const std::uint64_t total = delivered_direct + direct_losses();
    return total == 0 ? 0.0
                      : static_cast<double>(direct_losses()) / static_cast<double>(total);
  }
};

// One path plus its stable global index, the form ScenarioShard consumes.
struct IndexedPath {
  std::size_t global_index = 0;
  geo::PathSample sample;
};

// One self-contained slice of a scenario: its own Simulator (explicit event
// queue backend -- worker threads never consult process-global defaults),
// Network, overlay (only the cloud sites its paths touch), service
// instances, and derived random streams. Shards share NOTHING mutable; a
// shard may be built and run on any thread.
class ScenarioShard {
 public:
  ScenarioShard(std::vector<IndexedPath> paths, const WanScenarioParams& params,
                netsim::EvqBackend backend);
  ~ScenarioShard();

  ScenarioShard(const ScenarioShard&) = delete;
  ScenarioShard& operator=(const ScenarioShard&) = delete;

  // Runs the CBR workload on every path for `duration`, then drains
  // in-flight recoveries.
  void run(SimDuration duration);

  // --- dynamic session churn (src/workload) ---
  // Each path's host pair is long-lived infrastructure; sessions are flows
  // churning over it. open_session registers a fresh flow across the
  // path's sender/receiver/DCs with the same service selection build_path
  // used; close_session notifies the path's ingress encoder (residual
  // queue flush + group shrink) and unwinds sender/receiver/registry
  // state. Callers observe deliveries by replacing the path receiver's
  // delivery handler (path(i).receiver->set_delivery_handler) with a
  // flow-dispatching one -- the default recorder assumes the single
  // build-time flow.
  FlowId open_session(std::size_t path_index);
  void close_session(std::size_t path_index, FlowId flow);
  // Flushes every encoder queue (end-of-run drain for churn workloads).
  void flush_encoders();

  endpoint::SessionManager& sessions() { return sessions_; }
  // Registered-flow count; a drained churn run must report 0 (leak check).
  std::size_t registered_flows() const { return registry_->size(); }

  std::size_t path_count() const { return paths_.size(); }
  PathRuntime& path(std::size_t i) { return *paths_.at(i); }
  const PathRuntime& path(std::size_t i) const { return *paths_.at(i); }

  netsim::Simulator& sim() { return sim_; }
  const netsim::Simulator& sim() const { return sim_; }
  netsim::Network& net() { return net_; }
  overlay::OverlayNetwork& overlay() { return *overlay_; }

  // Aggregate encoder/recovery statistics summed across this shard's DCs.
  services::EncoderStats encoder_totals() const;
  services::RecoveryStatsDc recovery_totals() const;

  // Fault-layer counters for this shard (links, DCs, endpoints, injector).
  FaultSummary fault_summary() const;
  netsim::FaultInjector& injector() { return injector_; }

  // --- lane layout (lane mode only) ---
  // Endpoint lanes in use; 0 when the shard runs the classic single loop.
  std::size_t lanes_used() const { return lanes_used_; }
  // The simulator lane owning path i's endpoint-side entities (its sender,
  // receiver, app, and direct link); 0 (the hub lane) when lanes are off.
  // Deterministic round-robin over the shard's local path order.
  std::size_t lane_of_path(std::size_t i) const {
    return lanes_used_ == 0 ? 0 : 1 + i % lanes_used_;
  }

  // --- packet pools (docs/MEMORY.md) ---
  // One PacketPool per lane: index 0 is the hub lane (DCs, services,
  // inter-DC links), indices 1..lanes_used() are the endpoint lanes. With
  // lanes off there is exactly one pool. Pool state never feeds simulation
  // values, so results are bit-identical with pooling on or off.
  std::size_t pool_count() const { return pools_.size(); }
  PacketPool& pool(std::size_t lane) { return *pools_.at(lane); }
  const PacketPool& pool(std::size_t lane) const { return *pools_.at(lane); }

 private:
  void build_overlay(const std::vector<IndexedPath>& paths);
  void build_path(IndexedPath path);

  WanScenarioParams params_;
  netsim::Simulator sim_;
  netsim::Network net_;
  netsim::FaultInjector injector_;
  // Created before any entity so every build_* step can hand out pool
  // pointers; pooled packets outliving the shard stay safe regardless of
  // destruction order (the pool core counts its outstanding storage and
  // frees itself only when the last packet comes home).
  std::vector<std::unique_ptr<PacketPool>> pools_;
  Rng rng_;  // Overlay construction only; per-path streams are derived.
  services::FlowRegistryPtr registry_;
  std::unique_ptr<overlay::OverlayNetwork> overlay_;
  std::vector<std::shared_ptr<services::ForwardingService>> forwarders_;
  std::vector<std::shared_ptr<services::CodingEncoderService>> encoders_;
  std::vector<std::shared_ptr<services::RecoveryService>> recoverers_;
  endpoint::SessionManager sessions_;
  std::vector<std::unique_ptr<PathRuntime>> paths_;
  FlowId next_flow_ = 1;
  std::size_t lanes_used_ = 0;
};

// The N=1 facade: the whole scenario in one shard, with the original
// single-Simulator API. Tests and benches that want "a running deployment"
// use this; figure drivers that want every core use ShardedRunner.
class WanScenario {
 public:
  WanScenario(std::vector<geo::PathSample> paths, const WanScenarioParams& params);
  ~WanScenario();

  WanScenario(const WanScenario&) = delete;
  WanScenario& operator=(const WanScenario&) = delete;

  void run(SimDuration duration) { shard_->run(duration); }

  std::size_t path_count() const { return shard_->path_count(); }
  PathRuntime& path(std::size_t i) { return shard_->path(i); }
  const PathRuntime& path(std::size_t i) const { return shard_->path(i); }

  netsim::Simulator& sim() { return shard_->sim(); }
  netsim::Network& net() { return shard_->net(); }
  overlay::OverlayNetwork& overlay() { return shard_->overlay(); }

  // Aggregate encoder/recovery statistics summed across DCs.
  services::EncoderStats encoder_totals() const { return shard_->encoder_totals(); }
  services::RecoveryStatsDc recovery_totals() const { return shard_->recovery_totals(); }
  FaultSummary fault_summary() const { return shard_->fault_summary(); }

 private:
  std::unique_ptr<ScenarioShard> shard_;
};

}  // namespace jqos::exp
