// Cloud pricing and the Section 6.6 cost arithmetic.
//
// The model captures the pricing asymmetry J-QoS exploits: ingress is free,
// egress is charged per GB, and compute is charged per thread-hour. The
// headline comparison (forwarding $17.60/h vs coding $1.10/h for 150 Skype
// calls at r = 1/16) falls out of these constants.
#pragma once

#include <cstdint>

namespace jqos::overlay {

struct Pricing {
  // Representative 2019 list prices used in the paper's back-of-the-envelope
  // (Azure/AWS internet egress around $0.087/GB at volume; ingress free).
  double egress_usd_per_gb = 0.087;
  double ingress_usd_per_gb = 0.0;
  double compute_usd_per_thread_hour = 0.13;
};

class CostModel {
 public:
  explicit CostModel(Pricing pricing = {}) : p_(pricing) {}

  const Pricing& pricing() const { return p_; }

  // Dollars for a given egress volume.
  double egress_cost_usd(double gigabytes) const { return gigabytes * p_.egress_usd_per_gb; }
  double egress_cost_from_bytes(std::uint64_t bytes) const {
    return egress_cost_usd(static_cast<double>(bytes) / 1e9);
  }

  // Section 6.6 service-level hourly costs for an aggregate offered load of
  // `gb_per_hour` application data through a 2-DC overlay.
  //
  // Forwarding egresses every byte twice (DC1 -> DC2, DC2 -> receiver).
  double forwarding_hourly_usd(double gb_per_hour, unsigned threads = 1) const;

  // Caching egresses the DC1 -> DC2 copy, plus recovered bytes from DC2;
  // `recovery_fraction` is the fraction of bytes pulled after loss.
  double caching_hourly_usd(double gb_per_hour, double recovery_fraction,
                            unsigned threads = 1) const;

  // Coding egresses only coded packets (rate r) DC1 -> DC2, and at most the
  // same volume again from DC2 during recovery (the paper's upper bound that
  // every coded packet is used).
  double coding_hourly_usd(double gb_per_hour, double coding_rate,
                           unsigned threads = 1) const;

 private:
  Pricing p_;
};

// Per-user application constants used by the Section 6.6 estimate.
struct SkypeLoad {
  double gb_per_user_hour = 0.675;  // 1.5 Mbps HD call.
  unsigned calls_per_thread = 150;  // One encode thread handles 150 calls.
};

}  // namespace jqos::overlay
