#include "overlay/overlay_network.h"

#include <stdexcept>

#include "geo/coords.h"
#include "netsim/latency_model.h"
#include "netsim/loss_model.h"

namespace jqos::overlay {

OverlayNetwork::OverlayNetwork(netsim::Network& net, const std::vector<geo::CloudSite>& sites,
                               const OverlayParams& params, Rng& rng)
    : net_(net), params_(params), sites_(sites), rng_(rng.fork("overlay")) {
  if (sites_.empty()) throw std::invalid_argument("OverlayNetwork: no sites");
  link_seed_ = rng_.next_u64();
  dcs_.reserve(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    dcs_.push_back(
        std::make_unique<DataCenter>(net_, static_cast<DcId>(i), sites_[i].name));
  }
  // Full mesh of inter-DC links (the cloud backbone). Each directed link's
  // jitter and loss streams are keyed by the endpoint site NAMES, not by
  // construction order: an overlay built from any subset of a site catalog
  // gives the link A->B the identical random sequence, so sharded scenario
  // decompositions (each shard builds only the sites its paths touch) stay
  // bit-identical to the monolithic run.
  for (std::size_t i = 0; i < dcs_.size(); ++i) {
    for (std::size_t j = 0; j < dcs_.size(); ++j) {
      if (i == j) continue;
      const double km = geo::haversine_km(sites_[i].location, sites_[j].location);
      netsim::JitterParams jp;
      jp.base = msec_f(geo::propagation_ms(km, geo::kCloudInflation));
      jp.jitter_sigma = params_.inter_dc_jitter_sigma;
      jp.jitter_scale_ms = params_.inter_dc_jitter_scale_ms;
      const std::string pair = sites_[i].name + ">" + sites_[j].name;
      Rng lat_rng = Rng::derived(link_seed_, "dc-link:" + pair);
      Rng loss_rng = Rng::derived(link_seed_, "dc-loss:" + pair);
      net_.add_link(dcs_[i]->id(), dcs_[j]->id(),
                    netsim::make_jitter_latency(jp, lat_rng),
                    netsim::make_bernoulli_loss(params_.inter_dc_loss, loss_rng));
    }
  }
}

DataCenter* OverlayNetwork::dc_by_site(const std::string& site_name) {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i].name == site_name) return dcs_[i].get();
  }
  return nullptr;
}

DataCenter& OverlayNetwork::nearest_dc(const geo::GeoPoint& p) {
  const geo::CloudSite& s = geo::nearest_site(sites_, p);
  DataCenter* dc = dc_by_site(s.name);
  if (dc == nullptr) throw std::logic_error("nearest_dc: site without DC");
  return *dc;
}

void OverlayNetwork::attach_host(NodeId host, DataCenter& dc, SimDuration one_way_delay) {
  attach_host(host, dc, one_way_delay, rng_);
}

void OverlayNetwork::attach_host(NodeId host, DataCenter& dc, SimDuration one_way_delay,
                                 Rng& rng) {
  netsim::JitterParams jp;
  jp.base = one_way_delay;
  jp.jitter_sigma = params_.access_jitter_sigma;
  jp.jitter_scale_ms = params_.access_jitter_scale_ms;
  net_.add_link(host, dc.id(), netsim::make_jitter_latency(jp, rng.fork("up")),
                netsim::make_bernoulli_loss(params_.access_loss, rng.fork("up-loss")));
  net_.add_link(dc.id(), host, netsim::make_jitter_latency(jp, rng.fork("down")),
                netsim::make_bernoulli_loss(params_.access_loss, rng.fork("down-loss")));
}

}  // namespace jqos::overlay
