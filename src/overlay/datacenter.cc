#include "overlay/datacenter.h"

#include "common/logging.h"

namespace jqos::overlay {

DataCenter::DataCenter(netsim::Network& net, DcId dc_id, std::string name)
    : net_(net), node_id_(net.allocate_id()), dc_id_(dc_id), name_(std::move(name)) {
  net_.attach(*this);
}

void DataCenter::send(const PacketPtr& pkt) {
  egress_bytes_ += pkt->wire_size();
  ++egress_packets_;
  net_.send(node_id_, pkt);
}

void DataCenter::handle_packet(const PacketPtr& pkt) {
  ingress_bytes_ += pkt->wire_size();
  for (const auto& service : services_) {
    if (service->handle(*this, pkt)) return;
  }
  ++unhandled_packets_;
  JQOS_DEBUG(name_ << ": unhandled " << to_string(pkt->type) << " "
                   << to_string(pkt->key()));
}

}  // namespace jqos::overlay
