#include "overlay/datacenter.h"

#include "common/logging.h"

namespace jqos::overlay {

DataCenter::DataCenter(netsim::Network& net, DcId dc_id, std::string name)
    : net_(net), node_id_(net.allocate_id()), dc_id_(dc_id), name_(std::move(name)) {
  net_.attach(*this);
}

void DataCenter::send(const PacketPtr& pkt) {
  // A stale event (scheduled before the crash) may still try to transmit;
  // the dead process sends nothing.
  if (down_) {
    ++fault_dropped_packets_;
    return;
  }
  egress_bytes_ += pkt->wire_size();
  ++egress_packets_;
  net_.send(node_id_, pkt);
}

void DataCenter::handle_packet(const PacketPtr& pkt) {
  if (down_) {
    ++fault_dropped_packets_;
    return;
  }
  ingress_bytes_ += pkt->wire_size();
  for (const auto& service : services_) {
    if (service->handle(*this, pkt)) return;
  }
  ++unhandled_packets_;
  JQOS_DEBUG(name_ << ": unhandled " << to_string(pkt->type) << " "
                   << to_string(pkt->key()));
}

void DataCenter::fault_crash() {
  if (down_) return;
  down_ = true;
  ++crashes_;
  JQOS_DEBUG(name_ << ": CRASH at " << now());
  for (const auto& service : services_) service->on_dc_crash();
}

void DataCenter::fault_restart() {
  if (!down_) return;
  down_ = false;
  JQOS_DEBUG(name_ << ": restart at " << now());
  for (const auto& service : services_) service->on_dc_restart();
}

}  // namespace jqos::overlay
