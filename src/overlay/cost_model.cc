#include "overlay/cost_model.h"

namespace jqos::overlay {

double CostModel::forwarding_hourly_usd(double gb_per_hour, unsigned threads) const {
  const double bandwidth = 2.0 * gb_per_hour * p_.egress_usd_per_gb;
  return bandwidth + threads * p_.compute_usd_per_thread_hour;
}

double CostModel::caching_hourly_usd(double gb_per_hour, double recovery_fraction,
                                     unsigned threads) const {
  const double bandwidth =
      (gb_per_hour + gb_per_hour * recovery_fraction) * p_.egress_usd_per_gb;
  return bandwidth + threads * p_.compute_usd_per_thread_hour;
}

double CostModel::coding_hourly_usd(double gb_per_hour, double coding_rate,
                                    unsigned threads) const {
  // Coded volume crosses DC1 -> DC2; the recovery upper bound assumes every
  // coded byte is also egressed once from DC2 toward a receiver.
  const double coded_gb = gb_per_hour * coding_rate;
  const double bandwidth = 2.0 * coded_gb * p_.egress_usd_per_gb;
  return bandwidth + threads * p_.compute_usd_per_thread_hour;
}

}  // namespace jqos::overlay
