// The cloud overlay: a mesh of DataCenters built from geo::CloudSite
// entries, with well-provisioned inter-DC links, plus helpers to attach end
// hosts to their nearest DC.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geo/path_dataset.h"
#include "geo/regions.h"
#include "netsim/network.h"
#include "overlay/datacenter.h"

namespace jqos::overlay {

struct OverlayParams {
  // Inter-DC paths: order-of-magnitude lower loss than the public Internet
  // and tight jitter (Section 2's measurements).
  double inter_dc_loss = 1e-5;
  double inter_dc_jitter_sigma = 0.2;
  double inter_dc_jitter_scale_ms = 0.3;
  // Access (host <-> DC) paths: low loss, modest jitter.
  double access_loss = 1e-4;
  double access_jitter_sigma = 0.3;
  double access_jitter_scale_ms = 0.5;
};

class OverlayNetwork {
 public:
  OverlayNetwork(netsim::Network& net, const std::vector<geo::CloudSite>& sites,
                 const OverlayParams& params, Rng& rng);

  // The DC built for the i-th site passed at construction.
  DataCenter& dc(std::size_t index) { return *dcs_.at(index); }
  std::size_t dc_count() const { return dcs_.size(); }

  // DC whose site name matches; nullptr if absent.
  DataCenter* dc_by_site(const std::string& site_name);

  // The DC nearest to a geographic point.
  DataCenter& nearest_dc(const geo::GeoPoint& p);

  // Installs bidirectional access links between a host node and a DC with
  // the given one-way base delay.
  void attach_host(NodeId host, DataCenter& dc, SimDuration one_way_delay);

  const geo::CloudSite& site(std::size_t index) const { return sites_.at(index); }

 private:
  netsim::Network& net_;
  OverlayParams params_;
  std::vector<geo::CloudSite> sites_;
  std::vector<std::unique_ptr<DataCenter>> dcs_;
  Rng rng_;
};

}  // namespace jqos::overlay
