// The cloud overlay: a mesh of DataCenters built from geo::CloudSite
// entries, with well-provisioned inter-DC links, plus helpers to attach end
// hosts to their nearest DC.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geo/path_dataset.h"
#include "geo/regions.h"
#include "netsim/network.h"
#include "overlay/datacenter.h"

namespace jqos::overlay {

struct OverlayParams {
  // Inter-DC paths: order-of-magnitude lower loss than the public Internet
  // and tight jitter (Section 2's measurements).
  double inter_dc_loss = 1e-5;
  double inter_dc_jitter_sigma = 0.2;
  double inter_dc_jitter_scale_ms = 0.3;
  // Access (host <-> DC) paths: low loss, modest jitter.
  double access_loss = 1e-4;
  double access_jitter_sigma = 0.3;
  double access_jitter_scale_ms = 0.5;
};

class OverlayNetwork {
 public:
  // Every stochastic process the overlay owns (inter-DC jitter/loss, access
  // links added through the legacy attach_host overload) draws from a stream
  // derived from (rng-derived base seed, stable link identity) -- site names
  // for the backbone mesh -- NOT from construction order. Two overlays built
  // from different subsets of the same site catalog therefore give each
  // shared link an identical random sequence, which is what lets the sharded
  // scenario runner split paths across shards without perturbing results.
  OverlayNetwork(netsim::Network& net, const std::vector<geo::CloudSite>& sites,
                 const OverlayParams& params, Rng& rng);

  // The DC built for the i-th site passed at construction.
  DataCenter& dc(std::size_t index) { return *dcs_.at(index); }
  std::size_t dc_count() const { return dcs_.size(); }

  // DC whose site name matches; nullptr if absent.
  DataCenter* dc_by_site(const std::string& site_name);

  // The DC nearest to a geographic point.
  DataCenter& nearest_dc(const geo::GeoPoint& p);

  // Installs bidirectional access links between a host node and a DC with
  // the given one-way base delay. The overload taking an Rng draws the
  // links' jitter/loss streams from it -- pass a stream keyed to a stable
  // identity (e.g. the path's global index) for composition-invariant runs;
  // the legacy overload draws from the overlay's own sequential stream and
  // therefore depends on attach order.
  void attach_host(NodeId host, DataCenter& dc, SimDuration one_way_delay);
  void attach_host(NodeId host, DataCenter& dc, SimDuration one_way_delay, Rng& rng);

  const geo::CloudSite& site(std::size_t index) const { return sites_.at(index); }

 private:
  netsim::Network& net_;
  OverlayParams params_;
  std::vector<geo::CloudSite> sites_;
  std::vector<std::unique_ptr<DataCenter>> dcs_;
  Rng rng_;
  // Base seed for name-keyed link streams; drawn once from the ctor rng so
  // equal-state ctor rngs (e.g. every shard of one scenario) agree on it.
  std::uint64_t link_seed_ = 0;
};

}  // namespace jqos::overlay
