// A data center: the overlay insertion point that hosts J-QoS services.
//
// The DC is a network node that dispatches arriving packets to the service
// objects installed on it (forwarding, caching, coding encoder/recovery) and
// accounts ingress/egress bytes -- the quantity the cloud bills for and the
// cost model consumes (Section 6.6: "incoming traffic is free and outgoing
// traffic is charged").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/packet.h"
#include "netsim/faults.h"
#include "netsim/network.h"

namespace jqos::overlay {

class DataCenter;

// Interface implemented by the J-QoS services installed at a DC. Services
// are offered each arriving packet in installation order until one consumes
// it.
class DcService {
 public:
  virtual ~DcService() = default;

  virtual const char* name() const = 0;

  // Returns true if the packet was consumed by this service.
  virtual bool handle(DataCenter& dc, const PacketPtr& pkt) = 0;

  // Fault-layer hooks. on_dc_crash must drop all soft state (stored batches,
  // pending ops, armed timers -- anything a process restart would lose);
  // on_dc_restart runs when the DC comes back cold. Cumulative counters are
  // NOT state: crash wipes what a restart would rebuild, not the books.
  virtual void on_dc_crash() {}
  virtual void on_dc_restart() {}
};

class DataCenter final : public netsim::Node, public netsim::FaultableNode {
 public:
  DataCenter(netsim::Network& net, DcId dc_id, std::string name);

  NodeId id() const override { return node_id_; }
  DcId dc_id() const { return dc_id_; }
  const std::string& name() const { return name_; }

  void install(std::shared_ptr<DcService> service) { services_.push_back(std::move(service)); }

  // Transmits a packet out of this DC (egress is charged).
  void send(const PacketPtr& pkt);

  void handle_packet(const PacketPtr& pkt) override;

  // FaultableNode: a crash takes the DC down (arriving and departing packets
  // are black-holed and counted) and tells every installed service to wipe
  // its soft state; restart brings the node back cold.
  void fault_crash() override;
  void fault_restart() override;
  bool down() const { return down_; }
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t fault_dropped_packets() const { return fault_dropped_packets_; }

  netsim::Network& network() { return net_; }
  SimTime now() const { return net_.sim().now(); }

  // Packet storage pool for the hub lane this DC runs in (see
  // docs/MEMORY.md); services reach it via dc.pool(). Null (the default)
  // means heap allocation. Set at build time, before traffic.
  void set_pool(PacketPool* pool) { pool_ = pool; }
  PacketPool* pool() const { return pool_; }

  std::uint64_t ingress_bytes() const { return ingress_bytes_; }
  std::uint64_t egress_bytes() const { return egress_bytes_; }
  std::uint64_t egress_packets() const { return egress_packets_; }
  std::uint64_t unhandled_packets() const { return unhandled_packets_; }

 private:
  netsim::Network& net_;
  NodeId node_id_;
  DcId dc_id_;
  PacketPool* pool_ = nullptr;
  std::string name_;
  std::vector<std::shared_ptr<DcService>> services_;
  std::uint64_t ingress_bytes_ = 0;
  std::uint64_t egress_bytes_ = 0;
  std::uint64_t egress_packets_ = 0;
  std::uint64_t unhandled_packets_ = 0;
  bool down_ = false;
  std::uint64_t crashes_ = 0;
  std::uint64_t fault_dropped_packets_ = 0;
};

}  // namespace jqos::overlay
