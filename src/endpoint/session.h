// The register(...) API (Section 3.5): the entry point applications use.
//
// An application states its destination and latency budget; the framework
// selects the cheapest service that meets the budget, configures the sender
// (duplication policy), the receiver (flow tracking, recovery target), and
// the DC-side flow registry (so encoders know each flow's DC2/receiver),
// and hands back a Session describing the decision.
#pragma once

#include <cstdint>

#include "endpoint/receiver.h"
#include "endpoint/sender.h"
#include "endpoint/service_selector.h"
#include "services/coding/coding_plan.h"

namespace jqos::endpoint {

struct RegisterRequest {
  // Application-facing inputs.
  double latency_budget_ms = 150.0;
  PathDelays delays;         // Estimated/pre-computed per Section 3.5.
  double coding_rate = 2.0 / 6.0;

  // Topology handles (set up by the deployment).
  NodeId dc1 = kInvalidNode;  // DC near the sender (encode/ingress point).
  NodeId dc2 = kInvalidNode;  // DC near the receiver (recovery point).

  // Overrides: force a service instead of selecting by budget, drop the
  // direct path (path switching), or duplicate selectively.
  std::optional<ServiceType> force_service;
  bool send_direct = true;
  std::function<bool(const Packet&)> duplicate_filter;
};

struct Session {
  FlowId flow = 0;
  ServiceQuote quote;
};

class SessionManager {
 public:
  explicit SessionManager(services::FlowRegistryPtr registry)
      : registry_(std::move(registry)) {}

  // Registers a new flow from `sender` to `receiver` and wires every layer.
  Session register_flow(Sender& sender, Receiver& receiver, const RegisterRequest& req);

  // Tears the flow down across the same layers register_flow wired up:
  // sender policy/sequence state, receiver tracking state, and the DC-side
  // flow registry entry. DC-side queue/batch state keyed by the flow is
  // reclaimed by the services themselves (the encoder on departure
  // notification, the recovery DC by TTL sweep). Safe to call for an
  // unknown flow (no-op), so late teardown races are harmless.
  void unregister_flow(Sender& sender, Receiver& receiver, FlowId flow);

  const services::FlowRegistry& registry() const { return *registry_; }

 private:
  services::FlowRegistryPtr registry_;
  FlowId next_flow_ = 1;
};

}  // namespace jqos::endpoint
