// Service selection (Section 3.5) and the Section 6.1 delay formulas.
//
// Applications register with a latency budget; the framework picks the
// *cheapest* service whose expected end-to-end packet delivery delay fits
// the budget (coding < caching < forwarding in cost). The delay estimates
// use the same formulas the paper uses for the feasibility study:
//
//   internet    = y
//   forwarding  = x + delta_S + delta_R
//   caching     = y + 2*delta_R + WAIT
//   coding      = y + 2*delta_R + 2*delta_R_median + WAIT
//
// where WAIT = max(0, (delta_S + x) - y) accounts for pulls that must wait
// for the cloud copy to reach DC2 when the cloud route is slower than the
// direct path.
#pragma once

#include <optional>
#include <vector>

#include "common/packet.h"

namespace jqos::endpoint {

// One-way segment delays for one sender->receiver pair, in milliseconds.
struct PathDelays {
  double y_ms = 0.0;         // direct Internet, sender -> receiver
  double delta_s_ms = 0.0;   // sender -> DC1
  double delta_r_ms = 0.0;   // receiver <-> DC2 (one way)
  double x_ms = 0.0;         // DC1 -> DC2
  // Median receiver<->DC delay across the cooperative group; the extra
  // 2*delta_median hop in the coding formula (peer round trip).
  double delta_r_median_ms = 0.0;
};

struct ServiceQuote {
  ServiceType service = ServiceType::kNone;
  double expected_delay_ms = 0.0;
  // Cloud egress charged per application byte, in units of the single-copy
  // egress cost c: forwarding 2c, caching ~c, coding alpha*c.
  double relative_cost = 0.0;
};

// Delay a single (possibly recovered) packet experiences under `service`.
double expected_delay_ms(ServiceType service, const PathDelays& d);

// Relative cost factor for `service`; `coding_rate` is alpha (e.g. 2/6).
double relative_cost(ServiceType service, double coding_rate);

// All four quotes (including plain Internet), sorted by relative cost.
std::vector<ServiceQuote> service_quotes(const PathDelays& d, double coding_rate);

// The plain direct-Internet quote (service kNone, delay y, cost 0): what a
// session falls back to when the overlay is unreachable. Failover does not
// re-run selection -- with the cloud out, the Internet path is the only
// candidate left, and this is its formula quote.
ServiceQuote internet_quote(const PathDelays& d);

// The cheapest service whose expected delay meets `latency_budget_ms`.
// Falls back to the lowest-delay service when nothing fits the budget.
ServiceQuote select_service(const PathDelays& d, double latency_budget_ms,
                            double coding_rate);

// Runtime upgrade mechanism (Section 3.5): tracks the fraction of packets
// delivered within budget and recommends stepping up to the next costlier
// service when the current one underdelivers.
class AdaptiveSelector {
 public:
  AdaptiveSelector(const PathDelays& d, double latency_budget_ms, double coding_rate,
                   double violation_threshold = 0.05, std::size_t window = 200);

  ServiceType current() const { return current_; }

  // Reports one delivered (or lost) packet; returns the service to use from
  // now on (possibly upgraded).
  ServiceType report(double delivery_delay_ms, bool lost);

  std::size_t upgrades() const { return upgrades_; }

 private:
  ServiceType next_costlier(ServiceType s) const;

  PathDelays delays_;
  double budget_ms_;
  double coding_rate_;
  double violation_threshold_;
  std::size_t window_;
  ServiceType current_;
  std::size_t seen_ = 0;
  std::size_t violations_ = 0;
  std::size_t upgrades_ = 0;
};

}  // namespace jqos::endpoint
