#include "endpoint/session.h"

namespace jqos::endpoint {

Session SessionManager::register_flow(Sender& sender, Receiver& receiver,
                                      const RegisterRequest& req) {
  Session session;
  session.flow = next_flow_++;

  if (req.force_service) {
    session.quote.service = *req.force_service;
    session.quote.expected_delay_ms = expected_delay_ms(*req.force_service, req.delays);
    session.quote.relative_cost = relative_cost(*req.force_service, req.coding_rate);
  } else {
    session.quote = select_service(req.delays, req.latency_budget_ms, req.coding_rate);
  }

  SenderPolicy policy;
  policy.service = session.quote.service;
  policy.send_direct = req.send_direct;
  policy.duplicate_to_cloud = session.quote.service != ServiceType::kNone;
  policy.dc1 = req.dc1;
  policy.receiver = receiver.id();
  policy.duplicate_filter = req.duplicate_filter;
  // Caching stores near the receiver: the cloud copy must land at DC2.
  if (session.quote.service == ServiceType::kCache) policy.cloud_final_dst = req.dc2;
  sender.register_flow(session.flow, policy);

  receiver.expect_flow(session.flow);

  services::FlowInfo info;
  info.dc2 = req.dc2;
  info.receiver = receiver.id();
  registry_->register_flow(session.flow, info);

  return session;
}

void SessionManager::unregister_flow(Sender& sender, Receiver& receiver, FlowId flow) {
  sender.unregister_flow(flow);
  receiver.forget_flow(flow);
  registry_->unregister_flow(flow);
}

}  // namespace jqos::endpoint
