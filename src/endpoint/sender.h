// The J-QoS sender: intercepts outbound application packets just below the
// transport (Section 5) and, per the selected service, sends them on the
// direct Internet path and/or duplicates them toward the cloud overlay.
//
// Duplication can be selective (Section 6.4's SYN-ACK-only experiment;
// I-frames for video; the last packet of a window): a predicate decides
// per packet whether the cloud copy is made.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/packet.h"
#include "netsim/network.h"

namespace jqos::endpoint {

struct SenderPolicy {
  // Which service processes the cloud copy at the DC.
  ServiceType service = ServiceType::kCode;
  // Send the packet on the direct Internet path (false = path switching:
  // cloud-only delivery via the forwarding service, Fig. 2(b)).
  bool send_direct = true;
  // Duplicate the packet to DC1 (false = Internet-only).
  bool duplicate_to_cloud = true;
  NodeId dc1 = kInvalidNode;
  NodeId receiver = kInvalidNode;
  // Where the cloud copy should ultimately land. For forwarding this is the
  // receiver (or a multicast group); for caching it is the DC near the
  // receiver (DC2); for coding it is DC1 itself (the encoder consumes it).
  NodeId cloud_final_dst = kInvalidNode;
  // nullptr duplicates every packet; otherwise only packets approved by the
  // filter get a cloud copy (selective duplication).
  std::function<bool(const Packet&)> duplicate_filter;
  // Stamp ECT on every packet of the flow: the transport above understands
  // ECN marks, so AQM queues may CE-mark instead of dropping.
  bool ecn_capable = false;
};

struct SenderStats {
  std::uint64_t app_packets = 0;
  std::uint64_t direct_sent = 0;
  std::uint64_t cloud_sent = 0;
  std::uint64_t filtered = 0;  // Packets the filter kept off the cloud path.
  std::uint64_t failover_direct_sent = 0;  // Direct copies only the failover forced.
  std::uint64_t cloud_suppressed = 0;      // Cloud copies skipped: overlay down.
};

class Sender final : public netsim::Node {
 public:
  explicit Sender(netsim::Network& net);

  NodeId id() const override { return node_id_; }

  void register_flow(FlowId flow, const SenderPolicy& policy);

  // Drops all per-flow state (policy, sequence counter). Sending on the
  // flow afterwards throws, exactly as for a never-registered flow.
  void unregister_flow(FlowId flow);

  // Sends the next packet of `flow` with a synthetic payload of
  // `payload_bytes`; returns its sequence number.
  SeqNo send(FlowId flow, std::size_t payload_bytes);

  // Sends a packet with explicit payload contents (TCP segments etc.).
  SeqNo send_payload(FlowId flow, std::vector<std::uint8_t> payload);

  void handle_packet(const PacketPtr& pkt) override;

  // Upcall for inbound packets addressed to this sender node (e.g. TCP ACKs
  // riding the reverse path). Without a handler inbound packets are
  // dropped, matching a pure one-way source.
  void set_receive_handler(std::function<void(const PacketPtr&)> handler) {
    on_receive_ = std::move(handler);
  }

  // Flips ECT stamping for an already-registered flow (used by the TCP
  // model, which registers flows through SessionManager and only then
  // knows whether its controller negotiated ECN).
  void set_flow_ecn(FlowId flow, bool on);

  // Sender-wide failover override. While the overlay is reported down,
  // every flow sends on the direct Internet path (even path-switching flows
  // whose policy disables it) and no cloud copies are made; clearing the
  // flag restores each flow's registered policy. Driven by the receiver's
  // overlay-death detection via an out-of-band control channel the
  // scenario layer models.
  void set_overlay_down(bool down) { overlay_down_ = down; }
  bool overlay_down() const { return overlay_down_; }

  const SenderStats& stats() const { return stats_; }
  SeqNo next_seq(FlowId flow) const;
  netsim::Network& network() { return net_; }

  // Packet storage pool for this sender's lane (see docs/MEMORY.md); null
  // (the default) means heap allocation. Set at build time, before traffic.
  void set_pool(PacketPool* pool) { pool_ = pool; }

 private:
  struct FlowState {
    SenderPolicy policy;
    SeqNo next_seq = 0;
  };

  SeqNo transmit(FlowId flow, FlowState& fs, std::shared_ptr<Packet> base);

  netsim::Network& net_;
  NodeId node_id_;
  PacketPool* pool_ = nullptr;
  std::unordered_map<FlowId, FlowState> flows_;
  std::function<void(const PacketPtr&)> on_receive_;
  bool overlay_down_ = false;
  SenderStats stats_;
};

}  // namespace jqos::endpoint
