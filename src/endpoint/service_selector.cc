#include "endpoint/service_selector.h"

#include <algorithm>

namespace jqos::endpoint {
namespace {

double wait_for_cloud_copy(const PathDelays& d) {
  // Pull requests wait if the sender->DC1->DC2 segment is slower than the
  // sender->receiver->DC2 segment (Section 6.1's methodology).
  return std::max(0.0, (d.delta_s_ms + d.x_ms) - (d.y_ms + d.delta_r_ms));
}

}  // namespace

double expected_delay_ms(ServiceType service, const PathDelays& d) {
  switch (service) {
    case ServiceType::kNone:
      return d.y_ms;
    case ServiceType::kForward:
      return d.x_ms + d.delta_s_ms + d.delta_r_ms;
    case ServiceType::kCache:
      return d.y_ms + 2.0 * d.delta_r_ms + wait_for_cloud_copy(d);
    case ServiceType::kCode:
      return d.y_ms + 2.0 * d.delta_r_ms + 2.0 * d.delta_r_median_ms +
             wait_for_cloud_copy(d);
  }
  return d.y_ms;
}

double relative_cost(ServiceType service, double coding_rate) {
  switch (service) {
    case ServiceType::kNone: return 0.0;
    case ServiceType::kForward: return 2.0;   // Egress at DC1 and DC2.
    case ServiceType::kCache: return 1.0;     // One copy DC1 -> DC2.
    case ServiceType::kCode: return coding_rate;
  }
  return 0.0;
}

std::vector<ServiceQuote> service_quotes(const PathDelays& d, double coding_rate) {
  std::vector<ServiceQuote> quotes;
  for (ServiceType s : {ServiceType::kNone, ServiceType::kCode, ServiceType::kCache,
                        ServiceType::kForward}) {
    quotes.push_back(ServiceQuote{s, expected_delay_ms(s, d), relative_cost(s, coding_rate)});
  }
  std::sort(quotes.begin(), quotes.end(), [](const ServiceQuote& a, const ServiceQuote& b) {
    return a.relative_cost < b.relative_cost;
  });
  return quotes;
}

ServiceQuote internet_quote(const PathDelays& d) {
  return ServiceQuote{ServiceType::kNone, expected_delay_ms(ServiceType::kNone, d), 0.0};
}

ServiceQuote select_service(const PathDelays& d, double latency_budget_ms,
                            double coding_rate) {
  // Candidates in cost order; Internet alone offers no recovery, so the
  // spectrum the framework picks from starts at coding.
  const auto quotes = service_quotes(d, coding_rate);
  const ServiceQuote* best_effort = nullptr;
  for (const ServiceQuote& q : quotes) {
    if (q.service == ServiceType::kNone) continue;
    if (q.expected_delay_ms <= latency_budget_ms) return q;
    if (best_effort == nullptr || q.expected_delay_ms < best_effort->expected_delay_ms) {
      best_effort = &q;
    }
  }
  return *best_effort;  // Nothing fits; give the fastest recovery option.
}

AdaptiveSelector::AdaptiveSelector(const PathDelays& d, double latency_budget_ms,
                                   double coding_rate, double violation_threshold,
                                   std::size_t window)
    : delays_(d),
      budget_ms_(latency_budget_ms),
      coding_rate_(coding_rate),
      violation_threshold_(violation_threshold),
      window_(window),
      current_(select_service(d, latency_budget_ms, coding_rate).service) {}

ServiceType AdaptiveSelector::next_costlier(ServiceType s) const {
  switch (s) {
    case ServiceType::kNone: return ServiceType::kCode;
    case ServiceType::kCode: return ServiceType::kCache;
    case ServiceType::kCache: return ServiceType::kForward;
    case ServiceType::kForward: return ServiceType::kForward;  // Top tier.
  }
  return ServiceType::kForward;
}

ServiceType AdaptiveSelector::report(double delivery_delay_ms, bool lost) {
  ++seen_;
  if (lost || delivery_delay_ms > budget_ms_) ++violations_;
  if (seen_ >= window_) {
    const double rate = static_cast<double>(violations_) / static_cast<double>(seen_);
    if (rate > violation_threshold_ && current_ != ServiceType::kForward) {
      current_ = next_costlier(current_);
      ++upgrades_;
    }
    seen_ = 0;
    violations_ = 0;
  }
  return current_;
}

}  // namespace jqos::endpoint
