// The J-QoS receiver: the end-point half of the reliability layer that
// logically sits between transport and network (Section 3.4, Section 5).
//
// Responsibilities:
//  * deliver direct-path packets up the stack and track per-flow sequence
//    state (gap detection);
//  * run the two-state Markov timeout to catch tail losses with no
//    subsequent packet to reveal the gap;
//  * issue NACKs to the nearby DC (DC2) and account recovery latency;
//  * buffer recent data packets so it can (a) answer cooperative-recovery
//    requests for other receivers' losses and (b) locally decode in-stream
//    coded packets sent by DC2;
//  * answer DC2's NackCheck probes (spurious-recovery guard).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/packet.h"
#include "common/rng.h"
#include "common/stats.h"
#include "endpoint/markov_detector.h"
#include "fec/coded_batch.h"
#include "netsim/network.h"

namespace jqos::endpoint {

// Bounded FIFO of sequence numbers backed by a circular vector. A deque
// would allocate/free a chunk every ~chunk worth of push/pop churn, which
// the zero-alloc steady-state guard (docs/MEMORY.md) counts; the ring grows
// amortized up to the history cap and then cycles allocation-free.
class SeqRing {
 public:
  void push_back(SeqNo s) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) % buf_.size()] = s;
    ++count_;
  }
  SeqNo front() const { return buf_[head_]; }
  void pop_front() {
    head_ = (head_ + 1) % buf_.size();
    --count_;
  }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

 private:
  void grow() {
    std::vector<SeqNo> next(buf_.empty() ? 16 : buf_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = buf_[(head_ + i) % buf_.size()];
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<SeqNo> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

// Overlay-death detection and direct-path failover (receiver side).
//
// DC2 answers every NACK one way or another -- with recovered packets,
// in-stream coded packets, or a kNackCheck when it has no coverage -- so a
// run of NACKs with no DC2-originated packet in between is a death signal.
// Path-switching flows (no direct copies) additionally watch for outright
// data silence, since all their traffic rides the overlay. Once the overlay
// is declared down the receiver notifies its overlay handler (the scenario
// wires this to the sender's direct-path override), suppresses regular
// NACKs, and probes DC2 with capped exponential backoff; any
// overlay-originated arrival re-engages immediately.
struct FailoverParams {
  bool enabled = false;
  // Declare the overlay dead after this many consecutive unanswered NACKs.
  int max_unanswered_nacks = 3;
  // The NACK counter alone is not enough: a loss burst can emit several
  // NACKs within one RTT, before the first recovery reply has had time to
  // return. The counter therefore only declares death once the overlay has
  // also been signal-silent (no DC2-originated packet, and no overlay data
  // for path-switching flows) for at least this long.
  SimDuration nack_silence = msec(200);
  // Path-switching flows: data itself rides the overlay, so every arriving
  // data packet (while up) counts as an overlay life sign, and the overlay
  // is declared dead when NO sign at all -- data or DC2 control traffic --
  // has been heard for `data_silence` while some flow is live. Receiver-wide
  // on purpose: a single finished flow going quiet is normal; total silence
  // across every concurrent flow is not.
  bool overlay_carries_data = false;
  SimDuration data_silence = msec(500);
  // Probe backoff while down: base, doubling to cap.
  SimDuration probe_base = msec(200);
  SimDuration probe_cap = sec(2);
};

struct ReceiverConfig {
  // DC the receiver recovers through (its nearby DC2); kInvalidNode
  // disables recovery entirely (plain Internet receiver).
  NodeId dc2 = kInvalidNode;
  // Service NACKs are addressed to at DC2 (kCode -> CR-WAN recovery,
  // kCache -> cache pulls); set by the service-selection decision.
  ServiceType recovery_service = ServiceType::kCode;
  // Initial direct-path RTT estimate for the long timeout.
  SimDuration rtt_estimate = msec(100);
  MarkovParams markov;
  // Ablation D3: false replaces the two-state model with a single fixed
  // timeout of `single_timeout` (Section 6.4 reports 5x more NACKs).
  bool use_markov = true;
  SimDuration single_timeout = msec(25);
  // Per-flow history buffer (cooperative responses / in-stream decode).
  std::size_t buffer_packets = 1024;
  // A missing packet not recovered within this span is declared lost (the
  // paper counts recovery beyond one RTT as a loss); 0 means one RTT.
  SimDuration recovery_give_up = 0;
  // Re-NACK interval for still-missing packets (retries lost NACKs).
  SimDuration renack_interval = msec(100);
  // Timer management: stop the per-flow timer after this much inactivity.
  SimDuration idle_stop = sec(2);
  // How long a cooperative request for a not-yet-received packet is held
  // before being dropped (covers direct-path delay spread across peers).
  SimDuration coop_defer_window = msec(150);
  // Straggler model for cooperative-recovery responses: with probability
  // `coop_slow_prob` a response is delayed by a uniform draw from
  // [coop_slow_min, coop_slow_max] (loaded hosts, scheduling jitter --
  // the behaviour the extra cross-coded packets protect against).
  double coop_slow_prob = 0.0;
  SimDuration coop_slow_min = msec(120);
  SimDuration coop_slow_max = msec(450);
  // Record per-packet delay Samples (recovery_delay_ms / direct_delay_ms).
  // These grow one double per delivered packet -- fine for figure runs,
  // unbounded for million-session soaks, which turn them off and rely on
  // O(1)-memory sketches instead (see workload::run_churn).
  bool record_delay_samples = true;
  std::uint64_t rng_seed = 1;
  // Overlay-death detection; disabled by default (zero events, zero extra
  // RNG draws, bit-identical traces when off).
  FailoverParams failover;
};

// One record per packet the application layer learns about.
struct DeliveryRecord {
  FlowId flow = 0;
  SeqNo seq = 0;
  SimTime sent_at = 0;       // 0 when unknown (recovered packets).
  SimTime delivered_at = 0;
  bool recovered = false;    // Arrived via J-QoS recovery, not direct path.
  bool lost = false;         // Gave up: never delivered.
  // The direct-path copy arrived after the packet had already been
  // delivered (usually after a recovery raced a delay spike): the packet
  // was late, not lost. Consumers use this to reclassify.
  bool late_direct = false;
  SimTime detected_missing_at = 0;  // When the gap/timer fired (if ever).
};

struct ReceiverStats {
  std::uint64_t delivered_direct = 0;
  std::uint64_t delivered_recovered = 0;
  std::uint64_t self_decoded = 0;       // In-stream decodes at the receiver.
  std::uint64_t duplicates = 0;
  std::uint64_t losses_detected = 0;
  std::uint64_t losses_given_up = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t tail_nacks_sent = 0;
  std::uint64_t nack_confirms_sent = 0;
  std::uint64_t coop_responses_sent = 0;
  std::uint64_t coop_misses = 0;        // Asked for a packet we also lack.
  std::uint64_t coop_deferred = 0;      // Answered once the packet arrived.
  std::uint64_t spurious_timeouts = 0;  // Timer fired, nothing was missing.
  std::uint64_t suspected_tail_dropped = 0;  // Timer suspicions never confirmed.
  std::uint64_t failovers = 0;          // Overlay declared dead.
  std::uint64_t reengages = 0;          // Overlay declared back up.
  std::uint64_t probes_sent = 0;        // Backed-off overlay probes.
  std::uint64_t nacks_suppressed = 0;   // NACKs skipped while the overlay was down.
};

class Receiver final : public netsim::Node {
 public:
  // `pkt` is the delivered packet (payload for the upper layer); nullptr
  // for records that report a given-up loss.
  using DeliverFn = std::function<void(const DeliveryRecord&, const PacketPtr& pkt)>;

  Receiver(netsim::Network& net, const ReceiverConfig& config, DeliverFn on_delivery = {});

  NodeId id() const override { return node_id_; }

  // Replaces the delivery upcall (used when the upper layer is constructed
  // after the receiver, e.g. the TCP model).
  void set_delivery_handler(DeliverFn fn) { on_delivery_ = std::move(fn); }

  // Starts tracking a flow (first expected sequence number is 0).
  void expect_flow(FlowId flow);

  // Stops tracking a flow and reclaims ALL of its state (gap map, reorder
  // buffer, history buffer, deferred coop requests, in-stream coded
  // batches, detector, timer). Packets of the flow that are still in
  // flight arrive as unknown-flow packets, which every handler already
  // ignores; a cooperative request for a forgotten flow counts as a miss.
  // Session churn depends on this being a complete teardown: per-flow
  // memory must be O(live flows), not O(flows ever seen).
  void forget_flow(FlowId flow);

  void handle_packet(const PacketPtr& pkt) override;

  const ReceiverStats& stats() const { return stats_; }
  // Recovery latency samples (detection -> recovered delivery), in ms.
  const Samples& recovery_delay_ms() const { return recovery_delay_ms_; }
  // One-way delivery delay samples for direct-path packets, in ms.
  const Samples& direct_delay_ms() const { return direct_delay_ms_; }

  // Estimated RTT feed (e.g. from the scenario builder's path data).
  void set_rtt_estimate(SimDuration rtt);

  // Packet storage pool for this receiver's lane (see docs/MEMORY.md); null
  // (the default) means heap allocation. Set at build time, before traffic.
  void set_pool(PacketPool* pool) { pool_ = pool; }

  // Overlay up/down transitions (failover layer). The scenario wires this
  // to the sender's set_overlay_down via a modeled control-channel delay.
  using OverlayEventFn = std::function<void(bool up, SimTime at)>;
  void set_overlay_handler(OverlayEventFn fn) { on_overlay_ = std::move(fn); }
  bool overlay_up() const { return overlay_up_; }

 private:
  struct MissingInfo {
    SimTime detected_at = 0;
    SimTime last_nack_at = 0;
    int nack_count = 0;
  };

  struct FlowState {
    SeqNo next_expected = 0;
    // Contiguity edge: all seq < next_expected are delivered, recovered, or
    // given up. Gaps above the edge live in `missing`; out-of-order
    // arrivals above the edge in `arrived_ahead`.
    std::map<SeqNo, MissingInfo> missing;
    std::map<SeqNo, bool> arrived_ahead;  // value: was it `recovered`?
    // Recent packets for coop responses / self-decode, FIFO-bounded.
    std::unordered_map<SeqNo, PacketPtr> buffer;
    SeqRing buffer_order;
    // Cooperative requests for packets that have not arrived yet (the
    // requester's detection raced our slower direct path): answered as
    // soon as the packet lands, dropped after a short window.
    std::map<SeqNo, std::pair<PacketPtr, SimTime>> deferred_coop;
    // In-stream coded packets by batch, kept until decode or eviction.
    std::unordered_map<std::uint32_t, std::vector<PacketPtr>> in_coded;
    std::deque<std::uint32_t> in_coded_order;
    MarkovDetector detector;
    netsim::EventId timer = 0;
    bool timer_armed = false;
    std::uint64_t timer_gen = 0;
    SimTime last_arrival = -1;   // Last direct-path arrival (Markov input).
    SimTime last_activity = -1;  // Any delivery, incl. recoveries: keeps the
                                 // timer alive through outages so tail
                                 // recovery continues wave after wave.
    // One past the highest sequence number with delivery evidence; holes at
    // or above this may be timer suspicions about packets that were never
    // sent (burst boundary), so they are dropped silently on give-up.
    SeqNo evidence_horizon = 0;

    explicit FlowState(const MarkovDetector& d) : detector(d) {}
  };

  void on_data(const PacketPtr& pkt, bool recovered);
  void on_in_coded(const PacketPtr& pkt);
  void on_coop_request(const PacketPtr& pkt);
  void on_nack_check(const PacketPtr& pkt);
  void on_timer(FlowId flow, std::uint64_t gen);

  // Failover machinery; all no-ops unless config_.failover.enabled.
  void note_overlay_evidence();
  void declare_overlay_down();
  void declare_overlay_up();
  void arm_probe();
  void on_probe(std::uint64_t gen);
  void send_probe();
  bool any_active_flow() const;

  void note_missing(FlowState& fs, FlowId flow, SeqNo from, SeqNo to_exclusive);
  void send_nack(FlowId flow, FlowState& fs, const std::vector<SeqNo>& missing, bool tail,
                 bool probe = false);
  void deliver(FlowId flow, SeqNo seq, const PacketPtr& pkt, bool recovered,
               SimTime detected_at);
  void advance_contiguity(FlowState& fs, FlowId flow);
  void remember(FlowState& fs, const PacketPtr& pkt);
  void try_self_decode(FlowId flow, FlowState& fs, std::uint32_t batch_id);
  void give_up_stale(FlowId flow, FlowState& fs);
  void arm_timer(FlowId flow, FlowState& fs, SimDuration timeout);
  bool is_missing_or_future(const FlowState& fs, SeqNo seq) const;
  SimDuration give_up_span(const FlowState& fs) const;

  netsim::Network& net_;
  NodeId node_id_;
  ReceiverConfig config_;
  DeliverFn on_delivery_;
  Rng rng_;
  PacketPool* pool_ = nullptr;
  // Failover state (see FailoverParams). The probe timer follows the same
  // generation-guard pattern as the per-flow timers.
  OverlayEventFn on_overlay_;
  bool overlay_up_ = true;
  // Latest overlay life sign: DC2-originated control traffic, or (for
  // path-switching receivers, while up) any data arrival. -1 = never.
  SimTime last_overlay_signal_ = -1;
  int unanswered_nacks_ = 0;
  bool probe_armed_ = false;
  netsim::EventId probe_timer_ = 0;
  std::uint64_t probe_gen_ = 0;
  SimDuration probe_backoff_ = 0;
  std::unordered_map<FlowId, FlowState> flows_;
  ReceiverStats stats_;
  Samples recovery_delay_ms_;
  Samples direct_delay_ms_;
  // Reused scratch for in-stream self-decodes (fec::decode_batch arena
  // overload): sized by the largest batch seen, recycled across decodes.
  fec::ShardArena decode_arena_;
  // Per-call scratch recycled across packets (receivers are single-lane, so
  // no handler runs reentrantly). nack_scratch_ keeps the missing vector and
  // serialization capacity warm; the others replace per-call locals.
  NackInfo nack_scratch_;
  std::vector<SeqNo> gap_scratch_;    // note_missing: freshly detected holes
  std::vector<SeqNo> stale_scratch_;  // on_timer: holes due for re-NACK
  std::vector<std::pair<std::size_t, std::span<const std::uint8_t>>> present_scratch_;
  std::vector<std::pair<std::size_t, PacketKey>> wanted_scratch_;
};

}  // namespace jqos::endpoint
