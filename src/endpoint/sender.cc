#include "endpoint/sender.h"

#include <stdexcept>

namespace jqos::endpoint {

Sender::Sender(netsim::Network& net) : net_(net), node_id_(net.allocate_id()) {
  net_.attach(*this);
}

void Sender::register_flow(FlowId flow, const SenderPolicy& policy) {
  FlowState fs;
  fs.policy = policy;
  // Default the cloud landing point per service semantics.
  if (fs.policy.cloud_final_dst == kInvalidNode) {
    switch (fs.policy.service) {
      case ServiceType::kForward: fs.policy.cloud_final_dst = policy.receiver; break;
      case ServiceType::kCache:
      case ServiceType::kCode:
      case ServiceType::kNone: fs.policy.cloud_final_dst = policy.dc1; break;
    }
  }
  flows_[flow] = std::move(fs);
}

void Sender::unregister_flow(FlowId flow) { flows_.erase(flow); }

SeqNo Sender::send(FlowId flow, std::size_t payload_bytes) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) throw std::invalid_argument("Sender: unregistered flow");
  // Fill the synthetic payload directly into (pooled) packet storage instead
  // of building a scratch vector per call.
  auto base = alloc_packet(pool_);
  base->payload.assign(payload_bytes, 0);
  return transmit(flow, it->second, std::move(base));
}

SeqNo Sender::send_payload(FlowId flow, std::vector<std::uint8_t> payload) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) throw std::invalid_argument("Sender: unregistered flow");
  auto base = alloc_packet(pool_);
  base->payload = std::move(payload);
  return transmit(flow, it->second, std::move(base));
}

SeqNo Sender::transmit(FlowId flow, FlowState& fs, std::shared_ptr<Packet> base) {
  const SeqNo seq = fs.next_seq++;
  const SimTime now = net_.sim().now();
  ++stats_.app_packets;

  base->type = PacketType::kData;
  base->flow = flow;
  base->seq = seq;
  base->src = node_id_;
  base->sent_at = now;
  base->ecn_capable = fs.policy.ecn_capable;

  if ((fs.policy.send_direct || overlay_down_) && fs.policy.receiver != kInvalidNode) {
    auto direct = alloc_packet_copy(pool_, *base);
    direct->service = ServiceType::kNone;
    direct->dst = fs.policy.receiver;
    direct->final_dst = fs.policy.receiver;
    ++stats_.direct_sent;
    if (!fs.policy.send_direct) ++stats_.failover_direct_sent;
    net_.send(node_id_, direct);
  }

  if (overlay_down_ && fs.policy.duplicate_to_cloud && fs.policy.dc1 != kInvalidNode) {
    // The overlay is unreachable; feeding it copies would only load the
    // access link for packets a dead DC will black-hole.
    ++stats_.cloud_suppressed;
  } else if (fs.policy.duplicate_to_cloud && fs.policy.dc1 != kInvalidNode) {
    if (fs.policy.duplicate_filter && !fs.policy.duplicate_filter(*base)) {
      ++stats_.filtered;
    } else {
      auto cloud = alloc_packet_copy(pool_, *base);
      cloud->service = fs.policy.service;
      cloud->dst = fs.policy.dc1;
      cloud->final_dst = fs.policy.cloud_final_dst;
      ++stats_.cloud_sent;
      net_.send(node_id_, cloud);
    }
  }
  return seq;
}

void Sender::set_flow_ecn(FlowId flow, bool on) {
  auto it = flows_.find(flow);
  if (it != flows_.end()) it->second.policy.ecn_capable = on;
}

void Sender::handle_packet(const PacketPtr& pkt) {
  if (on_receive_) on_receive_(pkt);
}

SeqNo Sender::next_seq(FlowId flow) const {
  auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.next_seq;
}

}  // namespace jqos::endpoint
