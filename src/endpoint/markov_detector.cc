#include "endpoint/markov_detector.h"

#include <algorithm>

namespace jqos::endpoint {

MarkovDetector::MarkovDetector(const MarkovParams& params, SimDuration rtt_estimate)
    : params_(params), rtt_(rtt_estimate), small_(params.small_timeout) {}

SimDuration MarkovDetector::long_timeout() const {
  const auto scaled =
      static_cast<SimDuration>(static_cast<double>(rtt_) * params_.long_rtt_multiplier);
  return std::max(scaled, params_.min_long_timeout);
}

SimDuration MarkovDetector::current_timeout() const {
  return state_ == State::kShort ? small_ : long_timeout();
}

SimDuration MarkovDetector::on_arrival(SimTime now) {
  if (last_arrival_ >= 0) {
    const SimDuration gap = now - last_arrival_;
    if (params_.adaptive) {
      // Learn the within-burst inter-arrival from any gap clearly below the
      // session/burst boundary scale (a fraction of the RTT), so low-rate
      // streams (e.g. 40 ms CBR spacing) still train the small timeout.
      const SimDuration learn_cutoff = (2 * long_timeout()) / 3;
      if (gap <= learn_cutoff) {
        if (!have_ewma_) {
          ewma_gap_ = static_cast<double>(gap);
          have_ewma_ = true;
        } else {
          ewma_gap_ = (1.0 - params_.ewma_alpha) * ewma_gap_ +
                      params_.ewma_alpha * static_cast<double>(gap);
        }
        // The learned small timeout may exceed the configured default for
        // slow streams, but must stay well below the long timeout to keep
        // the two states meaningfully apart.
        const auto learned = static_cast<SimDuration>(params_.ewma_multiplier * ewma_gap_);
        const SimDuration upper = std::max(params_.small_timeout, learn_cutoff);
        small_ = std::clamp(learned, params_.min_small_timeout, upper);
      }
    }
    const auto burst_gap =
        static_cast<SimDuration>(params_.burst_factor * static_cast<double>(small_));
    state_ = gap <= burst_gap ? State::kShort : State::kLong;
  }
  last_arrival_ = now;
  return current_timeout();
}

SimDuration MarkovDetector::on_timeout() {
  // "It remains in this state until the small timeout expires and switches
  // immediately to the long timeout value after sending a NACK."
  state_ = State::kLong;
  return current_timeout();
}

void MarkovDetector::update_rtt(SimDuration rtt) {
  if (rtt > 0) rtt_ = rtt;
}

}  // namespace jqos::endpoint
