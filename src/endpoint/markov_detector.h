// Two-state Markov timeout model for receiver-driven loss detection
// (Section 3.4).
//
// The receiver cannot use sender-style RTO timers (it does not know when
// packets were sent), so it learns packet arrival patterns instead: a SHORT
// state with a small timeout while packets arrive in a burst, and a LONG
// state with an RTT-scale timeout across bursts / application sessions.
// The transition rules follow the paper: start LONG; short inter-arrivals
// move to SHORT; a SHORT-state expiry emits a NACK and drops immediately
// back to LONG. The small timeout value is learned from observed
// intra-burst inter-arrival times (EWMA), defaulting to the prototype's
// 25 ms.
#pragma once

#include "common/sim_time.h"

namespace jqos::endpoint {

struct MarkovParams {
  // The prototype's fixed small timer (Section 5). When `adaptive` is set
  // this is the initial value and upper bound.
  SimDuration small_timeout = msec(25);
  // Long timeout = max(rtt * long_rtt_multiplier, min_long_timeout).
  double long_rtt_multiplier = 1.0;
  SimDuration min_long_timeout = msec(50);
  // Inter-arrivals below `burst_factor * small_timeout` count as "within a
  // burst" and flip the detector to SHORT.
  double burst_factor = 1.0;
  // Learn the small timeout as clamp(ewma_multiplier * EWMA(intra-burst
  // inter-arrival), min_small_timeout, small_timeout).
  bool adaptive = true;
  double ewma_alpha = 0.2;
  double ewma_multiplier = 3.0;
  SimDuration min_small_timeout = msec(2);
};

class MarkovDetector {
 public:
  enum class State { kLong, kShort };

  MarkovDetector(const MarkovParams& params, SimDuration rtt_estimate);

  // Records a direct-path packet arrival; returns the timeout to arm for
  // the *next* expected packet.
  SimDuration on_arrival(SimTime now);

  // Records that the armed timer expired (caller sends a NACK when in
  // SHORT state); transitions SHORT -> LONG per the model and returns the
  // timeout to arm next.
  SimDuration on_timeout();

  // Updates the RTT estimate the long timeout derives from.
  void update_rtt(SimDuration rtt);

  State state() const { return state_; }
  SimDuration current_timeout() const;
  SimDuration small_timeout() const { return small_; }
  SimDuration long_timeout() const;

 private:
  MarkovParams params_;
  SimDuration rtt_;
  State state_ = State::kLong;
  SimTime last_arrival_ = -1;
  SimDuration small_;
  double ewma_gap_ = 0.0;
  bool have_ewma_ = false;
};

}  // namespace jqos::endpoint
