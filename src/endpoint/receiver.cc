#include "endpoint/receiver.h"

#include <algorithm>

#include "common/logging.h"
#include "fec/coded_batch.h"

namespace jqos::endpoint {

Receiver::Receiver(netsim::Network& net, const ReceiverConfig& config, DeliverFn on_delivery)
    : net_(net),
      node_id_(net.allocate_id()),
      config_(config),
      on_delivery_(std::move(on_delivery)),
      // The seed is used exactly as given: node ids are allocation-order
      // artifacts, and mixing them in would make the straggler stream depend
      // on how many nodes happen to precede this receiver in its Network --
      // breaking the sharded runner's composition-invariance. Callers that
      // want uncorrelated receivers pass distinct seeds (the scenario layer
      // derives one per path via Rng::derive).
      rng_(config.rng_seed) {
  net_.attach(*this);
}

void Receiver::expect_flow(FlowId flow) {
  auto [it, inserted] = flows_.try_emplace(flow, MarkovDetector(config_.markov, config_.rtt_estimate));
  if (inserted && config_.dc2 != kInvalidNode) {
    // "Initially, the receiver starts off with the long timeout value"
    // (Section 3.4): the flow is expected, so even the very first packet
    // (e.g. a SYN-ACK) is protected by the timer.
    arm_timer(flow, it->second, it->second.detector.long_timeout());
  }
}

void Receiver::forget_flow(FlowId flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  FlowState& fs = it->second;
  if (fs.timer_armed) {
    net_.sim().cancel(fs.timer);
    fs.timer_armed = false;
  }
  // Bump the generation so an already-dispatched timer closure that raced
  // the cancel finds a stale generation even if the flow id is reused.
  ++fs.timer_gen;
  flows_.erase(it);
}

void Receiver::set_rtt_estimate(SimDuration rtt) {
  config_.rtt_estimate = rtt;
  for (auto& [flow, fs] : flows_) fs.detector.update_rtt(rtt);
}

void Receiver::handle_packet(const PacketPtr& pkt) {
  if (config_.failover.enabled) {
    // Any DC2-originated packet is proof of overlay life: recoveries,
    // in-stream coded packets, cooperative solicitations, NackChecks. For
    // path-switching receivers, data packets are overlay traffic too --
    // but only while up; once failed over, kData rides the direct path and
    // says nothing about the overlay.
    switch (pkt->type) {
      case PacketType::kRecovered:
      case PacketType::kInCoded:
      case PacketType::kCoopRequest:
      case PacketType::kNackCheck:
        note_overlay_evidence();
        break;
      case PacketType::kData:
        if (config_.failover.overlay_carries_data && overlay_up_) {
          note_overlay_evidence();
        }
        break;
      default:
        break;
    }
  }
  switch (pkt->type) {
    case PacketType::kData:
      on_data(pkt, /*recovered=*/false);
      return;
    case PacketType::kRecovered:
      on_data(pkt, /*recovered=*/true);
      return;
    case PacketType::kInCoded:
      on_in_coded(pkt);
      return;
    case PacketType::kCoopRequest:
      on_coop_request(pkt);
      return;
    case PacketType::kNackCheck:
      on_nack_check(pkt);
      return;
    default:
      return;  // Cross-coded packets etc. are DC-side only.
  }
}

void Receiver::on_data(const PacketPtr& pkt, bool recovered) {
  auto it = flows_.find(pkt->flow);
  if (it == flows_.end()) return;  // Not a flow of ours.
  FlowState& fs = it->second;
  const SimTime now = net_.sim().now();
  const SeqNo seq = pkt->seq;

  if (seq >= fs.evidence_horizon) fs.evidence_horizon = seq + 1;
  auto miss = fs.missing.find(seq);
  if (miss != fs.missing.end()) {
    // Fills a known hole: either the J-QoS recovery or a straggler direct
    // arrival that outlived the gap detection.
    const SimTime detected = miss->second.detected_at;
    fs.missing.erase(miss);
    // At the contiguity edge, advance directly: inserting into
    // arrived_ahead only for advance_contiguity to erase it again would be
    // a map-node allocation per in-order packet.
    if (seq == fs.next_expected) {
      ++fs.next_expected;
    } else {
      fs.arrived_ahead[seq] = recovered;
    }
    deliver(pkt->flow, seq, pkt, recovered, detected);
    remember(fs, pkt);
    advance_contiguity(fs, pkt->flow);
  } else if (seq < fs.next_expected || fs.arrived_ahead.count(seq) != 0) {
    // Already delivered (e.g. both the direct copy and the recovered copy
    // arrived, or a multicast duplicate).
    ++stats_.duplicates;
    if (!recovered && on_delivery_) {
      // Tell the upper layer the direct copy did arrive eventually: a
      // recovery that raced a delay spike was not a real path loss.
      DeliveryRecord rec;
      rec.flow = pkt->flow;
      rec.seq = seq;
      rec.sent_at = pkt->sent_at;
      rec.delivered_at = now;
      rec.late_direct = true;
      on_delivery_(rec, pkt);
    }
    return;
  } else {
    if (seq > fs.next_expected) {
      // Gap: everything in [next_expected, seq) is missing as of now.
      note_missing(fs, pkt->flow, fs.next_expected, seq);
      fs.arrived_ahead[seq] = recovered;
    } else {
      // In-order fast path (see above): no arrived_ahead churn.
      ++fs.next_expected;
    }
    deliver(pkt->flow, seq, pkt, recovered, 0);
    remember(fs, pkt);
    advance_contiguity(fs, pkt->flow);
  }

  // Direct-path arrivals feed the Markov detector and (re)arm the timer;
  // recovered packets say nothing about the direct path, but they do keep
  // the flow (and its timer) alive so outage recovery continues.
  fs.last_activity = now;
  if (config_.failover.enabled && !overlay_up_ && !probe_armed_) {
    // Traffic-driven probe restart: the probe chain stops when all flows go
    // idle (so the event queue can drain); fresh arrivals revive it.
    arm_probe();
  }
  if (!recovered) {
    fs.last_arrival = now;
    const SimDuration timeout =
        config_.use_markov ? fs.detector.on_arrival(now) : config_.single_timeout;
    arm_timer(pkt->flow, fs, timeout);
  } else if (!fs.timer_armed) {
    arm_timer(pkt->flow, fs,
              config_.use_markov ? fs.detector.current_timeout() : config_.single_timeout);
  }
}

void Receiver::note_missing(FlowState& fs, FlowId flow, SeqNo from, SeqNo to_exclusive) {
  const SimTime now = net_.sim().now();
  gap_scratch_.clear();
  for (SeqNo s = from; s < to_exclusive; ++s) {
    if (fs.missing.count(s) != 0 || fs.arrived_ahead.count(s) != 0) continue;
    fs.missing[s] = MissingInfo{now, now, 1};
    gap_scratch_.push_back(s);
    ++stats_.losses_detected;
  }
  if (!gap_scratch_.empty()) send_nack(flow, fs, gap_scratch_, /*tail=*/false);
}

void Receiver::send_nack(FlowId flow, FlowState& fs, const std::vector<SeqNo>& missing,
                         bool tail, bool probe) {
  if (config_.dc2 == kInvalidNode) return;
  if (!overlay_up_ && !probe) {
    // Overlay declared dead: regular NACKs would just feed a black hole.
    // The probe path (backed-off, one flow) is the only NACK traffic.
    ++stats_.nacks_suppressed;
    return;
  }
  nack_scratch_.tail = tail;
  // Tail probes ask DC2 to scan forward from the frontier of what this
  // receiver has evidence for; everything below it is tracked explicitly.
  nack_scratch_.expected = tail ? fs.evidence_horizon : fs.next_expected;
  nack_scratch_.missing.assign(missing.begin(), missing.end());
  // Probes always address the coding service: even when the flow's recovery
  // runs elsewhere (or nowhere -- path switching), a live RecoveryService
  // answers an uncovered-key NACK with a kNackCheck, which is evidence.
  auto nack = make_packet(pool_, PacketType::kNack,
                          probe ? ServiceType::kCode : config_.recovery_service,
                          flow, missing.empty() ? fs.next_expected : missing.front(),
                          node_id_, config_.dc2, net_.sim().now());
  nack_scratch_.serialize_into(nack->payload);
  ++stats_.nacks_sent;
  if (tail) ++stats_.tail_nacks_sent;
  net_.send(node_id_, nack);
  if (config_.failover.enabled && !probe && overlay_up_) {
    ++unanswered_nacks_;
    // First NACK ever starts the expectation clock: from here on the
    // overlay owes us a reply, so prolonged silence becomes meaningful
    // even if DC2 never showed a sign of life.
    if (last_overlay_signal_ < 0) last_overlay_signal_ = net_.sim().now();
    const bool silent = net_.sim().now() - last_overlay_signal_ >=
                        config_.failover.nack_silence;
    if (silent && unanswered_nacks_ >= config_.failover.max_unanswered_nacks) {
      declare_overlay_down();
    }
  }
}

void Receiver::deliver(FlowId flow, SeqNo seq, const PacketPtr& pkt, bool recovered,
                       SimTime detected_at) {
  const SimTime now = net_.sim().now();
  DeliveryRecord rec;
  rec.flow = flow;
  rec.seq = seq;
  rec.sent_at = pkt->sent_at;
  rec.delivered_at = now;
  rec.recovered = recovered;
  rec.detected_missing_at = detected_at;
  if (recovered) {
    ++stats_.delivered_recovered;
    if (detected_at > 0 && config_.record_delay_samples) {
      recovery_delay_ms_.add(to_ms(now - detected_at));
    }
  } else {
    ++stats_.delivered_direct;
    if (pkt->sent_at > 0 && config_.record_delay_samples) {
      direct_delay_ms_.add(to_ms(now - pkt->sent_at));
    }
  }
  if (on_delivery_) on_delivery_(rec, pkt);
}

void Receiver::advance_contiguity(FlowState& fs, FlowId flow) {
  (void)flow;
  while (true) {
    auto it = fs.arrived_ahead.find(fs.next_expected);
    if (it == fs.arrived_ahead.end()) break;
    fs.arrived_ahead.erase(it);
    ++fs.next_expected;
  }
}

void Receiver::remember(FlowState& fs, const PacketPtr& pkt) {
  // A deferred cooperative request may have been waiting for this packet.
  auto dit = fs.deferred_coop.find(pkt->seq);
  if (dit != fs.deferred_coop.end()) {
    const PacketPtr request = dit->second.first;
    const SimTime deadline = dit->second.second;
    fs.deferred_coop.erase(dit);
    if (net_.sim().now() <= deadline) {
      ++stats_.coop_deferred;
      auto resp = make_packet(pool_, PacketType::kCoopResponse, ServiceType::kCode,
                              request->flow, request->seq, node_id_, request->src,
                              net_.sim().now());
      resp->meta = request->meta;
      resp->payload = pkt->payload;
      ++stats_.coop_responses_sent;
      net_.send(node_id_, resp);
    }
  }
  // Opportunistic pruning of expired deferred requests.
  if (fs.deferred_coop.size() > 64) {
    for (auto itd = fs.deferred_coop.begin(); itd != fs.deferred_coop.end();) {
      if (itd->second.second < net_.sim().now()) {
        ++stats_.coop_misses;
        itd = fs.deferred_coop.erase(itd);
      } else {
        ++itd;
      }
    }
  }
  if (fs.buffer.count(pkt->seq) == 0) {
    if (config_.buffer_packets > 0 && fs.buffer_order.size() >= config_.buffer_packets) {
      // At capacity: recycle the evicted entry's map node (extract +
      // reinsert) so steady-state history churn never touches the
      // allocator. The FIFO ring keeps eviction order.
      auto node = fs.buffer.extract(fs.buffer_order.front());
      fs.buffer_order.pop_front();
      node.key() = pkt->seq;
      node.mapped() = pkt;
      fs.buffer.insert(std::move(node));
    } else {
      fs.buffer.emplace(pkt->seq, pkt);
    }
    fs.buffer_order.push_back(pkt->seq);
  }
}

void Receiver::on_in_coded(const PacketPtr& pkt) {
  if (!pkt->meta || pkt->meta->covered.empty()) return;
  const FlowId flow = pkt->meta->covered.front().flow;
  auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  FlowState& fs = it->second;
  const std::uint32_t batch_id = pkt->meta->batch_id;
  auto [bit, inserted] = fs.in_coded.try_emplace(batch_id);
  bit->second.push_back(pkt);
  if (inserted) {
    fs.in_coded_order.push_back(batch_id);
    while (fs.in_coded_order.size() > 64) {
      fs.in_coded.erase(fs.in_coded_order.front());
      fs.in_coded_order.pop_front();
    }
  }
  try_self_decode(flow, fs, batch_id);
}

void Receiver::try_self_decode(FlowId flow, FlowState& fs, std::uint32_t batch_id) {
  auto bit = fs.in_coded.find(batch_id);
  if (bit == fs.in_coded.end() || bit->second.empty()) return;
  const CodedMeta& meta = *bit->second.front()->meta;

  present_scratch_.clear();
  wanted_scratch_.clear();
  for (std::size_t pos = 0; pos < meta.covered.size(); ++pos) {
    const PacketKey& key = meta.covered[pos];
    auto buf = fs.buffer.find(key.seq);
    if (buf != fs.buffer.end()) {
      present_scratch_.emplace_back(pos, std::span<const std::uint8_t>(buf->second->payload));
    } else if (fs.missing.count(key.seq) != 0) {
      wanted_scratch_.emplace_back(pos, key);
    }
  }
  if (wanted_scratch_.empty()) return;  // Nothing we still need from this batch.

  auto recovered = fec::decode_batch(decode_arena_, meta, present_scratch_, bit->second);
  if (!recovered) return;  // Not enough symbols yet; keep the coded packets.

  for (auto& rp : *recovered) {
    auto miss = fs.missing.find(rp.key.seq);
    if (miss == fs.missing.end()) continue;
    const SimTime detected = miss->second.detected_at;
    fs.missing.erase(miss);
    ++stats_.self_decoded;
    auto packet = alloc_packet(pool_);
    packet->type = PacketType::kRecovered;
    packet->flow = rp.key.flow;
    packet->seq = rp.key.seq;
    packet->payload = std::move(rp.payload);
    if (rp.key.seq >= fs.next_expected) fs.arrived_ahead[rp.key.seq] = true;
    deliver(flow, rp.key.seq, packet, /*recovered=*/true, detected);
    remember(fs, packet);
  }
  advance_contiguity(fs, flow);
  fs.in_coded.erase(batch_id);
  std::erase(fs.in_coded_order, batch_id);
}

void Receiver::on_coop_request(const PacketPtr& pkt) {
  auto it = flows_.find(pkt->flow);
  if (it == flows_.end()) {
    ++stats_.coop_misses;
    return;
  }
  FlowState& fs = it->second;
  auto buf = fs.buffer.find(pkt->seq);
  if (buf == fs.buffer.end()) {
    if (pkt->seq >= fs.evidence_horizon) {
      // Not lost -- just not here yet (the requester's path is faster).
      // Hold the request and answer on arrival.
      fs.deferred_coop[pkt->seq] = {pkt, net_.sim().now() + config_.coop_defer_window};
      return;
    }
    ++stats_.coop_misses;  // We lost it too; the coded packets must cover.
    return;
  }
  auto resp = make_packet(pool_, PacketType::kCoopResponse, ServiceType::kCode,
                          pkt->flow, pkt->seq, node_id_, pkt->src, net_.sim().now());
  resp->meta = pkt->meta;  // Echo the batch id back.
  resp->payload = buf->second->payload;
  ++stats_.coop_responses_sent;
  if (config_.coop_slow_prob > 0.0 && rng_.bernoulli(config_.coop_slow_prob)) {
    // Straggler: the host is busy; the response leaves late.
    const SimDuration delay =
        rng_.uniform_int(config_.coop_slow_min, config_.coop_slow_max);
    net_.sim().after(delay, [this, resp] { net_.send(node_id_, resp); });
    return;
  }
  net_.send(node_id_, resp);
}

void Receiver::on_nack_check(const PacketPtr& pkt) {
  auto it = flows_.find(pkt->flow);
  if (it == flows_.end()) return;
  FlowState& fs = it->second;
  if (!is_missing_or_future(fs, pkt->seq)) return;  // Spurious; stay silent.
  nack_scratch_.tail = false;
  nack_scratch_.expected = fs.next_expected;
  nack_scratch_.missing.assign(1, pkt->seq);
  auto confirm = make_packet(pool_, PacketType::kNackConfirm, config_.recovery_service,
                             pkt->flow, pkt->seq, node_id_, pkt->src, net_.sim().now());
  nack_scratch_.serialize_into(confirm->payload);
  ++stats_.nack_confirms_sent;
  net_.send(node_id_, confirm);
}

bool Receiver::is_missing_or_future(const FlowState& fs, SeqNo seq) const {
  if (fs.missing.count(seq) != 0) return true;
  return seq >= fs.next_expected && fs.arrived_ahead.count(seq) == 0;
}

SimDuration Receiver::give_up_span(const FlowState& fs) const {
  (void)fs;
  return config_.recovery_give_up > 0 ? config_.recovery_give_up : config_.rtt_estimate;
}

void Receiver::give_up_stale(FlowId flow, FlowState& fs) {
  const SimTime now = net_.sim().now();
  const SimDuration span = give_up_span(fs);
  for (auto it = fs.missing.begin(); it != fs.missing.end();) {
    if (now - it->second.detected_at >= span) {
      if (it->first >= fs.evidence_horizon) {
        // A timer suspicion with no later delivery confirming the packet
        // ever existed (the stream simply paused): drop silently. The
        // sequence number stays claimable -- if the stream resumes with it,
        // it must be delivered normally, not treated as a duplicate.
        ++stats_.suspected_tail_dropped;
        it = fs.missing.erase(it);
        continue;
      }
      ++stats_.losses_given_up;
      DeliveryRecord rec;
      rec.flow = flow;
      rec.seq = it->first;
      rec.delivered_at = now;
      rec.lost = true;
      rec.detected_missing_at = it->second.detected_at;
      if (on_delivery_) on_delivery_(rec, nullptr);
      if (it->first >= fs.next_expected) fs.arrived_ahead[it->first] = false;
      it = fs.missing.erase(it);
    } else {
      ++it;
    }
  }
  advance_contiguity(fs, flow);
}

void Receiver::arm_timer(FlowId flow, FlowState& fs, SimDuration timeout) {
  if (fs.timer_armed) {
    net_.sim().cancel(fs.timer);
    fs.timer_armed = false;
  }
  const std::uint64_t gen = ++fs.timer_gen;
  fs.timer_armed = true;
  fs.timer = net_.sim().after(timeout, [this, flow, gen] { on_timer(flow, gen); });
}

void Receiver::on_timer(FlowId flow, std::uint64_t gen) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  FlowState& fs = it->second;
  if (!fs.timer_armed || fs.timer_gen != gen) return;
  fs.timer_armed = false;

  const SimTime now = net_.sim().now();
  if (config_.failover.enabled && config_.failover.overlay_carries_data && overlay_up_ &&
      last_overlay_signal_ >= 0 &&
      now - last_overlay_signal_ >= config_.failover.data_silence) {
    // All data rides the overlay and NOTHING -- no data on any flow, no DC2
    // control traffic -- has been heard for the silence window, yet this
    // flow's timer is still live (there is demand): the overlay is gone.
    declare_overlay_down();
  }
  const bool was_short =
      config_.use_markov && fs.detector.state() == MarkovDetector::State::kShort;
  const SimDuration next_timeout =
      config_.use_markov ? fs.detector.on_timeout() : config_.single_timeout;

  // A SHORT-state expiry means the stream went quiet mid-burst: the next
  // expected packet is presumed lost (tail loss). The DC-side NackCheck
  // handshake guards against the burst simply having ended. During an
  // outage the direct path is silent but recoveries keep arriving
  // (last_activity > last_arrival): keep probing so cooperative recovery
  // is applied repeatedly, wave after wave (Section 4.4).
  const bool outage_mode = fs.last_arrival >= 0 && fs.last_activity > fs.last_arrival &&
                           now - fs.last_activity < config_.idle_stop;
  // A registered flow that has never delivered anything and timed out: the
  // opening packet itself may be lost (e.g. a SYN-ACK, Section 6.4).
  const bool nothing_yet = fs.last_arrival < 0 && fs.evidence_horizon == 0;
  if (was_short || !config_.use_markov || outage_mode || nothing_yet) {
    if (fs.missing.count(fs.next_expected) == 0 &&
        fs.arrived_ahead.count(fs.next_expected) == 0) {
      fs.missing[fs.next_expected] = MissingInfo{now, now, 1};
      ++stats_.losses_detected;
      send_nack(flow, fs, {fs.next_expected}, /*tail=*/true);
    } else if (outage_mode) {
      // The hole at next_expected is already tracked, but the stream is
      // being carried by recovery alone: keep probing past the evidence
      // frontier so the next wave of cooperative recovery starts.
      send_nack(flow, fs, {}, /*tail=*/true);
    } else {
      ++stats_.spurious_timeouts;
    }
  }

  // Re-NACK holes whose last attempt is stale (lost NACK or lost recovery).
  stale_scratch_.clear();
  for (auto& [seq, info] : fs.missing) {
    if (now - info.last_nack_at >= config_.renack_interval) {
      info.last_nack_at = now;
      ++info.nack_count;
      stale_scratch_.push_back(seq);
    }
  }
  if (!stale_scratch_.empty()) send_nack(flow, fs, stale_scratch_, /*tail=*/false);

  give_up_stale(flow, fs);

  // Keep the timer running while the flow is live or holes remain. Flows
  // being carried by recovery alone (outages) stay live via last_activity.
  const bool active =
      (fs.last_activity >= 0 && now - fs.last_activity < config_.idle_stop) ||
      !fs.missing.empty();
  if (active) arm_timer(flow, fs, next_timeout);
}

void Receiver::note_overlay_evidence() {
  last_overlay_signal_ = net_.sim().now();
  unanswered_nacks_ = 0;
  if (!overlay_up_) declare_overlay_up();
}

void Receiver::declare_overlay_down() {
  if (!overlay_up_) return;
  overlay_up_ = false;
  ++stats_.failovers;
  unanswered_nacks_ = 0;
  probe_backoff_ = 0;
  arm_probe();
  if (on_overlay_) on_overlay_(false, net_.sim().now());
}

void Receiver::declare_overlay_up() {
  if (overlay_up_) return;
  overlay_up_ = true;
  ++stats_.reengages;
  if (probe_armed_) {
    net_.sim().cancel(probe_timer_);
    probe_armed_ = false;
  }
  ++probe_gen_;  // Invalidate any closure that raced the cancel.
  probe_backoff_ = 0;
  if (on_overlay_) on_overlay_(true, net_.sim().now());
}

void Receiver::arm_probe() {
  probe_backoff_ = probe_backoff_ == 0
                       ? config_.failover.probe_base
                       : std::min(probe_backoff_ * 2, config_.failover.probe_cap);
  const std::uint64_t gen = ++probe_gen_;
  probe_armed_ = true;
  probe_timer_ = net_.sim().after(probe_backoff_, [this, gen] { on_probe(gen); });
}

void Receiver::on_probe(std::uint64_t gen) {
  if (!probe_armed_ || probe_gen_ != gen) return;
  probe_armed_ = false;
  if (overlay_up_) return;
  send_probe();
  // Re-arm only while some flow is live: once the workload drains the probe
  // chain must stop, or Simulator::run() would never see an empty queue.
  if (any_active_flow()) arm_probe();
}

void Receiver::send_probe() {
  if (config_.dc2 == kInvalidNode) return;
  // Probe on the lowest live flow id (a stable identity across runs and
  // thread counts, unlike unordered_map iteration order).
  FlowState* fs = nullptr;
  FlowId flow = 0;
  for (auto& [id, state] : flows_) {
    if (fs == nullptr || id < flow) {
      fs = &state;
      flow = id;
    }
  }
  if (fs == nullptr) return;
  ++stats_.probes_sent;
  send_nack(flow, *fs, {fs->next_expected}, /*tail=*/false, /*probe=*/true);
}

bool Receiver::any_active_flow() const {
  const SimTime now = net_.sim().now();
  for (const auto& [flow, fs] : flows_) {
    if (fs.last_activity >= 0 && now - fs.last_activity < config_.idle_stop) return true;
  }
  return false;
}

}  // namespace jqos::endpoint
