// Simplified-but-faithful TCP over the simulator, for the Section 6.4 case
// study (short web transfers under the Google study's bursty loss model).
//
// The model captures exactly the mechanisms that experiment is about:
//  * three-way-handshake losses (SYN / SYN-ACK retransmission with 1 s
//    initial RTO and exponential backoff -- the dominant tail contributor);
//  * sender-side congestion control and loss recovery, delegated to a
//    pluggable CongestionController (Reno / RACK / BBR-lite; see
//    transport/congestion.h), plus RTO with exponential backoff;
//  * ECN: data segments carry ECT, AQM queue discs may CE-mark them, the
//    client echoes marks back as ECE acks, and ECN-aware controllers back
//    off without a loss;
//  * the J-QoS interception trick: data segments travel through the J-QoS
//    reliability layer, so a packet recovered by J-QoS reaches the client's
//    TCP which ACKs it immediately, hiding the loss from the server and
//    avoiding the timeout.
//
// TcpWorkload is the mechanism shell: handshake, scoreboard bookkeeping,
// RFC 6298 RTT estimation, timer plumbing (RTO + pacing release), and the
// actual segment transmission. All policy -- window growth, when a segment
// is lost, what to retransmit, how fast to pace -- lives in the controller.
//
// One TcpWorkload object drives N sequential request/response transfers
// between a client host (a jqos::endpoint::Receiver) and a server host (a
// jqos::endpoint::Sender) and records flow completion times.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/stats.h"
#include "endpoint/receiver.h"
#include "endpoint/sender.h"
#include "endpoint/session.h"
#include "transport/congestion.h"

namespace jqos::transport {

// TCP segment header carried inside the J-QoS packet payload.
struct TcpSegment {
  std::uint32_t conn_id = 0;
  enum Flags : std::uint8_t {
    kSyn = 1 << 0,
    kAck = 1 << 1,
    kReq = 1 << 2,   // The client's application request.
    kData = 1 << 3,
    kFin = 1 << 4,
    kEce = 1 << 5,   // ECN echo: the segment this acks arrived CE-marked.
  };
  std::uint8_t flags = 0;
  std::uint32_t seq = 0;            // Segment index within the response.
  std::uint32_t ack = 0;            // Cumulative: next segment needed.
  std::uint32_t total_segments = 0; // Set by the server on data/SYN-ACK.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sacks;  // [lo, hi)

  std::vector<std::uint8_t> serialize(std::size_t pad_to = 0) const;
  static std::optional<TcpSegment> parse(std::span<const std::uint8_t> data);
};

struct TcpServerStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t synack_sent = 0;
  std::uint64_t synack_retransmits = 0;
  std::uint64_t ecn_echoes = 0;  // Acks received carrying ECE.
};

class TcpWorkload {
 public:
  // `session_template` supplies the J-QoS service configuration each
  // transfer's flow is registered with (force_service = std::nullopt plus
  // dc1 == kInvalidNode yields plain TCP with no J-QoS involvement).
  TcpWorkload(netsim::Network& net, endpoint::Sender& server, endpoint::Receiver& client,
              endpoint::SessionManager& sessions, endpoint::RegisterRequest session_template,
              const TcpParams& params);

  // Runs `n` sequential transfers of `response_bytes` each; `request_bytes`
  // models the tiny upstream request (12 B in the paper).
  void run(std::size_t n, std::size_t response_bytes, std::size_t request_bytes = 12,
           std::function<void()> on_all_done = {});

  const Samples& fct_ms() const { return fct_ms_; }
  const TcpServerStats& server_stats() const { return server_stats_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::size_t completed() const { return completed_; }
  const CongestionController& cc() const { return *cc_; }

 private:
  // ---- client side ----
  void start_next_transfer();
  void client_send_syn();
  void client_send_request();
  void client_send_ack();
  void client_on_segment(const TcpSegment& seg, bool via_recovery, bool ce_marked);
  void client_handshake_timer_fired(std::uint64_t gen);
  void client_stamp_and_send(std::vector<std::uint8_t> payload);

  // ---- server side ----
  void server_on_packet(const PacketPtr& pkt);
  void server_send_synack();
  void server_begin_response();
  void server_send_window();
  void server_send_segment(std::uint32_t seq, bool retransmit);
  void server_on_ack(const TcpSegment& seg);
  void server_arm_rto();
  void server_rto_fired(std::uint64_t gen);
  void server_update_rtt(SimDuration sample);
  void server_arm_pacing_timer();
  CcScoreboard scoreboard() const;
  void apply_cc_actions(const CcActions& actions);

  void transfer_complete();

  netsim::Network& net_;
  endpoint::Sender& server_;
  endpoint::Receiver& client_;
  endpoint::SessionManager& sessions_;
  endpoint::RegisterRequest session_template_;
  TcpParams params_;
  CcPtr cc_;

  // Workload progress.
  std::size_t remaining_ = 0;
  std::size_t completed_ = 0;
  std::size_t response_bytes_ = 0;
  std::size_t request_bytes_ = 12;
  std::function<void()> on_all_done_;
  Samples fct_ms_;

  // Per-transfer state (one active transfer at a time).
  std::uint32_t conn_id_ = 0;
  FlowId flow_ = 0;
  SimTime transfer_started_ = 0;
  bool transfer_done_ = true;

  // Client.
  bool syn_acked_ = false;
  int client_retries_ = 0;
  std::uint64_t client_timer_gen_ = 0;
  std::uint32_t client_total_segments_ = 0;
  std::uint32_t client_cumulative_ = 0;  // Next segment needed.
  std::set<std::uint32_t> client_received_;
  bool client_ece_pending_ = false;  // Last data arrival was CE-marked.
  std::uint64_t acks_sent_ = 0;

  // Server scoreboard (mechanism state; the controller sees it read-only).
  bool server_conn_open_ = false;
  bool server_sending_ = false;
  std::uint32_t total_segments_ = 0;
  std::uint32_t next_to_send_ = 0;
  std::uint32_t highest_acked_ = 0;  // Cumulative from client.
  std::set<std::uint32_t> sacked_;
  SimDuration rto_ = sec(1);
  bool rtt_measured_ = false;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  std::uint64_t server_timer_gen_ = 0;
  int synack_retries_ = 0;
  std::map<std::uint32_t, SimTime> send_times_;     // First-transmission times.
  std::map<std::uint32_t, SimTime> retransmitted_;  // Last retransmit time.

  // Pacing (used only when the controller reports a nonzero rate). A
  // pacing controller smooths retransmissions too -- controller-requested
  // repairs queue here and leave at the paced rate ahead of new data,
  // instead of bursting a whole window of repairs into the bottleneck.
  SimTime pacing_release_ = 0;
  bool pacing_timer_armed_ = false;
  std::deque<std::uint32_t> paced_retx_;

  TcpServerStats server_stats_;
};

}  // namespace jqos::transport
