// Simplified-but-faithful TCP over the simulator, for the Section 6.4 case
// study (short web transfers under the Google study's bursty loss model).
//
// The model captures exactly the mechanisms that experiment is about:
//  * three-way-handshake losses (SYN / SYN-ACK retransmission with 1 s
//    initial RTO and exponential backoff -- the dominant tail contributor);
//  * slow start / congestion avoidance, SACK-based fast retransmit, and
//    RTO with exponential backoff for tail losses;
//  * the J-QoS interception trick: data segments travel through the J-QoS
//    reliability layer, so a packet recovered by J-QoS reaches the client's
//    TCP which ACKs it immediately, hiding the loss from the server and
//    avoiding the timeout.
//
// One TcpWorkload object drives N sequential request/response transfers
// between a client host (a jqos::endpoint::Receiver) and a server host (a
// jqos::endpoint::Sender) and records flow completion times.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/stats.h"
#include "endpoint/receiver.h"
#include "endpoint/sender.h"
#include "endpoint/session.h"

namespace jqos::transport {

struct TcpParams {
  std::size_t mss = 1400;
  std::size_t init_cwnd = 10;        // Segments.
  std::size_t init_ssthresh = 64;    // Segments.
  SimDuration initial_rto = sec(1);  // RFC 6298 pre-measurement RTO.
  SimDuration min_rto = msec(200);
  SimDuration max_rto = sec(16);
  int dupack_threshold = 3;
  int max_handshake_retries = 7;
};

// TCP segment header carried inside the J-QoS packet payload.
struct TcpSegment {
  std::uint32_t conn_id = 0;
  enum Flags : std::uint8_t {
    kSyn = 1 << 0,
    kAck = 1 << 1,
    kReq = 1 << 2,   // The client's application request.
    kData = 1 << 3,
    kFin = 1 << 4,
  };
  std::uint8_t flags = 0;
  std::uint32_t seq = 0;            // Segment index within the response.
  std::uint32_t ack = 0;            // Cumulative: next segment needed.
  std::uint32_t total_segments = 0; // Set by the server on data/SYN-ACK.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sacks;  // [lo, hi)

  std::vector<std::uint8_t> serialize(std::size_t pad_to = 0) const;
  static std::optional<TcpSegment> parse(std::span<const std::uint8_t> data);
};

struct TcpServerStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t synack_sent = 0;
  std::uint64_t synack_retransmits = 0;
};

class TcpWorkload {
 public:
  // `session_template` supplies the J-QoS service configuration each
  // transfer's flow is registered with (force_service = std::nullopt plus
  // dc1 == kInvalidNode yields plain TCP with no J-QoS involvement).
  TcpWorkload(netsim::Network& net, endpoint::Sender& server, endpoint::Receiver& client,
              endpoint::SessionManager& sessions, endpoint::RegisterRequest session_template,
              const TcpParams& params);

  // Runs `n` sequential transfers of `response_bytes` each; `request_bytes`
  // models the tiny upstream request (12 B in the paper).
  void run(std::size_t n, std::size_t response_bytes, std::size_t request_bytes = 12,
           std::function<void()> on_all_done = {});

  const Samples& fct_ms() const { return fct_ms_; }
  const TcpServerStats& server_stats() const { return server_stats_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::size_t completed() const { return completed_; }

 private:
  // ---- client side ----
  void start_next_transfer();
  void client_send_syn();
  void client_send_request();
  void client_send_ack();
  void client_on_segment(const TcpSegment& seg, bool via_recovery);
  void client_handshake_timer_fired(std::uint64_t gen);

  // ---- server side ----
  void server_on_packet(const PacketPtr& pkt);
  void server_send_synack();
  void server_begin_response();
  void server_send_window();
  void server_send_segment(std::uint32_t seq, bool retransmit);
  void server_on_ack(const TcpSegment& seg);
  void server_arm_rto();
  void server_rto_fired(std::uint64_t gen);
  void server_update_rtt(SimDuration sample);

  void transfer_complete();

  netsim::Network& net_;
  endpoint::Sender& server_;
  endpoint::Receiver& client_;
  endpoint::SessionManager& sessions_;
  endpoint::RegisterRequest session_template_;
  TcpParams params_;

  // Workload progress.
  std::size_t remaining_ = 0;
  std::size_t completed_ = 0;
  std::size_t response_bytes_ = 0;
  std::size_t request_bytes_ = 12;
  std::function<void()> on_all_done_;
  Samples fct_ms_;

  // Per-transfer state (one active transfer at a time).
  std::uint32_t conn_id_ = 0;
  FlowId flow_ = 0;
  SimTime transfer_started_ = 0;
  bool transfer_done_ = true;

  // Client.
  bool syn_acked_ = false;
  int client_retries_ = 0;
  std::uint64_t client_timer_gen_ = 0;
  std::uint32_t client_total_segments_ = 0;
  std::uint32_t client_cumulative_ = 0;  // Next segment needed.
  std::set<std::uint32_t> client_received_;
  std::uint64_t acks_sent_ = 0;

  // Server.
  bool server_conn_open_ = false;
  bool server_sending_ = false;
  std::uint32_t total_segments_ = 0;
  std::uint32_t next_to_send_ = 0;
  std::uint32_t highest_acked_ = 0;  // Cumulative from client.
  std::set<std::uint32_t> sacked_;
  double cwnd_ = 10.0;
  double ssthresh_ = 64.0;
  int dup_acks_ = 0;
  SimDuration rto_ = sec(1);
  bool rtt_measured_ = false;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  std::uint64_t server_timer_gen_ = 0;
  int synack_retries_ = 0;
  std::map<std::uint32_t, SimTime> send_times_;     // First-transmission times.
  std::map<std::uint32_t, SimTime> retransmitted_;  // Last retransmit time.

  TcpServerStats server_stats_;
};

}  // namespace jqos::transport
