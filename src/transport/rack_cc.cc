// RACK-style loss detection (after FreeBSD's tcp_stacks/rack.c and RFC
// 8985, heavily simplified for the segment-granularity model): a segment is
// declared lost when some segment sent *after* it has already been
// delivered and a reorder window (srtt/4) has passed — no dup-ack counting.
// Window growth stays Reno-shaped (slow start / congestion avoidance with
// one multiplicative cut per recovery episode), so the difference under
// test is purely the loss-detection clock.
#include <algorithm>

#include "transport/congestion.h"

namespace jqos::transport {
namespace {

class RackCc final : public CongestionController {
 public:
  const char* name() const override { return "rack"; }

  void on_transfer_start(const TcpParams& params, std::uint32_t total_segments,
                         SimTime now) override {
    (void)total_segments, (void)now;
    params_ = params;
    cwnd_ = static_cast<double>(params.init_cwnd);
    ssthresh_ = static_cast<double>(params.init_ssthresh);
    rack_xmit_time_ = -1;
    recovery_until_ = 0;
    cwr_until_ = 0;
  }

  void on_ack(const CcEvent& ev, const CcScoreboard& sb, CcActions& out) override {
    advance_rack_clock(ev);
    const bool ecn_cut = ev.ecn_echo && maybe_backoff(sb, &cwr_until_);
    if (!ecn_cut) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += ev.newly_acked;
      } else {
        cwnd_ += static_cast<double>(ev.newly_acked) / cwnd_;
      }
    }
    detect_losses(ev, sb, out);
  }

  void on_sack(const CcEvent& ev, const CcScoreboard& sb, CcActions& out) override {
    advance_rack_clock(ev);
    if (ev.ecn_echo) maybe_backoff(sb, &cwr_until_);
    detect_losses(ev, sb, out);
  }

  void on_rto(SimTime now) override {
    (void)now;
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = 1.0;
    rack_xmit_time_ = -1;  // Stale after the backoff; rebuild from fresh acks.
  }

  bool can_send(std::size_t inflight) const override {
    return inflight < static_cast<std::size_t>(cwnd_);
  }

  double cwnd_segments() const override { return cwnd_; }

 private:
  void advance_rack_clock(const CcEvent& ev) {
    // The most recent transmission time among delivered segments: anything
    // sent a reorder-window before it and still missing is lost.
    rack_xmit_time_ = std::max(rack_xmit_time_, ev.delivered_xmit_time);
  }

  SimDuration reorder_window(const CcEvent& ev) const {
    return std::max<SimDuration>(ev.srtt / 4, msec(1));
  }

  void detect_losses(const CcEvent& ev, const CcScoreboard& sb, CcActions& out) {
    if (rack_xmit_time_ < 0) return;
    const SimDuration window = reorder_window(ev);
    const std::uint32_t high = sb.above_highest_sacked();
    for (std::uint32_t s = sb.highest_acked; s < high && s < sb.total_segments; ++s) {
      if (sb.sacked->count(s) != 0) continue;
      const SimTime sent = sb.effective_xmit_time(s);
      if (sent < 0) continue;
      if (sent + window <= rack_xmit_time_) out.retransmit.push_back(s);
    }
    if (out.retransmit.empty()) return;
    if (maybe_backoff(sb, &recovery_until_)) out.entered_recovery = true;
    out.rearm_rto = true;
  }

  // One multiplicative cut per window of data, shared by loss recovery and
  // the ECN response; `*until` marks the episode boundary.
  bool maybe_backoff(const CcScoreboard& sb, std::uint32_t* until) {
    if (sb.highest_acked < *until) return false;
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = ssthresh_;
    *until = sb.next_to_send;
    return true;
  }

  TcpParams params_;
  double cwnd_ = 10.0;
  double ssthresh_ = 64.0;
  SimTime rack_xmit_time_ = -1;     // Latest delivered segment's xmit time.
  std::uint32_t recovery_until_ = 0;
  std::uint32_t cwr_until_ = 0;
};

}  // namespace

CcPtr make_rack_cc() { return std::make_unique<RackCc>(); }

}  // namespace jqos::transport
