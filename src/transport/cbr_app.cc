#include "transport/cbr_app.h"

namespace jqos::transport {

CbrApp::CbrApp(netsim::Simulator& sim, endpoint::Sender& sender, FlowId flow,
               const CbrParams& params, Rng rng)
    : sim_(sim), sender_(sender), flow_(flow), params_(params), rng_(rng) {
  gap_ = static_cast<SimDuration>(1e6 / params_.packets_per_second);
}

void CbrApp::start(SimTime until) {
  until_ = until;
  sim_.after(params_.initial_skew, [this] { begin_on_interval(); });
}

std::vector<SimTime> CbrApp::make_schedule(SimTime from, SimTime until,
                                           const CbrParams& params, Rng& rng) {
  std::vector<SimTime> starts;
  SimTime t = from;
  while (t < until) {
    starts.push_back(t);
    t += params.on_duration +
         static_cast<SimDuration>(rng.exponential(static_cast<double>(params.mean_off)));
  }
  return starts;
}

void CbrApp::start_with_schedule(std::vector<SimTime> on_starts, SimTime until) {
  until_ = until;
  schedule_ = std::move(on_starts);
  next_session_ = 0;
  if (schedule_.empty()) return;
  const SimTime first = schedule_[0] + params_.initial_skew;
  ++next_session_;
  sim_.at(std::max(first, sim_.now()), [this] { begin_on_interval(); });
}

void CbrApp::begin_on_interval() {
  if (sim_.now() >= until_) return;
  ++stats_.on_intervals;
  on_ends_at_ = sim_.now() + params_.on_duration;
  tick();
}

void CbrApp::tick() {
  if (sim_.now() >= until_) return;
  if (sim_.now() >= on_ends_at_) {
    if (!schedule_.empty()) {
      // Synchronized mode: wait for the next announced ON start.
      if (next_session_ >= schedule_.size()) return;
      const SimTime next = schedule_[next_session_++] + params_.initial_skew;
      sim_.at(std::max(next, sim_.now()), [this] { begin_on_interval(); });
      return;
    }
    // OFF period: exponentially distributed with the configured mean.
    const auto off = static_cast<SimDuration>(
        rng_.exponential(static_cast<double>(params_.mean_off)));
    sim_.after(off, [this] { begin_on_interval(); });
    return;
  }
  sender_.send(flow_, params_.payload_bytes);
  ++stats_.packets_sent;
  sim_.after(gap_, [this] { tick(); });
}

}  // namespace jqos::transport
