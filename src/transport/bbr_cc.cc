// BBR-lite (after FreeBSD's bbr.c / BBRv1, reduced to the pieces that
// matter at segment granularity): model the path by its bottleneck
// bandwidth (windowed-max delivery rate) and round-trip propagation delay
// (min RTT), pace sends at pacing_gain * btl_bw, and cap inflight at
// cwnd_gain * BDP. STARTUP doubles the rate each round until the bandwidth
// estimate plateaus, DRAIN empties the startup queue, then PROBE_BW cycles
// gains [1.25, 0.75, 1 x6]. Losses are repaired via a dup-ack hole scan
// but do not collapse the rate model; ECN marks are ignored (BBRv1
// semantics); an RTO resets to conservative bootstrap state.
//
// Loss detection is RACK-style (RFC 8985), matching how BBR actually ships
// in Linux and FreeBSD: a hole is declared lost when a segment transmitted
// after it has been delivered and a reorder window (srtt/4) has elapsed --
// no dup-ack counting. After an RTO the first ack triggers a go-back-N
// sweep of every remaining hole (classic post-timeout slow-start resend),
// so a burst of tail drops costs one timeout, not one timeout per hole.
#include <algorithm>
#include <deque>

#include "transport/congestion.h"

namespace jqos::transport {
namespace {

constexpr double kStartupGain = 2.885;  // 2/ln(2): fills the pipe in log2 rounds.
constexpr double kDrainGain = 1.0 / kStartupGain;
constexpr double kProbeBwGains[] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr double kCwndGain = 2.0;
constexpr int kBwWindowRounds = 10;   // Max-filter horizon.
constexpr int kStartupPlateauRounds = 3;
constexpr std::size_t kMinCwnd = 4;   // Segments.

class BbrLiteCc final : public CongestionController {
 public:
  const char* name() const override { return "bbr"; }

  void on_transfer_start(const TcpParams& params, std::uint32_t total_segments,
                         SimTime now) override {
    (void)total_segments, (void)now;
    params_ = params;
    mode_ = Mode::kStartup;
    pacing_gain_ = kStartupGain;
    bw_samples_.clear();
    min_rtt_ = -1;
    delivered_ = 0;
    last_ack_time_ = -1;
    last_sample_delivered_ = 0;
    round_ = 0;
    round_end_seq_ = 0;
    full_bw_ = 0.0;
    full_bw_rounds_ = 0;
    cycle_index_ = 0;
    rack_xmit_time_ = -1;
    go_back_n_ = false;
    recovery_until_ = 0;
  }

  void on_ack(const CcEvent& ev, const CcScoreboard& sb, CcActions& out) override {
    update_model(ev, sb);
    detect_losses(ev, sb, out);
  }

  void on_sack(const CcEvent& ev, const CcScoreboard& sb, CcActions& out) override {
    update_model(ev, sb);
    detect_losses(ev, sb, out);
  }

  void on_rto(SimTime now) override {
    (void)now;
    // Back to bootstrap: trust nothing but the minimum window until acks
    // rebuild the model.
    bw_samples_.clear();
    full_bw_ = 0.0;
    full_bw_rounds_ = 0;
    mode_ = Mode::kStartup;
    pacing_gain_ = kStartupGain;
    rack_xmit_time_ = -1;  // Stale after the backoff; rebuild from fresh acks.
    go_back_n_ = true;
  }

  bool can_send(std::size_t inflight) const override {
    return inflight < static_cast<std::size_t>(cwnd_segments());
  }

  double pacing_rate_bps() const override {
    const double bw = btl_bw();  // Segments per microsecond.
    if (bw <= 0.0) return 0.0;   // Unpaced until the first rate sample.
    return bw * pacing_gain_ * static_cast<double>(params_.mss) * 8.0 * 1e6;
  }

  double cwnd_segments() const override {
    const double bdp = bdp_segments();
    if (bdp <= 0.0) return static_cast<double>(params_.init_cwnd);
    return std::max(static_cast<double>(kMinCwnd), kCwndGain * bdp);
  }

 private:
  enum class Mode { kStartup, kDrain, kProbeBw };

  double btl_bw() const {
    double best = 0.0;
    for (const auto& [round, bw] : bw_samples_) best = std::max(best, bw);
    return best;
  }

  double bdp_segments() const {
    const double bw = btl_bw();
    if (bw <= 0.0 || min_rtt_ <= 0) return 0.0;
    return bw * static_cast<double>(min_rtt_);
  }

  // RACK-style: a hole is lost once delivery evidence postdates it by a
  // reorder window. Repair the holes but keep the rate model -- BBR treats
  // loss as a signal about buffers, not bandwidth. After an RTO, sweep
  // every remaining hole instead: tail drops leave no later delivery to
  // supply RACK evidence, and repairing them one timeout at a time is the
  // exponential-backoff chain this sweep exists to break.
  void detect_losses(const CcEvent& ev, const CcScoreboard& sb, CcActions& out) {
    if (go_back_n_) {
      go_back_n_ = false;
      for (std::uint32_t s = sb.highest_acked; s < sb.next_to_send && s < sb.total_segments;
           ++s) {
        if (sb.sacked->count(s) != 0) continue;
        auto rt = sb.retransmitted->find(s);
        if (rt != sb.retransmitted->end() && ev.now - rt->second < ev.rto) continue;
        out.retransmit.push_back(s);
      }
    } else if (rack_xmit_time_ >= 0) {
      const SimDuration window = std::max<SimDuration>(ev.srtt / 4, msec(1));
      const std::uint32_t high = sb.above_highest_sacked();
      for (std::uint32_t s = sb.highest_acked; s < high && s < sb.total_segments; ++s) {
        if (sb.sacked->count(s) != 0) continue;
        const SimTime sent = sb.effective_xmit_time(s);
        if (sent < 0) continue;
        if (sent + window <= rack_xmit_time_) out.retransmit.push_back(s);
      }
    }
    if (out.retransmit.empty()) return;
    if (sb.highest_acked >= recovery_until_) {
      out.entered_recovery = true;
      recovery_until_ = sb.next_to_send;
    }
    out.rearm_rto = true;
  }

  void update_model(const CcEvent& ev, const CcScoreboard& sb) {
    rack_xmit_time_ = std::max(rack_xmit_time_, ev.delivered_xmit_time);
    delivered_ += ev.newly_acked + ev.newly_sacked;
    if (ev.rtt_sample > 0) {
      min_rtt_ = min_rtt_ < 0 ? ev.rtt_sample : std::min(min_rtt_, ev.rtt_sample);
    }

    // Round accounting: a round ends when the cumulative point passes the
    // highest sequence outstanding when the round began.
    const bool round_ended = sb.highest_acked >= round_end_seq_;
    if (round_ended) {
      ++round_;
      round_end_seq_ = sb.next_to_send;
    }

    // Delivery-rate sample: segments delivered since the last ack, over the
    // inter-ack time. Windowed max approximates the bottleneck bandwidth.
    if (last_ack_time_ >= 0 && ev.now > last_ack_time_) {
      const double rate = static_cast<double>(delivered_ - last_sample_delivered_) /
                          static_cast<double>(ev.now - last_ack_time_);
      bw_samples_.emplace_back(round_, rate);
    }
    last_ack_time_ = ev.now;
    last_sample_delivered_ = delivered_;
    while (!bw_samples_.empty() && bw_samples_.front().first + kBwWindowRounds < round_) {
      bw_samples_.pop_front();
    }

    if (round_ended) advance_state(sb);
  }

  void advance_state(const CcScoreboard& sb) {
    switch (mode_) {
      case Mode::kStartup: {
        // Exit when the bandwidth estimate stops growing 25% per round.
        const double bw = btl_bw();
        if (bw > full_bw_ * 1.25) {
          full_bw_ = bw;
          full_bw_rounds_ = 0;
        } else if (++full_bw_rounds_ >= kStartupPlateauRounds) {
          mode_ = Mode::kDrain;
          pacing_gain_ = kDrainGain;
        }
        break;
      }
      case Mode::kDrain:
        if (static_cast<double>(sb.inflight()) <= bdp_segments()) {
          mode_ = Mode::kProbeBw;
          cycle_index_ = 0;
          pacing_gain_ = kProbeBwGains[0];
        }
        break;
      case Mode::kProbeBw:
        cycle_index_ = (cycle_index_ + 1) % (sizeof(kProbeBwGains) / sizeof(double));
        pacing_gain_ = kProbeBwGains[cycle_index_];
        break;
    }
  }

  TcpParams params_;
  Mode mode_ = Mode::kStartup;
  double pacing_gain_ = kStartupGain;
  std::deque<std::pair<std::uint64_t, double>> bw_samples_;  // (round, segs/us).
  SimDuration min_rtt_ = -1;
  std::uint64_t delivered_ = 0;
  SimTime last_ack_time_ = -1;
  std::uint64_t last_sample_delivered_ = 0;
  std::uint64_t round_ = 0;
  std::uint32_t round_end_seq_ = 0;
  double full_bw_ = 0.0;
  int full_bw_rounds_ = 0;
  std::size_t cycle_index_ = 0;
  SimTime rack_xmit_time_ = -1;  // Latest delivered segment's xmit time.
  bool go_back_n_ = false;       // Armed by an RTO; next ack sweeps all holes.
  std::uint32_t recovery_until_ = 0;
};

}  // namespace

CcPtr make_bbr_lite_cc() { return std::make_unique<BbrLiteCc>(); }

}  // namespace jqos::transport
