#include "transport/congestion.h"

#include <cstdio>
#include <cstdlib>

namespace jqos::transport {

const char* cc_kind_name(CcKind k) {
  switch (k) {
    case CcKind::kReno: return "reno";
    case CcKind::kRack: return "rack";
    case CcKind::kBbrLite: return "bbr";
  }
  return "?";
}

std::optional<CcKind> parse_cc_kind(std::string_view name) {
  if (name == "reno") return CcKind::kReno;
  if (name == "rack") return CcKind::kRack;
  if (name == "bbr" || name == "bbrlite" || name == "bbr-lite") return CcKind::kBbrLite;
  return std::nullopt;
}

CcKind cc_kind_from_env(CcKind fallback) {
  // Parsed exactly once, like JQOS_GF_BACKEND: later setenv calls have no
  // effect and cannot race the getenv.
  static const std::optional<CcKind> from_env = []() -> std::optional<CcKind> {
    const char* v = std::getenv("JQOS_TCP_CC");
    if (v == nullptr || *v == '\0') return std::nullopt;
    auto parsed = parse_cc_kind(v);
    if (!parsed) {
      std::fprintf(stderr, "[WARN] JQOS_TCP_CC=%s not recognized (reno|rack|bbr); ignoring\n",
                   v);
    }
    return parsed;
  }();
  return from_env.value_or(fallback);
}

std::size_t CcScoreboard::inflight() const {
  std::size_t n = 0;
  for (std::uint32_t s = highest_acked; s < next_to_send; ++s) {
    if (sacked->count(s) == 0) ++n;
  }
  return n;
}

std::uint32_t CcScoreboard::above_highest_sacked() const {
  return sacked->empty() ? highest_acked + 1 : *sacked->rbegin() + 1;
}

SimTime CcScoreboard::effective_xmit_time(std::uint32_t seq) const {
  auto rt = retransmitted->find(seq);
  if (rt != retransmitted->end()) return rt->second;
  auto st = send_times->find(seq);
  return st == send_times->end() ? -1 : st->second;
}

namespace detail {

void collect_sack_holes(const CcScoreboard& sb, SimTime now, SimDuration rto,
                        std::vector<std::uint32_t>& out) {
  const std::uint32_t high = sb.above_highest_sacked();
  for (std::uint32_t s = sb.highest_acked; s < high && s < sb.total_segments; ++s) {
    if (sb.sacked->count(s) != 0) continue;
    auto rt = sb.retransmitted->find(s);
    if (rt != sb.retransmitted->end() && now - rt->second < rto) continue;
    out.push_back(s);
  }
}

}  // namespace detail

CcPtr make_congestion_controller(CcKind kind) {
  switch (kind) {
    case CcKind::kReno: return make_reno_cc();
    case CcKind::kRack: return make_rack_cc();
    case CcKind::kBbrLite: return make_bbr_lite_cc();
  }
  return make_reno_cc();
}

CcPtr make_congestion_controller(const TcpParams& params) {
  if (params.cc_factory) return params.cc_factory();
  return make_congestion_controller(params.resolved_cc());
}

}  // namespace jqos::transport
