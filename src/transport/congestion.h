// Pluggable congestion control for the TCP model: the policy half of the
// transport split. TcpWorkload owns the mechanism — handshake, scoreboard
// (send times, SACKs, cumulative ack), RFC 6298 RTT estimation, RTO timer
// arming/backoff, and the actual segment (re)transmission — and delegates
// every policy decision (window growth, loss detection, recovery, pacing)
// to a CongestionController.
//
// Implementations:
//   RenoCc     slow start / congestion avoidance with SACK-hole fast
//              retransmit on a dup-ack threshold. Byte-identical to the
//              pre-refactor hard-coded behavior (pinned by a differential
//              test in tests/tcp_cc_test.cc).
//   RackCc     time-ordered per-segment loss detection with a reorder
//              window (srtt/4) in place of dup-ack counting, after
//              FreeBSD's tcp_stacks/rack.c.
//   BbrLiteCc  delivery-rate estimation + pacing-gain cycling
//              (STARTUP/DRAIN/PROBE_BW) with paced sends via sim timers,
//              after FreeBSD's bbr.c. RACK-style loss detection plus a
//              post-RTO go-back-N sweep; losses are repaired without
//              collapsing the rate; ECN marks are ignored (BBRv1
//              semantics).
//
// See docs/TRANSPORT.md for the full interface contract.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string_view>
#include <vector>

#include "common/sim_time.h"

namespace jqos::transport {

enum class CcKind : std::uint8_t { kReno = 0, kRack = 1, kBbrLite = 2 };

const char* cc_kind_name(CcKind k);
std::optional<CcKind> parse_cc_kind(std::string_view name);

// The JQOS_TCP_CC override (reno|rack|bbr), read once at first use; bogus
// values warn once and fall back. Applied only where TcpParams left the
// kind unset, so tests that pin a controller are immune to the env.
CcKind cc_kind_from_env(CcKind fallback = CcKind::kReno);

class CongestionController;
using CcPtr = std::unique_ptr<CongestionController>;
using CcFactory = std::function<CcPtr()>;

struct TcpParams {
  std::size_t mss = 1400;
  std::size_t init_cwnd = 10;        // Segments.
  std::size_t init_ssthresh = 64;    // Segments.
  SimDuration initial_rto = sec(1);  // RFC 6298 pre-measurement RTO.
  SimDuration min_rto = msec(200);
  SimDuration max_rto = sec(16);
  int dupack_threshold = 3;
  int max_handshake_retries = 7;

  // Congestion-control selection: `cc_factory` wins if set, else `cc`,
  // else the JQOS_TCP_CC environment override, else Reno.
  std::optional<CcKind> cc;
  CcFactory cc_factory;

  // Negotiate ECN: data segments carry ECT, the client echoes CE marks as
  // ECE on its acks, and ECN-aware controllers react. Harmless under the
  // default tail-drop network (nothing ever marks).
  bool ecn = true;

  CcKind resolved_cc() const { return cc ? *cc : cc_kind_from_env(); }
};

// Read-only view of the mechanism's per-segment bookkeeping, lent to the
// controller for the duration of one callback.
struct CcScoreboard {
  std::uint32_t total_segments = 0;
  std::uint32_t highest_acked = 0;  // Cumulative: next segment needed.
  std::uint32_t next_to_send = 0;   // Highest sequence sent + 1.
  const std::set<std::uint32_t>* sacked = nullptr;
  const std::map<std::uint32_t, SimTime>* send_times = nullptr;     // First tx.
  const std::map<std::uint32_t, SimTime>* retransmitted = nullptr;  // Last retx.

  // Unacked, unsacked segments currently outstanding.
  std::size_t inflight() const;
  // One past the highest SACKed segment, or highest_acked + 1 if none —
  // the upper bound of Reno's hole-retransmission scan.
  std::uint32_t above_highest_sacked() const;
  // When `seq` last left the sender (retransmit time if retransmitted,
  // else first-transmission time); -1 if unknown.
  SimTime effective_xmit_time(std::uint32_t seq) const;
};

// One ack arrival, as seen by the controller.
struct CcEvent {
  SimTime now = 0;
  std::uint32_t newly_acked = 0;     // Cumulative advance (0 for a dup ack).
  std::uint32_t newly_sacked = 0;    // Segments newly covered by SACK ranges.
  bool ecn_echo = false;             // ECE flag on this ack.
  SimDuration rtt_sample = -1;       // Fresh RTT sample, or -1.
  SimDuration srtt = 0;              // Smoothed RTT after the update; 0 if unmeasured.
  SimDuration rto = 0;               // The mechanism's current RTO.
  // Max effective transmission time over the segments this ack newly
  // delivered (acked or sacked); -1 if none. RACK's per-ack clock.
  SimTime delivered_xmit_time = -1;
};

// What the controller asks the mechanism to do after an event.
struct CcActions {
  std::vector<std::uint32_t> retransmit;  // Segments to resend, in order.
  bool entered_recovery = false;          // Count a fast retransmit in stats.
  bool rearm_rto = false;
  bool open_window = false;               // Try sending new data afterwards.
};

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  virtual const char* name() const = 0;

  // A fresh transfer begins (per-connection reset).
  virtual void on_transfer_start(const TcpParams& params, std::uint32_t total_segments,
                                 SimTime now) = 0;

  // An ack advancing the cumulative point. The mechanism always rearms the
  // RTO and opens the window after this, matching classic behavior.
  virtual void on_ack(const CcEvent& ev, const CcScoreboard& sb, CcActions& out) = 0;

  // A duplicate cumulative ack (possibly with fresh SACK information).
  virtual void on_sack(const CcEvent& ev, const CcScoreboard& sb, CcActions& out) = 0;

  // The mechanism retransmitted `seq` (controller-requested or RTO).
  virtual void on_loss(std::uint32_t seq, SimTime now) { (void)seq, (void)now; }

  // A data segment of `wire_bytes` left the sender.
  virtual void on_segment_sent(std::uint32_t seq, std::size_t wire_bytes, bool retransmit,
                               SimTime now) {
    (void)seq, (void)wire_bytes, (void)retransmit, (void)now;
  }

  // The retransmission timer fired (the mechanism resends the first hole
  // and backs the RTO off; the controller adjusts its window).
  virtual void on_rto(SimTime now) = 0;

  // May another segment enter the network given `inflight` outstanding?
  virtual bool can_send(std::size_t inflight) const = 0;

  // Pacing rate in bits/s of segment payload; 0 disables pacing (sends are
  // ack-clocked bursts, the classic behavior).
  virtual double pacing_rate_bps() const { return 0.0; }

  // Current window in segments (diagnostics).
  virtual double cwnd_segments() const = 0;
};

// Builds a controller of the given kind.
CcPtr make_congestion_controller(CcKind kind);
// Resolution used by TcpWorkload: factory > cc > JQOS_TCP_CC > Reno.
CcPtr make_congestion_controller(const TcpParams& params);

// Per-variant factories (one per implementation file).
CcPtr make_reno_cc();
CcPtr make_rack_cc();
CcPtr make_bbr_lite_cc();

namespace detail {
// The SACK-style hole scan shared by Reno-family recovery: every unsacked
// segment in [highest_acked, above_highest_sacked) not retransmitted within
// the last RTO, in sequence order.
void collect_sack_holes(const CcScoreboard& sb, SimTime now, SimDuration rto,
                        std::vector<std::uint32_t>& out);
}  // namespace detail

}  // namespace jqos::transport
