// The constant-bit-rate ON/OFF probe application used by the PlanetLab
// deployment (Section 6.2.1): "In each ON interval, we send packets for 5
// minutes; we set the mean OFF time to be 55 minutes" with Poisson OFF
// times and constant ON times. The experiment harness uses compressed
// timescales with the same structure.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "endpoint/sender.h"
#include "netsim/simulator.h"

namespace jqos::transport {

struct CbrParams {
  SimDuration on_duration = minutes(5);
  SimDuration mean_off = minutes(55);
  double packets_per_second = 20.0;
  std::size_t payload_bytes = 512;
  // Whether the app starts in an ON interval (senders are loosely
  // synchronized by DC1's control channel in the deployment; we model that
  // by starting all apps ON at t=start + small per-app skew).
  SimDuration initial_skew = 0;
};

struct CbrStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t on_intervals = 0;
};

class CbrApp {
 public:
  CbrApp(netsim::Simulator& sim, endpoint::Sender& sender, FlowId flow,
         const CbrParams& params, Rng rng);

  // Schedules traffic from now until `until` (absolute sim time), drawing
  // OFF periods independently.
  void start(SimTime until);

  // Runs ON intervals at the given absolute start times (plus this app's
  // initial_skew). This is the deployment mode: DC1's control channel
  // announces ON starts so senders stay loosely synchronized and the
  // encoder always sees concurrent streams (Section 6.2.1).
  void start_with_schedule(std::vector<SimTime> on_starts, SimTime until);

  // Generates a shared ON-interval schedule for synchronized apps.
  static std::vector<SimTime> make_schedule(SimTime from, SimTime until,
                                            const CbrParams& params, Rng& rng);

  const CbrStats& stats() const { return stats_; }

 private:
  void begin_on_interval();
  void tick();

  netsim::Simulator& sim_;
  endpoint::Sender& sender_;
  FlowId flow_;
  CbrParams params_;
  Rng rng_;
  SimTime until_ = 0;
  SimTime on_ends_at_ = 0;
  SimDuration gap_ = 0;
  // Synchronized mode: pre-announced ON starts; empty = independent mode.
  std::vector<SimTime> schedule_;
  std::size_t next_session_ = 0;
  CbrStats stats_;
};

}  // namespace jqos::transport
