// Reno with SACK-hole fast retransmit: the policy that was hard-coded in
// TcpWorkload before the congestion-control split. Every decision here is a
// line-for-line transplant of the old code, and the differential test in
// tests/tcp_cc_test.cc pins the combination byte-identical to pre-refactor
// FCT traces. Change this file only together with that golden.
#include <algorithm>

#include "transport/congestion.h"

namespace jqos::transport {
namespace {

class RenoCc final : public CongestionController {
 public:
  const char* name() const override { return "reno"; }

  void on_transfer_start(const TcpParams& params, std::uint32_t total_segments,
                         SimTime now) override {
    (void)total_segments, (void)now;
    params_ = params;
    cwnd_ = static_cast<double>(params.init_cwnd);
    ssthresh_ = static_cast<double>(params.init_ssthresh);
    dup_acks_ = 0;
    cwr_until_ = 0;
  }

  void on_ack(const CcEvent& ev, const CcScoreboard& sb, CcActions& out) override {
    (void)out;  // New data flows via the mechanism's unconditional window-open.
    dup_acks_ = 0;
    if (ev.ecn_echo && maybe_ecn_backoff(sb)) return;  // RFC 3168: no growth on ECE.
    if (cwnd_ < ssthresh_) {
      cwnd_ += ev.newly_acked;  // Slow start.
    } else {
      cwnd_ += static_cast<double>(ev.newly_acked) / cwnd_;  // Congestion avoidance.
    }
  }

  void on_sack(const CcEvent& ev, const CcScoreboard& sb, CcActions& out) override {
    if (ev.ecn_echo) maybe_ecn_backoff(sb);
    ++dup_acks_;
    if (dup_acks_ < params_.dupack_threshold) return;
    dup_acks_ = 0;
    out.entered_recovery = true;
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = ssthresh_;
    // SACK-style: retransmit every hole below the highest SACKed segment,
    // unless it was retransmitted within the last RTO.
    detail::collect_sack_holes(sb, ev.now, ev.rto, out.retransmit);
    out.rearm_rto = true;
  }

  void on_rto(SimTime now) override {
    (void)now;
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = 1.0;
    dup_acks_ = 0;
  }

  bool can_send(std::size_t inflight) const override {
    return inflight < static_cast<std::size_t>(cwnd_);
  }

  double cwnd_segments() const override { return cwnd_; }

 private:
  // Classic ECN response: halve once per window of data, like a loss but
  // without a retransmission. Returns true if a cut was taken.
  bool maybe_ecn_backoff(const CcScoreboard& sb) {
    if (sb.highest_acked < cwr_until_) return false;
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = ssthresh_;
    cwr_until_ = sb.next_to_send;
    return true;
  }

  TcpParams params_;
  double cwnd_ = 10.0;
  double ssthresh_ = 64.0;
  int dup_acks_ = 0;
  std::uint32_t cwr_until_ = 0;  // Sequence ending the current ECN backoff window.
};

}  // namespace

CcPtr make_reno_cc() { return std::make_unique<RenoCc>(); }

}  // namespace jqos::transport
