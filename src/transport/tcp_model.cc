#include "transport/tcp_model.h"

#include <algorithm>

#include "common/wire.h"

namespace jqos::transport {

std::vector<std::uint8_t> TcpSegment::serialize(std::size_t pad_to) const {
  ByteWriter w;
  w.u32(conn_id);
  w.u8(flags);
  w.u32(seq);
  w.u32(ack);
  w.u32(total_segments);
  w.u8(static_cast<std::uint8_t>(sacks.size()));
  for (const auto& [lo, hi] : sacks) {
    w.u32(lo);
    w.u32(hi);
  }
  auto out = w.take();
  if (out.size() < pad_to) out.resize(pad_to, 0);  // Model segment body bytes.
  return out;
}

std::optional<TcpSegment> TcpSegment::parse(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  TcpSegment seg;
  seg.conn_id = r.u32();
  seg.flags = r.u8();
  seg.seq = r.u32();
  seg.ack = r.u32();
  seg.total_segments = r.u32();
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n; ++i) {
    std::uint32_t lo = r.u32();
    std::uint32_t hi = r.u32();
    seg.sacks.emplace_back(lo, hi);
  }
  if (!r.ok()) return std::nullopt;
  return seg;
}

TcpWorkload::TcpWorkload(netsim::Network& net, endpoint::Sender& server,
                         endpoint::Receiver& client, endpoint::SessionManager& sessions,
                         endpoint::RegisterRequest session_template, const TcpParams& params)
    : net_(net),
      server_(server),
      client_(client),
      sessions_(sessions),
      session_template_(std::move(session_template)),
      params_(params),
      cc_(make_congestion_controller(params_)) {
  server_.set_receive_handler([this](const PacketPtr& pkt) { server_on_packet(pkt); });
  client_.set_delivery_handler(
      [this](const endpoint::DeliveryRecord& rec, const PacketPtr& pkt) {
        if (rec.lost || pkt == nullptr || rec.flow != flow_) return;
        auto seg = TcpSegment::parse(pkt->payload);
        if (seg && seg->conn_id == conn_id_) {
          client_on_segment(*seg, rec.recovered, pkt->ecn_ce);
        }
      });
}

void TcpWorkload::run(std::size_t n, std::size_t response_bytes, std::size_t request_bytes,
                      std::function<void()> on_all_done) {
  remaining_ = n;
  response_bytes_ = response_bytes;
  request_bytes_ = request_bytes;
  on_all_done_ = std::move(on_all_done);
  start_next_transfer();
}

void TcpWorkload::start_next_transfer() {
  if (remaining_ == 0) {
    if (on_all_done_) on_all_done_();
    return;
  }
  --remaining_;
  ++conn_id_;
  transfer_done_ = false;

  // Fresh J-QoS flow per connection: clean sequence space end to end.
  endpoint::Session session = sessions_.register_flow(server_, client_, session_template_);
  flow_ = session.flow;
  server_.set_flow_ecn(flow_, params_.ecn);

  // Reset endpoint state.
  syn_acked_ = false;
  client_retries_ = 0;
  client_total_segments_ = 0;
  client_cumulative_ = 0;
  client_received_.clear();
  client_ece_pending_ = false;
  server_conn_open_ = false;
  server_sending_ = false;
  total_segments_ =
      static_cast<std::uint32_t>((response_bytes_ + params_.mss - 1) / params_.mss);
  next_to_send_ = 0;
  highest_acked_ = 0;
  sacked_.clear();
  rto_ = params_.initial_rto;
  rtt_measured_ = false;
  srtt_ = 0.0;
  rttvar_ = 0.0;
  synack_retries_ = 0;
  send_times_.clear();
  retransmitted_.clear();
  pacing_release_ = 0;
  cc_->on_transfer_start(params_, total_segments_, net_.sim().now());

  transfer_started_ = net_.sim().now();
  client_send_syn();
}

// --------------------------- client side ----------------------------

void TcpWorkload::client_stamp_and_send(std::vector<std::uint8_t> payload) {
  auto pkt = std::make_shared<Packet>();
  pkt->type = PacketType::kData;
  pkt->flow = flow_;
  pkt->src = client_.id();
  pkt->dst = server_.id();
  pkt->sent_at = net_.sim().now();
  pkt->payload = std::move(payload);
  net_.send(client_.id(), pkt);
}

void TcpWorkload::client_send_syn() {
  TcpSegment syn;
  syn.conn_id = conn_id_;
  syn.flags = TcpSegment::kSyn;
  client_stamp_and_send(syn.serialize(40));

  const std::uint64_t gen = ++client_timer_gen_;
  const SimDuration backoff = params_.initial_rto << std::min(client_retries_, 6);
  net_.sim().after(backoff, [this, gen] { client_handshake_timer_fired(gen); });
}

void TcpWorkload::client_handshake_timer_fired(std::uint64_t gen) {
  if (gen != client_timer_gen_ || transfer_done_ || syn_acked_) return;
  if (++client_retries_ > params_.max_handshake_retries) {
    // Connection abandoned; count the elapsed time as the completion time
    // (the user gave up -- an extreme tail event).
    transfer_complete();
    return;
  }
  client_send_syn();
}

void TcpWorkload::client_send_request() {
  TcpSegment req;
  req.conn_id = conn_id_;
  req.flags = TcpSegment::kReq | TcpSegment::kAck;
  client_stamp_and_send(req.serialize(request_bytes_));
}

void TcpWorkload::client_send_ack() {
  TcpSegment ack;
  ack.conn_id = conn_id_;
  ack.flags = TcpSegment::kAck;
  // DCTCP-style per-ack echo: ECE reflects the CE mark of the segment that
  // triggered this ack.
  if (params_.ecn && client_ece_pending_) ack.flags |= TcpSegment::kEce;
  ack.ack = client_cumulative_;
  // SACK ranges: contiguous runs from the out-of-order set, at most 4.
  std::uint32_t prev = 0;
  bool open = false;
  std::uint32_t lo = 0;
  for (auto it = client_received_.lower_bound(client_cumulative_);
       it != client_received_.end(); ++it) {
    if (!open) {
      lo = *it;
      open = true;
    } else if (*it != prev + 1) {
      ack.sacks.emplace_back(lo, prev + 1);
      lo = *it;
    }
    prev = *it;
    if (ack.sacks.size() >= 4) break;
  }
  if (open && ack.sacks.size() < 4) ack.sacks.emplace_back(lo, prev + 1);

  ++acks_sent_;
  client_stamp_and_send(ack.serialize(40));
}

void TcpWorkload::client_on_segment(const TcpSegment& seg, bool via_recovery,
                                    bool ce_marked) {
  (void)via_recovery;  // Recovered segments are ACKed exactly like direct ones.
  if (transfer_done_) return;
  if (seg.flags & TcpSegment::kSyn) {
    if (!syn_acked_) {
      syn_acked_ = true;
      ++client_timer_gen_;  // Cancel the SYN retransmit timer.
      client_send_request();
    } else {
      client_send_request();  // Duplicate SYN-ACK: our request was lost.
    }
    return;
  }
  if ((seg.flags & TcpSegment::kData) == 0) return;
  client_total_segments_ = seg.total_segments;
  client_received_.insert(seg.seq);
  client_ece_pending_ = ce_marked;
  while (client_received_.count(client_cumulative_) != 0) {
    client_received_.erase(client_cumulative_);
    ++client_cumulative_;
  }
  client_send_ack();
  if (client_total_segments_ > 0 && client_cumulative_ >= client_total_segments_) {
    transfer_complete();
  }
}

// --------------------------- server side ----------------------------

void TcpWorkload::server_on_packet(const PacketPtr& pkt) {
  auto seg = TcpSegment::parse(pkt->payload);
  if (!seg || seg->conn_id != conn_id_ || transfer_done_) return;
  if (seg->flags & TcpSegment::kSyn) {
    if (!server_conn_open_) {
      server_conn_open_ = true;
      server_send_synack();
    } else if (!server_sending_) {
      server_send_synack();  // Duplicate SYN: our SYN-ACK was likely lost.
    }
    return;
  }
  if (seg->flags & TcpSegment::kReq) {
    if (!server_sending_) server_begin_response();
    return;
  }
  if (seg->flags & TcpSegment::kAck) server_on_ack(*seg);
}

void TcpWorkload::server_send_synack() {
  TcpSegment synack;
  synack.conn_id = conn_id_;
  synack.flags = TcpSegment::kSyn | TcpSegment::kAck;
  synack.total_segments = total_segments_;
  ++server_stats_.synack_sent;
  server_.send_payload(flow_, synack.serialize(40));

  // Retransmit until the request arrives, with exponential backoff.
  const std::uint64_t gen = ++server_timer_gen_;
  const SimDuration backoff = params_.initial_rto << std::min(synack_retries_, 6);
  net_.sim().after(backoff, [this, gen] {
    if (gen != server_timer_gen_ || transfer_done_ || server_sending_) return;
    if (++synack_retries_ > params_.max_handshake_retries) return;
    ++server_stats_.synack_retransmits;
    server_send_synack();
  });
}

void TcpWorkload::server_begin_response() {
  server_sending_ = true;
  ++server_timer_gen_;  // Cancel SYN-ACK retransmission.
  server_send_window();
  server_arm_rto();
}

CcScoreboard TcpWorkload::scoreboard() const {
  CcScoreboard sb;
  sb.total_segments = total_segments_;
  sb.highest_acked = highest_acked_;
  sb.next_to_send = next_to_send_;
  sb.sacked = &sacked_;
  sb.send_times = &send_times_;
  sb.retransmitted = &retransmitted_;
  return sb;
}

void TcpWorkload::server_send_window() {
  const double pace = cc_->pacing_rate_bps();
  // Queued paced retransmissions leave first: they fill the oldest holes.
  while (pace > 0.0 && !paced_retx_.empty()) {
    const std::uint32_t s = paced_retx_.front();
    if (s < highest_acked_ || s >= total_segments_ || sacked_.count(s) != 0) {
      paced_retx_.pop_front();  // Repaired by other means while queued.
      continue;
    }
    const SimTime now = net_.sim().now();
    if (now < pacing_release_) {
      server_arm_pacing_timer();
      return;
    }
    const std::size_t body =
        std::min(params_.mss, response_bytes_ - static_cast<std::size_t>(s) * params_.mss);
    const std::size_t wire = std::max<std::size_t>(body, 18);
    pacing_release_ = std::max(pacing_release_, now) +
                      static_cast<SimDuration>(static_cast<double>(wire) * 8.0 / pace * 1e6);
    paced_retx_.pop_front();
    server_send_segment(s, /*retransmit=*/true);
  }
  // Inflight: first-hole-based estimate (unacked, unsacked, already sent).
  while (next_to_send_ < total_segments_) {
    if (!cc_->can_send(scoreboard().inflight())) break;
    if (pace > 0.0) {
      // Paced send: respect the release time computed from the previous
      // segment; if it is in the future, come back on a sim timer.
      const SimTime now = net_.sim().now();
      if (now < pacing_release_) {
        server_arm_pacing_timer();
        break;
      }
      const std::size_t body = std::min(
          params_.mss, response_bytes_ - static_cast<std::size_t>(next_to_send_) * params_.mss);
      const std::size_t wire = std::max<std::size_t>(body, 18);
      pacing_release_ = std::max(pacing_release_, now) +
                        static_cast<SimDuration>(static_cast<double>(wire) * 8.0 / pace * 1e6);
    }
    server_send_segment(next_to_send_, /*retransmit=*/false);
    ++next_to_send_;
  }
}

void TcpWorkload::server_arm_pacing_timer() {
  if (pacing_timer_armed_) return;
  pacing_timer_armed_ = true;
  const std::uint32_t conn = conn_id_;
  net_.sim().at(std::max(pacing_release_, net_.sim().now()), [this, conn] {
    pacing_timer_armed_ = false;
    if (conn != conn_id_ || transfer_done_ || !server_sending_) return;
    server_send_window();
  });
}

void TcpWorkload::server_send_segment(std::uint32_t seq, bool retransmit) {
  TcpSegment seg;
  seg.conn_id = conn_id_;
  seg.flags = TcpSegment::kData;
  seg.seq = seq;
  seg.total_segments = total_segments_;
  const std::size_t body =
      std::min(params_.mss, response_bytes_ - static_cast<std::size_t>(seq) * params_.mss);
  ++server_stats_.segments_sent;
  if (retransmit) {
    ++server_stats_.retransmits;
    retransmitted_[seq] = net_.sim().now();
    cc_->on_loss(seq, net_.sim().now());
  } else {
    send_times_[seq] = net_.sim().now();
  }
  const std::size_t wire = std::max<std::size_t>(body, 18);
  cc_->on_segment_sent(seq, wire, retransmit, net_.sim().now());
  server_.send_payload(flow_, seg.serialize(wire));
}

void TcpWorkload::server_update_rtt(SimDuration sample) {
  const double s = static_cast<double>(sample);
  if (!rtt_measured_) {
    srtt_ = s;
    rttvar_ = s / 2.0;
    rtt_measured_ = true;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - s);
    srtt_ = 0.875 * srtt_ + 0.125 * s;
  }
  const auto rto = static_cast<SimDuration>(srtt_ + 4.0 * rttvar_);
  rto_ = std::clamp(rto, params_.min_rto, params_.max_rto);
}

void TcpWorkload::apply_cc_actions(const CcActions& actions) {
  if (cc_->pacing_rate_bps() > 0.0) {
    // Don't burst the repairs: a pacing controller's whole point is never
    // handing the bottleneck more than it drains, and a window's worth of
    // back-to-back retransmissions would just re-overflow the queue that
    // dropped them. Queue the holes and let server_send_window() release
    // them at the paced rate.
    for (std::uint32_t s : actions.retransmit) {
      if (s >= total_segments_ || sacked_.count(s) != 0) continue;
      if (std::find(paced_retx_.begin(), paced_retx_.end(), s) != paced_retx_.end()) {
        continue;
      }
      paced_retx_.push_back(s);
    }
    if (!paced_retx_.empty()) server_send_window();
    return;
  }
  for (std::uint32_t s : actions.retransmit) {
    if (s >= total_segments_ || sacked_.count(s) != 0) continue;
    server_send_segment(s, /*retransmit=*/true);
  }
}

void TcpWorkload::server_on_ack(const TcpSegment& seg) {
  if (!server_sending_) return;
  CcEvent ev;
  ev.now = net_.sim().now();
  ev.ecn_echo = (seg.flags & TcpSegment::kEce) != 0;
  if (ev.ecn_echo) ++server_stats_.ecn_echoes;
  const auto effective_xmit = [this](std::uint32_t s) -> SimTime {
    auto rt = retransmitted_.find(s);
    if (rt != retransmitted_.end()) return rt->second;
    auto st = send_times_.find(s);
    return st == send_times_.end() ? -1 : st->second;
  };
  for (const auto& [lo, hi] : seg.sacks) {
    for (std::uint32_t s = lo; s < hi && s < total_segments_; ++s) {
      if (sacked_.insert(s).second) {
        ++ev.newly_sacked;
        ev.delivered_xmit_time = std::max(ev.delivered_xmit_time, effective_xmit(s));
      }
    }
  }
  if (seg.ack > highest_acked_) {
    ev.newly_acked = seg.ack - highest_acked_;
    // RTT sample from the highest newly-acked first-transmission segment.
    auto ts = send_times_.find(seg.ack - 1);
    if (ts != send_times_.end() && retransmitted_.count(seg.ack - 1) == 0) {
      const SimDuration sample = net_.sim().now() - ts->second;
      server_update_rtt(sample);
      ev.rtt_sample = sample;
    }
    for (std::uint32_t s = highest_acked_; s < seg.ack; ++s) {
      ev.delivered_xmit_time = std::max(ev.delivered_xmit_time, effective_xmit(s));
      send_times_.erase(s);
      retransmitted_.erase(s);
      sacked_.erase(s);
    }
    highest_acked_ = seg.ack;
    ev.srtt = static_cast<SimDuration>(srtt_);
    ev.rto = rto_;
    CcActions actions;
    cc_->on_ack(ev, scoreboard(), actions);
    if (highest_acked_ >= total_segments_) {
      ++server_timer_gen_;  // All data acked; stop the RTO timer.
      return;
    }
    if (actions.entered_recovery) ++server_stats_.fast_retransmits;
    apply_cc_actions(actions);
    server_arm_rto();
    server_send_window();
    return;
  }
  // Duplicate cumulative ACK: hand the controller the (possibly new) SACK
  // evidence and do what it says.
  ev.srtt = static_cast<SimDuration>(srtt_);
  ev.rto = rto_;
  CcActions actions;
  cc_->on_sack(ev, scoreboard(), actions);
  if (actions.entered_recovery) ++server_stats_.fast_retransmits;
  apply_cc_actions(actions);
  if (actions.rearm_rto) server_arm_rto();
  if (actions.open_window) server_send_window();
}

void TcpWorkload::server_arm_rto() {
  const std::uint64_t gen = ++server_timer_gen_;
  net_.sim().after(rto_, [this, gen] { server_rto_fired(gen); });
}

void TcpWorkload::server_rto_fired(std::uint64_t gen) {
  if (gen != server_timer_gen_ || transfer_done_ || !server_sending_) return;
  if (highest_acked_ >= total_segments_) return;
  ++server_stats_.timeouts;
  cc_->on_rto(net_.sim().now());
  rto_ = std::min<SimDuration>(rto_ * 2, params_.max_rto);
  server_send_segment(highest_acked_, /*retransmit=*/true);
  server_arm_rto();
}

void TcpWorkload::transfer_complete() {
  if (transfer_done_) return;
  transfer_done_ = true;
  ++server_timer_gen_;
  ++client_timer_gen_;
  ++completed_;
  fct_ms_.add(to_ms(net_.sim().now() - transfer_started_));
  // Start the next transfer on a fresh event so current callbacks unwind.
  net_.sim().after(msec(10), [this] { start_next_transfer(); });
}

}  // namespace jqos::transport
