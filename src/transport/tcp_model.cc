#include "transport/tcp_model.h"

#include <algorithm>

#include "common/wire.h"

namespace jqos::transport {

std::vector<std::uint8_t> TcpSegment::serialize(std::size_t pad_to) const {
  ByteWriter w;
  w.u32(conn_id);
  w.u8(flags);
  w.u32(seq);
  w.u32(ack);
  w.u32(total_segments);
  w.u8(static_cast<std::uint8_t>(sacks.size()));
  for (const auto& [lo, hi] : sacks) {
    w.u32(lo);
    w.u32(hi);
  }
  auto out = w.take();
  if (out.size() < pad_to) out.resize(pad_to, 0);  // Model segment body bytes.
  return out;
}

std::optional<TcpSegment> TcpSegment::parse(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  TcpSegment seg;
  seg.conn_id = r.u32();
  seg.flags = r.u8();
  seg.seq = r.u32();
  seg.ack = r.u32();
  seg.total_segments = r.u32();
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n; ++i) {
    std::uint32_t lo = r.u32();
    std::uint32_t hi = r.u32();
    seg.sacks.emplace_back(lo, hi);
  }
  if (!r.ok()) return std::nullopt;
  return seg;
}

TcpWorkload::TcpWorkload(netsim::Network& net, endpoint::Sender& server,
                         endpoint::Receiver& client, endpoint::SessionManager& sessions,
                         endpoint::RegisterRequest session_template, const TcpParams& params)
    : net_(net),
      server_(server),
      client_(client),
      sessions_(sessions),
      session_template_(std::move(session_template)),
      params_(params) {
  server_.set_receive_handler([this](const PacketPtr& pkt) { server_on_packet(pkt); });
  client_.set_delivery_handler(
      [this](const endpoint::DeliveryRecord& rec, const PacketPtr& pkt) {
        if (rec.lost || pkt == nullptr || rec.flow != flow_) return;
        auto seg = TcpSegment::parse(pkt->payload);
        if (seg && seg->conn_id == conn_id_) client_on_segment(*seg, rec.recovered);
      });
}

void TcpWorkload::run(std::size_t n, std::size_t response_bytes, std::size_t request_bytes,
                      std::function<void()> on_all_done) {
  remaining_ = n;
  response_bytes_ = response_bytes;
  request_bytes_ = request_bytes;
  on_all_done_ = std::move(on_all_done);
  start_next_transfer();
}

void TcpWorkload::start_next_transfer() {
  if (remaining_ == 0) {
    if (on_all_done_) on_all_done_();
    return;
  }
  --remaining_;
  ++conn_id_;
  transfer_done_ = false;

  // Fresh J-QoS flow per connection: clean sequence space end to end.
  endpoint::Session session = sessions_.register_flow(server_, client_, session_template_);
  flow_ = session.flow;

  // Reset endpoint state.
  syn_acked_ = false;
  client_retries_ = 0;
  client_total_segments_ = 0;
  client_cumulative_ = 0;
  client_received_.clear();
  server_conn_open_ = false;
  server_sending_ = false;
  total_segments_ =
      static_cast<std::uint32_t>((response_bytes_ + params_.mss - 1) / params_.mss);
  next_to_send_ = 0;
  highest_acked_ = 0;
  sacked_.clear();
  cwnd_ = static_cast<double>(params_.init_cwnd);
  ssthresh_ = static_cast<double>(params_.init_ssthresh);
  dup_acks_ = 0;
  rto_ = params_.initial_rto;
  rtt_measured_ = false;
  srtt_ = 0.0;
  rttvar_ = 0.0;
  synack_retries_ = 0;
  send_times_.clear();
  retransmitted_.clear();

  transfer_started_ = net_.sim().now();
  client_send_syn();
}

// --------------------------- client side ----------------------------

void TcpWorkload::client_send_syn() {
  TcpSegment syn;
  syn.conn_id = conn_id_;
  syn.flags = TcpSegment::kSyn;
  auto pkt = std::make_shared<Packet>();
  pkt->type = PacketType::kData;
  pkt->flow = flow_;
  pkt->src = client_.id();
  pkt->dst = server_.id();
  pkt->sent_at = net_.sim().now();
  pkt->payload = syn.serialize(40);
  net_.send(client_.id(), pkt);

  const std::uint64_t gen = ++client_timer_gen_;
  const SimDuration backoff = params_.initial_rto << std::min(client_retries_, 6);
  net_.sim().after(backoff, [this, gen] { client_handshake_timer_fired(gen); });
}

void TcpWorkload::client_handshake_timer_fired(std::uint64_t gen) {
  if (gen != client_timer_gen_ || transfer_done_ || syn_acked_) return;
  if (++client_retries_ > params_.max_handshake_retries) {
    // Connection abandoned; count the elapsed time as the completion time
    // (the user gave up -- an extreme tail event).
    transfer_complete();
    return;
  }
  client_send_syn();
}

void TcpWorkload::client_send_request() {
  TcpSegment req;
  req.conn_id = conn_id_;
  req.flags = TcpSegment::kReq | TcpSegment::kAck;
  auto pkt = std::make_shared<Packet>();
  pkt->type = PacketType::kData;
  pkt->flow = flow_;
  pkt->src = client_.id();
  pkt->dst = server_.id();
  pkt->sent_at = net_.sim().now();
  pkt->payload = req.serialize(request_bytes_);
  net_.send(client_.id(), pkt);
}

void TcpWorkload::client_send_ack() {
  TcpSegment ack;
  ack.conn_id = conn_id_;
  ack.flags = TcpSegment::kAck;
  ack.ack = client_cumulative_;
  // SACK ranges: contiguous runs from the out-of-order set, at most 4.
  std::uint32_t prev = 0;
  bool open = false;
  std::uint32_t lo = 0;
  for (auto it = client_received_.lower_bound(client_cumulative_);
       it != client_received_.end(); ++it) {
    if (!open) {
      lo = *it;
      open = true;
    } else if (*it != prev + 1) {
      ack.sacks.emplace_back(lo, prev + 1);
      lo = *it;
    }
    prev = *it;
    if (ack.sacks.size() >= 4) break;
  }
  if (open && ack.sacks.size() < 4) ack.sacks.emplace_back(lo, prev + 1);

  auto pkt = std::make_shared<Packet>();
  pkt->type = PacketType::kData;
  pkt->flow = flow_;
  pkt->src = client_.id();
  pkt->dst = server_.id();
  pkt->sent_at = net_.sim().now();
  pkt->payload = ack.serialize(40);
  ++acks_sent_;
  net_.send(client_.id(), pkt);
}

void TcpWorkload::client_on_segment(const TcpSegment& seg, bool via_recovery) {
  (void)via_recovery;  // Recovered segments are ACKed exactly like direct ones.
  if (transfer_done_) return;
  if (seg.flags & TcpSegment::kSyn) {
    if (!syn_acked_) {
      syn_acked_ = true;
      ++client_timer_gen_;  // Cancel the SYN retransmit timer.
      client_send_request();
    } else {
      client_send_request();  // Duplicate SYN-ACK: our request was lost.
    }
    return;
  }
  if ((seg.flags & TcpSegment::kData) == 0) return;
  client_total_segments_ = seg.total_segments;
  client_received_.insert(seg.seq);
  while (client_received_.count(client_cumulative_) != 0) {
    client_received_.erase(client_cumulative_);
    ++client_cumulative_;
  }
  client_send_ack();
  if (client_total_segments_ > 0 && client_cumulative_ >= client_total_segments_) {
    transfer_complete();
  }
}

// --------------------------- server side ----------------------------

void TcpWorkload::server_on_packet(const PacketPtr& pkt) {
  auto seg = TcpSegment::parse(pkt->payload);
  if (!seg || seg->conn_id != conn_id_ || transfer_done_) return;
  if (seg->flags & TcpSegment::kSyn) {
    if (!server_conn_open_) {
      server_conn_open_ = true;
      server_send_synack();
    } else if (!server_sending_) {
      server_send_synack();  // Duplicate SYN: our SYN-ACK was likely lost.
    }
    return;
  }
  if (seg->flags & TcpSegment::kReq) {
    if (!server_sending_) server_begin_response();
    return;
  }
  if (seg->flags & TcpSegment::kAck) server_on_ack(*seg);
}

void TcpWorkload::server_send_synack() {
  TcpSegment synack;
  synack.conn_id = conn_id_;
  synack.flags = TcpSegment::kSyn | TcpSegment::kAck;
  synack.total_segments = total_segments_;
  ++server_stats_.synack_sent;
  server_.send_payload(flow_, synack.serialize(40));

  // Retransmit until the request arrives, with exponential backoff.
  const std::uint64_t gen = ++server_timer_gen_;
  const SimDuration backoff = params_.initial_rto << std::min(synack_retries_, 6);
  net_.sim().after(backoff, [this, gen] {
    if (gen != server_timer_gen_ || transfer_done_ || server_sending_) return;
    if (++synack_retries_ > params_.max_handshake_retries) return;
    ++server_stats_.synack_retransmits;
    server_send_synack();
  });
}

void TcpWorkload::server_begin_response() {
  server_sending_ = true;
  ++server_timer_gen_;  // Cancel SYN-ACK retransmission.
  server_send_window();
  server_arm_rto();
}

void TcpWorkload::server_send_window() {
  // Inflight: first-hole-based estimate (unacked, unsacked, already sent).
  while (next_to_send_ < total_segments_) {
    std::size_t inflight = 0;
    for (std::uint32_t s = highest_acked_; s < next_to_send_; ++s) {
      if (sacked_.count(s) == 0) ++inflight;
    }
    if (inflight >= static_cast<std::size_t>(cwnd_)) break;
    server_send_segment(next_to_send_, /*retransmit=*/false);
    ++next_to_send_;
  }
}

void TcpWorkload::server_send_segment(std::uint32_t seq, bool retransmit) {
  TcpSegment seg;
  seg.conn_id = conn_id_;
  seg.flags = TcpSegment::kData;
  seg.seq = seq;
  seg.total_segments = total_segments_;
  const std::size_t body =
      std::min(params_.mss, response_bytes_ - static_cast<std::size_t>(seq) * params_.mss);
  ++server_stats_.segments_sent;
  if (retransmit) {
    ++server_stats_.retransmits;
    retransmitted_[seq] = net_.sim().now();
  } else {
    send_times_[seq] = net_.sim().now();
  }
  server_.send_payload(flow_, seg.serialize(std::max<std::size_t>(body, 18)));
}

void TcpWorkload::server_update_rtt(SimDuration sample) {
  const double s = static_cast<double>(sample);
  if (!rtt_measured_) {
    srtt_ = s;
    rttvar_ = s / 2.0;
    rtt_measured_ = true;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - s);
    srtt_ = 0.875 * srtt_ + 0.125 * s;
  }
  const auto rto = static_cast<SimDuration>(srtt_ + 4.0 * rttvar_);
  rto_ = std::clamp(rto, params_.min_rto, params_.max_rto);
}

void TcpWorkload::server_on_ack(const TcpSegment& seg) {
  if (!server_sending_) return;
  for (const auto& [lo, hi] : seg.sacks) {
    for (std::uint32_t s = lo; s < hi && s < total_segments_; ++s) sacked_.insert(s);
  }
  if (seg.ack > highest_acked_) {
    const std::uint32_t newly = seg.ack - highest_acked_;
    // RTT sample from the highest newly-acked first-transmission segment.
    auto ts = send_times_.find(seg.ack - 1);
    if (ts != send_times_.end() && retransmitted_.count(seg.ack - 1) == 0) {
      server_update_rtt(net_.sim().now() - ts->second);
    }
    for (std::uint32_t s = highest_acked_; s < seg.ack; ++s) {
      send_times_.erase(s);
      retransmitted_.erase(s);
      sacked_.erase(s);
    }
    highest_acked_ = seg.ack;
    dup_acks_ = 0;
    if (cwnd_ < ssthresh_) {
      cwnd_ += newly;  // Slow start.
    } else {
      cwnd_ += static_cast<double>(newly) / cwnd_;  // Congestion avoidance.
    }
    if (highest_acked_ >= total_segments_) {
      ++server_timer_gen_;  // All data acked; stop the RTO timer.
      return;
    }
    server_arm_rto();
    server_send_window();
    return;
  }
  // Duplicate cumulative ACK.
  ++dup_acks_;
  if (dup_acks_ >= params_.dupack_threshold) {
    dup_acks_ = 0;
    ++server_stats_.fast_retransmits;
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = ssthresh_;
    // SACK-style: retransmit every hole below the highest SACKed segment,
    // unless it was retransmitted within the last RTO.
    const std::uint32_t high = sacked_.empty() ? highest_acked_ + 1 : *sacked_.rbegin() + 1;
    for (std::uint32_t s = highest_acked_; s < high && s < total_segments_; ++s) {
      if (sacked_.count(s) != 0) continue;
      auto rt = retransmitted_.find(s);
      if (rt != retransmitted_.end() && net_.sim().now() - rt->second < rto_) continue;
      server_send_segment(s, /*retransmit=*/true);
    }
    server_arm_rto();
  }
}

void TcpWorkload::server_arm_rto() {
  const std::uint64_t gen = ++server_timer_gen_;
  net_.sim().after(rto_, [this, gen] { server_rto_fired(gen); });
}

void TcpWorkload::server_rto_fired(std::uint64_t gen) {
  if (gen != server_timer_gen_ || transfer_done_ || !server_sending_) return;
  if (highest_acked_ >= total_segments_) return;
  ++server_stats_.timeouts;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  dup_acks_ = 0;
  rto_ = std::min<SimDuration>(rto_ * 2, params_.max_rto);
  server_send_segment(highest_acked_, /*retransmit=*/true);
  server_arm_rto();
}

void TcpWorkload::transfer_complete() {
  if (transfer_done_) return;
  transfer_done_ = true;
  ++server_timer_gen_;
  ++client_timer_gen_;
  ++completed_;
  fct_ms_.add(to_ms(net_.sim().now() - transfer_started_));
  // Start the next transfer on a fresh event so current callbacks unwind.
  net_.sim().after(msec(10), [this] { start_next_transfer(); });
}

}  // namespace jqos::transport
