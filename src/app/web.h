// Web-transfer workload built on the TCP model: N short request/response
// transfers, the Section 6.4 scenario (12 B request, 50 KB response). Thin
// convenience wrapper so examples and benches share one entry point.
#pragma once

#include <cstdint>

#include "transport/tcp_model.h"

namespace jqos::app {

struct WebWorkloadParams {
  std::size_t requests = 1000;
  std::size_t response_bytes = 50 * 1000;
  std::size_t request_bytes = 12;
  transport::TcpParams tcp;
};

struct WebResult {
  Samples fct_ms;
  transport::TcpServerStats server;
  std::uint64_t acks = 0;
  std::size_t completed = 0;

  double tail_ms(double percentile) const { return fct_ms.percentile(percentile); }
};

// Runs the workload to completion on the supplied (already wired) hosts and
// returns the FCT distribution. The simulator is run until the workload
// finishes (or `hard_deadline`, whichever first).
WebResult run_web_workload(netsim::Network& net, endpoint::Sender& server,
                           endpoint::Receiver& client, endpoint::SessionManager& sessions,
                           const endpoint::RegisterRequest& session_template,
                           const WebWorkloadParams& params,
                           SimDuration hard_deadline = minutes(600));

}  // namespace jqos::app
