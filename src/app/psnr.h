// Frame-level PSNR / QoE model for the Skype case study (Figure 9(a)).
//
// The paper scores received video against the reference with VQMT on a
// frame-by-frame basis and plots the CDF of PSNR scores. We model the same
// pipeline: each frame's delivery outcome (all packets on time / concealed
// by app FEC / damaged / frozen) maps to a PSNR sample, with freezes
// decaying over consecutive lost frames the way a frozen-then-pixelated
// call looks to VQMT.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "app/video.h"
#include "common/rng.h"
#include "common/stats.h"

namespace jqos::app {

struct PsnrParams {
  double good_mean_db = 42.0;
  double good_stddev_db = 2.0;
  double damaged_mean_db = 30.0;  // Frame shown with concealment artifacts.
  double damaged_stddev_db = 2.5;
  double freeze_start_db = 27.0;  // First frozen frame.
  double freeze_floor_db = 20.0;  // Long freezes bottom out here.
  double freeze_decay_db = 1.0;   // Per additional consecutive frozen frame.
  double min_db = 18.0;
  double max_db = 50.0;
  // A packet only helps its frame if delivered within the playout deadline.
  SimDuration playout_deadline = msec(400);
};

// Delivery outcome for one packet, fed from receiver DeliveryRecords.
struct PacketOutcome {
  bool delivered = false;
  SimTime delivered_at = 0;
};

// Scores a streamed video: `outcomes` maps sequence number -> outcome.
// Returns one PSNR sample per frame in layout order.
Samples score_video(const FrameLayout& layout, const VideoParams& video,
                    const std::unordered_map<SeqNo, PacketOutcome>& outcomes,
                    const PsnrParams& params, Rng& rng);

}  // namespace jqos::app
