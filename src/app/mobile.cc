#include "app/mobile.h"

#include <cmath>

namespace jqos::app {

Samples mobile_rtt_samples(const MobileParams& params, Rng& rng, std::size_t n) {
  Samples s;
  for (std::size_t i = 0; i < n; ++i) {
    s.add(rng.lognormal(std::log(params.rtt_median_ms), params.rtt_sigma));
  }
  return s;
}

MobileFeasibility evaluate_mobile(const MobileParams& params, Rng& rng,
                                  std::size_t rtt_samples) {
  MobileFeasibility f;
  f.dup_bitrate_mbps = 2.0 * params.call_mbps;
  f.dup_fits_typical_uplink = f.dup_bitrate_mbps <= params.uplink_min_mbps;
  f.dup_fits_good_uplink = f.dup_bitrate_mbps <= params.uplink_max_mbps;
  f.battery_overhead_percent =
      100.0 * params.battery_dup_extra_mah / params.battery_base_mah;

  Samples rtts = mobile_rtt_samples(params, rng, rtt_samples);
  f.rtt_p50_ms = rtts.percentile(50);
  f.rtt_p90_ms = rtts.percentile(90);
  // Cooperative recovery: NACK to DC (~RTT/2) + peer solicitation round
  // (~RTT) + recovered packet (~RTT/2) => about 2 cellular RTTs.
  f.recovery_latency_ms = 2.0 * f.rtt_p50_ms;
  // Interactive budget ~150 ms one way; recovery helps when it fits and the
  // added delay is consistent (the paper's outage experiment succeeded).
  f.recovery_feasible_interactive = f.recovery_latency_ms <= 150.0;
  return f;
}

}  // namespace jqos::app
