#include "app/web.h"

namespace jqos::app {

WebResult run_web_workload(netsim::Network& net, endpoint::Sender& server,
                           endpoint::Receiver& client, endpoint::SessionManager& sessions,
                           const endpoint::RegisterRequest& session_template,
                           const WebWorkloadParams& params, SimDuration hard_deadline) {
  transport::TcpWorkload workload(net, server, client, sessions, session_template,
                                  params.tcp);
  bool done = false;
  workload.run(params.requests, params.response_bytes, params.request_bytes,
               [&done] { done = true; });
  const SimTime deadline = net.sim().now() + hard_deadline;
  while (!done && net.sim().now() < deadline && !net.sim().idle()) {
    net.sim().step(10000);
  }
  WebResult result;
  result.fct_ms = workload.fct_ms();
  result.server = workload.server_stats();
  result.acks = workload.acks_sent();
  result.completed = workload.completed();
  return result;
}

}  // namespace jqos::app
