// Mobile-network feasibility model (Section 6.5).
//
// The paper's mobile study is a set of threshold checks made from
// measurements on LTE handsets: does duplicating a Skype stream fit in
// typical cellular uplinks, what does duplication cost in battery, and are
// cellular RTTs to the major clouds low enough for recovery to help. We
// encode those measured constants and the checks themselves; the bench
// prints the same findings table.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace jqos::app {

struct MobileParams {
  // "our survey of major US carriers shows users can typically expect 2-5
  // Mbps uplink bandwidth".
  double uplink_min_mbps = 2.0;
  double uplink_max_mbps = 5.0;
  // Skype HD call bitrate and the duplicated total.
  double call_mbps = 1.5;
  // Battery drain measured over 20-minute calls, with and without
  // duplication ("in both cases the battery drain was ~20 mAh").
  double battery_base_mah = 20.0;
  double battery_dup_extra_mah = 0.6;  // Below measurement noise.
  // Cellular RTT to cloud providers: median 50-60 ms, p50-p90 spread
  // 50-100 ms (1,000 pings to Amazon/Microsoft/Google over LTE).
  double rtt_median_ms = 55.0;
  double rtt_sigma = 0.35;  // Lognormal spread reproducing the 50-100 band.
};

struct MobileFeasibility {
  double dup_bitrate_mbps = 0.0;
  bool dup_fits_typical_uplink = false;   // vs uplink_min
  bool dup_fits_good_uplink = false;      // vs uplink_max
  double battery_overhead_percent = 0.0;
  double rtt_p50_ms = 0.0;
  double rtt_p90_ms = 0.0;
  // Cooperative recovery costs ~4 host<->DC hops; feasible for apps that
  // adapt to consistent added delay (the paper's Skype-over-LTE finding).
  double recovery_latency_ms = 0.0;
  bool recovery_feasible_interactive = false;
};

// Draws an RTT sample distribution and evaluates every Section 6.5 check.
MobileFeasibility evaluate_mobile(const MobileParams& params, Rng& rng,
                                  std::size_t rtt_samples = 1000);

// RTT sample set alone (for the bench's distribution table).
Samples mobile_rtt_samples(const MobileParams& params, Rng& rng, std::size_t n = 1000);

}  // namespace jqos::app
