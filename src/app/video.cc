#include "app/video.h"

namespace jqos::app {

VideoSource::VideoSource(netsim::Simulator& sim, endpoint::Sender& sender, FlowId flow,
                         const VideoParams& params, Rng rng)
    : sim_(sim), sender_(sender), flow_(flow), params_(params), rng_(rng) {}

void VideoSource::start(SimTime until) {
  until_ = until;
  send_frame();
}

void VideoSource::send_frame() {
  if (sim_.now() >= until_) return;
  const std::size_t pkts = static_cast<std::size_t>(
      rng_.uniform_int(static_cast<std::int64_t>(params_.min_packets_per_frame),
                       static_cast<std::int64_t>(params_.max_packets_per_frame)));
  // Packet size follows from bitrate / fps / packets-per-frame (mean).
  const double mean_ppf =
      (static_cast<double>(params_.min_packets_per_frame) +
       static_cast<double>(params_.max_packets_per_frame)) / 2.0;
  const std::size_t bytes_per_packet = static_cast<std::size_t>(
      params_.bitrate_bps / params_.fps / mean_ppf / 8.0);

  FrameLayout::Frame frame;
  frame.first_seq = sender_.next_seq(flow_);
  frame.packets = pkts;
  frame.sent_at = sim_.now();
  frame.key_frame = frame_index_ % 30 == 0;  // Periodic I-frames.
  layout_.frames.push_back(frame);
  ++frame_index_;

  for (std::size_t i = 0; i < pkts; ++i) {
    sender_.send(flow_, bytes_per_packet);
    ++packets_sent_;
  }

  const auto gap = static_cast<SimDuration>(1e6 / params_.fps);
  sim_.after(gap, [this] { send_frame(); });
}

}  // namespace jqos::app
