// Skype-like interactive video source (Section 6.3).
//
// Parameters follow the paper's characterization of interactive video:
// 10-15 fps average frame rate, frames of 2-5 packets, ~1.5 Mbps for HD
// (Section 5's coding-parameter discussion and the Skype bandwidth note in
// Section 6.5). The source runs over a jqos::endpoint::Sender; the
// application-level FEC knob models Skype's built-in redundancy, which can
// conceal a bounded number of lost packets per frame.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "endpoint/sender.h"
#include "netsim/simulator.h"

namespace jqos::app {

struct VideoParams {
  double fps = 12.0;
  std::size_t min_packets_per_frame = 2;
  std::size_t max_packets_per_frame = 5;
  double bitrate_bps = 1.5e6;
  // Lost packets per frame Skype's own FEC can conceal (0 disables).
  std::size_t app_fec_per_frame = 1;
};

// Which packets (by flow sequence number) belong to which frame; produced by
// the source, consumed by the QoE scorer after the run.
struct FrameLayout {
  struct Frame {
    SeqNo first_seq = 0;
    std::size_t packets = 0;
    SimTime sent_at = 0;
    bool key_frame = false;  // I-frame (selective-duplication candidates).
  };
  std::vector<Frame> frames;
};

class VideoSource {
 public:
  VideoSource(netsim::Simulator& sim, endpoint::Sender& sender, FlowId flow,
              const VideoParams& params, Rng rng);

  // Streams frames from now until `until`.
  void start(SimTime until);

  const FrameLayout& layout() const { return layout_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  const VideoParams& params() const { return params_; }

 private:
  void send_frame();

  netsim::Simulator& sim_;
  endpoint::Sender& sender_;
  FlowId flow_;
  VideoParams params_;
  Rng rng_;
  SimTime until_ = 0;
  std::size_t frame_index_ = 0;
  std::uint64_t packets_sent_ = 0;
  FrameLayout layout_;
};

}  // namespace jqos::app
