#include "app/psnr.h"

#include <algorithm>

namespace jqos::app {

Samples score_video(const FrameLayout& layout, const VideoParams& video,
                    const std::unordered_map<SeqNo, PacketOutcome>& outcomes,
                    const PsnrParams& params, Rng& rng) {
  Samples psnr;
  std::size_t consecutive_frozen = 0;
  for (const auto& frame : layout.frames) {
    std::size_t lost = 0;
    for (std::size_t i = 0; i < frame.packets; ++i) {
      const SeqNo seq = frame.first_seq + static_cast<SeqNo>(i);
      auto it = outcomes.find(seq);
      const bool on_time = it != outcomes.end() && it->second.delivered &&
                           it->second.delivered_at - frame.sent_at <= params.playout_deadline;
      if (!on_time) ++lost;
    }

    double db;
    if (lost == 0) {
      db = rng.normal(params.good_mean_db, params.good_stddev_db);
      consecutive_frozen = 0;
    } else if (lost <= video.app_fec_per_frame) {
      // Skype's own FEC conceals the loss almost perfectly.
      db = rng.normal(params.good_mean_db - 2.0, params.good_stddev_db);
      consecutive_frozen = 0;
    } else if (lost < frame.packets) {
      db = rng.normal(params.damaged_mean_db, params.damaged_stddev_db);
      consecutive_frozen = 0;
    } else {
      // Fully lost frame: the decoder repeats the previous frame; PSNR
      // degrades as the scene drifts away from the frozen image.
      ++consecutive_frozen;
      const double decayed = params.freeze_start_db -
                             params.freeze_decay_db *
                                 static_cast<double>(consecutive_frozen - 1);
      db = std::max(params.freeze_floor_db, decayed) + rng.normal(0.0, 1.0);
    }
    psnr.add(std::clamp(db, params.min_db, params.max_db));
  }
  return psnr;
}

}  // namespace jqos::app
