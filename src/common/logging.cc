#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace jqos {
namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

LogLevel log_threshold() { return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed)); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= g_threshold.load(std::memory_order_relaxed);
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void log_line(LogLevel level, const char* file, int line, const std::string& msg) {
  // Serialize whole lines; the live runtime logs from several threads.
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", to_string(level), basename_of(file), line,
               msg.c_str());
}

}  // namespace jqos
