// Statistics utilities used throughout the evaluation harness: streaming
// moments, sample sets with percentile/CDF/CCDF extraction, fixed-bin
// histograms (e.g. the PSNR bins of Figure 9(a)), and an O(1)-memory
// streaming quantile sketch for soak runs too large to store every sample.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace jqos {

// Streaming count/mean/variance/min/max (Welford). O(1) memory, suitable for
// per-path counters in month-long simulated deployments.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // Population variance.
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// A collected sample set with percentile and distribution queries. Sorting
// is lazy and cached; add() invalidates the cache.
class Samples {
 public:
  void add(double x);
  void reserve(std::size_t n) { xs_.reserve(n); }

  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  double mean() const;
  double min() const;
  double max() const;

  // Linear-interpolated percentile, p in [0, 100]. NaN on an empty set (a
  // 0.0 would be indistinguishable from a real zero sample). With one
  // sample every percentile is that sample; with two, p interpolates
  // linearly between them. QuantileSketch matches these answers exactly
  // while all data still fits in its level-0 buffer.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  // Fraction of samples <= x (the empirical CDF evaluated at x).
  double cdf_at(double x) const;
  // Fraction of samples > x.
  double ccdf_at(double x) const { return 1.0 - cdf_at(x); }

  // n evenly spaced (value, cumulative fraction) points, suitable for
  // printing a CDF series like the paper's figures.
  struct CdfPoint {
    double value;
    double fraction;
  };
  std::vector<CdfPoint> cdf_points(std::size_t n = 20) const;

  const std::vector<double>& values() const { return xs_; }

 private:
  void ensure_sorted() const;

  std::vector<double> xs_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Fixed-width binned histogram over [lo, hi). Out-of-range samples are NOT
// clamped into the edge bins (that silently corrupted the tail bins of the
// Figure 9(a) PSNR histograms); they are counted separately as underflow
// (x < lo) and overflow (x >= hi) and still contribute to total().
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const { return bin_lo(i + 1); }

  // Samples below lo / at-or-above hi, kept out of the bins.
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t in_range() const { return total_ - underflow_ - overflow_; }

  // Cumulative fraction of samples <= bin_hi(i): underflow plus bins
  // [0, i], over total(). Reaches 1.0 at the last bin only when nothing
  // overflowed, which is exactly what a CDF over [lo, hi) should say.
  double cumulative_fraction(std::size_t i) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

// Streaming quantile estimation in O(k log(n/k)) memory -- the soak-run
// replacement for Samples, which stores every value and cannot survive a
// 10M-session churn run. MRL/KLL-style: a stack of capacity-k buffers where
// level L holds items of weight 2^L. A full level is sorted and every other
// element (alternating parity per level, tracked in the sketch state so the
// whole structure is a pure function of the insertion sequence) is promoted
// to the next level with doubled weight.
//
// Contracts:
//  * Exact while n <= k: everything sits unweighted in level 0 and
//    quantile() uses the same rank interpolation as Samples::percentile, so
//    small-n answers are bit-identical to Samples (goldens in common_test).
//  * percentile() of an empty sketch is NaN, matching Samples.
//  * merge() mirrors OnlineStats::merge: per-shard sketches combine into
//    the totals sketch, and the result is a deterministic function of the
//    operand states and merge order. ShardedRunner-style callers merge in
//    shard-index order, making merged quantiles bit-identical across
//    thread counts.
//  * Rank error: observed well under 1% of n at p50/p99/p999 for k = 1024
//    over multi-million-sample streams (pinned by tests/workload_test.cc).
class QuantileSketch {
 public:
  explicit QuantileSketch(std::size_t k = 1024);

  void add(double x);
  void merge(const QuantileSketch& other);

  std::uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double min() const;  // NaN when empty.
  double max() const;  // NaN when empty.

  // Interpolated quantile estimate, q in [0, 1]; NaN when empty.
  double quantile(double q) const;
  // Samples-compatible spelling, p in [0, 100].
  double percentile(double p) const { return quantile(p / 100.0); }

  // Stored values across all levels (memory footprint, not sample count).
  std::size_t retained() const;

 private:
  void compact(std::size_t level);

  std::size_t k_;
  std::uint64_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::vector<double>> levels_;
  std::vector<std::uint8_t> parity_;  // Per-level compaction phase.
};

// Renders "p50=.. p90=.. p99=.." for log lines and reports.
std::string summarize_percentiles(const Samples& s);

}  // namespace jqos
