// Statistics utilities used throughout the evaluation harness: streaming
// moments, sample sets with percentile/CDF/CCDF extraction, and fixed-bin
// histograms (e.g. the PSNR bins of Figure 9(a)).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace jqos {

// Streaming count/mean/variance/min/max (Welford). O(1) memory, suitable for
// per-path counters in month-long simulated deployments.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // Population variance.
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// A collected sample set with percentile and distribution queries. Sorting
// is lazy and cached; add() invalidates the cache.
class Samples {
 public:
  void add(double x);
  void reserve(std::size_t n) { xs_.reserve(n); }

  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  double mean() const;
  double min() const;
  double max() const;

  // Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  // Fraction of samples <= x (the empirical CDF evaluated at x).
  double cdf_at(double x) const;
  // Fraction of samples > x.
  double ccdf_at(double x) const { return 1.0 - cdf_at(x); }

  // n evenly spaced (value, cumulative fraction) points, suitable for
  // printing a CDF series like the paper's figures.
  struct CdfPoint {
    double value;
    double fraction;
  };
  std::vector<CdfPoint> cdf_points(std::size_t n = 20) const;

  const std::vector<double>& values() const { return xs_; }

 private:
  void ensure_sorted() const;

  std::vector<double> xs_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Fixed-width binned histogram over [lo, hi); out-of-range samples clamp to
// the end bins (the paper's PSNR CDF clamps scores the same way).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const { return bin_lo(i + 1); }

  // Cumulative fraction of samples in bins [0, i].
  double cumulative_fraction(std::size_t i) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Renders "p50=.. p90=.. p99=.." for log lines and reports.
std::string summarize_percentiles(const Samples& s);

}  // namespace jqos
