// The J-QoS packet: the single message type exchanged between end points and
// data-center services, in both the discrete-event simulator and the live
// UDP runtime.
//
// The paper's prototype encapsulates transport segments in a "J-QoS header"
// (Section 5). We model that header explicitly: a packet carries its type,
// the flow it belongs to, a per-flow sequence number (the cache/recovery
// identifier, Section 3.2), routing endpoints, and - for coded packets - the
// metadata CR-WAN needs for cooperative recovery: which flows and sequence
// numbers are represented in the batch (Section 4.2: "DC1 must also include
// information in the coded packets about which flows and sequence numbers
// are represented").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"

namespace jqos {

enum class PacketType : std::uint8_t {
  kData = 0,          // Application payload (direct path, duplicate, or forwarded).
  kInCoded = 1,       // In-stream FEC packet (protects one flow).
  kCrossCoded = 2,    // Cross-stream coded packet (protects a batch of flows).
  kNack = 3,          // Receiver -> DC2: a packet was declared lost.
  kNackCheck = 4,     // DC2 -> receiver: confirm loss before recovery (burst
                      // boundary guard, Section 3.4).
  kNackConfirm = 5,   // Receiver -> DC2: yes, still missing.
  kPull = 6,          // Receiver -> DC2 cache: retrieve a stored packet.
  kCoopRequest = 7,   // DC2 -> peer receiver: send back your data packet.
  kCoopResponse = 8,  // Peer receiver -> DC2: here is my data packet.
  kRecovered = 9,     // DC2 -> receiver: the decoded / cached packet.
  kControl = 10,      // Control channel (registration, ON-interval sync).
};

const char* to_string(PacketType t);

// Which J-QoS service should process a packet when it reaches a data
// center. Set by the sender according to the service-selection decision
// (Section 3.5); carried in the J-QoS header.
enum class ServiceType : std::uint8_t {
  kNone = 0,     // Plain Internet delivery; DCs never see these.
  kForward = 1,  // Forwarding service (Section 3.1).
  kCache = 2,    // Caching service (Section 3.2).
  kCode = 3,     // Coding service / CR-WAN (Sections 3.3, 4).
};

const char* to_string(ServiceType s);

// Metadata attached to kCrossCoded (and kInCoded) packets: enough for DC2 to
// know which data packets the coded symbol spans and which receivers to
// solicit during cooperative recovery.
struct CodedMeta {
  std::uint32_t batch_id = 0;  // Unique per (encoding DC, batch).
  std::uint8_t index = 0;      // Index of this coded symbol within the batch
                               // (0..k+r-1 in RS codeword space; coded symbols
                               // use indices >= k).
  std::uint8_t k = 0;          // Number of data packets in the batch.
  std::uint8_t r = 0;          // Number of coded packets generated.
  std::vector<PacketKey> covered;  // The k data packets, in codeword order.

  friend bool operator==(const CodedMeta&, const CodedMeta&) = default;
};

struct Packet {
  PacketType type = PacketType::kData;
  ServiceType service = ServiceType::kNone;
  FlowId flow = 0;
  SeqNo seq = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  // Final destination when the packet is being relayed through the overlay
  // (dst is then the next hop). kInvalidNode means dst is final. The
  // forwarding service routes on this field (Section 3.1).
  NodeId final_dst = kInvalidNode;
  // Origin timestamp (set by the first sender); used for one-way-delay and
  // recovery-latency accounting, mirroring the probe timestamps the paper's
  // deployment logged.
  SimTime sent_at = 0;
  // ECN codepoints. ecn_capable (ECT) says the sending transport understands
  // congestion marks; an AQM queue disc may then set ecn_ce (CE) instead of
  // dropping. Both travel in spare bits of the wire header's flags byte, so
  // wire_size() — and therefore every bandwidth/egress charge — is unchanged.
  bool ecn_capable = false;
  bool ecn_ce = false;
  std::optional<CodedMeta> meta;
  std::vector<std::uint8_t> payload;

  // Size this packet would occupy on the wire (header + metadata + payload);
  // the simulator charges bandwidth and the cost model charges egress by
  // this size.
  std::size_t wire_size() const;

  // Wire encoding (used verbatim by the live runtime; the simulator
  // round-trips packets through it in debug tests to keep the two paths in
  // sync).
  std::vector<std::uint8_t> serialize() const;
  static std::optional<Packet> parse(std::span<const std::uint8_t> data);

  PacketKey key() const { return PacketKey{flow, seq}; }
  bool is_coded() const {
    return type == PacketType::kInCoded || type == PacketType::kCrossCoded;
  }
};

// Packets are passed by shared const pointer inside the simulator: a single
// duplication at the sender fans one allocation out to the Internet path and
// the cloud path, as the prototype's packet duplication does.
using PacketPtr = std::shared_ptr<const Packet>;

// Convenience factories -------------------------------------------------
//
// Every factory takes an optional PacketPool (see common/packet_pool.h).
// With a pool, storage and the shared_ptr control block are recycled and
// steady state touches the global allocator zero times per packet; with
// nullptr the factories are plain make_shared. The returned values are
// identical either way, so pooling can never perturb simulation results.

class PacketPool;

PacketPtr make_data_packet(FlowId flow, SeqNo seq, NodeId src, NodeId dst,
                           SimTime now, std::size_t payload_bytes,
                           PacketPool* pool = nullptr);

PacketPtr make_control_packet(NodeId src, NodeId dst, SimTime now,
                              std::vector<std::uint8_t> payload,
                              PacketPool* pool = nullptr);

// The choke points the ad-hoc builders (NACK/response/confirm/copy sites in
// endpoint and services) go through, so header fields start uniformly
// initialized and pooling covers every hot allocation:

// A blank mutable packet (all fields default-initialized).
std::shared_ptr<Packet> alloc_packet(PacketPool* pool);

// A mutable deep copy of `src`.
std::shared_ptr<Packet> alloc_packet_copy(PacketPool* pool, const Packet& src);

// A blank packet with the J-QoS header fields set in one call; payload and
// meta are left for the caller.
std::shared_ptr<Packet> make_packet(PacketPool* pool, PacketType type,
                                    ServiceType service, FlowId flow,
                                    SeqNo seq, NodeId src, NodeId dst,
                                    SimTime now);

// Engages pkt.meta scrubbed (batch/index/k/r zeroed, covered cleared); with
// a pool the covered vector gets salvaged capacity from recycled coded
// packets.
CodedMeta& engage_meta(PacketPool* pool, Packet& pkt);

// Fixed per-packet header overhead in bytes (version, type, ids, timestamp,
// lengths). Exposed so tests and the cost model can reason about overhead.
std::size_t packet_header_bytes();

// Payload of kNack / kNackConfirm packets: the explicitly detected missing
// sequence numbers plus, when `tail` is set, a request to recover everything
// the DC holds for the flow from `expected` onward (timer-driven tail-loss
// NACKs during bursts/outages, Section 3.4).
struct NackInfo {
  bool tail = false;
  SeqNo expected = 0;
  std::vector<SeqNo> missing;

  std::vector<std::uint8_t> serialize() const;
  // Serializes into `out` (cleared first, capacity reused) so pooled packet
  // payloads don't reallocate per NACK in steady state.
  void serialize_into(std::vector<std::uint8_t>& out) const;
  static std::optional<NackInfo> parse(std::span<const std::uint8_t> data);
  // Parses into `out` (missing cleared, capacity reused); false on malformed
  // input, with `out` left in an unspecified-but-valid state.
  static bool parse_into(std::span<const std::uint8_t> data, NackInfo& out);

  friend bool operator==(const NackInfo&, const NackInfo&) = default;
};

}  // namespace jqos
