#include "common/rng.h"

#include <cmath>

namespace jqos {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: seeds the xoshiro state from a single 64-bit value, and also
// serves as the mixing function for fork().
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a over the label, to namespace forked children.
std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  has_spare_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = span * (UINT64_MAX / span);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit && limit != 0);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  // Inverse CDF; guard against log(0).
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = next_double();
  double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::pareto(double xm, double alpha) {
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint32_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 256.0) {
    // Normal approximation with continuity correction; adequate only for
    // very large means, where skewness (1/sqrt(mean)) is negligible.
    double v = normal(mean, std::sqrt(mean)) + 0.5;
    if (v < 0.0) v = 0.0;
    return static_cast<std::uint32_t>(v);
  }
  // Knuth's algorithm in the log domain: accumulate log(u_i) until the sum
  // crosses -mean. The classic running-product form compares against
  // exp(-mean), which for means in the tens sits so deep in the double
  // range (exp(-64) ~ 1.6e-28) that the product's relative error -- and
  // eventually denormalization -- distorts the count; summing logs keeps
  // every intermediate O(mean). This also lets the exact sampler cover the
  // whole regime the churn arrival processes draw from (means near and
  // above the old 64.0 cutover), where the normal approximation's missing
  // skew was measurable.
  const double neg_mean = -mean;
  auto log_u = [this] {
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return std::log(u);
  };
  double s = log_u();
  std::uint32_t n = 0;
  while (s > neg_mean) {
    s += log_u();
    ++n;
  }
  return n;
}

Rng Rng::fork(std::string_view label) {
  // Derive the child's seed from fresh parent output mixed with the label so
  // distinct labels (and successive forks with the same label) all differ.
  std::uint64_t seed = next_u64() ^ hash_label(label);
  return Rng(seed);
}

std::uint64_t Rng::derive(std::uint64_t seed, std::uint64_t stream_id) {
  // Two SplitMix64 steps: the first whitens the seed, the second folds in
  // the stream id spread by the golden ratio so adjacent ids (0, 1, 2, ...)
  // land in unrelated regions of the state space. Frozen by contract -- see
  // the header's stability guarantee.
  std::uint64_t x = seed;
  std::uint64_t h = splitmix64(x);
  x = h ^ (stream_id * 0x9e3779b97f4a7c15ULL);
  return splitmix64(x);
}

std::uint64_t Rng::derive(std::uint64_t seed, std::string_view label) {
  return derive(seed, hash_label(label));
}

}  // namespace jqos
