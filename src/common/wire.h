// Endian-safe byte-buffer reader/writer for the J-QoS wire format.
//
// All multi-byte integers are encoded big-endian (network order). The same
// encoder/decoder pair is used by the simulator (to keep simulated packets
// honest about their on-the-wire size) and by the live UDP runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace jqos {

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }
  // Recycling constructor: adopts `recycle`'s storage (cleared, capacity
  // kept) so hot-path serializers can reuse a pooled buffer via take().
  explicit ByteWriter(std::vector<std::uint8_t>&& recycle)
      : buf_(std::move(recycle)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  // Raw bytes, no length prefix.
  void bytes(std::span<const std::uint8_t> data);

  // Length-prefixed (u32) byte string.
  void var_bytes(std::span<const std::uint8_t> data);

  // Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s);

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Reads the format produced by ByteWriter. All accessors set the error flag
// (and return 0 / empty) on underflow instead of throwing, because the live
// runtime must survive malformed datagrams from the network; callers check
// ok() once after parsing a whole header.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  // Reads exactly n raw bytes.
  std::vector<std::uint8_t> bytes(std::size_t n);

  // Reads a u32 length prefix then that many bytes.
  std::vector<std::uint8_t> var_bytes();

  std::string str();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool ok() const { return ok_; }

 private:
  bool ensure(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace jqos
