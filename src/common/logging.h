// Minimal leveled logger.
//
// Experiments run millions of simulated packets, so logging must be cheap
// when disabled: the JQOS_LOG macro evaluates its stream expression only if
// the level is enabled. Output goes to stderr so bench binaries can print
// clean result tables on stdout.
#pragma once

#include <sstream>
#include <string>

namespace jqos {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

// Global threshold; messages below it are discarded. Defaults to kWarn so
// test and bench output stays quiet unless a run opts in.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

bool log_enabled(LogLevel level);

// Emits one formatted line: "[LEVEL file:line] message".
void log_line(LogLevel level, const char* file, int line, const std::string& msg);

const char* to_string(LogLevel level);

}  // namespace jqos

#define JQOS_LOG(level, expr)                                              \
  do {                                                                     \
    if (::jqos::log_enabled(level)) {                                      \
      std::ostringstream jqos_log_os;                                      \
      jqos_log_os << expr;                                                 \
      ::jqos::log_line(level, __FILE__, __LINE__, jqos_log_os.str());      \
    }                                                                      \
  } while (0)

#define JQOS_TRACE(expr) JQOS_LOG(::jqos::LogLevel::kTrace, expr)
#define JQOS_DEBUG(expr) JQOS_LOG(::jqos::LogLevel::kDebug, expr)
#define JQOS_INFO(expr) JQOS_LOG(::jqos::LogLevel::kInfo, expr)
#define JQOS_WARN(expr) JQOS_LOG(::jqos::LogLevel::kWarn, expr)
#define JQOS_ERROR(expr) JQOS_LOG(::jqos::LogLevel::kError, expr)
