#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace jqos {
namespace {

// Strict "positive integer" parse shared by the knob resolvers: the whole
// string must be digits (an optional leading '+' is tolerated), no sign
// tricks, no trailing junk. Returns false on anything else, including "".
bool parse_positive(const char* s, long& out) {
  char* end = nullptr;
  out = std::strtol(s, &end, 10);
  return end != s && *end == '\0' && out > 0;
}

[[noreturn]] void throw_bad_knob(const char* var, const char* value, const char* accepted) {
  throw std::invalid_argument(std::string(var) + "='" + value + "' is not a valid setting; " +
                              accepted + ". Unset " + var + " to use the default.");
}

}  // namespace

unsigned resolve_sim_threads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("JQOS_SIM_THREADS")) {
    long v = 0;
    if (!parse_positive(env, v)) {
      // A knob that is set but broken must fail loudly: falling back to 1
      // thread (or to hardware_concurrency) silently turns a typo into a
      // perf regression nobody notices.
      throw_bad_knob("JQOS_SIM_THREADS", env,
                     "expected a positive integer thread count (e.g. 1, 4, 16)");
    }
    return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t resolve_sim_lanes(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("JQOS_SIM_LANES")) {
    // "0" is a meaningful setting (lanes off), so parse it separately from
    // the positive-integer path.
    if (env[0] == '0' && env[1] == '\0') return 0;
    long v = 0;
    if (!parse_positive(env, v)) {
      throw_bad_knob("JQOS_SIM_LANES", env,
                     "expected a non-negative integer lane count (0 disables lanes)");
    }
    return static_cast<std::size_t>(v);
  }
  return 0;
}

void parallel_for_indexed(std::size_t n, unsigned threads,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads > n) threads = static_cast<unsigned>(n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        next.store(n, std::memory_order_relaxed);  // Stop handing out work.
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  try {
    for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  } catch (...) {
    // Thread creation can fail under resource limits (RLIMIT_NPROC, cgroup
    // pid caps). Destroying a joinable std::thread calls std::terminate, so
    // stop handing out work, drain the workers that did start, and let the
    // caller see a catchable exception instead of an abort.
    next.store(n, std::memory_order_relaxed);
    for (auto& th : pool) th.join();
    throw;
  }
  worker();  // The calling thread is worker 0.
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

WorkerPool::WorkerPool(unsigned threads) {
  if (threads <= 1) return;
  workers_.reserve(threads - 1);
  try {
    for (unsigned t = 1; t < threads; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Same RLIMIT_NPROC hazard as parallel_for_indexed: shut down whatever
    // did start before rethrowing, or the vector's destructor aborts.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
      ++generation_;
    }
    start_cv_.notify_all();
    for (auto& th : workers_) th.join();
    throw;
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    ++generation_;
  }
  start_cv_.notify_all();
  for (auto& th : workers_) th.join();
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return generation_ != seen; });
      seen = generation_;
      if (shutdown_) return;
    }
    work(seen);
  }
}

void WorkerPool::work(std::uint64_t gen) {
  for (;;) {
    std::size_t i;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (generation_ != gen || next_ >= n_) return;
      i = next_++;
      ++inflight_;
    }
    bool failed = false;
    std::exception_ptr err;
    try {
      (*fn_)(i);
    } catch (...) {
      failed = true;
      err = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (failed) {
        // Keep the error of the LOWEST index so which exception surfaces is
        // a function of the work, not of thread interleaving.
        if (!first_error_ || i < first_error_index_) {
          first_error_ = err;
          first_error_index_ = i;
        }
        next_ = n_;  // Stop handing out further work this region.
      }
      --inflight_;
      if (next_ >= n_ && inflight_ == 0) {
        lock.unlock();
        done_cv_.notify_all();
      }
    }
  }
}

void WorkerPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::uint64_t gen;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    n_ = n;
    next_ = 0;
    inflight_ = 0;
    first_error_ = nullptr;
    first_error_index_ = 0;
    gen = ++generation_;
  }
  start_cv_.notify_all();
  work(gen);  // The owning thread participates.
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return next_ >= n_ && inflight_ == 0; });
    err = first_error_;
    fn_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace jqos
