#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace jqos {

unsigned resolve_sim_threads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("JQOS_SIM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for_indexed(std::size_t n, unsigned threads,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads > n) threads = static_cast<unsigned>(n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        next.store(n, std::memory_order_relaxed);  // Stop handing out work.
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  try {
    for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  } catch (...) {
    // Thread creation can fail under resource limits (RLIMIT_NPROC, cgroup
    // pid caps). Destroying a joinable std::thread calls std::terminate, so
    // stop handing out work, drain the workers that did start, and let the
    // caller see a catchable exception instead of an abort.
    next.store(n, std::memory_order_relaxed);
    for (auto& th : pool) th.join();
    throw;
  }
  worker();  // The calling thread is worker 0.
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace jqos
