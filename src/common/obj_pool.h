// Generic freelist object pool with RAII checkout handles.
//
// The steady-state packet path must not touch the global allocator (see
// docs/MEMORY.md): every shard -- and, with lanes enabled, every lane --
// owns pools for the objects it churns per packet, so hot-path acquire and
// release are a mutex-guarded freelist pop/push that recycle the object's
// heap capacity (vector buffers, map nodes) instead of freeing it.
//
// Shape follows the terichdb DbContextObjCache pattern: checkout returns an
// RAII Handle; destroying the Handle scrubs the object and returns it to the
// pool. Two hard-won rules are baked in:
//
//  * Retained memory is bounded by TOTAL BYTES, never by object count (the
//    PR 7 ladder bucket-pool ratchet lesson: a count bound lets a few huge
//    buffers pin unbounded memory). Oversized objects are freed on return,
//    and returns beyond `max_retained_bytes` are freed rather than pooled.
//  * Handles may outlive the pool facade and may be released from another
//    thread or lane: the freelist lives in a shared Core kept alive by every
//    outstanding Handle, and returns take the owning pool's mutex. Pool
//    traffic never feeds simulation values, so cross-lane returns cannot
//    perturb determinism -- only which freelist a buffer sleeps in.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace jqos::common {

// How many heap bytes an object retains between checkouts, and how to scrub
// it for the next user. The primary template suits types without owned heap
// storage; std::vector gets capacity-aware accounting so byte-bounded
// trimming sees the real retained footprint.
template <typename T>
struct ObjPoolTraits {
  static std::size_t bytes_of(const T&) { return sizeof(T); }
  static void reset(T&) {}
};

template <typename U>
struct ObjPoolTraits<std::vector<U>> {
  static std::size_t bytes_of(const std::vector<U>& v) {
    return sizeof(v) + v.capacity() * sizeof(U);
  }
  static void reset(std::vector<U>& v) { v.clear(); }
};

template <typename T>
class ObjPool {
 public:
  struct Limits {
    std::size_t max_retained_bytes = 4u << 20;
    // Per-object cap: an object whose retained capacity outgrew this is
    // freed on return instead of pooled (one pathological burst must not
    // permanently fatten every pooled buffer).
    std::size_t max_object_bytes = 1u << 20;
  };

 private:
  struct Core {
    explicit Core(Limits l) : limits(l) {}
    ~Core() {
      for (T* p : free_list) delete p;
    }

    T* take() {
      T* p = nullptr;
      {
        std::lock_guard<std::mutex> lk(mu);
        ++outstanding;
        high_water = std::max(high_water, outstanding);
        if (!free_list.empty()) {
          p = free_list.back();
          free_list.pop_back();
          pooled_bytes -= ObjPoolTraits<T>::bytes_of(*p);
          ++reused;
        } else {
          ++fresh;
        }
      }
      return p ? p : new T();
    }

    // Safe from any thread; see the cross-lane rule in the header comment.
    void give(T* obj) {
      ObjPoolTraits<T>::reset(*obj);
      const std::size_t b = ObjPoolTraits<T>::bytes_of(*obj);
      {
        std::lock_guard<std::mutex> lk(mu);
        --outstanding;
        if (b <= limits.max_object_bytes &&
            pooled_bytes + b <= limits.max_retained_bytes) {
          pooled_bytes += b;
          free_list.push_back(obj);
          return;
        }
      }
      delete obj;
    }

    mutable std::mutex mu;
    Limits limits;
    std::vector<T*> free_list;
    std::size_t pooled_bytes = 0;  // bytes retained by free_list entries
    std::size_t outstanding = 0;   // handles currently checked out
    std::size_t high_water = 0;    // max simultaneous outstanding
    std::uint64_t reused = 0;      // freelist hits
    std::uint64_t fresh = 0;       // global-allocator constructions
  };

 public:
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& o) noexcept : core_(std::move(o.core_)), obj_(o.obj_) {
      o.obj_ = nullptr;
    }
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        release();
        core_ = std::move(o.core_);
        obj_ = o.obj_;
        o.obj_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

    T& operator*() const { return *obj_; }
    T* operator->() const { return obj_; }
    T* get() const { return obj_; }
    explicit operator bool() const { return obj_ != nullptr; }

    // Returns the object to its pool now (also runs on destruction).
    void release() {
      if (!obj_) return;
      core_->give(obj_);
      obj_ = nullptr;
      core_.reset();
    }

   private:
    friend class ObjPool;
    Handle(std::shared_ptr<Core> core, T* obj)
        : core_(std::move(core)), obj_(obj) {}

    std::shared_ptr<Core> core_;
    T* obj_ = nullptr;
  };

  explicit ObjPool(Limits limits = {})
      : core_(std::make_shared<Core>(limits)) {}

  Handle acquire() {
    T* p = core_->take();
    return Handle(core_, p);
  }

  // Frees everything currently pooled (outstanding handles are unaffected).
  void trim() {
    std::vector<T*> victims;
    {
      std::lock_guard<std::mutex> lk(core_->mu);
      victims.swap(core_->free_list);
      core_->pooled_bytes = 0;
    }
    for (T* p : victims) delete p;
  }

  std::size_t pooled_bytes() const {
    std::lock_guard<std::mutex> lk(core_->mu);
    return core_->pooled_bytes;
  }
  std::size_t pooled_count() const {
    std::lock_guard<std::mutex> lk(core_->mu);
    return core_->free_list.size();
  }
  std::size_t outstanding() const {
    std::lock_guard<std::mutex> lk(core_->mu);
    return core_->outstanding;
  }
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lk(core_->mu);
    return core_->high_water;
  }
  std::uint64_t reused() const {
    std::lock_guard<std::mutex> lk(core_->mu);
    return core_->reused;
  }
  std::uint64_t fresh() const {
    std::lock_guard<std::mutex> lk(core_->mu);
    return core_->fresh;
  }

 private:
  std::shared_ptr<Core> core_;
};

}  // namespace jqos::common
