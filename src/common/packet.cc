#include "common/packet.h"

#include <sstream>

#include "common/packet_pool.h"
#include "common/wire.h"

namespace jqos {

namespace {
constexpr std::uint8_t kWireVersion = 1;
// version(1) + type(1) + service(1) + flow(4) + seq(4) + src(4) + dst(4)
// + final_dst(4) + sent_at(8) + flags(1) + payload length prefix(4)
constexpr std::size_t kHeaderBytes = 1 + 1 + 1 + 4 + 4 + 4 + 4 + 4 + 8 + 1 + 4;

// The flags byte: bit 0 = coded metadata follows, bits 1-2 = ECN codepoint.
constexpr std::uint8_t kFlagHasMeta = 1 << 0;
constexpr std::uint8_t kFlagEcnCapable = 1 << 1;
constexpr std::uint8_t kFlagEcnCe = 1 << 2;
}  // namespace

const char* to_string(ServiceType s) {
  switch (s) {
    case ServiceType::kNone: return "none";
    case ServiceType::kForward: return "forward";
    case ServiceType::kCache: return "cache";
    case ServiceType::kCode: return "code";
  }
  return "?";
}

std::string to_string(const PacketKey& key) {
  std::ostringstream os;
  os << "flow=" << key.flow << "/seq=" << key.seq;
  return os.str();
}

std::string format_duration(SimDuration d) {
  std::ostringstream os;
  if (d < 0) {
    os << "-";
    d = -d;
  }
  if (d < 1000) {
    os << d << "us";
  } else if (d < 1000 * 1000) {
    os << to_ms(d) << "ms";
  } else {
    os << to_sec(d) << "s";
  }
  return os.str();
}

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kData: return "DATA";
    case PacketType::kInCoded: return "IN_CODED";
    case PacketType::kCrossCoded: return "CROSS_CODED";
    case PacketType::kNack: return "NACK";
    case PacketType::kNackCheck: return "NACK_CHECK";
    case PacketType::kNackConfirm: return "NACK_CONFIRM";
    case PacketType::kPull: return "PULL";
    case PacketType::kCoopRequest: return "COOP_REQUEST";
    case PacketType::kCoopResponse: return "COOP_RESPONSE";
    case PacketType::kRecovered: return "RECOVERED";
    case PacketType::kControl: return "CONTROL";
  }
  return "UNKNOWN";
}

std::size_t packet_header_bytes() { return kHeaderBytes; }

std::size_t Packet::wire_size() const {
  std::size_t n = kHeaderBytes + payload.size();
  if (meta) {
    // batch_id(4) + index(1) + k(1) + r(1) + count(4) + 8 bytes per key
    n += 4 + 1 + 1 + 1 + 4 + meta->covered.size() * 8;
  }
  return n;
}

std::vector<std::uint8_t> Packet::serialize() const {
  ByteWriter w(wire_size());
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(static_cast<std::uint8_t>(service));
  w.u32(flow);
  w.u32(seq);
  w.u32(src);
  w.u32(dst);
  w.u32(final_dst);
  w.i64(sent_at);
  w.u8(static_cast<std::uint8_t>((meta ? kFlagHasMeta : 0) |
                                 (ecn_capable ? kFlagEcnCapable : 0) |
                                 (ecn_ce ? kFlagEcnCe : 0)));
  if (meta) {
    w.u32(meta->batch_id);
    w.u8(meta->index);
    w.u8(meta->k);
    w.u8(meta->r);
    w.u32(static_cast<std::uint32_t>(meta->covered.size()));
    for (const PacketKey& key : meta->covered) {
      w.u32(key.flow);
      w.u32(key.seq);
    }
  }
  w.var_bytes(payload);
  return w.take();
}

std::optional<Packet> Packet::parse(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u8() != kWireVersion) return std::nullopt;
  Packet p;
  std::uint8_t type_raw = r.u8();
  if (type_raw > static_cast<std::uint8_t>(PacketType::kControl)) return std::nullopt;
  p.type = static_cast<PacketType>(type_raw);
  std::uint8_t service_raw = r.u8();
  if (service_raw > static_cast<std::uint8_t>(ServiceType::kCode)) return std::nullopt;
  p.service = static_cast<ServiceType>(service_raw);
  p.flow = r.u32();
  p.seq = r.u32();
  p.src = r.u32();
  p.dst = r.u32();
  p.final_dst = r.u32();
  p.sent_at = r.i64();
  const std::uint8_t flags = r.u8();
  p.ecn_capable = (flags & kFlagEcnCapable) != 0;
  p.ecn_ce = (flags & kFlagEcnCe) != 0;
  if ((flags & kFlagHasMeta) != 0) {
    CodedMeta m;
    m.batch_id = r.u32();
    m.index = r.u8();
    m.k = r.u8();
    m.r = r.u8();
    std::uint32_t n = r.u32();
    // A coded batch never spans more than 255 packets (k and r are u8).
    if (n > 255 + 255u) return std::nullopt;
    m.covered.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      PacketKey key;
      key.flow = r.u32();
      key.seq = r.u32();
      m.covered.push_back(key);
    }
    p.meta = std::move(m);
  }
  p.payload = r.var_bytes();
  if (!r.ok()) return std::nullopt;
  return p;
}

std::shared_ptr<Packet> alloc_packet(PacketPool* pool) {
  return pool ? pool->acquire() : std::make_shared<Packet>();
}

std::shared_ptr<Packet> alloc_packet_copy(PacketPool* pool, const Packet& src) {
  return pool ? pool->acquire_copy(src) : std::make_shared<Packet>(src);
}

std::shared_ptr<Packet> make_packet(PacketPool* pool, PacketType type,
                                    ServiceType service, FlowId flow,
                                    SeqNo seq, NodeId src, NodeId dst,
                                    SimTime now) {
  auto p = alloc_packet(pool);
  p->type = type;
  p->service = service;
  p->flow = flow;
  p->seq = seq;
  p->src = src;
  p->dst = dst;
  p->sent_at = now;
  return p;
}

CodedMeta& engage_meta(PacketPool* pool, Packet& pkt) {
  if (pool) return pool->engage_meta(pkt);
  if (!pkt.meta) pkt.meta.emplace();
  CodedMeta& m = *pkt.meta;
  m.covered.clear();
  m.batch_id = 0;
  m.index = 0;
  m.k = 0;
  m.r = 0;
  return m;
}

PacketPtr make_data_packet(FlowId flow, SeqNo seq, NodeId src, NodeId dst,
                           SimTime now, std::size_t payload_bytes,
                           PacketPool* pool) {
  auto p = make_packet(pool, PacketType::kData, ServiceType::kNone, flow, seq,
                       src, dst, now);
  p->payload.assign(payload_bytes, 0);
  return p;
}

std::vector<std::uint8_t> NackInfo::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 4 + 4 + missing.size() * 4);
  serialize_into(out);
  return out;
}

void NackInfo::serialize_into(std::vector<std::uint8_t>& out) const {
  ByteWriter w(std::move(out));
  w.u8(tail ? 1 : 0);
  w.u32(expected);
  w.u32(static_cast<std::uint32_t>(missing.size()));
  for (SeqNo s : missing) w.u32(s);
  out = w.take();
}

std::optional<NackInfo> NackInfo::parse(std::span<const std::uint8_t> data) {
  NackInfo n;
  if (!parse_into(data, n)) return std::nullopt;
  return n;
}

bool NackInfo::parse_into(std::span<const std::uint8_t> data, NackInfo& out) {
  ByteReader r(data);
  out.tail = r.u8() != 0;
  out.expected = r.u32();
  out.missing.clear();
  const std::uint32_t count = r.u32();
  if (count > r.remaining() / 4) return false;
  out.missing.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.missing.push_back(r.u32());
  return r.ok();
}

PacketPtr make_control_packet(NodeId src, NodeId dst, SimTime now,
                              std::vector<std::uint8_t> payload,
                              PacketPool* pool) {
  auto p = make_packet(pool, PacketType::kControl, ServiceType::kNone,
                       /*flow=*/0, /*seq=*/0, src, dst, now);
  p->payload = std::move(payload);
  return p;
}

}  // namespace jqos
