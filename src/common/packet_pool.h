// The pooled Packet recycler behind the packet.h factories.
//
// A PacketPtr is a shared_ptr<const Packet>, so a per-packet heap cost hides
// in two places: the Packet itself (plus its payload / covered-key vectors)
// and the shared_ptr CONTROL BLOCK. PacketPool recycles both:
//
//  * acquire() pops a scrubbed Packet off a freelist -- payload capacity and
//    (via engage_meta) covered-key capacity are retained across checkouts --
//    and wraps it in a shared_ptr whose custom deleter returns the storage
//    here instead of freeing it.
//  * The shared_ptr is built with a pooling allocator, so the control block
//    comes from a freelist of fixed-size blocks rather than operator new.
//
// Call sites keep the existing PacketPtr type: a pooled packet is
// indistinguishable from a heap one, and a null pool everywhere means plain
// make_shared (exactly the JQOS_OBJ_POOL=0 passthrough). The deleter and
// allocator hold a raw pointer to the pool core -- refcounting it through a
// shared_ptr would cost half a dozen atomic ops per packet -- and the core
// counts its outstanding packets and control blocks intrusively: it deletes
// itself when the facade is gone AND the last piece of storage returns, so
// packets that outlive their pool (or return from another lane) still
// recycle safely.
//
// Retained memory is bounded by total bytes across packets, control blocks,
// and salvaged key vectors (never by object count -- the PR 7 ratchet
// lesson); see docs/MEMORY.md for the ownership contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/packet.h"

namespace jqos {

class PacketPool {
 public:
  struct Limits {
    std::size_t max_retained_bytes = 16u << 20;
    // A returned packet whose payload capacity outgrew this has that
    // capacity dropped before pooling (bursts must not fatten the pool).
    std::size_t max_packet_bytes = 256u << 10;
  };

  // Reads JQOS_OBJ_POOL at construction (not a static cache) so one process
  // can compare both modes; "0" disables pooling, anything else enables it.
  PacketPool() : PacketPool(env_enabled()) {}
  // Two overloads rather than a defaulted Limits argument: a nested
  // aggregate's member initializers are not usable in a default argument
  // until the enclosing class is complete.
  explicit PacketPool(bool enabled) : PacketPool(enabled, Limits{}) {}
  PacketPool(bool enabled, Limits limits);
  // Marks the core orphaned; the core frees itself once the last
  // outstanding packet and control block have come home.
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  bool enabled() const { return enabled_; }

  // A blank mutable packet: header fields default-initialized, payload
  // empty (capacity retained), meta disengaged. Fill it, then hand it off
  // as PacketPtr. Disabled pool -> plain make_shared.
  std::shared_ptr<Packet> acquire();

  // A mutable deep copy of `src` into recycled storage.
  std::shared_ptr<Packet> acquire_copy(const Packet& src);

  // Engages pkt.meta (batch/index/k/r zeroed, covered cleared), handing the
  // covered vector salvaged capacity from previously recycled coded packets
  // so filling it allocates nothing in steady state.
  CodedMeta& engage_meta(Packet& pkt);

  // Byte-bounded retained-memory accounting.
  std::size_t pooled_bytes() const;
  std::size_t high_water() const;  // max simultaneously outstanding packets
  std::size_t outstanding() const;
  std::uint64_t reused() const;  // freelist + thread-local stash hits
  std::uint64_t fresh() const;   // global-allocator constructions

  static bool env_enabled();

  // Opaque shared freelist state (defined in packet_pool.cc); public only so
  // the file-local deleter and control-block allocator can name it.
  struct Core;

 private:
  bool enabled_;
  Core* core_;  // Self-deleting once orphaned and drained; see ~PacketPool.
  // Stash-hit count, kept on the facade because the stash fast path must
  // not touch the core (no lock) and an empty stash must not pin it.
  // Plain (non-atomic): acquire is single-threaded per the lane contract.
  std::uint64_t stash_reused_ = 0;
};

}  // namespace jqos
