// Global-allocator instrumentation for the zero-alloc steady-state guard.
//
// Linking the jqos_alloc_probe library into a binary replaces global
// operator new/delete with counting wrappers, so a test or bench can assert
// "this window performed N global-allocator hits" -- the enforcement arm of
// the object-pool subsystem (docs/MEMORY.md). The replacement is process-
// wide but build-local: only binaries that link the probe pay for it.
//
// Under ASan/TSan the wrappers compile to nothing (the sanitizer's own
// new/delete interceptors must keep ownership of the heap); active() tells
// callers whether counts are real so assertions can degrade to skips.
#pragma once

#include <cstdint>

namespace jqos::alloc_probe {

// True when the counting replacements are live in this binary.
bool active();

// Cumulative process-wide counts since start (or the last reset()).
std::uint64_t allocations();
std::uint64_t frees();
std::uint64_t allocated_bytes();

void reset();

}  // namespace jqos::alloc_probe
