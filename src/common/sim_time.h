// Simulated-time representation.
//
// All latencies in J-QoS are sub-second but spans of interest run for weeks
// (the paper's PlanetLab deployment collected 3-5 weeks of samples per path),
// so we use a 64-bit microsecond tick: enough resolution for 25 ms NACK
// timers and enough range (~292k years) for any experiment.
#pragma once

#include <cstdint>
#include <string>

namespace jqos {

// A point in simulated time, in microseconds since simulation start.
using SimTime = std::int64_t;

// A span of simulated time, in microseconds. Kept as the same underlying
// type as SimTime so arithmetic stays trivial; the distinct alias documents
// intent at API boundaries.
using SimDuration = std::int64_t;

inline constexpr SimTime kSimStart = 0;
inline constexpr SimDuration kNoTimeout = -1;
// "Never" / "unbounded": the largest representable instant or span.
inline constexpr SimTime kMaxSimTime = INT64_MAX;

constexpr SimDuration usec(std::int64_t n) { return n; }
constexpr SimDuration msec(std::int64_t n) { return n * 1000; }
constexpr SimDuration msec_f(double n) { return static_cast<SimDuration>(n * 1000.0); }
constexpr SimDuration sec(std::int64_t n) { return n * 1000 * 1000; }
constexpr SimDuration sec_f(double n) { return static_cast<SimDuration>(n * 1e6); }
constexpr SimDuration minutes(std::int64_t n) { return n * 60 * 1000 * 1000; }

constexpr double to_ms(SimDuration d) { return static_cast<double>(d) / 1000.0; }
constexpr double to_sec(SimDuration d) { return static_cast<double>(d) / 1e6; }

// Human-readable rendering, e.g. "12.345ms" / "3.2s"; used by logs and
// experiment reports.
std::string format_duration(SimDuration d);

}  // namespace jqos
