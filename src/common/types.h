// Core identifier and scalar types shared by every J-QoS module.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace jqos {

// Identifies one application flow (one sender->receiver stream) end to end.
// Flow ids are assigned by the framework at register() time and carried in
// every J-QoS header so data centers can group flows for cross-stream coding.
using FlowId = std::uint32_t;

// Per-flow packet sequence number. The paper's prototype uses unique packet
// sequence numbers as the cache/retrieval identifier (Section 3.2); we do the
// same. Sequence numbers start at 0 for the first packet of a flow.
using SeqNo = std::uint32_t;

// Identifies a node (end host or data center) in either the simulator or the
// live runtime. NodeId 0 is reserved as "invalid / unset".
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0;

// Identifies a data center within the overlay.
using DcId = std::uint16_t;

inline constexpr DcId kInvalidDc = 0xffff;

// A (flow, seq) pair uniquely names a data packet across the whole system;
// it is the retrieval key for the caching service and the unit the coding
// service tracks through encode / NACK / cooperative recovery.
struct PacketKey {
  FlowId flow = 0;
  SeqNo seq = 0;

  friend bool operator==(const PacketKey&, const PacketKey&) = default;
  friend auto operator<=>(const PacketKey&, const PacketKey&) = default;
};

std::string to_string(const PacketKey& key);

}  // namespace jqos

template <>
struct std::hash<jqos::PacketKey> {
  std::size_t operator()(const jqos::PacketKey& k) const noexcept {
    // Flow and seq are both 32-bit; pack into one 64-bit value and mix.
    std::uint64_t v =
        (static_cast<std::uint64_t>(k.flow) << 32) | static_cast<std::uint64_t>(k.seq);
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    return static_cast<std::size_t>(v);
  }
};
