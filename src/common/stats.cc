#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace jqos {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(n_);
  const double n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::add(double x) {
  xs_.push_back(x);
  sorted_valid_ = false;
}

void Samples::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = xs_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Samples::mean() const {
  // Neumaier-compensated summation: naive accumulation over multi-million-
  // sample sets loses the small samples entirely once the running sum grows
  // large (or cancels), which skewed soak-run means. The compensation term
  // recovers the rounding error of every add.
  if (xs_.empty()) return 0.0;
  double sum = 0.0;
  double comp = 0.0;
  for (double x : xs_) {
    const double t = sum + x;
    if (std::abs(sum) >= std::abs(x)) {
      comp += (sum - t) + x;
    } else {
      comp += (x - t) + sum;
    }
    sum = t;
  }
  return (sum + comp) / static_cast<double>(xs_.size());
}

double Samples::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Samples::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Samples::percentile(double p) const {
  if (xs_.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Samples::cdf_at(double x) const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<Samples::CdfPoint> Samples::cdf_points(std::size_t n) const {
  std::vector<CdfPoint> out;
  if (xs_.empty() || n == 0) return out;
  out.reserve(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(n);
    out.push_back(CdfPoint{percentile(frac * 100.0), frac});
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram requires hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  // In-range values can still compute to bins() due to floating rounding at
  // the upper edge; pin those to the last bin.
  std::size_t i = static_cast<std::size_t>((x - lo_) / width_);
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::cumulative_fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  std::size_t c = underflow_;
  for (std::size_t b = 0; b <= i && b < counts_.size(); ++b) c += counts_[b];
  return static_cast<double>(c) / static_cast<double>(total_);
}

QuantileSketch::QuantileSketch(std::size_t k) : k_(std::max<std::size_t>(k, 8)) {
  // An odd capacity would strand a leftover item on every compaction; keep
  // it even so the steady-state add path always compacts a full buffer.
  if (k_ % 2 != 0) ++k_;
  levels_.emplace_back();
  levels_[0].reserve(k_);
  parity_.push_back(0);
}

void QuantileSketch::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  levels_[0].push_back(x);
  if (levels_[0].size() >= k_) compact(0);
}

void QuantileSketch::compact(std::size_t level) {
  // Sort the full level and promote every other element with doubled
  // weight. The starting parity alternates per level across compactions so
  // neither the even nor the odd ranks are systematically favored; it is
  // part of the sketch state, keeping the whole structure (and thus merged
  // fingerprints) a pure function of the insertion sequence. An odd-sized
  // level (possible after merge) leaves its minimum behind at the same
  // weight, so total weight is always conserved exactly.
  if (level + 1 >= levels_.size()) {
    levels_.emplace_back();
    levels_[level + 1].reserve(k_);
    parity_.push_back(0);
  }
  std::vector<double>& cur = levels_[level];
  std::sort(cur.begin(), cur.end());
  std::size_t start = 0;
  if (cur.size() % 2 != 0) start = 1;  // cur[0] stays as the leftover.
  const std::size_t offset = parity_[level];
  parity_[level] ^= 1;
  std::vector<double>& up = levels_[level + 1];
  for (std::size_t i = start + offset; i < cur.size(); i += 2) up.push_back(cur[i]);
  if (start == 1) {
    const double leftover = cur[0];
    cur.clear();
    cur.push_back(leftover);
  } else {
    cur.clear();
  }
  if (up.size() >= k_) compact(level + 1);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  n_ += other.n_;
  if (other.levels_.size() > levels_.size()) {
    levels_.resize(other.levels_.size());
    parity_.resize(other.levels_.size(), 0);
  }
  for (std::size_t l = 0; l < other.levels_.size(); ++l) {
    levels_[l].insert(levels_[l].end(), other.levels_[l].begin(), other.levels_[l].end());
  }
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    if (levels_[l].size() >= k_) compact(l);
  }
}

double QuantileSketch::min() const {
  return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double QuantileSketch::max() const {
  return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

std::size_t QuantileSketch::retained() const {
  std::size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

double QuantileSketch::quantile(double q) const {
  if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);

  // Gather the weighted survivors. Each level-L item stands for 2^L of the
  // original samples, occupying a block of consecutive order-statistic
  // ranks; with every weight 1 (n <= k) this walk reduces exactly to
  // Samples::percentile's interpolation.
  struct Item {
    double value;
    std::uint64_t weight;
  };
  std::vector<Item> items;
  items.reserve(retained());
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const std::uint64_t w = 1ULL << l;
    for (double v : levels_[l]) items.push_back(Item{v, w});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.value < b.value;
  });

  const double rank = q * static_cast<double>(n_ - 1);
  const std::uint64_t lo_rank = static_cast<std::uint64_t>(rank);
  const std::uint64_t hi_rank = std::min<std::uint64_t>(lo_rank + 1, n_ - 1);
  const double frac = rank - static_cast<double>(lo_rank);

  double lo_val = items.back().value;
  double hi_val = items.back().value;
  bool lo_set = false;
  std::uint64_t cum = 0;
  for (const Item& it : items) {
    cum += it.weight;
    if (!lo_set && cum > lo_rank) {
      lo_val = it.value;
      lo_set = true;
    }
    if (cum > hi_rank) {
      hi_val = it.value;
      break;
    }
  }
  return lo_val * (1.0 - frac) + hi_val * frac;
}

std::string summarize_percentiles(const Samples& s) {
  std::ostringstream os;
  os << "n=" << s.count() << " p50=" << s.percentile(50) << " p90=" << s.percentile(90)
     << " p95=" << s.percentile(95) << " p99=" << s.percentile(99);
  return os.str();
}

}  // namespace jqos
