#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace jqos {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(n_);
  const double n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::add(double x) {
  xs_.push_back(x);
  sorted_valid_ = false;
}

void Samples::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = xs_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Samples::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Samples::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Samples::cdf_at(double x) const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<Samples::CdfPoint> Samples::cdf_points(std::size_t n) const {
  std::vector<CdfPoint> out;
  if (xs_.empty() || n == 0) return out;
  out.reserve(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(n);
    out.push_back(CdfPoint{percentile(frac * 100.0), frac});
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram requires hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  i = std::clamp<std::ptrdiff_t>(i, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::cumulative_fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  std::size_t c = 0;
  for (std::size_t b = 0; b <= i && b < counts_.size(); ++b) c += counts_[b];
  return static_cast<double>(c) / static_cast<double>(total_);
}

std::string summarize_percentiles(const Samples& s) {
  std::ostringstream os;
  os << "n=" << s.count() << " p50=" << s.percentile(50) << " p90=" << s.percentile(90)
     << " p95=" << s.percentile(95) << " p99=" << s.percentile(99);
  return os.str();
}

}  // namespace jqos
