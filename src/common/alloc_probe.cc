#include "common/alloc_probe.h"

#include <atomic>
#include <cstdlib>
#include <new>

// The probe must not fight a sanitizer runtime for the heap: ASan's poisoned
// redzones and TSan's deadlock detection both interpose malloc AND operator
// new, and a user replacement would silently bypass their new/delete
// bookkeeping. Compile to a stub there; active() reports which build this is.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define JQOS_ALLOC_PROBE_STUB 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define JQOS_ALLOC_PROBE_STUB 1
#endif
#endif

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_bytes{0};

#ifndef JQOS_ALLOC_PROBE_STUB
void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}

void counted_free(void* p) {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t padded = (n + align - 1) / align * align;
  return std::aligned_alloc(align, padded ? padded : align);
}
#endif

}  // namespace

namespace jqos::alloc_probe {

bool active() {
#ifdef JQOS_ALLOC_PROBE_STUB
  return false;
#else
  return true;
#endif
}

std::uint64_t allocations() { return g_allocs.load(std::memory_order_relaxed); }
std::uint64_t frees() { return g_frees.load(std::memory_order_relaxed); }
std::uint64_t allocated_bytes() { return g_bytes.load(std::memory_order_relaxed); }

void reset() {
  g_allocs.store(0, std::memory_order_relaxed);
  g_frees.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace jqos::alloc_probe

#ifndef JQOS_ALLOC_PROBE_STUB

void* operator new(std::size_t n) {
  if (void* p = counted_alloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  if (void* p = counted_alloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new(std::size_t n, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(n, static_cast<std::size_t>(align))) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(n, static_cast<std::size_t>(align))) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(n, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t n, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(n, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

#endif  // JQOS_ALLOC_PROBE_STUB
