#include "common/wire.h"

namespace jqos {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::var_bytes(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  bytes(data);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool ByteReader::ensure(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!ensure(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  if (!ensure(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  if (!ensure(4)) return 0;
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t hi = u32();
  std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

std::vector<std::uint8_t> ByteReader::bytes(std::size_t n) {
  if (!ensure(n)) return {};
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::vector<std::uint8_t> ByteReader::var_bytes() {
  std::uint32_t n = u32();
  // Defensive cap: a malformed length prefix must not trigger a huge
  // allocation; anything longer than the remaining buffer is invalid anyway.
  if (n > remaining()) {
    ok_ = false;
    return {};
  }
  return bytes(n);
}

std::string ByteReader::str() {
  std::uint32_t n = u32();
  if (n > remaining()) {
    ok_ = false;
    return {};
  }
  if (!ensure(n)) return {};
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

}  // namespace jqos
