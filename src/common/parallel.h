// Deterministic thread-pool helpers for the experiment layer.
//
// Shards of a figure sweep are independent deterministic simulations; the
// only thing threads may change is wall-clock time, never results. These
// helpers therefore hand out *indices* (work identity) and leave all output
// placement to the caller, which writes to pre-sized slots -- the merged
// result is byte-identical for any thread count, including 1.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jqos {

// Resolves the worker-thread count for sharded experiment runs.
//   requested > 0  -> used as-is.
//   requested == 0 -> JQOS_SIM_THREADS if set, else
//                     std::thread::hardware_concurrency().
// Always returns >= 1. The value never influences results, only wall time.
//
// A set-but-bogus JQOS_SIM_THREADS ("0", "-3", "lots", "") throws
// std::invalid_argument naming the variable, the offending value, and the
// accepted forms -- a typo'd knob must not silently run sequential.
unsigned resolve_sim_threads(unsigned requested = 0);

// Resolves the intra-shard lane count (conservative parallel simulation;
// see netsim::Simulator::configure_lanes and exp::WanScenarioParams::lanes).
//   requested > 0  -> used as-is.
//   requested == 0 -> JQOS_SIM_LANES if set, else 0 (lanes disabled).
// Bogus JQOS_SIM_LANES values ("-1", "many", "") throw std::invalid_argument
// with the same actionable shape as resolve_sim_threads; "0" is valid and
// means "disabled".
std::size_t resolve_sim_lanes(std::size_t requested = 0);

// Runs fn(i) for every i in [0, n) across `threads` workers (clamped to
// [1, n]). Work is handed out dynamically (atomic counter) so imbalanced
// items still pack well; fn must confine writes to its own item's slots.
// With threads <= 1 the loop runs inline on the calling thread.
//
// Exceptions: the first exception thrown by any fn is rethrown on the
// calling thread after all workers have stopped picking up new work.
void parallel_for_indexed(std::size_t n, unsigned threads,
                          const std::function<void(std::size_t)>& fn);

// A persistent fork-join pool for callers that dispatch MANY small parallel
// regions (the lane scheduler runs one per synchronization window, thousands
// per simulated second) -- spawning threads per region the way
// parallel_for_indexed does would dominate the work. Workers are created
// once and parked on a condition variable between regions.
//
// run(n, fn) behaves like parallel_for_indexed(n, threads, fn): dynamic
// index handout, the calling thread participates, and it returns only when
// every index has finished (a full barrier, which is what gives the lane
// scheduler its cross-window happens-before edges). When several items
// throw, the exception of the LOWEST index is rethrown so failure reporting
// does not depend on thread timing. run() is not reentrant and must always
// be called from the same (owning) thread.
class WorkerPool {
 public:
  // `threads` counts the calling thread: threads <= 1 means no workers are
  // spawned and run() executes inline.
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()) + 1; }

 private:
  void worker_loop();
  void work(std::uint64_t gen);

  std::mutex mu_;
  std::condition_variable start_cv_;  // Owner -> workers: a new region.
  std::condition_variable done_cv_;   // Workers -> owner: region finished.
  std::uint64_t generation_ = 0;      // Bumped per region (and on shutdown).
  bool shutdown_ = false;
  // Region state, valid while active_workers_ > 0 or the owner is in work().
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::size_t next_ = 0;          // Next index to hand out (under mu_).
  std::size_t inflight_ = 0;      // Indices handed out but not finished.
  std::size_t first_error_index_ = 0;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace jqos
