// Deterministic thread-pool helpers for the experiment layer.
//
// Shards of a figure sweep are independent deterministic simulations; the
// only thing threads may change is wall-clock time, never results. These
// helpers therefore hand out *indices* (work identity) and leave all output
// placement to the caller, which writes to pre-sized slots -- the merged
// result is byte-identical for any thread count, including 1.
#pragma once

#include <cstddef>
#include <functional>

namespace jqos {

// Resolves the worker-thread count for sharded experiment runs.
//   requested > 0  -> used as-is.
//   requested == 0 -> JQOS_SIM_THREADS if set to a positive integer, else
//                     std::thread::hardware_concurrency().
// Always returns >= 1. The value never influences results, only wall time.
unsigned resolve_sim_threads(unsigned requested = 0);

// Runs fn(i) for every i in [0, n) across `threads` workers (clamped to
// [1, n]). Work is handed out dynamically (atomic counter) so imbalanced
// items still pack well; fn must confine writes to its own item's slots.
// With threads <= 1 the loop runs inline on the calling thread.
//
// Exceptions: the first exception thrown by any fn is rethrown on the
// calling thread after all workers have stopped picking up new work.
void parallel_for_indexed(std::size_t n, unsigned threads,
                          const std::function<void(std::size_t)>& fn);

}  // namespace jqos
