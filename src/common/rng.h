// Deterministic random number generation.
//
// Every stochastic component (loss models, jitter, workload generators, host
// synthesis) draws from an explicitly seeded Rng so that experiments are
// reproducible run to run and so tests can pin exact traces. Components that
// need independent streams derive child generators with fork(), which mixes
// the parent seed with a label; this keeps parallel experiment shards
// uncorrelated without global state.
#pragma once

#include <cstdint>
#include <string_view>

namespace jqos {

// xoshiro256** by Blackman & Vigna: fast, 2^256-1 period, passes BigCrush.
// We implement it directly (no <random> engine) so results are identical
// across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double next_double();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  // Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  // Standard normal via Box-Muller, scaled to (mean, stddev).
  double normal(double mean, double stddev);

  // Log-normal such that the *underlying* normal has parameters (mu, sigma).
  // Used for Internet path jitter which is heavy-tailed.
  double lognormal(double mu, double sigma);

  // Pareto with scale xm > 0 and shape alpha > 0; heavy-tailed delays.
  double pareto(double xm, double alpha);

  // Poisson-distributed count with the given mean. Exact sampling (Knuth's
  // algorithm, run in the log domain so nothing underflows) up to mean 256;
  // normal approximation beyond, where the distribution's skew is
  // negligible.
  std::uint32_t poisson(double mean);

  // A child generator whose stream is independent of this one; `label`
  // namespaces children so e.g. fork("loss") and fork("jitter") differ.
  //
  // fork() draws from the parent, so the child depends on how many values
  // the parent produced before the fork. Use derive() when a stream must be
  // a pure function of stable identifiers instead of call order.
  Rng fork(std::string_view label);

  // Derives the seed of an independent sub-stream as a *pure function* of
  // (seed, stream_id) -- no hidden state, no call-order dependence. This is
  // the primitive behind sharded experiment decomposition: a path keyed by
  // its global index draws the same random sequence whether its shard runs
  // alone, with others, in any thread, or inside the monolithic N=1 run.
  //
  // Stability guarantee: the mapping is part of the determinism contract.
  // It is SplitMix64 over seed, then over seed XOR a golden-ratio-spread
  // stream_id, and MUST NOT change -- tests pin exact outputs, and every
  // archived experiment fingerprint depends on it.
  static std::uint64_t derive(std::uint64_t seed, std::uint64_t stream_id);

  // Label-keyed variant: derive(seed, fnv1a(label)). Used where the stable
  // identity is a name (e.g. an overlay link "LHR>FRA") rather than an index.
  static std::uint64_t derive(std::uint64_t seed, std::string_view label);

  // Convenience: an Rng seeded from derive().
  static Rng derived(std::uint64_t seed, std::uint64_t stream_id) {
    return Rng(derive(seed, stream_id));
  }
  static Rng derived(std::uint64_t seed, std::string_view label) {
    return Rng(derive(seed, label));
  }

 private:
  std::uint64_t s_[4];
  // Box-Muller produces values in pairs; cache the spare.
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace jqos
